// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artefact, as indexed in DESIGN.md), plus ablations of
// the reproduction's own design choices and micro-benchmarks of the hot
// simulation paths. Artefact benchmarks use shortened runs (the full-length
// evaluation is driven by cmd/tgsweep); reported custom metrics carry the
// headline quantity of each artefact.
package thermogater

import (
	"sync"
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/experiments"
	"thermogater/internal/floorplan"
	"thermogater/internal/pdn"
	"thermogater/internal/power"
	"thermogater/internal/sim"
	"thermogater/internal/thermal"
	"thermogater/internal/uarch"
	"thermogater/internal/vr"
	"thermogater/internal/workload"
)

// benchOptions keeps artefact regeneration affordable inside testing.B.
func benchOptions() experiments.Options {
	return experiments.Options{DurationMS: 150, Seed: 1}
}

var (
	sweepOnce sync.Once
	sweepVal  *experiments.Sweep
	sweepErr  error
)

// sharedSweep runs the 14×8 policy sweep once and shares it across the
// sweep-derived artefact benchmarks.
func sharedSweep(b *testing.B) *experiments.Sweep {
	b.Helper()
	sweepOnce.Do(func() {
		sweepVal, sweepErr = experiments.RunSweep(experiments.SweepPolicies(), benchOptions())
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepVal
}

func BenchmarkFig1EfficiencySurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1EfficiencySurvey(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2MultiPhase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2MultiPhase(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Calibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5Calibration(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ActiveRegulators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6ActiveRegulators(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7PlossSaving(b *testing.B) {
	sw := sharedSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Fig7PlossSaving(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8NaiveProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8NaiveProfile(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Tmax(b *testing.B) {
	sw := sharedSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Fig9Tmax(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Gradient(b *testing.B) {
	sw := sharedSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Fig10Gradient(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11VoltageNoise(b *testing.B) {
	sw := sharedSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Fig11VoltageNoise(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12HeatMaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12HeatMaps(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13ActivityBins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13ActivityBins(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14NoiseTransient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14NoiseTransient(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15LDOvsFIVR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15LDOvsFIVR(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Emergencies(b *testing.B) {
	sw := sharedSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Table2Emergencies(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadlinePracVT(b *testing.B) {
	sw := sharedSweep(b)
	b.ResetTimer()
	var h *experiments.Headline
	for i := 0; i < b.N; i++ {
		var err error
		h, err = sw.Headline(0.90)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.TmaxDeltaC, "TmaxΔ°C")
	b.ReportMetric(h.GradientDeltaC, "gradΔ°C")
	b.ReportMetric(h.NoiseDeltaPct, "noiseΔ%")
}

// --- Ablations of the reproduction's design choices (DESIGN.md §5) ---

// BenchmarkAblationThermalStep varies the thermal integrator's substep cap
// to show the compact RC network is step-size insensitive at the chosen
// default.
func BenchmarkAblationThermalStep(b *testing.B) {
	for _, stepS := range []float64{5e-5, 2e-4} {
		name := "step=50us"
		if stepS == 2e-4 {
			name = "step=200us"
		}
		b.Run(name, func(b *testing.B) {
			bench, _ := workload.ByName("lu_ncb")
			cfg := sim.DefaultConfig(core.OracT, bench)
			cfg.DurationMS = 120
			cfg.WarmupEpochs = 20
			cfg.Thermal.MaxEulerStepS = stepS
			b.ResetTimer()
			var tmax float64
			for i := 0; i < b.N; i++ {
				r, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.Run()
				if err != nil {
					b.Fatal(err)
				}
				tmax = res.MaxTempC
			}
			b.ReportMetric(tmax, "Tmax°C")
		})
	}
}

// BenchmarkAblationPredictor ablates PracT's practical predictor parts:
// the three-point WMA demand forecaster against a last-value predictor
// (window=1), and the sensor-trend compensation against plain Eqn. 2
// (trend=0). Reported Tmax shows what each part buys.
func BenchmarkAblationPredictor(b *testing.B) {
	cases := []struct {
		name      string
		window    int
		trendGain float64
	}{
		{"window=1", 1, 0.45},
		{"window=3", 3, 0.45},
		{"trend=0", 3, 0},
	}
	for _, tc := range cases {
		window, trendGain, name := tc.window, tc.trendGain, tc.name
		b.Run(name, func(b *testing.B) {
			bench, _ := workload.ByName("lu_ncb")
			cfg := sim.DefaultConfig(core.PracT, bench)
			cfg.DurationMS = 150
			cfg.WarmupEpochs = 20
			cfg.ProfilingEpochs = 80
			cfg.Governor.WMAWindow = window
			cfg.Governor.TrendGain = trendGain
			b.ResetTimer()
			var tmax float64
			for i := 0; i < b.N; i++ {
				r, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.Run()
				if err != nil {
					b.Fatal(err)
				}
				tmax = res.MaxTempC
			}
			b.ReportMetric(tmax, "Tmax°C")
		})
	}
}

// BenchmarkAblationSampling varies the VoltSpot-style transient window
// length, showing the 2K-cycle default captures the burst peak.
func BenchmarkAblationSampling(b *testing.B) {
	chip := floorplan.MustPOWER8()
	grid, err := pdn.NewNetwork(chip, pdn.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cur := make([]float64, len(chip.Blocks))
	for i, blk := range chip.Blocks {
		if blk.Kind == floorplan.Logic {
			cur[i] = 3
		} else {
			cur[i] = 1
		}
	}
	bursts := []pdn.Burst{{StartCycle: 300, Cycles: 500, Amp: 1.2}}
	for _, cycles := range []int{500, 2000} {
		name := "cycles=500"
		if cycles == 2000 {
			name = "cycles=2000"
		}
		b.Run(name, func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				win, err := grid.TransientWindow(0, 0, cur, grid.AllOnMask(0), bursts, cycles, 4.0, 1)
				if err != nil {
					b.Fatal(err)
				}
				peak = 0
				for _, v := range win {
					if v > peak {
						peak = v
					}
				}
			}
			b.ReportMetric(peak, "peak%")
		})
	}
}

// BenchmarkAblationPDNModel compares the fast path-resistance model the
// control loop uses against the full nodal mesh solve: same ordering, three
// orders of magnitude apart in cost — which is why the loop uses the fast
// model and the mesh validates it.
func BenchmarkAblationPDNModel(b *testing.B) {
	chip := floorplan.MustPOWER8()
	cur := make([]float64, len(chip.Blocks))
	for i, blk := range chip.Blocks {
		if blk.Kind == floorplan.Logic {
			cur[i] = 3
		} else {
			cur[i] = 1
		}
	}
	b.Run("path-model", func(b *testing.B) {
		grid, err := pdn.NewNetwork(chip, pdn.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		mask := grid.AllOnMask(0)
		var worst float64
		for i := 0; i < b.N; i++ {
			dn, err := grid.SteadyNoise(0, cur, mask)
			if err != nil {
				b.Fatal(err)
			}
			worst = dn.MaxPct
		}
		b.ReportMetric(worst, "max%")
	})
	b.Run("mesh-solve", func(b *testing.B) {
		mesh, err := pdn.NewMesh(chip, 0, pdn.DefaultMeshConfig())
		if err != nil {
			b.Fatal(err)
		}
		mask := make([]bool, 9)
		for i := range mask {
			mask[i] = true
		}
		var worst float64
		for i := 0; i < b.N; i++ {
			sol, err := mesh.Solve(cur, mask)
			if err != nil {
				b.Fatal(err)
			}
			worst = sol.MaxPct
		}
		b.ReportMetric(worst, "max%")
	})
}

// BenchmarkAblationThermalModel compares the compact block-mode RC network
// against the fine-grid solver on the same power map.
func BenchmarkAblationThermalModel(b *testing.B) {
	chip := floorplan.MustPOWER8()
	bp := make([]float64, len(chip.Blocks))
	vp := make([]float64, len(chip.Regulators))
	for i, blk := range chip.Blocks {
		if blk.Kind == floorplan.Logic {
			bp[i] = 3
		} else {
			bp[i] = 1.2
		}
	}
	for i := range vp {
		vp[i] = 0.12
	}
	b.Run("compact", func(b *testing.B) {
		var tmax float64
		for i := 0; i < b.N; i++ {
			m, err := thermal.NewModel(chip, thermal.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if err := m.SetPower(bp, vp); err != nil {
				b.Fatal(err)
			}
			if _, err := m.SteadyState(1e-5, 0); err != nil {
				b.Fatal(err)
			}
			tmax, _ = m.MaxTemp()
		}
		b.ReportMetric(tmax, "Tmax°C")
	})
	b.Run("grid42", func(b *testing.B) {
		var tmax float64
		for i := 0; i < b.N; i++ {
			g, err := thermal.NewGridModel(chip, thermal.DefaultConfig(), 42, 42)
			if err != nil {
				b.Fatal(err)
			}
			if err := g.SetPower(bp, vp); err != nil {
				b.Fatal(err)
			}
			if _, err := g.SteadyState(1e-4, 0); err != nil {
				b.Fatal(err)
			}
			tmax, _ = g.MaxTemp()
		}
		b.ReportMetric(tmax, "Tmax°C")
	})
}

// BenchmarkAgingTracking measures the cost of the Section 7 wear model and
// reports the weakest-regulator lifetime under OracT.
func BenchmarkAgingTracking(b *testing.B) {
	bench, _ := workload.ByName("lu_ncb")
	cfg := sim.DefaultConfig(core.OracT, bench)
	cfg.DurationMS = 120
	cfg.WarmupEpochs = 20
	cfg.TrackAging = true
	var mttf float64
	for i := 0; i < b.N; i++ {
		r, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		mttf = res.MinMTTFYears
	}
	b.ReportMetric(mttf, "minMTTFyears")
}

// --- Micro-benchmarks of the hot simulation paths ---

func BenchmarkThermalStep(b *testing.B) {
	m, err := thermal.NewModel(floorplan.MustPOWER8(), thermal.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	bp := make([]float64, len(m.Chip().Blocks))
	vp := make([]float64, len(m.Chip().Regulators))
	for i := range bp {
		bp[i] = 1
	}
	if err := m.SetPower(bp, vp); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPDNSteadyNoise(b *testing.B) {
	chip := floorplan.MustPOWER8()
	grid, err := pdn.NewNetwork(chip, pdn.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cur := make([]float64, len(chip.Blocks))
	for i := range cur {
		cur[i] = power.WattsToAmps(2)
	}
	mask := grid.AllOnMask(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := grid.SteadyNoise(0, cur, mask); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUarchStep(b *testing.B) {
	bench, _ := workload.ByName("barnes")
	s, err := uarch.New(floorplan.MustPOWER8(), bench, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(uarch.DefaultStepMS); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVRNetworkNOn(b *testing.B) {
	nw, err := vr.NewNetwork(vr.FIVR(), 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nw.NOn(float64(i%14) + 0.5)
	}
}

func BenchmarkSimEpoch(b *testing.B) {
	// Cost of one simulated millisecond end to end, amortised over a run.
	bench, _ := workload.ByName("fft")
	cfg := sim.DefaultConfig(core.OracT, bench)
	cfg.DurationMS = 100
	cfg.WarmupEpochs = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
