// Package thermogater is a full reimplementation of the system evaluated in
// "ThermoGater: Thermally-Aware On-Chip Voltage Regulation" (ISCA 2017):
// an architectural governor that gates the many small voltage regulators
// distributed across a chip so that power conversion stays at its peak
// efficiency while regulator-induced thermal emergencies and voltage noise
// remain under control.
//
// The package is a facade over the full simulation stack — an 8-core
// POWER8-like floorplan with 96 regulators in 16 Vdd-domains, a synthetic
// SPLASH2x workload suite, a McPAT-style power model, a HotSpot-style RC
// thermal network, a VoltSpot-style power delivery network and the
// ThermoGater governor itself. A single call runs a benchmark under a
// gating policy and reports the paper's metrics:
//
//	res, err := thermogater.Run("pracVT", "lu_ncb")
//	fmt.Println(res.MaxTempC, res.MaxNoisePct, res.AvgEta)
//
// See the examples directory for richer scenarios, and internal/experiments
// for the code that regenerates every table and figure of the paper.
package thermogater

import (
	"fmt"

	"thermogater/internal/core"
	"thermogater/internal/dvfs"
	"thermogater/internal/floorplan"
	"thermogater/internal/pdn"
	"thermogater/internal/sim"
	"thermogater/internal/vr"
	"thermogater/internal/workload"
)

// Result aggregates one simulation run; see the field documentation on the
// underlying type for the paper figure each metric corresponds to.
type Result = sim.Result

// EpochStats is one per-epoch trace entry (enable with WithEpochTrace).
type EpochStats = sim.EpochStats

// VRSample is one tracked-regulator trace entry (enable with
// WithTrackedRegulator).
type VRSample = sim.VRSample

// Chip-scale constants of the modelled processor.
const (
	// NumCores is the core count (Table 1 of the paper).
	NumCores = floorplan.NumCores
	// NumDomains is the number of independently gated Vdd-domains.
	NumDomains = floorplan.NumCores + floorplan.NumL3Banks
	// NumRegulators is the chip-wide component regulator count.
	NumRegulators = floorplan.TotalVRs
	// NominalVdd is the supply voltage in volts.
	NominalVdd = vr.NominalVdd
	// PeakEfficiency is the per-regulator peak conversion efficiency the
	// governor sustains.
	PeakEfficiency = 0.90
)

// Policies returns the names of all built-in gating policies, in the order
// the paper's figures use.
func Policies() []string {
	var names []string
	for _, p := range core.AllPolicies() {
		names = append(names, p.String())
	}
	return names
}

// Benchmarks returns the names of the 14 synthetic SPLASH2x benchmarks.
func Benchmarks() []string {
	var names []string
	for _, p := range workload.Suite() {
		names = append(names, p.Name)
	}
	return names
}

// PolicyInputs is the decision-time information a custom policy may
// consult. All slices are read-only views.
type PolicyInputs struct {
	// Epoch is the decision index (one per millisecond).
	Epoch int
	// SensorVRTempsC holds the (100µs-stale) per-regulator temperatures.
	SensorVRTempsC []float64
	// PrevDomainCurrentA holds the previous interval's per-domain load.
	PrevDomainCurrentA []float64
}

// RankFunc orders one domain's regulators, most-preferred-on first. It
// receives the domain index, the decision inputs, the anticipated domain
// current and the number of regulators that will be activated; it must
// return a permutation of {0..n-1} over the domain's regulators.
type RankFunc func(domain int, in PolicyInputs, demandA float64, count int) []int

// Option customises a simulation run.
type Option func(*sim.Config) error

// WithDuration truncates the run to the given number of milliseconds
// (each benchmark's full region of interest is 3000ms).
func WithDuration(ms int) Option {
	return func(c *sim.Config) error {
		if ms <= 0 {
			return fmt.Errorf("thermogater: duration %dms must be positive", ms)
		}
		c.DurationMS = ms
		return nil
	}
}

// WithSeed fixes the run's random seed; runs are fully deterministic for a
// given seed.
func WithSeed(seed uint64) Option {
	return func(c *sim.Config) error {
		c.Seed = seed
		return nil
	}
}

// WithEpochTrace records the per-epoch trace (power demand, active
// regulator count, thermal and noise maxima) in Result.Trace.
func WithEpochTrace() Option {
	return func(c *sim.Config) error {
		c.TraceEpochs = true
		return nil
	}
}

// WithHeatMap captures a res×res temperature frame at the hottest moment
// of the run in Result.HeatMap.
func WithHeatMap(res int) Option {
	return func(c *sim.Config) error {
		if res < 1 {
			return fmt.Errorf("thermogater: heat map resolution %d must be positive", res)
		}
		c.HeatMapRes = res
		return nil
	}
}

// WithTrackedRegulator records the temperature and on/off state of one
// regulator (0..NumRegulators-1) in Result.VRTrace.
func WithTrackedRegulator(id int) Option {
	return func(c *sim.Config) error {
		if id < 0 || id >= NumRegulators {
			return fmt.Errorf("thermogater: regulator %d outside [0, %d)", id, NumRegulators)
		}
		c.TrackVR = id
		return nil
	}
}

// WithLDODesign switches the component regulators to the POWER8-like
// digital LDO design point (same calibrated efficiency curves, 1ns
// response instead of the buck's 10ns).
func WithLDODesign() Option {
	return func(c *sim.Config) error {
		c.Design = vr.POWER8LDO()
		c.PDN = pdn.LDOConfig()
		return nil
	}
}

// WithDVFS layers a per-core dynamic voltage/frequency governor under
// ThermoGater: cores whose utilisation stays low step down the V/f ladder,
// shrinking their Vdd-domains' current demand so that gating keeps even
// fewer regulators active. Result.DVFSAvgVddV and DVFSAvgPerf report the
// outcome.
func WithDVFS() Option {
	return func(c *sim.Config) error {
		cfg := dvfs.DefaultConfig()
		c.DVFS = &cfg
		return nil
	}
}

// WithSignatureDetector replaces PracVT's abstract stochastic emergency
// detector with the concrete Reddi-style signature predictor: a table of
// saturating counters keyed on observable per-domain state (demand level,
// trend, droop persistence) that learns which recurring signatures precede
// voltage emergencies. Result.DetectorStats reports its confusion matrix.
func WithSignatureDetector() Option {
	return func(c *sim.Config) error {
		c.Governor.Detector = core.DetectSignature
		return nil
	}
}

// WithAgingTracking accumulates per-regulator electromigration-style wear
// and reports MTTF estimates in Result.MTTFYears / MinMTTFYears /
// AgingImbalance — the quantitative version of the paper's Section 7
// aging discussion.
func WithAgingTracking() Option {
	return func(c *sim.Config) error {
		c.TrackAging = true
		return nil
	}
}

// WithWarmup overrides the number of epochs excluded from statistics.
func WithWarmup(epochs int) Option {
	return func(c *sim.Config) error {
		if epochs < 0 {
			return fmt.Errorf("thermogater: negative warmup %d", epochs)
		}
		c.WarmupEpochs = epochs
		return nil
	}
}

// Run simulates one benchmark under the named gating policy ("off-chip",
// "all-on", "naive", "oracT", "oracV", "oracVT", "pracT", "pracVT") and
// returns the aggregated metrics. Benchmark accepts both full names
// ("ocean_cp") and the paper's short labels ("oc_cp").
func Run(policy, benchmark string, opts ...Option) (*Result, error) {
	p, err := core.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	if p == core.Custom {
		return nil, fmt.Errorf("thermogater: use RunCustom for custom policies")
	}
	bench, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig(p, bench)
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	r, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// RunCustom simulates a benchmark under a user-defined gating policy: the
// governor still sizes the active regulator count to sustain peak
// conversion efficiency (using the practical WMA demand forecaster), and
// rank decides which regulators stay on.
func RunCustom(rank RankFunc, benchmark string, opts ...Option) (*Result, error) {
	if rank == nil {
		return nil, fmt.Errorf("thermogater: nil rank function")
	}
	bench, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig(core.Custom, bench)
	cfg.Governor.CustomRank = func(domain int, in *core.Inputs, demandA float64, count int) []int {
		return rank(domain, PolicyInputs{
			Epoch:              in.Epoch,
			SensorVRTempsC:     in.SensorVRTemps,
			PrevDomainCurrentA: in.PrevDomainCurrent,
		}, demandA, count)
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	r, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// RunMix simulates a multiprogrammed workload — one independent benchmark
// per core (Section 7 of the paper: ThermoGater controls each Vdd-domain
// independently and accommodates workload heterogeneity). benchmarks must
// name exactly NumCores workloads; short labels are accepted.
func RunMix(policy string, benchmarks []string, opts ...Option) (*Result, error) {
	p, err := core.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	if p == core.Custom {
		return nil, fmt.Errorf("thermogater: use RunCustom for custom policies")
	}
	if len(benchmarks) != NumCores {
		return nil, fmt.Errorf("thermogater: mix needs %d benchmarks, got %d", NumCores, len(benchmarks))
	}
	mix := make([]workload.Profile, len(benchmarks))
	for i, name := range benchmarks {
		prof, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		mix[i] = prof
	}
	cfg := sim.DefaultConfig(p, mix[0])
	cfg.Mix = mix
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	r, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// DomainRegulators returns the global regulator IDs of each Vdd-domain,
// indexed by domain (0..7 are the core domains, 8..15 the L3-bank
// domains); useful for interpreting Result.VROnFrac and for writing custom
// policies.
func DomainRegulators() [][]int {
	chip := floorplan.MustPOWER8()
	out := make([][]int, len(chip.Domains))
	for i, d := range chip.Domains {
		out[i] = append([]int(nil), d.Regulators...)
	}
	return out
}

// RegulatorSides reports, for one core domain (0..NumCores-1), which of
// its regulators sit over logic units and which over the private L2 —
// the distinction behind the paper's Fig. 13 and the thermal-vs-noise
// trade-off. Returned IDs are global regulator IDs.
func RegulatorSides(coreDomain int) (logic, memory []int, err error) {
	chip, err := floorplan.BuildPOWER8()
	if err != nil {
		return nil, nil, err
	}
	if coreDomain < 0 || coreDomain >= NumCores {
		return nil, nil, fmt.Errorf("thermogater: core domain %d outside [0, %d)", coreDomain, NumCores)
	}
	return chip.LogicSideRegulators(coreDomain)
}
