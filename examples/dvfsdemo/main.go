// DVFS demo: the reason processors integrate on-chip regulators in the
// first place is fast, fine-grain, per-domain voltage control (the
// POWER8's microregulators exist to enable per-core DVFS). This example
// layers a per-core DVFS governor under ThermoGater and compares a light
// workload with and without it: the low-utilisation cores step down the
// V/f ladder, chip power and regulator conversion loss drop, and the
// gating governor still sustains near-peak conversion efficiency on the
// shrunken demand.
//
//	go run ./examples/dvfsdemo [benchmark [durationMS]]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"thermogater"
)

func main() {
	bench := "raytrace"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	duration := 400
	if len(os.Args) > 2 {
		d, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad duration %q: %v", os.Args[2], err)
		}
		duration = d
	}

	base, err := thermogater.Run("pracVT", bench,
		thermogater.WithDuration(duration), thermogater.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	scaled, err := thermogater.Run("pracVT", bench,
		thermogater.WithDuration(duration), thermogater.WithSeed(1), thermogater.WithDVFS())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Per-core DVFS under ThermoGater on %s\n\n", bench)
	fmt.Printf("%-28s %10s %10s\n", "metric", "nominal", "with DVFS")
	fmt.Printf("%-28s %10.1f %10.1f\n", "avg chip power (W)", base.AvgChipPowerW, scaled.AvgChipPowerW)
	fmt.Printf("%-28s %10.2f %10.2f\n", "avg conversion loss (W)", base.AvgPlossW, scaled.AvgPlossW)
	fmt.Printf("%-28s %10.4f %10.4f\n", "avg conversion efficiency", base.AvgEta, scaled.AvgEta)
	fmt.Printf("%-28s %10.2f %10.2f\n", "max temperature (°C)", base.MaxTempC, scaled.MaxTempC)
	fmt.Printf("%-28s %10s %10.3f\n", "avg performance scale", "1.000", scaled.DVFSAvgPerf)

	fmt.Println("\naverage Vdd per core (nominal 1.03V):")
	for c, v := range scaled.DVFSAvgVddV {
		fmt.Printf("  core%d: %.3fV\n", c, v)
	}
	saving := 100 * (1 - scaled.AvgChipPowerW/base.AvgChipPowerW)
	fmt.Printf("\npower saving: %.1f%% — bought with %.1f%% of performance,\n",
		saving, 100*(1-scaled.DVFSAvgPerf))
	fmt.Println("while regulator gating keeps conversion at peak efficiency throughout.")
}
