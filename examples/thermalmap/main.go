// Thermal map: run one benchmark under two policies and render the on-die
// temperature field at the hottest moment as ASCII art — the textual
// version of the paper's Fig. 12 heat maps. The top band of the die holds
// the eight cores (the hotspots); the lower two thirds hold the L3 banks.
// Under all-on, the regulator loss sits on top of the core hotspots; under
// OracT the governor moves the active regulators over the cache, visibly
// cooling the core band.
//
//	go run ./examples/thermalmap [benchmark [durationMS]]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"thermogater"
)

const res = 64

func main() {
	bench := "cholesky"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	duration := 400
	if len(os.Args) > 2 {
		d, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad duration %q: %v", os.Args[2], err)
		}
		duration = d
	}

	for _, policy := range []string{"all-on", "oracT"} {
		res, err := thermogater.Run(policy, bench,
			thermogater.WithDuration(duration),
			thermogater.WithHeatMap(res),
			thermogater.WithSeed(1),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s under %s — Tmax %.1f°C at %s, gradient %.1f°C\n",
			bench, policy, res.MaxTempC, res.MaxTempAt, res.MaxGradientC)
		render(res.HeatMap)
		fmt.Println()
	}
}

// render draws the grid with ASCII shades, coolest ' ' to hottest '@'.
func render(grid [][]float64) {
	shades := []byte(" .:-=+*#%@")
	lo, hi := grid[0][0], grid[0][0]
	for _, row := range grid {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	fmt.Printf("scale: ' ' = %.1f°C, '@' = %.1f°C\n", lo, hi)
	for _, row := range grid {
		line := make([]byte, len(row))
		for i, v := range row {
			idx := 0
			if hi > lo {
				idx = int((v - lo) / (hi - lo) * float64(len(shades)-1))
			}
			line[i] = shades[idx]
		}
		fmt.Println(string(line))
	}
}
