// Policy comparison: run every gating policy of the paper on one benchmark
// and print the Figs. 9/10/11-style comparison — maximum temperature,
// maximum thermal gradient, maximum voltage noise, conversion loss and
// efficiency — in one table. This is the paper's evaluation in miniature:
// OracT is the thermal optimum but the noise worst case, OracV the
// opposite, and the practical PracVT lands within a fraction of a degree
// of the oracle while keeping noise near the all-on best case.
//
//	go run ./examples/policycompare [benchmark] [durationMS]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"thermogater"
)

func main() {
	bench := "barnes"
	duration := 400
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	if len(os.Args) > 2 {
		d, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad duration %q: %v", os.Args[2], err)
		}
		duration = d
	}

	fmt.Printf("Gating policy comparison on %s (%dms window)\n\n", bench, duration)
	fmt.Printf("%-9s %9s %9s %9s %9s %7s %9s\n",
		"policy", "Tmax(°C)", "grad(°C)", "noise(%)", "Ploss(W)", "eta", "emerg(%)")

	for _, policy := range thermogater.Policies() {
		res, err := thermogater.Run(policy, bench,
			thermogater.WithDuration(duration), thermogater.WithSeed(1))
		if err != nil {
			log.Fatalf("%s: %v", policy, err)
		}
		noise, ploss, eta, emerg := "-", "-", "-", "-"
		if res.NoiseModeled {
			noise = fmt.Sprintf("%9.2f", res.MaxNoisePct)
			ploss = fmt.Sprintf("%9.2f", res.AvgPlossW)
			eta = fmt.Sprintf("%7.4f", res.AvgEta)
			emerg = fmt.Sprintf("%9.4f", res.EmergencyFrac*100)
		}
		fmt.Printf("%-9s %9.2f %9.2f %9s %9s %7s %9s\n",
			res.Policy, res.MaxTempC, res.MaxGradientC, noise, ploss, eta, emerg)
	}

	fmt.Println("\nreading the table (paper Figs. 9-11):")
	fmt.Println("  - off-chip is the thermal baseline without on-chip regulation")
	fmt.Println("  - all-on is the voltage-noise best case but burns maximum conversion loss")
	fmt.Println("  - oracT minimises temperature, at the cost of the worst noise profile")
	fmt.Println("  - oracV minimises noise among gated policies, at the cost of heat")
	fmt.Println("  - pracVT is the deployable policy: near-oracle thermally, near-all-on in noise")
}
