// Quickstart: run the practical ThermoGater policy (PracVT) on one
// SPLASH2x benchmark and print the metrics the paper reports — maximum
// chip temperature, maximum thermal gradient, maximum voltage noise, and
// the sustained conversion efficiency.
//
//	go run ./examples/quickstart [benchmark [durationMS]]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"thermogater"
)

func main() {
	bench := "lu_ncb"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	duration := 500 // 500ms of the 3000ms region of interest
	if len(os.Args) > 2 {
		d, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad duration %q: %v", os.Args[2], err)
		}
		duration = d
	}

	fmt.Printf("ThermoGater quickstart: PracVT on %s (8 cores, %d regulators, %d Vdd-domains)\n\n",
		bench, thermogater.NumRegulators, thermogater.NumDomains)

	res, err := thermogater.Run("pracVT", bench,
		thermogater.WithDuration(duration),
		thermogater.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("measured epochs:            %d (1ms gating decisions)\n", res.Epochs)
	fmt.Printf("max chip temperature:       %.2f °C (at %s)\n", res.MaxTempC, res.MaxTempAt)
	fmt.Printf("max thermal gradient:       %.2f °C\n", res.MaxGradientC)
	fmt.Printf("max voltage noise:          %.2f %% of nominal Vdd\n", res.MaxNoisePct)
	fmt.Printf("time in voltage emergency:  %.4f %%\n", res.EmergencyFrac*100)
	fmt.Printf("emergency all-on overrides: %d domain-epochs\n", res.EmergencyOverrides)
	fmt.Printf("avg conversion efficiency:  %.4f (peak %.2f)\n", res.AvgEta, thermogater.PeakEfficiency)
	fmt.Printf("avg conversion loss:        %.2f W\n", res.AvgPlossW)
	fmt.Printf("avg chip power:             %.1f W\n", res.AvgChipPowerW)
	fmt.Printf("theta predictor fit (R²):   %.3f\n", res.ThetaMeanR2)
}
