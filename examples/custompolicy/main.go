// Custom policy: plug a user-defined gating policy into the ThermoGater
// governor. The governor keeps sizing the active regulator count so that
// conversion stays at peak efficiency; the custom ranking decides *which*
// regulators stay on.
//
// The example implements a wear-levelling policy the paper's conclusion
// hints at ("ThermoGater policies are likely to affect aging because
// utilization per regulator does not necessarily stay uniform"): a
// temperature-aware rotation that prefers cool regulators but adds a
// rotating bias so no regulator is favoured forever, then compares its
// regulator-utilisation spread against the built-in PracT.
//
//	go run ./examples/custompolicy [durationMS]
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"strconv"

	"thermogater"
)

func main() {
	const bench = "water_nsquared"
	duration := 400
	if len(os.Args) > 1 {
		d, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad duration %q: %v", os.Args[1], err)
		}
		duration = d
	}

	domains := thermogater.DomainRegulators()

	// Wear-levelling rank: order regulators by sensor temperature plus a
	// rotating epoch-dependent bonus, so the coolest regulators are
	// preferred but ties (and near-ties) rotate over time.
	rank := func(domain int, in thermogater.PolicyInputs, demandA float64, count int) []int {
		regs := domains[domain]
		n := len(regs)
		type kv struct {
			local int
			key   float64
		}
		kvs := make([]kv, n)
		for i, rid := range regs {
			rotation := float64((i+in.Epoch)%n) * 0.8 // °C-equivalent bias
			kvs[i] = kv{local: i, key: in.SensorVRTempsC[rid] + rotation}
		}
		// Insertion sort: nine elements at most.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && kvs[j].key < kvs[j-1].key; j-- {
				kvs[j], kvs[j-1] = kvs[j-1], kvs[j]
			}
		}
		out := make([]int, n)
		for i, e := range kvs {
			out[i] = e.local
		}
		return out
	}

	custom, err := thermogater.RunCustom(rank, bench,
		thermogater.WithDuration(duration), thermogater.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	pracT, err := thermogater.Run("pracT", bench,
		thermogater.WithDuration(duration), thermogater.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Wear-levelling custom policy vs PracT on %s\n\n", bench)
	fmt.Printf("%-22s %12s %12s\n", "metric", "custom", "pracT")
	fmt.Printf("%-22s %12.2f %12.2f\n", "max temperature (°C)", custom.MaxTempC, pracT.MaxTempC)
	fmt.Printf("%-22s %12.2f %12.2f\n", "max gradient (°C)", custom.MaxGradientC, pracT.MaxGradientC)
	fmt.Printf("%-22s %12.2f %12.2f\n", "max noise (%Vdd)", custom.MaxNoisePct, pracT.MaxNoisePct)
	fmt.Printf("%-22s %12.4f %12.4f\n", "avg efficiency", custom.AvgEta, pracT.AvgEta)
	fmt.Printf("%-22s %12.3f %12.3f\n", "utilisation stddev", onFracStdDev(custom.VROnFrac), onFracStdDev(pracT.VROnFrac))
	fmt.Println("\nA lower utilisation spread means regulator wear-out is balanced more")
	fmt.Println("evenly across the 96 regulators (the aging concern of Section 7),")
	fmt.Println("typically at a small cost in peak temperature.")
}

// onFracStdDev measures how unevenly the on-time is distributed across
// regulators.
func onFracStdDev(fracs []float64) float64 {
	var mean float64
	for _, f := range fracs {
		mean += f
	}
	mean /= float64(len(fracs))
	var vsum float64
	for _, f := range fracs {
		d := f - mean
		vsum += d * d
	}
	return math.Sqrt(vsum / float64(len(fracs)))
}
