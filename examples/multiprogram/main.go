// Multiprogrammed workload: run a different benchmark on each core and
// watch ThermoGater size every Vdd-domain independently — the Section 7
// claim that the governor "can accommodate heterogeneity in the workload,
// including multi-programming". Four cores run the hottest SPLASH2x
// program (cholesky), four the coldest (raytrace); the per-domain
// regulator utilisation then splits accordingly, while chip-wide
// efficiency stays at the peak.
//
//	go run ./examples/multiprogram [durationMS]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"thermogater"
)

func main() {
	duration := 400
	if len(os.Args) > 1 {
		d, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad duration %q: %v", os.Args[1], err)
		}
		duration = d
	}
	mix := []string{
		"cholesky", "cholesky", "cholesky", "cholesky",
		"raytrace", "raytrace", "raytrace", "raytrace",
	}
	res, err := thermogater.RunMix("pracVT", mix,
		thermogater.WithDuration(duration),
		thermogater.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Multiprogrammed run: %s under %s\n\n", res.Benchmark, res.Policy)
	fmt.Printf("max temperature: %.2f°C at %s, gradient %.2f°C, eta %.4f\n\n",
		res.MaxTempC, res.MaxTempAt, res.MaxGradientC, res.AvgEta)

	fmt.Println("average active regulators per core domain (of 9):")
	domains := thermogater.DomainRegulators()
	for core := 0; core < thermogater.NumCores; core++ {
		var sum float64
		for _, rid := range domains[core] {
			sum += res.VROnFrac[rid]
		}
		bar := ""
		for i := 0; i < int(sum+0.5); i++ {
			bar += "#"
		}
		fmt.Printf("  core%d (%-8s)  %4.1f  %s\n", core, mix[core][:min(8, len(mix[core]))], sum, bar)
	}
	fmt.Println("\nThe cholesky domains keep most of their nine regulators active to")
	fmt.Println("carry the hot program at peak conversion efficiency; the raytrace")
	fmt.Println("domains gate the majority of theirs — per-domain control in action.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
