// Package examples_test smoke-tests every example program: each one must
// build and run to completion (exit 0) on a tiny simulation window. The
// examples double as the project's user-facing documentation, so a broken
// example is a broken repo even when the library tests pass.
package examples_test

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// smokeRuns lists each example with arguments that shrink the simulated
// window to tens of milliseconds (still longer than the 20-epoch warm-up)
// so the whole suite stays fast.
var smokeRuns = []struct {
	dir  string
	args []string
}{
	{"quickstart", []string{"lu_ncb", "40"}},
	{"policycompare", []string{"barnes", "40"}},
	{"custompolicy", []string{"40"}},
	{"multiprogram", []string{"40"}},
	{"dvfsdemo", []string{"raytrace", "40"}},
	{"thermalmap", []string{"cholesky", "40"}},
}

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke runs are skipped in -short mode")
	}
	bindir := t.TempDir()
	for _, run := range smokeRuns {
		run := run
		t.Run(run.dir, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(bindir, run.dir)
			build := exec.Command("go", "build", "-o", bin, "./"+run.dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./%s: %v\n%s", run.dir, err, out)
			}
			cmd := exec.Command(bin, run.args...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", run.dir, run.args, err, out)
			}
			if len(out) == 0 {
				t.Errorf("%s produced no output", run.dir)
			}
		})
	}
}
