package floorplan

import (
	"fmt"
	"sort"
)

// BlockKind classifies a functional block for power and thermal modelling.
// Logic blocks are power dense and drive most of the current demand; memory
// blocks are comparatively cool; interconnect and IO sit in between.
type BlockKind int

const (
	// Logic marks power-dense computation blocks (IFU, ISU, EXU, LSU).
	Logic BlockKind = iota
	// Memory marks SRAM blocks (L2, L3 banks).
	Memory
	// Interconnect marks the network-on-chip.
	Interconnect
	// IO marks memory controllers and other pad-bound blocks.
	IO
)

// String implements fmt.Stringer.
func (k BlockKind) String() string {
	switch k {
	case Logic:
		return "logic"
	case Memory:
		return "memory"
	case Interconnect:
		return "interconnect"
	case IO:
		return "io"
	default:
		return fmt.Sprintf("BlockKind(%d)", int(k))
	}
}

// UnitClass identifies the microarchitectural role of a block; the activity
// simulator produces one activity series per class per core.
type UnitClass int

const (
	// UnitIFU is the instruction fetch unit (includes the L1-I cache).
	UnitIFU UnitClass = iota
	// UnitISU is the instruction scheduling unit.
	UnitISU
	// UnitEXU is the execution unit (integer + floating point).
	UnitEXU
	// UnitLSU is the load-store unit (includes the L1-D cache).
	UnitLSU
	// UnitL2 is the private per-core L2 cache.
	UnitL2
	// UnitL3 is one shared L3 bank.
	UnitL3
	// UnitNOC is the network-on-chip.
	UnitNOC
	// UnitMC is a memory controller.
	UnitMC
	// NumUnitClasses is the number of distinct unit classes.
	NumUnitClasses
)

var unitClassNames = [NumUnitClasses]string{
	"IFU", "ISU", "EXU", "LSU", "L2", "L3", "NOC", "MC",
}

// String implements fmt.Stringer.
func (u UnitClass) String() string {
	if u >= 0 && int(u) < len(unitClassNames) {
		return unitClassNames[u]
	}
	return fmt.Sprintf("UnitClass(%d)", int(u))
}

// Block is one functional block on the die.
type Block struct {
	// ID indexes the block in Chip.Blocks.
	ID int
	// Name is a unique human-readable identifier, e.g. "core3/EXU".
	Name string
	// Kind classifies the block for power density modelling.
	Kind BlockKind
	// Class is the microarchitectural role of the block.
	Class UnitClass
	// Core is the core index for per-core blocks, or -1 for uncore blocks.
	Core int
	// Domain is the index of the Vdd-domain supplying this block, or -1
	// for blocks outside any gated domain (NOC, MC).
	Domain int
	// R is the block footprint.
	R Rect
}

// Regulator is one distributed component voltage regulator (a "phase" in
// Intel terminology, a "microregulator" in IBM terminology).
type Regulator struct {
	// ID indexes the regulator in Chip.Regulators (0..95).
	ID int
	// Domain is the Vdd-domain this regulator belongs to.
	Domain int
	// Pos is the regulator centre on the die.
	Pos Point
	// AreaMM2 is the regulator footprint in mm² (0.04 in the paper).
	AreaMM2 float64
	// NearestBlock is the ID of the block whose footprint contains (or is
	// closest to) the regulator; the regulator primarily feeds this block.
	NearestBlock int
}

// DomainKind distinguishes the two Vdd-domain flavours of the paper's setup.
type DomainKind int

const (
	// CoreDomain supplies one core plus its private L1s and L2 (9 VRs).
	CoreDomain DomainKind = iota
	// L3Domain supplies one L3 bank (3 VRs).
	L3Domain
)

// String implements fmt.Stringer.
func (k DomainKind) String() string {
	if k == CoreDomain {
		return "core"
	}
	return "l3"
}

// Domain is one independently regulated Vdd-domain.
type Domain struct {
	// ID indexes the domain in Chip.Domains (0..15).
	ID int
	// Kind tells whether this is a core or an L3-bank domain.
	Kind DomainKind
	// Name is a human-readable identifier, e.g. "core3" or "l3bank5".
	Name string
	// Blocks holds the IDs of the blocks supplied by this domain.
	Blocks []int
	// Regulators holds the IDs of the component VRs of this domain.
	Regulators []int
	// Bounds is the bounding box of the domain's blocks.
	Bounds Rect
}

// Chip is the complete die description.
type Chip struct {
	// WidthMM and HeightMM are the die dimensions (21×21mm for 441mm²).
	WidthMM, HeightMM float64
	// Blocks lists every functional block, indexed by Block.ID.
	Blocks []Block
	// Regulators lists every component VR, indexed by Regulator.ID.
	Regulators []Regulator
	// Domains lists the 16 Vdd-domains, indexed by Domain.ID.
	Domains []Domain

	byName map[string]int
}

// NumCores is the core count of the modelled chip.
const NumCores = 8

// NumL3Banks is the shared L3 bank count.
const NumL3Banks = 8

// VRsPerCoreDomain is the component regulator count per core domain.
const VRsPerCoreDomain = 9

// VRsPerL3Domain is the component regulator count per L3-bank domain.
const VRsPerL3Domain = 3

// TotalVRs is the chip-wide component regulator count (96 in the paper).
const TotalVRs = NumCores*VRsPerCoreDomain + NumL3Banks*VRsPerL3Domain

// RegulatorAreaMM2 is the footprint of one component VR (Section 5).
const RegulatorAreaMM2 = 0.04

// BlockByName returns the block with the given name.
func (c *Chip) BlockByName(name string) (*Block, error) {
	i, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("floorplan: no block named %q", name)
	}
	return &c.Blocks[i], nil
}

// BlockAt returns the block containing the point, or nil when the point is
// outside every block (e.g. in the narrow channels between blocks).
func (c *Chip) BlockAt(p Point) *Block {
	for i := range c.Blocks {
		if c.Blocks[i].R.Contains(p) {
			return &c.Blocks[i]
		}
	}
	return nil
}

// NearestBlock returns the block whose footprint is closest to the point.
func (c *Chip) NearestBlock(p Point) *Block {
	best, bestD := -1, 0.0
	for i := range c.Blocks {
		d := c.Blocks[i].R.DistanceToPoint(p)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return &c.Blocks[best]
}

// DomainOf returns the Vdd-domain of the given regulator ID.
func (c *Chip) DomainOf(reg int) *Domain {
	return &c.Domains[c.Regulators[reg].Domain]
}

// CoreDomains returns the IDs of the 8 per-core domains in core order.
func (c *Chip) CoreDomains() []int {
	var ids []int
	for _, d := range c.Domains {
		if d.Kind == CoreDomain {
			ids = append(ids, d.ID)
		}
	}
	return ids
}

// L3Domains returns the IDs of the 8 per-L3-bank domains in bank order.
func (c *Chip) L3Domains() []int {
	var ids []int
	for _, d := range c.Domains {
		if d.Kind == L3Domain {
			ids = append(ids, d.ID)
		}
	}
	return ids
}

// Validate checks structural invariants of the floorplan: block name
// uniqueness, regulator/domain cross references, VR counts, and that blocks
// within a domain do not overlap.
func (c *Chip) Validate() error {
	if len(c.Regulators) != TotalVRs {
		return fmt.Errorf("floorplan: %d regulators, want %d", len(c.Regulators), TotalVRs)
	}
	if len(c.Domains) != NumCores+NumL3Banks {
		return fmt.Errorf("floorplan: %d domains, want %d", len(c.Domains), NumCores+NumL3Banks)
	}
	seen := make(map[string]bool, len(c.Blocks))
	for i, b := range c.Blocks {
		if b.ID != i {
			return fmt.Errorf("floorplan: block %q has ID %d at index %d", b.Name, b.ID, i)
		}
		if seen[b.Name] {
			return fmt.Errorf("floorplan: duplicate block name %q", b.Name)
		}
		seen[b.Name] = true
		if b.R.W <= 0 || b.R.H <= 0 {
			return fmt.Errorf("floorplan: block %q has non-positive extent", b.Name)
		}
		if b.R.X < 0 || b.R.Y < 0 || b.R.X+b.R.W > c.WidthMM+1e-9 || b.R.Y+b.R.H > c.HeightMM+1e-9 {
			return fmt.Errorf("floorplan: block %q extends outside the die", b.Name)
		}
	}
	for i := range c.Blocks {
		for j := i + 1; j < len(c.Blocks); j++ {
			if c.Blocks[i].R.Intersects(c.Blocks[j].R) {
				return fmt.Errorf("floorplan: blocks %q and %q overlap",
					c.Blocks[i].Name, c.Blocks[j].Name)
			}
		}
	}
	for i, r := range c.Regulators {
		if r.ID != i {
			return fmt.Errorf("floorplan: regulator %d has ID %d", i, r.ID)
		}
		if r.Domain < 0 || r.Domain >= len(c.Domains) {
			return fmt.Errorf("floorplan: regulator %d references domain %d", i, r.Domain)
		}
		found := false
		for _, id := range c.Domains[r.Domain].Regulators {
			if id == i {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("floorplan: regulator %d missing from domain %d", i, r.Domain)
		}
	}
	for _, d := range c.Domains {
		want := VRsPerCoreDomain
		if d.Kind == L3Domain {
			want = VRsPerL3Domain
		}
		if len(d.Regulators) != want {
			return fmt.Errorf("floorplan: domain %s has %d VRs, want %d", d.Name, len(d.Regulators), want)
		}
		for _, bid := range d.Blocks {
			if c.Blocks[bid].Domain != d.ID {
				return fmt.Errorf("floorplan: block %q not back-linked to domain %s",
					c.Blocks[bid].Name, d.Name)
			}
		}
	}
	return nil
}

// SortedBlockNames returns all block names in lexicographic order; useful
// for deterministic iteration and reporting.
func (c *Chip) SortedBlockNames() []string {
	names := make([]string, 0, len(c.Blocks))
	for _, b := range c.Blocks {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	return names
}

func (c *Chip) index() {
	c.byName = make(map[string]int, len(c.Blocks))
	for i, b := range c.Blocks {
		c.byName[b.Name] = i
	}
}
