package floorplan

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectArea(t *testing.T) {
	r := Rect{1, 2, 3, 4}
	if got := r.Area(); got != 12 {
		t.Errorf("Area() = %v, want 12", got)
	}
}

func TestRectCenter(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	c := r.Center()
	if c.X != 2 || c.Y != 1 {
		t.Errorf("Center() = %v, want (2,1)", c)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{1, 1}, true},
		{Point{0, 0}, true},  // top-left inclusive
		{Point{2, 2}, false}, // bottom-right exclusive
		{Point{2, 1}, false}, // right edge exclusive
		{Point{1, 2}, false}, // bottom edge exclusive
		{Point{-1, 1}, false},
		{Point{1, 3}, false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	if !a.Intersects(Rect{1, 1, 2, 2}) {
		t.Error("overlapping rects reported as disjoint")
	}
	if a.Intersects(Rect{2, 0, 2, 2}) {
		t.Error("edge-adjacent rects reported as overlapping")
	}
	if a.Intersects(Rect{5, 5, 1, 1}) {
		t.Error("distant rects reported as overlapping")
	}
}

func TestRectIntersection(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 4, 4}
	got, ok := a.Intersection(b)
	if !ok {
		t.Fatal("Intersection() reported no overlap")
	}
	want := Rect{2, 2, 2, 2}
	if got != want {
		t.Errorf("Intersection() = %v, want %v", got, want)
	}
	if _, ok := a.Intersection(Rect{10, 10, 1, 1}); ok {
		t.Error("Intersection() of disjoint rects reported overlap")
	}
}

func TestRectSharedEdge(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	tests := []struct {
		name string
		b    Rect
		want float64
	}{
		{"right neighbour full height", Rect{2, 0, 2, 2}, 2},
		{"right neighbour half height", Rect{2, 1, 2, 2}, 1},
		{"below neighbour", Rect{0, 2, 2, 3}, 2},
		{"corner touch", Rect{2, 2, 2, 2}, 0},
		{"disjoint", Rect{5, 5, 1, 1}, 0},
	}
	for _, tt := range tests {
		if got := a.SharedEdge(tt.b); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: SharedEdge = %v, want %v", tt.name, got, tt.want)
		}
		// Shared edges are symmetric.
		if got := tt.b.SharedEdge(a); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: reverse SharedEdge = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestRectDistanceToPoint(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if d := r.DistanceToPoint(Point{1, 1}); d != 0 {
		t.Errorf("inside point distance = %v, want 0", d)
	}
	if d := r.DistanceToPoint(Point{5, 1}); math.Abs(d-3) > 1e-12 {
		t.Errorf("right point distance = %v, want 3", d)
	}
	if d := r.DistanceToPoint(Point{5, 6}); math.Abs(d-5) > 1e-12 {
		t.Errorf("diagonal point distance = %v, want 5", d)
	}
}

func TestPointDistance(t *testing.T) {
	if d := (Point{0, 0}).DistanceTo(Point{3, 4}); d != 5 {
		t.Errorf("DistanceTo = %v, want 5", d)
	}
}

// Property: intersection area is never larger than either operand's area,
// and Intersects agrees with Intersection.
func TestRectIntersectionProperties(t *testing.T) {
	norm := func(x float64) float64 { return math.Mod(math.Abs(x), 20) }
	f := func(x0, y0, w0, h0, x1, y1, w1, h1 float64) bool {
		a := Rect{norm(x0), norm(y0), norm(w0) + 0.01, norm(h0) + 0.01}
		b := Rect{norm(x1), norm(y1), norm(w1) + 0.01, norm(h1) + 0.01}
		inter, ok := a.Intersection(b)
		if ok != a.Intersects(b) {
			return false
		}
		if !ok {
			return true
		}
		return inter.Area() <= a.Area()+1e-9 && inter.Area() <= b.Area()+1e-9 &&
			inter.Area() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DistanceTo is symmetric and satisfies the triangle inequality.
func TestPointDistanceProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Keep values in a sane range to avoid overflow-driven false alarms.
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 1e6)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		if math.Abs(a.DistanceTo(b)-b.DistanceTo(a)) > 1e-9 {
			return false
		}
		return a.DistanceTo(c) <= a.DistanceTo(b)+b.DistanceTo(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
