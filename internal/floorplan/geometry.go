// Package floorplan models the physical layout of the simulated chip: the
// functional blocks of each core, the shared L3 banks and uncore, and the 96
// distributed on-chip voltage regulators grouped into 16 Vdd-domains,
// mirroring the 8-core POWER8-like floorplan of the ThermoGater paper
// (ISCA'17, Fig. 4 and Section 5).
//
// All geometry is expressed in millimetres with the origin at the top-left
// corner of the die, x growing right and y growing down.
package floorplan

import (
	"fmt"
	"math"
)

// Point is a location on the die in millimetres.
type Point struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance between two points in mm.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point {
	return Point{p.X + dx, p.Y + dy}
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y)
}

// Rect is an axis-aligned rectangle on the die. X, Y locate the top-left
// corner; W and H are the width and height, all in millimetres.
type Rect struct {
	X, Y, W, H float64
}

// Area returns the rectangle area in mm².
func (r Rect) Area() float64 {
	return r.W * r.H
}

// Center returns the geometric centre of the rectangle.
func (r Rect) Center() Point {
	return Point{r.X + r.W/2, r.Y + r.H/2}
}

// Contains reports whether the point lies inside the rectangle (inclusive of
// the top/left edges, exclusive of the bottom/right edges, so that adjacent
// rectangles tile the plane without overlap).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X && p.X < r.X+r.W && p.Y >= r.Y && p.Y < r.Y+r.H
}

// Intersects reports whether two rectangles overlap with positive area.
func (r Rect) Intersects(s Rect) bool {
	return r.X < s.X+s.W && s.X < r.X+r.W && r.Y < s.Y+s.H && s.Y < r.Y+r.H
}

// Intersection returns the overlapping region of two rectangles. The second
// return value is false when the rectangles do not overlap.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	x0 := math.Max(r.X, s.X)
	y0 := math.Max(r.Y, s.Y)
	x1 := math.Min(r.X+r.W, s.X+s.W)
	y1 := math.Min(r.Y+r.H, s.Y+s.H)
	if x1 <= x0 || y1 <= y0 {
		return Rect{}, false
	}
	return Rect{x0, y0, x1 - x0, y1 - y0}, true
}

// SharedEdge returns the length (mm) of the boundary shared by two
// non-overlapping rectangles, used to derive lateral thermal conductances.
// Rectangles that merely touch at a corner share an edge of length zero.
func (r Rect) SharedEdge(s Rect) float64 {
	const eps = 1e-9
	// Vertical adjacency: r's right edge against s's left edge or vice versa.
	if math.Abs(r.X+r.W-s.X) < eps || math.Abs(s.X+s.W-r.X) < eps {
		top := math.Max(r.Y, s.Y)
		bot := math.Min(r.Y+r.H, s.Y+s.H)
		if bot > top {
			return bot - top
		}
	}
	// Horizontal adjacency.
	if math.Abs(r.Y+r.H-s.Y) < eps || math.Abs(s.Y+s.H-r.Y) < eps {
		left := math.Max(r.X, s.X)
		right := math.Min(r.X+r.W, s.X+s.W)
		if right > left {
			return right - left
		}
	}
	return 0
}

// DistanceToPoint returns the shortest distance from the rectangle to a
// point; zero when the point lies inside the rectangle.
func (r Rect) DistanceToPoint(p Point) float64 {
	dx := math.Max(math.Max(r.X-p.X, 0), p.X-(r.X+r.W))
	dy := math.Max(math.Max(r.Y-p.Y, 0), p.Y-(r.Y+r.H))
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.2f,%.2f %.2fx%.2f]", r.X, r.Y, r.W, r.H)
}
