package floorplan

import "fmt"

// Die and tile dimensions in millimetres. The die is 21×21mm = 441mm²
// (Table 1). The top 9mm holds two rows of four core tiles; the remaining
// 12mm holds the eight L3 banks flanking a vertical NOC spine, with memory
// controllers on the left and right edges (Fig. 4b).
const (
	DieWidthMM  = 21.0
	DieHeightMM = 21.0

	coreTileW = DieWidthMM / 4 // 5.25
	coreTileH = 4.5

	uncoreTop  = 2 * coreTileH // 9.0
	mcWidth    = 1.2
	nocWidth   = 0.9
	l3RowCount = 4
)

// BuildPOWER8 constructs the 8-core, 96-regulator, 16-Vdd-domain floorplan
// used throughout the paper's evaluation: one Vdd-domain per core (core +
// private L2, 9 component VRs) and one per L3 bank (3 component VRs).
// Regulators are placed uniformly, which Section 5 shows is within 0.4% of
// the voltage-noise-optimal placement. The error reports a floorplan that
// fails geometric validation; callers that treat that as unreachable can
// use MustPOWER8.
func BuildPOWER8() (*Chip, error) {
	c := &Chip{WidthMM: DieWidthMM, HeightMM: DieHeightMM}

	// Core tiles: cores 0-3 across the top row, cores 4-7 across the second.
	for core := 0; core < NumCores; core++ {
		col := core % 4
		row := core / 4
		tile := Rect{float64(col) * coreTileW, float64(row) * coreTileH, coreTileW, coreTileH}
		c.addCoreDomain(core, tile)
	}

	// Uncore region below the cores.
	uncoreH := DieHeightMM - uncoreTop
	c.addBlock(Block{
		Name: "mc0", Kind: IO, Class: UnitMC, Core: -1, Domain: -1,
		R: Rect{0, uncoreTop, mcWidth, uncoreH},
	})
	c.addBlock(Block{
		Name: "mc1", Kind: IO, Class: UnitMC, Core: -1, Domain: -1,
		R: Rect{DieWidthMM - mcWidth, uncoreTop, mcWidth, uncoreH},
	})
	nocX := DieWidthMM/2 - nocWidth/2
	c.addBlock(Block{
		Name: "noc", Kind: Interconnect, Class: UnitNOC, Core: -1, Domain: -1,
		R: Rect{nocX, uncoreTop, nocWidth, uncoreH},
	})

	// Eight L3 banks: four rows in each of the two columns flanking the NOC.
	bankH := uncoreH / l3RowCount
	leftWidth := nocX - mcWidth
	rightX := nocX + nocWidth
	rightWidth := DieWidthMM - mcWidth - rightX
	for bank := 0; bank < NumL3Banks; bank++ {
		rowIdx := bank / 2
		var r Rect
		if bank%2 == 0 {
			r = Rect{mcWidth, uncoreTop + float64(rowIdx)*bankH, leftWidth, bankH}
		} else {
			r = Rect{rightX, uncoreTop + float64(rowIdx)*bankH, rightWidth, bankH}
		}
		c.addL3Domain(bank, r)
	}

	c.index()
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("floorplan: POWER8 layout failed validation: %w", err)
	}
	return c, nil
}

// MustPOWER8 is BuildPOWER8 for callers (tests, examples) that treat a
// validation failure of the fixed layout as a programming error.
func MustPOWER8() *Chip {
	c, err := BuildPOWER8()
	if err != nil {
		panic(err)
	}
	return c
}

// addCoreDomain lays out one core tile per Fig. 4a: a 2×2 grid of logic
// units (ISU/EXU over IFU/LSU) with the private L2 occupying a column at the
// right edge, and a 3×3 grid of component VRs across the whole tile. The
// right VR column lands over the L2 (memory side); the other six VRs sit
// over logic, which is what gives Fig. 13 its logic/memory activity split.
func (c *Chip) addCoreDomain(core int, tile Rect) {
	domID := len(c.Domains)
	dom := Domain{
		ID:     domID,
		Kind:   CoreDomain,
		Name:   fmt.Sprintf("core%d", core),
		Bounds: tile,
	}

	logicW := tile.W * 2 / 3
	halfW := logicW / 2
	halfH := tile.H / 2
	units := []struct {
		class UnitClass
		kind  BlockKind
		r     Rect
	}{
		{UnitISU, Logic, Rect{tile.X, tile.Y, halfW, halfH}},
		{UnitEXU, Logic, Rect{tile.X + halfW, tile.Y, halfW, halfH}},
		{UnitIFU, Logic, Rect{tile.X, tile.Y + halfH, halfW, halfH}},
		{UnitLSU, Logic, Rect{tile.X + halfW, tile.Y + halfH, halfW, halfH}},
		{UnitL2, Memory, Rect{tile.X + logicW, tile.Y, tile.W - logicW, tile.H}},
	}
	for _, u := range units {
		id := c.addBlock(Block{
			Name:   fmt.Sprintf("core%d/%s", core, u.class),
			Kind:   u.kind,
			Class:  u.class,
			Core:   core,
			Domain: domID,
			R:      u.r,
		})
		dom.Blocks = append(dom.Blocks, id)
	}

	// 3×3 regulator grid at the (1/6, 1/2, 5/6) fractions of the tile.
	fracs := [3]float64{1.0 / 6, 0.5, 5.0 / 6}
	for _, fy := range fracs {
		for _, fx := range fracs {
			pos := Point{tile.X + fx*tile.W, tile.Y + fy*tile.H}
			dom.Regulators = append(dom.Regulators, c.addRegulator(domID, pos))
		}
	}
	c.Domains = append(c.Domains, dom)
}

// addL3Domain lays out one L3 bank with its three component VRs spread
// along the bank's horizontal midline.
func (c *Chip) addL3Domain(bank int, r Rect) {
	domID := len(c.Domains)
	dom := Domain{
		ID:     domID,
		Kind:   L3Domain,
		Name:   fmt.Sprintf("l3bank%d", bank),
		Bounds: r,
	}
	id := c.addBlock(Block{
		Name:   fmt.Sprintf("l3bank%d/L3", bank),
		Kind:   Memory,
		Class:  UnitL3,
		Core:   -1,
		Domain: domID,
		R:      r,
	})
	dom.Blocks = append(dom.Blocks, id)

	for i := 0; i < VRsPerL3Domain; i++ {
		fx := float64(i+1) / float64(VRsPerL3Domain+1)
		pos := Point{r.X + fx*r.W, r.Y + r.H/2}
		dom.Regulators = append(dom.Regulators, c.addRegulator(domID, pos))
	}
	c.Domains = append(c.Domains, dom)
}

func (c *Chip) addBlock(b Block) int {
	b.ID = len(c.Blocks)
	c.Blocks = append(c.Blocks, b)
	return b.ID
}

func (c *Chip) addRegulator(domain int, pos Point) int {
	r := Regulator{
		ID:      len(c.Regulators),
		Domain:  domain,
		Pos:     pos,
		AreaMM2: RegulatorAreaMM2,
	}
	// Link the regulator to the block it physically sits over. Regulator
	// placement always lands inside a block for the uniform layout, but a
	// nearest-block fallback keeps perturbed placements working too.
	r.NearestBlock = -1
	for i := range c.Blocks {
		if c.Blocks[i].R.Contains(pos) {
			r.NearestBlock = i
			break
		}
	}
	c.Regulators = append(c.Regulators, r)
	return r.ID
}

// RelinkRegulators recomputes every regulator's NearestBlock after a
// placement change (used by the placement optimiser).
func (c *Chip) RelinkRegulators() {
	for i := range c.Regulators {
		b := c.BlockAt(c.Regulators[i].Pos)
		if b == nil {
			b = c.NearestBlock(c.Regulators[i].Pos)
		}
		c.Regulators[i].NearestBlock = b.ID
	}
}

// LogicSideRegulators partitions a core domain's VRs into those sitting over
// logic units and those over the L2, preserving regulator order. It returns
// an error for L3 domains, whose VRs are all memory-side by construction.
func (c *Chip) LogicSideRegulators(domain int) (logic, memory []int, err error) {
	d := &c.Domains[domain]
	if d.Kind != CoreDomain {
		return nil, nil, fmt.Errorf("floorplan: domain %s is not a core domain", d.Name)
	}
	for _, rid := range d.Regulators {
		nb := c.Regulators[rid].NearestBlock
		if nb >= 0 && c.Blocks[nb].Kind == Logic {
			logic = append(logic, rid)
		} else {
			memory = append(memory, rid)
		}
	}
	return logic, memory, nil
}
