package floorplan

import (
	"math"
	"strings"
	"testing"
)

func TestBuildPOWER8Validates(t *testing.T) {
	c, err := BuildPOWER8()
	if err != nil {
		t.Fatalf("BuildPOWER8() = %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
}

func TestBuildPOWER8Counts(t *testing.T) {
	c := MustPOWER8()
	if got := len(c.Regulators); got != 96 {
		t.Errorf("regulator count = %d, want 96", got)
	}
	if got := len(c.Domains); got != 16 {
		t.Errorf("domain count = %d, want 16", got)
	}
	// 8 cores × 5 blocks + 8 L3 banks + NOC + 2 MCs.
	if got := len(c.Blocks); got != 8*5+8+1+2 {
		t.Errorf("block count = %d, want %d", got, 8*5+8+1+2)
	}
	core, l3 := 0, 0
	for _, d := range c.Domains {
		switch d.Kind {
		case CoreDomain:
			core++
			if len(d.Regulators) != VRsPerCoreDomain {
				t.Errorf("domain %s has %d VRs, want %d", d.Name, len(d.Regulators), VRsPerCoreDomain)
			}
		case L3Domain:
			l3++
			if len(d.Regulators) != VRsPerL3Domain {
				t.Errorf("domain %s has %d VRs, want %d", d.Name, len(d.Regulators), VRsPerL3Domain)
			}
		}
	}
	if core != 8 || l3 != 8 {
		t.Errorf("domain kinds = %d core, %d L3; want 8 and 8", core, l3)
	}
}

func TestBuildPOWER8DieArea(t *testing.T) {
	c := MustPOWER8()
	if got := c.WidthMM * c.HeightMM; math.Abs(got-441) > 1e-9 {
		t.Errorf("die area = %v mm², want 441", got)
	}
	// All block area must be accounted for: the floorplan tiles the die.
	var sum float64
	for _, b := range c.Blocks {
		sum += b.R.Area()
	}
	if math.Abs(sum-441) > 1e-6 {
		t.Errorf("blocks cover %v mm², want 441 (floorplan must tile the die)", sum)
	}
}

func TestBuildPOWER8RegulatorsInsideDomains(t *testing.T) {
	c := MustPOWER8()
	for _, r := range c.Regulators {
		d := c.Domains[r.Domain]
		if !d.Bounds.Contains(r.Pos) {
			t.Errorf("regulator %d at %v outside domain %s bounds %v", r.ID, r.Pos, d.Name, d.Bounds)
		}
		if r.NearestBlock < 0 {
			t.Errorf("regulator %d has no nearest block", r.ID)
			continue
		}
		if c.Blocks[r.NearestBlock].Domain != r.Domain {
			t.Errorf("regulator %d sits over block %q of a different domain",
				r.ID, c.Blocks[r.NearestBlock].Name)
		}
	}
}

func TestLogicSideRegulators(t *testing.T) {
	c := MustPOWER8()
	for _, domID := range c.CoreDomains() {
		logic, memory, err := c.LogicSideRegulators(domID)
		if err != nil {
			t.Fatalf("LogicSideRegulators(%d) = %v", domID, err)
		}
		// The 3×3 grid puts two columns over logic, one over the L2.
		if len(logic) != 6 || len(memory) != 3 {
			t.Errorf("domain %d: %d logic-side and %d memory-side VRs, want 6 and 3",
				domID, len(logic), len(memory))
		}
	}
	// L3 domains must be rejected.
	if _, _, err := c.LogicSideRegulators(c.L3Domains()[0]); err == nil {
		t.Error("LogicSideRegulators accepted an L3 domain")
	}
}

func TestBlockByName(t *testing.T) {
	c := MustPOWER8()
	b, err := c.BlockByName("core3/EXU")
	if err != nil {
		t.Fatalf("BlockByName = %v", err)
	}
	if b.Class != UnitEXU || b.Core != 3 {
		t.Errorf("core3/EXU resolved to class %v core %d", b.Class, b.Core)
	}
	if _, err := c.BlockByName("nope"); err == nil {
		t.Error("BlockByName accepted an unknown name")
	}
}

func TestBlockAtAndNearest(t *testing.T) {
	c := MustPOWER8()
	for _, b := range c.Blocks {
		p := b.R.Center()
		got := c.BlockAt(p)
		if got == nil || got.ID != b.ID {
			t.Errorf("BlockAt(center of %q) = %v", b.Name, got)
		}
		if nb := c.NearestBlock(p); nb.ID != b.ID {
			t.Errorf("NearestBlock(center of %q) = %q", b.Name, nb.Name)
		}
	}
}

func TestCoreAndL3DomainOrdering(t *testing.T) {
	c := MustPOWER8()
	cores := c.CoreDomains()
	if len(cores) != 8 {
		t.Fatalf("CoreDomains() returned %d IDs", len(cores))
	}
	for i, id := range cores {
		want := "core" + string(rune('0'+i))
		if c.Domains[id].Name != want {
			t.Errorf("core domain %d named %q, want %q", i, c.Domains[id].Name, want)
		}
	}
	for i, id := range c.L3Domains() {
		if !strings.HasPrefix(c.Domains[id].Name, "l3bank") {
			t.Errorf("L3 domain %d named %q", i, c.Domains[id].Name)
		}
	}
}

func TestDomainOf(t *testing.T) {
	c := MustPOWER8()
	for _, r := range c.Regulators {
		if got := c.DomainOf(r.ID); got.ID != r.Domain {
			t.Errorf("DomainOf(%d) = %d, want %d", r.ID, got.ID, r.Domain)
		}
	}
}

func TestSortedBlockNamesStable(t *testing.T) {
	c := MustPOWER8()
	names := c.SortedBlockNames()
	if len(names) != len(c.Blocks) {
		t.Fatalf("SortedBlockNames returned %d names for %d blocks", len(names), len(c.Blocks))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not strictly sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}

func TestRelinkRegulators(t *testing.T) {
	c := MustPOWER8()
	orig := c.Regulators[0].NearestBlock
	// Move the regulator into a different block of the same domain and relink.
	l2, err := c.BlockByName("core0/L2")
	if err != nil {
		t.Fatal(err)
	}
	c.Regulators[0].Pos = l2.R.Center()
	c.RelinkRegulators()
	if c.Regulators[0].NearestBlock == orig {
		t.Error("RelinkRegulators did not update NearestBlock")
	}
	if c.Regulators[0].NearestBlock != l2.ID {
		t.Errorf("NearestBlock = %d, want %d", c.Regulators[0].NearestBlock, l2.ID)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	build := func() *Chip { return MustPOWER8() }

	c := build()
	c.Blocks[3].Name = c.Blocks[2].Name
	if err := c.Validate(); err == nil {
		t.Error("Validate missed duplicate block name")
	}

	c = build()
	c.Blocks[0].R.W = -1
	if err := c.Validate(); err == nil {
		t.Error("Validate missed non-positive extent")
	}

	c = build()
	c.Blocks[1].R = c.Blocks[0].R
	if err := c.Validate(); err == nil {
		t.Error("Validate missed overlapping blocks")
	}

	c = build()
	c.Regulators[5].Domain = 99
	if err := c.Validate(); err == nil {
		t.Error("Validate missed out-of-range domain reference")
	}

	c = build()
	c.Regulators = c.Regulators[:95]
	if err := c.Validate(); err == nil {
		t.Error("Validate missed wrong regulator count")
	}
}

func TestUnitClassStrings(t *testing.T) {
	want := map[UnitClass]string{
		UnitIFU: "IFU", UnitISU: "ISU", UnitEXU: "EXU", UnitLSU: "LSU",
		UnitL2: "L2", UnitL3: "L3", UnitNOC: "NOC", UnitMC: "MC",
	}
	for u, s := range want {
		if u.String() != s {
			t.Errorf("UnitClass(%d).String() = %q, want %q", u, u.String(), s)
		}
	}
	if BlockKind(Logic).String() != "logic" || Memory.String() != "memory" {
		t.Error("BlockKind strings wrong")
	}
	if CoreDomain.String() != "core" || L3Domain.String() != "l3" {
		t.Error("DomainKind strings wrong")
	}
}
