// Package stats provides the small statistical toolkit the ThermoGater
// reproduction relies on: the coefficient of determination R² used to
// validate the regulator temperature predictor (Eqn. 3 of the paper), the
// weighted-moving-average power forecaster of Ardestani et al. that PracT
// uses to anticipate demand, and assorted series helpers.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by series reductions applied to empty input.
var ErrEmpty = errors.New("stats: empty series")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	mu, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs))), nil
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile outside [0, 100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// RSquared computes the coefficient of determination of predictions against
// observations, per Eqn. 3 of the paper:
//
//	R² = 1 − Σ(yᵢ − ŷᵢ)² / Σ(yᵢ − ȳ)²
//
// A perfect prediction yields 1. When the observations are constant (zero
// variance) the statistic is undefined; this implementation follows the
// usual convention of returning 1 for a perfect prediction of a constant
// series and 0 otherwise.
func RSquared(observed, predicted []float64) (float64, error) {
	if len(observed) == 0 {
		return 0, ErrEmpty
	}
	if len(observed) != len(predicted) {
		return 0, errors.New("stats: series length mismatch")
	}
	mu, _ := Mean(observed)
	var ssRes, ssTot float64
	for i := range observed {
		r := observed[i] - predicted[i]
		d := observed[i] - mu
		ssRes += r * r
		ssTot += d * d
	}
	//lint:ignore floatcheck sums of squares are exactly zero iff every term is zero: a sentinel, not a tolerance
	if ssTot == 0 {
		//lint:ignore floatcheck sums of squares are exactly zero iff every term is zero: a sentinel, not a tolerance
		if ssRes == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}

// LinearFitThroughOrigin returns the least-squares slope θ of y = θ·x,
// which is how the per-regulator proportionality constants θᵢ of Eqn. 2
// (ΔTᵢ = θᵢ·ΔPᵢ) are extracted from profiling traces.
func LinearFitThroughOrigin(xs, ys []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ys) {
		return 0, errors.New("stats: series length mismatch")
	}
	var sxy, sxx float64
	for i := range xs {
		sxy += xs[i] * ys[i]
		sxx += xs[i] * xs[i]
	}
	//lint:ignore floatcheck sum of squares is exactly zero iff every x is zero: degenerate-input sentinel
	if sxx == 0 {
		return 0, nil
	}
	return sxy / sxx, nil
}

// WMA is the weighted-moving-average forecaster PracT uses to anticipate
// the next interval's power demand from the history of the last few
// decision points (the paper uses a three-point window after Ardestani et
// al.). More recent observations receive proportionally larger weights:
// with a window of n, the most recent sample has weight n, the one before
// n−1, and so on.
type WMA struct {
	window []float64
	filled int
	next   int
}

// NewWMA returns a forecaster over the given window size (≥1).
func NewWMA(window int) (*WMA, error) {
	if window < 1 {
		return nil, errors.New("stats: WMA window must be at least 1")
	}
	return &WMA{window: make([]float64, window)}, nil
}

// Observe records the latest sample.
func (w *WMA) Observe(v float64) {
	w.window[w.next] = v
	w.next = (w.next + 1) % len(w.window)
	if w.filled < len(w.window) {
		w.filled++
	}
}

// Ready reports whether at least one sample has been observed.
func (w *WMA) Ready() bool { return w.filled > 0 }

// Predict forecasts the next sample. With no history it returns 0; with a
// partial window it weights only the observed samples.
func (w *WMA) Predict() float64 {
	if w.filled == 0 {
		return 0
	}
	var sum, wsum float64
	// Walk from oldest to newest of the filled portion; weight grows with
	// recency: 1, 2, ..., filled.
	start := (w.next - w.filled + len(w.window)*2) % len(w.window)
	for k := 0; k < w.filled; k++ {
		idx := (start + k) % len(w.window)
		weight := float64(k + 1)
		sum += weight * w.window[idx]
		wsum += weight
	}
	return sum / wsum
}

// Reset discards all observed history.
func (w *WMA) Reset() {
	w.filled = 0
	w.next = 0
}

// WMAState is a forecaster snapshot for checkpointing.
type WMAState struct {
	Window []float64
	Filled int
	Next   int
}

// State snapshots the forecaster.
func (w *WMA) State() WMAState {
	return WMAState{Window: append([]float64(nil), w.window...), Filled: w.filled, Next: w.next}
}

// Restore loads a snapshot taken by State on a forecaster of the same
// window size.
func (w *WMA) Restore(s WMAState) error {
	if len(s.Window) != len(w.window) {
		return errors.New("stats: WMA state window size mismatch")
	}
	if s.Filled < 0 || s.Filled > len(w.window) || s.Next < 0 || s.Next >= len(w.window) {
		return errors.New("stats: WMA state indices out of range")
	}
	copy(w.window, s.Window)
	w.filled = s.Filled
	w.next = s.Next
	return nil
}
