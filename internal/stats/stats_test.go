package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if m, _ := Mean(xs); math.Abs(m-2.8) > 1e-12 {
		t.Errorf("Mean = %v, want 2.8", m)
	}
	if m, _ := Max(xs); m != 5 {
		t.Errorf("Max = %v, want 5", m)
	}
	if m, _ := Min(xs); m != 1 {
		t.Errorf("Min = %v, want 1", m)
	}
	for _, f := range []func([]float64) (float64, error){Mean, Max, Min, StdDev} {
		if _, err := f(nil); err != ErrEmpty {
			t.Error("empty series must return ErrEmpty")
		}
	}
}

func TestStdDev(t *testing.T) {
	if s, _ := StdDev([]float64{2, 2, 2}); s != 0 {
		t.Errorf("constant series stddev = %v", s)
	}
	if s, _ := StdDev([]float64{1, -1, 1, -1}); math.Abs(s-1) > 1e-12 {
		t.Errorf("stddev = %v, want 1", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("negative percentile accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("percentile >100 accepted")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("empty input must return ErrEmpty")
	}
	if got, _ := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single element percentile = %v", got)
	}
}

func TestRSquaredPerfect(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	r2, err := RSquared(obs, obs)
	if err != nil || r2 != 1 {
		t.Errorf("perfect prediction R² = %v, err %v", r2, err)
	}
}

func TestRSquaredMeanPredictor(t *testing.T) {
	// Predicting the mean everywhere yields exactly 0.
	obs := []float64{1, 2, 3, 4}
	pred := []float64{2.5, 2.5, 2.5, 2.5}
	r2, _ := RSquared(obs, pred)
	if math.Abs(r2) > 1e-12 {
		t.Errorf("mean predictor R² = %v, want 0", r2)
	}
}

func TestRSquaredConstantSeries(t *testing.T) {
	if r2, _ := RSquared([]float64{5, 5, 5}, []float64{5, 5, 5}); r2 != 1 {
		t.Errorf("constant series, perfect prediction: R² = %v", r2)
	}
	if r2, _ := RSquared([]float64{5, 5, 5}, []float64{4, 5, 6}); r2 != 0 {
		t.Errorf("constant series, imperfect prediction: R² = %v", r2)
	}
}

func TestRSquaredErrors(t *testing.T) {
	if _, err := RSquared(nil, nil); err != ErrEmpty {
		t.Error("empty input must return ErrEmpty")
	}
	if _, err := RSquared([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestLinearFitThroughOrigin(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2.1, 3.9, 6.2, 7.8}
	theta, err := LinearFitThroughOrigin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(theta-1.97) > 0.05 {
		t.Errorf("theta = %v, want ≈2", theta)
	}
	if th, _ := LinearFitThroughOrigin([]float64{0, 0}, []float64{1, 2}); th != 0 {
		t.Errorf("all-zero predictor slope = %v, want 0", th)
	}
	if _, err := LinearFitThroughOrigin(nil, nil); err != ErrEmpty {
		t.Error("empty input must return ErrEmpty")
	}
	if _, err := LinearFitThroughOrigin([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// Property: a noiseless linear relationship is recovered exactly.
func TestLinearFitProperty(t *testing.T) {
	f := func(rawTheta float64) bool {
		theta := math.Mod(rawTheta, 100)
		xs := []float64{0.5, 1, 1.5, 2, 3}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = theta * x
		}
		got, err := LinearFitThroughOrigin(xs, ys)
		return err == nil && math.Abs(got-theta) < 1e-9*(1+math.Abs(theta))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWMAWeighting(t *testing.T) {
	w, err := NewWMA(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Ready() {
		t.Error("fresh WMA must not be ready")
	}
	if w.Predict() != 0 {
		t.Error("fresh WMA must predict 0")
	}
	w.Observe(1)
	if !w.Ready() {
		t.Error("WMA with one sample must be ready")
	}
	if got := w.Predict(); got != 1 {
		t.Errorf("single-sample prediction = %v, want 1", got)
	}
	w.Observe(2)
	// Weights 1,2 → (1·1 + 2·2)/3 = 5/3.
	if got := w.Predict(); math.Abs(got-5.0/3) > 1e-12 {
		t.Errorf("two-sample prediction = %v, want 5/3", got)
	}
	w.Observe(3)
	// Weights 1,2,3 → (1 + 4 + 9)/6 = 14/6.
	if got := w.Predict(); math.Abs(got-14.0/6) > 1e-12 {
		t.Errorf("three-sample prediction = %v, want 14/6", got)
	}
	w.Observe(4)
	// Window slides: samples 2,3,4 → (2 + 6 + 12)/6 = 20/6.
	if got := w.Predict(); math.Abs(got-20.0/6) > 1e-12 {
		t.Errorf("sliding prediction = %v, want 20/6", got)
	}
}

func TestWMAConstantSignal(t *testing.T) {
	w, _ := NewWMA(3)
	for i := 0; i < 10; i++ {
		w.Observe(42)
	}
	if got := w.Predict(); math.Abs(got-42) > 1e-12 {
		t.Errorf("constant signal prediction = %v, want 42", got)
	}
}

func TestWMAReset(t *testing.T) {
	w, _ := NewWMA(3)
	w.Observe(10)
	w.Observe(20)
	w.Reset()
	if w.Ready() || w.Predict() != 0 {
		t.Error("Reset did not clear history")
	}
	w.Observe(7)
	if got := w.Predict(); got != 7 {
		t.Errorf("post-reset prediction = %v, want 7", got)
	}
}

func TestNewWMAValidation(t *testing.T) {
	if _, err := NewWMA(0); err == nil {
		t.Error("NewWMA(0) accepted")
	}
	if _, err := NewWMA(-1); err == nil {
		t.Error("NewWMA(-1) accepted")
	}
}

// Property: WMA prediction always lies within the min/max of its window.
func TestWMABounded(t *testing.T) {
	f := func(samples []float64) bool {
		if len(samples) == 0 {
			return true
		}
		for i, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				samples[i] = 0
			}
			// Keep magnitudes small enough that the weighted sum cannot
			// overflow or lose the precision the bound check relies on.
			samples[i] = math.Mod(samples[i], 1e9)
		}
		w, _ := NewWMA(3)
		for _, s := range samples {
			w.Observe(s)
		}
		n := len(samples)
		lo, hi := math.Inf(1), math.Inf(-1)
		start := n - 3
		if start < 0 {
			start = 0
		}
		for _, s := range samples[start:] {
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
		}
		p := w.Predict()
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
