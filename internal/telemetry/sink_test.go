package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureRegistry builds a deterministic registry state shared by the
// golden-file tests.
func fixtureRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	advance := manualClock(r)
	r.Counter("sim_epochs_total").Add(2)
	r.Counter("pdn_solves_total", L("kind", "steady")).Add(320)
	r.Counter("pdn_solves_total", L("kind", "transient")).Add(12)
	r.Gauge("run_max_temp_c").Set(92.5)
	h := r.Histogram("epoch_wall_ms", []float64{1, 5, 25})
	h.Observe(0.4)
	h.Observe(3)
	h.Observe(120)
	for e := 0; e < 2; e++ {
		ep := r.StartSpan("epoch")
		for _, phase := range []struct {
			name string
			d    time.Duration
		}{
			{"uarch", 2 * time.Millisecond},
			{"power", time.Millisecond},
			{"governor", 3 * time.Millisecond},
			{"vr", 500 * time.Microsecond},
			{"thermal", 4 * time.Millisecond},
			{"pdn", 1500 * time.Microsecond},
		} {
			ph := ep.StartChild(phase.name)
			advance(phase.d)
			ph.End()
		}
		advance(250 * time.Microsecond) // unattributed epoch overhead
		ep.End()
	}
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func fixtureRecords() []*Record {
	return []*Record{
		NewRecord("epoch").Add("epoch", 0).Add("time_ms", 0.0).
			Add("wall_ns", int64(12250000)).Add("active_vrs", 96).Add("max_temp_c", 88.25),
		NewRecord("epoch").Add("epoch", 1).Add("time_ms", 1.0).
			Add("wall_ns", int64(12250000)).Add("active_vrs", 41).Add("max_temp_c", 92.5),
		NewRecord("run").Add("policy", "oracT").Add("epoch", 2),
	}
}

func TestJSONLSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for _, rec := range fixtureRecords() {
		if err := s.Emit(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "records.jsonl.golden", buf.Bytes())
}

func TestCSVSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf)
	for _, rec := range fixtureRecords() {
		if err := s.Emit(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "records.csv.golden", buf.Bytes())
}

func TestSnapshotExportGolden(t *testing.T) {
	sn := fixtureRegistry(t).Snapshot()

	var jsonl bytes.Buffer
	if err := WriteSnapshotJSONL(&jsonl, sn); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.jsonl.golden", jsonl.Bytes())

	var csvOut bytes.Buffer
	if err := WriteSnapshotCSV(&csvOut, sn); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.csv.golden", csvOut.Bytes())

	var summary bytes.Buffer
	if err := WriteSummary(&summary, sn); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "summary.golden", summary.Bytes())
}

func TestRegistryEmitFansOutToSinks(t *testing.T) {
	r := NewRegistry()
	var a, b bytes.Buffer
	r.AddSink(NewJSONLSink(&a))
	r.AddSink(NewJSONLSink(&b))
	if err := r.Emit(NewRecord("epoch").Add("epoch", 7)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"record":"epoch","epoch":7}` + "\n"
	if a.String() != want || b.String() != want {
		t.Fatalf("fan-out wrong: %q / %q", a.String(), b.String())
	}
}
