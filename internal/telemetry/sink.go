package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// Sink receives the registry's record stream. Implementations must tolerate
// records of different names (epoch records interleaved with run records);
// Emit is serialized by the registry.
type Sink interface {
	Emit(rec *Record) error
	Flush() error
}

// JSONLSink streams each record as one JSON object per line, fields in
// emission order: {"record":"epoch","epoch":0,...}.
type JSONLSink struct {
	w *bufio.Writer
}

// NewJSONLSink wraps w in a buffered JSON-lines sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Emit writes one record as a JSON line. bufio errors are sticky, so
// checking the final write surfaces any failure in the sequence.
func (s *JSONLSink) Emit(rec *Record) error {
	s.w.WriteString(`{"record":`)
	writeJSONValue(s.w, rec.Name)
	for _, f := range rec.Fields {
		s.w.WriteByte(',')
		writeJSONValue(s.w, f.Key)
		s.w.WriteByte(':')
		writeJSONValue(s.w, f.Value)
	}
	_, err := s.w.WriteString("}\n")
	return err
}

// Flush drains the buffer to the underlying writer.
func (s *JSONLSink) Flush() error { return s.w.Flush() }

func writeJSONValue(w *bufio.Writer, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	//lint:ignore errsink bufio write errors are sticky; Emit checks the final write and Flush reports the rest
	w.Write(b)
}

// CSVSink streams records as CSV rows. The header is fixed by the first
// record: "record" followed by its field keys; later records contribute the
// fields matching the header (missing fields render empty, extra fields are
// dropped). Mixed-name record streams therefore fit a single table as long
// as they share columns.
type CSVSink struct {
	w      *csv.Writer
	header []string
}

// NewCSVSink wraps w in a CSV sink.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w)}
}

// Emit writes one record as a CSV row (plus the header on first use).
func (s *CSVSink) Emit(rec *Record) error {
	if s.header == nil {
		s.header = append(s.header, "record")
		for _, f := range rec.Fields {
			s.header = append(s.header, f.Key)
		}
		if err := s.w.Write(s.header); err != nil {
			return err
		}
	}
	row := make([]string, len(s.header))
	row[0] = rec.Name
	for i, key := range s.header[1:] {
		if v, ok := rec.Get(key); ok {
			row[i+1] = csvCell(v)
		}
	}
	return s.w.Write(row)
}

// Flush drains buffered rows.
func (s *CSVSink) Flush() error {
	s.w.Flush()
	return s.w.Error()
}

func csvCell(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	default:
		return fmt.Sprint(v)
	}
}

// WriteSnapshotJSONL exports a full snapshot as one JSON line, suitable for
// appending to the same stream a JSONLSink writes.
func WriteSnapshotJSONL(w io.Writer, sn Snapshot) error {
	b, err := json.Marshal(struct {
		Record   string   `json:"record"`
		Snapshot Snapshot `json:"snapshot"`
	}{Record: "snapshot", Snapshot: sn})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

// WriteSnapshotCSV exports a snapshot as a flat CSV table with one row per
// metric, histogram and span node: kind,key,value,count.
func WriteSnapshotCSV(w io.Writer, sn Snapshot) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "key", "value", "count"}); err != nil {
		return err
	}
	for _, c := range sn.Counters {
		if err := cw.Write([]string{"counter", Key(c.Name, c.Labels), csvCell(c.Value), ""}); err != nil {
			return err
		}
	}
	for _, g := range sn.Gauges {
		if err := cw.Write([]string{"gauge", Key(g.Name, g.Labels), csvCell(g.Value), ""}); err != nil {
			return err
		}
	}
	for _, h := range sn.Histograms {
		if err := cw.Write([]string{"histogram", Key(h.Name, h.Labels), csvCell(h.Sum), strconv.FormatUint(h.Count, 10)}); err != nil {
			return err
		}
	}
	var walk func(prefix string, s SpanSnapshot) error
	walk = func(prefix string, s SpanSnapshot) error {
		key := s.Name
		if prefix != "" {
			key = prefix + "/" + s.Name
		}
		if err := cw.Write([]string{"span", key, strconv.FormatInt(s.TotalNS, 10), strconv.Itoa(s.Count)}); err != nil {
			return err
		}
		for _, c := range s.Children {
			if err := walk(key, c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range sn.Spans {
		if err := walk("", s); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSummary renders a snapshot as a human-readable summary: metric
// tables plus an indented span tree with per-node share of its root.
func WriteSummary(w io.Writer, sn Snapshot) error {
	bw := bufio.NewWriter(w)
	if len(sn.Counters) > 0 {
		fmt.Fprintln(bw, "counters:")
		for _, c := range sn.Counters {
			fmt.Fprintf(bw, "  %-44s %s\n", Key(c.Name, c.Labels), fmtValue(c.Value))
		}
	}
	if len(sn.Gauges) > 0 {
		fmt.Fprintln(bw, "gauges:")
		for _, g := range sn.Gauges {
			fmt.Fprintf(bw, "  %-44s %s\n", Key(g.Name, g.Labels), fmtValue(g.Value))
		}
	}
	if len(sn.Histograms) > 0 {
		fmt.Fprintln(bw, "histograms:")
		for _, h := range sn.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(bw, "  %-44s count=%d sum=%s mean=%s\n",
				Key(h.Name, h.Labels), h.Count, fmtValue(h.Sum), fmtValue(mean))
			for _, b := range h.Buckets {
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = fmtValue(b.UpperBound)
				}
				fmt.Fprintf(bw, "    le=%-8s %d\n", le, b.Count)
			}
		}
	}
	if len(sn.Spans) > 0 {
		fmt.Fprintln(bw, "spans:")
		var walk func(s SpanSnapshot, depth int, rootNS int64)
		walk = func(s SpanSnapshot, depth int, rootNS int64) {
			pct := ""
			if rootNS > 0 {
				pct = fmt.Sprintf(" (%5.1f%%)", 100*float64(s.TotalNS)/float64(rootNS))
			}
			fmt.Fprintf(bw, "  %-*s%-*s %12s  ×%d%s\n",
				2*depth, "", 28-2*depth, s.Name,
				time.Duration(s.TotalNS).Round(time.Microsecond), s.Count, pct)
			for _, c := range s.Children {
				walk(c, depth+1, rootNS)
			}
		}
		for _, s := range sn.Spans {
			walk(s, 0, s.TotalNS)
		}
	}
	return bw.Flush()
}
