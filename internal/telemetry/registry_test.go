package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestNilRegistryIsFreeAndSafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1, 2})
	sp := r.StartSpan("epoch")
	if c != nil || g != nil || h != nil || sp != nil {
		t.Fatal("nil registry handed out live metrics")
	}
	// Every operation on the nil handles must no-op, not panic.
	c.Add(1)
	c.Inc()
	g.Set(3)
	h.Observe(1)
	child := sp.StartChild("power")
	child.End()
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || sp.Total() != 0 {
		t.Fatal("nil metrics accumulated state")
	}
	if err := r.Emit(NewRecord("epoch").Add("k", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	sn := r.Snapshot()
	if len(sn.Counters)+len(sn.Gauges)+len(sn.Histograms)+len(sn.Spans) != 0 {
		t.Fatal("nil registry produced a non-empty snapshot")
	}
}

func TestKeyCanonicalisesLabelOrder(t *testing.T) {
	a := Key("m", []Label{L("b", "2"), L("a", "1")})
	b := Key("m", []Label{L("a", "1"), L("b", "2")})
	if a != b {
		t.Fatalf("label order changed the key: %q vs %q", a, b)
	}
	if a != "m{a=1,b=2}" {
		t.Fatalf("unexpected key %q", a)
	}
	if Key("m", nil) != "m" {
		t.Fatal("unlabelled key altered")
	}
}

func TestMetricIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("solves", L("kind", "steady"))
	c2 := r.Counter("solves", L("kind", "steady"))
	if c1 != c2 {
		t.Fatal("same name+labels produced distinct counters")
	}
	if c3 := r.Counter("solves", L("kind", "transient")); c3 == c1 {
		t.Fatal("distinct labels shared a counter")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("epochs")
			g := r.Gauge("tmax")
			h := r.Histogram("wall_ms", []float64{1, 10, 100})
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				g.Set(float64(i))
				h.Observe(float64(i % 200))
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("epochs").Value(); got != workers*perWorker {
		t.Fatalf("counter lost updates: got %v want %v", got, workers*perWorker)
	}
	if got := r.Histogram("wall_ms", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram lost updates: got %v want %v", got, workers*perWorker)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100})
	for _, v := range []float64{1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	sn := r.Snapshot()
	if len(sn.Histograms) != 1 {
		t.Fatalf("want 1 histogram, got %d", len(sn.Histograms))
	}
	hp := sn.Histograms[0]
	want := []uint64{3, 1, 1} // ≤10: {1,5,10}; ≤100: {50}; +Inf: {1000}
	for i, b := range hp.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d: got %d want %d", i, b.Count, want[i])
		}
	}
	if !math.IsInf(hp.Buckets[2].UpperBound, 1) {
		t.Fatal("missing +Inf overflow bucket")
	}
	if hp.Sum != 1066 || hp.Count != 5 {
		t.Fatalf("sum/count: got %v/%v", hp.Sum, hp.Count)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Inc()
	r.Counter("alpha").Inc()
	r.Counter("mid", L("k", "v")).Inc()
	sn := r.Snapshot()
	var keys []string
	for _, c := range sn.Counters {
		keys = append(keys, Key(c.Name, c.Labels))
	}
	want := []string{"alpha", "mid{k=v}", "zeta"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v", keys, want)
		}
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	c.Add(2)
	c.Add(-5)
	if c.Value() != 2 {
		t.Fatalf("counter went backwards: %v", c.Value())
	}
}
