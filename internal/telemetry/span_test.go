package telemetry

import (
	"testing"
	"time"
)

// manualClock returns a registry clock plus an advance function.
func manualClock(r *Registry) func(time.Duration) {
	now := time.Unix(0, 0)
	r.SetClock(func() time.Time { return now })
	return func(d time.Duration) { now = now.Add(d) }
}

func TestSpanNestingAndAccounting(t *testing.T) {
	r := NewRegistry()
	advance := manualClock(r)

	ep := r.StartSpan("epoch")
	for i := 0; i < 3; i++ {
		ph := ep.StartChild("thermal")
		advance(2 * time.Millisecond)
		ph.End()
		ph = ep.StartChild("pdn")
		advance(1 * time.Millisecond)
		ph.End()
	}
	inner := ep.StartChild("thermal").StartChild("euler")
	advance(500 * time.Microsecond)
	inner.End()
	ep.Child("thermal").End()
	advance(time.Millisecond)
	ep.End()

	if got := ep.Child("thermal").Total(); got != 6*time.Millisecond+500*time.Microsecond {
		t.Fatalf("thermal total %v", got)
	}
	if got := ep.Child("thermal").Count(); got != 4 {
		t.Fatalf("thermal count %d", got)
	}
	if got := ep.Child("pdn").Total(); got != 3*time.Millisecond {
		t.Fatalf("pdn total %v", got)
	}
	if got := ep.Child("thermal").Child("euler").Total(); got != 500*time.Microsecond {
		t.Fatalf("nested euler total %v", got)
	}
	if got := ep.Total(); got != 10*time.Millisecond+500*time.Microsecond {
		t.Fatalf("epoch total %v", got)
	}
}

func TestRootMergeAccumulatesAcrossEpochs(t *testing.T) {
	r := NewRegistry()
	advance := manualClock(r)
	for e := 0; e < 4; e++ {
		ep := r.StartSpan("epoch")
		ph := ep.StartChild("power")
		advance(time.Millisecond)
		ph.End()
		ep.End()
	}
	sn := r.Snapshot()
	if len(sn.Spans) != 1 {
		t.Fatalf("want one merged root, got %d", len(sn.Spans))
	}
	root := sn.Spans[0]
	if root.Name != "epoch" || root.Count != 4 {
		t.Fatalf("root %q count %d", root.Name, root.Count)
	}
	if root.TotalNS != (4 * time.Millisecond).Nanoseconds() {
		t.Fatalf("root total %d", root.TotalNS)
	}
	if len(root.Children) != 1 || root.Children[0].Count != 4 {
		t.Fatalf("child merge wrong: %+v", root.Children)
	}
}

func TestEndedSpanRetainsValuesAndDoubleEndIsNoop(t *testing.T) {
	r := NewRegistry()
	advance := manualClock(r)
	ep := r.StartSpan("epoch")
	advance(time.Millisecond)
	ep.End()
	total, count := ep.Total(), ep.Count()
	advance(time.Hour)
	ep.End() // must not merge or accumulate again
	if ep.Total() != total || ep.Count() != count {
		t.Fatal("double End changed the span")
	}
	sn := r.Snapshot()
	if sn.Spans[0].Count != 1 {
		t.Fatalf("double End merged twice: count %d", sn.Spans[0].Count)
	}
}

func TestStartChildWhileRunningKeepsEarlierStart(t *testing.T) {
	r := NewRegistry()
	advance := manualClock(r)
	ep := r.StartSpan("epoch")
	ph := ep.StartChild("vr")
	advance(time.Millisecond)
	if again := ep.StartChild("vr"); again != ph {
		t.Fatal("StartChild created a duplicate node")
	}
	advance(time.Millisecond)
	ph.End()
	if got := ph.Total(); got != 2*time.Millisecond {
		t.Fatalf("restart while running reset the clock: %v", got)
	}
	ep.End()
}

func TestRestartRecyclesTreeWithoutDoubleCounting(t *testing.T) {
	r := NewRegistry()
	advance := manualClock(r)
	ep := r.StartSpan("epoch")
	for e := 0; e < 3; e++ {
		if e > 0 {
			ep.Restart()
		}
		ph := ep.StartChild("power")
		advance(time.Millisecond)
		ph.End()
		advance(time.Millisecond)
		ep.End()
		// After End the recycled tree reports only this interval.
		if ep.Total() != 2*time.Millisecond || ep.Count() != 1 {
			t.Fatalf("epoch %d: per-interval total %v count %d", e, ep.Total(), ep.Count())
		}
		if ep.Child("power").Total() != time.Millisecond {
			t.Fatalf("epoch %d: child total %v", e, ep.Child("power").Total())
		}
	}
	// The registry accumulated all three intervals, same as three fresh
	// roots would have.
	sn := r.Snapshot()
	if len(sn.Spans) != 1 || sn.Spans[0].Count != 3 {
		t.Fatalf("merged root wrong: %+v", sn.Spans)
	}
	if sn.Spans[0].TotalNS != (6 * time.Millisecond).Nanoseconds() {
		t.Fatalf("merged total %d", sn.Spans[0].TotalNS)
	}
	if len(sn.Spans[0].Children) != 1 || sn.Spans[0].Children[0].Count != 3 {
		t.Fatalf("merged children wrong: %+v", sn.Spans[0].Children)
	}
	// Restart on a nil span stays a no-op.
	var nilSpan *Span
	nilSpan.Restart()
}

func TestSnapshotWhileRunning(t *testing.T) {
	r := NewRegistry()
	advance := manualClock(r)
	ep := r.StartSpan("epoch")
	ph := ep.StartChild("uarch")
	advance(time.Millisecond)
	ph.End()
	// Root not yet ended: registry snapshot must not see it …
	if sn := r.Snapshot(); len(sn.Spans) != 0 {
		t.Fatal("unfinished root leaked into the registry snapshot")
	}
	// … but the live tree can be exported directly.
	live := ep.Snapshot()
	if live.Name != "epoch" || len(live.Children) != 1 || live.Children[0].TotalNS == 0 {
		t.Fatalf("live snapshot wrong: %+v", live)
	}
	ep.End()
}
