package telemetry

// A Field is one key/value pair of a Record. Fields keep their insertion
// order so streamed output (JSONL columns, CSV headers) is deterministic.
type Field struct {
	Key   string
	Value any
}

// A Record is one telemetry emission — a named event (e.g. "epoch", "run")
// with ordered fields — streamed to the registry's sinks via Emit.
type Record struct {
	Name   string
	Fields []Field
}

// NewRecord starts a record with the given event name.
func NewRecord(name string) *Record {
	return &Record{Name: name}
}

// Add appends one field and returns the record for chaining.
func (r *Record) Add(key string, value any) *Record {
	r.Fields = append(r.Fields, Field{Key: key, Value: value})
	return r
}

// Get returns the value of the first field with the given key.
func (r *Record) Get(key string) (any, bool) {
	for _, f := range r.Fields {
		if f.Key == key {
			return f.Value, true
		}
	}
	return nil, false
}
