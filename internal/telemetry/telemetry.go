// Package telemetry is the reproduction's observability layer: a
// lightweight, allocation-conscious metrics registry (counters, gauges and
// histograms keyed by name plus labels), nestable timing spans for the hot
// phases of a simulation epoch, and sinks that export snapshots as JSON
// lines, CSV, and a human-readable summary table.
//
// The layer is designed to cost nothing when disabled: every entry point is
// safe on a nil *Registry (and on the nil *Counter/*Gauge/*Histogram/*Span
// values a nil registry hands out), so instrumented code can call through
// unconditionally and pays only a nil check per call site. Enabled, the hot
// paths are lock-free (atomics) for counters and gauges, and spans perform
// no allocation after their first Start/End cycle per name.
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Label is one name=value dimension attached to a metric.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Key renders the canonical identity of a metric: the name followed by the
// sorted label set, e.g. `epoch_wall_ns{bench=fft,policy=oracT}`. Metrics
// that differ only in label order are the same metric.
func Key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing float64. The zero value is unusable;
// obtain counters from a Registry. All methods are safe on nil.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter. Negative deltas are ignored (counters are
// monotonic).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a last-value-wins float64. All methods are safe on nil.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-bound buckets and tracks
// the running sum and count. All methods are safe on nil.
type Histogram struct {
	bounds []float64 // sorted upper bounds; implicit +Inf overflow bucket
	counts []atomic.Uint64
	sum    Counter // CAS float accumulator (observations must be >= 0 to sum exactly; negatives still count)
	sumNeg Counter
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	if v >= 0 {
		h.sum.Add(v)
	} else {
		h.sumNeg.Add(-v)
	}
	h.count.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value() - h.sumNeg.Value()
}

// Registry holds the metric and span state of one instrumented run (or of a
// whole process — registries are cheap and concurrency-safe). A nil
// *Registry is the disabled state: every method no-ops and every accessor
// returns a nil metric whose methods also no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	meta     map[string]metricMeta
	order    []string // registration order of all keys, for stable snapshots

	spanMu sync.Mutex
	roots  []*Span // accumulated (ended) root span trees, merged by name

	sinkMu sync.Mutex
	sinks  []Sink

	now func() time.Time
}

type metricMeta struct {
	name   string
	labels []Label
}

// NewRegistry returns an enabled registry using the wall clock.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		meta:     make(map[string]metricMeta),
		now:      time.Now,
	}
}

// Enabled reports whether the registry records anything (false on nil).
func (r *Registry) Enabled() bool { return r != nil }

// SetClock replaces the time source (tests use a fake clock for
// deterministic span durations). Not safe to call concurrently with use.
func (r *Registry) SetClock(now func() time.Time) {
	if r == nil || now == nil {
		return
	}
	r.now = now
}

func (r *Registry) remember(key, name string, labels []Label) {
	if _, ok := r.meta[key]; !ok {
		ls := make([]Label, len(labels))
		copy(ls, labels)
		sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
		r.meta[key] = metricMeta{name: name, labels: ls}
		r.order = append(r.order, key)
	}
}

// Counter returns (registering on first use) the counter for name+labels.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := Key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.remember(key, name, labels)
	}
	return c
}

// Gauge returns (registering on first use) the gauge for name+labels.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := Key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.remember(key, name, labels)
	}
	return g
}

// Histogram returns (registering on first use) the histogram for
// name+labels with the given sorted upper bucket bounds; an overflow bucket
// is implicit. Bounds are fixed by the first registration. Returns nil on a
// nil registry.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := Key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
		r.hists[key] = h
		r.remember(key, name, labels)
	}
	return h
}

// AddSink attaches a sink; Emit forwards every record to all attached
// sinks, serialized under the registry's sink lock.
func (r *Registry) AddSink(s Sink) {
	if r == nil || s == nil {
		return
	}
	r.sinkMu.Lock()
	r.sinks = append(r.sinks, s)
	r.sinkMu.Unlock()
}

// Emit forwards one record to every attached sink. The first sink error is
// returned; remaining sinks still receive the record.
func (r *Registry) Emit(rec *Record) error {
	if r == nil || rec == nil {
		return nil
	}
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	var first error
	for _, s := range r.sinks {
		if err := s.Emit(rec); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close flushes every attached sink.
func (r *Registry) Close() error {
	if r == nil {
		return nil
	}
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	var first error
	for _, s := range r.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MetricPoint is one counter or gauge in a snapshot.
type MetricPoint struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramBucket is one bucket of a histogram snapshot; UpperBound is
// +Inf for the overflow bucket (marshalled as the string "+Inf", since JSON
// has no infinity literal).
type HistogramBucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MarshalJSON renders the overflow bucket's bound as "+Inf".
func (b HistogramBucket) MarshalJSON() ([]byte, error) {
	type bucket struct {
		Le    any    `json:"le"`
		Count uint64 `json:"count"`
	}
	le := any(b.UpperBound)
	if math.IsInf(b.UpperBound, 1) {
		le = "+Inf"
	}
	return json.Marshal(bucket{Le: le, Count: b.Count})
}

// HistogramPoint is one histogram in a snapshot.
type HistogramPoint struct {
	Name    string            `json:"name"`
	Labels  []Label           `json:"labels,omitempty"`
	Buckets []HistogramBucket `json:"buckets"`
	Sum     float64           `json:"sum"`
	Count   uint64            `json:"count"`
}

// Snapshot is a point-in-time copy of everything a registry holds, ordered
// deterministically (metrics by key, span roots by merge order).
type Snapshot struct {
	Counters   []MetricPoint    `json:"counters,omitempty"`
	Gauges     []MetricPoint    `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
	Spans      []SpanSnapshot   `json:"spans,omitempty"`
}

// Snapshot copies the current state. Safe to call concurrently with
// updates; an empty snapshot is returned for a nil registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var sn Snapshot
	r.mu.Lock()
	keys := make([]string, len(r.order))
	copy(keys, r.order)
	sort.Strings(keys)
	for _, key := range keys {
		m := r.meta[key]
		if c, ok := r.counters[key]; ok {
			sn.Counters = append(sn.Counters, MetricPoint{Name: m.name, Labels: m.labels, Value: c.Value()})
		}
		if g, ok := r.gauges[key]; ok {
			sn.Gauges = append(sn.Gauges, MetricPoint{Name: m.name, Labels: m.labels, Value: g.Value()})
		}
		if h, ok := r.hists[key]; ok {
			hp := HistogramPoint{Name: m.name, Labels: m.labels, Sum: h.Sum(), Count: h.Count()}
			for i := range h.counts {
				ub := math.Inf(1)
				if i < len(h.bounds) {
					ub = h.bounds[i]
				}
				hp.Buckets = append(hp.Buckets, HistogramBucket{UpperBound: ub, Count: h.counts[i].Load()})
			}
			sn.Histograms = append(sn.Histograms, hp)
		}
	}
	r.mu.Unlock()

	r.spanMu.Lock()
	for _, root := range r.roots {
		sn.Spans = append(sn.Spans, root.snapshotLocked())
	}
	r.spanMu.Unlock()
	return sn
}

// fmtValue renders a float without trailing noise for summary tables.
func fmtValue(v float64) string {
	//lint:ignore floatcheck exact integrality test that only picks a display format
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%g", v)
}
