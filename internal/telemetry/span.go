package telemetry

import "time"

// Span is one node of a timing span tree. A span accumulates: starting and
// ending a child with the same name repeatedly (the per-substep pattern in
// the simulation loop) adds into one node rather than growing the tree, so
// a fully instrumented epoch allocates a handful of nodes once and then
// reuses them. Spans are not safe for concurrent use from multiple
// goroutines; each goroutine (each runner) builds its own tree and merges
// into the shared registry on End. All methods are safe on a nil *Span.
type Span struct {
	reg      *Registry
	name     string
	parent   *Span
	children []*Span
	start    time.Time
	running  bool
	total    time.Duration
	count    int
}

// SpanSnapshot is one node of an exported span tree.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	TotalNS  int64          `json:"total_ns"`
	Count    int            `json:"count"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// StartSpan begins a new root span. The root is detached until End, which
// merges the finished tree (by name, recursively) into the registry's
// accumulated span state. Returns nil — a free no-op span — on a nil
// registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, name: name, start: r.now(), running: true}
}

// StartChild finds (or creates) the child span with the given name and
// starts timing it. Nil-safe: a nil parent returns a nil child.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.children {
		if c.name == name {
			if !c.running {
				c.start = s.reg.now()
				c.running = true
			}
			return c
		}
	}
	c := &Span{reg: s.reg, name: name, parent: s, start: s.reg.now(), running: true}
	s.children = append(s.children, c)
	return c
}

// End stops the span, accumulating the elapsed time since its (latest)
// start into Total and incrementing Count. Ending a root span additionally
// merges the whole tree into its registry; the span keeps its values so the
// caller can still read per-interval figures after End.
func (s *Span) End() {
	if s == nil || !s.running {
		return
	}
	s.running = false
	s.total += s.reg.now().Sub(s.start)
	s.count++
	if s.parent == nil {
		s.reg.mergeRoot(s)
	}
}

// Restart rearms an ended root span for a new interval: the whole
// tree's accumulated totals and counts are zeroed (End already merged
// them into the registry) and the root starts timing again. The child
// nodes survive, so a hot loop can allocate one span tree on its first
// iteration and recycle it ever after — StartChild finds the existing
// nodes and the steady state allocates nothing. Restarting a span that
// was never Ended discards its unmerged interval. Nil-safe.
func (s *Span) Restart() {
	if s == nil {
		return
	}
	s.resetTree()
	s.start = s.reg.now()
	s.running = true
}

// resetTree zeroes the per-interval accumulation of the subtree.
func (s *Span) resetTree() {
	s.total, s.count, s.running = 0, 0, false
	for _, c := range s.children {
		c.resetTree()
	}
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Total returns the accumulated duration (0 on nil). A running span reports
// only its completed intervals.
func (s *Span) Total() time.Duration {
	if s == nil {
		return 0
	}
	return s.total
}

// Count returns how many Start/End intervals have accumulated (0 on nil).
func (s *Span) Count() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Children returns the child spans in creation order (nil on nil).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Child returns the child with the given name without starting it, or nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.children {
		if c.name == name {
			return c
		}
	}
	return nil
}

// Snapshot exports the span subtree rooted here.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	return s.snapshotLocked()
}

func (s *Span) snapshotLocked() SpanSnapshot {
	sn := SpanSnapshot{Name: s.name, TotalNS: s.total.Nanoseconds(), Count: s.count}
	for _, c := range s.children {
		sn.Children = append(sn.Children, c.snapshotLocked())
	}
	return sn
}

// mergeRoot folds a finished root tree into the registry's accumulated
// span state, adding totals and counts node by node (matched by name).
func (r *Registry) mergeRoot(root *Span) {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	for _, existing := range r.roots {
		if existing.name == root.name {
			mergeInto(existing, root)
			return
		}
	}
	r.roots = append(r.roots, cloneSpan(root, nil))
}

func mergeInto(dst, src *Span) {
	dst.total += src.total
	dst.count += src.count
	for _, sc := range src.children {
		var match *Span
		for _, dc := range dst.children {
			if dc.name == sc.name {
				match = dc
				break
			}
		}
		if match == nil {
			dst.children = append(dst.children, cloneSpan(sc, dst))
		} else {
			mergeInto(match, sc)
		}
	}
}

func cloneSpan(s *Span, parent *Span) *Span {
	c := &Span{name: s.name, parent: parent, total: s.total, count: s.count}
	for _, ch := range s.children {
		c.children = append(c.children, cloneSpan(ch, c))
	}
	return c
}
