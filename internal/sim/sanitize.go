package sim

import (
	"thermogater/internal/core"
	"thermogater/internal/invariant"
	"thermogater/internal/power"
)

// This file holds the Runner's composite sanitizer checks — the contracts
// that span more than one subsystem and therefore cannot live inside
// thermal, pdn or vr. Every call site guards on invariant.Enabled, so in
// the default (non-tgsan) build the constant-false branch and everything
// behind it is eliminated; tgbench verifies the zero-overhead claim.

// sanitizeDecision vets a governor decision before it is applied: the
// requested phase count must be representable and the ranking a permutation
// of the domain's regulators.
func (r *Runner) sanitizeDecision(dec *core.Decision) {
	if r.cfg.Policy == core.OffChip {
		return
	}
	for d := range dec.Domains {
		dd := &dec.Domains[d]
		n := r.nets[d].Size()
		invariant.CheckCount("governor phase count", dd.Count, 0, n)
		if len(dd.Ranking) != n {
			invariant.Reportf("vr-gating", d, "domain %d: ranking of %d entries for %d regulators",
				d, len(dd.Ranking), n)
			continue
		}
		seen := make([]bool, n)
		for _, li := range dd.Ranking {
			if li < 0 || li >= n || seen[li] {
				invariant.Reportf("vr-gating", d, "domain %d: ranking %v is not a permutation",
					d, dd.Ranking)
				break
			}
			seen[li] = true
		}
	}
}

// sanitizeSubstep runs once per substep, after the decision has been
// applied and the thermal model stepped. It sweeps every reused scratch
// vector for NaN/Inf, pins temperatures between ambient and the configured
// junction limit, reconstructs the current and conversion-loss maps from
// independent formulas (energy conservation), and checks gating legality:
// a gated regulator must neither carry current nor dissipate loss, and
// active phase counts must respect the network's per-phase current limit.
func (r *Runner) sanitizeSubstep() {
	invariant.CheckFinite("sim.blockPower", r.blockPower)
	invariant.CheckFinite("sim.blockCurrent", r.blockCurrent)
	invariant.CheckFinite("sim.vrPower", r.vrPower)
	invariant.CheckFinite("sim.vrCurrent", r.vrCurrent)
	invariant.CheckFinite("sim.domainCurrent", r.domainCurrent)
	invariant.CheckFinite("sim.sensorVRTemps", r.sensorVRTemps)
	invariant.CheckNonNegative("sim.blockPower", r.blockPower)
	invariant.CheckNonNegative("sim.vrPower", r.vrPower)
	invariant.CheckNonNegative("sim.vrCurrent", r.vrCurrent)
	invariant.CheckNonNegative("sim.domainCurrent", r.domainCurrent)

	// Temperature bounds against the configured junction limit. The
	// package-level thermal hooks only know the ambient floor; the Runner
	// knows the ceiling.
	ambientC := r.cfg.Thermal.AmbientC
	junctionC := r.cfg.Thermal.MaxJunction()
	invariant.CheckTempBounds("sim.blockTemps", r.tm.BlockTemps(nil), ambientC, junctionC)
	invariant.CheckTempBounds("sim.vrTemps", r.tm.VRTemps(nil), ambientC, junctionC)

	// Energy conservation, part 1: the per-block current map and the
	// per-domain demand must reconstruct from the power map. The domain sum
	// is re-accumulated in reverse order so it is not the same float
	// expression demand() evaluated.
	for i, p := range r.blockPower {
		//lint:ignore floatcheck demand() computes exactly this expression, so exact equality is the contract
		if r.blockCurrent[i] != power.WattsToAmps(p) {
			invariant.Reportf("energy-balance", i,
				"blockCurrent[%d] = %v A does not match %v W at Vdd", i, r.blockCurrent[i], p)
		}
	}
	for d := range r.chip.Domains {
		blocks := r.chip.Domains[d].Blocks
		var sum float64
		for bi := len(blocks) - 1; bi >= 0; bi-- {
			sum += r.blockCurrent[blocks[bi]]
		}
		invariant.CheckBalance("domain demand", r.domainCurrent[d], sum)
	}

	if r.cfg.Policy == core.OffChip {
		return
	}

	// Gating legality and conversion-loss conservation, per domain. With an
	// armed fault injector the legality vocabulary widens (a stuck-on unit
	// legally carries current while "gated", a derated unit has a reduced
	// per-phase limit) but only for the units the schedule actually touched:
	// healthy runs — and healthy units within faulted runs — stay fully
	// strict. See docs/INVARIANTS.md for the fault-class exemption table.
	for d := range r.chip.Domains {
		dom := &r.chip.Domains[d]
		mask := r.masks[d]
		n := r.nets[d].Size()
		dirty := r.flt != nil && r.fltDomDirty[d]
		count := 0
		var lossSum, curSum float64
		for li, on := range mask {
			rid := dom.Regulators[li]
			class := r.faultClass(rid)
			if on {
				if class == invariant.VRStuckOff {
					invariant.Reportf("vr-gating", rid,
						"domain %s: stuck-off regulator was activated", dom.Name)
				}
				count++
				lossSum += r.vrPower[rid]
				curSum += r.vrCurrent[rid]
				//lint:ignore floatcheck a gated healthy regulator is zeroed exactly; the cheap pre-test keeps the hot path allocation-free
			} else if class != invariant.VRHealthy || r.vrPower[rid] != 0 || r.vrCurrent[rid] != 0 {
				invariant.CheckGatedVR("domain "+dom.Name, rid, r.vrCurrent[rid], r.vrPower[rid], class)
			}
		}
		lo := 1
		if dirty && r.fltAvailN[d] == 0 {
			lo = 0
		}
		invariant.CheckCount("applied phase count", count, lo, n)
		if count < 1 {
			continue
		}
		iout := r.domainCurrent[d]
		// Per-phase current limit, unless the network is at capacity: with
		// every usable phase already on, legalisation has nothing left to
		// raise. The derated fraction tightens the limit for faulted domains.
		derate := 1.0
		atCapacity := count == n
		if dirty {
			derate = r.fltMinFrac[d]
			atCapacity = atCapacity || count >= r.fltAvailN[d]
		}
		share := iout / float64(count)
		invariant.CheckPhaseShare("domain "+dom.Name, d, share, r.nets[d].Design().IMax, derate, atCapacity)
		// Energy conservation, part 2: the per-VR losses injected into the
		// thermal model (count repeated additions of PerVRLoss) must agree
		// with the composite-curve total PlossAt — algebraically identical,
		// differently associated formulas. Faulted domains scale each unit's
		// loss by its derating multiplier, so the expectation is rebuilt the
		// same way, associated in reverse.
		if dirty {
			perVR := r.nets[d].PerVRLoss(iout, count)
			var expected float64
			for li := len(mask) - 1; li >= 0; li-- {
				if mask[li] {
					expected += perVR * r.flt.LossMult(dom.Regulators[li])
				}
			}
			invariant.CheckBalance("domain conversion loss", lossSum, expected)
		} else {
			invariant.CheckBalance("domain conversion loss", lossSum, r.nets[d].PlossAt(iout, count))
		}
		// And the shared currents must re-sum to the domain demand.
		invariant.CheckBalance("domain shared current", curSum, iout)
	}
}
