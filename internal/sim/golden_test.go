package sim

import (
	"math"
	"testing"

	"thermogater/internal/core"
)

// TestGoldenLadder is a regression anchor: the full policy ladder on
// lu_ncb at a fixed seed and duration, with every headline metric pinned
// to its recorded value within a tolerance. The simulation is
// deterministic, so drift here means a model change — recalibrate
// deliberately (update the table alongside EXPERIMENTS.md), never
// accidentally.
func TestGoldenLadder(t *testing.T) {
	type golden struct {
		tmax, grad, noise, ploss, eta float64
	}
	// Recorded from the calibrated model (seed 1, 200ms window, 25 epochs
	// warm-up). Tolerances: ±0.5°C on temperatures, ±0.8 on noise %, ±5%
	// relative on loss, ±0.005 on eta.
	want := map[core.PolicyKind]golden{
		core.OffChip: {tmax: 63.1, grad: 8.0, noise: 0, ploss: 0, eta: 0},
		core.AllOn:   {tmax: 71.7, grad: 14.0, noise: 5.1, ploss: 10.3, eta: 0.873},
		core.Naive:   {tmax: 72.3, grad: 14.6, noise: 9.6, ploss: 8.1, eta: 0.896},
		core.OracT:   {tmax: 70.2, grad: 12.6, noise: 9.5, ploss: 8.1, eta: 0.897},
		core.OracV:   {tmax: 74.9, grad: 17.1, noise: 7.1, ploss: 8.1, eta: 0.897},
		core.OracVT:  {tmax: 70.2, grad: 12.6, noise: 9.5, ploss: 8.1, eta: 0.897},
		core.PracT:   {tmax: 70.5, grad: 12.7, noise: 9.5, ploss: 8.1, eta: 0.896},
		core.PracVT:  {tmax: 70.8, grad: 13.1, noise: 9.2, ploss: 8.1, eta: 0.896},
	}
	for policy, g := range want {
		res := run(t, policy, "lu_ncb", nil)
		if d := math.Abs(res.MaxTempC - g.tmax); d > 0.5 {
			t.Errorf("%v: Tmax %v, golden %v", policy, res.MaxTempC, g.tmax)
		}
		if d := math.Abs(res.MaxGradientC - g.grad); d > 0.5 {
			t.Errorf("%v: gradient %v, golden %v", policy, res.MaxGradientC, g.grad)
		}
		if policy != core.OffChip {
			if d := math.Abs(res.MaxNoisePct - g.noise); d > 0.8 {
				t.Errorf("%v: noise %v, golden %v", policy, res.MaxNoisePct, g.noise)
			}
			if rel := math.Abs(res.AvgPlossW-g.ploss) / g.ploss; rel > 0.05 {
				t.Errorf("%v: Ploss %v, golden %v", policy, res.AvgPlossW, g.ploss)
			}
			if d := math.Abs(res.AvgEta - g.eta); d > 0.005 {
				t.Errorf("%v: eta %v, golden %v", policy, res.AvgEta, g.eta)
			}
		}
	}
}
