package sim

import (
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/fault"
	"thermogater/internal/workload"
)

// faultMatrix is one scheduled instance of every fault model, each with a
// representative parameterisation. TestFaultMatrixSmoke asserts the set
// covers fault.Kinds() exactly, so adding a model without extending the
// matrix fails loudly.
var faultMatrix = []string{
	"vr-stuck-off@25:unit=5",
	"vr-stuck-on@25:unit=5",
	"vr-phase-loss@25:unit=5,value=0.5",
	"vr-derate@25:unit=5,value=0.05",
	"sensor-stuck@25:unit=5,value=140",
	"sensor-noise@25+20:unit=5,value=0.1",
	"sensor-quantize@25+20:unit=5,value=2",
	"sensor-dropout@25+20:unit=5",
	"trace-gap@25+10:unit=2",
	"trace-spike@25+10:unit=2,value=0.5",
}

// TestFaultMatrixSmoke runs every fault model against a practical policy
// (the sensor-consuming worst case) and requires the run to complete with
// the fault's footprint visible in the robustness counters. Under the
// tgsan build tag this additionally proves the degraded gating path keeps
// every physics invariant that is not explicitly exempted for the faulted
// units (make chaos runs it that way).
func TestFaultMatrixSmoke(t *testing.T) {
	covered := make(map[fault.Kind]bool)
	for _, spec := range faultMatrix {
		sched, err := fault.ParseSchedule(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		covered[sched.Events[0].Kind] = true
	}
	for _, k := range fault.Kinds() {
		if !covered[k] {
			t.Fatalf("fault matrix does not cover %v — extend faultMatrix", k)
		}
	}

	for _, spec := range faultMatrix {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			cfg := telemetryTestConfig(t, core.PracT)
			sched, err := fault.ParseSchedule(spec)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Faults = sched
			r, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Run()
			if err != nil {
				t.Fatalf("run with %q failed: %v", spec, err)
			}
			if res.FaultEvents == 0 {
				t.Error("fault never fired")
			}
			switch sched.Events[0].Kind {
			case fault.SensorDropout:
				if res.SensorFallbacks == 0 {
					t.Error("dropout produced no sensor fallbacks")
				}
			case fault.TraceGap:
				if res.TraceGapFrames == 0 {
					t.Error("trace gap froze no frames")
				}
			case fault.SensorStuckAt:
				// Stuck at 140°C, far above ThermalEmergencyC: the
				// fail-safe must force the affected domain to all-on.
				if res.ThermalOverrides == 0 {
					t.Error("140°C stuck sensor never triggered the thermal fail-safe")
				}
			}
		})
	}
}

// TestDegradedPolicyLadderThermal checks the paper's thermal policy ladder
// survives a compound fault: with one regulator failed off from the start
// and 10% relative noise on every sensor, thermally-aware gating must
// still beat the all-on baseline, and the practical policy must stay close
// to its oracle. The failed unit must also never appear in the on-time
// accounting.
func TestDegradedPolicyLadderThermal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy ladder run")
	}
	p, err := workload.ByName("lu_ncb")
	if err != nil {
		t.Fatal(err)
	}
	run := func(policy core.PolicyKind) *Result {
		cfg := DefaultConfig(policy, p)
		cfg.DurationMS = 200
		cfg.WarmupEpochs = 25
		cfg.ProfilingEpochs = 80
		sched, err := fault.ParseSchedule("vr-stuck-off@0:unit=12; sensor-noise@0:value=0.1")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = sched
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("%v under faults: %v", policy, err)
		}
		if res.FaultEvents == 0 {
			t.Fatalf("%v: fault schedule never fired", policy)
		}
		return res
	}
	allOn := run(core.AllOn)
	oracT := run(core.OracT)
	pracT := run(core.PracT)

	if oracT.MaxTempC >= allOn.MaxTempC {
		t.Errorf("degraded OracT Tmax %v ≥ AllOn %v — gating no longer helps under faults",
			oracT.MaxTempC, allOn.MaxTempC)
	}
	if d := pracT.MaxTempC - oracT.MaxTempC; d > 3.0 {
		t.Errorf("degraded PracT trails its oracle by %v°C (limit 3.0)", d)
	}
	//lint:ignore floatcheck a stuck-off regulator must never be counted on, exactly
	if oracT.VROnFrac[12] != 0 {
		t.Errorf("stuck-off regulator 12 shows on-fraction %v", oracT.VROnFrac[12])
	}
}

// TestDegradedPolicyLadderNoise checks the voltage-noise leg of the ladder
// under the same compound fault: the VT oracle — which guards emergencies —
// must not spend more time in emergency than the thermal-only oracle, and
// its worst noise must stay in the same regime as the healthy run rather
// than exploding.
func TestDegradedPolicyLadderNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy ladder run")
	}
	p, err := workload.ByName("barnes")
	if err != nil {
		t.Fatal(err)
	}
	run := func(policy core.PolicyKind, faults string) *Result {
		cfg := DefaultConfig(policy, p)
		cfg.DurationMS = 200
		cfg.WarmupEpochs = 25
		if faults != "" {
			sched, err := fault.ParseSchedule(faults)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Faults = sched
		}
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		return res
	}
	const compound = "vr-stuck-off@0:unit=12; sensor-noise@0:value=0.1"
	oracT := run(core.OracT, compound)
	oracVT := run(core.OracVT, compound)
	healthyVT := run(core.OracVT, "")

	if oracVT.EmergencyFrac > oracT.EmergencyFrac {
		t.Errorf("degraded OracVT emergency fraction %v above OracT %v — the noise guard stopped working",
			oracVT.EmergencyFrac, oracT.EmergencyFrac)
	}
	if healthyVT.MaxNoisePct > 0 && oracVT.MaxNoisePct > 1.2*healthyVT.MaxNoisePct {
		t.Errorf("degraded OracVT worst noise %v%% blew past 1.2× the healthy run's %v%%",
			oracVT.MaxNoisePct, healthyVT.MaxNoisePct)
	}
}
