package sim

import (
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/dvfs"
)

// TestDVFSLowersPowerOnLightWorkloads checks the DVFS layer end to end:
// on a light workload the per-core governors step down the V/f ladder,
// chip power drops, regulator demand (and hence conversion loss) shrinks,
// and the gated network still sustains near-peak efficiency.
func TestDVFSLowersPowerOnLightWorkloads(t *testing.T) {
	withDVFS := func(c *Config) {
		cfg := dvfs.DefaultConfig()
		c.DVFS = &cfg
	}
	base := run(t, core.OracT, "raytrace", nil)
	scaled := run(t, core.OracT, "raytrace", withDVFS)

	if scaled.DVFSAvgVddV == nil {
		t.Fatal("DVFS metrics not populated")
	}
	if scaled.AvgChipPowerW >= base.AvgChipPowerW {
		t.Errorf("DVFS power %vW not below nominal %vW", scaled.AvgChipPowerW, base.AvgChipPowerW)
	}
	if scaled.AvgPlossW >= base.AvgPlossW {
		t.Errorf("DVFS conversion loss %vW not below nominal %vW", scaled.AvgPlossW, base.AvgPlossW)
	}
	if scaled.AvgEta < 0.85 {
		t.Errorf("DVFS run efficiency %v", scaled.AvgEta)
	}
	// raytrace is light: every core should have stepped below nominal.
	for c, v := range scaled.DVFSAvgVddV {
		if v >= 1.03 {
			t.Errorf("core %d average Vdd %v never left nominal", c, v)
		}
	}
	if scaled.DVFSAvgPerf >= 1 || scaled.DVFSAvgPerf <= 0.5 {
		t.Errorf("average performance scale %v outside (0.5, 1)", scaled.DVFSAvgPerf)
	}
	if scaled.MaxTempC >= base.MaxTempC {
		t.Errorf("DVFS Tmax %v not below nominal %v", scaled.MaxTempC, base.MaxTempC)
	}
}

// TestDVFSStaysNominalOnHeavyWorkloads: cholesky keeps utilisation above
// the step-down threshold, so the ladder stays at (or quickly returns to)
// the top and performance is preserved.
func TestDVFSStaysNominalOnHeavyWorkloads(t *testing.T) {
	scaled := run(t, core.OracT, "cholesky", func(c *Config) {
		cfg := dvfs.DefaultConfig()
		c.DVFS = &cfg
	})
	if scaled.DVFSAvgPerf < 0.95 {
		t.Errorf("cholesky performance scale %v; heavy workloads must stay near nominal", scaled.DVFSAvgPerf)
	}
}

// TestDVFSWithPerDomainMix: in a hot/cold mix the hot cores stay nominal
// while the cold cores scale down — per-domain DVFS, the POWER8 use case.
func TestDVFSWithPerDomainMix(t *testing.T) {
	cfg := mixConfig(t, core.OracT)
	d := dvfs.DefaultConfig()
	cfg.DVFS = &d
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Cores 0-3 run cholesky, 4-7 raytrace.
	var hot, cold float64
	for c := 0; c < 4; c++ {
		hot += res.DVFSAvgVddV[c]
	}
	for c := 4; c < 8; c++ {
		cold += res.DVFSAvgVddV[c]
	}
	if hot <= cold {
		t.Errorf("hot cores avg Vdd %v not above cold cores %v", hot/4, cold/4)
	}
}

func TestDVFSConfigValidation(t *testing.T) {
	cfg := mixConfig(t, core.OracT)
	bad := dvfs.DefaultConfig()
	bad.HysteresisEpochs = 0
	cfg.DVFS = &bad
	if err := cfg.Validate(); err == nil {
		t.Error("invalid DVFS config accepted")
	}
}
