package sim

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"thermogater/internal/core"
	"thermogater/internal/fault"
	"thermogater/internal/telemetry"
)

// constantClockRegistry returns a telemetry registry whose clock never
// moves, plus the buffer its JSONL sink writes to. With a frozen clock
// every duration field is exactly zero, so the stream depends only on the
// simulation state — the property the byte-identity oracle needs.
func constantClockRegistry() (*telemetry.Registry, *bytes.Buffer, *telemetry.JSONLSink) {
	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	epoch := time.Unix(0, 0)
	reg.SetClock(func() time.Time { return epoch })
	sink := telemetry.NewJSONLSink(&buf)
	reg.AddSink(sink)
	return reg, &buf, sink
}

// checkpointTestConfig is a run with as much cross-epoch state as the
// engine carries: a practical policy (WMA filters, theta, predictor RNG),
// aging accumulation, sensor noise and an armed fault schedule.
func checkpointTestConfig(t *testing.T) Config {
	t.Helper()
	cfg := telemetryTestConfig(t, core.PracVT)
	cfg.TrackAging = true
	cfg.SensorNoiseC = 0.05
	sched, err := fault.ParseSchedule("vr-stuck-off@15:unit=3; sensor-dropout@25+10:unit=40; trace-gap@30+5:unit=2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = sched
	return cfg
}

// errInterrupt is the sentinel a checkpoint sink returns to abort a run at
// a chosen snapshot — the deterministic stand-in for a kill.
var errInterrupt = errors.New("interrupted for test")

// TestCheckpointResumeByteIdentical is the central resilience oracle: a run
// interrupted at an arbitrary checkpoint and resumed from it must emit a
// telemetry stream whose concatenation with the interrupted prefix is
// byte-identical to an uninterrupted run — and the final Results must be
// deeply equal. Any piece of cross-epoch state missing from Checkpoint
// (an RNG, a WMA filter, an accumulator) diverges the stream here.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	cfg := checkpointTestConfig(t)

	// Reference: the uninterrupted run.
	regA, bufA, sinkA := constantClockRegistry()
	full := cfg
	full.Telemetry = regA
	rA, err := New(full)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := rA.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sinkA.Flush(); err != nil {
		t.Fatal(err)
	}
	if bufA.Len() == 0 {
		t.Fatal("reference run emitted no telemetry")
	}

	// Interrupted run: checkpoint every 7 epochs, kill at the third
	// snapshot (after epoch 20 of 60). The checkpoint itself round-trips
	// through gob on the way, like a real on-disk snapshot would.
	var cpBytes bytes.Buffer
	writes := 0
	regB, bufB, sinkB := constantClockRegistry()
	interrupted := cfg
	interrupted.Telemetry = regB
	interrupted.Checkpoint = CheckpointConfig{
		EveryEpochs: 7,
		Sink: func(cp *Checkpoint) error {
			writes++
			if writes < 3 {
				return nil
			}
			cpBytes.Reset()
			if err := cp.Encode(&cpBytes); err != nil {
				return err
			}
			return errInterrupt
		},
	}
	rB, err := New(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rB.Run(); !errors.Is(err, errInterrupt) {
		t.Fatalf("interrupted run returned %v, want the sink's sentinel", err)
	}
	if err := sinkB.Flush(); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(&cpBytes)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Epoch != 20 {
		t.Fatalf("third checkpoint at epoch %d, want 20", cp.Epoch)
	}

	// Resume: a fresh runner with the same config, loaded from the
	// decoded checkpoint, continues the telemetry stream and the result.
	regC, bufC, sinkC := constantClockRegistry()
	resumed := cfg
	resumed.Telemetry = regC
	rC, err := New(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if err := rC.Restore(cp); err != nil {
		t.Fatal(err)
	}
	resC, err := rC.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sinkC.Flush(); err != nil {
		t.Fatal(err)
	}

	stitched := append(append([]byte(nil), bufB.Bytes()...), bufC.Bytes()...)
	if !bytes.Equal(stitched, bufA.Bytes()) {
		la := bytes.Split(bufA.Bytes(), []byte("\n"))
		ls := bytes.Split(stitched, []byte("\n"))
		for i := 0; i < len(la) && i < len(ls); i++ {
			if !bytes.Equal(la[i], ls[i]) {
				t.Fatalf("resumed telemetry diverges at line %d:\n  uninterrupted: %s\n  stitched:      %s",
					i+1, la[i], ls[i])
			}
		}
		t.Fatalf("telemetry streams differ in length: %d vs %d bytes", len(stitched), len(bufA.Bytes()))
	}
	if !reflect.DeepEqual(resA, resC) {
		t.Errorf("resumed result differs from uninterrupted result:\n  uninterrupted: %+v\n  resumed:       %+v", resA, resC)
	}
	if resA.FaultEvents == 0 {
		t.Error("fault schedule never fired — the test is not exercising injector state")
	}
}

// TestCheckpointRoundTrip covers the snapshot plumbing itself: gob
// round-trip fidelity, schema and identity rejection, and that a single
// checkpoint can be restored more than once without cross-talk.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := checkpointTestConfig(t)
	var cp *Checkpoint
	cfg.Checkpoint = CheckpointConfig{
		EveryEpochs: 10,
		Sink: func(c *Checkpoint) error {
			cp = c
			return errInterrupt
		},
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); !errors.Is(err, errInterrupt) {
		t.Fatalf("run returned %v, want sentinel", err)
	}
	if cp == nil {
		t.Fatal("sink never received a checkpoint")
	}

	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, decoded) {
		t.Error("gob round-trip changed the checkpoint")
	}

	// Two independent resumes from the same snapshot must agree exactly.
	runFrom := func(c *Checkpoint) *Result {
		rr, err := New(checkpointTestConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := rr.Restore(c); err != nil {
			t.Fatal(err)
		}
		res, err := rr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	resA := runFrom(decoded)
	resB := runFrom(decoded)
	if !reflect.DeepEqual(resA, resB) {
		t.Error("two resumes from the same checkpoint diverged — the checkpoint is being mutated")
	}

	// Schema and identity guards.
	bad := *decoded
	bad.Schema = "thermogater/checkpoint/v0"
	var bbuf bytes.Buffer
	if err := bad.Encode(&bbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(&bbuf); err == nil {
		t.Error("ReadCheckpoint accepted a wrong schema tag")
	}
	other, err := New(telemetryTestConfig(t, core.OracT))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(decoded); err == nil {
		t.Error("Restore accepted a checkpoint from a different policy")
	}
	mism := *decoded
	mism.Seed++
	same, err := New(checkpointTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := same.Restore(&mism); err == nil {
		t.Error("Restore accepted a checkpoint with a different seed")
	}
	if err := same.Restore(nil); err == nil {
		t.Error("Restore accepted a nil checkpoint")
	}
}
