package sim

import (
	"testing"

	"thermogater/internal/telemetry"
)

// TestSharedRegistryCacheCounters is the regression test for the
// pdn.CacheStats registration audit: telemetry.Registry.Counter is
// get-or-create, so two instrument sets (two runners, or one runner
// re-created after checkpoint resume) sharing one registry must resolve
// the same "pdn_mask_cache_total" counters instead of panicking or
// double-registering, and their increments must aggregate.
func TestSharedRegistryCacheCounters(t *testing.T) {
	reg := telemetry.NewRegistry()

	a := newInstruments(reg)
	var b *instruments
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("second newInstruments on a shared registry panicked: %v", r)
			}
		}()
		b = newInstruments(reg)
	}()

	if a.maskCacheHit != b.maskCacheHit || a.maskCacheMiss != b.maskCacheMiss || a.maskCacheEvict != b.maskCacheEvict {
		t.Fatal("shared registry returned distinct counters for the same name+labels")
	}

	a.maskCacheHit.Add(3)
	b.maskCacheHit.Add(4)
	if got := a.maskCacheHit.Value(); got != 7 {
		t.Fatalf("shared counter did not aggregate: got %v, want 7", got)
	}

	// The registry must hold exactly one series per (name, labels) pair:
	// hit/miss/evict under one metric name, each registered once.
	snap := reg.Snapshot()
	seen := map[string]int{}
	for _, c := range snap.Counters {
		if c.Name == "pdn_mask_cache_total" {
			seen[telemetry.Key(c.Name, c.Labels)]++
		}
	}
	if len(seen) != 3 {
		t.Fatalf("want 3 pdn_mask_cache_total series (hit/miss/evict), got %d: %v", len(seen), seen)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("series %s registered %d times", k, n)
		}
	}
}
