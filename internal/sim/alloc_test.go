package sim

import (
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/workload"
)

// allocGateConfig is the steady-state shape the zero-allocation contract
// covers: no telemetry registry, no epoch trace, no VR tracking, no
// faults and no checkpoint sink — the pure physics loop that dominates
// sweep wall-clock. Everything the config leaves off is an annotated
// //perf:alloc exception in the source, not part of the contract.
func allocGateConfig(t *testing.T, policy core.PolicyKind, workers int) Config {
	t.Helper()
	bench, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(policy, bench)
	cfg.DurationMS = 120
	cfg.WarmupEpochs = 10
	cfg.Workers = workers
	return cfg
}

// testStepEpochAllocs drives the epoch loop directly: beginRun, a warm-up
// stretch long enough to fill every scratch buffer, grow the uarch frame
// slices and pass the worst-noise transient, then testing.AllocsPerRun
// over single epochs. The simulation is deterministic per seed, so the
// measured window is reproducible — this is a hard gate, not a heuristic.
func testStepEpochAllocs(t *testing.T, policy core.PolicyKind, workers int) {
	r, err := New(allocGateConfig(t, policy, workers))
	if err != nil {
		t.Fatal(err)
	}
	if policy == core.PracT || policy == core.PracVT {
		theta, err := r.profileTheta()
		if err != nil {
			t.Fatal(err)
		}
		if err := r.gov.SetTheta(theta); err != nil {
			t.Fatal(err)
		}
	}
	cleanup, err := r.beginRun()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	const warmEpochs = 60
	const runs = 40
	e := r.runStart
	for ; e < warmEpochs; e++ {
		if err := r.stepEpoch(e); err != nil {
			t.Fatal(err)
		}
	}
	// AllocsPerRun invokes the body runs+1 times (one warm-up call).
	if e+runs+1 > r.runNEpochs {
		t.Fatalf("config too short: need %d epochs, have %d", e+runs+1, r.runNEpochs)
	}
	avg := testing.AllocsPerRun(runs, func() {
		if err := r.stepEpoch(e); err != nil {
			t.Fatal(err)
		}
		e++
	})
	if avg != 0 {
		t.Fatalf("%v workers=%d: %v allocations per steady-state epoch, want 0", policy, workers, avg)
	}
	if _, err := r.finishRun(); err != nil {
		t.Fatal(err)
	}
}

// TestStepEpochZeroAllocs gates the epoch loop across the policy cost
// spectrum (no decision work, oracle PDN solving, practical predictor)
// and both pipelines. The parallel cells additionally pin the prebuilt
// fan-out workers, the double-buffered producer and the reused governor
// inputs: AllocsPerRun counts mallocs on every goroutine, producer
// included.
func TestStepEpochZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		policy  core.PolicyKind
		workers int
	}{
		{"allon/seq", core.AllOn, 0},
		{"oracT/seq", core.OracT, 0},
		{"oracT/par", core.OracT, 4},
		{"pracVT/seq", core.PracVT, 0},
		{"pracVT/par", core.PracVT, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			testStepEpochAllocs(t, tc.policy, tc.workers)
		})
	}
}
