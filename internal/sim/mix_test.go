package sim

import (
	"strings"
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/floorplan"
	"thermogater/internal/uarch"
	"thermogater/internal/workload"
)

// mixConfig builds a 4×cholesky + 4×raytrace multiprogrammed run.
func mixConfig(t *testing.T, policy core.PolicyKind) Config {
	t.Helper()
	chol, err := workload.ByName("cholesky")
	if err != nil {
		t.Fatal(err)
	}
	rayt, err := workload.ByName("raytrace")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(policy, chol)
	cfg.Mix = []workload.Profile{chol, chol, chol, chol, rayt, rayt, rayt, rayt}
	cfg.DurationMS = 150
	cfg.WarmupEpochs = 25
	return cfg
}

func TestMixValidation(t *testing.T) {
	cfg := mixConfig(t, core.OracT)
	cfg.Mix = cfg.Mix[:3]
	if err := cfg.Validate(); err == nil {
		t.Error("short mix accepted")
	}
	cfg = mixConfig(t, core.OracT)
	cfg.Mix[2].DurationMS = 0
	if err := cfg.Validate(); err == nil {
		t.Error("invalid mix profile accepted")
	}
}

func TestMixLabel(t *testing.T) {
	cfg := mixConfig(t, core.OracT)
	label := cfg.benchmarkLabel()
	if !strings.HasPrefix(label, "mix(") || !strings.Contains(label, "chol") || !strings.Contains(label, "rayt") {
		t.Errorf("mix label %q", label)
	}
}

// TestMixPerDomainAdaptation is the Section 7 multiprogramming claim: the
// governor sizes each Vdd-domain independently, so the domains running the
// hot program keep more regulators active than those running the cold one.
func TestMixPerDomainAdaptation(t *testing.T) {
	cfg := mixConfig(t, core.OracT)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Benchmark, "mix(") {
		t.Errorf("result labelled %q", res.Benchmark)
	}
	chip := r.Chip()
	domainOnSum := func(d int) float64 {
		var sum float64
		for _, rid := range chip.Domains[d].Regulators {
			sum += res.VROnFrac[rid]
		}
		return sum
	}
	// Cores 0-3 run cholesky (hot), 4-7 raytrace (cold).
	var hot, cold float64
	for d := 0; d < 4; d++ {
		hot += domainOnSum(d)
	}
	for d := 4; d < 8; d++ {
		cold += domainOnSum(d)
	}
	if hot <= cold*1.2 {
		t.Errorf("cholesky domains keep %.2f regulator-fraction on vs raytrace's %.2f; expected a clear gap", hot, cold)
	}
}

func TestMixDeterminism(t *testing.T) {
	runMix := func() *Result {
		cfg := mixConfig(t, core.AllOn)
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runMix(), runMix()
	if a.MaxTempC != b.MaxTempC || a.MaxNoisePct != b.MaxNoisePct {
		t.Error("mix runs with identical seeds diverged")
	}
}

func TestMixPracticalPolicies(t *testing.T) {
	cfg := mixConfig(t, core.PracVT)
	cfg.ProfilingEpochs = 80
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ThetaMeanR2 < 0.8 {
		t.Errorf("mix profiling R² = %v", res.ThetaMeanR2)
	}
	if res.AvgEta < 0.85 {
		t.Errorf("mix efficiency %v", res.AvgEta)
	}
}

func TestMixCoresReflectTheirPrograms(t *testing.T) {
	// At the activity level, the cholesky cores must run visibly hotter
	// than the raytrace cores within the same chip.
	chol, _ := workload.ByName("cholesky")
	rayt, _ := workload.ByName("raytrace")
	chip := floorplan.MustPOWER8()
	s, err := uarch.NewMix(chip,
		[]workload.Profile{chol, chol, chol, chol, rayt, rayt, rayt, rayt}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Mixed() {
		t.Error("NewMix simulator not marked mixed")
	}
	exu0, _ := chip.BlockByName("core0/EXU")
	exu7, _ := chip.BlockByName("core7/EXU")
	var hot, cold float64
	for i := 0; i < 500; i++ {
		f, err := s.Step(uarch.DefaultStepMS)
		if err != nil {
			t.Fatal(err)
		}
		hot += f.Activity[exu0.ID]
		cold += f.Activity[exu7.ID]
	}
	if hot <= 1.5*cold {
		t.Errorf("cholesky core activity %v not well above raytrace core %v", hot, cold)
	}
}
