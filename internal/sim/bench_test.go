package sim

import (
	"io"
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/telemetry"
	"thermogater/internal/workload"
)

func benchmarkRunner(b *testing.B, reg *telemetry.Registry) {
	b.Helper()
	bench, err := workload.ByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(core.OracT, bench)
	cfg.DurationMS = 100
	cfg.WarmupEpochs = 10
	cfg.Telemetry = reg
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunner is the telemetry-overhead reference: the closed loop with
// instrumentation disabled (nil registry — the zero-cost fast path).
func BenchmarkRunner(b *testing.B) {
	benchmarkRunner(b, nil)
}

// BenchmarkRunnerTelemetry is the same loop with a live registry and a
// JSONL sink draining to io.Discard; compare against BenchmarkRunner to
// measure the enabled-instrumentation overhead.
func BenchmarkRunnerTelemetry(b *testing.B) {
	reg := telemetry.NewRegistry()
	reg.AddSink(telemetry.NewJSONLSink(io.Discard))
	benchmarkRunner(b, reg)
}
