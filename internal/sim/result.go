package sim

import (
	"thermogater/internal/core"
	"thermogater/internal/pdn"
)

// EpochStats is one entry of the per-epoch trace (Fig. 6).
type EpochStats struct {
	// TimeMS is the epoch start time.
	TimeMS float64
	// TotalPowerW is the chip-wide power demand (blocks only).
	TotalPowerW float64
	// ActiveVRs is the cumulative active regulator count over all domains.
	ActiveVRs int
	// MaxTempC and GradientC sample the thermal state at epoch end.
	MaxTempC, GradientC float64
	// MaxNoisePct is the worst voltage noise seen within the epoch.
	MaxNoisePct float64
	// PlossW is the total regulator conversion loss.
	PlossW float64
	// Eta is the output-power-weighted conversion efficiency.
	Eta float64
}

// VRSample is one entry of the tracked regulator's trace (Fig. 8).
type VRSample struct {
	TimeMS float64
	TempC  float64
	On     bool
}

// WorstNoiseState snapshots the simulation state at the worst voltage
// noise moment, sufficient to regenerate a cycle-level transient window
// around it (Fig. 14).
type WorstNoiseState struct {
	// Domain and BlockIndex locate the worst load (BlockIndex indexes the
	// domain's Blocks).
	Domain, BlockIndex int
	// TimeMS is when the worst noise occurred.
	TimeMS float64
	// BlockCurrent is the chip-wide current map at that moment (amps).
	BlockCurrent []float64
	// Active is the domain's regulator mask at that moment.
	Active []bool
	// Bursts are the burst events of that epoch mapped onto window cycles.
	Bursts []pdn.Burst
}

// Result aggregates one run.
type Result struct {
	// Policy and Benchmark identify the run.
	Policy    string
	Benchmark string

	// MaxTempC is the temporal maximum of the spatial maximum temperature
	// (Fig. 9) and MaxTempAt names the hottest element.
	MaxTempC  float64
	MaxTempAt string
	// MaxGradientC is the temporal maximum of the spatial thermal gradient
	// (Fig. 10).
	MaxGradientC float64
	// MaxNoisePct is the exhaustive maximum voltage noise in percent of
	// nominal Vdd, tracked at every substep and burst. SampledMaxNoisePct
	// follows the paper's VoltSpot methodology instead — the maximum over
	// 200 equally spaced samples — which is what Fig. 11 reports; rare
	// events (e.g. the ~10% of emergencies PracVT's detector misses) can
	// escape the sampled metric while still registering in the exhaustive
	// one. NoiseModeled is false for the off-chip baseline.
	MaxNoisePct        float64
	SampledMaxNoisePct float64
	NoiseModeled       bool

	// AvgPlossW is the time-average total regulator conversion loss;
	// AvgEta the output-weighted average conversion efficiency.
	AvgPlossW float64
	AvgEta    float64
	// AvgChipPowerW is the average chip power demand (for calibration).
	AvgChipPowerW float64

	// EmergencyFrac is the fraction of execution time spent in voltage
	// emergencies (Table 2).
	EmergencyFrac float64
	// EmergencyOverrides counts domain-epochs the VT policies switched to
	// all-on.
	EmergencyOverrides int
	// DemandViolations counts substeps where even all regulators of a
	// domain could not legally supply the demand.
	DemandViolations int

	// VROnFrac is the fraction of epochs each regulator spent on (Fig. 13).
	VROnFrac []float64

	// ThetaMeanR2 reports the Eqn. 2 predictor quality for practical
	// policies (the paper calibrates to ≈0.99).
	ThetaMeanR2 float64

	// Trace is the per-epoch trace when Config.TraceEpochs is set.
	Trace []EpochStats
	// VRTrace is the tracked regulator's per-substep trace (Fig. 8).
	VRTrace []VRSample
	// HeatMap is the frame captured at the Tmax peak (Fig. 12).
	HeatMap [][]float64
	// WorstNoise reconstructs the worst-noise moment (Fig. 14).
	WorstNoise *WorstNoiseState

	// MTTFYears estimates each regulator's mean time to failure under the
	// observed stress pattern (Config.TrackAging); +Inf for regulators
	// that never carried current. MinMTTFYears is the weakest regulator's
	// lifetime and AgingImbalance the max/mean damage ratio (1 = evenly
	// worn).
	MTTFYears      []float64
	MinMTTFYears   float64
	AgingImbalance float64

	// DetectorStats is the signature emergency detector's confusion matrix
	// (zero for the default stochastic detector).
	DetectorStats core.PredictorStats

	// DVFSAvgVddV is the measured-average supply voltage per core domain
	// when a DVFS governor is layered in (nil otherwise), and DVFSAvgPerf
	// the average per-core performance scale (1.0 = always nominal).
	DVFSAvgVddV []float64
	DVFSAvgPerf float64

	// Epochs is the number of measured (post-warm-up) epochs.
	Epochs int

	// Robustness bookkeeping (all zero on healthy runs with no fault
	// schedule; see docs/ROBUSTNESS.md).
	//
	// FaultEvents counts fault-schedule events that fired during the run.
	FaultEvents int
	// SensorFallbacks counts sensor readings replaced by last-good or
	// neighbor-median values because the sensor was dropped out.
	SensorFallbacks int
	// TraceGapFrames counts (core, substep) frames frozen to last-good
	// activity because of an injected trace gap.
	TraceGapFrames int
	// ThermalOverrides counts domain-epochs the fail-safe thermal limit
	// (core.Config.ThermalEmergencyC) forced to all-on.
	ThermalOverrides int
	// WatchdogRetries counts thermal-solver substeps that had to be retried
	// at a reduced integration step.
	WatchdogRetries int
}
