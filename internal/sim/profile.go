package sim

import (
	"fmt"

	"thermogater/internal/core"
	"thermogater/internal/thermal"
)

// profileTheta runs the profiling pass the practical policies rely on
// (Section 6.3): a short execution under rotating regulator gating that
// exposes every regulator to on/off transitions, from which the
// per-regulator proportionality constants θᵢ of Eqn. 2 (ΔTᵢ = θᵢ·ΔPᵢ) are
// extracted by least squares. The pass uses its own activity stream and
// thermal model so the measured run is unaffected; θᵢ values depend only
// on the floorplan, matching the paper's observation that they "do not
// change if the floorplan is fixed".
func (r *Runner) profileTheta() (core.ThetaModel, error) {
	if r.cfg.ProfilingEpochs < 3 {
		return core.ThetaModel{}, fmt.Errorf("sim: profiling needs at least 3 epochs, got %d", r.cfg.ProfilingEpochs)
	}
	usim, err := r.cfg.newUarch(r.chip, r.cfg.Seed^0x50f11e)
	if err != nil {
		return core.ThetaModel{}, err
	}
	tm, err := thermal.NewModel(r.chip, r.cfg.Thermal)
	if err != nil {
		return core.ThetaModel{}, err
	}
	tm.Reset(r.cfg.Thermal.AmbientC + 20)

	nVR := len(r.chip.Regulators)
	blockTemps := make([]float64, len(r.chip.Blocks))
	blockPower := make([]float64, len(r.chip.Blocks))
	vrPower := make([]float64, nVR)
	avgActivity := make([]float64, len(r.chip.Blocks))

	lastLoss := make([]float64, nVR)
	lastTemp := make([]float64, nVR)
	dP := make([][]float64, nVR)
	dT := make([][]float64, nVR)
	for i := 0; i < nVR; i++ {
		// At most one (ΔP, ΔT) sample lands per profiling epoch.
		dP[i] = make([]float64, 0, r.cfg.ProfilingEpochs)
		dT[i] = make([]float64, 0, r.cfg.ProfilingEpochs)
	}

	for e := 0; e < r.cfg.ProfilingEpochs; e++ {
		// The profiling pass is cancellable but not checkpointable: it is
		// cheap to redo, so a canceled pass reports no resumable state.
		if r.ctxErr() != nil {
			return core.ThetaModel{}, &CancelError{Epoch: -1, Cause: cancelCause(r.runCtx)}
		}
		frames, err := r.epochFrames(usim)
		if err != nil {
			return core.ThetaModel{}, err
		}
		averageActivity(frames, avgActivity)
		tm.BlockTemps(blockTemps)
		if _, err := r.pm.Total(avgActivity, blockTemps, blockPower); err != nil {
			return core.ThetaModel{}, err
		}
		r.demand(blockPower)

		// Rotating gating: demand-sized count, rotating membership, so each
		// regulator sees frequent ΔP steps in both directions.
		for i := range vrPower {
			vrPower[i] = 0
		}
		for d := range r.chip.Domains {
			dom := &r.chip.Domains[d]
			n := len(dom.Regulators)
			count := r.nets[d].NOn(r.domainCurrent[d])
			loss := r.nets[d].PerVRLoss(r.domainCurrent[d], count)
			for k := 0; k < count; k++ {
				li := (e + k) % n
				vrPower[dom.Regulators[li]] = loss
			}
		}
		if err := tm.SetPower(blockPower, vrPower); err != nil {
			return core.ThetaModel{}, err
		}
		if err := tm.Step(r.epochS); err != nil {
			return core.ThetaModel{}, err
		}

		for i := 0; i < nVR; i++ {
			temp := tm.VRTemp(i)
			if e > 0 {
				deltaP := vrPower[i] - lastLoss[i]
				// Only power transitions carry information about θ; pure
				// substrate drift (ΔP = 0) would dilute the fit.
				if deltaP > 1e-4 || deltaP < -1e-4 {
					dP[i] = append(dP[i], deltaP)
					dT[i] = append(dT[i], temp-lastTemp[i])
				}
			}
			lastLoss[i] = vrPower[i]
			lastTemp[i] = temp
		}
	}

	for i := range dP {
		if len(dP[i]) < 2 {
			return core.ThetaModel{}, fmt.Errorf("sim: regulator %d saw only %d power transitions during profiling; lengthen ProfilingEpochs", i, len(dP[i]))
		}
	}
	return core.FitTheta(dP, dT)
}
