package sim

import (
	"math"
	"strings"
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/workload"
)

// fuzzSubsteps maps a fuzz byte onto the substep lengths that divide a 1ms
// epoch evenly; Config.Validate rejects the rest anyway.
var fuzzSubsteps = []float64{0.1, 0.2, 0.25, 0.5, 1.0}

// FuzzSimConfig runs short closed-loop simulations across the whole
// policy × benchmark × seed space. Any configuration Validate accepts must
// complete without error; with -tags tgsan every epoch additionally passes
// through the full sanitizer (energy balance, gating legality, temperature
// and droop bounds), making the run itself the oracle.
func FuzzSimConfig(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint64(1), uint8(4), uint8(1), uint8(0))
	f.Add(uint8(6), uint8(5), uint64(99), uint8(6), uint8(2), uint8(2))
	f.Add(uint8(7), uint8(13), uint64(7), uint8(3), uint8(0), uint8(4))
	f.Fuzz(func(t *testing.T, policy, bench uint8, seed uint64, durMS, warmup, substep uint8) {
		// Custom needs a user-supplied ranking function; fuzz the eight
		// built-in policies.
		p := core.PolicyKind(policy) % core.Custom
		suite := workload.Suite()
		b := suite[int(bench)%len(suite)]

		cfg := DefaultConfig(p, b)
		cfg.Seed = seed
		cfg.WarmupEpochs = int(warmup % 3)
		// The measured window must outlast the warm-up.
		cfg.DurationMS = cfg.WarmupEpochs + 2 + int(durMS%6)
		// The practical policies' θ-extraction needs enough rotating-gating
		// transitions; sweep short-but-plausible pass lengths.
		cfg.ProfilingEpochs = 30 + int(warmup%3)*60
		cfg.SubstepMS = fuzzSubsteps[int(substep)%len(fuzzSubsteps)]
		if err := cfg.Validate(); err != nil {
			t.Skipf("rejected by Validate: %v", err)
		}

		r, err := New(cfg)
		if err != nil {
			t.Fatalf("New on validated config: %v", err)
		}
		res, err := r.Run()
		if err != nil {
			// Profiling adequacy is data-dependent (the pass may legitimately
			// see too few power transitions on a short budget); a clean,
			// descriptive rejection is in contract. Anything else is a bug.
			if strings.Contains(err.Error(), "profiling") {
				t.Skipf("profiling pass rejected: %v", err)
			}
			t.Fatalf("Run: %v", err)
		}
		for _, m := range []struct {
			name string
			v    float64
		}{
			{"MaxTempC", res.MaxTempC},
			{"MaxGradientC", res.MaxGradientC},
			{"MaxNoisePct", res.MaxNoisePct},
			{"AvgPlossW", res.AvgPlossW},
			{"AvgEta", res.AvgEta},
			{"AvgChipPowerW", res.AvgChipPowerW},
			{"EmergencyFrac", res.EmergencyFrac},
		} {
			if math.IsNaN(m.v) || math.IsInf(m.v, 0) {
				t.Fatalf("%s = %v", m.name, m.v)
			}
		}
		if res.MaxTempC < cfg.Thermal.AmbientC {
			t.Fatalf("MaxTempC %v below ambient %v", res.MaxTempC, cfg.Thermal.AmbientC)
		}
	})
}
