// Package sim is the closed-loop experiment engine: it couples the
// activity simulator, the power model, the thermal RC network, the power
// delivery network, the regulator networks and the ThermoGater governor
// exactly as the paper's toolchain coupled SNIPER, McPAT, HotSpot and
// VoltSpot. Every 1ms epoch the governor draws a gating decision; within
// the epoch the engine advances at a finer substep, feeding temperature
// back into leakage (the HotSpot feedback loop of Section 5) and tracking
// the metrics the evaluation reports: maximum chip temperature, maximum
// thermal gradient, maximum voltage noise, conversion loss and efficiency,
// and time spent in voltage emergencies.
package sim

import (
	"errors"
	"fmt"
	"math"

	"thermogater/internal/core"
	"thermogater/internal/dvfs"
	"thermogater/internal/fault"
	"thermogater/internal/floorplan"
	"thermogater/internal/pdn"
	"thermogater/internal/telemetry"
	"thermogater/internal/thermal"
	"thermogater/internal/uarch"
	"thermogater/internal/vr"
	"thermogater/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// Policy is the gating policy under test.
	Policy core.PolicyKind
	// Benchmark is the workload profile.
	Benchmark workload.Profile
	// Mix, when non-empty, runs one independent benchmark per core
	// (multiprogrammed mode, Section 7); it must hold exactly one profile
	// per core and overrides Benchmark.
	Mix []workload.Profile
	// Seed makes the run reproducible.
	Seed uint64
	// EpochMS is the gating decision interval (1ms).
	EpochMS float64
	// SubstepMS is the intra-epoch simulation step (0.1ms).
	SubstepMS float64
	// Design is the component regulator design point (FIVR by default).
	Design vr.Design
	// Thermal and PDN are the package/grid models.
	Thermal thermal.Config
	PDN     pdn.Config
	// Governor configures ThermoGater; its Policy field is overridden by
	// Config.Policy.
	Governor core.Config
	// DurationMS overrides the benchmark ROI length when positive.
	DurationMS int
	// WarmupEpochs run before statistics collection starts.
	WarmupEpochs int
	// ProfilingEpochs sets the θ-extraction profiling pass length used by
	// the practical policies.
	ProfilingEpochs int
	// TraceEpochs enables the per-epoch trace (Fig. 6).
	TraceEpochs bool
	// TrackVR enables the per-substep temperature/state trace of one
	// regulator (Fig. 8); -1 disables.
	TrackVR int
	// HeatMapRes captures an nx×ny heat-map frame at the Tmax peak when
	// positive (Fig. 12).
	HeatMapRes int
	// TrackAging accumulates per-regulator wear (Black's-equation
	// electromigration model) and reports MTTF estimates in the result —
	// the Section 7 aging discussion made quantitative.
	TrackAging bool
	// SensorNoiseC adds zero-mean Gaussian error of this magnitude (°C,
	// one sigma) to every thermal sensor reading the practical policies
	// consume — a parametric-variation stressor for robustness studies.
	SensorNoiseC float64
	// DVFS, when non-nil, layers a per-core dynamic voltage/frequency
	// governor under ThermoGater: low-utilisation cores step down the
	// V/f ladder, shrinking their domains' current demand and hence the
	// number of regulators gating keeps active.
	DVFS *dvfs.Config
	// Telemetry, when non-nil, receives the run's instrumentation: a
	// per-epoch span tree over the six phases of the loop (uarch, power,
	// governor, vr, thermal, pdn), cumulative solver counters, and one
	// "epoch" record per epoch streamed to the registry's sinks. Nil (the
	// default) disables instrumentation at effectively zero cost.
	Telemetry *telemetry.Registry
	// Faults, when non-nil and non-empty, arms the deterministic fault
	// injector: scheduled regulator failures, sensor corruption and
	// activity-trace faults are applied at their scheduled epochs and the
	// governor stack degrades as documented in docs/ROBUSTNESS.md. Nil (the
	// default) leaves the healthy path untouched.
	Faults *fault.Schedule
	// Checkpoint configures periodic state snapshots for resumable runs;
	// the zero value disables checkpointing.
	Checkpoint CheckpointConfig
	// Workers selects the parallel epoch pipeline: the worker count the
	// runner fans out to for the per-frame power conversion, the
	// per-domain PDN noise evaluation and (on fine-grid models) the
	// thermal substep rows, plus a one-epoch-lookahead activity
	// producer. 0 or 1 run the identical pipeline inline on one
	// goroutine; results and streamed telemetry are byte-identical at
	// every worker count (see docs/PERFORMANCE.md).
	Workers int
}

// DefaultConfig returns the paper's operating point for the given policy
// and benchmark.
func DefaultConfig(policy core.PolicyKind, bench workload.Profile) Config {
	return Config{
		Policy:          policy,
		Benchmark:       bench,
		Seed:            1,
		EpochMS:         1.0,
		SubstepMS:       0.1,
		Design:          vr.FIVR(),
		Thermal:         thermal.DefaultConfig(),
		PDN:             pdn.DefaultConfig(),
		Governor:        core.DefaultConfig(policy),
		WarmupEpochs:    20,
		ProfilingEpochs: 150,
		TrackVR:         -1,
	}
}

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	if len(c.Mix) > 0 {
		if len(c.Mix) != floorplan.NumCores {
			return fmt.Errorf("sim: mix of %d profiles for %d cores", len(c.Mix), floorplan.NumCores)
		}
		for i, p := range c.Mix {
			if err := p.Validate(); err != nil {
				return fmt.Errorf("sim: mix core %d: %w", i, err)
			}
		}
	} else if err := c.Benchmark.Validate(); err != nil {
		return err
	}
	// !(v > 0) rather than v <= 0 so NaN — every comparison false — is
	// rejected here instead of silently poisoning the whole run.
	if !(c.EpochMS > 0) || !(c.SubstepMS > 0) ||
		math.IsInf(c.EpochMS, 1) || math.IsInf(c.SubstepMS, 1) {
		return errors.New("sim: epoch and substep must be positive and finite")
	}
	if c.SubstepMS > c.EpochMS {
		return errors.New("sim: substep longer than epoch")
	}
	steps := c.EpochMS / c.SubstepMS
	//lint:ignore floatcheck intentional integrality test: the epoch must divide into whole substeps
	if steps != float64(int(steps)) {
		return fmt.Errorf("sim: epoch %vms is not a whole number of %vms substeps", c.EpochMS, c.SubstepMS)
	}
	if c.DurationMS < 0 || c.WarmupEpochs < 0 || c.ProfilingEpochs < 0 {
		return errors.New("sim: negative duration/warmup/profiling")
	}
	if c.Workers < 0 {
		return errors.New("sim: negative worker count")
	}
	if !(c.SensorNoiseC >= 0) || math.IsInf(c.SensorNoiseC, 1) {
		return errors.New("sim: sensor noise must be non-negative and finite")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if err := c.Checkpoint.validate(); err != nil {
		return err
	}
	if c.DVFS != nil {
		if err := c.DVFS.Validate(); err != nil {
			return err
		}
	}
	if err := c.Thermal.Validate(); err != nil {
		return err
	}
	if err := c.PDN.Validate(); err != nil {
		return err
	}
	gov := c.Governor
	gov.Policy = c.Policy
	return gov.Validate()
}

// durationMS returns the effective run length.
func (c Config) durationMS() int {
	if c.DurationMS > 0 {
		return c.DurationMS
	}
	if len(c.Mix) > 0 {
		max := 0
		for _, p := range c.Mix {
			if p.DurationMS > max {
				max = p.DurationMS
			}
		}
		return max
	}
	return c.Benchmark.DurationMS
}

// benchmarkLabel names the run for reporting.
//
//perf:alloc label construction runs at run setup and checkpoint capture, never per epoch
func (c Config) benchmarkLabel() string {
	if len(c.Mix) == 0 {
		return c.Benchmark.Name
	}
	label := "mix("
	for i, p := range c.Mix {
		if i > 0 {
			label += ","
		}
		label += workload.ShortName(p.Name)
	}
	return label + ")"
}

// newUarch builds the activity simulator for this configuration.
func (c Config) newUarch(chip *floorplan.Chip, seed uint64) (*uarch.Simulator, error) {
	if len(c.Mix) > 0 {
		return uarch.NewMix(chip, c.Mix, seed)
	}
	return uarch.New(chip, c.Benchmark, seed)
}

// meanIntensity averages the workload intensity for thermal initialisation.
func (c Config) meanIntensity() (compute, memory float64) {
	n := float64(len(c.Mix))
	if n <= 0 {
		return c.Benchmark.MeanIntensity()
	}
	for _, p := range c.Mix {
		cc, mm := p.MeanIntensity()
		compute += cc
		memory += mm
	}
	return compute / n, memory / n
}
