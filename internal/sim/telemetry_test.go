package sim

import (
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/telemetry"
	"thermogater/internal/workload"
)

// captureSink keeps emitted records in memory for assertions.
type captureSink struct {
	recs []*telemetry.Record
}

func (c *captureSink) Emit(r *telemetry.Record) error { c.recs = append(c.recs, r); return nil }
func (c *captureSink) Flush() error                   { return nil }

func telemetryTestConfig(t *testing.T, policy core.PolicyKind) Config {
	t.Helper()
	bench, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(policy, bench)
	cfg.DurationMS = 60
	cfg.WarmupEpochs = 10
	return cfg
}

func TestRunnerEmitsSpanTreeWithAllPhases(t *testing.T) {
	reg := telemetry.NewRegistry()
	sink := &captureSink{}
	reg.AddSink(sink)
	cfg := telemetryTestConfig(t, core.OracVT)
	cfg.Telemetry = reg

	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}

	sn := reg.Snapshot()
	var epoch *telemetry.SpanSnapshot
	for i := range sn.Spans {
		if sn.Spans[i].Name == "epoch" {
			epoch = &sn.Spans[i]
		}
	}
	if epoch == nil {
		t.Fatalf("no merged 'epoch' span root; spans: %+v", sn.Spans)
	}
	if epoch.Count != 60 {
		t.Errorf("epoch span count = %d, want 60", epoch.Count)
	}
	for _, want := range PhaseNames {
		found := false
		for _, c := range epoch.Children {
			if c.Name == want {
				found = true
				if c.TotalNS <= 0 {
					t.Errorf("phase %q has zero duration", want)
				}
			}
		}
		if !found {
			t.Errorf("epoch span tree missing phase %q", want)
		}
	}

	// Phase durations are disjoint, so their sum must stay within the epoch
	// wall time and — since the phases cover essentially the whole loop —
	// account for most of it.
	var phaseSum int64
	for _, c := range epoch.Children {
		phaseSum += c.TotalNS
	}
	if phaseSum > epoch.TotalNS {
		t.Errorf("phase sum %dns exceeds epoch wall %dns", phaseSum, epoch.TotalNS)
	}
	if float64(phaseSum) < 0.75*float64(epoch.TotalNS) {
		t.Errorf("phases cover only %.1f%% of epoch wall time",
			100*float64(phaseSum)/float64(epoch.TotalNS))
	}
}

func TestRunnerCountersAndEpochRecords(t *testing.T) {
	reg := telemetry.NewRegistry()
	sink := &captureSink{}
	reg.AddSink(sink)
	cfg := telemetryTestConfig(t, core.OracVT)
	cfg.Telemetry = reg

	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("sim_epochs_total").Value(); got != 60 {
		t.Errorf("sim_epochs_total = %v, want 60", got)
	}
	if got := reg.Counter("sim_substeps_total").Value(); got != 600 {
		t.Errorf("sim_substeps_total = %v, want 600", got)
	}
	if got := reg.Counter("thermal_euler_substeps_total").Value(); got <= 0 {
		t.Errorf("thermal_euler_substeps_total = %v, want > 0", got)
	}
	if got := reg.Counter("pdn_solves_total", telemetry.L("kind", "steady")).Value(); got <= 0 {
		t.Errorf("steady pdn solves = %v, want > 0", got)
	}

	if len(sink.recs) != 60 {
		t.Fatalf("emitted %d records, want 60 (one per epoch)", len(sink.recs))
	}
	var substeps float64
	for i, rec := range sink.recs {
		if rec.Name != "epoch" {
			t.Fatalf("record %d named %q", i, rec.Name)
		}
		if v, ok := rec.Get("epoch"); !ok || v.(int) != i {
			t.Fatalf("record %d carries epoch %v", i, v)
		}
		for _, phase := range PhaseNames {
			if _, ok := rec.Get(phase + "_ns"); !ok {
				t.Fatalf("record %d missing %s_ns", i, phase)
			}
		}
		v, ok := rec.Get("thermal_substeps")
		if !ok {
			t.Fatalf("record %d missing thermal_substeps", i)
		}
		substeps += float64(v.(int64))
	}
	if got := reg.Counter("thermal_euler_substeps_total").Value(); got != substeps {
		t.Errorf("per-epoch substeps sum %v != counter %v", substeps, got)
	}

	// Run-level gauges are set once the result is final.
	if reg.Gauge("run_max_temp_c").Value() <= 0 {
		t.Error("run_max_temp_c gauge not set")
	}
}

// TestTelemetryDoesNotPerturbResults pins the zero-cost-when-disabled
// contract's stronger sibling: attaching telemetry must not change the
// simulation's physics or decisions at all.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	base, err := New(telemetryTestConfig(t, core.PracVT))
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := telemetryTestConfig(t, core.PracVT)
	cfg.Telemetry = telemetry.NewRegistry()
	instr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resOn, err := instr.Run()
	if err != nil {
		t.Fatal(err)
	}

	if resOff.MaxTempC != resOn.MaxTempC ||
		resOff.MaxGradientC != resOn.MaxGradientC ||
		resOff.MaxNoisePct != resOn.MaxNoisePct ||
		resOff.AvgPlossW != resOn.AvgPlossW ||
		resOff.EmergencyFrac != resOn.EmergencyFrac {
		t.Errorf("telemetry changed results: off=%+v on=%+v", resOff, resOn)
	}
}
