package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"thermogater/internal/aging"
	"thermogater/internal/core"
	"thermogater/internal/dvfs"
	"thermogater/internal/fault"
	"thermogater/internal/floorplan"
	"thermogater/internal/invariant"
	"thermogater/internal/par"
	"thermogater/internal/pdn"
	"thermogater/internal/power"
	"thermogater/internal/telemetry"
	"thermogater/internal/thermal"
	"thermogater/internal/uarch"
	"thermogater/internal/vr"
	"thermogater/internal/workload"
)

// Runner executes one configured simulation.
type Runner struct {
	cfg  Config
	chip *floorplan.Chip
	pm   *power.Model
	tm   *thermal.Model
	grid *pdn.Network
	nets []*vr.Network
	gov  *core.Governor

	stepsPerEpoch int
	epochS        float64
	substepS      float64

	// Scratch state reused across substeps.
	blockTemps    []float64
	vrTemps       []float64
	sensorVRTemps []float64
	blockPower    []float64
	blockCurrent  []float64
	vrPower       []float64
	vrCurrent     []float64
	wear          *aging.Tracker
	rng           *workload.RNG
	vf            *dvfs.Governor
	dynScale      []float64 // per block, DVFS dynamic-power multiplier
	leakScale     []float64 // per block, DVFS leakage multiplier
	domainCurrent []float64
	prevDomainCur []float64
	perVRLoss     []float64
	masks         [][]bool

	// Robustness machinery. flt is nil unless a fault schedule is armed;
	// wd wraps every transient thermal step with divergence detection;
	// resume, when non-nil, holds the checkpoint the next Run continues
	// from. The flt* caches are refreshed once per epoch by
	// refreshFaultDomains.
	flt          *fault.Injector
	wd           *thermal.Watchdog
	faultActGood []float64
	fltAvailN    []int
	fltMinFrac   []float64
	fltDomDirty  []bool
	resume       *Checkpoint

	// Instrumentation. ins caches the telemetry handles (all nil-safe when
	// telemetry is disabled); the solver counters below are plain ints so
	// counting costs one increment whether or not telemetry is attached.
	ins                *instruments
	pdnSteadySolves    int64
	pdnTransientSolves int64

	// Parallel epoch pipeline state, set up per runMeasured call. pool is
	// nil when Workers < 2; the nil pool runs the identical deferred
	// pipeline inline, so there is no separate sequential code path.
	// stepCurrents/stepMasks capture the per-substep current map and
	// gating masks so the PDN phase can be evaluated once per epoch,
	// fanned out by domain (each domain's grid caches are touched by
	// exactly one worker) and reduced serially in (substep, domain)
	// order. The per-domain solver tallies keep workers off the shared
	// counters.
	pool            *par.Pool
	stepCurrents    [][]float64
	stepMasks       [][][]bool
	pdnCells        [][]pdnCell
	pdnScratch      []pdn.DomainNoise
	pdnDomSteady    []int64
	pdnDomTransient []int64

	// Per-epoch hot-path scratch, sized once in New so the steady-state
	// epoch loop (stepEpoch, produceEpoch) allocates nothing — the
	// contract the allocfree lint pass checks statically and
	// alloc_test.go checks dynamically.
	avgActivity     []float64
	avgBlockPower   []float64
	avgBlockCurrent []float64
	avgDomainCur    []float64
	epochVRLoss     []float64
	epochDomEmerg   []bool
	frameCur        [][]float64      // per-substep oracle current maps
	frameErrs       []error          // per-substep fan-out errors
	frameBufs       [2][]uarch.Frame // producer's alternating epoch buffers
	frameBuf        int              // buffer produceEpoch fills next
	curFrames       []uarch.Frame    // frames of the epoch being decided
	emgMasks        [][]bool         // domainEmergency's tentative masks
	emgNoise        []pdn.DomainNoise
	govIn           core.Inputs      // reused governor inputs, closures bound once
	epochSpan       *telemetry.Span  // recycled per-epoch span tree
	frameCurFn      func(lo, hi int) // prebuilt oracle-current fan-out worker
	pdnDomFn        func(lo, hi int) // prebuilt deferred-PDN fan-out worker

	// Per-run epoch-loop state, assembled by beginRun, advanced one
	// epoch per stepEpoch call, aggregated by finishRun.
	runMS          *MeasureState
	runStart       int
	runNEpochs     int
	runSampleEvery int
	runNextFrames  func(e int) frameBatch

	// runCtx is the cancellation context of the current run (nil when the
	// run was started without one — see ctxErr). It is set before the
	// producer goroutine spawns and only read afterwards, by both the
	// producer (to capture a resumable uarch snapshot once cancellation is
	// requested) and the epoch loop (to stop at the next boundary that has
	// one).
	runCtx context.Context
}

// pdnCell is one (substep, domain) result of the deferred PDN phase: the
// fan-out writes cells, the serial reduction folds them into the epoch
// accumulators in the same order the former per-substep loop did.
type pdnCell struct {
	noise      float64 // max of the steady MaxPct and any burst peak
	maxBlock   int     // global block ID of the steady-noise maximum
	burstDwell float64 // seconds of burst excursions above threshold
	steadyEmg  bool    // steady IR drop crossed the emergency threshold
	burstEmg   bool    // a burst peak crossed it while the steady drop did not
	dead       bool    // every regulator stuck off; standing emergency
	err        error
}

// frameBatch is one epoch of activity frames handed from the producer to
// the physics loop, plus the uarch snapshot when the epoch ends at a
// checkpoint boundary. panicked carries a producer panic so it can be
// re-raised on the goroutine that owns the run.
type frameBatch struct {
	frames   []uarch.Frame
	state    *uarch.State
	err      error
	panicked any
}

// New builds a runner. The floorplan, power model, thermal network, PDN,
// per-domain regulator networks and governor are all constructed from the
// configuration.
func New(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	chip, err := floorplan.BuildPOWER8()
	if err != nil {
		return nil, err
	}
	pm, err := power.NewModel(chip)
	if err != nil {
		return nil, err
	}
	tm, err := thermal.NewModel(chip, cfg.Thermal)
	if err != nil {
		return nil, err
	}
	grid, err := pdn.NewNetwork(chip, cfg.PDN)
	if err != nil {
		return nil, err
	}
	nets := make([]*vr.Network, len(chip.Domains))
	for i, d := range chip.Domains {
		nw, err := vr.NewNetwork(cfg.Design, len(d.Regulators))
		if err != nil {
			return nil, err
		}
		nets[i] = nw
	}
	gcfg := cfg.Governor
	gcfg.Policy = cfg.Policy
	gcfg.EpochMS = cfg.EpochMS
	gcfg.Seed ^= cfg.Seed
	gov, err := core.NewGovernor(chip, nets, grid, gcfg)
	if err != nil {
		return nil, err
	}
	// The burst→domain mapping below relies on core domains being the
	// first eight domain IDs in core order.
	for c := 0; c < floorplan.NumCores; c++ {
		if chip.Domains[c].Kind != floorplan.CoreDomain {
			return nil, fmt.Errorf("sim: domain %d is not core domain %d", c, c)
		}
	}
	r := &Runner{
		cfg:           cfg,
		chip:          chip,
		pm:            pm,
		tm:            tm,
		grid:          grid,
		nets:          nets,
		gov:           gov,
		stepsPerEpoch: int(math.Round(cfg.EpochMS / cfg.SubstepMS)),
		epochS:        cfg.EpochMS / 1000,
		substepS:      cfg.SubstepMS / 1000,
		blockTemps:    make([]float64, len(chip.Blocks)),
		vrTemps:       make([]float64, len(chip.Regulators)),
		sensorVRTemps: make([]float64, len(chip.Regulators)),
		blockPower:    make([]float64, len(chip.Blocks)),
		blockCurrent:  make([]float64, len(chip.Blocks)),
		vrPower:       make([]float64, len(chip.Regulators)),
		vrCurrent:     make([]float64, len(chip.Regulators)),
		domainCurrent: make([]float64, len(chip.Domains)),
		prevDomainCur: make([]float64, len(chip.Domains)),
		perVRLoss:     make([]float64, len(chip.Regulators)),
		rng:           workload.NewRNG(cfg.Seed ^ 0x53e2),
		ins:           newInstruments(cfg.Telemetry),
	}
	r.masks = make([][]bool, len(chip.Domains))
	for d := range r.masks {
		r.masks[d] = make([]bool, len(chip.Domains[d].Regulators))
	}

	// Per-epoch scratch and the deferred-PDN capture buffers: everything
	// the epoch loop touches is sized here, once, so stepEpoch runs
	// allocation-free in steady state.
	r.avgActivity = make([]float64, len(chip.Blocks))
	r.avgBlockPower = make([]float64, len(chip.Blocks))
	r.avgBlockCurrent = make([]float64, len(chip.Blocks))
	r.avgDomainCur = make([]float64, len(chip.Domains))
	r.epochVRLoss = make([]float64, len(chip.Regulators))
	r.epochDomEmerg = make([]bool, len(chip.Domains))
	r.frameCur = make([][]float64, r.stepsPerEpoch)
	for s := range r.frameCur {
		r.frameCur[s] = make([]float64, len(chip.Blocks))
	}
	r.frameErrs = make([]error, r.stepsPerEpoch)
	for b := range r.frameBufs {
		// The frames' interior slices (Activity, IPC, Bursts) grow to
		// their steady sizes during the first two epochs and are
		// recycled by uarch.StepInto from then on.
		r.frameBufs[b] = make([]uarch.Frame, r.stepsPerEpoch)
	}
	r.emgMasks = make([][]bool, len(chip.Domains))
	for d := range r.emgMasks {
		r.emgMasks[d] = make([]bool, len(chip.Domains[d].Regulators))
	}
	r.emgNoise = make([]pdn.DomainNoise, len(chip.Domains))
	r.stepCurrents = make([][]float64, r.stepsPerEpoch)
	r.stepMasks = make([][][]bool, r.stepsPerEpoch)
	for s := range r.stepCurrents {
		r.stepCurrents[s] = make([]float64, len(chip.Blocks))
		r.stepMasks[s] = make([][]bool, len(chip.Domains))
		for d := range r.stepMasks[s] {
			r.stepMasks[s][d] = make([]bool, len(chip.Domains[d].Regulators))
		}
	}
	r.pdnCells = make([][]pdnCell, len(chip.Domains))
	for d := range r.pdnCells {
		r.pdnCells[d] = make([]pdnCell, r.stepsPerEpoch)
	}
	r.pdnScratch = make([]pdn.DomainNoise, len(chip.Domains))
	r.pdnDomSteady = make([]int64, len(chip.Domains))
	r.pdnDomTransient = make([]int64, len(chip.Domains))
	// The governor inputs are reused every epoch: the slice fields alias
	// the runner's scratch (refreshed in place each epoch) and the two
	// callbacks are bound once so the decision phase allocates nothing.
	r.govIn = core.Inputs{
		PrevDomainCurrent:   r.prevDomainCur,
		SensorVRTemps:       r.sensorVRTemps,
		VRTemps:             r.vrTemps,
		FutureDomainCurrent: r.avgDomainCur,
		FutureBlockCurrent:  r.avgBlockCurrent,
		PredictVRTempOn:     r.predictVRTempOn,
	}
	r.govIn.DomainEmergency = func(d, count int, ranking []int) bool {
		return r.domainEmergency(d, count, ranking, r.frameCur, r.curFrames)
	}
	// Prebuilt fan-out workers: a closure created inside the epoch loop
	// would allocate per epoch, so both workers are bound once here and
	// read the current epoch's frames through r.curFrames.
	r.frameCurFn = func(lo, hi int) {
		for s := lo; s < hi; s++ {
			bp, ferr := r.blockPowerScaled(r.curFrames[s].Activity, r.blockTemps, r.frameCur[s])
			if ferr != nil {
				r.frameErrs[s] = ferr
				continue
			}
			for i, p := range bp {
				bp[i] = power.WattsToAmps(p)
			}
		}
	}
	r.pdnDomFn = func(lo, hi int) {
		for d := lo; d < hi; d++ {
			r.pdnDomain(d, r.curFrames)
		}
	}
	if cfg.TrackAging {
		tr, err := aging.NewTracker(len(chip.Regulators), aging.DefaultModel())
		if err != nil {
			return nil, err
		}
		r.wear = tr
	}
	r.dynScale = make([]float64, len(chip.Blocks))
	r.leakScale = make([]float64, len(chip.Blocks))
	for i := range r.dynScale {
		r.dynScale[i] = 1
		r.leakScale[i] = 1
	}
	if cfg.DVFS != nil {
		vf, err := dvfs.NewGovernor(floorplan.NumCores, *cfg.DVFS)
		if err != nil {
			return nil, err
		}
		r.vf = vf
	}
	r.wd = thermal.NewWatchdog(tm)
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		groups := make([][]int, len(chip.Domains))
		for d := range chip.Domains {
			groups[d] = append([]int(nil), chip.Domains[d].Regulators...)
		}
		inj, err := fault.New(cfg.Faults, fault.Topology{
			NumVRs:       len(chip.Regulators),
			NumCores:     floorplan.NumCores,
			SensorGroups: groups,
		}, cfg.Seed^0x9f4a)
		if err != nil {
			return nil, err
		}
		r.flt = inj
		r.faultActGood = make([]float64, len(chip.Blocks))
		r.fltAvailN = make([]int, len(chip.Domains))
		r.fltMinFrac = make([]float64, len(chip.Domains))
		r.fltDomDirty = make([]bool, len(chip.Domains))
		r.refreshFaultDomains()
	}
	return r, nil
}

// blockPowerScaled computes total per-block power with the current DVFS
// scaling applied: dynamic power scales with f·V², leakage with V.
func (r *Runner) blockPowerScaled(activity, temps, dst []float64) ([]float64, error) {
	dyn, err := r.pm.Dynamic(activity, dst)
	if err != nil {
		return nil, err
	}
	if len(temps) != len(dyn) {
		return nil, fmt.Errorf("sim: %d temperatures for %d blocks", len(temps), len(dyn))
	}
	for i := range dyn {
		dyn[i] = dyn[i]*r.dynScale[i] + r.pm.LeakageAt(i, temps[i])*r.leakScale[i]
	}
	return dyn, nil
}

// updateDVFS feeds per-core utilisation into the V/f governor and refreshes
// the per-block scaling factors.
func (r *Runner) updateDVFS(avgActivity []float64) error {
	if r.vf == nil {
		return nil
	}
	cfg := r.vf.Config()
	for c := 0; c < floorplan.NumCores; c++ {
		var util float64
		var n int
		for _, bid := range r.chip.Domains[c].Blocks {
			if r.chip.Blocks[bid].Kind == floorplan.Logic {
				util += avgActivity[bid]
				n++
			}
		}
		if n > 0 {
			util /= float64(n)
		}
		if _, err := r.vf.Observe(c, util); err != nil {
			return err
		}
		p := r.vf.Point(c)
		ds := cfg.DynamicScale(p)
		ls := cfg.LeakageScale(p)
		for _, bid := range r.chip.Domains[c].Blocks {
			r.dynScale[bid] = ds
			r.leakScale[bid] = ls
		}
	}
	return nil
}

// Chip exposes the floorplan (useful to callers labelling results).
func (r *Runner) Chip() *floorplan.Chip { return r.chip }

// epochFrames advances the activity simulator by one epoch and returns its
// substep frames. The measured run uses produceEpoch's recycled buffers
// instead; this allocating variant serves the θ-profiling pass, which
// runs once before measurement.
func (r *Runner) epochFrames(sim *uarch.Simulator) ([]uarch.Frame, error) {
	frames := make([]uarch.Frame, r.stepsPerEpoch)
	for s := range frames {
		f, err := sim.Step(r.cfg.SubstepMS)
		if err != nil {
			return nil, err
		}
		frames[s] = f
	}
	return frames, nil
}

// produceEpoch advances the activity simulator one epoch, filling the
// next of the runner's two recycled frame buffers in place. Two buffers
// suffice at any worker count: the producer→consumer handoff is an
// unbuffered channel, so by the time the send of batch N+1 completes the
// consumer has finished epoch N — the buffer being refilled is never the
// one being read. Everything the physics loop retains across epochs
// (stepCurrents, the worst-noise snapshot, uarch.State) is copied out of
// the frames, never aliased.
func (r *Runner) produceEpoch(usim *uarch.Simulator) ([]uarch.Frame, error) {
	frames := r.frameBufs[r.frameBuf]
	r.frameBuf = 1 - r.frameBuf
	for s := range frames {
		if err := usim.StepInto(r.cfg.SubstepMS, &frames[s]); err != nil {
			return nil, err
		}
	}
	return frames, nil
}

// produceBatch wraps one produceEpoch call into the handoff envelope,
// capturing the uarch snapshot on checkpoint epochs.
func (r *Runner) produceBatch(usim *uarch.Simulator, e int) frameBatch {
	frames, ferr := r.produceEpoch(usim)
	b := frameBatch{frames: frames, err: ferr}
	if ferr == nil && (r.wantCheckpoint(e) || r.ctxErr() != nil) {
		// Once cancellation is requested, every produced epoch carries a
		// snapshot so the consumer can stop at its next boundary with a
		// complete resumable state (checkpoint-on-cancel).
		//perf:alloc uarch snapshot on checkpoint epochs and after cancellation only
		b.state = usim.State()
	}
	return b
}

// wantCheckpoint reports whether epoch e ends at a checkpoint boundary.
func (r *Runner) wantCheckpoint(e int) bool {
	return r.cfg.Checkpoint.EveryEpochs > 0 && (e+1)%r.cfg.Checkpoint.EveryEpochs == 0
}

// averageActivity fills dst with the epoch-average per-block activity.
func averageActivity(frames []uarch.Frame, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for _, f := range frames {
		for i, a := range f.Activity {
			dst[i] += a
		}
	}
	inv := 1 / float64(len(frames))
	for i := range dst {
		dst[i] *= inv
	}
}

// demand computes per-domain current and per-block current for the given
// block power map.
func (r *Runner) demand(blockPower []float64) {
	for i, p := range blockPower {
		r.blockCurrent[i] = power.WattsToAmps(p)
	}
	for d := range r.chip.Domains {
		var sum float64
		for _, bid := range r.chip.Domains[d].Blocks {
			sum += r.blockCurrent[bid]
		}
		r.domainCurrent[d] = sum
	}
}

// predictVRTempOn is the oracle's thermal predictor: the regulator node is
// a first-order system toward (host block temperature + P/G), so its
// temperature at the next decision point has a closed form.
func (r *Runner) predictVRTempOn(vrID int, plossW float64) float64 {
	cfg := r.cfg.Thermal
	host := r.chip.Regulators[vrID].NearestBlock
	tHost := r.tm.BlockTemp(host)
	target := tHost + plossW/cfg.GRegulatorWPerK
	tau := cfg.RegulatorCapJPerK / cfg.GRegulatorWPerK
	decay := math.Exp(-r.epochS / tau)
	return target + (r.tm.VRTemp(vrID)-target)*decay
}

// buildMask fills the domain's mask with the first count entries of the
// ranking.
func (r *Runner) buildMask(d, count int, ranking []int) []bool {
	mask := r.masks[d]
	for i := range mask {
		mask[i] = false
	}
	for i := 0; i < count && i < len(ranking); i++ {
		mask[ranking[i]] = true
	}
	return mask
}

// domainEmergency is the ground-truth emergency oracle for the upcoming
// epoch, evaluated at substep resolution: the steady IR drop under the
// tentative selection for each substep's true current map, plus each
// substep's actual burst peaks. Substep resolution matters: a prediction
// from epoch-average currents misses the within-epoch activity peaks that
// cause most emergencies, and the paper's OracVT converges to the all-on
// noise profile precisely because its oracle prediction is perfect.
func (r *Runner) domainEmergency(d, count int, ranking []int, frameCurrents [][]float64, frames []uarch.Frame) bool {
	if count < 1 {
		return false
	}
	mask := r.emgMasks[d]
	for i := range mask {
		mask[i] = false
	}
	for i := 0; i < count && i < len(ranking); i++ {
		mask[ranking[i]] = true
	}
	for s, f := range frames {
		cur := frameCurrents[s]
		r.pdnSteadySolves++
		dn := &r.emgNoise[d]
		if err := r.grid.SteadyNoiseInto(d, cur, mask, dn); err != nil {
			return false
		}
		if dn.Emergency() {
			return true
		}
		for _, b := range f.Bursts {
			if b.Core != r.burstDomainCore(d) {
				continue
			}
			bi, surge := r.burstTarget(d, b, cur)
			r.pdnTransientSolves++
			peak := r.grid.BurstPeakPct(d, bi, dn.PerBlockPct[bi], surge, mask, b.Cycles, uarch.ClockGHz)
			if peak > pdn.EmergencyThresholdPct {
				return true
			}
		}
	}
	return false
}

// pdnDomain evaluates one domain's voltage noise for every substep of the
// epoch, writing r.pdnCells[d]. It reads only the per-substep captures
// (stepCurrents, stepMasks) and domain-local state (the grid's per-domain
// resistance cache, r.pdnScratch[d], the per-domain solve tallies), so
// concurrent calls for distinct domains never share mutable state — the
// disjoint-writes half of the par.Pool determinism contract.
func (r *Runner) pdnDomain(d int, frames []uarch.Frame) {
	cells := r.pdnCells[d]
	for s, f := range frames {
		c := &cells[s]
		*c = pdnCell{maxBlock: -1}
		if r.flt != nil && r.fltAvailN[d] == 0 {
			// Dead domain (every regulator stuck off): there is no active
			// regulator to solve the grid against; the blocks are browned
			// out, which counts as a standing emergency. The demand
			// violation was recorded when the decision was applied.
			c.dead = true
			continue
		}
		cur := r.stepCurrents[s]
		mask := r.stepMasks[s][d]
		dn := &r.pdnScratch[d]
		r.pdnDomSteady[d]++
		if err := r.grid.SteadyNoiseInto(d, cur, mask, dn); err != nil {
			c.err = err
			continue
		}
		c.noise = dn.MaxPct
		c.maxBlock = dn.MaxBlock
		c.steadyEmg = dn.Emergency()
		// Burst peaks within this substep.
		t0 := f.TimeMS
		t1 := f.TimeMS + f.DtMS
		for _, b := range f.Bursts {
			if b.Core != r.burstDomainCore(d) || b.TimeMS < t0 || b.TimeMS >= t1 {
				continue
			}
			bi, surge := r.burstTarget(d, b, cur)
			r.pdnDomTransient[d]++
			peak := r.grid.BurstPeakPct(d, bi, dn.PerBlockPct[bi], surge, mask, b.Cycles, uarch.ClockGHz)
			if peak > c.noise {
				c.noise = peak
			}
			if peak > pdn.EmergencyThresholdPct && !c.steadyEmg {
				c.burstDwell += float64(b.Cycles) / (uarch.ClockGHz * 1e9)
				c.burstEmg = true
			}
		}
	}
}

// pdnEpoch is the deferred PDN phase: the noise of every (substep, domain)
// pair of the just-executed epoch, fanned out by domain and reduced
// serially in (substep, domain) order — exactly the order the former
// per-substep loop visited, so every accumulator, tie-break and sampling
// decision lands on the same values at any worker count. Deferring is
// legal because nothing inside the epoch reads the PDN's outputs: the
// masks and currents are captured per substep, and the results feed only
// the measurement accumulators and the end-of-epoch governor feedback. A
// substep counts toward emergency time once, no matter how many domains
// cross the threshold; short burst excursions add their own (cycle-scale)
// dwell.
func (r *Runner) pdnEpoch(frames []uarch.Frame, measuring bool, sampleEvery, msBase int, epochDomEmerg []bool, epochMaxNoise *float64, ms *MeasureState, res *Result) error {
	nd := len(r.chip.Domains)
	r.pool.For(nd, r.pdnDomFn)
	for d := 0; d < nd; d++ {
		r.pdnSteadySolves += r.pdnDomSteady[d]
		r.pdnTransientSolves += r.pdnDomTransient[d]
		r.pdnDomSteady[d] = 0
		r.pdnDomTransient[d] = 0
	}
	for s := range frames {
		substepEmergency := false
		var burstDwell float64
		var substepNoise float64
		for d := 0; d < nd; d++ {
			c := &r.pdnCells[d][s]
			if c.err != nil {
				return c.err
			}
			if c.dead {
				substepEmergency = true
				epochDomEmerg[d] = true
				continue
			}
			if c.steadyEmg {
				substepEmergency = true
				epochDomEmerg[d] = true
			}
			if c.burstEmg {
				epochDomEmerg[d] = true
			}
			burstDwell += c.burstDwell
			if c.noise > *epochMaxNoise {
				*epochMaxNoise = c.noise
			}
			if c.noise > substepNoise {
				substepNoise = c.noise
			}
			if measuring && c.noise > ms.WorstNoise {
				ms.WorstNoise = c.noise
				res.WorstNoise = r.snapshotWorstNoise(d, c.maxBlock, r.stepCurrents[s], r.stepMasks[s][d], frames[s], frames)
			}
		}
		if measuring {
			// msBase+s reconstructs what MeasuredSteps read at substep s:
			// it increments once per measured substep, and measuring is
			// constant within an epoch.
			if (msBase+s)%sampleEvery == 0 && substepNoise > ms.SampledWorst {
				ms.SampledWorst = substepNoise
			}
			if substepEmergency {
				ms.EmergencyTime += r.substepS
			} else if burstDwell > 0 {
				if burstDwell > r.substepS {
					burstDwell = r.substepS
				}
				ms.EmergencyTime += burstDwell
			}
		}
	}
	return nil
}

// burstDomainCore maps a core-domain ID to its core index (-1 for L3
// domains, which see no core bursts).
func (r *Runner) burstDomainCore(d int) int {
	if r.chip.Domains[d].Kind == floorplan.CoreDomain {
		return d
	}
	return -1
}

// burstTarget picks the block a core burst lands on — the domain block
// currently drawing the most current — and the surge in amps.
func (r *Runner) burstTarget(d int, b uarch.BurstEvent, blockCurrent []float64) (bi int, surgeAmps float64) {
	dom := &r.chip.Domains[d]
	best, bestI := 0, -1.0
	for i, bid := range dom.Blocks {
		if blockCurrent[bid] > bestI {
			bestI = blockCurrent[bid]
			best = i
		}
	}
	if bestI < 0 {
		bestI = 0
	}
	return best, b.Amp * bestI
}

// legalCount returns the minimal active count that can legally carry the
// demand (per-phase current limit), reporting an overload when even the
// full network cannot.
func (r *Runner) legalCount(d int, demandA float64) (int, bool) {
	n := r.nets[d].Size()
	imax := r.nets[d].Design().IMax
	if demandA <= 0 {
		return 1, false
	}
	if !(imax > 0) {
		// A regulator with no current rating can never meet positive
		// demand; everything on, flagged as overload.
		return n, true
	}
	need := int(math.Ceil(demandA / imax))
	if need < 1 {
		need = 1
	}
	if need > n {
		return n, true
	}
	return need, false
}

// Run executes the configured simulation and aggregates the results. For
// the practical policies it first runs the θ-extraction profiling pass,
// unless a theta model was installed already. It is equivalent to
// RunContext with a background (never-canceled) context, which keeps every
// pre-existing caller compiling and behaving unchanged.
func (r *Runner) Run() (*Result, error) {
	return r.RunContext(context.Background())
}

// RunContext executes the configured simulation under ctx. Cancellation
// is epoch-granular: the loop polls the context once per epoch and stops
// at the next epoch boundary where the activity producer has captured a
// uarch snapshot, returning a *CancelError whose Checkpoint resumes the
// run byte-identically (see cancel.go). The poll is a single interface
// call, so the steady-state epoch loop stays allocation-free.
func (r *Runner) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.runCtx = ctx
	if ctx.Err() != nil {
		// Already canceled: nothing ran, nothing to resume.
		return nil, &CancelError{Epoch: -1, Cause: cancelCause(ctx)}
	}
	if (r.cfg.Policy == core.PracT || r.cfg.Policy == core.PracVT) && len(r.gov.Theta().Theta) == 0 {
		theta, err := r.profileTheta()
		if err != nil {
			return nil, fmt.Errorf("sim: profiling pass: %w", err)
		}
		if err := r.gov.SetTheta(theta); err != nil {
			return nil, err
		}
	}
	return r.runMeasured()
}

// runMeasured executes the measured run with whatever predictor state the
// governor already holds: beginRun assembles the per-run state (pool,
// producer, measurement accumulators), stepEpoch advances one epoch at a
// time, and finishRun folds the accumulators into the Result.
func (r *Runner) runMeasured() (*Result, error) {
	if invariant.Enabled {
		defer invariant.ResetCtx()
	}
	cleanup, err := r.beginRun()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	for e := r.runStart; e < r.runNEpochs; e++ {
		if err := r.stepEpoch(e); err != nil {
			return nil, err
		}
	}
	return r.finishRun()
}

// beginRun assembles the per-run state: the worker pool, the uarch
// producer (its own goroutine when a pool is attached), the measurement
// accumulators — restored from a checkpoint when resuming — and the
// initial thermal field. The returned cleanup tears the pipeline down;
// runMeasured defers it so it also runs when the epoch loop fails.
func (r *Runner) beginRun() (func(), error) {
	resume := r.resume
	r.resume = nil

	// The worker pool lives for exactly one measured run; the nil pool
	// (Workers < 2) runs every fan-out inline. The fine-grid thermal
	// model row-partitions its substeps on the same pool; the compact
	// model ignores it below its node threshold.
	pool := par.New(r.cfg.Workers)
	r.pool = pool
	r.tm.SetPool(pool)
	var quit chan struct{}
	cleanup := func() {
		if quit != nil {
			close(quit) // unblocks the producer before the pool goes away
		}
		r.tm.SetPool(nil)
		r.pool = nil
		pool.Close()
		r.runNextFrames = nil
	}
	fail := func(err error) (func(), error) {
		cleanup()
		return nil, err
	}

	usim, err := r.cfg.newUarch(r.chip, r.cfg.Seed)
	if err != nil {
		return fail(err)
	}

	var ms *MeasureState
	r.runStart = 0
	if resume != nil {
		if err := usim.Restore(resume.Uarch); err != nil {
			return fail(err)
		}
		// Clone so the checkpoint stays reusable: the same snapshot can be
		// restored into several runners without them sharing result buffers.
		m := resume.Measure.clone()
		ms = &m
		r.runStart = resume.Epoch + 1
	} else {
		ms = &MeasureState{
			WorstNoise:      -1,
			SampledWorst:    -1,
			HeatMapDeadline: -1, // epoch index whose end should capture the map
			Res: &Result{
				Policy:       r.cfg.Policy.String(),
				Benchmark:    r.cfg.benchmarkLabel(),
				NoiseModeled: r.cfg.Policy != core.OffChip,
				VROnFrac:     make([]float64, len(r.chip.Regulators)),
				ThetaMeanR2:  r.gov.Theta().MeanR2(),
			},
		}
		if r.vf != nil {
			ms.DvfsVddSum = make([]float64, floorplan.NumCores)
		}
		// Initialise the thermal state: steady state for the first epoch's
		// power with everything on (a neutral, reproducible starting point).
		if err := r.initThermal(); err != nil {
			return fail(err)
		}
		r.tm.VRTemps(r.vrTemps)
		copy(r.sensorVRTemps, r.vrTemps)
	}
	r.runMS = ms
	res := ms.Res

	totalEpochs := r.cfg.durationMS()
	if totalEpochs < 1 {
		return fail(errors.New("sim: empty run"))
	}
	nEpochs := int(float64(totalEpochs) / r.cfg.EpochMS)
	if nEpochs < 1 {
		nEpochs = 1
	}
	r.runNEpochs = nEpochs
	// The paper's VoltSpot methodology: 200 equally distant noise samples
	// across the measured run.
	sampleEvery := ((nEpochs - r.cfg.WarmupEpochs) * r.stepsPerEpoch) / 200
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	r.runSampleEvery = sampleEvery

	// Trace capacities up front so the per-epoch appends never grow in
	// steady state. A resumed run's clone may carry capacity == length
	// and regrow once; that is the annotated exception in stepEpoch.
	if r.cfg.TraceEpochs && res.Trace == nil {
		res.Trace = make([]EpochStats, 0, nEpochs)
	}
	if r.cfg.TrackVR >= 0 && r.cfg.TrackVR < len(r.chip.Regulators) && res.VRTrace == nil {
		res.VRTrace = make([]VRSample, 0, (nEpochs-r.runStart)*r.stepsPerEpoch)
	}
	r.epochSpan = nil
	r.frameBuf = 0

	// Activity production. With a pool the uarch simulator advances on
	// its own goroutine, one epoch ahead of the physics; without one the
	// same accessor computes inline. Either way the producer is the sole
	// owner of usim from here on, and it captures the uarch snapshot for
	// exactly the epochs the checkpoint sink will want — the state right
	// after an epoch's frames is what the sequential loop would have
	// snapshotted at that epoch's end.
	r.runNextFrames = func(e int) frameBatch { return r.produceBatch(usim, e) }
	if pool != nil {
		start := r.runStart
		frameCh := make(chan frameBatch)
		quit = make(chan struct{})
		//par:disjoint the goroutine solely owns usim and the frame buffers; each batch's ownership transfers to the consumer through the unbuffered frameCh handoff
		go func() {
			defer func() {
				if p := recover(); p != nil {
					//par:ordered sole producer handing the consumer its last batch; quit only fires on teardown
					select {
					case frameCh <- frameBatch{panicked: p}:
					case <-quit:
					}
				}
			}()
			for e := start; e < nEpochs; e++ {
				//par:disjoint the producer goroutine is the sole owner of usim and the frame buffers; batches transfer ownership through frameCh
				b := r.produceBatch(usim, e)
				//par:ordered unbuffered 1:1 producer->consumer handoff; epochs arrive in loop order
				select {
				case frameCh <- b:
				case <-quit:
					return
				}
				if b.err != nil {
					return
				}
			}
		}()
		r.runNextFrames = func(int) frameBatch { return <-frameCh }
	}

	r.ins.syncBaselines(r)
	return cleanup, nil
}

// stepEpoch advances the measured run by one epoch: frames from the
// producer, the epoch-average demand, the governor decision, the substep
// physics loop, the deferred PDN phase, epoch bookkeeping, telemetry and
// checkpointing. It is the hot root of the tgperf lint passes: in steady
// state — buffers sized, caches warm, telemetry detached — one call
// performs no heap allocation at any worker count, and
// internal/sim/alloc_test.go holds that line dynamically.
func (r *Runner) stepEpoch(e int) error {
	ms := r.runMS
	res := ms.Res
	if r.flt != nil {
		r.advanceFaults(e, res)
	}
	// The per-epoch span tree: the six phases of PhaseNames under one
	// "epoch" root; End() merges each interval into the registry's
	// cumulative tree. The tree is allocated on the run's first epoch and
	// recycled ever after — Restart zeroes it so End merges exactly one
	// epoch — and on nil telemetry every span call no-ops for free.
	epSpan := r.epochSpan
	if epSpan != nil {
		epSpan.Restart()
	} else {
		//perf:alloc one span tree per run; every later epoch recycles it
		epSpan = r.cfg.Telemetry.StartSpan("epoch")
		r.epochSpan = epSpan
	}
	phase := epSpan.StartChild("uarch")
	batch := r.runNextFrames(e)
	phase.End()
	if batch.panicked != nil {
		panic(fmt.Sprintf("sim: uarch producer panic: %v", batch.panicked))
	}
	if batch.err != nil {
		return batch.err
	}
	frames := batch.frames
	r.curFrames = frames
	if r.flt != nil {
		r.applyActivityFaults(frames, res)
	}
	measuring := e >= r.cfg.WarmupEpochs

	// Epoch-average demand (oracle view of the upcoming interval),
	// using leakage at current temperatures.
	phase = epSpan.StartChild("power")
	averageActivity(frames, r.avgActivity)
	if err := r.updateDVFS(r.avgActivity); err != nil {
		return err
	}
	r.tm.BlockTemps(r.blockTemps)
	if _, err := r.blockPowerScaled(r.avgActivity, r.blockTemps, r.avgBlockPower); err != nil {
		return err
	}
	r.demand(r.avgBlockPower)
	copy(r.avgBlockCurrent, r.blockCurrent)
	copy(r.avgDomainCur, r.domainCurrent)

	// Per-substep current maps for the emergency oracle (leakage at
	// epoch-start temperatures, like the rest of the decision inputs),
	// written into the preallocated frameCur rows. Frames are independent
	// given the epoch-start temperatures, so this fans out; the
	// per-index writes are disjoint.
	for s := range r.frameErrs {
		r.frameErrs[s] = nil
	}
	r.pool.For(len(frames), r.frameCurFn)
	phase.End()
	for _, ferr := range r.frameErrs {
		if ferr != nil {
			return ferr
		}
	}

	// Decision. The governor phase includes the emergency-oracle PDN
	// solves the VT policies request through the callbacks bound in New;
	// every other govIn field aliases runner scratch refreshed above.
	phase = epSpan.StartChild("governor")
	r.tm.VRTemps(r.vrTemps)
	r.govIn.Epoch = e
	if e == 0 {
		copy(r.prevDomainCur, r.avgDomainCur) // bootstrap history
	}
	dec, err := r.gov.Decide(&r.govIn)
	phase.End()
	if err != nil {
		return err
	}
	if invariant.Enabled {
		r.sanitizeDecision(dec)
	}
	if r.flt != nil {
		r.resolveDecisionFaults(dec, r.avgDomainCur, measuring, res)
	}
	epochOverrides := 0
	for _, dd := range dec.Domains {
		if dd.EmergencyOverride {
			res.EmergencyOverrides++
			epochOverrides++
		}
		if dd.ThermalOverride {
			res.ThermalOverrides++
			r.ins.thermalOverrides.Inc()
		}
	}

	// Execute the epoch substep by substep with leakage feedback.
	for i := range r.epochVRLoss {
		r.epochVRLoss[i] = 0
	}
	var epochMaxNoise float64
	var epochChipPower float64
	for i := range r.epochDomEmerg {
		r.epochDomEmerg[i] = false
	}
	msBase := ms.MeasuredSteps
	for s, f := range frames {
		if invariant.Enabled {
			invariant.SetCtx(e, s)
		}
		phase = epSpan.StartChild("power")
		r.tm.BlockTemps(r.blockTemps)
		if _, err := r.blockPowerScaled(f.Activity, r.blockTemps, r.blockPower); err != nil {
			return err
		}
		r.demand(r.blockPower)
		phase.End()
		copy(r.stepCurrents[s], r.blockCurrent)

		// Apply the decision with hard-limit legalisation.
		phase = epSpan.StartChild("vr")
		for i := range r.vrPower {
			r.vrPower[i] = 0
			r.vrCurrent[i] = 0
		}
		var substepPloss float64
		for d := range r.chip.Domains {
			dd := &dec.Domains[d]
			if r.flt != nil && r.fltDomDirty[d] {
				lossW, pout, eta := r.applyDomainFaulted(d, dd, measuring, res, r.epochVRLoss)
				substepPloss += lossW
				if measuring && pout > 0 && eta > 0 {
					ms.EtaWeighted += eta * pout * r.substepS
					ms.EtaWeight += pout * r.substepS
				}
				continue
			}
			count := dd.Count
			if r.cfg.Policy != core.OffChip {
				mLegal, overload := r.legalCount(d, r.domainCurrent[d])
				if overload && measuring {
					res.DemandViolations++
				}
				if count < mLegal {
					count = mLegal
				}
			}
			mask := r.buildMask(d, count, dd.Ranking)
			if count > 0 {
				loss := r.nets[d].PerVRLoss(r.domainCurrent[d], count)
				share := r.domainCurrent[d] / float64(count)
				if share < 0 {
					share = 0
				}
				dom := &r.chip.Domains[d]
				for li, on := range mask {
					if on {
						rid := dom.Regulators[li]
						r.vrPower[rid] = loss
						r.vrCurrent[rid] = share
						r.epochVRLoss[rid] += loss
						substepPloss += loss
					}
				}
				pout := r.domainCurrent[d] * power.Vdd
				eta := r.nets[d].EtaAt(r.domainCurrent[d], count)
				if measuring && pout > 0 && eta > 0 {
					ms.EtaWeighted += eta * pout * r.substepS
					ms.EtaWeight += pout * r.substepS
				}
			}
		}
		phase.End()
		// Capture this substep's masks (after any fault legalisation)
		// for the deferred PDN phase and the worst-noise snapshot.
		for d := range r.chip.Domains {
			copy(r.stepMasks[s][d], r.masks[d])
		}

		phase = epSpan.StartChild("thermal")
		if err := r.tm.SetPower(r.blockPower, r.vrPower); err != nil {
			return err
		}
		retries, err := r.wd.Step(r.substepS)
		if retries > 0 {
			res.WatchdogRetries += retries
			r.ins.watchdogRetries.Add(float64(retries))
		}
		if err != nil {
			return err
		}
		phase.End()
		if invariant.Enabled {
			r.sanitizeSubstep()
		}

		phase = epSpan.StartChild("power")
		var chipPower float64
		for _, p := range r.blockPower {
			chipPower += p
		}
		epochChipPower += chipPower
		phase.End()

		if measuring && r.wear != nil {
			phase = epSpan.StartChild("thermal")
			r.tm.VRTemps(r.vrTemps)
			if err := r.wear.Observe(r.vrTemps, r.vrCurrent, r.substepS); err != nil {
				return err
			}
			phase.End()
		}

		if measuring {
			// Thermal-state sampling (MaxTemp/Gradient scan the RC
			// network) accounts to the thermal phase.
			phase = epSpan.StartChild("thermal")
			ms.MeasuredTime += r.substepS
			ms.PlossIntegral += substepPloss * r.substepS
			ms.ChipPowerInt += chipPower * r.substepS
			if t, at := r.tm.MaxTemp(); t > res.MaxTempC {
				res.MaxTempC, res.MaxTempAt = t, at
				ms.HeatMapDeadline = e
			}
			if g := r.tm.Gradient(); g > res.MaxGradientC {
				res.MaxGradientC = g
			}
			phase.End()
		}

		if measuring {
			ms.MeasuredSteps++
		}

		// Regulator temperature trace (Fig. 8).
		if r.cfg.TrackVR >= 0 && r.cfg.TrackVR < len(r.chip.Regulators) {
			rid := r.cfg.TrackVR
			dom := r.chip.Regulators[rid].Domain
			li := 0
			for i, id := range r.chip.Domains[dom].Regulators {
				if id == rid {
					li = i
				}
			}
			//perf:alloc capacity preallocated in beginRun; a resumed run regrows once
			res.VRTrace = append(res.VRTrace, VRSample{ //lint:ignore capgrow capacity preallocated in beginRun (cross-function, so per-function capacity tracking cannot see it)
				TimeMS: f.TimeMS + f.DtMS,
				TempC:  r.tm.VRTemp(rid),
				On:     r.masks[dom][li],
			})
		}

		// Thermal sensors lag by one substep (100µs); optional
		// Gaussian sensor error models parametric variation.
		if s == r.stepsPerEpoch-2 || r.stepsPerEpoch == 1 {
			phase = epSpan.StartChild("thermal")
			r.tm.VRTemps(r.sensorVRTemps)
			if r.cfg.SensorNoiseC > 0 {
				for i := range r.sensorVRTemps {
					r.sensorVRTemps[i] += r.cfg.SensorNoiseC * r.rng.Norm()
				}
			}
			// Injected sensor faults apply on top of the parametric
			// noise: stuck-at, multiplicative noise, quantization, and
			// dropouts replaced by last-good / neighbor-median values.
			if r.flt != nil {
				fb, ferr := r.flt.ApplySensors(r.sensorVRTemps)
				if ferr != nil {
					phase.End()
					return ferr
				}
				if fb > 0 {
					res.SensorFallbacks += fb
					r.ins.sensorFallbacks.Add(float64(fb))
				}
			}
			phase.End()
		}
	}

	// Voltage noise, deferred to epoch end: the per-substep captures
	// above hold everything the PDN needs, and its outputs feed only
	// the measurement accumulators and the end-of-epoch governor
	// feedback — nothing inside the substep loop reads them.
	if r.cfg.Policy != core.OffChip {
		phase = epSpan.StartChild("pdn")
		perr := r.pdnEpoch(frames, measuring, r.runSampleEvery, msBase, r.epochDomEmerg, &epochMaxNoise, ms, res)
		phase.End()
		if perr != nil {
			return perr
		}
	}

	// Epoch bookkeeping: the mask scan accounts to the vr phase, the
	// governor feedback observations to the governor phase.
	phase = epSpan.StartChild("vr")
	activeCount := 0
	for d := range r.chip.Domains {
		for li, on := range r.masks[d] {
			if on {
				activeCount++
				if measuring {
					res.VROnFrac[r.chip.Domains[d].Regulators[li]]++
				}
			}
		}
	}
	phase.End()
	copy(r.prevDomainCur, r.avgDomainCur)
	for i := range r.epochVRLoss {
		r.epochVRLoss[i] /= float64(r.stepsPerEpoch)
	}
	phase = epSpan.StartChild("governor")
	if err := r.gov.Observe(r.avgDomainCur, r.epochVRLoss); err != nil {
		return err
	}
	if err := r.gov.ObserveEmergencies(r.epochDomEmerg); err != nil {
		return err
	}
	phase.End()
	copy(r.perVRLoss, r.epochVRLoss)

	if measuring {
		ms.MeasuredEpochs++
		if r.vf != nil {
			cfgVF := r.vf.Config()
			for c := 0; c < floorplan.NumCores; c++ {
				p := r.vf.Point(c)
				ms.DvfsVddSum[c] += p.VddV
				ms.DvfsPerfSum += cfgVF.PerformanceScale(p)
			}
		}
		if r.cfg.TraceEpochs {
			var ploss float64
			for _, l := range r.epochVRLoss {
				ploss += l
			}
			tmax, _ := r.tm.MaxTemp()
			//perf:alloc capacity preallocated in beginRun; a resumed run regrows once
			res.Trace = append(res.Trace, EpochStats{ //lint:ignore capgrow capacity preallocated in beginRun (cross-function, so per-function capacity tracking cannot see it)
				TimeMS:      float64(e) * r.cfg.EpochMS,
				TotalPowerW: epochChipPower / float64(r.stepsPerEpoch),
				ActiveVRs:   activeCount,
				MaxTempC:    tmax,
				GradientC:   r.tm.Gradient(),
				MaxNoisePct: epochMaxNoise,
				PlossW:      ploss,
				Eta:         0, // filled in aggregate below
			})
		}
		if r.cfg.HeatMapRes > 0 && ms.HeatMapDeadline == e {
			//perf:alloc heat-map capture fires on at most one epoch per run
			hm, err := r.tm.HeatMap(r.cfg.HeatMapRes, r.cfg.HeatMapRes)
			if err != nil {
				return err
			}
			res.HeatMap = hm
		}
	}

	epSpan.End()
	if r.ins.enabled() {
		var ploss float64
		for _, l := range r.epochVRLoss {
			ploss += l
		}
		tmax, _ := r.tm.MaxTemp()
		if err := r.ins.observeEpoch(r, epSpan, epochStats{
			epoch:      e,
			timeMS:     float64(e) * r.cfg.EpochMS,
			measuring:  measuring,
			activeVRs:  activeCount,
			chipPowerW: epochChipPower / float64(r.stepsPerEpoch),
			plossW:     ploss,
			maxTempC:   tmax,
			gradientC:  r.tm.Gradient(),
			noisePct:   epochMaxNoise,
			overrides:  epochOverrides,
		}); err != nil {
			return fmt.Errorf("sim: telemetry sink: %w", err)
		}
	}

	// Periodic checkpoint: snapshot after the epoch's telemetry so the
	// resumed run re-emits exactly the remaining records. A sink error
	// aborts the run — it is also the hook the kill-and-resume tests
	// use to interrupt deterministically.
	if r.wantCheckpoint(e) {
		r.ins.checkpoints.Inc()
		if batch.state == nil {
			return errors.New("sim: checkpoint epoch without a captured uarch state")
		}
		if err := r.cfg.Checkpoint.Sink(r.snapshot(e, batch.state, ms)); err != nil {
			return fmt.Errorf("sim: checkpoint sink: %w", err)
		}
	}

	// Cancellation stop: once the context is done, the first epoch whose
	// batch carries a producer-captured uarch snapshot is the boundary the
	// run halts at, with a complete resumable checkpoint in the error. An
	// epoch consumed after cancellation but produced before it (the
	// parallel producer runs one epoch ahead) has no snapshot and simply
	// completes; the next one stops.
	if r.ctxErr() != nil && batch.state != nil {
		return &CancelError{
			Epoch:      e,
			Checkpoint: r.snapshot(e, batch.state, ms),
			Cause:      cancelCause(r.runCtx),
		}
	}
	return nil
}

// finishRun folds the measurement accumulators into the Result once the
// epoch loop completes.
func (r *Runner) finishRun() (*Result, error) {
	ms := r.runMS
	res := ms.Res
	if ms.MeasuredEpochs == 0 {
		return nil, errors.New("sim: run shorter than the warm-up window")
	}
	res.Epochs = ms.MeasuredEpochs
	for i := range res.VROnFrac {
		res.VROnFrac[i] /= float64(ms.MeasuredEpochs)
	}
	if ms.MeasuredTime > 0 {
		res.AvgPlossW = ms.PlossIntegral / ms.MeasuredTime
		res.AvgChipPowerW = ms.ChipPowerInt / ms.MeasuredTime
		res.EmergencyFrac = ms.EmergencyTime / ms.MeasuredTime
	}
	if ms.EtaWeight > 0 {
		res.AvgEta = ms.EtaWeighted / ms.EtaWeight
	}
	if ms.WorstNoise >= 0 {
		res.MaxNoisePct = ms.WorstNoise
	}
	if ms.SampledWorst >= 0 {
		res.SampledMaxNoisePct = ms.SampledWorst
	}
	if r.wear != nil {
		res.MTTFYears = r.wear.MTTFYears()
		res.MinMTTFYears = r.wear.MinMTTFYears()
		res.AgingImbalance = r.wear.ImbalanceRatio()
	}
	res.DetectorStats = r.gov.DetectorStats()
	if r.vf != nil {
		res.DVFSAvgVddV = make([]float64, floorplan.NumCores)
		for c := range res.DVFSAvgVddV {
			res.DVFSAvgVddV[c] = ms.DvfsVddSum[c] / float64(ms.MeasuredEpochs)
		}
		res.DVFSAvgPerf = ms.DvfsPerfSum / float64(ms.MeasuredEpochs*floorplan.NumCores)
	}
	for i := range res.Trace {
		res.Trace[i].Eta = res.AvgEta
	}
	r.ins.observeRun(res)
	return res, nil
}

// snapshotWorstNoise captures enough state at the worst-noise moment to
// regenerate a transient window later. maxBlock is the global block ID of
// the steady-noise maximum; blockCurrent and mask are the substep's
// captured current map and gating mask.
//
//perf:alloc fires only when a new run-wide worst-noise maximum is found
func (r *Runner) snapshotWorstNoise(d, maxBlock int, blockCurrent []float64, mask []bool, f uarch.Frame, frames []uarch.Frame) *WorstNoiseState {
	dom := &r.chip.Domains[d]
	bi := 0
	for i, bid := range dom.Blocks {
		if bid == maxBlock {
			bi = i
		}
	}
	ws := &WorstNoiseState{
		Domain:       d,
		BlockIndex:   bi,
		TimeMS:       f.TimeMS,
		BlockCurrent: append([]float64(nil), blockCurrent...),
		Active:       append([]bool(nil), mask...),
	}
	// Map the epoch's bursts (for this domain's core) onto window cycles.
	coreIdx := r.burstDomainCore(d)
	epochStart := frames[0].TimeMS
	for _, fr := range frames {
		for _, b := range fr.Bursts {
			if b.Core != coreIdx {
				continue
			}
			startCycle := int((b.TimeMS - epochStart) * 1e6 * uarch.ClockGHz / 1000)
			if startCycle < 0 {
				startCycle = 0
			}
			ws.Bursts = append(ws.Bursts, pdn.Burst{ //lint:ignore capgrow worst-noise capture is rare and the burst count per epoch is small
				StartCycle: startCycle % 2000,
				Cycles:     b.Cycles,
				Amp:        b.Amp,
			})
		}
	}
	return ws
}

// initThermal settles the package at the steady state of a mid-activity
// all-on operating point so runs start from a physically plausible field.
func (r *Runner) initThermal() error {
	act := make([]float64, len(r.chip.Blocks))
	c, m := r.cfg.meanIntensity()
	level := 0.5*c + 0.5*m
	for i := range act {
		act[i] = level
	}
	temps := make([]float64, len(r.chip.Blocks))
	for i := range temps {
		temps[i] = 60
	}
	bp, err := r.pm.Total(act, temps, nil)
	if err != nil {
		return err
	}
	vp := make([]float64, len(r.chip.Regulators))
	if r.cfg.Policy != core.OffChip {
		r.demand(bp)
		for d := range r.chip.Domains {
			n := r.nets[d].Size()
			loss := r.nets[d].PerVRLoss(r.domainCurrent[d], n)
			for _, rid := range r.chip.Domains[d].Regulators {
				vp[rid] = loss
			}
		}
	}
	if err := r.tm.SetPower(bp, vp); err != nil {
		return err
	}
	if _, err = r.tm.SteadyState(1e-4, 0); err != nil {
		// One bounded retry with a quadrupled iteration budget before the
		// non-convergence is surfaced to the caller.
		_, err = r.tm.SteadyState(1e-4, 80000)
	}
	return err
}
