package sim

import (
	"context"
	"fmt"
)

// CancelError is how a run reports that its context was canceled. The
// runner polls the context once per epoch (a single interface call — the
// steady-state loop stays allocation-free) and stops at the next epoch
// boundary where the activity producer has captured a uarch snapshot, so
// Checkpoint is a complete, resumable state of the interrupted run:
// restoring it into a fresh runner and calling RunContext again continues
// the run byte-identically (the same guarantee periodic checkpoints give,
// proven by checkpoint_test.go). Under the parallel pipeline the producer
// runs one epoch ahead, so cancellation lands within two epochs of the
// request.
//
// Checkpoint is nil only when the run was canceled before any epoch
// completed (during setup or the θ-profiling pass, which is cheap to
// redo); such runs must be restarted from scratch.
type CancelError struct {
	// Epoch is the last completed epoch (-1 if none completed).
	Epoch int
	// Checkpoint resumes the run from Epoch; nil when cancellation
	// preceded the first completed epoch.
	Checkpoint *Checkpoint
	// Cause is context.Cause of the canceled context, so callers that
	// cancel with a cause (preemption, drain, client abort) can tell the
	// reasons apart with errors.Is.
	Cause error
}

func (e *CancelError) Error() string {
	if e.Checkpoint != nil {
		return fmt.Sprintf("sim: run canceled after epoch %d (checkpoint captured): %v", e.Epoch, e.Cause)
	}
	return fmt.Sprintf("sim: run canceled before any resumable state existed: %v", e.Cause)
}

// Unwrap exposes the cancellation cause, so errors.Is(err,
// context.Canceled) holds for plain cancels and errors.Is(err, myCause)
// for cause-carrying ones.
func (e *CancelError) Unwrap() error { return e.Cause }

// ctxErr polls the run's context. A runner whose Run was never given a
// context (direct beginRun/stepEpoch drivers, the profiling pass under
// tests) has no context and never cancels.
//
//perf:dispatch context poll is one interface call per epoch on the hot path; Background().Err() is a nil return
func (r *Runner) ctxErr() error {
	if r.runCtx == nil {
		return nil
	}
	return r.runCtx.Err()
}

// cancelCause resolves the most specific cancellation reason available.
//
//perf:dispatch runs at most once per run, on the cancellation exit path
func cancelCause(ctx context.Context) error {
	if ctx == nil {
		return context.Canceled
	}
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}
