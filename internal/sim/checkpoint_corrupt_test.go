package sim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

// corruptFixture returns the framed bytes of a small but structurally
// complete checkpoint. ReadCheckpoint only validates the frame and schema
// tag, so the embedded states can stay minimal.
func corruptFixture(t *testing.T) []byte {
	t.Helper()
	cp := &Checkpoint{
		Schema:        CheckpointSchema,
		Policy:        "pracVT",
		Benchmark:     "synthetic",
		Seed:          42,
		Epoch:         7,
		RNG:           0xdeadbeef,
		SensorVRTemps: []float64{61.5, 62.25},
		PrevDomainCur: []float64{10.0},
		PerVRLoss:     []float64{0.5, 0.75},
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadCheckpointRejectsTruncation feeds ReadCheckpoint every
// interesting prefix of a valid frame and demands a CorruptError whose
// offset points at the byte where the stream ran dry.
func TestReadCheckpointRejectsTruncation(t *testing.T) {
	frame := corruptFixture(t)
	if len(frame) <= checkpointHeaderLen {
		t.Fatalf("fixture frame is only %d bytes", len(frame))
	}

	cuts := []int{0, 1, len(checkpointMagic) - 1, len(checkpointMagic), checkpointHeaderLen - 1,
		checkpointHeaderLen, checkpointHeaderLen + 1, (checkpointHeaderLen + len(frame)) / 2, len(frame) - 1}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			_, err := ReadCheckpoint(bytes.NewReader(frame[:cut]))
			if err == nil {
				t.Fatal("ReadCheckpoint accepted a truncated frame")
			}
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("truncation at %d returned %v, want ErrCorruptCheckpoint", cut, err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error is not a *CorruptError: %v", err)
			}
			if ce.Offset != int64(cut) {
				t.Errorf("truncation at byte %d reported offset %d", cut, ce.Offset)
			}
		})
	}

	// The untruncated frame still round-trips.
	cp, err := ReadCheckpoint(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("full frame failed to decode: %v", err)
	}
	if cp.Epoch != 7 || cp.Seed != 42 {
		t.Errorf("round-trip lost fields: epoch=%d seed=%d", cp.Epoch, cp.Seed)
	}
}

// TestReadCheckpointRejectsBitFlips flips a single bit at every byte
// position in the frame (header and payload) and demands each flip is
// caught as ErrCorruptCheckpoint — never a silent success, never a panic.
func TestReadCheckpointRejectsBitFlips(t *testing.T) {
	frame := corruptFixture(t)
	for pos := 0; pos < len(frame); pos++ {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), frame...)
			mut[pos] ^= bit
			_, err := ReadCheckpoint(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("bit flip at byte %d (mask %#x) decoded successfully", pos, bit)
			}
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("bit flip at byte %d (mask %#x) returned %v, want ErrCorruptCheckpoint", pos, bit, err)
			}
		}
	}
}

// TestReadCheckpointCorruptionModes pins the offset semantics per
// corruption mode: bad magic points at 0, an oversized length field at the
// length field, a checksum mismatch at the payload start.
func TestReadCheckpointCorruptionModes(t *testing.T) {
	frame := corruptFixture(t)
	offsetOf := func(mutate func([]byte)) int64 {
		t.Helper()
		mut := append([]byte(nil), frame...)
		mutate(mut)
		_, err := ReadCheckpoint(bytes.NewReader(mut))
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("mutation returned %v, want *CorruptError", err)
		}
		return ce.Offset
	}

	if off := offsetOf(func(b []byte) { b[0] = 'X' }); off != 0 {
		t.Errorf("bad magic reported offset %d, want 0", off)
	}
	if off := offsetOf(func(b []byte) {
		binary.LittleEndian.PutUint64(b[len(checkpointMagic):], maxCheckpointPayload+1)
	}); off != int64(len(checkpointMagic)) {
		t.Errorf("oversized length reported offset %d, want %d", off, len(checkpointMagic))
	}
	if off := offsetOf(func(b []byte) { b[len(b)-1] ^= 0xff }); off != int64(checkpointHeaderLen) {
		t.Errorf("payload corruption reported offset %d, want %d", off, checkpointHeaderLen)
	}

	// A legacy bare-gob stream (no frame) is corruption, not a crash.
	var legacy bytes.Buffer
	legacy.WriteString("\x1f\xff\x81\x03\x01\x01\nCheckpoint")
	if _, err := ReadCheckpoint(&legacy); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("bare gob stream returned %v, want ErrCorruptCheckpoint", err)
	}

	// An empty stream reports offset 0.
	_, err := ReadCheckpoint(bytes.NewReader(nil))
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Offset != 0 {
		t.Errorf("empty stream returned %v, want *CorruptError at offset 0", err)
	}

	// A well-formed frame with a wrong schema tag is a version error, NOT
	// corruption — callers must not quarantine it as damaged.
	bad := &Checkpoint{Schema: "thermogater/checkpoint/v0", Epoch: 1}
	var bbuf bytes.Buffer
	if err := bad.Encode(&bbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(&bbuf); err == nil {
		t.Error("wrong schema tag accepted")
	} else if errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("schema mismatch misclassified as corruption: %v", err)
	}
}
