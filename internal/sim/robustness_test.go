package sim

import (
	"math"
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/workload"
)

// TestThetaCalibrationTolerance verifies the paper's Section 6.3 claim
// that PracVT "is ranking-based and can tolerate calibration errors as
// long as inaccuracies keep relative ranking intact (where absolute
// parameter values may fluctuate significantly)": scaling every θᵢ by a
// common factor — a large absolute calibration error that preserves the
// relative ranking — must leave the thermal outcome essentially unchanged.
func TestThetaCalibrationTolerance(t *testing.T) {
	runWithTheta := func(mutate func([]float64)) *Result {
		p, err := workload.ByName("lu_ncb")
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(core.PracT, p)
		cfg.DurationMS = 200
		cfg.WarmupEpochs = 25
		cfg.ProfilingEpochs = 80
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Train normally, then inject the mis-calibration.
		theta, err := r.profileTheta()
		if err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			mutate(theta.Theta)
		}
		if err := r.gov.SetTheta(theta); err != nil {
			t.Fatal(err)
		}
		res, err := r.runMeasured()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := runWithTheta(nil)
	// Per-regulator ±12% jitter: absolute values fluctuate but the
	// relative ranking of anticipated temperatures is essentially intact.
	rng := workload.NewRNG(99)
	jittered := runWithTheta(func(theta []float64) {
		for i := range theta {
			theta[i] *= 1 + 0.12*(2*rng.Float64()-1)
		}
	})
	if d := math.Abs(jittered.MaxTempC - base.MaxTempC); d > 1.0 {
		t.Errorf("±12%% per-regulator theta jitter moved Tmax by %v°C; ranking-based gating should tolerate it", d)
	}
	// Destroying the calibration entirely (zero theta: the predictor
	// degenerates to raw stale sensors) must not crash and stays within a
	// few degrees — the policy degrades, not explodes.
	zeroed := runWithTheta(func(theta []float64) {
		for i := range theta {
			theta[i] = 0
		}
	})
	if d := math.Abs(zeroed.MaxTempC - base.MaxTempC); d > 5 {
		t.Errorf("zeroed theta moved Tmax by %v°C — suspicious instability", d)
	}
}

// TestSensorNoiseTolerance injects random per-reading sensor error and
// checks PracT degrades gracefully: parametric sensor variation is the
// "worst-case corner" the paper's conclusion discusses.
func TestSensorNoiseTolerance(t *testing.T) {
	run := func(noiseC float64, seed uint64) *Result {
		p, err := workload.ByName("lu_ncb")
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(core.PracT, p)
		cfg.DurationMS = 200
		cfg.WarmupEpochs = 25
		cfg.ProfilingEpochs = 80
		cfg.SensorNoiseC = noiseC
		cfg.Seed = seed
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(0, 1)
	noisy := run(0.5, 1) // ±0.5°C-scale gaussian sensor error
	if d := noisy.MaxTempC - clean.MaxTempC; d > 1.5 {
		t.Errorf("0.5°C sensor noise degraded Tmax by %v°C", d)
	}
	// Heavy sensor corruption must hurt more than mild corruption —
	// i.e. the sensitivity knob actually does something.
	broken := run(8, 1)
	if broken.MaxTempC <= noisy.MaxTempC {
		t.Errorf("8°C sensor noise (%v) not worse than 0.5°C (%v)", broken.MaxTempC, noisy.MaxTempC)
	}
}

// TestSignatureDetectorEndToEnd runs PracVT with the concrete Reddi-style
// signature detector on the emergency-heavy barnes: the learned predictor
// must catch a substantial share of emergencies (droop storms recur with
// the same observable signature) and suppress emergency time relative to
// thermally-only PracT.
func TestSignatureDetectorEndToEnd(t *testing.T) {
	withSig := func(c *Config) { c.Governor.Detector = core.DetectSignature }
	pracT := run(t, core.PracT, "barnes", nil)
	sig := run(t, core.PracVT, "barnes", withSig)

	st := sig.DetectorStats
	total := st.TruePositive + st.FalsePositive + st.TrueNegative + st.FalseNegative + st.Suppressed
	if total == 0 {
		t.Fatal("signature detector recorded no predictions")
	}
	if st.EffectiveRecall() < 0.3 {
		t.Errorf("signature detector effective recall %v; storms recur and should be learnable", st.EffectiveRecall())
	}
	if sig.EmergencyFrac >= pracT.EmergencyFrac {
		t.Errorf("signature PracVT emergencies %v not below PracT %v",
			sig.EmergencyFrac, pracT.EmergencyFrac)
	}
	// The default stochastic detector leaves the stats zeroed.
	stoch := run(t, core.PracVT, "barnes", nil)
	if stoch.DetectorStats != (core.PredictorStats{}) {
		t.Errorf("stochastic run carries detector stats: %+v", stoch.DetectorStats)
	}
}
