package sim

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"thermogater/internal/aging"
	"thermogater/internal/core"
	"thermogater/internal/dvfs"
	"thermogater/internal/fault"
	"thermogater/internal/pdn"
	"thermogater/internal/thermal"
	"thermogater/internal/uarch"
)

// CheckpointSchema identifies the checkpoint wire format; bump on any
// incompatible change to Checkpoint or the states it embeds.
const CheckpointSchema = "thermogater/checkpoint/v1"

// CheckpointConfig enables periodic run snapshots. After every
// EveryEpochs-th completed epoch the runner assembles a Checkpoint and
// hands it to Sink; a sink error aborts the run (which is also how the
// kill-and-resume tests interrupt a run deterministically). The zero value
// disables checkpointing.
type CheckpointConfig struct {
	// EveryEpochs is the snapshot period; 0 disables.
	EveryEpochs int
	// Sink receives each snapshot, e.g. writing it to disk via Encode.
	Sink func(*Checkpoint) error
}

func (c CheckpointConfig) validate() error {
	if c.EveryEpochs < 0 {
		return errors.New("sim: negative checkpoint period")
	}
	if c.EveryEpochs > 0 && c.Sink == nil {
		return errors.New("sim: checkpoint period set without a sink")
	}
	return nil
}

// MeasureState holds the measured-loop accumulators so a resumed run
// continues the aggregation exactly where the interrupted one stopped.
// All fields mirror what used to be locals of the epoch loop.
type MeasureState struct {
	MeasuredTime    float64
	EmergencyTime   float64
	PlossIntegral   float64
	ChipPowerInt    float64
	EtaWeighted     float64
	EtaWeight       float64
	WorstNoise      float64
	SampledWorst    float64
	MeasuredSteps   int
	MeasuredEpochs  int
	HeatMapDeadline int
	DvfsVddSum      []float64
	DvfsPerfSum     float64
	Res             *Result
}

// Checkpoint is a complete snapshot of a run after some epoch: every piece
// of cross-epoch mutable state, from the activity simulator's RNGs to the
// governor's predictor tables to the partially aggregated result. A run
// resumed from a checkpoint is bit-identical — including its streamed
// telemetry records — to the same run never interrupted; the determinism
// harness in checkpoint_test.go is the oracle for that claim.
//
// Deliberately NOT checkpointed (recomputed every epoch from checkpointed
// state): the gating masks, the DVFS power-scaling factors, per-epoch
// scratch buffers, and the telemetry instrument baselines (realigned via
// syncBaselines against the restored solver counters).
type Checkpoint struct {
	// Schema is CheckpointSchema; ReadCheckpoint rejects anything else.
	Schema string
	// Policy, Benchmark and Seed identify the run; Restore rejects a
	// checkpoint taken from a differently configured runner.
	Policy    string
	Benchmark string
	Seed      uint64
	// Epoch is the last completed epoch; the resumed run starts at Epoch+1.
	Epoch int

	Uarch         *uarch.State
	Thermal       *thermal.State
	Governor      *core.GovernorState
	RNG           uint64
	SensorVRTemps []float64
	PrevDomainCur []float64
	PerVRLoss     []float64
	FaultActGood  []float64
	DVFS          *dvfs.State
	Aging         *aging.State
	Fault         *fault.State

	PDNSteadySolves    int64
	PDNTransientSolves int64

	Measure MeasureState
}

// Encode serialises the checkpoint with encoding/gob.
func (c *Checkpoint) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(c)
}

// ReadCheckpoint deserialises a checkpoint written by Encode and verifies
// its schema tag.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("sim: decoding checkpoint: %w", err)
	}
	if c.Schema != CheckpointSchema {
		return nil, fmt.Errorf("sim: checkpoint schema %q, want %q", c.Schema, CheckpointSchema)
	}
	return &c, nil
}

// clone deep-copies the measure state so neither a checkpoint nor a run
// resumed from one aliases buffers another run keeps mutating.
//
//perf:alloc checkpoint capture deep-copies by design; runs only on checkpoint epochs
func (m MeasureState) clone() MeasureState {
	m.DvfsVddSum = append([]float64(nil), m.DvfsVddSum...)
	m.Res = cloneResult(m.Res)
	return m
}

// cloneResult deep-copies a partially aggregated result, preserving the
// nil-ness of every optional slice (gob round-trips rely on that).
//
//perf:alloc checkpoint capture deep-copies by design; runs only on checkpoint epochs
func cloneResult(res *Result) *Result {
	if res == nil {
		return nil
	}
	c := *res
	c.VROnFrac = append([]float64(nil), res.VROnFrac...)
	c.MTTFYears = append([]float64(nil), res.MTTFYears...)
	c.DVFSAvgVddV = append([]float64(nil), res.DVFSAvgVddV...)
	c.Trace = append([]EpochStats(nil), res.Trace...)
	c.VRTrace = append([]VRSample(nil), res.VRTrace...)
	if res.HeatMap != nil {
		c.HeatMap = make([][]float64, len(res.HeatMap))
		for i, row := range res.HeatMap {
			c.HeatMap[i] = append([]float64(nil), row...)
		}
	}
	if res.WorstNoise != nil {
		w := *res.WorstNoise
		w.BlockCurrent = append([]float64(nil), res.WorstNoise.BlockCurrent...)
		w.Active = append([]bool(nil), res.WorstNoise.Active...)
		w.Bursts = append([]pdn.Burst(nil), res.WorstNoise.Bursts...)
		c.WorstNoise = &w
	}
	return &c
}

// snapshot assembles the checkpoint for the just-completed epoch e.
// ustate is the activity simulator's state right after that epoch's
// frames were generated — captured by the producer, since under the
// parallel pipeline the simulator may already be an epoch ahead by the
// time the sink fires.
//
//perf:alloc checkpoint assembly allocates by design; runs only on checkpoint epochs
func (r *Runner) snapshot(e int, ustate *uarch.State, ms *MeasureState) *Checkpoint {
	cp := &Checkpoint{
		Schema:             CheckpointSchema,
		Policy:             r.cfg.Policy.String(),
		Benchmark:          r.cfg.benchmarkLabel(),
		Seed:               r.cfg.Seed,
		Epoch:              e,
		Uarch:              ustate,
		Thermal:            r.tm.State(),
		Governor:           r.gov.State(),
		RNG:                r.rng.State(),
		SensorVRTemps:      append([]float64(nil), r.sensorVRTemps...),
		PrevDomainCur:      append([]float64(nil), r.prevDomainCur...),
		PerVRLoss:          append([]float64(nil), r.perVRLoss...),
		PDNSteadySolves:    r.pdnSteadySolves,
		PDNTransientSolves: r.pdnTransientSolves,
		Measure:            ms.clone(),
	}
	if r.faultActGood != nil {
		cp.FaultActGood = append([]float64(nil), r.faultActGood...)
	}
	if r.vf != nil {
		cp.DVFS = r.vf.State()
	}
	if r.wear != nil {
		cp.Aging = r.wear.State()
	}
	if r.flt != nil {
		cp.Fault = r.flt.State()
	}
	return cp
}

// Restore loads a checkpoint into a freshly constructed runner (same
// Config) so the next Run continues from Checkpoint.Epoch+1. It applies
// the thermal, governor, RNG, DVFS, aging and fault-injector state
// immediately and stashes the rest for the measured loop; identity or
// shape mismatches are rejected before anything is applied.
func (r *Runner) Restore(cp *Checkpoint) error {
	if cp == nil {
		return errors.New("sim: nil checkpoint")
	}
	if cp.Schema != CheckpointSchema {
		return fmt.Errorf("sim: checkpoint schema %q, want %q", cp.Schema, CheckpointSchema)
	}
	if cp.Policy != r.cfg.Policy.String() || cp.Benchmark != r.cfg.benchmarkLabel() || cp.Seed != r.cfg.Seed {
		return fmt.Errorf("sim: checkpoint is for %s/%s seed %d, runner is %s/%s seed %d",
			cp.Policy, cp.Benchmark, cp.Seed, r.cfg.Policy, r.cfg.benchmarkLabel(), r.cfg.Seed)
	}
	if cp.Epoch < 0 || cp.Uarch == nil || cp.Thermal == nil || cp.Governor == nil || cp.Measure.Res == nil {
		return errors.New("sim: incomplete checkpoint")
	}
	nr, nd := len(r.chip.Regulators), len(r.chip.Domains)
	if len(cp.SensorVRTemps) != nr || len(cp.PerVRLoss) != nr || len(cp.PrevDomainCur) != nd {
		return errors.New("sim: checkpoint state shape does not match the chip")
	}
	if (r.vf != nil) != (cp.DVFS != nil) {
		return errors.New("sim: checkpoint DVFS state does not match the configuration")
	}
	if (r.wear != nil) != (cp.Aging != nil) {
		return errors.New("sim: checkpoint aging state does not match the configuration")
	}
	if (r.flt != nil) != (cp.Fault != nil) {
		return errors.New("sim: checkpoint fault state does not match the configuration")
	}
	if err := r.tm.Restore(cp.Thermal); err != nil {
		return err
	}
	if err := r.gov.Restore(cp.Governor); err != nil {
		return err
	}
	r.rng.SetState(cp.RNG)
	copy(r.sensorVRTemps, cp.SensorVRTemps)
	copy(r.prevDomainCur, cp.PrevDomainCur)
	copy(r.perVRLoss, cp.PerVRLoss)
	if r.faultActGood != nil && len(cp.FaultActGood) == len(r.faultActGood) {
		copy(r.faultActGood, cp.FaultActGood)
	}
	if r.vf != nil {
		if err := r.vf.Restore(cp.DVFS); err != nil {
			return err
		}
	}
	if r.wear != nil {
		if err := r.wear.Restore(cp.Aging); err != nil {
			return err
		}
	}
	if r.flt != nil {
		if err := r.flt.Restore(cp.Fault); err != nil {
			return err
		}
	}
	r.pdnSteadySolves = cp.PDNSteadySolves
	r.pdnTransientSolves = cp.PDNTransientSolves
	r.resume = cp
	return nil
}
