package sim

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"thermogater/internal/aging"
	"thermogater/internal/core"
	"thermogater/internal/dvfs"
	"thermogater/internal/fault"
	"thermogater/internal/pdn"
	"thermogater/internal/thermal"
	"thermogater/internal/uarch"
)

// CheckpointSchema identifies the checkpoint wire format; bump on any
// incompatible change to Checkpoint or the states it embeds.
const CheckpointSchema = "thermogater/checkpoint/v1"

// CheckpointConfig enables periodic run snapshots. After every
// EveryEpochs-th completed epoch the runner assembles a Checkpoint and
// hands it to Sink; a sink error aborts the run (which is also how the
// kill-and-resume tests interrupt a run deterministically). The zero value
// disables checkpointing.
type CheckpointConfig struct {
	// EveryEpochs is the snapshot period; 0 disables.
	EveryEpochs int
	// Sink receives each snapshot, e.g. writing it to disk via Encode.
	Sink func(*Checkpoint) error
}

func (c CheckpointConfig) validate() error {
	if c.EveryEpochs < 0 {
		return errors.New("sim: negative checkpoint period")
	}
	if c.EveryEpochs > 0 && c.Sink == nil {
		return errors.New("sim: checkpoint period set without a sink")
	}
	return nil
}

// MeasureState holds the measured-loop accumulators so a resumed run
// continues the aggregation exactly where the interrupted one stopped.
// All fields mirror what used to be locals of the epoch loop.
type MeasureState struct {
	MeasuredTime    float64
	EmergencyTime   float64
	PlossIntegral   float64
	ChipPowerInt    float64
	EtaWeighted     float64
	EtaWeight       float64
	WorstNoise      float64
	SampledWorst    float64
	MeasuredSteps   int
	MeasuredEpochs  int
	HeatMapDeadline int
	DvfsVddSum      []float64
	DvfsPerfSum     float64
	Res             *Result
}

// Checkpoint is a complete snapshot of a run after some epoch: every piece
// of cross-epoch mutable state, from the activity simulator's RNGs to the
// governor's predictor tables to the partially aggregated result. A run
// resumed from a checkpoint is bit-identical — including its streamed
// telemetry records — to the same run never interrupted; the determinism
// harness in checkpoint_test.go is the oracle for that claim.
//
// Deliberately NOT checkpointed (recomputed every epoch from checkpointed
// state): the gating masks, the DVFS power-scaling factors, per-epoch
// scratch buffers, and the telemetry instrument baselines (realigned via
// syncBaselines against the restored solver counters).
type Checkpoint struct {
	// Schema is CheckpointSchema; ReadCheckpoint rejects anything else.
	Schema string
	// Policy, Benchmark and Seed identify the run; Restore rejects a
	// checkpoint taken from a differently configured runner.
	Policy    string
	Benchmark string
	Seed      uint64
	// Epoch is the last completed epoch; the resumed run starts at Epoch+1.
	Epoch int

	Uarch         *uarch.State
	Thermal       *thermal.State
	Governor      *core.GovernorState
	RNG           uint64
	SensorVRTemps []float64
	PrevDomainCur []float64
	PerVRLoss     []float64
	FaultActGood  []float64
	DVFS          *dvfs.State
	Aging         *aging.State
	Fault         *fault.State

	PDNSteadySolves    int64
	PDNTransientSolves int64

	Measure MeasureState
}

// Checkpoints are framed on the wire so a half-written or bit-rotted file
// is a diagnosable error, not a gob panic or a silent restart-from-scratch:
//
//	magic "TGCKPT1\n" | uint64 LE payload length | uint32 LE CRC-32 (IEEE)
//	of the payload | gob payload
//
// The length bounds the read before any allocation, and the checksum is
// verified before gob ever sees a byte, so every corruption mode —
// truncation, bit flips, a foreign file — surfaces as a *CorruptError
// carrying the byte offset where the frame stopped making sense.
const checkpointMagic = "TGCKPT1\n"

// checkpointHeaderLen is magic + length + checksum.
const checkpointHeaderLen = len(checkpointMagic) + 8 + 4

// maxCheckpointPayload caps the length field so a corrupted header cannot
// drive an arbitrarily large allocation. Real checkpoints are megabytes at
// the very most.
const maxCheckpointPayload = 1 << 31

// ErrCorruptCheckpoint is the sentinel every corruption failure matches:
// errors.Is(err, ErrCorruptCheckpoint) distinguishes "this file is damaged"
// (keep it for forensics, restart from scratch or an older snapshot) from
// I/O or schema-version errors. The concrete error is a *CorruptError with
// the byte offset.
var ErrCorruptCheckpoint = errors.New("sim: corrupt checkpoint")

// CorruptError reports a damaged checkpoint frame: truncated, checksum
// mismatch, bad magic, or a gob stream the checksum somehow failed to
// protect. It matches ErrCorruptCheckpoint under errors.Is.
type CorruptError struct {
	// Offset is the byte offset into the checkpoint stream at which the
	// corruption was detected: where a truncated read stopped, or the
	// start of the region (magic, length field, payload) that failed
	// validation.
	Offset int64
	// Err describes the specific failure.
	Err error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("sim: corrupt checkpoint at byte %d: %v", e.Offset, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrCorruptCheckpoint) hold for every CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorruptCheckpoint }

// Encode serialises the checkpoint as one framed record: header (magic,
// payload length, CRC-32) followed by the gob payload.
func (c *Checkpoint) Encode(w io.Writer) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return fmt.Errorf("sim: encoding checkpoint: %w", err)
	}
	payload := buf.Bytes()
	var hdr [checkpointHeaderLen]byte
	copy(hdr[:], checkpointMagic)
	binary.LittleEndian.PutUint64(hdr[len(checkpointMagic):], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[len(checkpointMagic)+8:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadCheckpoint deserialises a checkpoint written by Encode, verifying the
// frame (magic, length, checksum) before decoding and the schema tag after.
// Damage of any kind returns a *CorruptError (match with
// errors.Is(err, ErrCorruptCheckpoint)); a schema-version mismatch — a
// well-formed frame from an incompatible build — is a plain error.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var hdr [checkpointHeaderLen]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		return nil, &CorruptError{Offset: int64(n), Err: fmt.Errorf("frame header truncated after %d of %d bytes: %w", n, checkpointHeaderLen, err)}
	}
	if string(hdr[:len(checkpointMagic)]) != checkpointMagic {
		return nil, &CorruptError{Offset: 0, Err: fmt.Errorf("bad magic %q (not a framed checkpoint)", hdr[:len(checkpointMagic)])}
	}
	length := binary.LittleEndian.Uint64(hdr[len(checkpointMagic) : len(checkpointMagic)+8])
	if length > maxCheckpointPayload {
		return nil, &CorruptError{Offset: int64(len(checkpointMagic)), Err: fmt.Errorf("implausible payload length %d", length)}
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[len(checkpointMagic)+8:])
	payload := make([]byte, length)
	n, err = io.ReadFull(r, payload)
	if err != nil {
		return nil, &CorruptError{Offset: int64(checkpointHeaderLen + n), Err: fmt.Errorf("payload truncated after %d of %d bytes: %w", n, length, err)}
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, &CorruptError{Offset: int64(checkpointHeaderLen), Err: fmt.Errorf("payload checksum %08x, header says %08x", got, wantCRC)}
	}
	c, err := decodeCheckpoint(payload)
	if err != nil {
		return nil, &CorruptError{Offset: int64(checkpointHeaderLen), Err: err}
	}
	if c.Schema != CheckpointSchema {
		return nil, fmt.Errorf("sim: checkpoint schema %q, want %q", c.Schema, CheckpointSchema)
	}
	return c, nil
}

// decodeCheckpoint gob-decodes a checksum-verified payload. The recover
// guard exists because encoding/gob has historically panicked on
// pathological inputs; with the CRC in front this should be unreachable,
// but a panic here must never take down a serve worker.
func decodeCheckpoint(payload []byte) (c *Checkpoint, err error) {
	defer func() {
		if p := recover(); p != nil {
			c, err = nil, fmt.Errorf("gob decode panicked: %v", p)
		}
	}()
	c = new(Checkpoint)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(c); err != nil {
		return nil, fmt.Errorf("gob: %w", err)
	}
	return c, nil
}

// clone deep-copies the measure state so neither a checkpoint nor a run
// resumed from one aliases buffers another run keeps mutating.
//
//perf:alloc checkpoint capture deep-copies by design; runs only on checkpoint epochs
func (m MeasureState) clone() MeasureState {
	m.DvfsVddSum = append([]float64(nil), m.DvfsVddSum...)
	m.Res = cloneResult(m.Res)
	return m
}

// cloneResult deep-copies a partially aggregated result, preserving the
// nil-ness of every optional slice (gob round-trips rely on that).
//
//perf:alloc checkpoint capture deep-copies by design; runs only on checkpoint epochs
func cloneResult(res *Result) *Result {
	if res == nil {
		return nil
	}
	c := *res
	c.VROnFrac = append([]float64(nil), res.VROnFrac...)
	c.MTTFYears = append([]float64(nil), res.MTTFYears...)
	c.DVFSAvgVddV = append([]float64(nil), res.DVFSAvgVddV...)
	c.Trace = append([]EpochStats(nil), res.Trace...)
	c.VRTrace = append([]VRSample(nil), res.VRTrace...)
	if res.HeatMap != nil {
		c.HeatMap = make([][]float64, len(res.HeatMap))
		for i, row := range res.HeatMap {
			c.HeatMap[i] = append([]float64(nil), row...)
		}
	}
	if res.WorstNoise != nil {
		w := *res.WorstNoise
		w.BlockCurrent = append([]float64(nil), res.WorstNoise.BlockCurrent...)
		w.Active = append([]bool(nil), res.WorstNoise.Active...)
		w.Bursts = append([]pdn.Burst(nil), res.WorstNoise.Bursts...)
		c.WorstNoise = &w
	}
	return &c
}

// snapshot assembles the checkpoint for the just-completed epoch e.
// ustate is the activity simulator's state right after that epoch's
// frames were generated — captured by the producer, since under the
// parallel pipeline the simulator may already be an epoch ahead by the
// time the sink fires.
//
//perf:alloc checkpoint assembly allocates by design; runs only on checkpoint epochs
func (r *Runner) snapshot(e int, ustate *uarch.State, ms *MeasureState) *Checkpoint {
	cp := &Checkpoint{
		Schema:             CheckpointSchema,
		Policy:             r.cfg.Policy.String(),
		Benchmark:          r.cfg.benchmarkLabel(),
		Seed:               r.cfg.Seed,
		Epoch:              e,
		Uarch:              ustate,
		Thermal:            r.tm.State(),
		Governor:           r.gov.State(),
		RNG:                r.rng.State(),
		SensorVRTemps:      append([]float64(nil), r.sensorVRTemps...),
		PrevDomainCur:      append([]float64(nil), r.prevDomainCur...),
		PerVRLoss:          append([]float64(nil), r.perVRLoss...),
		PDNSteadySolves:    r.pdnSteadySolves,
		PDNTransientSolves: r.pdnTransientSolves,
		Measure:            ms.clone(),
	}
	if r.faultActGood != nil {
		cp.FaultActGood = append([]float64(nil), r.faultActGood...)
	}
	if r.vf != nil {
		cp.DVFS = r.vf.State()
	}
	if r.wear != nil {
		cp.Aging = r.wear.State()
	}
	if r.flt != nil {
		cp.Fault = r.flt.State()
	}
	return cp
}

// Restore loads a checkpoint into a freshly constructed runner (same
// Config) so the next Run continues from Checkpoint.Epoch+1. It applies
// the thermal, governor, RNG, DVFS, aging and fault-injector state
// immediately and stashes the rest for the measured loop; identity or
// shape mismatches are rejected before anything is applied.
func (r *Runner) Restore(cp *Checkpoint) error {
	if cp == nil {
		return errors.New("sim: nil checkpoint")
	}
	if cp.Schema != CheckpointSchema {
		return fmt.Errorf("sim: checkpoint schema %q, want %q", cp.Schema, CheckpointSchema)
	}
	if cp.Policy != r.cfg.Policy.String() || cp.Benchmark != r.cfg.benchmarkLabel() || cp.Seed != r.cfg.Seed {
		return fmt.Errorf("sim: checkpoint is for %s/%s seed %d, runner is %s/%s seed %d",
			cp.Policy, cp.Benchmark, cp.Seed, r.cfg.Policy, r.cfg.benchmarkLabel(), r.cfg.Seed)
	}
	if cp.Epoch < 0 || cp.Uarch == nil || cp.Thermal == nil || cp.Governor == nil || cp.Measure.Res == nil {
		return errors.New("sim: incomplete checkpoint")
	}
	nr, nd := len(r.chip.Regulators), len(r.chip.Domains)
	if len(cp.SensorVRTemps) != nr || len(cp.PerVRLoss) != nr || len(cp.PrevDomainCur) != nd {
		return errors.New("sim: checkpoint state shape does not match the chip")
	}
	if (r.vf != nil) != (cp.DVFS != nil) {
		return errors.New("sim: checkpoint DVFS state does not match the configuration")
	}
	if (r.wear != nil) != (cp.Aging != nil) {
		return errors.New("sim: checkpoint aging state does not match the configuration")
	}
	if (r.flt != nil) != (cp.Fault != nil) {
		return errors.New("sim: checkpoint fault state does not match the configuration")
	}
	if err := r.tm.Restore(cp.Thermal); err != nil {
		return err
	}
	if err := r.gov.Restore(cp.Governor); err != nil {
		return err
	}
	r.rng.SetState(cp.RNG)
	copy(r.sensorVRTemps, cp.SensorVRTemps)
	copy(r.prevDomainCur, cp.PrevDomainCur)
	copy(r.perVRLoss, cp.PerVRLoss)
	if r.faultActGood != nil && len(cp.FaultActGood) == len(r.faultActGood) {
		copy(r.faultActGood, cp.FaultActGood)
	}
	if r.vf != nil {
		if err := r.vf.Restore(cp.DVFS); err != nil {
			return err
		}
	}
	if r.wear != nil {
		if err := r.wear.Restore(cp.Aging); err != nil {
			return err
		}
	}
	if r.flt != nil {
		if err := r.flt.Restore(cp.Fault); err != nil {
			return err
		}
	}
	r.pdnSteadySolves = cp.PDNSteadySolves
	r.pdnTransientSolves = cp.PDNTransientSolves
	r.resume = cp
	return nil
}
