package sim

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/telemetry"
)

// TestRunContextCancelResumeByteIdentical is the cancellation twin of the
// kill-and-resume oracle: a run canceled mid-flight through its context
// must stop at an epoch boundary with a checkpoint in the CancelError, and
// a fresh runner resumed from that checkpoint must stitch a telemetry
// stream byte-identical to an uninterrupted run.
func TestRunContextCancelResumeByteIdentical(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(map[int]string{0: "seq", 4: "par"}[workers], func(t *testing.T) {
			cfg := checkpointTestConfig(t)
			cfg.Workers = workers

			// Reference: the uninterrupted run.
			regA, bufA, sinkA := constantClockRegistry()
			full := cfg
			full.Telemetry = regA
			rA, err := New(full)
			if err != nil {
				t.Fatal(err)
			}
			resA, err := rA.Run()
			if err != nil {
				t.Fatal(err)
			}
			if err := sinkA.Flush(); err != nil {
				t.Fatal(err)
			}

			// Canceled run: a telemetry sink wrapper triggers the cancel
			// after the 25th record, so the cancellation point is
			// deterministic without depending on wall-clock timing.
			cause := errors.New("preempted for test")
			ctx, cancel := context.WithCancelCause(context.Background())
			defer cancel(nil)
			regB, bufB, sinkB := constantClockRegistry()
			records := 0
			regB.AddSink(sinkFunc(func() {
				records++
				if records == 25 {
					cancel(cause)
				}
			}))
			interrupted := cfg
			interrupted.Telemetry = regB
			rB, err := New(interrupted)
			if err != nil {
				t.Fatal(err)
			}
			_, err = rB.RunContext(ctx)
			var ce *CancelError
			if !errors.As(err, &ce) {
				t.Fatalf("canceled run returned %v, want a *CancelError", err)
			}
			if !errors.Is(err, cause) {
				t.Errorf("CancelError cause chain lost the cancel cause: %v", err)
			}
			if ce.Checkpoint == nil {
				t.Fatal("CancelError carries no checkpoint")
			}
			if ce.Epoch != ce.Checkpoint.Epoch {
				t.Errorf("CancelError.Epoch=%d but Checkpoint.Epoch=%d", ce.Epoch, ce.Checkpoint.Epoch)
			}
			if err := sinkB.Flush(); err != nil {
				t.Fatal(err)
			}

			// The checkpoint must round-trip like a real on-disk snapshot.
			var cpb bytes.Buffer
			if err := ce.Checkpoint.Encode(&cpb); err != nil {
				t.Fatal(err)
			}
			cp, err := ReadCheckpoint(&cpb)
			if err != nil {
				t.Fatal(err)
			}

			// Resume on a fresh runner ("another worker").
			regC, bufC, sinkC := constantClockRegistry()
			resumed := cfg
			resumed.Telemetry = regC
			rC, err := New(resumed)
			if err != nil {
				t.Fatal(err)
			}
			if err := rC.Restore(cp); err != nil {
				t.Fatal(err)
			}
			resC, err := rC.RunContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if err := sinkC.Flush(); err != nil {
				t.Fatal(err)
			}

			// The canceled prefix may hold more records than the stitched
			// boundary (the epoch record of the stopping epoch is emitted
			// before the CancelError returns) — but prefix+suffix must be
			// exactly the uninterrupted stream.
			stitched := append(append([]byte(nil), bufB.Bytes()...), bufC.Bytes()...)
			if !bytes.Equal(stitched, bufA.Bytes()) {
				t.Fatalf("stitched stream differs from uninterrupted run (%d vs %d bytes)", len(stitched), len(bufA.Bytes()))
			}
			if !reflect.DeepEqual(resA, resC) {
				t.Errorf("resumed result differs from uninterrupted result")
			}
		})
	}
}

// sinkFunc adapts a callback into a telemetry sink that observes records.
type sinkFunc func()

func (f sinkFunc) Emit(*telemetry.Record) error { f(); return nil }
func (f sinkFunc) Flush() error                 { return nil }

// TestRunContextPreCanceled covers the immediate paths: an already-canceled
// context never starts the run, and cancellation during the θ-profiling
// pass reports no checkpoint.
func TestRunContextPreCanceled(t *testing.T) {
	cfg := telemetryTestConfig(t, core.AllOn)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = r.RunContext(ctx)
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("pre-canceled run returned %v, want *CancelError", err)
	}
	if ce.Checkpoint != nil || ce.Epoch != -1 {
		t.Errorf("pre-canceled run reported state: epoch=%d checkpoint=%v", ce.Epoch, ce.Checkpoint != nil)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("plain cancel should satisfy errors.Is(err, context.Canceled): %v", err)
	}

	// Profiling-pass cancellation (white-box: drive profileTheta with a
	// canceled run context directly, since RunContext's entry check would
	// otherwise win the race deterministically).
	pr, err := New(telemetryTestConfig(t, core.PracT))
	if err != nil {
		t.Fatal(err)
	}
	pctx, pcancel := context.WithCancel(context.Background())
	pcancel()
	pr.runCtx = pctx
	if _, err := pr.profileTheta(); !errors.As(err, &ce) {
		t.Fatalf("canceled profiling pass returned %v, want *CancelError", err)
	} else if ce.Checkpoint != nil {
		t.Error("profiling cancellation must not claim resumable state")
	}

	// A nil context behaves like Background.
	nr, err := New(telemetryTestConfig(t, core.AllOn))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nr.RunContext(nil); err != nil { //lint:ignore SA1012 deliberate nil-context robustness check
		t.Fatalf("nil context run failed: %v", err)
	}
}
