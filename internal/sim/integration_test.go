package sim

import (
	"math"
	"testing"

	"thermogater/internal/core"
)

// TestStaticPowerFeedback verifies the paper's Section 1 observation that
// regulator heat feeds back into static power: with on-chip regulators
// burning conversion loss (all-on), block temperatures and therefore
// leakage — and with it total chip power — end up above the off-chip
// baseline for the identical workload.
func TestStaticPowerFeedback(t *testing.T) {
	offchip := run(t, core.OffChip, "cholesky", nil)
	allon := run(t, core.AllOn, "cholesky", nil)
	if allon.AvgChipPowerW <= offchip.AvgChipPowerW {
		t.Errorf("all-on chip power %vW not above off-chip %vW: leakage feedback missing",
			allon.AvgChipPowerW, offchip.AvgChipPowerW)
	}
	// The effect is leakage-sized, not dynamic-sized.
	if allon.AvgChipPowerW > offchip.AvgChipPowerW*1.1 {
		t.Errorf("feedback %vW → %vW implausibly large",
			offchip.AvgChipPowerW, allon.AvgChipPowerW)
	}
}

// TestEpochTraceConsistency: the per-epoch trace must agree with the
// aggregated result.
func TestEpochTraceConsistency(t *testing.T) {
	res := run(t, core.OracT, "fft", func(c *Config) { c.TraceEpochs = true })
	if len(res.Trace) != res.Epochs {
		t.Fatalf("%d trace entries for %d measured epochs", len(res.Trace), res.Epochs)
	}
	var worstT, worstN float64
	for i, e := range res.Trace {
		if e.MaxTempC > res.MaxTempC+1e-9 {
			t.Errorf("epoch %d Tmax %v above run max %v", i, e.MaxTempC, res.MaxTempC)
		}
		if e.MaxNoisePct > res.MaxNoisePct+1e-9 {
			t.Errorf("epoch %d noise %v above run max %v", i, e.MaxNoisePct, res.MaxNoisePct)
		}
		if e.ActiveVRs < 16 || e.ActiveVRs > 96 {
			t.Errorf("epoch %d active count %d", i, e.ActiveVRs)
		}
		worstT = math.Max(worstT, e.MaxTempC)
		worstN = math.Max(worstN, e.MaxNoisePct)
	}
	// Epoch-end sampling can miss the exact intra-epoch peak, but not by
	// much.
	if res.MaxTempC-worstT > 1.0 {
		t.Errorf("trace peak %v far below run max %v", worstT, res.MaxTempC)
	}
	if res.MaxNoisePct-worstN > 1e-9 {
		t.Errorf("trace noise peak %v below run max %v", worstN, res.MaxNoisePct)
	}
}

// TestSampledNoiseBounded: the 200-sample metric can never exceed the
// exhaustive maximum, and for policies whose noise is sustained (OracT)
// it lands close to it.
func TestSampledNoiseBounded(t *testing.T) {
	for _, p := range []core.PolicyKind{core.AllOn, core.OracT, core.OracV} {
		res := run(t, p, "fft", nil)
		if res.SampledMaxNoisePct > res.MaxNoisePct+1e-9 {
			t.Errorf("%v: sampled %v above exhaustive %v", p, res.SampledMaxNoisePct, res.MaxNoisePct)
		}
		if res.SampledMaxNoisePct <= 0 {
			t.Errorf("%v: sampled max %v", p, res.SampledMaxNoisePct)
		}
	}
	oracT := run(t, core.OracT, "fft", nil)
	if oracT.SampledMaxNoisePct < 0.5*oracT.MaxNoisePct {
		t.Errorf("OracT sampled %v far below exhaustive %v; sustained noise should be caught",
			oracT.SampledMaxNoisePct, oracT.MaxNoisePct)
	}
}

// TestSeedStability: conclusions must not hinge on one random seed.
func TestSeedStability(t *testing.T) {
	var tmax []float64
	for _, seed := range []uint64{1, 7, 42} {
		res := run(t, core.OracT, "lu_ncb", func(c *Config) { c.Seed = seed })
		tmax = append(tmax, res.MaxTempC)
	}
	lo, hi := tmax[0], tmax[0]
	for _, v := range tmax[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo > 1.5 {
		t.Errorf("Tmax across seeds spans %v°C (%v): too seed-sensitive", hi-lo, tmax)
	}
}

// TestOffChipChipPowerStillTracked: even without on-chip regulation the
// workload power accounting works.
func TestOffChipChipPowerStillTracked(t *testing.T) {
	res := run(t, core.OffChip, "raytrace", nil)
	if res.AvgChipPowerW < 15 || res.AvgChipPowerW > 60 {
		t.Errorf("raytrace chip power %vW implausible", res.AvgChipPowerW)
	}
}

// TestPlossOrderingAcrossPolicies: all gating policies operating at n_on
// dissipate (nearly) the same conversion loss — location selection, not
// count, is what distinguishes them — and all save over all-on.
func TestPlossOrderingAcrossPolicies(t *testing.T) {
	allon := run(t, core.AllOn, "lu_ncb", nil)
	var gated []*Result
	for _, p := range []core.PolicyKind{core.Naive, core.OracT, core.OracV} {
		gated = append(gated, run(t, p, "lu_ncb", nil))
	}
	for _, g := range gated {
		if g.AvgPlossW >= allon.AvgPlossW {
			t.Errorf("%s loss %v not below all-on %v", g.Policy, g.AvgPlossW, allon.AvgPlossW)
		}
	}
	if d := math.Abs(gated[1].AvgPlossW - gated[2].AvgPlossW); d > 0.1 {
		t.Errorf("OracT and OracV losses differ by %vW; both enforce n_on", d)
	}
}
