package sim

import (
	"thermogater/internal/pdn"
	"thermogater/internal/telemetry"
)

// PhaseNames lists the six instrumented phases of one simulation epoch, in
// execution order. They appear as children of the per-epoch telemetry span
// and as *_ns fields of each "epoch" record.
//
//   - uarch:    advancing the activity simulator (the SNIPER substitute)
//   - power:    activity→power conversion with leakage feedback (McPAT)
//   - governor: the gating decision, including the emergency-oracle PDN
//     solves the oracular policies request through their callback
//   - vr:       applying the decision — legalisation, masks, per-VR loss
//   - thermal:  the RC-network transient step (HotSpot)
//   - pdn:      steady IR-drop and burst-transient noise evaluation
//     (VoltSpot)
var PhaseNames = []string{"uarch", "power", "governor", "vr", "thermal", "pdn"}

// instruments caches every telemetry handle the runner's hot loop touches,
// so instrumentation costs one pointer dereference per use instead of a
// map lookup. All handles are nil when telemetry is disabled; every method
// on them no-ops.
type instruments struct {
	reg *telemetry.Registry

	epochs           *telemetry.Counter
	substeps         *telemetry.Counter
	thermalSub       *telemetry.Counter
	pdnSteady        *telemetry.Counter
	pdnTransient     *telemetry.Counter
	overrides        *telemetry.Counter
	faultFired       *telemetry.Counter
	faultCleared     *telemetry.Counter
	sensorFallbacks  *telemetry.Counter
	traceGaps        *telemetry.Counter
	thermalOverrides *telemetry.Counter
	watchdogRetries  *telemetry.Counter
	checkpoints      *telemetry.Counter
	maskCacheHit     *telemetry.Counter
	maskCacheMiss    *telemetry.Counter
	maskCacheEvict   *telemetry.Counter
	epochWallMS      *telemetry.Histogram
	maxTempC         *telemetry.Gauge
	avgEta           *telemetry.Gauge
	emergencyFrac    *telemetry.Gauge
	prevThermalSub   int64
	prevPDNSteady    int64
	prevPDNTrans     int64
	prevMaskCache    pdn.CacheStats
}

// newInstruments registers the runner's metrics. Safe on a nil registry:
// the returned instruments carry nil handles throughout.
func newInstruments(reg *telemetry.Registry) *instruments {
	return &instruments{
		reg:              reg,
		epochs:           reg.Counter("sim_epochs_total"),
		substeps:         reg.Counter("sim_substeps_total"),
		thermalSub:       reg.Counter("thermal_euler_substeps_total"),
		pdnSteady:        reg.Counter("pdn_solves_total", telemetry.L("kind", "steady")),
		pdnTransient:     reg.Counter("pdn_solves_total", telemetry.L("kind", "transient")),
		overrides:        reg.Counter("governor_emergency_overrides_total"),
		faultFired:       reg.Counter("fault_events_total", telemetry.L("kind", "fired")),
		faultCleared:     reg.Counter("fault_events_total", telemetry.L("kind", "cleared")),
		sensorFallbacks:  reg.Counter("sensor_fallbacks_total"),
		traceGaps:        reg.Counter("trace_gap_frames_total"),
		thermalOverrides: reg.Counter("governor_thermal_overrides_total"),
		watchdogRetries:  reg.Counter("thermal_watchdog_retries_total"),
		checkpoints:      reg.Counter("checkpoints_written_total"),
		maskCacheHit:     reg.Counter("pdn_mask_cache_total", telemetry.L("kind", "hit")),
		maskCacheMiss:    reg.Counter("pdn_mask_cache_total", telemetry.L("kind", "miss")),
		maskCacheEvict:   reg.Counter("pdn_mask_cache_total", telemetry.L("kind", "evict")),
		epochWallMS:      reg.Histogram("epoch_wall_ms", []float64{0.5, 1, 2, 5, 10, 25, 50, 100}),
		maxTempC:         reg.Gauge("run_max_temp_c"),
		avgEta:           reg.Gauge("run_avg_eta"),
		emergencyFrac:    reg.Gauge("run_emergency_frac"),
	}
}

// enabled reports whether any telemetry is attached.
func (in *instruments) enabled() bool { return in.reg.Enabled() }

// syncBaselines aligns the delta baselines with the runner's cumulative
// solver counters, so work done before the measured loop (e.g. the
// θ-profiling pass) is not attributed to the first epoch.
func (in *instruments) syncBaselines(r *Runner) {
	if !in.enabled() {
		return
	}
	in.prevThermalSub = r.tm.Substeps()
	in.prevPDNSteady = r.pdnSteadySolves
	in.prevPDNTrans = r.pdnTransientSolves
	in.prevMaskCache = r.grid.CacheStats()
}

// epochStats carries the loop-local figures the per-epoch record reports.
type epochStats struct {
	epoch      int
	timeMS     float64
	measuring  bool
	activeVRs  int
	chipPowerW float64
	plossW     float64
	maxTempC   float64
	gradientC  float64
	noisePct   float64
	overrides  int
}

// observeEpoch folds one finished epoch span into the counters and streams
// the "epoch" record. The span must already be ended so its totals cover
// exactly this epoch.
//
//perf:alloc record emission boxes and concatenates; it runs only on instrumented runs, which trade allocation-freedom for observability
func (in *instruments) observeEpoch(r *Runner, ep *telemetry.Span, st epochStats) error {
	if !in.enabled() {
		return nil
	}
	in.epochs.Inc()
	in.substeps.Add(float64(r.stepsPerEpoch))
	thermalSub := r.tm.Substeps()
	dThermal := thermalSub - in.prevThermalSub
	in.prevThermalSub = thermalSub
	in.thermalSub.Add(float64(dThermal))
	dSteady := r.pdnSteadySolves - in.prevPDNSteady
	in.prevPDNSteady = r.pdnSteadySolves
	in.pdnSteady.Add(float64(dSteady))
	dTrans := r.pdnTransientSolves - in.prevPDNTrans
	in.prevPDNTrans = r.pdnTransientSolves
	in.pdnTransient.Add(float64(dTrans))
	cs := r.grid.CacheStats()
	dHit := int64(cs.Hits - in.prevMaskCache.Hits)
	dMiss := int64(cs.Misses - in.prevMaskCache.Misses)
	dEvict := int64(cs.Evictions - in.prevMaskCache.Evictions)
	in.prevMaskCache = cs
	in.maskCacheHit.Add(float64(dHit))
	in.maskCacheMiss.Add(float64(dMiss))
	in.maskCacheEvict.Add(float64(dEvict))
	in.overrides.Add(float64(st.overrides))
	in.epochWallMS.Observe(float64(ep.Total().Nanoseconds()) / 1e6)

	rec := telemetry.NewRecord("epoch").
		Add("epoch", st.epoch).
		Add("time_ms", st.timeMS).
		Add("measuring", st.measuring).
		Add("wall_ns", ep.Total().Nanoseconds())
	for _, phase := range PhaseNames {
		rec.Add(phase+"_ns", ep.Child(phase).Total().Nanoseconds())
	}
	// The mask-cache tallies go to the pdn_mask_cache_total counters but
	// deliberately NOT into this record: cache warmth is process state,
	// not simulation state (a resumed run starts cold), and the record
	// stream must be byte-identical across resume and worker counts.
	rec.Add("thermal_substeps", dThermal).
		Add("pdn_steady_solves", dSteady).
		Add("pdn_transient_solves", dTrans).
		Add("active_vrs", st.activeVRs).
		Add("chip_power_w", st.chipPowerW).
		Add("ploss_w", st.plossW).
		Add("max_temp_c", st.maxTempC).
		Add("gradient_c", st.gradientC).
		Add("max_noise_pct", st.noisePct).
		Add("emergency_overrides", st.overrides)
	return in.reg.Emit(rec)
}

// observeRun records the run-level aggregates once the result is final.
func (in *instruments) observeRun(res *Result) {
	if !in.enabled() {
		return
	}
	in.maxTempC.Set(res.MaxTempC)
	in.avgEta.Set(res.AvgEta)
	in.emergencyFrac.Set(res.EmergencyFrac)
}
