package sim

import (
	"math"

	"thermogater/internal/core"
	"thermogater/internal/fault"
	"thermogater/internal/floorplan"
	"thermogater/internal/invariant"
	"thermogater/internal/power"
	"thermogater/internal/uarch"
)

// This file holds the Runner's fault-injection hooks: how an armed
// fault.Injector reshapes the activity trace, the sensor readings and the
// regulator gating path. Every hook is reached only when cfg.Faults is
// non-nil and non-empty, so the healthy path is untouched (tgbench records
// the overhead of the nil checks as FaultOverheadPct).

// advanceFaults moves the injector to the given epoch and refreshes the
// per-domain degradation caches.
func (r *Runner) advanceFaults(e int, res *Result) {
	fired, cleared := r.flt.Advance(e)
	if fired > 0 {
		res.FaultEvents += fired
		r.ins.faultFired.Add(float64(fired))
	}
	if cleared > 0 {
		r.ins.faultCleared.Add(float64(cleared))
	}
	r.refreshFaultDomains()
}

// refreshFaultDomains recomputes, per domain, how many regulators remain
// in service, the worst per-phase derating among them, and whether the
// domain needs the degraded gating path at all.
func (r *Runner) refreshFaultDomains() {
	for d := range r.chip.Domains {
		avail := 0
		minFrac := 1.0
		dirty := false
		for _, rid := range r.chip.Domains[d].Regulators {
			switch r.flt.VRStatusOf(rid) {
			case fault.VRFailedOff:
				dirty = true
				continue
			case fault.VRFailedOn:
				dirty = true
			}
			avail++
			if f := r.flt.IMaxFrac(rid); f < minFrac {
				minFrac = f
			}
			if r.flt.IMaxFrac(rid) < 1 || r.flt.LossMult(rid) > 1 {
				dirty = true
			}
		}
		r.fltAvailN[d] = avail
		r.fltMinFrac[d] = minFrac
		r.fltDomDirty[d] = dirty
	}
}

// faultClass maps the injector's per-unit status onto the sanitizer's
// gating-legality vocabulary; VRHealthy when no injector is armed.
func (r *Runner) faultClass(rid int) invariant.VRFaultClass {
	if r.flt == nil {
		return invariant.VRHealthy
	}
	switch r.flt.VRStatusOf(rid) {
	case fault.VRFailedOff:
		return invariant.VRStuckOff
	case fault.VRFailedOn:
		return invariant.VRStuckOn
	}
	if r.flt.IMaxFrac(rid) < 1 || r.flt.LossMult(rid) > 1 {
		return invariant.VRDerated
	}
	return invariant.VRHealthy
}

// applyActivityFaults rewrites the epoch's activity frames in place: a
// gapped core's blocks freeze at their last delivered activity (and its
// bursts vanish — no trace, no recorded bursts); a spiking core's activity
// is scaled up and clamped. Cores delivering normally refresh the
// last-good snapshot the next gap will freeze to.
func (r *Runner) applyActivityFaults(frames []uarch.Frame, res *Result) {
	for c := 0; c < floorplan.NumCores; c++ {
		blocks := r.chip.Domains[c].Blocks
		if r.flt.TraceGap(c) {
			for fi := range frames {
				f := &frames[fi]
				for _, bid := range blocks {
					f.Activity[bid] = r.faultActGood[bid]
				}
				kept := f.Bursts[:0]
				for _, b := range f.Bursts {
					if b.Core != c {
						//perf:alloc in-place filter over f.Bursts[:0]; never exceeds the original length
						kept = append(kept, b) //lint:ignore capgrow in-place filter over f.Bursts[:0]; never exceeds the original length
					}
				}
				f.Bursts = kept
				res.TraceGapFrames++
				r.ins.traceGaps.Inc()
			}
			continue
		}
		if amp, ok := r.flt.TraceSpike(c); ok {
			for fi := range frames {
				f := &frames[fi]
				for _, bid := range blocks {
					v := f.Activity[bid] * (1 + amp)
					if v > 1 {
						v = 1
					}
					f.Activity[bid] = v
				}
			}
		}
		last := frames[len(frames)-1]
		for _, bid := range blocks {
			r.faultActGood[bid] = last.Activity[bid]
		}
	}
}

// resolveDecisionFaults re-solves each degraded domain's phase count over
// the surviving regulators: the governor decided against the full network,
// so its count is capped at the survivors and raised to the survivors'
// efficiency-optimal count when the anticipated demand needs it. Demand
// beyond the survivors' combined capacity is recorded as a violation — the
// substep legaliser will spill what it can.
func (r *Runner) resolveDecisionFaults(dec *core.Decision, anticipated []float64, measuring bool, res *Result) {
	for d := range dec.Domains {
		if !r.fltDomDirty[d] {
			continue
		}
		dd := &dec.Domains[d]
		avail := r.fltAvailN[d]
		if dd.Count > avail {
			dd.Count = avail
		}
		if avail == 0 {
			continue
		}
		base, over := r.nets[d].NOnAvailable(anticipated[d], avail)
		if dd.Count < base {
			dd.Count = base
		}
		if over && measuring {
			res.DemandViolations++
		}
	}
}

// applyDomainFaulted is the degraded twin of the healthy per-domain gating
// block in runMeasured: it legalises the count against the surviving,
// possibly derated regulators, never activates a stuck-off unit, always
// activates a stuck-on unit (the mask reflects electrical reality), and
// scales each active unit's conversion loss by its derating multiplier.
// It returns this substep's total loss, output power and efficiency.
func (r *Runner) applyDomainFaulted(d int, dd *core.DomainDecision, measuring bool, res *Result, epochVRLoss []float64) (substepPloss, poutW, eta float64) {
	dom := &r.chip.Domains[d]
	demand := r.domainCurrent[d]
	avail := r.fltAvailN[d]
	mask := r.masks[d]
	for i := range mask {
		mask[i] = false
	}

	count := dd.Count
	if r.cfg.Policy != core.OffChip && avail > 0 {
		if count > avail {
			count = avail
		}
		// Legal minimum over the survivors at the derated per-phase limit.
		imaxD := r.nets[d].Design().IMax * r.fltMinFrac[d]
		if demand > 0 && imaxD > 0 {
			need := int(math.Ceil(demand / imaxD))
			if need > avail {
				if measuring {
					res.DemandViolations++
				}
				need = avail
			}
			if count < need {
				count = need
			}
		}
		if count < 1 {
			count = 1
		}
	}
	if avail == 0 {
		count = 0
		if demand > 0 && measuring {
			res.DemandViolations++
		}
	}

	// Mask: the first count in-service regulators of the ranking, plus
	// every stuck-on regulator regardless of the decision.
	applied := 0
	for _, li := range dd.Ranking {
		if applied >= count {
			break
		}
		if r.flt.VRStatusOf(dom.Regulators[li]) == fault.VRFailedOff {
			continue
		}
		mask[li] = true
		applied++
	}
	active := applied
	for li, rid := range dom.Regulators {
		if r.flt.VRStatusOf(rid) == fault.VRFailedOn && !mask[li] {
			mask[li] = true
			active++
		}
	}
	if active == 0 {
		return 0, 0, 0
	}

	loss := r.nets[d].PerVRLoss(demand, active)
	share := demand / float64(active)
	if share < 0 {
		share = 0
	}
	var lossTotal float64
	for li, on := range mask {
		if !on {
			continue
		}
		rid := dom.Regulators[li]
		l := loss * r.flt.LossMult(rid)
		r.vrPower[rid] = l
		r.vrCurrent[rid] = share
		epochVRLoss[rid] += l
		lossTotal += l
	}
	poutW = demand * power.Vdd
	if poutW > 0 && poutW+lossTotal > 0 {
		eta = poutW / (poutW + lossTotal)
	}
	return lossTotal, poutW, eta
}
