package sim

import (
	"bytes"
	"testing"
	"time"

	"thermogater/internal/core"
	"thermogater/internal/telemetry"
)

// runJSONL executes one instrumented run and returns the telemetry JSONL
// stream. A fake monotonic clock removes wall-time from the records so the
// stream depends only on the simulation itself.
func runJSONL(t *testing.T, cfg Config) ([]byte, *Result) {
	t.Helper()
	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	tick := time.Unix(0, 0)
	reg.SetClock(func() time.Time {
		tick = tick.Add(time.Microsecond)
		return tick
	})
	sink := telemetry.NewJSONLSink(&buf)
	reg.AddSink(sink)
	cfg.Telemetry = reg

	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestRunDeterminismJSONL locks in bit-exact reproducibility: two runs
// from the same seed must emit byte-identical telemetry JSONL and identical
// summary metrics. Every source of nondeterminism — map iteration,
// goroutine scheduling, uninitialized scratch reuse — would show up here.
func TestRunDeterminismJSONL(t *testing.T) {
	cfg := telemetryTestConfig(t, core.PracVT)
	cfg.TraceEpochs = true

	a, resA := runJSONL(t, cfg)
	b, resB := runJSONL(t, cfg)

	if len(a) == 0 {
		t.Fatal("first run emitted no telemetry")
	}
	if !bytes.Equal(a, b) {
		// Find the first differing line for a useful failure message.
		la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := 0; i < len(la) && i < len(lb); i++ {
			if !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("telemetry diverges at line %d:\n  run A: %s\n  run B: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("telemetry streams differ in length: %d vs %d bytes", len(a), len(b))
	}

	if resA.MaxTempC != resB.MaxTempC || resA.MaxNoisePct != resB.MaxNoisePct ||
		resA.AvgPlossW != resB.AvgPlossW || resA.AvgEta != resB.AvgEta {
		t.Errorf("summary metrics differ between identical runs:\n  A: Tmax=%v noise=%v ploss=%v eta=%v\n  B: Tmax=%v noise=%v ploss=%v eta=%v",
			resA.MaxTempC, resA.MaxNoisePct, resA.AvgPlossW, resA.AvgEta,
			resB.MaxTempC, resB.MaxNoisePct, resB.AvgPlossW, resB.AvgEta)
	}
}
