package sim

import (
	"math"
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/fault"
	"thermogater/internal/pdn"
	"thermogater/internal/workload"
)

// run executes a short simulation for tests.
func run(t *testing.T, policy core.PolicyKind, bench string, mutate func(*Config)) *Result {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(policy, p)
	cfg.DurationMS = 200
	cfg.WarmupEpochs = 25
	cfg.ProfilingEpochs = 80
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	p, _ := workload.ByName("fft")
	good := DefaultConfig(core.AllOn, p)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Benchmark.DurationMS = 0 },
		func(c *Config) { c.EpochMS = 0 },
		func(c *Config) { c.SubstepMS = 0 },
		func(c *Config) { c.SubstepMS = 2 * c.EpochMS },
		func(c *Config) { c.SubstepMS = 0.3 }, // not a divisor of 1ms
		func(c *Config) { c.DurationMS = -1 },
		func(c *Config) { c.WarmupEpochs = -1 },
		func(c *Config) { c.Thermal.SinkResKPerW = 0 },
		func(c *Config) { c.PDN.R0Ohm = 0 },
		func(c *Config) { c.Governor.WMAWindow = 0 },
		// NaN and Inf must be rejected everywhere a positive/bounded float
		// is expected: NaN fails every ordered comparison, so naive
		// `v <= 0` guards silently accept it and poison the whole run.
		func(c *Config) { c.EpochMS = math.NaN() },
		func(c *Config) { c.EpochMS = math.Inf(1) },
		func(c *Config) { c.SubstepMS = math.NaN() },
		func(c *Config) { c.SensorNoiseC = math.NaN() },
		func(c *Config) { c.SensorNoiseC = math.Inf(1) },
		func(c *Config) { c.SensorNoiseC = -0.1 },
		func(c *Config) { c.Thermal.SinkResKPerW = math.NaN() },
		func(c *Config) { c.Thermal.SinkResKPerW = math.Inf(1) },
		func(c *Config) { c.Thermal.AmbientC = math.NaN() },
		func(c *Config) { c.Thermal.MaxJunctionC = math.Inf(1) },
		func(c *Config) { c.PDN.R0Ohm = math.NaN() },
		func(c *Config) { c.PDN.R0Ohm = math.Inf(1) },
		func(c *Config) { c.PDN.RippleSigma = math.NaN() },
		func(c *Config) { c.PDN.VddV = math.NaN() },
		func(c *Config) { c.Governor.EpochMS = math.NaN() },
		func(c *Config) { c.Governor.TrendGain = math.NaN() },
		func(c *Config) { c.Governor.EmergencyAccuracy = math.NaN() },
		func(c *Config) { c.Governor.ThermalEmergencyC = math.NaN() },
		func(c *Config) { c.Governor.ThermalEmergencyC = math.Inf(1) },
		func(c *Config) { c.Checkpoint.EveryEpochs = -1 },
		func(c *Config) { c.Checkpoint = CheckpointConfig{EveryEpochs: 5} }, // period without a sink
		func(c *Config) {
			c.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.VRStuckOff, Epoch: -1}}}
		},
		func(c *Config) {
			c.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.SensorNoise, Unit: 0, Value: math.NaN()}}}
		},
	}
	for i, mut := range muts {
		c := DefaultConfig(core.AllOn, p)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	p, _ := workload.ByName("fft")
	cfg := DefaultConfig(core.AllOn, p)
	cfg.EpochMS = 0
	if _, err := New(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunDeterminism(t *testing.T) {
	a := run(t, core.OracT, "lu_ncb", nil)
	b := run(t, core.OracT, "lu_ncb", nil)
	if a.MaxTempC != b.MaxTempC || a.MaxGradientC != b.MaxGradientC ||
		a.MaxNoisePct != b.MaxNoisePct || a.AvgPlossW != b.AvgPlossW {
		t.Errorf("identical configs diverged: %+v vs %+v", a, b)
	}
	c := run(t, core.OracT, "lu_ncb", func(cfg *Config) { cfg.Seed = 99 })
	if a.MaxTempC == c.MaxTempC && a.MaxNoisePct == c.MaxNoisePct {
		t.Error("different seeds produced identical results")
	}
}

// TestPolicyLadderThermal reproduces the paper's central thermal ordering
// (Figs. 9 and 10) on a single benchmark: off-chip coolest; OracT below
// all-on; OracV clearly the hottest gated policy; OracVT thermally
// equivalent to OracT; PracT within a degree of OracT.
func TestPolicyLadderThermal(t *testing.T) {
	offchip := run(t, core.OffChip, "lu_ncb", nil)
	allon := run(t, core.AllOn, "lu_ncb", nil)
	oracT := run(t, core.OracT, "lu_ncb", nil)
	oracV := run(t, core.OracV, "lu_ncb", nil)
	oracVT := run(t, core.OracVT, "lu_ncb", nil)
	pracT := run(t, core.PracT, "lu_ncb", nil)

	if offchip.MaxTempC >= allon.MaxTempC {
		t.Errorf("off-chip Tmax %v not below all-on %v", offchip.MaxTempC, allon.MaxTempC)
	}
	if offchip.MaxGradientC >= allon.MaxGradientC {
		t.Errorf("off-chip gradient %v not below all-on %v", offchip.MaxGradientC, allon.MaxGradientC)
	}
	if oracT.MaxTempC >= allon.MaxTempC {
		t.Errorf("OracT Tmax %v not below all-on %v", oracT.MaxTempC, allon.MaxTempC)
	}
	if oracT.MaxGradientC >= allon.MaxGradientC {
		t.Errorf("OracT gradient %v not below all-on %v", oracT.MaxGradientC, allon.MaxGradientC)
	}
	if oracV.MaxTempC <= allon.MaxTempC {
		t.Errorf("OracV Tmax %v not above all-on %v", oracV.MaxTempC, allon.MaxTempC)
	}
	if oracV.MaxTempC <= oracT.MaxTempC {
		t.Errorf("OracV Tmax %v not above OracT %v", oracV.MaxTempC, oracT.MaxTempC)
	}
	// lu_ncb has no voltage emergencies, so OracVT degenerates to OracT
	// exactly (Section 6.2.4).
	if math.Abs(oracVT.MaxTempC-oracT.MaxTempC) > 0.05 {
		t.Errorf("OracVT Tmax %v differs from OracT %v on an emergency-free benchmark",
			oracVT.MaxTempC, oracT.MaxTempC)
	}
	// PracT tracks OracT closely (paper: +0.5°C on full-length runs; short
	// test windows are noisier, so allow up to 2°C here).
	if d := pracT.MaxTempC - oracT.MaxTempC; d < -0.3 || d > 2.0 {
		t.Errorf("PracT Tmax %v too far from OracT %v", pracT.MaxTempC, oracT.MaxTempC)
	}
}

// TestPolicyLadderNoise reproduces the Fig. 11 ordering: all-on is the
// best case; OracT sharply worse; OracV between; the VT variants pull the
// noise back toward all-on.
func TestPolicyLadderNoise(t *testing.T) {
	allon := run(t, core.AllOn, "barnes", nil)
	oracT := run(t, core.OracT, "barnes", nil)
	oracV := run(t, core.OracV, "barnes", nil)
	oracVT := run(t, core.OracVT, "barnes", nil)

	if oracT.MaxNoisePct <= allon.MaxNoisePct {
		t.Errorf("OracT noise %v not above all-on %v", oracT.MaxNoisePct, allon.MaxNoisePct)
	}
	if oracV.MaxNoisePct >= oracT.MaxNoisePct {
		t.Errorf("OracV noise %v not below OracT %v", oracV.MaxNoisePct, oracT.MaxNoisePct)
	}
	// The paper reports OracT noise ≈ +79% over all-on; require at least
	// a +40% penalty so the effect stays strongly visible.
	if oracT.MaxNoisePct < 1.4*allon.MaxNoisePct {
		t.Errorf("OracT noise %v less than 1.4× all-on %v", oracT.MaxNoisePct, allon.MaxNoisePct)
	}
	// OracVT suppresses emergencies relative to OracT.
	if oracVT.EmergencyFrac >= oracT.EmergencyFrac {
		t.Errorf("OracVT emergencies %v not below OracT %v", oracVT.EmergencyFrac, oracT.EmergencyFrac)
	}
	if oracT.EmergencyFrac == 0 {
		t.Error("barnes under OracT must show voltage emergencies (Table 2)")
	}
	if allon.EmergencyFrac > oracT.EmergencyFrac {
		t.Error("all-on emergencies exceed OracT's")
	}
}

func TestGatingSustainsPeakEfficiency(t *testing.T) {
	allon := run(t, core.AllOn, "raytrace", nil)
	oracT := run(t, core.OracT, "raytrace", nil)
	peak := oracT.AvgEta
	if peak < 0.885 || peak > 0.901 {
		t.Errorf("OracT average efficiency %v not near the 0.90 peak", peak)
	}
	if allon.AvgEta >= oracT.AvgEta {
		t.Errorf("all-on efficiency %v not below gated %v at light load", allon.AvgEta, oracT.AvgEta)
	}
	// Fig. 7: gating saves substantial conversion loss on a light workload.
	saving := 1 - oracT.AvgPlossW/allon.AvgPlossW
	if saving < 0.30 {
		t.Errorf("raytrace gating saving %v, expected >30%% (paper: 49.8%%)", saving)
	}
}

func TestOffChipResult(t *testing.T) {
	res := run(t, core.OffChip, "fft", nil)
	if res.NoiseModeled {
		t.Error("off-chip run claims modeled noise")
	}
	if res.AvgPlossW != 0 || res.AvgEta != 0 {
		t.Errorf("off-chip run has conversion loss %v / eta %v", res.AvgPlossW, res.AvgEta)
	}
	for i, f := range res.VROnFrac {
		if f != 0 {
			t.Fatalf("off-chip run turned regulator %d on", i)
		}
	}
}

func TestFig13ActivityPattern(t *testing.T) {
	// Fig. 13: OracT keeps memory-side regulators on more than logic-side;
	// OracV does the opposite.
	check := func(res *Result, wantMemHigher bool) {
		t.Helper()
		p, _ := workload.ByName("lu_ncb")
		cfg := DefaultConfig(core.OracT, p)
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		chip := r.Chip()
		var logicSum, memSum float64
		var logicN, memN int
		for _, domID := range chip.CoreDomains() {
			logic, memory, err := chip.LogicSideRegulators(domID)
			if err != nil {
				t.Fatal(err)
			}
			for _, rid := range logic {
				logicSum += res.VROnFrac[rid]
				logicN++
			}
			for _, rid := range memory {
				memSum += res.VROnFrac[rid]
				memN++
			}
		}
		logicAvg := logicSum / float64(logicN)
		memAvg := memSum / float64(memN)
		if wantMemHigher && memAvg <= logicAvg {
			t.Errorf("memory-side activity %v not above logic-side %v", memAvg, logicAvg)
		}
		if !wantMemHigher && memAvg >= logicAvg {
			t.Errorf("logic-side activity %v not above memory-side %v", logicAvg, memAvg)
		}
	}
	check(run(t, core.OracT, "lu_ncb", nil), true)
	check(run(t, core.OracV, "lu_ncb", nil), false)
}

func TestFig6Trace(t *testing.T) {
	res := run(t, core.OracT, "lu_ncb", func(c *Config) { c.TraceEpochs = true })
	if len(res.Trace) == 0 {
		t.Fatal("no epoch trace collected")
	}
	// Active regulator count must track total power demand (Fig. 6):
	// positive correlation, and the count must actually vary.
	var mp, mc float64
	for _, e := range res.Trace {
		mp += e.TotalPowerW
		mc += float64(e.ActiveVRs)
	}
	mp /= float64(len(res.Trace))
	mc /= float64(len(res.Trace))
	var cov, vp, vc float64
	minC, maxC := res.Trace[0].ActiveVRs, res.Trace[0].ActiveVRs
	for _, e := range res.Trace {
		dp := e.TotalPowerW - mp
		dc := float64(e.ActiveVRs) - mc
		cov += dp * dc
		vp += dp * dp
		vc += dc * dc
		if e.ActiveVRs < minC {
			minC = e.ActiveVRs
		}
		if e.ActiveVRs > maxC {
			maxC = e.ActiveVRs
		}
	}
	if maxC == minC {
		t.Fatal("active regulator count never changed")
	}
	corr := cov / math.Sqrt(vp*vc)
	if corr < 0.6 {
		t.Errorf("power/active-count correlation = %v, want > 0.6", corr)
	}
	if maxC > 96 || minC < 16 {
		t.Errorf("active count range [%d, %d] outside [16, 96]", minC, maxC)
	}
}

func TestFig8VRTrace(t *testing.T) {
	res := run(t, core.Naive, "lu_ncb", func(c *Config) { c.TrackVR = 4 })
	if len(res.VRTrace) == 0 {
		t.Fatal("no VR trace collected")
	}
	onSeen, offSeen := false, false
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range res.VRTrace {
		if s.On {
			onSeen = true
		} else {
			offSeen = true
		}
		lo = math.Min(lo, s.TempC)
		hi = math.Max(hi, s.TempC)
	}
	if !onSeen || !offSeen {
		t.Error("tracked regulator never toggled under Naive gating")
	}
	// Fig. 8 shows the regulator temperature changing by >5°C through
	// gating cycles; require at least a visible swing.
	if hi-lo < 2 {
		t.Errorf("tracked VR temperature swing %v°C too small", hi-lo)
	}
}

func TestHeatMapCapture(t *testing.T) {
	res := run(t, core.AllOn, "cholesky", func(c *Config) { c.HeatMapRes = 42 })
	if res.HeatMap == nil {
		t.Fatal("no heat map captured")
	}
	if len(res.HeatMap) != 42 || len(res.HeatMap[0]) != 42 {
		t.Fatalf("heat map is %dx%d", len(res.HeatMap), len(res.HeatMap[0]))
	}
	var hi float64
	for _, row := range res.HeatMap {
		for _, v := range row {
			if v > hi {
				hi = v
			}
		}
	}
	if math.Abs(hi-res.MaxTempC) > 3 {
		t.Errorf("heat map peak %v far from run Tmax %v", hi, res.MaxTempC)
	}
}

func TestWorstNoiseSnapshotUsable(t *testing.T) {
	res := run(t, core.OracT, "fft", nil)
	ws := res.WorstNoise
	if ws == nil {
		t.Fatal("no worst-noise snapshot")
	}
	p, _ := workload.ByName("fft")
	cfg := DefaultConfig(core.OracT, p)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := pdn.NewNetwork(r.Chip(), cfg.PDN)
	if err != nil {
		t.Fatal(err)
	}
	win, err := grid.TransientWindow(ws.Domain, ws.BlockIndex, ws.BlockCurrent, ws.Active, ws.Bursts, 2000, 4.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(win) != 2000 {
		t.Fatalf("window has %d cycles", len(win))
	}
}

func TestPracticalThetaQuality(t *testing.T) {
	res := run(t, core.PracT, "lu_ncb", nil)
	// The paper calibrates Eqn. 2 to R² ≈ 0.99; the reproduction's
	// first-order regulator nodes are nearly linear, so the fit must be
	// strong.
	if res.ThetaMeanR2 < 0.85 {
		t.Errorf("theta fit R² = %v, want ≥ 0.85", res.ThetaMeanR2)
	}
}

func TestPracVTSuppressesEmergencies(t *testing.T) {
	pracT := run(t, core.PracT, "barnes", nil)
	pracVT := run(t, core.PracVT, "barnes", nil)
	if pracT.EmergencyFrac == 0 {
		t.Fatal("barnes under PracT shows no emergencies to suppress")
	}
	if pracVT.EmergencyFrac >= pracT.EmergencyFrac {
		t.Errorf("PracVT emergencies %v not below PracT %v", pracVT.EmergencyFrac, pracT.EmergencyFrac)
	}
	if pracVT.EmergencyOverrides == 0 {
		t.Error("PracVT never overrode a domain to all-on")
	}
	// The efficiency cost of the overrides is negligible (paper: <0.1%
	// average, 0.5% worst case).
	if pracT.AvgEta-pracVT.AvgEta > 0.01 {
		t.Errorf("PracVT efficiency %v degraded too much vs PracT %v", pracVT.AvgEta, pracT.AvgEta)
	}
}

// TestDecisionPeriodInsensitivity reproduces footnote 5: shortening the
// gating decision period changes the outcome by less than ~1%.
func TestDecisionPeriodInsensitivity(t *testing.T) {
	base := run(t, core.OracT, "lu_ncb", nil)
	fast := run(t, core.OracT, "lu_ncb", func(c *Config) {
		c.EpochMS = 0.5
		c.SubstepMS = 0.1
		c.WarmupEpochs = 50 // same warm-up wall-clock
	})
	if rel := math.Abs(base.MaxTempC-fast.MaxTempC) / base.MaxTempC; rel > 0.01 {
		t.Errorf("halving the decision period moved Tmax by %.2f%%", rel*100)
	}
}

func TestRunShorterThanWarmupFails(t *testing.T) {
	p, _ := workload.ByName("fft")
	cfg := DefaultConfig(core.AllOn, p)
	cfg.DurationMS = 10
	cfg.WarmupEpochs = 50
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Error("run shorter than warm-up succeeded")
	}
}
