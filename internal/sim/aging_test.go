package sim

import (
	"math"
	"testing"

	"thermogater/internal/core"
)

// TestAgingDisabledByDefault keeps the aging machinery opt-in.
func TestAgingDisabledByDefault(t *testing.T) {
	res := run(t, core.OracT, "lu_ncb", nil)
	if res.MTTFYears != nil || res.MinMTTFYears != 0 || res.AgingImbalance != 0 {
		t.Error("aging metrics populated without TrackAging")
	}
}

// TestAgingTracksPolicyCharacter quantifies the Section 7 discussion:
// OracV pins the same logic-side regulators on continuously, so its wear
// is both more concentrated and faster at the weakest regulator than
// under all-on, which spreads the load across all 96 regulators.
func TestAgingTracksPolicyCharacter(t *testing.T) {
	withAging := func(c *Config) { c.TrackAging = true }
	allon := run(t, core.AllOn, "lu_ncb", withAging)
	oracV := run(t, core.OracV, "lu_ncb", withAging)
	oracT := run(t, core.OracT, "lu_ncb", withAging)

	if len(allon.MTTFYears) != 96 {
		t.Fatalf("MTTF for %d regulators", len(allon.MTTFYears))
	}
	if allon.MinMTTFYears <= 0 || math.IsInf(allon.MinMTTFYears, 1) {
		t.Fatalf("all-on MinMTTF = %v", allon.MinMTTFYears)
	}
	// All-on wears every regulator; gated policies leave some untouched
	// or lightly used, concentrating damage.
	if oracV.AgingImbalance <= allon.AgingImbalance {
		t.Errorf("OracV imbalance %v not above all-on %v", oracV.AgingImbalance, allon.AgingImbalance)
	}
	// OracV's pinned, hot, fully loaded logic regulators die first.
	if oracV.MinMTTFYears >= allon.MinMTTFYears {
		t.Errorf("OracV MinMTTF %v not below all-on %v", oracV.MinMTTFYears, allon.MinMTTFYears)
	}
	// OracT's highly utilised regulators sit in cool regions (the paper's
	// "this may balance out aging"): its weakest regulator outlives
	// OracV's.
	if oracT.MinMTTFYears <= oracV.MinMTTFYears {
		t.Errorf("OracT MinMTTF %v not above OracV %v", oracT.MinMTTFYears, oracV.MinMTTFYears)
	}
}

// TestAgingGatedRegulatorsLastLonger sanity-checks the stress model
// end to end: under off-chip gating no regulator ever carries current.
func TestAgingGatedRegulatorsLastLonger(t *testing.T) {
	res := run(t, core.OffChip, "raytrace", func(c *Config) { c.TrackAging = true })
	for i, y := range res.MTTFYears {
		if !math.IsInf(y, 1) {
			t.Fatalf("regulator %d aged (%v years) with off-chip regulation", i, y)
		}
	}
}
