package sim

import (
	"bytes"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"thermogater/internal/core"
)

// parallelTestConfig is a run that exercises every fan-out surface of the
// pipeline: a practical policy (oracle PDN solves in the governor phase),
// aging, sensor noise and an armed fault schedule (dead domains and
// per-substep mask changes in the deferred PDN phase).
func parallelTestConfig(t *testing.T, workers int) Config {
	t.Helper()
	cfg := checkpointTestConfig(t)
	cfg.Workers = workers
	return cfg
}

// TestParallelResultEquality: the worker-pool pipeline must produce a
// Result deeply equal to sequential execution — same noise maxima, same
// emergency time, same wear, down to the last bit.
func TestParallelResultEquality(t *testing.T) {
	run := func(workers int) *Result {
		r, err := New(parallelTestConfig(t, workers))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(0)
	for _, w := range []int{2, 4, 8} {
		par := run(w)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d result differs from sequential:\n  seq: %+v\n  par: %+v", w, seq, par)
		}
	}
}

// TestParallelTelemetryByteIdentical: under the frozen clock the streamed
// JSONL depends only on simulation state, and the deterministic-reduction
// contract says that state is independent of the worker count. This is
// the oracle docs/PERFORMANCE.md points at.
func TestParallelTelemetryByteIdentical(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Log("GOMAXPROCS=1: workers interleave rather than run in parallel; the determinism contract is still exercised")
	}
	stream := func(workers int) []byte {
		reg, buf, sink := constantClockRegistry()
		cfg := parallelTestConfig(t, workers)
		cfg.Telemetry = reg
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := stream(0)
	if len(seq) == 0 {
		t.Fatal("sequential run emitted no telemetry")
	}
	par := stream(4)
	if !bytes.Equal(seq, par) {
		ls, lp := bytes.Split(seq, []byte("\n")), bytes.Split(par, []byte("\n"))
		for i := 0; i < len(ls) && i < len(lp); i++ {
			if !bytes.Equal(ls[i], lp[i]) {
				t.Fatalf("telemetry diverges at line %d:\n  workers=0: %s\n  workers=4: %s", i+1, ls[i], lp[i])
			}
		}
		t.Fatalf("telemetry streams differ in length: %d vs %d bytes", len(seq), len(par))
	}
}

// TestParallelCheckpointResume: a run interrupted under the parallel
// pipeline and resumed sequentially (and vice versa) must converge on the
// uninterrupted sequential result — checkpoints are mode-agnostic.
func TestParallelCheckpointResume(t *testing.T) {
	reference := func() *Result {
		r, err := New(parallelTestConfig(t, 0))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	interrupt := func(workers int) *Checkpoint {
		var cpBytes bytes.Buffer
		cfg := parallelTestConfig(t, workers)
		cfg.Checkpoint = CheckpointConfig{
			EveryEpochs: 9,
			Sink: func(cp *Checkpoint) error {
				cpBytes.Reset()
				if err := cp.Encode(&cpBytes); err != nil {
					return err
				}
				return errInterrupt
			},
		}
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(); !errors.Is(err, errInterrupt) {
			t.Fatalf("workers=%d interrupted run returned %v, want sentinel", workers, err)
		}
		cp, err := ReadCheckpoint(&cpBytes)
		if err != nil {
			t.Fatal(err)
		}
		if cp.Epoch != 8 {
			t.Fatalf("checkpoint at epoch %d, want 8", cp.Epoch)
		}
		return cp
	}

	resume := func(cp *Checkpoint, workers int) *Result {
		r, err := New(parallelTestConfig(t, workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Restore(cp); err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Parallel interrupt → sequential resume, and the transpose.
	if got := resume(interrupt(4), 0); !reflect.DeepEqual(reference, got) {
		t.Errorf("parallel checkpoint + sequential resume differs from reference:\n  ref: %+v\n  got: %+v", reference, got)
	}
	if got := resume(interrupt(0), 4); !reflect.DeepEqual(reference, got) {
		t.Errorf("sequential checkpoint + parallel resume differs from reference:\n  ref: %+v\n  got: %+v", reference, got)
	}
}

// TestWorkersValidation: negative worker counts are a configuration
// error, not a silent fallback.
func TestWorkersValidation(t *testing.T) {
	cfg := telemetryTestConfig(t, core.OracT)
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted a negative worker count")
	}
}
