//go:build tgsan

package par

import "fmt"

// assertChunkInvariant re-derives the full partition of [0, n) into
// `chunks` pieces and panics if any chunkBounds property is violated:
// coverage from 0 to n, contiguity, and per-chunk balance within one
// element. Compiled in only under the tgsan build tag, like the
// invariant package's checks; the release build's twin is a no-op the
// compiler eliminates.
func assertChunkInvariant(n, chunks int) {
	lo := 0
	min, max := n+1, -1
	for c := 0; c < chunks; c++ {
		clo, chi := chunkBounds(n, chunks, c)
		if clo != lo {
			panic(fmt.Sprintf("par: chunk %d/%d of n=%d starts at %d, want %d (not contiguous)", c, chunks, n, clo, lo))
		}
		if chi < clo {
			panic(fmt.Sprintf("par: chunk %d/%d of n=%d is inverted [%d,%d)", c, chunks, n, clo, chi))
		}
		if size := chi - clo; size < min {
			min = size
		}
		if size := chi - clo; size > max {
			max = size
		}
		lo = chi
	}
	if lo != n {
		panic(fmt.Sprintf("par: %d chunks of n=%d cover [0,%d), want [0,%d)", chunks, n, lo, n))
	}
	if chunks <= n && (min == 0 || max-min > 1) {
		panic(fmt.Sprintf("par: chunks of n=%d unbalanced: sizes span [%d,%d]", n, min, max))
	}
}
