// Package par provides the deterministic worker pool the simulator's
// parallel epoch pipeline runs on. It is deliberately tiny: a fixed set
// of persistent workers and a blocking parallel-for over index ranges.
//
// Determinism contract: For partitions [0, n) into at most Workers()
// contiguous chunks and runs each chunk exactly once. Callers get
// bit-identical results to a serial loop as long as the body writes only
// to locations owned by its index range (disjoint writes) and every
// cross-range reduction happens after For returns, in a fixed order.
// That contract — fan out over disjoint state, reduce serially — is what
// keeps the byte-identical-telemetry determinism test passing at any
// worker count (see docs/PERFORMANCE.md, "The deterministic-reduction
// contract").
//
// A nil *Pool is valid and runs everything inline on the caller's
// goroutine, so sequential mode shares the exact code path with parallel
// mode — there is no separate serial implementation to drift.
package par

import (
	"fmt"
	"sync"
)

// task is one chunk of a parallel-for: run fn over [lo, hi).
type task struct {
	lo, hi int
	fn     func(lo, hi int)
	wg     *sync.WaitGroup
	panics *panicBox
}

// panicBox captures the first panic raised by any chunk so For can
// re-raise it on the calling goroutine — a worker crashing must look
// exactly like the serial loop crashing (the experiments sweep's
// per-run recovery and the tgsan panic-by-default handler both rely on
// panics surfacing on the goroutine that owns the run).
type panicBox struct {
	mu  sync.Mutex
	val any
	set bool
}

func (b *panicBox) capture(v any) {
	b.mu.Lock()
	if !b.set {
		b.val, b.set = v, true
	}
	b.mu.Unlock()
}

// Pool is a fixed-size set of persistent workers. The zero of *Pool
// (nil) is the inline pool: every For runs serially on the caller.
//
// The wait group and panic box live in the Pool rather than on For's
// stack so a steady-state For performs zero heap allocations (the
// tgperf allocfree pass and the sim package's allocs-per-epoch gate
// both check this). The cost is that For is not reentrant: at most one
// For may be in flight per pool at a time, which matches every caller —
// the epoch loop fans out one phase at a time from a single goroutine.
type Pool struct {
	workers int
	tasks   chan task
	wg      sync.WaitGroup
	box     panicBox
	closeMu sync.Mutex
	closed  bool
}

// New starts a pool of the given size. Sizes below 2 need no worker
// goroutines at all, so New returns nil — the inline pool — and callers
// can treat "no parallelism" and "parallelism disabled" identically.
func New(workers int) *Pool {
	if workers < 2 {
		return nil
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan task),
	}
	// workers-1 background goroutines: the caller's goroutine always
	// executes one chunk itself, so a For over W chunks occupies exactly
	// W threads with no handoff for the last chunk.
	for i := 0; i < workers-1; i++ {
		go p.work()
	}
	return p
}

func (p *Pool) work() {
	for t := range p.tasks {
		p.runChunk(t)
	}
}

func (p *Pool) runChunk(t task) {
	defer t.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			t.panics.capture(r)
		}
	}()
	t.fn(t.lo, t.hi)
}

// Workers returns the parallel width: 1 for the inline (nil) pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// chunkBounds returns the half-open range [lo, hi) of chunk c when [0, n)
// is split into `chunks` pieces. This is the contiguous-chunk invariant
// every parallel pass and the tgpar parwrite analysis build on:
//
//   - the partition is a pure function of (n, chunks) — never of
//     scheduling, pool state, or previous calls;
//   - chunks are contiguous and ascending: chunk c ends exactly where
//     chunk c+1 begins, chunk 0 starts at 0, the last ends at n;
//   - sizes are balanced within one element (⌊n/chunks⌋ or ⌈n/chunks⌉),
//     so no chunk is empty while chunks <= n.
//
// The closed form c*n/chunks is exact in ints for the sizes involved
// (n, chunks are slice lengths and worker counts; the product fits int64
// and int is 64-bit on every supported platform).
func chunkBounds(n, chunks, c int) (lo, hi int) {
	return c * n / chunks, (c + 1) * n / chunks
}

// For runs fn over [0, n) split into at most Workers() contiguous
// chunks and blocks until every chunk finished. On the nil pool it is a
// plain call of fn(0, n). If any chunk panics, For re-panics with the
// first captured value after all chunks have finished, so no chunk is
// ever still running when the panic unwinds the caller.
//
// The partition obeys the chunkBounds contract above; under the tgsan
// build tag For additionally re-derives and asserts it on every call.
//
// For allocates nothing in steady state: the synchronization state is
// pool-owned and task structs travel the channel by value. With n <= 0
// it returns immediately without touching the pool at all — no channel
// send, no wait-group traffic, no allocation — so degenerate fan-outs
// (an empty domain, a zero-length trace) cost nothing.
func (p *Pool) For(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers < 2 || n == 1 {
		fn(0, n)
		return
	}
	chunks := p.workers
	if chunks > n {
		chunks = n
	}
	assertChunkInvariant(n, chunks)
	// Safe without the mutex: the previous For's wg.Wait() ordered every
	// chunk's capture() before this reset, and For is not reentrant.
	p.box.val, p.box.set = nil, false
	p.wg.Add(chunks)
	for c := 0; c < chunks-1; c++ {
		lo, hi := chunkBounds(n, chunks, c)
		p.tasks <- task{lo: lo, hi: hi, fn: fn, wg: &p.wg, panics: &p.box}
	}
	// Last chunk runs inline on the caller.
	lo, hi := chunkBounds(n, chunks, chunks-1)
	p.runChunk(task{lo: lo, hi: hi, fn: fn, wg: &p.wg, panics: &p.box})
	p.wg.Wait()
	if p.box.set {
		panic(fmt.Sprintf("par: worker panic: %v", p.box.val))
	}
}

// Close shuts the workers down. Safe to call more than once and on the
// nil pool; For must not be running or called afterwards.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
}
