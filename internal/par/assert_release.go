//go:build !tgsan

package par

// assertChunkInvariant is compiled out without the tgsan build tag; the
// call in For is dead-code eliminated.
func assertChunkInvariant(n, chunks int) {}
