package par

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce drives every pool width over awkward sizes
// and checks the partition is exact: each index touched exactly once.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 4, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 64, 1000} {
			hits := make([]int32, n)
			p.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d touched %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

// TestForDisjointWritesMatchSerial is the determinism contract: writes to
// owned slots produce bit-identical output at any width.
func TestForDisjointWritesMatchSerial(t *testing.T) {
	const n = 513
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i)*1.5 + 0.25
	}
	for _, workers := range []int{1, 2, 5, 16} {
		p := New(workers)
		got := make([]float64, n)
		p.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = float64(i)*1.5 + 0.25
			}
		})
		p.Close()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestChunkBoundsSmallN pins the contiguous-chunk invariant where it is
// easiest to break: fewer elements than workers. Every chunk must be
// non-empty, contiguous, balanced within one element, and the partition
// must cover [0, n) exactly — for every (n, chunks) with chunks <= n,
// plus the degenerate chunks > n shapes For clamps away.
func TestChunkBoundsSmallN(t *testing.T) {
	for n := 1; n <= 33; n++ {
		for chunks := 1; chunks <= n; chunks++ {
			lo := 0
			minSize, maxSize := n+1, -1
			for c := 0; c < chunks; c++ {
				clo, chi := chunkBounds(n, chunks, c)
				if clo != lo {
					t.Fatalf("n=%d chunks=%d: chunk %d starts at %d, want %d", n, chunks, c, clo, lo)
				}
				size := chi - clo
				if size < 1 {
					t.Fatalf("n=%d chunks=%d: chunk %d empty [%d,%d)", n, chunks, c, clo, chi)
				}
				if size < minSize {
					minSize = size
				}
				if size > maxSize {
					maxSize = size
				}
				lo = chi
			}
			if lo != n {
				t.Fatalf("n=%d chunks=%d: partition ends at %d", n, chunks, lo)
			}
			if maxSize-minSize > 1 {
				t.Fatalf("n=%d chunks=%d: sizes span [%d,%d]", n, chunks, minSize, maxSize)
			}
		}
	}
	// Through For itself: more workers than elements must still touch
	// every index exactly once with per-chunk width 1.
	p := New(8)
	defer p.Close()
	for n := 2; n < 8; n++ {
		hits := make([]int32, n)
		p.For(n, func(lo, hi int) {
			if hi-lo != 1 {
				t.Errorf("n=%d workers=8: chunk [%d,%d), want width 1", n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d workers=8: index %d touched %d times", n, i, h)
			}
		}
	}
}

// TestNilPoolRunsInline proves the nil pool is the serial path.
func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool width %d, want 1", p.Workers())
	}
	calls := 0
	p.For(10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("nil pool chunk [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("nil pool made %d chunks, want 1", calls)
	}
	p.Close() // must not panic
}

// TestForPanicPropagates: a chunk panic must surface on the caller after
// every other chunk has finished, with the original value in the message.
func TestForPanicPropagates(t *testing.T) {
	p := New(4)
	defer p.Close()
	var finished atomic.Int32
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom-7") {
			t.Fatalf("panic lost its payload: %v", r)
		}
	}()
	p.For(64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 7 {
				panic("boom-7")
			}
		}
		finished.Add(1)
	})
}

// TestCloseIdempotent: double Close must not panic.
func TestCloseIdempotent(t *testing.T) {
	p := New(3)
	p.Close()
	p.Close()
}

// TestForZeroNTouchesNothing: For with n <= 0 must return before any
// pool machinery runs — zero allocations, zero chunks, no channel
// traffic — so callers can fan out over possibly-empty ranges without
// guarding.
func TestForZeroNTouchesNothing(t *testing.T) {
	p := New(4)
	defer p.Close()
	calls := 0
	fn := func(lo, hi int) { calls++ }
	for _, n := range []int{0, -1, -100} {
		allocs := testing.AllocsPerRun(100, func() {
			p.For(n, fn)
		})
		if allocs != 0 {
			t.Fatalf("For(n=%d) allocated %.1f times per call, want 0", n, allocs)
		}
	}
	if calls != 0 {
		t.Fatalf("For with n <= 0 invoked the body %d times, want 0", calls)
	}
}

// TestForSteadyStateZeroAllocs pins the pool-owned synchronization
// design: after the first call, For itself adds no heap allocations at
// any width (the closure here is prebuilt, as hot callers must do).
func TestForSteadyStateZeroAllocs(t *testing.T) {
	sink := make([]float64, 256)
	for _, workers := range []int{0, 1, 2, 4} {
		p := New(workers)
		fn := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sink[i] = float64(i)
			}
		}
		p.For(len(sink), fn) // warm up
		allocs := testing.AllocsPerRun(50, func() {
			p.For(len(sink), fn)
		})
		p.Close()
		if allocs != 0 {
			t.Fatalf("workers=%d: For allocated %.1f times per call, want 0", workers, allocs)
		}
	}
}

// TestForAfterForReusesWorkers: many sequential For calls on one pool.
func TestForAfterForReusesWorkers(t *testing.T) {
	p := New(4)
	defer p.Close()
	total := make([]int64, 128)
	for round := 0; round < 50; round++ {
		p.For(len(total), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				total[i]++
			}
		})
	}
	for i, v := range total {
		if v != 50 {
			t.Fatalf("slot %d saw %d rounds, want 50", i, v)
		}
	}
}
