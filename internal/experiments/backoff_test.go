package experiments

import (
	"reflect"
	"testing"
	"time"

	"thermogater/internal/core"
	"thermogater/internal/sim"
	"thermogater/internal/workload"
)

// poisonedConfig fails deterministically on every attempt (measured loop
// shorter than its own warm-up).
func poisonedConfig(t *testing.T, opts Options) sim.Config {
	t.Helper()
	p, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.simConfig(core.AllOn, p)
	cfg.DurationMS = 10
	cfg.WarmupEpochs = 50
	return cfg
}

// TestRetryBackoffScheduleDeterministic pins the retry schedule down under
// an injected (frozen) clock: a cell that fails all its attempts must
// sleep exactly RetryBackoff·2^k between attempts k and k+1, and two
// identical campaigns must observe the identical schedule — no wall-clock
// dependence anywhere in the loop.
func TestRetryBackoffScheduleDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var slept []time.Duration
		opts := testOptions()
		opts.MaxAttempts = 5
		opts.RetryBackoff = 100 * time.Millisecond
		opts.Sleep = func(d time.Duration) { slept = append(slept, d) }
		_, attempts, err := runOneRecover(poisonedConfig(t, opts), opts)
		if err == nil {
			t.Fatal("poisoned cell succeeded")
		}
		if attempts != 5 {
			t.Fatalf("spent %d attempts, want the full budget of 5", attempts)
		}
		return slept
	}
	first := run()
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("backoff schedule %v, want %v", first, want)
	}
	if second := run(); !reflect.DeepEqual(first, second) {
		t.Fatalf("schedule not deterministic across campaigns: %v vs %v", first, second)
	}
}

// TestRetryBackoffZeroMeansImmediate: with no backoff configured the loop
// must never sleep, whatever the attempt count.
func TestRetryBackoffZeroMeansImmediate(t *testing.T) {
	opts := testOptions()
	opts.MaxAttempts = 3
	opts.Sleep = func(d time.Duration) { t.Fatalf("slept %v with zero backoff", d) }
	if _, attempts, err := runOneRecover(poisonedConfig(t, opts), opts); err == nil || attempts != 3 {
		t.Fatalf("attempts=%d err=%v, want 3 attempts and an error", attempts, err)
	}
}

// TestSweepKeepGoingReportsEachFailureExactlyOnce poisons two cells across
// two policies and retries them: the tolerant sweep must report each
// failed cell exactly once — retries must not multiply failure records,
// and no healthy cell may appear among them.
func TestSweepKeepGoingReportsEachFailureExactlyOnce(t *testing.T) {
	opts := testOptions()
	opts.KeepGoing = true
	opts.MaxAttempts = 3
	opts.RetryBackoff = time.Hour // would hang the test if the frozen clock leaked
	opts.Sleep = func(time.Duration) {}
	poison := map[string]bool{"fft": true, "lu_ncb": true}
	opts.Mutate = func(policy core.PolicyKind, bench workload.Profile, cfg *sim.Config) {
		if poison[bench.Name] && policy == core.AllOn {
			cfg.DurationMS = 10
			cfg.WarmupEpochs = 50
		}
	}
	sw, err := RunSweep([]core.PolicyKind{core.AllOn, core.OracT}, opts)
	if err != nil {
		t.Fatalf("tolerant sweep aborted: %v", err)
	}
	if len(sw.Failures) != 2 {
		t.Fatalf("%d failures recorded, want 2: %v", len(sw.Failures), sw.Failures)
	}
	seen := map[string]int{}
	for _, f := range sw.Failures {
		if f.Policy != core.AllOn.String() {
			t.Errorf("healthy policy %s reported failed for %s", f.Policy, f.Benchmark)
		}
		if !poison[f.Benchmark] {
			t.Errorf("healthy cell %s/%s reported failed", f.Benchmark, f.Policy)
		}
		if f.Attempts != 3 {
			t.Errorf("cell %s/%s recorded %d attempts, want the full budget of 3", f.Benchmark, f.Policy, f.Attempts)
		}
		seen[f.Benchmark+"/"+f.Policy]++
	}
	for cell, n := range seen {
		if n != 1 {
			t.Errorf("cell %s reported %d times, want exactly once", cell, n)
		}
	}
	// Failures are sorted for deterministic reporting.
	if len(sw.Failures) == 2 && sw.Failures[0].Benchmark > sw.Failures[1].Benchmark {
		t.Errorf("failures not sorted: %v", sw.Failures)
	}
	// The poisoned cells hold no result; every other cell does.
	for _, b := range BenchmarkOrder() {
		for _, p := range []core.PolicyKind{core.AllOn, core.OracT} {
			_, err := sw.Get(b, p)
			broken := poison[b] && p == core.AllOn
			if broken && err == nil {
				t.Errorf("failed cell %s/%s still has a result", b, p)
			}
			if !broken && err != nil {
				t.Errorf("healthy cell %s/%s missing: %v", b, p, err)
			}
		}
	}
}
