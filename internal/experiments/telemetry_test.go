package experiments

import (
	"sync"
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/telemetry"
	"thermogater/internal/workload"
)

// lockedSink collects records; Emit is serialized by the registry, but the
// mutex keeps the test honest if that contract ever changes.
type lockedSink struct {
	mu   sync.Mutex
	recs []*telemetry.Record
}

func (s *lockedSink) Emit(r *telemetry.Record) error {
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.mu.Unlock()
	return nil
}

func (s *lockedSink) Flush() error { return nil }

func TestRunSweepSharesOneRegistryAcrossWorkers(t *testing.T) {
	reg := telemetry.NewRegistry()
	sink := &lockedSink{}
	reg.AddSink(sink)
	opts := Options{DurationMS: 60, Seed: 1, Telemetry: reg}
	policies := []core.PolicyKind{core.AllOn, core.OracT}

	if _, err := RunSweep(policies, opts); err != nil {
		t.Fatal(err)
	}

	nRuns := len(policies) * len(workload.Suite())
	var runRecs, epochRecs int
	for _, rec := range sink.recs {
		switch rec.Name {
		case "run":
			runRecs++
			if v, ok := rec.Get("policy"); !ok || v == "" {
				t.Errorf("run record missing policy: %+v", rec)
			}
		case "epoch":
			epochRecs++
		}
	}
	if runRecs != nRuns {
		t.Errorf("run records = %d, want %d", runRecs, nRuns)
	}
	if want := nRuns * 60; epochRecs != want {
		t.Errorf("epoch records = %d, want %d", epochRecs, want)
	}
	if got := reg.Counter("sim_epochs_total").Value(); got != float64(nRuns*60) {
		t.Errorf("sim_epochs_total = %v, want %d", got, nRuns*60)
	}
	// The merged span tree must carry both the per-run and per-epoch roots.
	sn := reg.Snapshot()
	names := map[string]int{}
	for _, s := range sn.Spans {
		names[s.Name] = s.Count
	}
	if names["run"] != nRuns {
		t.Errorf("run span count = %d, want %d", names["run"], nRuns)
	}
	if names["epoch"] != nRuns*60 {
		t.Errorf("epoch span count = %d, want %d", names["epoch"], nRuns*60)
	}
}
