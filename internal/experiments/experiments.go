// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) from the reproduction's own models: the static
// regulator characterisations (Figs. 1, 2, 5), the per-benchmark runs
// (Figs. 6, 7, 8, 12, 13, 14, 15) and the full policy sweep (Figs. 9, 10,
// 11, Table 2 and the Section 6.3 headline numbers).
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"thermogater/internal/core"
	"thermogater/internal/pdn"
	"thermogater/internal/sim"
	"thermogater/internal/telemetry"
	"thermogater/internal/vr"
	"thermogater/internal/workload"
)

// Options scales the experiments: the paper's full runs use the complete
// 3000ms regions of interest; tests and quick looks use shorter windows.
type Options struct {
	// DurationMS truncates each run when positive (0 = the benchmark's
	// full region of interest).
	DurationMS int
	// Seed drives all stochastic components.
	Seed uint64
	// Parallel bounds concurrent runs (0 = GOMAXPROCS).
	Parallel int
	// Telemetry, when non-nil, instruments every run: each simulation
	// feeds the shared registry's counters and span tree, and one "run"
	// record with the run's aggregates is emitted per (policy, benchmark)
	// cell alongside the per-epoch stream. The registry is concurrency-safe,
	// so parallel sweep workers share it directly.
	Telemetry *telemetry.Registry
}

// DefaultOptions runs the full-length evaluation.
func DefaultOptions() Options {
	return Options{Seed: 1}
}

// workers returns the effective parallelism.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// simConfig builds the run configuration for one (policy, benchmark) cell.
func (o Options) simConfig(policy core.PolicyKind, bench workload.Profile) sim.Config {
	cfg := sim.DefaultConfig(policy, bench)
	cfg.Seed = o.Seed
	if o.DurationMS > 0 {
		cfg.DurationMS = o.DurationMS
	}
	cfg.Telemetry = o.Telemetry
	return cfg
}

// BenchmarkOrder lists the suite in the order the paper's figures use.
func BenchmarkOrder() []string {
	var names []string
	for _, p := range workload.Suite() {
		names = append(names, p.Name)
	}
	return names
}

// runOne executes a single configured simulation, emitting the per-run
// aggregate record when the configuration carries a telemetry registry.
func runOne(cfg sim.Config) (*sim.Result, error) {
	r, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	sp := cfg.Telemetry.StartSpan("run")
	res, err := r.Run()
	sp.End()
	if err != nil {
		return nil, err
	}
	if cfg.Telemetry.Enabled() {
		rec := telemetry.NewRecord("run").
			Add("policy", res.Policy).
			Add("benchmark", res.Benchmark).
			Add("wall_ns", sp.Total().Nanoseconds()).
			Add("epochs", res.Epochs).
			Add("max_temp_c", res.MaxTempC).
			Add("gradient_c", res.MaxGradientC).
			Add("max_noise_pct", res.MaxNoisePct).
			Add("avg_ploss_w", res.AvgPlossW).
			Add("avg_eta", res.AvgEta).
			Add("emergency_frac", res.EmergencyFrac)
		if err := cfg.Telemetry.Emit(rec); err != nil {
			return nil, fmt.Errorf("experiments: telemetry sink: %w", err)
		}
	}
	return res, nil
}

// Sweep holds the results of the full benchmarks × policies evaluation,
// keyed by benchmark name then policy name.
type Sweep struct {
	Policies []core.PolicyKind
	Results  map[string]map[string]*sim.Result
}

// RunSweep executes the given policies over the whole benchmark suite
// concurrently and collects the results.
func RunSweep(policies []core.PolicyKind, opts Options) (*Sweep, error) {
	if len(policies) == 0 {
		return nil, errors.New("experiments: no policies to sweep")
	}
	suite := workload.Suite()
	sw := &Sweep{Policies: policies, Results: make(map[string]map[string]*sim.Result)}
	for _, b := range suite {
		sw.Results[b.Name] = make(map[string]*sim.Result, len(policies))
	}

	type job struct {
		bench  workload.Profile
		policy core.PolicyKind
	}
	jobs := make(chan job)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res, err := runOne(opts.simConfig(j.policy, j.bench))
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("%s/%s: %w", j.bench.Name, j.policy, err)
				}
				if err == nil {
					sw.Results[j.bench.Name][j.policy.String()] = res
				}
				mu.Unlock()
			}
		}()
	}
	for _, b := range suite {
		for _, p := range policies {
			jobs <- job{bench: b, policy: p}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sw, nil
}

// Get returns one cell of the sweep.
func (s *Sweep) Get(bench string, policy core.PolicyKind) (*sim.Result, error) {
	m, ok := s.Results[bench]
	if !ok {
		return nil, fmt.Errorf("experiments: benchmark %q not in sweep", bench)
	}
	r, ok := m[policy.String()]
	if !ok {
		return nil, fmt.Errorf("experiments: policy %v not in sweep for %q", policy, bench)
	}
	return r, nil
}

// ldoConfig switches a run configuration to the POWER8-like LDO design
// point of Section 6.4: same calibrated efficiency curves, faster response.
func ldoConfig(cfg sim.Config) sim.Config {
	cfg.Design = vr.POWER8LDO()
	cfg.PDN = pdn.LDOConfig()
	return cfg
}
