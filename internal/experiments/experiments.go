// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) from the reproduction's own models: the static
// regulator characterisations (Figs. 1, 2, 5), the per-benchmark runs
// (Figs. 6, 7, 8, 12, 13, 14, 15) and the full policy sweep (Figs. 9, 10,
// 11, Table 2 and the Section 6.3 headline numbers).
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"thermogater/internal/core"
	"thermogater/internal/pdn"
	"thermogater/internal/sim"
	"thermogater/internal/telemetry"
	"thermogater/internal/vr"
	"thermogater/internal/workload"
)

// Options scales the experiments: the paper's full runs use the complete
// 3000ms regions of interest; tests and quick looks use shorter windows.
type Options struct {
	// DurationMS truncates each run when positive (0 = the benchmark's
	// full region of interest).
	DurationMS int
	// Seed drives all stochastic components.
	Seed uint64
	// Parallel bounds concurrent runs (0 = GOMAXPROCS).
	Parallel int
	// Telemetry, when non-nil, instruments every run: each simulation
	// feeds the shared registry's counters and span tree, and one "run"
	// record with the run's aggregates is emitted per (policy, benchmark)
	// cell alongside the per-epoch stream. The registry is concurrency-safe,
	// so parallel sweep workers share it directly.
	Telemetry *telemetry.Registry
	// MaxAttempts bounds how often a failing cell is retried before it is
	// given up on (values below 1 mean 1 — no retry).
	MaxAttempts int
	// RetryBackoff is slept between attempts of the same cell, doubling
	// each time (0 = retry immediately).
	RetryBackoff time.Duration
	// Sleep replaces time.Sleep between retry attempts (nil = time.Sleep).
	// Tests inject a recording clock here to pin the backoff schedule down
	// without waiting it out.
	Sleep func(time.Duration)
	// KeepGoing makes RunSweep finish the remaining cells when one fails
	// (after its retries): the failed cells are recorded in
	// Sweep.Failures instead of aborting the sweep. Only if every cell
	// fails does RunSweep still return an error.
	KeepGoing bool
	// Mutate, when non-nil, edits each cell's configuration after it is
	// built — the hook fault-injection campaigns use to arm schedules on
	// selected (policy, benchmark) cells.
	Mutate func(policy core.PolicyKind, bench workload.Profile, cfg *sim.Config)
}

// DefaultOptions runs the full-length evaluation.
func DefaultOptions() Options {
	return Options{Seed: 1}
}

// workers returns the effective parallelism.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// simConfig builds the run configuration for one (policy, benchmark) cell.
func (o Options) simConfig(policy core.PolicyKind, bench workload.Profile) sim.Config {
	cfg := sim.DefaultConfig(policy, bench)
	cfg.Seed = o.Seed
	if o.DurationMS > 0 {
		cfg.DurationMS = o.DurationMS
	}
	cfg.Telemetry = o.Telemetry
	if o.Mutate != nil {
		o.Mutate(policy, bench, &cfg)
	}
	return cfg
}

// attempts returns the effective per-cell attempt budget.
func (o Options) attempts() int {
	if o.MaxAttempts < 1 {
		return 1
	}
	return o.MaxAttempts
}

// BenchmarkOrder lists the suite in the order the paper's figures use.
func BenchmarkOrder() []string {
	var names []string
	for _, p := range workload.Suite() {
		names = append(names, p.Name)
	}
	return names
}

// runOne executes a single configured simulation, emitting the per-run
// aggregate record when the configuration carries a telemetry registry.
func runOne(cfg sim.Config) (*sim.Result, error) {
	r, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	sp := cfg.Telemetry.StartSpan("run")
	res, err := r.Run()
	sp.End()
	if err != nil {
		return nil, err
	}
	if cfg.Telemetry.Enabled() {
		rec := telemetry.NewRecord("run").
			Add("policy", res.Policy).
			Add("benchmark", res.Benchmark).
			Add("wall_ns", sp.Total().Nanoseconds()).
			Add("epochs", res.Epochs).
			Add("max_temp_c", res.MaxTempC).
			Add("gradient_c", res.MaxGradientC).
			Add("max_noise_pct", res.MaxNoisePct).
			Add("avg_ploss_w", res.AvgPlossW).
			Add("avg_eta", res.AvgEta).
			Add("emergency_frac", res.EmergencyFrac)
		if err := cfg.Telemetry.Emit(rec); err != nil {
			return nil, fmt.Errorf("experiments: telemetry sink: %w", err)
		}
	}
	return res, nil
}

// runOneRecover runs one cell with panic containment and the configured
// retry budget: a panicking simulation surfaces as an error like any other
// failure, and each failed attempt sleeps an exponentially growing backoff
// before the next one. It returns the result, the number of attempts
// actually spent, and the last error.
func runOneRecover(cfg sim.Config, opts Options) (res *sim.Result, attempts int, err error) {
	one := func() (r *sim.Result, rerr error) {
		defer func() {
			if p := recover(); p != nil {
				r, rerr = nil, fmt.Errorf("experiments: run panicked: %v", p)
			}
		}()
		return runOne(cfg)
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	backoff := opts.RetryBackoff
	for attempts = 1; ; attempts++ {
		res, err = one()
		if err == nil || attempts >= opts.attempts() {
			return res, attempts, err
		}
		if backoff > 0 {
			sleep(backoff)
			backoff *= 2
		}
	}
}

// RunError records one sweep cell that failed after exhausting its
// attempts.
type RunError struct {
	Benchmark string
	Policy    string
	// Attempts is how many times the cell was tried.
	Attempts int
	// Err is the last attempt's error text.
	Err string
}

func (e RunError) String() string {
	return fmt.Sprintf("%s/%s after %d attempt(s): %s", e.Benchmark, e.Policy, e.Attempts, e.Err)
}

// Sweep holds the results of the full benchmarks × policies evaluation,
// keyed by benchmark name then policy name.
type Sweep struct {
	Policies []core.PolicyKind
	Results  map[string]map[string]*sim.Result
	// Failures lists the cells that failed after their retries when
	// Options.KeepGoing let the sweep continue past them; consumers must
	// expect the corresponding Results cells to be absent. Sorted by
	// benchmark then policy for deterministic reporting.
	Failures []RunError
}

// RunSweep executes the given policies over the whole benchmark suite
// concurrently and collects the results. Without Options.KeepGoing the
// first failed cell (after its retries) aborts the sweep; with it, failed
// cells land in Sweep.Failures and every other cell still completes.
func RunSweep(policies []core.PolicyKind, opts Options) (*Sweep, error) {
	if len(policies) == 0 {
		return nil, errors.New("experiments: no policies to sweep")
	}
	suite := workload.Suite()
	sw := &Sweep{Policies: policies, Results: make(map[string]map[string]*sim.Result)}
	for _, b := range suite {
		sw.Results[b.Name] = make(map[string]*sim.Result, len(policies))
	}

	type job struct {
		bench  workload.Profile
		policy core.PolicyKind
	}
	jobs := make(chan job)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res, attempts, err := runOneRecover(opts.simConfig(j.policy, j.bench), opts)
				mu.Lock()
				if err != nil {
					if opts.KeepGoing {
						sw.Failures = append(sw.Failures, RunError{
							Benchmark: j.bench.Name,
							Policy:    j.policy.String(),
							Attempts:  attempts,
							Err:       err.Error(),
						})
					} else if firstErr == nil {
						firstErr = fmt.Errorf("%s/%s: %w", j.bench.Name, j.policy, err)
					}
				} else {
					sw.Results[j.bench.Name][j.policy.String()] = res
				}
				mu.Unlock()
			}
		}()
	}
	for _, b := range suite {
		for _, p := range policies {
			jobs <- job{bench: b, policy: p}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(sw.Failures, func(i, j int) bool {
		if sw.Failures[i].Benchmark != sw.Failures[j].Benchmark {
			return sw.Failures[i].Benchmark < sw.Failures[j].Benchmark
		}
		return sw.Failures[i].Policy < sw.Failures[j].Policy
	})
	if len(sw.Failures) == len(suite)*len(policies) {
		return nil, fmt.Errorf("experiments: every cell failed; first: %s", sw.Failures[0])
	}
	return sw, nil
}

// Get returns one cell of the sweep.
func (s *Sweep) Get(bench string, policy core.PolicyKind) (*sim.Result, error) {
	m, ok := s.Results[bench]
	if !ok {
		return nil, fmt.Errorf("experiments: benchmark %q not in sweep", bench)
	}
	r, ok := m[policy.String()]
	if !ok {
		return nil, fmt.Errorf("experiments: policy %v not in sweep for %q", policy, bench)
	}
	return r, nil
}

// ldoConfig switches a run configuration to the POWER8-like LDO design
// point of Section 6.4: same calibrated efficiency curves, faster response.
func ldoConfig(cfg sim.Config) sim.Config {
	cfg.Design = vr.POWER8LDO()
	cfg.PDN = pdn.LDOConfig()
	return cfg
}
