package experiments

import (
	"errors"
	"fmt"

	"thermogater/internal/core"
	"thermogater/internal/floorplan"
	"thermogater/internal/pdn"
	"thermogater/internal/report"
	"thermogater/internal/uarch"
	"thermogater/internal/workload"
)

// Fig6ActiveRegulators regenerates Fig. 6: how the cumulative number of
// active regulators tracks the total power demand over time for an
// 8-threaded run of lu_ncb.
func Fig6ActiveRegulators(opts Options) (*report.Figure, error) {
	bench, err := workload.ByName("lu_ncb")
	if err != nil {
		return nil, err
	}
	cfg := opts.simConfig(core.OracT, bench)
	cfg.TraceEpochs = true
	res, err := runOne(cfg)
	if err != nil {
		return nil, err
	}
	f := &report.Figure{
		ID:     "Fig. 6",
		Title:  "Evolution of #active regulators with time (lu_ncb)",
		XLabel: "time (ms)",
		YLabel: "W / count",
	}
	power := report.Series{Label: "total power demand (W)"}
	active := report.Series{Label: "# active regulators"}
	for _, e := range res.Trace {
		power.X = append(power.X, e.TimeMS)
		power.Y = append(power.Y, e.TotalPowerW)
		active.X = append(active.X, e.TimeMS)
		active.Y = append(active.Y, float64(e.ActiveVRs))
	}
	f.Series = append(f.Series, power, active)
	return f, nil
}

// Fig8NaiveProfile regenerates Fig. 8: the temperature and on/off state of
// one representative regulator under the Naïve policy (lu_ncb).
func Fig8NaiveProfile(opts Options) (*report.Figure, error) {
	bench, err := workload.ByName("lu_ncb")
	if err != nil {
		return nil, err
	}
	cfg := opts.simConfig(core.Naive, bench)
	// Track a logic-side regulator of core 0: these are the ones Naïve
	// cycles on and off.
	cfg.TrackVR = 1
	res, err := runOne(cfg)
	if err != nil {
		return nil, err
	}
	if len(res.VRTrace) == 0 {
		return nil, errors.New("experiments: no regulator trace collected")
	}
	f := &report.Figure{
		ID:     "Fig. 8",
		Title:  "Representative regulator thermal profile under Naïve (lu_ncb)",
		XLabel: "time (ms)",
		YLabel: "°C / state",
	}
	temp := report.Series{Label: "temperature (°C)"}
	state := report.Series{Label: "regulator state (1=on)"}
	for _, s := range res.VRTrace {
		temp.X = append(temp.X, s.TimeMS)
		temp.Y = append(temp.Y, s.TempC)
		state.X = append(state.X, s.TimeMS)
		on := 0.0
		if s.On {
			on = 1
		}
		state.Y = append(state.Y, on)
	}
	f.Series = append(f.Series, temp, state)
	return f, nil
}

// HeatMapFrame is one Fig. 12 panel.
type HeatMapFrame struct {
	Policy   string
	MaxTempC float64
	Grid     [][]float64
}

// Fig12HeatMaps regenerates Fig. 12: heat-map frames at the Tmax peak of
// cholesky under off-chip, all-on, OracT and OracV.
func Fig12HeatMaps(opts Options) ([]HeatMapFrame, error) {
	bench, err := workload.ByName("cholesky")
	if err != nil {
		return nil, err
	}
	var frames []HeatMapFrame
	for _, p := range []core.PolicyKind{core.OffChip, core.AllOn, core.OracT, core.OracV} {
		cfg := opts.simConfig(p, bench)
		cfg.HeatMapRes = 84
		res, err := runOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", p, err)
		}
		if res.HeatMap == nil {
			return nil, fmt.Errorf("%v: no heat map captured", p)
		}
		frames = append(frames, HeatMapFrame{
			Policy:   p.String(),
			MaxTempC: res.MaxTempC,
			Grid:     res.HeatMap,
		})
	}
	return frames, nil
}

// Fig13ActivityBins regenerates Fig. 13: per-regulator activity (fraction
// of execution time on) for the 72 core-domain regulators under OracT vs
// OracV, binned into logic-side and memory-side groups (lu_ncb).
func Fig13ActivityBins(opts Options) (*report.Figure, error) {
	bench, err := workload.ByName("lu_ncb")
	if err != nil {
		return nil, err
	}
	f := &report.Figure{
		ID:     "Fig. 13",
		Title:  "Regulator activity, logic-side then memory-side bins (lu_ncb)",
		XLabel: "regulator bin index",
		YLabel: "% of execution time on",
	}
	chip, err := floorplan.BuildPOWER8()
	if err != nil {
		return nil, err
	}
	for _, p := range []core.PolicyKind{core.OracT, core.OracV} {
		res, err := runOne(opts.simConfig(p, bench))
		if err != nil {
			return nil, fmt.Errorf("%v: %w", p, err)
		}
		// Order: all logic-side regulators (across core domains), then all
		// memory-side ones, as in the figure's two bins.
		var order []int
		for _, domID := range chip.CoreDomains() {
			logic, _, err := chip.LogicSideRegulators(domID)
			if err != nil {
				return nil, err
			}
			order = append(order, logic...)
		}
		split := len(order)
		for _, domID := range chip.CoreDomains() {
			_, memory, err := chip.LogicSideRegulators(domID)
			if err != nil {
				return nil, err
			}
			order = append(order, memory...)
		}
		s := report.Series{Label: fmt.Sprintf("%v (logic bin: 0..%d)", p, split-1)}
		for i, rid := range order {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, res.VROnFrac[rid]*100)
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig14NoiseTransient regenerates Fig. 14: a cycle-level voltage noise
// sample around the worst-noise moment of fft under OracT vs OracV.
func Fig14NoiseTransient(opts Options) (*report.Figure, error) {
	bench, err := workload.ByName("fft")
	if err != nil {
		return nil, err
	}
	f := &report.Figure{
		ID:     "Fig. 14",
		Title:  "Voltage noise transient at the critical sample (fft)",
		XLabel: "time (cycles)",
		YLabel: "% voltage noise",
	}
	const cycles = 1000
	for _, p := range []core.PolicyKind{core.OracT, core.OracV} {
		cfg := opts.simConfig(p, bench)
		res, err := runOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", p, err)
		}
		ws := res.WorstNoise
		if ws == nil {
			return nil, fmt.Errorf("%v: no worst-noise snapshot", p)
		}
		chip, err := floorplan.BuildPOWER8()
		if err != nil {
			return nil, err
		}
		grid, err := pdn.NewNetwork(chip, cfg.PDN)
		if err != nil {
			return nil, err
		}
		// Re-anchor the snapshot bursts into the displayed window.
		bursts := make([]pdn.Burst, len(ws.Bursts))
		for i, b := range ws.Bursts {
			b.StartCycle = b.StartCycle % cycles
			bursts[i] = b
		}
		win, err := grid.TransientWindow(ws.Domain, ws.BlockIndex, ws.BlockCurrent,
			ws.Active, bursts, cycles, uarch.ClockGHz, opts.Seed)
		if err != nil {
			return nil, err
		}
		s := report.Series{Label: p.String()}
		for i, v := range win {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, v)
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig15LDOvsFIVR regenerates Fig. 15: the maximum voltage noise per
// benchmark under all-on for the LDO-based design vs the FIVR-based one,
// plus the overall maximum.
func Fig15LDOvsFIVR(opts Options) (*report.Figure, error) {
	f := &report.Figure{
		ID:     "Fig. 15",
		Title:  "Maximum voltage noise: LDO vs FIVR (all-on)",
		XLabel: "benchmark index (suite order, last = MAX)",
		YLabel: "% voltage noise",
	}
	fivr := report.Series{Label: "FIVR"}
	ldo := report.Series{Label: "LDO"}
	var maxF, maxL float64
	for i, bench := range workload.Suite() {
		cfgF := opts.simConfig(core.AllOn, bench)
		resF, err := runOne(cfgF)
		if err != nil {
			return nil, fmt.Errorf("fivr/%s: %w", bench.Name, err)
		}
		resL, err := runOne(ldoConfig(opts.simConfig(core.AllOn, bench)))
		if err != nil {
			return nil, fmt.Errorf("ldo/%s: %w", bench.Name, err)
		}
		fivr.X = append(fivr.X, float64(i))
		fivr.Y = append(fivr.Y, resF.SampledMaxNoisePct)
		ldo.X = append(ldo.X, float64(i))
		ldo.Y = append(ldo.Y, resL.SampledMaxNoisePct)
		if resF.SampledMaxNoisePct > maxF {
			maxF = resF.SampledMaxNoisePct
		}
		if resL.SampledMaxNoisePct > maxL {
			maxL = resL.SampledMaxNoisePct
		}
	}
	n := float64(len(fivr.X))
	fivr.X = append(fivr.X, n)
	fivr.Y = append(fivr.Y, maxF)
	ldo.X = append(ldo.X, n)
	ldo.Y = append(ldo.Y, maxL)
	f.Series = append(f.Series, ldo, fivr)
	f.Notes = append(f.Notes,
		"LDO design: same calibrated efficiency curves, 1ns response vs the buck's 10ns (Section 6.4)")
	return f, nil
}
