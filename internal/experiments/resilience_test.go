package experiments

import (
	"strings"
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/sim"
	"thermogater/internal/workload"
)

// TestSweepKeepGoingRecordsFailures poisons exactly one sweep cell and
// checks the tolerant mode: the sweep finishes, the poisoned cell appears
// in Failures with its full retry count, and every other cell still holds
// a result.
func TestSweepKeepGoingRecordsFailures(t *testing.T) {
	opts := testOptions()
	opts.KeepGoing = true
	opts.MaxAttempts = 2
	opts.Mutate = func(policy core.PolicyKind, bench workload.Profile, cfg *sim.Config) {
		if bench.Name == "fft" {
			// Shorter than its own warm-up: fails deterministically at the
			// end of the measured loop, on every attempt.
			cfg.DurationMS = 10
			cfg.WarmupEpochs = 50
		}
	}
	sw, err := RunSweep([]core.PolicyKind{core.AllOn}, opts)
	if err != nil {
		t.Fatalf("tolerant sweep aborted: %v", err)
	}
	if len(sw.Failures) != 1 {
		t.Fatalf("%d failures recorded, want 1: %v", len(sw.Failures), sw.Failures)
	}
	f := sw.Failures[0]
	if f.Benchmark != "fft" || f.Policy != core.AllOn.String() {
		t.Errorf("failure recorded for %s/%s, want fft/%s", f.Benchmark, f.Policy, core.AllOn)
	}
	if f.Attempts != 2 {
		t.Errorf("failed cell spent %d attempts, want the full budget of 2", f.Attempts)
	}
	if !strings.Contains(f.Err, "warm-up") {
		t.Errorf("failure text %q does not carry the root cause", f.Err)
	}
	if _, err := sw.Get("fft", core.AllOn); err == nil {
		t.Error("failed cell still has a result")
	}
	for _, b := range BenchmarkOrder() {
		if b == "fft" {
			continue
		}
		if _, err := sw.Get(b, core.AllOn); err != nil {
			t.Errorf("healthy cell %s missing after tolerant sweep: %v", b, err)
		}
	}
}

// TestSweepRecoversPanic wires a panicking ranking callback into one cell
// and checks the panic is contained: it becomes a recorded failure, not a
// crashed test binary.
func TestSweepRecoversPanic(t *testing.T) {
	opts := testOptions()
	opts.KeepGoing = true
	opts.Mutate = func(policy core.PolicyKind, bench workload.Profile, cfg *sim.Config) {
		if bench.Name == "fft" {
			cfg.Policy = core.Custom
			cfg.Governor.CustomRank = func(domain int, in *core.Inputs, demandA float64, count int) []int {
				panic("injected ranking panic")
			}
		}
	}
	sw, err := RunSweep([]core.PolicyKind{core.AllOn}, opts)
	if err != nil {
		t.Fatalf("sweep aborted on a contained panic: %v", err)
	}
	if len(sw.Failures) != 1 {
		t.Fatalf("%d failures recorded, want 1: %v", len(sw.Failures), sw.Failures)
	}
	if !strings.Contains(sw.Failures[0].Err, "injected ranking panic") {
		t.Errorf("failure text %q does not carry the panic value", sw.Failures[0].Err)
	}
}

// TestSweepAllCellsFailed: tolerance must not turn a totally broken
// campaign into a silent empty sweep.
func TestSweepAllCellsFailed(t *testing.T) {
	opts := testOptions()
	opts.KeepGoing = true
	opts.Mutate = func(policy core.PolicyKind, bench workload.Profile, cfg *sim.Config) {
		cfg.EpochMS = -1 // rejected by Validate in every cell
	}
	if _, err := RunSweep([]core.PolicyKind{core.AllOn}, opts); err == nil {
		t.Fatal("sweep with zero surviving cells reported success")
	}
}

// TestRunOneRecoverRetriesThenSucceeds exercises the attempt loop's happy
// ending: a healthy configuration succeeds on the first attempt and spends
// exactly one attempt doing so.
func TestRunOneRecoverRetriesThenSucceeds(t *testing.T) {
	p, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.MaxAttempts = 3
	cfg := opts.simConfig(core.AllOn, p)
	res, attempts, err := runOneRecover(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Errorf("healthy run spent %d attempts", attempts)
	}
	if res == nil || res.Epochs == 0 {
		t.Error("healthy run returned an empty result")
	}
}
