package experiments

import (
	"fmt"

	"thermogater/internal/core"
	"thermogater/internal/report"
	"thermogater/internal/sim"
	"thermogater/internal/workload"
)

// figurePolicies is the policy order of Figs. 9 and 10.
var figurePolicies = []core.PolicyKind{
	core.Naive, core.OracT, core.OracV, core.OracVT,
	core.PracT, core.PracVT, core.AllOn, core.OffChip,
}

// SweepPolicies lists the policies the full sweep needs for every
// sweep-derived artefact (Figs. 7, 9, 10, 11, Table 2, headline).
func SweepPolicies() []core.PolicyKind { return figurePolicies }

// Fig7PlossSaving derives Fig. 7 from a sweep: the percentage regulator
// power-loss saving of demand-tracking gating (OracT) versus keeping all
// 96 regulators on, per benchmark plus the suite average.
func (s *Sweep) Fig7PlossSaving() (*report.Table, error) {
	t := &report.Table{
		ID:      "Fig. 7",
		Title:   "% regulator power loss saving under optimal gating vs all-on",
		Columns: []string{"benchmark", "saving (%)"},
	}
	var sum float64
	var n int
	for _, name := range BenchmarkOrder() {
		allon, err := s.Get(name, core.AllOn)
		if err != nil {
			return nil, err
		}
		gated, err := s.Get(name, core.OracT)
		if err != nil {
			return nil, err
		}
		if allon.AvgPlossW <= 0 {
			return nil, fmt.Errorf("experiments: %s all-on loss is zero", name)
		}
		saving := 100 * (1 - gated.AvgPlossW/allon.AvgPlossW)
		t.AddRow(workload.ShortName(name), fmt.Sprintf("%.1f", saving))
		sum += saving
		n++
	}
	t.AddRow("AVG", fmt.Sprintf("%.1f", sum/float64(n)))
	return t, nil
}

// metricTable renders one benchmarks × policies grid.
func (s *Sweep) metricTable(id, title, format string, get func(*sim.Result) float64, policies []core.PolicyKind, withAvg bool, aggLabel string, agg func([]float64) float64) (*report.Table, error) {
	cols := []string{"benchmark"}
	for _, p := range policies {
		cols = append(cols, p.String())
	}
	t := &report.Table{ID: id, Title: title, Columns: cols}
	perPolicy := make([][]float64, len(policies))
	for _, name := range BenchmarkOrder() {
		row := []string{workload.ShortName(name)}
		for pi, p := range policies {
			res, err := s.Get(name, p)
			if err != nil {
				return nil, err
			}
			v := get(res)
			perPolicy[pi] = append(perPolicy[pi], v)
			row = append(row, fmt.Sprintf(format, v))
		}
		t.AddRow(row...)
	}
	if withAvg {
		row := []string{aggLabel}
		for pi := range policies {
			row = append(row, fmt.Sprintf(format, agg(perPolicy[pi])))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Fig9Tmax derives Fig. 9: maximum chip-wide temperature per benchmark and
// policy.
func (s *Sweep) Fig9Tmax() (*report.Table, error) {
	return s.metricTable("Fig. 9", "Maximum chip-wide temperature (°C)", "%.1f",
		func(r *sim.Result) float64 { return r.MaxTempC }, figurePolicies, true, "AVG", mean)
}

// Fig10Gradient derives Fig. 10: maximum thermal gradient per benchmark
// and policy.
func (s *Sweep) Fig10Gradient() (*report.Table, error) {
	return s.metricTable("Fig. 10", "Maximum thermal gradient (°C)", "%.1f",
		func(r *sim.Result) float64 { return r.MaxGradientC }, figurePolicies, true, "AVG", mean)
}

// Fig11VoltageNoise derives Fig. 11: maximum voltage noise per benchmark
// for the gated policies plus all-on, with the overall maximum row (the
// figure's MAX column) and the 10% emergency threshold noted.
func (s *Sweep) Fig11VoltageNoise() (*report.Table, error) {
	t, err := s.metricTable("Fig. 11", "Maximum voltage noise (% of nominal Vdd, 200-sample methodology)", "%.2f",
		func(r *sim.Result) float64 { return r.SampledMaxNoisePct }, core.GatedPolicies(), true, "MAX", maxOf)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table2Emergencies derives Table 2: % execution time spent in voltage
// emergencies under OracT per benchmark.
func (s *Sweep) Table2Emergencies() (*report.Table, error) {
	t := &report.Table{
		ID:      "Table 2",
		Title:   "% execution time in voltage emergencies under OracT",
		Columns: []string{"benchmark", "% exec. time"},
	}
	var sum float64
	var n int
	for _, name := range BenchmarkOrder() {
		res, err := s.Get(name, core.OracT)
		if err != nil {
			return nil, err
		}
		pct := res.EmergencyFrac * 100
		t.AddRow(workload.ShortName(name), fmt.Sprintf("%.3f", pct))
		sum += pct
		n++
	}
	t.AddRow("AVG", fmt.Sprintf("%.3f", sum/float64(n)))
	return t, nil
}

// Headline summarises the paper's Section 6.3 / abstract claims for the
// practical policy: how far PracVT sits from the thermally-optimal oracle
// (Tmax, gradient), from the best-case noise profile (all-on), and from
// the peak conversion efficiency.
type Headline struct {
	// TmaxDeltaC is avg(PracVT Tmax − OracT Tmax); paper: ≤0.6°C.
	TmaxDeltaC float64
	// GradientDeltaC is avg(PracVT gradient − OracT gradient); paper: ≤0.3°C.
	GradientDeltaC float64
	// NoiseDeltaPct is max-noise(PracVT) − max-noise(all-on) over the
	// suite maxima; paper: ≤1.0%. NoiseDeltaOracVTPct is the same for
	// OracVT, whose emergency prediction is perfect: it isolates the cost
	// of the practical detector's ~10% misses.
	NoiseDeltaPct       float64
	NoiseDeltaOracVTPct float64
	// EtaShortfall is ηpeak − avg(PracVT η); paper: within 0.5-1% of peak.
	EtaShortfall float64
}

// Headline computes the summary from a sweep containing PracVT, OracT and
// AllOn.
func (s *Sweep) Headline(etaPeak float64) (*Headline, error) {
	var dT, dG, etaSum float64
	var maxPrac, maxOracVT, maxAllOn float64
	var n int
	for _, name := range BenchmarkOrder() {
		prac, err := s.Get(name, core.PracVT)
		if err != nil {
			return nil, err
		}
		orac, err := s.Get(name, core.OracT)
		if err != nil {
			return nil, err
		}
		oracVT, err := s.Get(name, core.OracVT)
		if err != nil {
			return nil, err
		}
		allon, err := s.Get(name, core.AllOn)
		if err != nil {
			return nil, err
		}
		dT += prac.MaxTempC - orac.MaxTempC
		dG += prac.MaxGradientC - orac.MaxGradientC
		etaSum += prac.AvgEta
		if prac.SampledMaxNoisePct > maxPrac {
			maxPrac = prac.SampledMaxNoisePct
		}
		if oracVT.SampledMaxNoisePct > maxOracVT {
			maxOracVT = oracVT.SampledMaxNoisePct
		}
		if allon.SampledMaxNoisePct > maxAllOn {
			maxAllOn = allon.SampledMaxNoisePct
		}
		n++
	}
	fn := float64(n)
	return &Headline{
		TmaxDeltaC:          dT / fn,
		GradientDeltaC:      dG / fn,
		NoiseDeltaPct:       maxPrac - maxAllOn,
		NoiseDeltaOracVTPct: maxOracVT - maxAllOn,
		EtaShortfall:        etaPeak - etaSum/fn,
	}, nil
}

// Table renders the headline as a paper-vs-measured comparison.
func (h *Headline) Table() *report.Table {
	t := &report.Table{
		ID:      "Headline",
		Title:   "PracVT vs oracle/best-case (Section 6.3 & abstract)",
		Columns: []string{"metric", "measured", "paper"},
	}
	t.AddRow("avg Tmax above OracT (°C)", fmt.Sprintf("%.2f", h.TmaxDeltaC), "0.6")
	t.AddRow("avg gradient above OracT (°C)", fmt.Sprintf("%.2f", h.GradientDeltaC), "0.3")
	t.AddRow("PracVT max noise above all-on (%)", fmt.Sprintf("%.2f", h.NoiseDeltaPct), "1.0")
	t.AddRow("OracVT max noise above all-on (%)", fmt.Sprintf("%.2f", h.NoiseDeltaOracVTPct), "~0 (converges)")
	t.AddRow("eta below peak", fmt.Sprintf("%.4f", h.EtaShortfall), "<0.01")
	return t
}
