package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"thermogater/internal/core"
	"thermogater/internal/pdn"
	"thermogater/internal/workload"
)

// testOptions keeps experiment runs short.
func testOptions() Options {
	return Options{DurationMS: 150, Seed: 1}
}

func TestFig1EfficiencySurvey(t *testing.T) {
	f, err := Fig1EfficiencySurvey()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 8 {
		t.Fatalf("Fig. 1 has %d series, want 8", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) != 25 {
			t.Errorf("%s: %d points", s.Label, len(s.X))
		}
		// Every curve rises then falls around its peak: max not at either end.
		peakAt, peak := 0, 0.0
		for i, y := range s.Y {
			if y > peak {
				peak, peakAt = y, i
			}
			if y < 0 || y > 100 {
				t.Errorf("%s: eta %v out of range", s.Label, y)
			}
		}
		if peakAt == 0 || peakAt == len(s.Y)-1 {
			t.Errorf("%s: peak at endpoint %d", s.Label, peakAt)
		}
		if peak < 75 || peak > 95 {
			t.Errorf("%s: peak eta %v outside the survey's 80-92%% band", s.Label, peak)
		}
	}
}

func TestFig2MultiPhase(t *testing.T) {
	f, err := Fig2MultiPhase()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 6 { // 5 phase counts + effective
		t.Fatalf("Fig. 2 has %d series, want 6", len(f.Series))
	}
	eff := f.Series[len(f.Series)-1]
	if eff.Label != "effective" {
		t.Fatalf("last series is %q", eff.Label)
	}
	// The effective curve dominates each fixed-phase-count curve.
	for _, s := range f.Series[:len(f.Series)-1] {
		for i := range s.Y {
			if s.Y[i] > eff.Y[i]+1e-9 {
				t.Fatalf("%s exceeds the effective curve at %vA", s.Label, s.X[i])
			}
		}
	}
	// And stays near the 90% peak over most of the range.
	for i, y := range eff.Y {
		if eff.X[i] > 1.0 && y < 89 {
			t.Errorf("effective eta %v%% at %vA, want ≥89%%", y, eff.X[i])
		}
	}
}

func TestFig5Calibration(t *testing.T) {
	f, err := Fig5Calibration()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 7 { // {2,3,4,6,8,9} + effective
		t.Fatalf("Fig. 5 has %d series, want 7", len(f.Series))
	}
	// Each fixed-count curve peaks at count × 1.5A.
	wantPeaks := []float64{3, 4.5, 6, 9, 12, 13.5}
	for k, s := range f.Series[:6] {
		peakAt, peak := 0.0, 0.0
		for i, y := range s.Y {
			if y > peak {
				peak, peakAt = y, s.X[i]
			}
		}
		if math.Abs(peakAt-wantPeaks[k]) > 0.3 {
			t.Errorf("%s peaks at %vA, want ≈%vA", s.Label, peakAt, wantPeaks[k])
		}
	}
}

func TestFig6ActiveRegulators(t *testing.T) {
	f, err := Fig6ActiveRegulators(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("Fig. 6 has %d series", len(f.Series))
	}
	power, active := f.Series[0], f.Series[1]
	if len(power.X) == 0 || len(power.X) != len(active.X) {
		t.Fatalf("series lengths %d, %d", len(power.X), len(active.X))
	}
	for i := range active.Y {
		if active.Y[i] < 16 || active.Y[i] > 96 {
			t.Fatalf("active count %v outside [16, 96]", active.Y[i])
		}
	}
}

func TestFig8NaiveProfile(t *testing.T) {
	f, err := Fig8NaiveProfile(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	temp, state := f.Series[0], f.Series[1]
	if len(temp.X) == 0 {
		t.Fatal("empty temperature trace")
	}
	toggles := 0
	for i := 1; i < len(state.Y); i++ {
		if state.Y[i] != state.Y[i-1] {
			toggles++
		}
	}
	if toggles < 2 {
		t.Errorf("regulator state toggled %d times; Fig. 8 needs visible gating", toggles)
	}
}

func TestFig12HeatMaps(t *testing.T) {
	frames, err := Fig12HeatMaps(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("%d frames, want 4", len(frames))
	}
	byPolicy := map[string]HeatMapFrame{}
	for _, fr := range frames {
		byPolicy[fr.Policy] = fr
		if len(fr.Grid) != 84 {
			t.Errorf("%s grid has %d rows", fr.Policy, len(fr.Grid))
		}
	}
	// Fig. 12 ordering: off-chip < OracT < all-on < OracV at the peak.
	if !(byPolicy["off-chip"].MaxTempC < byPolicy["oracT"].MaxTempC) {
		t.Errorf("off-chip %v not below OracT %v", byPolicy["off-chip"].MaxTempC, byPolicy["oracT"].MaxTempC)
	}
	if !(byPolicy["oracT"].MaxTempC < byPolicy["all-on"].MaxTempC) {
		t.Errorf("OracT %v not below all-on %v", byPolicy["oracT"].MaxTempC, byPolicy["all-on"].MaxTempC)
	}
	if !(byPolicy["all-on"].MaxTempC < byPolicy["oracV"].MaxTempC) {
		t.Errorf("all-on %v not below OracV %v", byPolicy["all-on"].MaxTempC, byPolicy["oracV"].MaxTempC)
	}
}

func TestFig13ActivityBins(t *testing.T) {
	f, err := Fig13ActivityBins(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("%d series, want 2", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) != 72 {
			t.Fatalf("%s has %d bars, want 72", s.Label, len(s.X))
		}
	}
	// OracT: memory bin (last 24) busier than logic bin; OracV: reverse.
	split := 48
	avg := func(ys []float64) float64 {
		var sum float64
		for _, y := range ys {
			sum += y
		}
		return sum / float64(len(ys))
	}
	oracT, oracV := f.Series[0], f.Series[1]
	if !(avg(oracT.Y[split:]) > avg(oracT.Y[:split])) {
		t.Error("OracT logic bin busier than memory bin")
	}
	if !(avg(oracV.Y[:split]) > avg(oracV.Y[split:])) {
		t.Error("OracV memory bin busier than logic bin")
	}
}

func TestFig14NoiseTransient(t *testing.T) {
	f, err := Fig14NoiseTransient(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("%d series, want 2", len(f.Series))
	}
	maxOfSeries := func(s []float64) float64 {
		m := s[0]
		for _, v := range s[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	oracT := maxOfSeries(f.Series[0].Y)
	oracV := maxOfSeries(f.Series[1].Y)
	// Fig. 14: OracV's transient peaks well below OracT's at the critical
	// sample.
	if oracV >= oracT {
		t.Errorf("OracV transient peak %v not below OracT %v", oracV, oracT)
	}
}

func TestFig15LDOvsFIVR(t *testing.T) {
	opts := testOptions()
	f, err := Fig15LDOvsFIVR(opts)
	if err != nil {
		t.Fatal(err)
	}
	ldo, fivr := f.Series[0], f.Series[1]
	if len(ldo.Y) != 15 || len(fivr.Y) != 15 { // 14 benchmarks + MAX
		t.Fatalf("series lengths %d, %d; want 15", len(ldo.Y), len(fivr.Y))
	}
	better := 0
	for i := range ldo.Y {
		if ldo.Y[i] <= fivr.Y[i]+1e-9 {
			better++
		}
	}
	if better < 13 {
		t.Errorf("LDO at or below FIVR on only %d/15 points", better)
	}
	// The advantage is small (paper: ≈0.7%% average, 1.1%% max).
	if gap := fivr.Y[14] - ldo.Y[14]; gap < 0 || gap > 3 {
		t.Errorf("overall max gap %v%% implausible", gap)
	}
}

func TestSweepDerivedArtifacts(t *testing.T) {
	opts := testOptions()
	sw, err := RunSweep(SweepPolicies(), opts)
	if err != nil {
		t.Fatal(err)
	}

	fig7, err := sw.Fig7PlossSaving()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7.Rows) != 15 { // 14 benchmarks + AVG
		t.Fatalf("Fig. 7 has %d rows", len(fig7.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	byName := map[string]float64{}
	for _, row := range fig7.Rows {
		byName[row[0]] = parse(row[1])
	}
	// The Fig. 7 extremes and average band.
	if !(byName["rayt"] > byName["chol"]) {
		t.Errorf("raytrace saving %v not above cholesky %v", byName["rayt"], byName["chol"])
	}
	if byName["chol"] > 20 {
		t.Errorf("cholesky saving %v%%, paper reports ≈10%%", byName["chol"])
	}
	if byName["rayt"] < 35 {
		t.Errorf("raytrace saving %v%%, paper reports ≈50%%", byName["rayt"])
	}
	if avg := byName["AVG"]; avg < 15 || avg > 40 {
		t.Errorf("average saving %v%%, paper reports ≈26.5%%", avg)
	}

	fig9, err := sw.Fig9Tmax()
	if err != nil {
		t.Fatal(err)
	}
	fig10, err := sw.Fig10Gradient()
	if err != nil {
		t.Fatal(err)
	}
	fig11, err := sw.Fig11VoltageNoise()
	if err != nil {
		t.Fatal(err)
	}
	tab2, err := sw.Table2Emergencies()
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*struct {
		name string
		rows int
		got  int
	}{
		{"Fig9", 15, len(fig9.Rows)},
		{"Fig10", 15, len(fig10.Rows)},
		{"Fig11", 15, len(fig11.Rows)},
		{"Table2", 15, len(tab2.Rows)},
	} {
		if tab.got != tab.rows {
			t.Errorf("%s has %d rows, want %d", tab.name, tab.got, tab.rows)
		}
	}

	// Fig. 9 AVG ordering: oracV hottest gated, oracT below all-on.
	colOf := func(tbl [][]string, cols []string, name string) int {
		for i, c := range cols {
			if c == name {
				return i
			}
		}
		t.Fatalf("no column %q", name)
		return -1
	}
	avgRow := fig9.Rows[len(fig9.Rows)-1]
	oracTC := parse(avgRow[colOf(fig9.Rows, fig9.Columns, "oracT")])
	oracVC := parse(avgRow[colOf(fig9.Rows, fig9.Columns, "oracV")])
	allonC := parse(avgRow[colOf(fig9.Rows, fig9.Columns, "all-on")])
	offC := parse(avgRow[colOf(fig9.Rows, fig9.Columns, "off-chip")])
	if !(offC < oracTC && oracTC < allonC && allonC < oracVC) {
		t.Errorf("Fig. 9 AVG ordering violated: off %v oracT %v all-on %v oracV %v",
			offC, oracTC, allonC, oracVC)
	}

	// Table 2: barnes highest, lu benchmarks zero.
	t2 := map[string]float64{}
	for _, row := range tab2.Rows {
		t2[row[0]] = parse(row[1])
	}
	if t2["barnes"] <= t2["chol"] {
		t.Errorf("barnes emergencies %v not above cholesky %v", t2["barnes"], t2["chol"])
	}
	if t2["lu_cb"] != 0 || t2["lu_ncb"] != 0 || t2["water_n"] != 0 {
		t.Errorf("lu_cb/lu_ncb/water_n emergencies non-zero: %v %v %v",
			t2["lu_cb"], t2["lu_ncb"], t2["water_n"])
	}

	// Headline: PracVT within a degree of OracT thermally, noise near
	// all-on, efficiency near the peak.
	h, err := sw.Headline(0.90)
	if err != nil {
		t.Fatal(err)
	}
	if h.TmaxDeltaC < -0.5 || h.TmaxDeltaC > 2.0 {
		t.Errorf("headline Tmax delta %v°C (paper 0.6)", h.TmaxDeltaC)
	}
	if h.GradientDeltaC < -0.5 || h.GradientDeltaC > 2.0 {
		t.Errorf("headline gradient delta %v°C (paper 0.3)", h.GradientDeltaC)
	}
	if h.EtaShortfall > 0.012 {
		t.Errorf("headline eta shortfall %v (paper <0.01)", h.EtaShortfall)
	}
	var buf bytes.Buffer
	if err := h.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PracVT") {
		t.Error("headline table missing title")
	}
}

func TestRunSweepValidation(t *testing.T) {
	if _, err := RunSweep(nil, testOptions()); err == nil {
		t.Error("empty policy sweep accepted")
	}
}

func TestSweepGetErrors(t *testing.T) {
	opts := testOptions()
	real, err := RunSweep([]core.PolicyKind{core.AllOn}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := real.Get("nope", core.AllOn); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := real.Get("fft", core.OracT); err == nil {
		t.Error("missing policy accepted")
	}
	if _, err := real.Get("fft", core.AllOn); err != nil {
		t.Errorf("valid cell rejected: %v", err)
	}
}

func TestLDOConfigSwitchesDesign(t *testing.T) {
	opts := testOptions()
	p, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	l := ldoConfig(opts.simConfig(core.AllOn, p))
	if l.Design.Name != "POWER8-LDO" {
		t.Errorf("design = %s", l.Design.Name)
	}
	if l.PDN.ResponseTimeNS >= pdn.DefaultConfig().ResponseTimeNS {
		t.Error("LDO PDN not faster than default")
	}
}

func TestAgingComparison(t *testing.T) {
	tab, err := AgingComparison("lu_ncb", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		if row[1] == "inf" {
			continue
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[1], err)
		}
		vals[row[0]] = v
	}
	// OracV's pinned logic regulators die first (Section 7).
	if !(vals["oracV"] < vals["all-on"]) {
		t.Errorf("OracV MTTF %v not below all-on %v", vals["oracV"], vals["all-on"])
	}
	if !(vals["oracT"] > vals["oracV"]) {
		t.Errorf("OracT MTTF %v not above OracV %v", vals["oracT"], vals["oracV"])
	}
}

func TestDVFSComparison(t *testing.T) {
	tab, err := DVFSComparison("raytrace", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	parseRow := func(name string) (float64, float64) {
		for _, row := range tab.Rows {
			if row[0] == name {
				a, err1 := strconv.ParseFloat(row[1], 64)
				b, err2 := strconv.ParseFloat(row[2], 64)
				if err1 != nil || err2 != nil {
					t.Fatalf("parse row %q: %v %v", name, err1, err2)
				}
				return a, b
			}
		}
		t.Fatalf("no row %q", name)
		return 0, 0
	}
	basePower, dvfsPower := parseRow("avg chip power (W)")
	if dvfsPower >= basePower {
		t.Errorf("DVFS power %v not below nominal %v", dvfsPower, basePower)
	}
	if _, err := AgingComparison("doom", testOptions()); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := DVFSComparison("doom", testOptions()); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
