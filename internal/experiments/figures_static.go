package experiments

import (
	"fmt"

	"thermogater/internal/report"
	"thermogater/internal/vr"
)

// Fig1EfficiencySurvey regenerates Fig. 1: the reported η-vs-Iout curves of
// eight highly optimized ISSCC 2015 regulator designs, spanning load
// currents from tens of microamps to ten amps.
func Fig1EfficiencySurvey() (*report.Figure, error) {
	f := &report.Figure{
		ID:     "Fig. 1",
		Title:  "Power conversion efficiency of recent ISSCC 2015 regulators",
		XLabel: "Iout (A)",
		YLabel: "eta (%)",
		Notes: []string{
			"operating points are representative values from the cited ISSCC'15 papers",
		},
	}
	for _, e := range vr.ISSCC2015Survey() {
		c, err := e.Design.Curve()
		if err != nil {
			return nil, err
		}
		xs, ys := c.Sample(e.IMinA, e.IMaxA, 25)
		for i := range ys {
			ys[i] *= 100
		}
		f.Series = append(f.Series, report.Series{
			Label: fmt.Sprintf("%s %s (%s)", e.Ref, e.Author, e.Design.Name),
			X:     xs,
			Y:     ys,
		})
	}
	return f, nil
}

// Fig2MultiPhase regenerates Fig. 2: the 16-phase Intel buck regulator's
// per-phase-count efficiency curves plus the effective curve gating
// sustains.
func Fig2MultiPhase() (*report.Figure, error) {
	design, phaseCounts := vr.IntelMultiPhase16()
	nw, err := vr.NewNetwork(design, 16)
	if err != nil {
		return nil, err
	}
	f := &report.Figure{
		ID:     "Fig. 2",
		Title:  "Efficiency of a 16-phase regulator vs active phase count",
		XLabel: "Iout (A)",
		YLabel: "eta (%)",
	}
	const points = 65
	for _, n := range phaseCounts {
		c, err := nw.CurveFor(n)
		if err != nil {
			return nil, err
		}
		xs, ys := c.SampleLinear(0.05, 16, points)
		for i := range ys {
			ys[i] *= 100
		}
		f.Series = append(f.Series, report.Series{
			Label: fmt.Sprintf("%d phases", n), X: xs, Y: ys,
		})
	}
	xs := make([]float64, points)
	ys := make([]float64, points)
	for i := range xs {
		xs[i] = 0.05 + float64(i)*(16-0.05)/float64(points-1)
		ys[i] = nw.EffectiveEta(xs[i]) * 100
	}
	f.Series = append(f.Series, report.Series{Label: "effective", X: xs, Y: ys})
	return f, nil
}

// Fig5Calibration regenerates Fig. 5: the per-core-domain calibration
// curves — a 9-regulator FIVR-like network at the paper's active counts
// {2, 3, 4, 6, 8, 9} plus the effective gated curve.
func Fig5Calibration() (*report.Figure, error) {
	nw, err := vr.NewNetwork(vr.FIVR(), 9)
	if err != nil {
		return nil, err
	}
	f := &report.Figure{
		ID:     "Fig. 5",
		Title:  "Per-core-domain eta vs Iout used for calibration (9 FIVR-like VRs)",
		XLabel: "Iout (A)",
		YLabel: "eta (%)",
	}
	const points = 61
	for _, n := range []int{2, 3, 4, 6, 8, 9} {
		c, err := nw.CurveFor(n)
		if err != nil {
			return nil, err
		}
		xs, ys := c.SampleLinear(0.05, 15, points)
		for i := range ys {
			ys[i] *= 100
		}
		f.Series = append(f.Series, report.Series{
			Label: fmt.Sprintf("%d active", n), X: xs, Y: ys,
		})
	}
	xs := make([]float64, points)
	ys := make([]float64, points)
	for i := range xs {
		xs[i] = 0.05 + float64(i)*(15-0.05)/float64(points-1)
		ys[i] = nw.EffectiveEta(xs[i]) * 100
	}
	f.Series = append(f.Series, report.Series{Label: "effective", X: xs, Y: ys})
	return f, nil
}
