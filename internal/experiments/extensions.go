package experiments

import (
	"fmt"
	"math"

	"thermogater/internal/core"
	"thermogater/internal/dvfs"
	"thermogater/internal/report"
	"thermogater/internal/workload"
)

// AgingComparison quantifies the paper's Section 7 aging discussion: for
// one benchmark, it runs the main gating policies with the wear tracker
// enabled and tabulates the weakest regulator's extrapolated lifetime and
// the wear-balance ratio per policy. The expected story: all-on spreads
// wear thinly; OracT parks its busy regulators in cool regions; OracV
// pins hot logic-side regulators and ages them fastest.
func AgingComparison(benchmark string, opts Options) (*report.Table, error) {
	bench, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "Aging",
		Title:   fmt.Sprintf("Regulator wear-out per policy (%s, Black's equation)", bench.Name),
		Columns: []string{"policy", "min MTTF (years)", "wear imbalance (max/mean)"},
	}
	for _, p := range []core.PolicyKind{core.AllOn, core.Naive, core.OracT, core.OracV, core.PracVT} {
		cfg := opts.simConfig(p, bench)
		cfg.TrackAging = true
		res, err := runOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", p, err)
		}
		mttf := "inf"
		if !math.IsInf(res.MinMTTFYears, 1) {
			mttf = fmt.Sprintf("%.1f", res.MinMTTFYears)
		}
		t.AddRow(p.String(), mttf, fmt.Sprintf("%.2f", res.AgingImbalance))
	}
	return t, nil
}

// DVFSComparison runs one benchmark with and without the per-core DVFS
// layer under the practical governor and tabulates the power/performance/
// efficiency trade — the fine-grain voltage control that integrated
// regulation exists to enable (Section 1).
func DVFSComparison(benchmark string, opts Options) (*report.Table, error) {
	bench, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "DVFS",
		Title:   fmt.Sprintf("Per-core DVFS under ThermoGater (%s, PracVT)", bench.Name),
		Columns: []string{"metric", "nominal", "with DVFS"},
	}
	base, err := runOne(opts.simConfig(core.PracVT, bench))
	if err != nil {
		return nil, err
	}
	cfg := opts.simConfig(core.PracVT, bench)
	d := dvfs.DefaultConfig()
	cfg.DVFS = &d
	scaled, err := runOne(cfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("avg chip power (W)",
		fmt.Sprintf("%.1f", base.AvgChipPowerW), fmt.Sprintf("%.1f", scaled.AvgChipPowerW))
	t.AddRow("avg conversion loss (W)",
		fmt.Sprintf("%.2f", base.AvgPlossW), fmt.Sprintf("%.2f", scaled.AvgPlossW))
	t.AddRow("avg conversion efficiency",
		fmt.Sprintf("%.4f", base.AvgEta), fmt.Sprintf("%.4f", scaled.AvgEta))
	t.AddRow("max temperature (°C)",
		fmt.Sprintf("%.2f", base.MaxTempC), fmt.Sprintf("%.2f", scaled.MaxTempC))
	t.AddRow("avg performance scale",
		"1.000", fmt.Sprintf("%.3f", scaled.DVFSAvgPerf))
	return t, nil
}
