package aging

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidation(t *testing.T) {
	muts := []func(*Model){
		func(m *Model) { m.ActivationEnergyEV = 0 },
		func(m *Model) { m.CurrentExponent = -1 },
		func(m *Model) { m.RefTempC = -300 },
		func(m *Model) { m.RefCurrentA = 0 },
		func(m *Model) { m.RefLifetimeHours = 0 },
	}
	for i, mut := range muts {
		m := DefaultModel()
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestAccelerationReference(t *testing.T) {
	m := DefaultModel()
	// At exactly the reference stress the acceleration is 1.
	if a := m.Acceleration(m.RefTempC, m.RefCurrentA); math.Abs(a-1) > 1e-12 {
		t.Errorf("reference acceleration = %v, want 1", a)
	}
}

func TestAccelerationTemperature(t *testing.T) {
	m := DefaultModel()
	cool := m.Acceleration(60, m.RefCurrentA)
	ref := m.Acceleration(80, m.RefCurrentA)
	hot := m.Acceleration(100, m.RefCurrentA)
	if !(cool < ref && ref < hot) {
		t.Errorf("acceleration not increasing with T: %v %v %v", cool, ref, hot)
	}
	// Arrhenius with Ea=0.9eV roughly doubles every ~10°C around 80°C.
	if hot/ref < 3 || hot/ref > 8 {
		t.Errorf("20°C acceleration ratio = %v, expected strong exponential", hot/ref)
	}
}

func TestAccelerationCurrent(t *testing.T) {
	m := DefaultModel()
	// Black's n=2: double the current, 4× the wear.
	ratio := m.Acceleration(80, 3.0) / m.Acceleration(80, 1.5)
	if math.Abs(ratio-4) > 1e-9 {
		t.Errorf("current acceleration ratio = %v, want 4", ratio)
	}
	if m.Acceleration(80, 0) != 0 {
		t.Error("gated regulator must not age")
	}
	if m.Acceleration(80, -1) != 0 {
		t.Error("negative current must not age")
	}
}

func TestTrackerBasics(t *testing.T) {
	tr, err := NewTracker(3, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	temps := []float64{80, 100, 80}
	cur := []float64{1.5, 1.5, 0}
	if err := tr.Observe(temps, cur, 3600); err != nil {
		t.Fatal(err)
	}
	d := tr.Damage()
	if d[0] <= 0 || d[1] <= d[0] || d[2] != 0 {
		t.Errorf("damage = %v; want hot > ref > gated(0)", d)
	}
	years := tr.MTTFYears()
	// The reference-stress regulator extrapolates to the reference life.
	if math.Abs(years[0]-10) > 0.01 {
		t.Errorf("reference MTTF = %v years, want 10", years[0])
	}
	if years[1] >= years[0] {
		t.Errorf("hot regulator MTTF %v not below reference %v", years[1], years[0])
	}
	if !math.IsInf(years[2], 1) {
		t.Errorf("never-on regulator MTTF = %v, want +Inf", years[2])
	}
	if got := tr.MinMTTFYears(); got != years[1] {
		t.Errorf("MinMTTF = %v, want %v", got, years[1])
	}
	if tr.ObservedSeconds() != 3600 {
		t.Errorf("observed %v s", tr.ObservedSeconds())
	}
}

func TestTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0, DefaultModel()); err == nil {
		t.Error("zero regulators accepted")
	}
	bad := DefaultModel()
	bad.CurrentExponent = 0
	if _, err := NewTracker(2, bad); err == nil {
		t.Error("invalid model accepted")
	}
	tr, _ := NewTracker(2, DefaultModel())
	if err := tr.Observe([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := tr.Observe([]float64{1, 2}, []float64{1, 2}, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestImbalanceRatio(t *testing.T) {
	tr, _ := NewTracker(4, DefaultModel())
	if tr.ImbalanceRatio() != 0 {
		t.Error("fresh tracker imbalance not zero")
	}
	// Balanced wear.
	temps := []float64{80, 80, 80, 80}
	cur := []float64{1.5, 1.5, 1.5, 1.5}
	_ = tr.Observe(temps, cur, 100)
	if r := tr.ImbalanceRatio(); math.Abs(r-1) > 1e-9 {
		t.Errorf("balanced imbalance = %v, want 1", r)
	}
	// Concentrate further wear on one regulator.
	cur = []float64{1.5, 0, 0, 0}
	for i := 0; i < 10; i++ {
		_ = tr.Observe(temps, cur, 100)
	}
	if r := tr.ImbalanceRatio(); r <= 1.5 {
		t.Errorf("concentrated imbalance = %v, want well above 1", r)
	}
	// The metric is bounded by the regulator count (all damage on one).
	if r := tr.ImbalanceRatio(); r > 4 {
		t.Errorf("imbalance %v exceeds the regulator count", r)
	}
}

func TestDamageIsCopied(t *testing.T) {
	tr, _ := NewTracker(2, DefaultModel())
	_ = tr.Observe([]float64{80, 80}, []float64{1, 1}, 100)
	d := tr.Damage()
	d[0] = 1e9
	if tr.Damage()[0] == 1e9 {
		t.Error("Damage returned a live reference")
	}
}

// Property: acceleration is monotonic in both temperature and current.
func TestAccelerationMonotonicity(t *testing.T) {
	m := DefaultModel()
	f := func(rawT, rawI float64) bool {
		tC := 40 + math.Mod(math.Abs(rawT), 80) // 40..120°C
		iA := 0.1 + math.Mod(math.Abs(rawI), 2) // 0.1..2.1A
		a := m.Acceleration(tC, iA)
		return m.Acceleration(tC+5, iA) > a && m.Acceleration(tC, iA*1.1) > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
