// Package aging models regulator wear-out, quantifying the paper's
// Section 7 discussion: "ThermoGater policies are likely to affect aging
// because utilization per regulator does not necessarily stay uniform
// throughout the execution … particularly considering wear-out paradigms
// where aging rate increases exponentially with temperature."
//
// The model follows Black's equation for electromigration-class wear-out:
// the instantaneous aging rate of an active regulator scales with a power
// of its current density and an Arrhenius exponential of its absolute
// temperature. Integrating the rate over a run yields per-regulator
// damage, from which mean-time-to-failure estimates and utilisation/aging
// balance metrics are derived — the quantities that distinguish a policy
// that concentrates wear (OracV pinning the same logic-side regulators
// on) from one that spreads it (rotation) or parks it in cool regions
// (OracT, whose highly utilised regulators sit near memory).
package aging

import (
	"errors"
	"fmt"
	"math"
)

// Model holds the Black's-equation parameters.
type Model struct {
	// ActivationEnergyEV is the Arrhenius activation energy (eV);
	// electromigration in copper interconnect is typically ≈0.9eV.
	ActivationEnergyEV float64
	// CurrentExponent is Black's current-density exponent n (≈2).
	CurrentExponent float64
	// RefTempC and RefCurrentA define the reference stress condition at
	// which an always-on regulator lasts RefLifetimeHours.
	RefTempC         float64
	RefCurrentA      float64
	RefLifetimeHours float64
}

// DefaultModel returns electromigration-like constants referenced to a
// regulator carrying its 1.5A peak share at 80°C lasting 10 years.
func DefaultModel() Model {
	return Model{
		ActivationEnergyEV: 0.9,
		CurrentExponent:    2.0,
		RefTempC:           80,
		RefCurrentA:        1.5,
		RefLifetimeHours:   10 * 365.25 * 24,
	}
}

// Validate rejects non-physical parameters.
func (m Model) Validate() error {
	if m.ActivationEnergyEV <= 0 || m.CurrentExponent <= 0 {
		return errors.New("aging: activation energy and current exponent must be positive")
	}
	if m.RefTempC <= -273.15 {
		return errors.New("aging: reference temperature below absolute zero")
	}
	if m.RefCurrentA <= 0 || m.RefLifetimeHours <= 0 {
		return errors.New("aging: reference stress must be positive")
	}
	return nil
}

// boltzmannEVPerK is the Boltzmann constant in eV/K.
const boltzmannEVPerK = 8.617333262e-5

// Acceleration returns the aging-rate acceleration factor of the given
// stress condition relative to the model's reference: >1 means faster
// wear. Gated regulators (zero current) do not age.
func (m Model) Acceleration(tempC, currentA float64) float64 {
	if currentA <= 0 {
		return 0
	}
	tK := tempC + 273.15
	refK := m.RefTempC + 273.15
	if tK <= 0 {
		return 0
	}
	arrhenius := math.Exp(m.ActivationEnergyEV / boltzmannEVPerK * (1/refK - 1/tK))
	current := math.Pow(currentA/m.RefCurrentA, m.CurrentExponent)
	return arrhenius * current
}

// Tracker integrates per-regulator damage over a run.
type Tracker struct {
	model  Model
	damage []float64 // reference-hours of equivalent wear
	time   float64   // observed seconds
}

// NewTracker creates a tracker for n regulators.
func NewTracker(n int, model Model) (*Tracker, error) {
	if n < 1 {
		return nil, errors.New("aging: need at least one regulator")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{model: model, damage: make([]float64, n)}, nil
}

// Observe accumulates dtS seconds of stress: tempC and currentA hold each
// regulator's temperature and carried current (zero when gated).
func (t *Tracker) Observe(tempC, currentA []float64, dtS float64) error {
	if len(tempC) != len(t.damage) || len(currentA) != len(t.damage) {
		return fmt.Errorf("aging: got %d temps and %d currents for %d regulators",
			len(tempC), len(currentA), len(t.damage))
	}
	if dtS <= 0 {
		return errors.New("aging: non-positive interval")
	}
	hours := dtS / 3600
	for i := range t.damage {
		t.damage[i] += t.model.Acceleration(tempC[i], currentA[i]) * hours
	}
	t.time += dtS
	return nil
}

// ObservedSeconds returns the total stress time integrated so far.
func (t *Tracker) ObservedSeconds() float64 { return t.time }

// Damage returns the accumulated per-regulator damage in equivalent
// reference-hours.
func (t *Tracker) Damage() []float64 {
	return append([]float64(nil), t.damage...)
}

// MTTFYears extrapolates each regulator's mean time to failure assuming
// the observed stress pattern repeats: lifetime = RefLifetime / average
// acceleration. Regulators that never aged return +Inf.
func (t *Tracker) MTTFYears() []float64 {
	out := make([]float64, len(t.damage))
	obsHours := t.time / 3600
	if obsHours <= 0 {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	for i, d := range t.damage {
		if d <= 0 {
			out[i] = math.Inf(1)
			continue
		}
		avgAccel := d / obsHours
		if avgAccel <= 0 {
			out[i] = math.Inf(1) // damage too small to register over this horizon
			continue
		}
		out[i] = t.model.RefLifetimeHours / avgAccel / (365.25 * 24)
	}
	return out
}

// MinMTTFYears returns the weakest regulator's lifetime — the number a
// yield/reliability engineer cares about.
func (t *Tracker) MinMTTFYears() float64 {
	min := math.Inf(1)
	for _, y := range t.MTTFYears() {
		if y < min {
			min = y
		}
	}
	return min
}

// State is a tracker snapshot for checkpointing; the model itself is
// configuration and is rebuilt, not restored.
type State struct {
	Damage []float64
	TimeS  float64
}

// State snapshots the tracker.
func (t *Tracker) State() *State {
	return &State{Damage: append([]float64(nil), t.damage...), TimeS: t.time}
}

// Restore loads a snapshot taken by State on a tracker of the same size.
func (t *Tracker) Restore(s *State) error {
	if s == nil {
		return errors.New("aging: nil state")
	}
	if len(s.Damage) != len(t.damage) {
		return fmt.Errorf("aging: state covers %d regulators, tracker has %d", len(s.Damage), len(t.damage))
	}
	if s.TimeS < 0 {
		return errors.New("aging: negative observed time in state")
	}
	copy(t.damage, s.Damage)
	t.time = s.TimeS
	return nil
}

// ImbalanceRatio returns max damage / mean damage over all regulators:
// 1.0 means perfectly balanced wear; large values mean a few regulators
// absorb most of the stress while others idle (the wear-concentration
// signature of policies that pin the same regulators on). Returns 0 when
// nothing aged.
func (t *Tracker) ImbalanceRatio() float64 {
	var sum, max float64
	for _, d := range t.damage {
		sum += d
		if d > max {
			max = d
		}
	}
	//lint:ignore floatcheck damage terms are nonnegative, so the sum is exactly zero iff nothing ever aged
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(t.damage)))
}
