package fault

import (
	"math"
	"testing"
)

func testTopo() Topology {
	return Topology{
		NumVRs:   12,
		NumCores: 4,
		SensorGroups: [][]int{
			{0, 1, 2, 3, 4, 5},
			{6, 7, 8, 9, 10, 11},
		},
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []Event{
		{Kind: Kind(99), Epoch: 0},
		{Kind: VRStuckOff, Epoch: -1},
		{Kind: VRStuckOff, Epoch: 0, DurationEpochs: -2},
		{Kind: VRStuckOff, Epoch: 0, Unit: -3},
		{Kind: VRPhaseLoss, Epoch: 0, Value: 0},
		{Kind: VRPhaseLoss, Epoch: 0, Value: 1.5},
		{Kind: VRDerate, Epoch: 0, Value: -0.1},
		{Kind: SensorStuckAt, Epoch: 0, Value: math.NaN()},
		{Kind: SensorStuckAt, Epoch: 0, Value: math.Inf(1)},
		{Kind: SensorStuckAt, Epoch: 0, Value: -500},
		{Kind: SensorNoise, Epoch: 0, Value: 0},
		{Kind: SensorQuantize, Epoch: 0, Value: -1},
		{Kind: TraceSpike, Epoch: 0, Value: 0},
	}
	for i, e := range bad {
		s := &Schedule{Events: []Event{e}}
		if err := s.Validate(); err == nil {
			t.Errorf("bad event %d (%+v) accepted", i, e)
		}
	}
	good := &Schedule{Events: []Event{
		{Kind: VRStuckOff, Epoch: 3, Unit: 2},
		{Kind: SensorNoise, Epoch: 0, Unit: -1, Value: 0.1},
		{Kind: TraceGap, Epoch: 5, DurationEpochs: 10, Unit: 1},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("good schedule rejected: %v", err)
	}
	var nilSched *Schedule
	if err := nilSched.Validate(); err != nil {
		t.Errorf("nil schedule rejected: %v", err)
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("vr-stuck-off@30:unit=12; sensor-noise@0:value=0.1 ; trace-gap@40+20:unit=3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: VRStuckOff, Epoch: 30, Unit: 12},
		{Kind: SensorNoise, Epoch: 0, Unit: -1, Value: 0.1},
		{Kind: TraceGap, Epoch: 40, DurationEpochs: 20, Unit: 3},
	}
	if len(s.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(s.Events), len(want))
	}
	for i := range want {
		if s.Events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, s.Events[i], want[i])
		}
	}
	if s, err := ParseSchedule("  "); err != nil || s != nil {
		t.Errorf("blank spec: got %v, %v", s, err)
	}
	for _, bad := range []string{
		"vr-stuck-off",                // no epoch
		"nonsense@0",                  // unknown kind
		"vr-stuck-off@x",              // bad epoch
		"vr-stuck-off@0+0",            // zero duration
		"vr-stuck-off@0:unit",         // bad option
		"vr-stuck-off@0:frob=1",       // unknown option
		"sensor-noise@0",              // missing required value
		"sensor-noise@0:value=banana", // bad value
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestInjectorLifecycle(t *testing.T) {
	sched := &Schedule{Events: []Event{
		{Kind: VRStuckOff, Epoch: 5, Unit: 3},
		{Kind: VRStuckOn, Epoch: 5, DurationEpochs: 3, Unit: 4},
		{Kind: VRPhaseLoss, Epoch: 2, Unit: 7, Value: 0.5},
		{Kind: VRDerate, Epoch: 10, Unit: 8, Value: 0.5},
	}}
	inj, err := New(sched, testTopo(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if f, c := inj.Advance(0); f != 0 || c != 0 {
		t.Errorf("epoch 0 transitions: fired=%d cleared=%d", f, c)
	}
	if inj.VRStatusOf(3) != VRHealthy || inj.IMaxFrac(7) != 1.0 {
		t.Error("faults active before their epoch")
	}
	if f, _ := inj.Advance(2); f != 1 {
		t.Errorf("epoch 2 fired %d, want 1 (phase loss)", f)
	}
	if inj.IMaxFrac(7) != 0.5 {
		t.Errorf("IMaxFrac(7) = %v, want 0.5", inj.IMaxFrac(7))
	}
	if f, _ := inj.Advance(5); f != 2 {
		t.Errorf("epoch 5 fired %d, want 2", f)
	}
	if inj.VRStatusOf(3) != VRFailedOff || inj.VRStatusOf(4) != VRFailedOn {
		t.Errorf("stuck states: %v, %v", inj.VRStatusOf(3), inj.VRStatusOf(4))
	}
	if !inj.VRDirty() {
		t.Error("VRDirty false with active VR faults")
	}
	if _, c := inj.Advance(8); c != 1 {
		t.Error("stuck-on did not clear after its duration")
	}
	if inj.VRStatusOf(4) != VRHealthy {
		t.Error("stuck-on persists past its duration")
	}
	// Derate grows linearly from onset and saturates.
	inj.Advance(10)
	if got := inj.LossMult(8); got != 1.0 {
		t.Errorf("derate mult at onset = %v, want 1.0", got)
	}
	inj.Advance(12)
	if got := inj.LossMult(8); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("derate mult after 2 epochs = %v, want 2.0", got)
	}
	inj.Advance(1000)
	if got := inj.LossMult(8); got != MaxLossMultiplier {
		t.Errorf("derate mult uncapped: %v", got)
	}
}

func TestInjectorRejectsOutOfRangeUnit(t *testing.T) {
	sched := &Schedule{Events: []Event{{Kind: VRStuckOff, Epoch: 0, Unit: 200}}}
	if _, err := New(sched, testTopo(), 1); err == nil {
		t.Error("unit beyond topology accepted")
	}
	sched = &Schedule{Events: []Event{{Kind: TraceGap, Epoch: 0, Unit: 9}}}
	if _, err := New(sched, testTopo(), 1); err == nil {
		t.Error("core unit beyond topology accepted")
	}
}

func TestApplySensors(t *testing.T) {
	sched := &Schedule{Events: []Event{
		{Kind: SensorStuckAt, Epoch: 0, Unit: 0, Value: 40},
		{Kind: SensorQuantize, Epoch: 0, Unit: 1, Value: 5},
		{Kind: SensorNoise, Epoch: 0, Unit: 2, Value: 0.1},
		{Kind: SensorDropout, Epoch: 1, Unit: 3},
	}}
	inj, err := New(sched, testTopo(), 7)
	if err != nil {
		t.Fatal(err)
	}
	inj.Advance(0)
	raw := []float64{60, 61, 62, 63, 64, 65, 66, 67, 68, 69, 70, 71}
	fb, err := inj.ApplySensors(raw)
	if err != nil {
		t.Fatal(err)
	}
	if fb != 0 {
		t.Errorf("epoch 0 fallbacks = %d, want 0", fb)
	}
	if raw[0] != 40 {
		t.Errorf("stuck sensor reads %v, want 40", raw[0])
	}
	if raw[1] != 60 {
		t.Errorf("quantized sensor reads %v, want 60", raw[1])
	}
	if raw[2] == 62 {
		t.Error("noisy sensor unperturbed")
	}
	if raw[4] != 64 {
		t.Errorf("healthy sensor perturbed: %v", raw[4])
	}
	// Dropout falls back to last-good (63 recorded at epoch 0).
	inj.Advance(1)
	raw2 := []float64{60, 61, 62, 99, 64, 65, 66, 67, 68, 69, 70, 71}
	fb, err = inj.ApplySensors(raw2)
	if err != nil {
		t.Fatal(err)
	}
	if fb != 1 {
		t.Errorf("fallbacks = %d, want 1", fb)
	}
	if raw2[3] != 63 {
		t.Errorf("dropout fallback reads %v, want last-good 63", raw2[3])
	}
}

func TestApplySensorsNeighborMedian(t *testing.T) {
	// Dropout active from epoch 0: no last-good exists, so the group
	// median must fill in.
	sched := &Schedule{Events: []Event{{Kind: SensorDropout, Epoch: 0, Unit: 2}}}
	inj, err := New(sched, testTopo(), 7)
	if err != nil {
		t.Fatal(err)
	}
	inj.Advance(0)
	raw := []float64{50, 52, 999, 54, 56, 58, 70, 70, 70, 70, 70, 70}
	fb, err := inj.ApplySensors(raw)
	if err != nil {
		t.Fatal(err)
	}
	if fb != 1 {
		t.Errorf("fallbacks = %d, want 1", fb)
	}
	// Neighbors in group 0 excluding unit 2: 50, 52, 54, 56, 58 → median 54.
	if raw[2] != 54 {
		t.Errorf("median fallback reads %v, want 54", raw[2])
	}
}

func TestInjectorDeterminismAndRestore(t *testing.T) {
	sched := &Schedule{Events: []Event{
		{Kind: SensorNoise, Epoch: 0, Unit: -1, Value: 0.05},
		{Kind: SensorDropout, Epoch: 3, Unit: 5},
	}}
	runFrom := func(inj *Injector, from, to int) [][]float64 {
		var out [][]float64
		for e := from; e < to; e++ {
			inj.Advance(e)
			raw := make([]float64, 12)
			for i := range raw {
				raw[i] = 50 + float64(i) + float64(e)
			}
			if _, err := inj.ApplySensors(raw); err != nil {
				t.Fatal(err)
			}
			out = append(out, raw)
		}
		return out
	}
	a, err := New(sched, testTopo(), 99)
	if err != nil {
		t.Fatal(err)
	}
	full := runFrom(a, 0, 10)

	b, err := New(sched, testTopo(), 99)
	if err != nil {
		t.Fatal(err)
	}
	prefix := runFrom(b, 0, 6)
	snap := b.State()

	c, err := New(sched, testTopo(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	suffix := runFrom(c, 6, 10)

	resumed := append(prefix, suffix...)
	for e := range full {
		for i := range full[e] {
			if full[e][i] != resumed[e][i] {
				t.Fatalf("epoch %d sensor %d: full %v, resumed %v", e, i, full[e][i], resumed[e][i])
			}
		}
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	sched := &Schedule{Events: []Event{{Kind: SensorDropout, Epoch: 0, Unit: 1}}}
	inj, err := New(sched, testTopo(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Restore(nil); err == nil {
		t.Error("nil state accepted")
	}
	if err := inj.Restore(&State{LastGood: make([]float64, 3), HaveGood: make([]bool, 3)}); err == nil {
		t.Error("short state accepted")
	}
	if err := inj.Restore(&State{
		LastGood: make([]float64, 12), HaveGood: make([]bool, 12), Active: make([]bool, 5),
	}); err == nil {
		t.Error("event-count mismatch accepted")
	}
}

func TestTraceAccessors(t *testing.T) {
	sched := &Schedule{Events: []Event{
		{Kind: TraceGap, Epoch: 1, Unit: 0},
		{Kind: TraceSpike, Epoch: 1, Unit: 2, Value: 1.8},
	}}
	inj, err := New(sched, testTopo(), 1)
	if err != nil {
		t.Fatal(err)
	}
	inj.Advance(0)
	if inj.TraceGap(0) {
		t.Error("gap active early")
	}
	inj.Advance(1)
	if !inj.TraceGap(0) {
		t.Error("gap not active")
	}
	if amp, on := inj.TraceSpike(2); !on || amp != 1.8 {
		t.Errorf("spike = %v, %v", amp, on)
	}
	if _, on := inj.TraceSpike(1); on {
		t.Error("spike active on wrong core")
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind parsed")
	}
}
