package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSchedule parses the CLI fault-schedule syntax: semicolon-separated
// events of the form
//
//	kind@epoch[+duration][:key=value,...]
//
// where kind is a Kind spelling (vr-stuck-off, sensor-noise, ...), epoch is
// the 0-based firing epoch, the optional +duration bounds the fault in
// epochs (omitted = permanent), and the keys are "unit" (default -1 = all
// units of the layer) and "value" (the model parameter). Examples:
//
//	vr-stuck-off@30:unit=12
//	sensor-noise@0:value=0.1
//	trace-gap@40+20:unit=3;vr-derate@10:unit=7,value=0.05
func ParseSchedule(spec string) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	s := &Schedule{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := parseEvent(part)
		if err != nil {
			return nil, fmt.Errorf("fault: %q: %w", part, err)
		}
		s.Events = append(s.Events, e)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseEvent(spec string) (Event, error) {
	e := Event{Unit: -1}
	head, opts, hasOpts := strings.Cut(spec, ":")
	name, when, ok := strings.Cut(head, "@")
	if !ok {
		return e, fmt.Errorf("missing @epoch")
	}
	kind, err := ParseKind(strings.TrimSpace(name))
	if err != nil {
		return e, err
	}
	e.Kind = kind
	epochStr, durStr, hasDur := strings.Cut(when, "+")
	e.Epoch, err = strconv.Atoi(strings.TrimSpace(epochStr))
	if err != nil {
		return e, fmt.Errorf("bad epoch %q", epochStr)
	}
	if hasDur {
		e.DurationEpochs, err = strconv.Atoi(strings.TrimSpace(durStr))
		if err != nil || e.DurationEpochs < 1 {
			return e, fmt.Errorf("bad duration %q", durStr)
		}
	}
	sawValue := false
	if hasOpts {
		for _, kv := range strings.Split(opts, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return e, fmt.Errorf("bad option %q (want key=value)", kv)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			switch key {
			case "unit":
				e.Unit, err = strconv.Atoi(val)
				if err != nil {
					return e, fmt.Errorf("bad unit %q", val)
				}
			case "value":
				e.Value, err = strconv.ParseFloat(val, 64)
				if err != nil {
					return e, fmt.Errorf("bad value %q", val)
				}
				sawValue = true
			default:
				return e, fmt.Errorf("unknown option %q", key)
			}
		}
	}
	if e.Kind.needsValue() && !sawValue {
		return e, fmt.Errorf("%v requires value=", e.Kind)
	}
	return e, nil
}
