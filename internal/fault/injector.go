package fault

import (
	"fmt"
	"math"
	"sort"

	"thermogater/internal/workload"
)

// VRStatus is the effective health of one regulator this epoch.
type VRStatus int

const (
	// VRHealthy regulators obey the governor.
	VRHealthy VRStatus = iota
	// VRFailedOff regulators cannot be activated and carry no current.
	VRFailedOff
	// VRFailedOn regulators conduct regardless of the gating decision.
	VRFailedOn
)

// Injector interprets a Schedule over a run. It is advanced once per epoch
// and then queried for the per-unit fault state; only ApplySensors consumes
// randomness, so the injector perturbs no other random stream and its state
// checkpoints in O(sensors).
type Injector struct {
	sched Schedule
	topo  Topology
	rng   *workload.RNG

	active []bool // per event, as of the last Advance

	// Per-regulator electrical state, rebuilt by Advance.
	vrStatus   []VRStatus
	vrIMaxFrac []float64
	vrLossMult []float64

	// Per-sensor state, rebuilt by Advance.
	senStuck    []bool
	senStuckVal []float64
	senSigma    []float64 // relative gaussian sigma; 0 = clean
	senQuant    []float64 // quantization step; 0 = full resolution
	senDrop     []bool

	// Sensor fallback memory, updated by ApplySensors.
	lastGood []float64
	haveGood []bool

	// Per-core trace state, rebuilt by Advance.
	gapCore   []bool
	spikeCore []float64 // amplitude multiplier; 0 = none

	// group[i] is the sensor group containing regulator i (nil if none).
	group [][]int

	vrDirty     bool // any VR-layer fault active this epoch
	sensorDirty bool // any sensor-layer fault active this epoch
}

// New builds an injector for the schedule over the given topology, seeded
// from the run's PRNG (fork a dedicated stream so healthy consumers keep
// their sequences).
func New(sched *Schedule, topo Topology, seed uint64) (*Injector, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	var events []Event
	if sched != nil {
		events = append(events, sched.Events...)
	}
	s := Schedule{Events: events}
	if err := s.checkUnits(topo); err != nil {
		return nil, err
	}
	inj := &Injector{
		sched:       s,
		topo:        topo,
		rng:         workload.NewRNG(seed),
		active:      make([]bool, len(events)),
		vrStatus:    make([]VRStatus, topo.NumVRs),
		vrIMaxFrac:  make([]float64, topo.NumVRs),
		vrLossMult:  make([]float64, topo.NumVRs),
		senStuck:    make([]bool, topo.NumVRs),
		senStuckVal: make([]float64, topo.NumVRs),
		senSigma:    make([]float64, topo.NumVRs),
		senQuant:    make([]float64, topo.NumVRs),
		senDrop:     make([]bool, topo.NumVRs),
		lastGood:    make([]float64, topo.NumVRs),
		haveGood:    make([]bool, topo.NumVRs),
		gapCore:     make([]bool, topo.NumCores),
		spikeCore:   make([]float64, topo.NumCores),
		group:       make([][]int, topo.NumVRs),
	}
	for _, g := range topo.SensorGroups {
		g := append([]int(nil), g...)
		sort.Ints(g)
		for _, rid := range g {
			inj.group[rid] = g
		}
	}
	inj.rebuild(0, false)
	return inj, nil
}

// Advance recomputes the per-unit fault state for the given epoch and
// returns how many events newly fired and newly cleared relative to the
// previous call — the runner's telemetry feed. Advance never consumes
// randomness, so calling it is free of side effects on the fault RNG.
func (j *Injector) Advance(epoch int) (fired, cleared int) {
	for i := range j.sched.Events {
		now := j.sched.Events[i].activeAt(epoch)
		if now && !j.active[i] {
			fired++
		}
		if !now && j.active[i] {
			cleared++
		}
		j.active[i] = now
	}
	j.rebuild(epoch, true)
	return fired, cleared
}

// rebuild recomputes every per-unit array from the active events. Later
// events override earlier ones on the same unit. useActive selects between
// the cached activity flags (Advance) and a fresh epoch test (New, before
// any Advance).
func (j *Injector) rebuild(epoch int, useActive bool) {
	for i := range j.vrStatus {
		j.vrStatus[i] = VRHealthy
		j.vrIMaxFrac[i] = 1
		j.vrLossMult[i] = 1
		j.senStuck[i] = false
		j.senSigma[i] = 0
		j.senQuant[i] = 0
		j.senDrop[i] = false
	}
	for c := range j.gapCore {
		j.gapCore[c] = false
		j.spikeCore[c] = 0
	}
	j.vrDirty, j.sensorDirty = false, false

	for i, e := range j.sched.Events {
		on := j.sched.Events[i].activeAt(epoch)
		if useActive {
			on = j.active[i]
		}
		if !on {
			continue
		}
		units := func(n int) (lo, hi int) {
			if e.Unit < 0 {
				return 0, n
			}
			return e.Unit, e.Unit + 1
		}
		switch e.Kind {
		case VRStuckOff:
			lo, hi := units(j.topo.NumVRs)
			for u := lo; u < hi; u++ {
				j.vrStatus[u] = VRFailedOff
			}
			j.vrDirty = true
		case VRStuckOn:
			lo, hi := units(j.topo.NumVRs)
			for u := lo; u < hi; u++ {
				j.vrStatus[u] = VRFailedOn
			}
			j.vrDirty = true
		case VRPhaseLoss:
			lo, hi := units(j.topo.NumVRs)
			for u := lo; u < hi; u++ {
				j.vrIMaxFrac[u] = e.Value
			}
			j.vrDirty = true
		case VRDerate:
			mult := 1 + e.Value*float64(epoch-e.Epoch)
			if mult > MaxLossMultiplier {
				mult = MaxLossMultiplier
			}
			lo, hi := units(j.topo.NumVRs)
			for u := lo; u < hi; u++ {
				j.vrLossMult[u] = mult
			}
			j.vrDirty = true
		case SensorStuckAt:
			lo, hi := units(j.topo.NumVRs)
			for u := lo; u < hi; u++ {
				j.senStuck[u] = true
				j.senStuckVal[u] = e.Value
			}
			j.sensorDirty = true
		case SensorNoise:
			lo, hi := units(j.topo.NumVRs)
			for u := lo; u < hi; u++ {
				j.senSigma[u] = e.Value
			}
			j.sensorDirty = true
		case SensorQuantize:
			lo, hi := units(j.topo.NumVRs)
			for u := lo; u < hi; u++ {
				j.senQuant[u] = e.Value
			}
			j.sensorDirty = true
		case SensorDropout:
			lo, hi := units(j.topo.NumVRs)
			for u := lo; u < hi; u++ {
				j.senDrop[u] = true
			}
			j.sensorDirty = true
		case TraceGap:
			lo, hi := units(j.topo.NumCores)
			for u := lo; u < hi; u++ {
				j.gapCore[u] = true
			}
		case TraceSpike:
			lo, hi := units(j.topo.NumCores)
			for u := lo; u < hi; u++ {
				j.spikeCore[u] = e.Value
			}
		}
	}
}

// VRDirty reports whether any regulator-layer fault is active this epoch —
// when false the runner keeps its healthy decision path.
func (j *Injector) VRDirty() bool { return j.vrDirty }

// VRStatusOf returns the regulator's effective health this epoch.
func (j *Injector) VRStatusOf(rid int) VRStatus { return j.vrStatus[rid] }

// IMaxFrac returns the remaining fraction of the regulator's per-phase
// current limit (1 = healthy).
func (j *Injector) IMaxFrac(rid int) float64 { return j.vrIMaxFrac[rid] }

// LossMult returns the regulator's conversion-loss multiplier (1 = healthy).
func (j *Injector) LossMult(rid int) float64 { return j.vrLossMult[rid] }

// TraceGap reports whether the core's activity input is gapped this epoch.
func (j *Injector) TraceGap(core int) bool { return j.gapCore[core] }

// TraceSpike returns the core's activity-spike amplitude and whether a
// spike fault is active.
func (j *Injector) TraceSpike(core int) (float64, bool) {
	amp := j.spikeCore[core]
	return amp, amp > 0
}

// ApplySensors filters one epoch's raw sensor readings in place: stuck,
// noisy and quantized sensors corrupt their reading; dropped-out sensors
// fall back to their last good value, or — before any good reading exists —
// to the median of their delivering neighbors. The return value counts the
// fallbacks taken (the governor's degraded-input telemetry).
//
// This is the only Injector method that consumes randomness; the runner
// must call it exactly once per epoch, in epoch order, for faulted runs to
// stay reproducible and resumable.
func (j *Injector) ApplySensors(raw []float64) (fallbacks int, err error) {
	if len(raw) != j.topo.NumVRs {
		return 0, fmt.Errorf("fault: got %d sensor readings for %d regulators", len(raw), j.topo.NumVRs)
	}
	if !j.sensorDirty {
		return 0, nil
	}
	for i := range raw {
		v := raw[i]
		if j.senStuck[i] {
			v = j.senStuckVal[i]
		}
		if s := j.senSigma[i]; s > 0 {
			v += s * math.Abs(v) * j.rng.Norm()
		}
		if q := j.senQuant[i]; q > 0 {
			v = math.Round(v/q) * q
		}
		if !j.senDrop[i] {
			raw[i] = v
			j.lastGood[i] = v
			j.haveGood[i] = true
		}
	}
	for i := range raw {
		if !j.senDrop[i] {
			continue
		}
		fallbacks++
		if j.haveGood[i] {
			raw[i] = j.lastGood[i]
			continue
		}
		if med, ok := j.neighborMedian(i, raw); ok {
			raw[i] = med
		}
		// With no last-good value and no delivering neighbor, the raw
		// reading passes through — the best available estimate.
	}
	return fallbacks, nil
}

// neighborMedian returns the median of the delivering sensors in rid's
// group, excluding rid itself.
func (j *Injector) neighborMedian(rid int, readings []float64) (float64, bool) {
	g := j.group[rid]
	if g == nil {
		return 0, false
	}
	var vals []float64
	for _, other := range g {
		if other == rid || j.senDrop[other] {
			continue
		}
		vals = append(vals, readings[other])
	}
	if len(vals) == 0 {
		return 0, false
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid], true
	}
	return (vals[mid-1] + vals[mid]) / 2, true
}

// State is the injector's checkpointable state. The schedule and topology
// are configuration, not state — a resumed run rebuilds them from its
// Config and restores only what evolved.
type State struct {
	RNG      uint64
	LastGood []float64
	HaveGood []bool
	Active   []bool
}

// State snapshots the injector.
func (j *Injector) State() *State {
	return &State{
		RNG:      j.rng.State(),
		LastGood: append([]float64(nil), j.lastGood...),
		HaveGood: append([]bool(nil), j.haveGood...),
		Active:   append([]bool(nil), j.active...),
	}
}

// Restore loads a snapshot taken by State on an injector built from the
// same schedule and topology.
func (j *Injector) Restore(s *State) error {
	if s == nil {
		return fmt.Errorf("fault: nil state")
	}
	if len(s.LastGood) != j.topo.NumVRs || len(s.HaveGood) != j.topo.NumVRs {
		return fmt.Errorf("fault: state covers %d sensors, injector has %d", len(s.LastGood), j.topo.NumVRs)
	}
	if len(s.Active) != len(j.sched.Events) {
		return fmt.Errorf("fault: state covers %d events, schedule has %d", len(s.Active), len(j.sched.Events))
	}
	j.rng.SetState(s.RNG)
	copy(j.lastGood, s.LastGood)
	copy(j.haveGood, s.HaveGood)
	copy(j.active, s.Active)
	return nil
}
