// Package fault provides deterministic fault injection for the three layers
// the ThermoGater governor trusts: the regulator network (stuck-off,
// stuck-on, per-phase current loss, efficiency derating over time), the
// thermal sensors (stuck-at, multiplicative noise, quantization, dropout)
// and the activity/power inputs (trace gaps and spikes).
//
// Faults are declared as a Schedule of Events that fire at configured
// epochs. The Injector that interprets a schedule is seeded from the run's
// PRNG, so a faulted run is exactly as reproducible as a healthy one: the
// same seed and schedule always produce the same fault sequence, and the
// injector's full state can be checkpointed and restored (see State).
//
// The injector never mutates the simulation itself — it only reports the
// per-unit fault state (VRStatus, IMaxFrac, LossMult, TraceGap, ...) and
// filters sensor readings (ApplySensors). Wiring the reported state into
// the regulator solve, the governor inputs and the activity frames is the
// simulation runner's job, which keeps the healthy fast path byte-for-byte
// unchanged when no schedule is configured. See docs/ROBUSTNESS.md.
package fault

import (
	"errors"
	"fmt"
	"math"
)

// Kind enumerates the fault models.
type Kind int

const (
	// VRStuckOff permanently removes a regulator from service: it can no
	// longer be activated and carries no current. Unit is a regulator id.
	VRStuckOff Kind = iota
	// VRStuckOn wedges a regulator's power switch closed: it carries its
	// current share and dissipates loss even when the governor gates it.
	// Unit is a regulator id.
	VRStuckOn
	// VRPhaseLoss degrades a regulator's deliverable current: Value is the
	// remaining fraction of its per-phase IMax in (0, 1]. Unit is a
	// regulator id.
	VRPhaseLoss
	// VRDerate ages a regulator's efficiency: its conversion loss is
	// multiplied by 1 + Value·(epochs since onset), capped at
	// MaxLossMultiplier. Value is the per-epoch growth rate (> 0). Unit is
	// a regulator id.
	VRDerate
	// SensorStuckAt freezes a regulator temperature sensor at Value (°C).
	// Unit is a regulator id (sensors are per-regulator).
	SensorStuckAt
	// SensorNoise adds zero-mean gaussian error with relative sigma Value
	// (0.10 = 10% of the reading) to a sensor. This is the fault-model
	// counterpart of sim.Config.SensorNoiseC, which is an absolute °C
	// sigma applied to all sensors. Unit is a regulator id.
	SensorNoise
	// SensorQuantize rounds a sensor's reading to multiples of Value (°C).
	// Unit is a regulator id.
	SensorQuantize
	// SensorDropout makes a sensor deliver no reading at all; consumers
	// fall back to the last good value or the neighbor median. Unit is a
	// regulator id.
	SensorDropout
	// TraceGap models a hole in the activity/power input stream for one
	// core: its activity freezes at the last delivered frame and its burst
	// events are dropped for the duration. Unit is a core id.
	TraceGap
	// TraceSpike multiplies one core's activity by Value (> 0), clamped to
	// the legal [0, 1] range — a corrupted or glitched input sample.
	// Unit is a core id.
	TraceSpike

	numKinds
)

// MaxLossMultiplier caps VRDerate's loss growth so a long run cannot drive
// the energy balance to absurd values.
const MaxLossMultiplier = 4.0

var kindNames = [numKinds]string{
	VRStuckOff:     "vr-stuck-off",
	VRStuckOn:      "vr-stuck-on",
	VRPhaseLoss:    "vr-phase-loss",
	VRDerate:       "vr-derate",
	SensorStuckAt:  "sensor-stuck",
	SensorNoise:    "sensor-noise",
	SensorQuantize: "sensor-quantize",
	SensorDropout:  "sensor-dropout",
	TraceGap:       "trace-gap",
	TraceSpike:     "trace-spike",
}

// String returns the stable spelling used by ParseKind and the CLI.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("fault.Kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind inverts String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// Kinds lists every fault model, in declaration order (for matrix tests).
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// layer classifies a kind by the unit space its Unit field indexes.
type layer int

const (
	layerVR layer = iota
	layerSensor
	layerTrace
)

func (k Kind) layer() layer {
	switch k {
	case VRStuckOff, VRStuckOn, VRPhaseLoss, VRDerate:
		return layerVR
	case SensorStuckAt, SensorNoise, SensorQuantize, SensorDropout:
		return layerSensor
	default:
		return layerTrace
	}
}

// needsValue reports whether the kind's Value field is meaningful.
func (k Kind) needsValue() bool {
	switch k {
	case VRPhaseLoss, VRDerate, SensorStuckAt, SensorNoise, SensorQuantize, TraceSpike:
		return true
	}
	return false
}

// Event is one scheduled fault.
type Event struct {
	// Kind selects the fault model.
	Kind Kind
	// Epoch is the first epoch (0-based) the fault is active.
	Epoch int
	// DurationEpochs bounds the fault; 0 means permanent.
	DurationEpochs int
	// Unit selects the affected unit — a regulator id for VR and sensor
	// kinds, a core id for trace kinds; −1 means every unit of the layer.
	Unit int
	// Value parameterizes the model; see the Kind constants.
	Value float64
}

// activeAt reports whether the event covers the given epoch.
func (e Event) activeAt(epoch int) bool {
	if epoch < e.Epoch {
		return false
	}
	return e.DurationEpochs == 0 || epoch < e.Epoch+e.DurationEpochs
}

// Validate rejects a malformed event.
func (e Event) Validate() error {
	if e.Kind < 0 || e.Kind >= numKinds {
		return fmt.Errorf("fault: unknown kind %d", int(e.Kind))
	}
	if e.Epoch < 0 {
		return fmt.Errorf("fault: %v epoch %d is negative", e.Kind, e.Epoch)
	}
	if e.DurationEpochs < 0 {
		return fmt.Errorf("fault: %v duration %d is negative", e.Kind, e.DurationEpochs)
	}
	if e.Unit < -1 {
		return fmt.Errorf("fault: %v unit %d (want ≥ 0, or -1 for all)", e.Kind, e.Unit)
	}
	if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
		return fmt.Errorf("fault: %v value %v is not finite", e.Kind, e.Value)
	}
	switch e.Kind {
	case VRPhaseLoss:
		if e.Value <= 0 || e.Value > 1 {
			return fmt.Errorf("fault: %v remaining IMax fraction %v outside (0, 1]", e.Kind, e.Value)
		}
	case VRDerate:
		if e.Value <= 0 {
			return fmt.Errorf("fault: %v growth rate %v must be positive", e.Kind, e.Value)
		}
	case SensorStuckAt:
		if e.Value < -273.15 || e.Value > 1000 {
			return fmt.Errorf("fault: %v stuck value %v°C outside [-273.15, 1000]", e.Kind, e.Value)
		}
	case SensorNoise:
		if e.Value <= 0 {
			return fmt.Errorf("fault: %v relative sigma %v must be positive", e.Kind, e.Value)
		}
	case SensorQuantize:
		if e.Value <= 0 {
			return fmt.Errorf("fault: %v quantization step %v must be positive", e.Kind, e.Value)
		}
	case TraceSpike:
		if e.Value <= 0 {
			return fmt.Errorf("fault: %v amplitude %v must be positive", e.Kind, e.Value)
		}
	}
	return nil
}

// Schedule is an ordered list of scheduled faults. Order matters when
// events overlap: later events override earlier ones on the same unit.
type Schedule struct {
	Events []Event
}

// Validate rejects a malformed schedule.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Empty reports whether the schedule carries no events (an armed-but-empty
// schedule exercises the injection hooks without injecting anything, which
// is what tgbench's overhead measurement uses).
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// checkUnits verifies every event's Unit fits the given topology.
func (s *Schedule) checkUnits(topo Topology) error {
	for i, e := range s.Events {
		var n int
		var space string
		switch e.Kind.layer() {
		case layerVR, layerSensor:
			n, space = topo.NumVRs, "regulators"
		default:
			n, space = topo.NumCores, "cores"
		}
		if e.Unit >= n {
			return fmt.Errorf("fault: event %d (%v) unit %d outside %d %s", i, e.Kind, e.Unit, n, space)
		}
	}
	return nil
}

// ErrTopology reports an injector built over an inconsistent topology.
var ErrTopology = errors.New("fault: invalid topology")

// Topology tells the injector the shape of the simulated chip.
type Topology struct {
	// NumVRs is the regulator (and sensor) count.
	NumVRs int
	// NumCores is the core count for trace faults.
	NumCores int
	// SensorGroups lists, per voltage domain, the regulator ids whose
	// sensors are physical neighbors — the candidate set for the
	// neighbor-median dropout fallback. A regulator may appear in exactly
	// one group.
	SensorGroups [][]int
}

// Validate rejects an inconsistent topology.
func (t Topology) Validate() error {
	if t.NumVRs < 1 || t.NumCores < 1 {
		return fmt.Errorf("%w: %d regulators, %d cores", ErrTopology, t.NumVRs, t.NumCores)
	}
	seen := make([]bool, t.NumVRs)
	for _, g := range t.SensorGroups {
		for _, rid := range g {
			if rid < 0 || rid >= t.NumVRs {
				return fmt.Errorf("%w: sensor group member %d outside %d regulators", ErrTopology, rid, t.NumVRs)
			}
			if seen[rid] {
				return fmt.Errorf("%w: regulator %d in two sensor groups", ErrTopology, rid)
			}
			seen[rid] = true
		}
	}
	return nil
}
