// Package dvfs implements per-domain dynamic voltage and frequency
// scaling — the capability distributed on-chip regulation exists to
// enable. The paper's Section 1 sets the stage ("tailoring Vdd to
// fine-grain temporal changes in the power and performance needs of the
// workload can effectively enhance power efficiency … power managers can
// control the Vdd of each domain separately"), and its POWER8 reference
// design is literally titled "Distributed System of Digitally Controlled
// Microregulators Enabling Per-Core DVFS". This package supplies the
// utilisation-driven per-core DVFS governor the simulator can layer under
// ThermoGater: lowering a core's operating point lowers its power and
// hence the current its Vdd-domain's regulators must carry, which the
// gating policies then translate into fewer active regulators.
package dvfs

import (
	"errors"
	"fmt"
	"math"
)

// OperatingPoint is one voltage/frequency pair.
type OperatingPoint struct {
	// VddV is the supply voltage.
	VddV float64
	// FreqGHz is the core clock.
	FreqGHz float64
}

// Config parameterises the governor.
type Config struct {
	// Points lists the available operating points in ascending
	// performance order; the last entry is the nominal (maximum) point.
	Points []OperatingPoint
	// UpThreshold and DownThreshold are the utilisation levels above /
	// below which a domain steps up / down one point.
	UpThreshold, DownThreshold float64
	// HysteresisEpochs is how many consecutive epochs the threshold must
	// hold before a transition fires, suppressing oscillation.
	HysteresisEpochs int
}

// DefaultConfig returns a three-point ladder below the chip's nominal
// 1.03V/4GHz operating point (Table 1).
func DefaultConfig() Config {
	return Config{
		Points: []OperatingPoint{
			{VddV: 0.80, FreqGHz: 2.4},
			{VddV: 0.92, FreqGHz: 3.2},
			{VddV: 1.03, FreqGHz: 4.0},
		},
		UpThreshold:      0.60,
		DownThreshold:    0.30,
		HysteresisEpochs: 3,
	}
}

// Validate rejects inconsistent ladders.
func (c Config) Validate() error {
	if len(c.Points) < 2 {
		return errors.New("dvfs: need at least two operating points")
	}
	for i, p := range c.Points {
		if !(p.VddV > 0) || !(p.FreqGHz > 0) || math.IsInf(p.VddV, 1) || math.IsInf(p.FreqGHz, 1) {
			return fmt.Errorf("dvfs: point %d not positive and finite", i)
		}
		if i > 0 {
			prev := c.Points[i-1]
			if p.VddV <= prev.VddV || p.FreqGHz <= prev.FreqGHz {
				return fmt.Errorf("dvfs: points not strictly ascending at %d", i)
			}
		}
	}
	if !(c.DownThreshold >= 0 && c.DownThreshold < c.UpThreshold && c.UpThreshold <= 1) {
		return errors.New("dvfs: thresholds must satisfy 0 ≤ down < up ≤ 1")
	}
	if c.HysteresisEpochs < 1 {
		return errors.New("dvfs: hysteresis must be at least one epoch")
	}
	return nil
}

// Nominal returns the top operating point.
func (c Config) Nominal() OperatingPoint { return c.Points[len(c.Points)-1] }

// DynamicScale returns the dynamic-power multiplier of point p relative to
// nominal: P_dyn ∝ f·V².
func (c Config) DynamicScale(p OperatingPoint) float64 {
	n := c.Nominal()
	return (p.FreqGHz / n.FreqGHz) * (p.VddV / n.VddV) * (p.VddV / n.VddV)
}

// LeakageScale returns the static-power multiplier of point p relative to
// nominal: leakage roughly tracks V (DIBL-dominated at iso-temperature).
func (c Config) LeakageScale(p OperatingPoint) float64 {
	return p.VddV / c.Nominal().VddV
}

// PerformanceScale returns the throughput multiplier of point p: work per
// wall-clock tracks frequency.
func (c Config) PerformanceScale(p OperatingPoint) float64 {
	return p.FreqGHz / c.Nominal().FreqGHz
}

// Governor holds the per-domain DVFS state.
type Governor struct {
	cfg     Config
	level   []int
	upRun   []int
	downRun []int
}

// NewGovernor creates a governor for the given domain count, starting
// every domain at the nominal point.
func NewGovernor(domains int, cfg Config) (*Governor, error) {
	if domains < 1 {
		return nil, errors.New("dvfs: need at least one domain")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Governor{
		cfg:     cfg,
		level:   make([]int, domains),
		upRun:   make([]int, domains),
		downRun: make([]int, domains),
	}
	for d := range g.level {
		g.level[d] = len(cfg.Points) - 1
	}
	return g, nil
}

// Config returns the governor's ladder.
func (g *Governor) Config() Config { return g.cfg }

// Point returns the domain's current operating point.
func (g *Governor) Point(domain int) OperatingPoint {
	return g.cfg.Points[g.level[domain]]
}

// Level returns the domain's current ladder index.
func (g *Governor) Level(domain int) int { return g.level[domain] }

// Observe feeds one epoch's utilisation (0..1) for the domain and applies
// the hysteretic step-up/step-down rule; it returns the (possibly new)
// ladder level.
func (g *Governor) Observe(domain int, utilisation float64) (int, error) {
	if domain < 0 || domain >= len(g.level) {
		return 0, fmt.Errorf("dvfs: domain %d out of range", domain)
	}
	switch {
	case utilisation > g.cfg.UpThreshold:
		g.upRun[domain]++
		g.downRun[domain] = 0
	case utilisation < g.cfg.DownThreshold:
		g.downRun[domain]++
		g.upRun[domain] = 0
	default:
		g.upRun[domain] = 0
		g.downRun[domain] = 0
	}
	if g.upRun[domain] >= g.cfg.HysteresisEpochs && g.level[domain] < len(g.cfg.Points)-1 {
		g.level[domain]++
		g.upRun[domain] = 0
	}
	if g.downRun[domain] >= g.cfg.HysteresisEpochs && g.level[domain] > 0 {
		g.level[domain]--
		g.downRun[domain] = 0
	}
	return g.level[domain], nil
}

// State is a governor snapshot for checkpointing.
type State struct {
	Level   []int
	UpRun   []int
	DownRun []int
}

// State snapshots the governor.
func (g *Governor) State() *State {
	return &State{
		Level:   append([]int(nil), g.level...),
		UpRun:   append([]int(nil), g.upRun...),
		DownRun: append([]int(nil), g.downRun...),
	}
}

// Restore loads a snapshot taken by State on a governor over the same
// domain count and ladder.
func (g *Governor) Restore(s *State) error {
	if s == nil {
		return errors.New("dvfs: nil state")
	}
	if len(s.Level) != len(g.level) || len(s.UpRun) != len(g.level) || len(s.DownRun) != len(g.level) {
		return fmt.Errorf("dvfs: state covers %d domains, governor has %d", len(s.Level), len(g.level))
	}
	for d, l := range s.Level {
		if l < 0 || l >= len(g.cfg.Points) {
			return fmt.Errorf("dvfs: state level %d outside ladder of %d points", l, len(g.cfg.Points))
		}
		g.level[d] = l
		g.upRun[d] = s.UpRun[d]
		g.downRun[d] = s.DownRun[d]
	}
	return nil
}

// Reset returns every domain to the nominal point.
func (g *Governor) Reset() {
	for d := range g.level {
		g.level[d] = len(g.cfg.Points) - 1
		g.upRun[d] = 0
		g.downRun[d] = 0
	}
}
