package dvfs

import (
	"math"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.Points = c.Points[:1] },
		func(c *Config) { c.Points[0].VddV = 0 },
		func(c *Config) { c.Points[1].VddV = c.Points[0].VddV },
		func(c *Config) { c.Points[1].FreqGHz = c.Points[0].FreqGHz },
		func(c *Config) { c.UpThreshold = 1.5 },
		func(c *Config) { c.DownThreshold = c.UpThreshold },
		func(c *Config) { c.HysteresisEpochs = 0 },
	}
	for i, mut := range muts {
		c := DefaultConfig()
		c.Points = append([]OperatingPoint(nil), c.Points...)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestScalingFactors(t *testing.T) {
	c := DefaultConfig()
	nominal := c.Nominal()
	if nominal.VddV != 1.03 || nominal.FreqGHz != 4.0 {
		t.Fatalf("nominal point %+v", nominal)
	}
	if s := c.DynamicScale(nominal); math.Abs(s-1) > 1e-12 {
		t.Errorf("nominal dynamic scale %v", s)
	}
	if s := c.LeakageScale(nominal); math.Abs(s-1) > 1e-12 {
		t.Errorf("nominal leakage scale %v", s)
	}
	low := c.Points[0]
	// f·V² at 2.4GHz/0.8V vs 4GHz/1.03V: (2.4/4)·(0.8/1.03)² ≈ 0.362.
	want := (2.4 / 4.0) * (0.8 / 1.03) * (0.8 / 1.03)
	if s := c.DynamicScale(low); math.Abs(s-want) > 1e-12 {
		t.Errorf("low-point dynamic scale %v, want %v", s, want)
	}
	if s := c.PerformanceScale(low); math.Abs(s-0.6) > 1e-12 {
		t.Errorf("low-point performance scale %v, want 0.6", s)
	}
	if c.LeakageScale(low) >= 1 {
		t.Error("low point must leak less than nominal")
	}
}

func TestGovernorStartsNominal(t *testing.T) {
	g, err := NewGovernor(8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 8; d++ {
		if g.Level(d) != 2 {
			t.Errorf("domain %d starts at level %d", d, g.Level(d))
		}
	}
}

func TestGovernorStepsDownUnderLowUtilisation(t *testing.T) {
	g, _ := NewGovernor(1, DefaultConfig())
	// Needs HysteresisEpochs consecutive low epochs to move one step.
	for i := 0; i < 2; i++ {
		if _, err := g.Observe(0, 0.1); err != nil {
			t.Fatal(err)
		}
		if g.Level(0) != 2 {
			t.Fatalf("stepped down after only %d epochs", i+1)
		}
	}
	if _, err := g.Observe(0, 0.1); err != nil {
		t.Fatal(err)
	}
	if g.Level(0) != 1 {
		t.Errorf("level %d after 3 low epochs, want 1", g.Level(0))
	}
	// Keep going to the floor, then stay.
	for i := 0; i < 10; i++ {
		_, _ = g.Observe(0, 0.05)
	}
	if g.Level(0) != 0 {
		t.Errorf("level %d, want floor 0", g.Level(0))
	}
}

func TestGovernorStepsUpUnderHighUtilisation(t *testing.T) {
	g, _ := NewGovernor(1, DefaultConfig())
	for i := 0; i < 10; i++ {
		_, _ = g.Observe(0, 0.05)
	}
	if g.Level(0) != 0 {
		t.Fatal("setup failed to reach floor")
	}
	for i := 0; i < 3; i++ {
		_, _ = g.Observe(0, 0.9)
	}
	if g.Level(0) != 1 {
		t.Errorf("level %d after 3 high epochs, want 1", g.Level(0))
	}
	for i := 0; i < 10; i++ {
		_, _ = g.Observe(0, 0.9)
	}
	if g.Level(0) != 2 {
		t.Errorf("level %d, want ceiling 2", g.Level(0))
	}
}

func TestGovernorHysteresisBreaksOnMidUtilisation(t *testing.T) {
	g, _ := NewGovernor(1, DefaultConfig())
	_, _ = g.Observe(0, 0.1)
	_, _ = g.Observe(0, 0.1)
	_, _ = g.Observe(0, 0.45) // mid-band resets the run
	_, _ = g.Observe(0, 0.1)
	_, _ = g.Observe(0, 0.1)
	if g.Level(0) != 2 {
		t.Errorf("level %d; interrupted runs must not accumulate", g.Level(0))
	}
}

func TestGovernorDomainsIndependent(t *testing.T) {
	g, _ := NewGovernor(2, DefaultConfig())
	for i := 0; i < 6; i++ {
		_, _ = g.Observe(0, 0.05)
		_, _ = g.Observe(1, 0.9)
	}
	if g.Level(0) >= g.Level(1) {
		t.Errorf("levels %d/%d; domains must move independently", g.Level(0), g.Level(1))
	}
}

func TestGovernorValidation(t *testing.T) {
	if _, err := NewGovernor(0, DefaultConfig()); err == nil {
		t.Error("zero domains accepted")
	}
	bad := DefaultConfig()
	bad.HysteresisEpochs = 0
	if _, err := NewGovernor(1, bad); err == nil {
		t.Error("invalid config accepted")
	}
	g, _ := NewGovernor(1, DefaultConfig())
	if _, err := g.Observe(5, 0.5); err == nil {
		t.Error("out-of-range domain accepted")
	}
}

func TestGovernorReset(t *testing.T) {
	g, _ := NewGovernor(1, DefaultConfig())
	for i := 0; i < 10; i++ {
		_, _ = g.Observe(0, 0.05)
	}
	g.Reset()
	if g.Level(0) != 2 {
		t.Errorf("level %d after reset", g.Level(0))
	}
}

func TestGovernorConfigAccessor(t *testing.T) {
	g, _ := NewGovernor(2, DefaultConfig())
	if len(g.Config().Points) != 3 {
		t.Errorf("Config ladder has %d points", len(g.Config().Points))
	}
	p := g.Point(0)
	if p != g.Config().Nominal() {
		t.Errorf("fresh domain not at nominal: %+v", p)
	}
}
