package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "Table X",
		Title:   "demo",
		Columns: []string{"name", "value"},
	}
	tab.AddRow("alpha", "1.0")
	tab.AddRow("beta-long-name", "2.5")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table X — demo", "name", "value", "alpha", "beta-long-name", "2.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + separator + 2 rows + title line.
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns are aligned: "value" column starts at the same offset in the
	// header and in each data row.
	hdr := lines[1]
	col := strings.Index(hdr, "value")
	for _, l := range lines[3:] {
		if len(l) <= col {
			t.Errorf("row %q shorter than header alignment", l)
		}
	}
}

func TestTableRenderErrors(t *testing.T) {
	tab := &Table{ID: "t", Title: "x"}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err == nil {
		t.Error("empty-column table rendered")
	}
	tab.Columns = []string{"a", "b"}
	tab.AddRow("only-one")
	if err := tab.Render(&buf); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		ID: "Fig. T", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "s1", X: []float64{1, 2}, Y: []float64{10, 20}}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. T — demo", "# s1", "note: a note", "10", "20"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenderRaggedSeries(t *testing.T) {
	f := &Figure{ID: "f", Series: []Series{{Label: "bad", X: []float64{1}, Y: nil}}}
	var buf bytes.Buffer
	if err := f.Render(&buf); err == nil {
		t.Error("ragged series rendered")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline not empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length %d, want 4", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline %q does not span the range", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series sparkline %q not minimal", flat)
		}
	}
}

func TestRenderHeatMap(t *testing.T) {
	grid := [][]float64{
		{50, 50, 50},
		{50, 90, 50},
	}
	var buf bytes.Buffer
	if err := RenderHeatMap(&buf, "frame", grid); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "frame") || !strings.Contains(out, "@") {
		t.Errorf("heat map missing title or hotspot:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("rendered %d lines, want 3", len(lines))
	}
	// The hotspot lands in the middle of the second row.
	if lines[2][1] != '@' {
		t.Errorf("hotspot not at centre: %q", lines[2])
	}
	if err := RenderHeatMap(&buf, "x", nil); err == nil {
		t.Error("empty grid rendered")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := &Table{ID: "Fig. X", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tab.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**Fig. X — demo**", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	bad := &Table{ID: "x", Title: "y"}
	if err := bad.RenderMarkdown(&buf); err == nil {
		t.Error("no-column table rendered")
	}
	bad = &Table{ID: "x", Title: "y", Columns: []string{"a", "b"}}
	bad.AddRow("only")
	if err := bad.RenderMarkdown(&buf); err == nil {
		t.Error("ragged row rendered")
	}
}
