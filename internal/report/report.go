// Package report renders experiment results — tables, figure series and
// heat maps — as aligned plain text, mirroring the rows and series the
// paper's tables and figures report.
package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"unicode/utf8"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	// ID names the reproduced artefact, e.g. "Table 2" or "Fig. 9".
	ID string
	// Title describes the contents.
	Title string
	// Columns is the header row.
	Columns []string
	// Rows holds the data cells; every row must have len(Columns) cells.
	Rows [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	if len(t.Columns) == 0 {
		return errors.New("report: table has no columns")
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("report: row has %d cells, table has %d columns", len(row), len(t.Columns))
		}
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderMarkdown writes the table as GitHub-flavoured markdown.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if len(t.Columns) == 0 {
		return errors.New("report: table has no columns")
	}
	if _, err := fmt.Fprintf(w, "**%s — %s**\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("report: row has %d cells, table has %d columns", len(row), len(t.Columns))
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Series is one labelled (x, y) sequence of a figure.
type Series struct {
	Label string
	X, Y  []float64
}

// Figure is a collection of series with axis labels.
type Figure struct {
	// ID names the reproduced artefact, e.g. "Fig. 2".
	ID string
	// Title describes the contents.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds the plotted sequences.
	Series []Series
	// Notes carries free-form commentary (substitutions, caveats).
	Notes []string
}

// Render writes each series as aligned columns, series after series.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, s := range f.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q has %d x values and %d y values", s.Label, len(s.X), len(s.Y))
		}
		if _, err := fmt.Fprintf(w, "# %s  [%s vs %s]\n", s.Label, f.YLabel, f.XLabel); err != nil {
			return err
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%12.6g  %12.6g\n", s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders y values as a compact unicode bar string, handy for
// eyeballing a series in terminal output.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// RenderHeatMap writes a temperature grid as ASCII shades with a legend,
// the textual equivalent of the Fig. 12 frames.
func RenderHeatMap(w io.Writer, title string, grid [][]float64) error {
	if len(grid) == 0 || len(grid[0]) == 0 {
		return errors.New("report: empty heat map")
	}
	shades := []byte(" .:-=+*#%@")
	lo, hi := grid[0][0], grid[0][0]
	for _, row := range grid {
		for _, v := range row {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if _, err := fmt.Fprintf(w, "%s  (%.1f°C%s to %.1f°C%s)\n",
		title, lo, " = ' '", hi, " = '@'"); err != nil {
		return err
	}
	for _, row := range grid {
		line := make([]byte, len(row))
		for i, v := range row {
			idx := 0
			if hi > lo {
				idx = int((v - lo) / (hi - lo) * float64(len(shades)-1))
			}
			line[i] = shades[idx]
		}
		if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
			return err
		}
	}
	return nil
}
