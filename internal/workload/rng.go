// Package workload defines the synthetic SPLASH2x benchmark suite driving
// the evaluation. The paper runs the region-of-interest of all SPLASH2x
// applications through the SNIPER microarchitectural simulator; ThermoGater
// itself consumes only per-unit activity, so each benchmark is modelled as a
// calibrated activity profile: a phase machine (compute / memory / barrier /
// serial sections), cache locality ratios, thread imbalance, stochastic
// activity noise, and di/dt burst behaviour. Profiles are deterministic for
// a given seed, making every experiment reproducible.
package workload

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). The simulator cannot depend on math/rand's global state:
// every core and every subsystem owns an independent stream so that adding
// a consumer never perturbs another's sequence.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded deterministically.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns an approximately standard normal variate via the sum of
// twelve uniforms (Irwin-Hall), which is cheap, branch-free, and more than
// accurate enough for activity noise.
func (r *RNG) Norm() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Fork derives an independent stream; streams forked with distinct tags
// from the same parent are decorrelated.
func (r *RNG) Fork(tag uint64) *RNG {
	return NewRNG(r.Uint64() ^ (tag * 0xd1342543de82ef95))
}

// State exposes the generator's internal word for checkpointing; a
// generator restored with SetState continues the exact same sequence.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state previously captured with State.
func (r *RNG) SetState(s uint64) { r.state = s }
