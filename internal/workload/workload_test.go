package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSuiteHas14ValidBenchmarks(t *testing.T) {
	suite := Suite()
	if len(suite) != 14 {
		t.Fatalf("suite has %d benchmarks, want 14", len(suite))
	}
	seen := map[string]bool{}
	for _, p := range suite {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate benchmark %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestSuitePowerOrdering(t *testing.T) {
	// Fig. 7's extremes: cholesky must be the most intense benchmark,
	// raytrace the least intense.
	intensity := func(p Profile) float64 {
		c, m := p.MeanIntensity()
		return 6.3*c + 4.6*m // rough per-core dynamic power weighting
	}
	suite := Suite()
	var chol, rayt Profile
	for _, p := range suite {
		switch p.Name {
		case "cholesky":
			chol = p
		case "raytrace":
			rayt = p
		}
	}
	ic, ir := intensity(chol), intensity(rayt)
	for _, p := range suite {
		i := intensity(p)
		if i > ic+1e-9 {
			t.Errorf("%s intensity %v exceeds cholesky's %v", p.Name, i, ic)
		}
		if i < ir-1e-9 {
			t.Errorf("%s intensity %v below raytrace's %v", p.Name, i, ir)
		}
	}
}

func TestTable2BurstCalibrationOrdering(t *testing.T) {
	// Table 2: barnes, fft and ocean_cp show by far the highest emergency
	// rates; lu_cb, lu_ncb and water_nsquared show none. The burst energy
	// (rate × amplitude) must reflect that ordering.
	burst := func(name string) float64 {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return p.BurstRatePerMS * p.BurstAmp
	}
	hot := []string{"barnes", "fft", "ocean_cp"}
	cold := []string{"lu_cb", "lu_ncb", "water_nsquared", "ocean_ncp", "volrend"}
	for _, h := range hot {
		for _, c := range cold {
			if burst(h) <= burst(c) {
				t.Errorf("burst(%s)=%v not above burst(%s)=%v", h, burst(h), c, burst(c))
			}
		}
	}
}

func TestByNameAndAliases(t *testing.T) {
	for _, alias := range []string{"chol", "oc_cp", "oc_ncp", "radio", "rayt", "volr", "water_n", "water_s"} {
		p, err := ByName(alias)
		if err != nil {
			t.Errorf("alias %q: %v", alias, err)
			continue
		}
		if ShortName(p.Name) != alias {
			t.Errorf("round trip %q -> %q -> %q", alias, p.Name, ShortName(p.Name))
		}
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if ShortName("fft") != "fft" {
		t.Error("ShortName must pass through already-short names")
	}
}

func TestPhaseAtCycles(t *testing.T) {
	p := Profile{
		Name: "x", DurationMS: 10, IterationMS: 1.0,
		Phases: []Phase{
			{Kind: Compute, Frac: 0.5, ComputeScale: 1, MemScale: 1},
			{Kind: Barrier, Frac: 0.5, ComputeScale: 0, MemScale: 0},
		},
		BaseCompute: 0.5, BaseMemory: 0.5,
	}
	if ph := p.PhaseAt(0.25); ph.Kind != Compute {
		t.Errorf("PhaseAt(0.25) = %v, want compute", ph.Kind)
	}
	if ph := p.PhaseAt(0.75); ph.Kind != Barrier {
		t.Errorf("PhaseAt(0.75) = %v, want barrier", ph.Kind)
	}
	// The superstep repeats.
	if ph := p.PhaseAt(5.25); ph.Kind != Compute {
		t.Errorf("PhaseAt(5.25) = %v, want compute", ph.Kind)
	}
	// Exactly at the boundary falls into the later phase.
	if ph := p.PhaseAt(0.5); ph.Kind != Barrier {
		t.Errorf("PhaseAt(0.5) = %v, want barrier", ph.Kind)
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	good, _ := ByName("fft")
	mutations := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"empty name", func(p *Profile) { p.Name = "" }},
		{"zero duration", func(p *Profile) { p.DurationMS = 0 }},
		{"zero iteration", func(p *Profile) { p.IterationMS = 0 }},
		{"no phases", func(p *Profile) { p.Phases = nil }},
		{"fractions not summing", func(p *Profile) { p.Phases[0].Frac += 0.5 }},
		{"negative scale", func(p *Profile) { p.Phases[0].ComputeScale = -1 }},
		{"zero fraction", func(p *Profile) { p.Phases[0].Frac = 0 }},
		{"compute out of range", func(p *Profile) { p.BaseCompute = 1.5 }},
		{"miss out of range", func(p *Profile) { p.L1Miss = -0.1 }},
		{"thread skew out of range", func(p *Profile) { p.ThreadSkew = 1.0 }},
		{"noise phi out of range", func(p *Profile) { p.NoisePhi = 1.0 }},
		{"negative bursts", func(p *Profile) { p.BurstRatePerMS = -1 }},
	}
	for _, m := range mutations {
		p := good
		p.Phases = append([]Phase(nil), good.Phases...)
		m.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupt profile", m.name)
		}
	}
}

func TestMeanIntensityMatchesHandComputation(t *testing.T) {
	p := Profile{
		Name: "x", DurationMS: 1, IterationMS: 1,
		Phases: []Phase{
			{Kind: Compute, Frac: 0.5, ComputeScale: 2, MemScale: 0},
			{Kind: MemoryBound, Frac: 0.5, ComputeScale: 0, MemScale: 2},
		},
		BaseCompute: 0.4, BaseMemory: 0.3,
	}
	c, m := p.MeanIntensity()
	if math.Abs(c-0.4) > 1e-12 || math.Abs(m-0.3) > 1e-12 {
		t.Errorf("MeanIntensity = (%v, %v), want (0.4, 0.3)", c, m)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d times in 1000 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	var sum, sumSq float64
	n := 20000
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("Norm mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Norm variance = %v, want ≈1", variance)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d", v)
		}
		counts[v]++
	}
	for i, n := range counts {
		if n < 800 || n > 1200 {
			t.Errorf("Intn bucket %d has %d draws, expected ≈1000", i, n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(99)
	a := parent.Fork(1)
	parent2 := NewRNG(99)
	_ = parent2.Fork(1)
	b := parent2.Fork(2)
	matches := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Errorf("forked streams with different tags collided %d times", matches)
	}
}

// Property: every suite profile's PhaseAt stays within its declared phases
// for arbitrary times.
func TestPhaseAtProperty(t *testing.T) {
	suite := Suite()
	f := func(raw float64) bool {
		tms := math.Mod(math.Abs(raw), 1e5)
		for _, p := range suite {
			ph := p.PhaseAt(tms)
			found := false
			for _, q := range p.Phases {
				if q == ph {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
