package workload

import "fmt"

// Standard phase mixes reused across profiles. Each slice's fractions sum
// to 1; the compute/memory scales multiply the profile's base intensities.
func computeHeavyPhases() []Phase {
	return []Phase{
		{Kind: Compute, Frac: 0.55, ComputeScale: 1.35, MemScale: 0.60},
		{Kind: Mixed, Frac: 0.25, ComputeScale: 1.00, MemScale: 1.20},
		{Kind: MemoryBound, Frac: 0.12, ComputeScale: 0.45, MemScale: 1.90},
		{Kind: Barrier, Frac: 0.08, ComputeScale: 0.10, MemScale: 0.15},
	}
}

func memoryHeavyPhases() []Phase {
	return []Phase{
		{Kind: MemoryBound, Frac: 0.50, ComputeScale: 0.50, MemScale: 1.50},
		{Kind: Mixed, Frac: 0.30, ComputeScale: 1.10, MemScale: 1.00},
		{Kind: Compute, Frac: 0.12, ComputeScale: 1.50, MemScale: 0.40},
		{Kind: Barrier, Frac: 0.08, ComputeScale: 0.10, MemScale: 0.10},
	}
}

func alternatingPhases() []Phase {
	return []Phase{
		{Kind: Compute, Frac: 0.40, ComputeScale: 1.50, MemScale: 0.50},
		{Kind: MemoryBound, Frac: 0.40, ComputeScale: 0.50, MemScale: 1.60},
		{Kind: Barrier, Frac: 0.20, ComputeScale: 0.10, MemScale: 0.10},
	}
}

func oscillatingPhases() []Phase {
	return []Phase{
		{Kind: Compute, Frac: 0.35, ComputeScale: 1.60, MemScale: 0.70},
		{Kind: MemoryBound, Frac: 0.35, ComputeScale: 0.50, MemScale: 1.50},
		{Kind: Mixed, Frac: 0.20, ComputeScale: 1.00, MemScale: 1.00},
		{Kind: Barrier, Frac: 0.10, ComputeScale: 0.05, MemScale: 0.05},
	}
}

func irregularPhases() []Phase {
	return []Phase{
		{Kind: Mixed, Frac: 0.45, ComputeScale: 1.15, MemScale: 1.05},
		{Kind: Compute, Frac: 0.25, ComputeScale: 1.30, MemScale: 0.70},
		{Kind: Serial, Frac: 0.15, ComputeScale: 0.90, MemScale: 0.80},
		{Kind: Barrier, Frac: 0.15, ComputeScale: 0.10, MemScale: 0.10},
	}
}

// Suite returns the 14 SPLASH2x benchmark profiles of the paper's
// evaluation (Section 5), in the order the figures list them. Base
// intensities are calibrated so that the resulting chip power reproduces
// each benchmark's character: cholesky sustains the highest power (the
// paper's smallest gating saving, 10.4%), raytrace the lowest (the largest,
// 49.8%), with the suite averaging ≈26.5% (Fig. 7). Burst parameters are
// calibrated against Table 2's voltage emergency rates: barnes, fft and
// ocean_cp experience the most di/dt events, lu_cb/lu_ncb/water_nsquared
// essentially none.
func Suite() []Profile {
	return []Profile{
		{
			Name: "barnes", DurationMS: 3000, IterationMS: 2.0,
			Phases:      irregularPhases(),
			BaseCompute: 0.65, BaseMemory: 0.42,
			L1Miss: 0.08, L2Miss: 0.35, L3Miss: 0.25,
			ThreadSkew: 0.15, NoiseSigma: 0.12, NoisePhi: 0.85,
			BurstRatePerMS: 11.0, BurstCycles: 700, BurstAmp: 1.2,
			BurstClusterFrac: 0.15, BurstStormMS: 2.0,
			BankSkew: 0.20,
		},
		{
			Name: "cholesky", DurationMS: 3000, IterationMS: 1.5,
			Phases:      computeHeavyPhases(),
			BaseCompute: 0.84, BaseMemory: 0.48,
			L1Miss: 0.06, L2Miss: 0.30, L3Miss: 0.20,
			ThreadSkew: 0.10, NoiseSigma: 0.05, NoisePhi: 0.90,
			BurstRatePerMS: 0.014, BurstCycles: 500, BurstAmp: 1.3,
			BankSkew: 0.10,
		},
		{
			Name: "fft", DurationMS: 3000, IterationMS: 0.8,
			Phases:      alternatingPhases(),
			BaseCompute: 0.63, BaseMemory: 0.55,
			L1Miss: 0.12, L2Miss: 0.45, L3Miss: 0.35,
			ThreadSkew: 0.05, NoiseSigma: 0.08, NoisePhi: 0.80,
			BurstRatePerMS: 5.3, BurstCycles: 700, BurstAmp: 1.35,
			BurstClusterFrac: 0.15, BurstStormMS: 1.5,
			BankSkew: 0.05,
		},
		{
			Name: "fmm", DurationMS: 3000, IterationMS: 2.5,
			Phases:      computeHeavyPhases(),
			BaseCompute: 0.58, BaseMemory: 0.38,
			L1Miss: 0.07, L2Miss: 0.32, L3Miss: 0.22,
			ThreadSkew: 0.12, NoiseSigma: 0.07, NoisePhi: 0.85,
			BurstRatePerMS: 0.72, BurstCycles: 600, BurstAmp: 1.0,
			BurstClusterFrac: 0.3, BurstStormMS: 2.0,
			BankSkew: 0.15,
		},
		{
			Name: "lu_cb", DurationMS: 3000, IterationMS: 1.2,
			Phases:      computeHeavyPhases(),
			BaseCompute: 0.70, BaseMemory: 0.38,
			L1Miss: 0.05, L2Miss: 0.25, L3Miss: 0.18,
			ThreadSkew: 0.08, NoiseSigma: 0.05, NoisePhi: 0.90,
			BurstRatePerMS: 0.004, BurstCycles: 500, BurstAmp: 0.3,
			BankSkew: 0.10,
		},
		{
			Name: "lu_ncb", DurationMS: 3000, IterationMS: 0.6,
			Phases:      oscillatingPhases(),
			BaseCompute: 0.62, BaseMemory: 0.48,
			L1Miss: 0.09, L2Miss: 0.40, L3Miss: 0.30,
			ThreadSkew: 0.08, NoiseSigma: 0.08, NoisePhi: 0.80,
			BurstRatePerMS: 0.004, BurstCycles: 500, BurstAmp: 0.3,
			BankSkew: 0.10,
		},
		{
			Name: "ocean_cp", DurationMS: 3000, IterationMS: 1.0,
			Phases:      memoryHeavyPhases(),
			BaseCompute: 0.45, BaseMemory: 0.48,
			L1Miss: 0.15, L2Miss: 0.50, L3Miss: 0.40,
			ThreadSkew: 0.05, NoiseSigma: 0.08, NoisePhi: 0.82,
			BurstRatePerMS: 13.0, BurstCycles: 700, BurstAmp: 1.25,
			BurstClusterFrac: 0.15, BurstStormMS: 1.5,
			BankSkew: 0.05,
		},
		{
			Name: "ocean_ncp", DurationMS: 3000, IterationMS: 1.0,
			Phases:      memoryHeavyPhases(),
			BaseCompute: 0.40, BaseMemory: 0.52,
			L1Miss: 0.18, L2Miss: 0.55, L3Miss: 0.45,
			ThreadSkew: 0.05, NoiseSigma: 0.07, NoisePhi: 0.82,
			BurstRatePerMS: 0.15, BurstCycles: 550, BurstAmp: 0.9,
			BankSkew: 0.05,
		},
		{
			Name: "radiosity", DurationMS: 3000, IterationMS: 2.2,
			Phases:      irregularPhases(),
			BaseCompute: 0.50, BaseMemory: 0.36,
			L1Miss: 0.08, L2Miss: 0.35, L3Miss: 0.25,
			ThreadSkew: 0.20, NoiseSigma: 0.09, NoisePhi: 0.85,
			BurstRatePerMS: 0.42, BurstCycles: 550, BurstAmp: 1.0,
			BankSkew: 0.25,
		},
		{
			Name: "radix", DurationMS: 3000, IterationMS: 0.9,
			Phases:      memoryHeavyPhases(),
			BaseCompute: 0.36, BaseMemory: 0.46,
			L1Miss: 0.20, L2Miss: 0.60, L3Miss: 0.50,
			ThreadSkew: 0.03, NoiseSigma: 0.06, NoisePhi: 0.80,
			BurstRatePerMS: 3.2, BurstCycles: 550, BurstAmp: 1.1,
			BurstClusterFrac: 0.2, BurstStormMS: 1.5,
			BankSkew: 0.05,
		},
		{
			Name: "raytrace", DurationMS: 3000, IterationMS: 2.8,
			Phases:      irregularPhases(),
			BaseCompute: 0.30, BaseMemory: 0.20,
			L1Miss: 0.10, L2Miss: 0.40, L3Miss: 0.30,
			ThreadSkew: 0.30, NoiseSigma: 0.10, NoisePhi: 0.85,
			BurstRatePerMS: 1.1, BurstCycles: 550, BurstAmp: 1.3,
			BurstClusterFrac: 0.25, BurstStormMS: 2.0,
			BankSkew: 0.30,
		},
		{
			Name: "volrend", DurationMS: 3000, IterationMS: 2.0,
			Phases:      irregularPhases(),
			BaseCompute: 0.36, BaseMemory: 0.26,
			L1Miss: 0.09, L2Miss: 0.38, L3Miss: 0.28,
			ThreadSkew: 0.22, NoiseSigma: 0.07, NoisePhi: 0.85,
			BurstRatePerMS: 0.3, BurstCycles: 550, BurstAmp: 1.0,
			BankSkew: 0.20,
		},
		{
			Name: "water_nsquared", DurationMS: 3000, IterationMS: 1.8,
			Phases:      computeHeavyPhases(),
			BaseCompute: 0.64, BaseMemory: 0.32,
			L1Miss: 0.05, L2Miss: 0.28, L3Miss: 0.18,
			ThreadSkew: 0.06, NoiseSigma: 0.05, NoisePhi: 0.88,
			BurstRatePerMS: 0.004, BurstCycles: 500, BurstAmp: 0.3,
			BankSkew: 0.08,
		},
		{
			Name: "water_spatial", DurationMS: 3000, IterationMS: 1.8,
			Phases:      computeHeavyPhases(),
			BaseCompute: 0.58, BaseMemory: 0.32,
			L1Miss: 0.06, L2Miss: 0.30, L3Miss: 0.20,
			ThreadSkew: 0.08, NoiseSigma: 0.09, NoisePhi: 0.88,
			BurstRatePerMS: 2.1, BurstCycles: 550, BurstAmp: 1.1,
			BurstClusterFrac: 0.2, BurstStormMS: 2.0,
			BankSkew: 0.10,
		},
	}
}

// ByName returns the named benchmark profile. Short figure labels from the
// paper ("chol", "oc_cp", "rayt", "water_n", …) are accepted as aliases.
func ByName(name string) (Profile, error) {
	aliases := map[string]string{
		"chol":    "cholesky",
		"oc_cp":   "ocean_cp",
		"oc_ncp":  "ocean_ncp",
		"radio":   "radiosity",
		"rayt":    "raytrace",
		"volr":    "volrend",
		"water_n": "water_nsquared",
		"water_s": "water_spatial",
	}
	if full, ok := aliases[name]; ok {
		name = full
	}
	for _, p := range Suite() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// ShortName returns the abbreviated label the paper's figures use for the
// given benchmark name.
func ShortName(name string) string {
	short := map[string]string{
		"cholesky":       "chol",
		"ocean_cp":       "oc_cp",
		"ocean_ncp":      "oc_ncp",
		"radiosity":      "radio",
		"raytrace":       "rayt",
		"volrend":        "volr",
		"water_nsquared": "water_n",
		"water_spatial":  "water_s",
	}
	if s, ok := short[name]; ok {
		return s
	}
	return name
}
