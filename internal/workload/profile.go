package workload

import (
	"errors"
	"fmt"
	"math"
)

// PhaseKind classifies one section of a benchmark's execution.
type PhaseKind int

const (
	// Compute marks arithmetic-dominated sections (EXU-heavy).
	Compute PhaseKind = iota
	// MemoryBound marks cache/memory traffic dominated sections (LSU-heavy).
	MemoryBound
	// Barrier marks synchronisation waits with low activity on all threads.
	Barrier
	// Serial marks sections where only thread 0 makes progress.
	Serial
	// Mixed marks balanced compute + memory sections.
	Mixed
)

// String implements fmt.Stringer.
func (k PhaseKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case MemoryBound:
		return "memory"
	case Barrier:
		return "barrier"
	case Serial:
		return "serial"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// Phase is one section of a benchmark's repeating superstep.
type Phase struct {
	// Kind determines the activity blend.
	Kind PhaseKind
	// Frac is this phase's share of the superstep duration; fractions of
	// a profile's phases must sum to 1.
	Frac float64
	// ComputeScale and MemScale multiply the profile's base intensities
	// within this phase.
	ComputeScale, MemScale float64
}

// Profile is the calibrated activity model for one SPLASH2x benchmark.
type Profile struct {
	// Name is the benchmark's short name as used in the paper's figures
	// (e.g. "lu_ncb").
	Name string
	// DurationMS is the modelled region-of-interest length in milliseconds.
	DurationMS int
	// IterationMS is the superstep period over which Phases repeat.
	IterationMS float64
	// Phases is the superstep structure; Frac values sum to 1.
	Phases []Phase
	// BaseCompute and BaseMemory are the nominal per-thread compute and
	// memory activity intensities in [0, 1], calibrated so that the
	// benchmark's average power matches its SPLASH2x character (cholesky
	// hot, raytrace cold, Section 6.1 / Fig. 7).
	BaseCompute, BaseMemory float64
	// L1Miss, L2Miss and L3Miss are per-level miss ratios derived from the
	// benchmark working set, feeding the cache/NOC/MC activity chain.
	L1Miss, L2Miss, L3Miss float64
	// ThreadSkew linearly biases intensity across the 8 threads
	// (0 = perfectly balanced, 0.5 = last thread 50% below the first).
	ThreadSkew float64
	// NoiseSigma and NoisePhi parameterise the AR(1) activity noise.
	NoiseSigma, NoisePhi float64
	// BurstRatePerMS is the expected number of di/dt burst events per core
	// per millisecond; bursts are what cause voltage emergencies (Table 2).
	BurstRatePerMS float64
	// BurstCycles is the burst duration in core clock cycles.
	BurstCycles int
	// BurstAmp is the fractional current surge of a burst (0.8 = +80%).
	BurstAmp float64
	// BurstClusterFrac clusters bursts into storms: the fraction of time
	// each core spends in a burst storm. Within a storm the burst rate is
	// BurstRatePerMS/BurstClusterFrac so the long-run average rate is
	// preserved, but emergencies concentrate into few decision intervals —
	// which is what lets OracVT/PracVT suppress them with rare all-on
	// overrides (Section 6.2.4: "emergency events are rare"). Zero means
	// uniform (no clustering).
	BurstClusterFrac float64
	// BurstStormMS is the mean storm duration; zero selects the default.
	BurstStormMS float64
	// BankSkew biases L3 traffic toward low-numbered banks (0 = uniform).
	BankSkew float64
}

// Validate checks that the profile is internally consistent.
func (p Profile) Validate() error {
	if p.Name == "" {
		return errors.New("workload: profile needs a name")
	}
	if p.DurationMS <= 0 {
		return fmt.Errorf("workload: %s: non-positive duration", p.Name)
	}
	if p.IterationMS <= 0 {
		return fmt.Errorf("workload: %s: non-positive iteration period", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload: %s: no phases", p.Name)
	}
	var sum float64
	for i, ph := range p.Phases {
		if ph.Frac <= 0 {
			return fmt.Errorf("workload: %s: phase %d has non-positive fraction", p.Name, i)
		}
		if ph.ComputeScale < 0 || ph.MemScale < 0 {
			return fmt.Errorf("workload: %s: phase %d has negative scale", p.Name, i)
		}
		sum += ph.Frac
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("workload: %s: phase fractions sum to %v, want 1", p.Name, sum)
	}
	for _, v := range []struct {
		name string
		x    float64
	}{
		{"BaseCompute", p.BaseCompute}, {"BaseMemory", p.BaseMemory},
		{"L1Miss", p.L1Miss}, {"L2Miss", p.L2Miss}, {"L3Miss", p.L3Miss},
	} {
		if v.x < 0 || v.x > 1 {
			return fmt.Errorf("workload: %s: %s = %v outside [0,1]", p.Name, v.name, v.x)
		}
	}
	if p.ThreadSkew < 0 || p.ThreadSkew >= 1 {
		return fmt.Errorf("workload: %s: ThreadSkew %v outside [0,1)", p.Name, p.ThreadSkew)
	}
	if p.NoisePhi < 0 || p.NoisePhi >= 1 {
		return fmt.Errorf("workload: %s: NoisePhi %v outside [0,1)", p.Name, p.NoisePhi)
	}
	if p.BurstRatePerMS < 0 || p.BurstAmp < 0 || p.BurstCycles < 0 {
		return fmt.Errorf("workload: %s: negative burst parameters", p.Name)
	}
	if p.BurstClusterFrac < 0 || p.BurstClusterFrac > 1 {
		return fmt.Errorf("workload: %s: BurstClusterFrac %v outside [0,1]", p.Name, p.BurstClusterFrac)
	}
	if p.BurstStormMS < 0 {
		return fmt.Errorf("workload: %s: negative BurstStormMS", p.Name)
	}
	return nil
}

// PhaseAt returns the phase active at time tMS (milliseconds from ROI
// start), cycling through the superstep.
func (p Profile) PhaseAt(tMS float64) Phase {
	frac := math.Mod(tMS, p.IterationMS) / p.IterationMS
	var acc float64
	for _, ph := range p.Phases {
		acc += ph.Frac
		if frac < acc {
			return ph
		}
	}
	return p.Phases[len(p.Phases)-1]
}

// MeanIntensity returns the superstep-averaged (compute, memory) intensity,
// used by the power calibration tests.
func (p Profile) MeanIntensity() (compute, memory float64) {
	for _, ph := range p.Phases {
		compute += ph.Frac * ph.ComputeScale * p.BaseCompute
		memory += ph.Frac * ph.MemScale * p.BaseMemory
	}
	return compute, memory
}
