package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// profileJSON is the serialised form of a Profile. Field names are
// snake_case for config-file friendliness.
type profileJSON struct {
	Name             string      `json:"name"`
	DurationMS       int         `json:"duration_ms"`
	IterationMS      float64     `json:"iteration_ms"`
	Phases           []phaseJSON `json:"phases"`
	BaseCompute      float64     `json:"base_compute"`
	BaseMemory       float64     `json:"base_memory"`
	L1Miss           float64     `json:"l1_miss"`
	L2Miss           float64     `json:"l2_miss"`
	L3Miss           float64     `json:"l3_miss"`
	ThreadSkew       float64     `json:"thread_skew"`
	NoiseSigma       float64     `json:"noise_sigma"`
	NoisePhi         float64     `json:"noise_phi"`
	BurstRatePerMS   float64     `json:"burst_rate_per_ms"`
	BurstCycles      int         `json:"burst_cycles"`
	BurstAmp         float64     `json:"burst_amp"`
	BurstClusterFrac float64     `json:"burst_cluster_frac"`
	BurstStormMS     float64     `json:"burst_storm_ms"`
	BankSkew         float64     `json:"bank_skew"`
}

type phaseJSON struct {
	Kind         string  `json:"kind"`
	Frac         float64 `json:"frac"`
	ComputeScale float64 `json:"compute_scale"`
	MemScale     float64 `json:"mem_scale"`
}

var phaseKindNames = map[string]PhaseKind{
	"compute": Compute,
	"memory":  MemoryBound,
	"barrier": Barrier,
	"serial":  Serial,
	"mixed":   Mixed,
}

// phaseKindName inverts phaseKindNames over sorted keys, so that if an
// alias is ever added the encoded spelling stays stable instead of
// depending on map-iteration order.
func phaseKindName(kind PhaseKind) string {
	names := make([]string, 0, len(phaseKindNames))
	for n := range phaseKindNames {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if phaseKindNames[n] == kind {
			return n
		}
	}
	return ""
}

// ReadProfile parses a benchmark profile from JSON and validates it,
// letting users define custom workloads in configuration files and run
// them through the same pipeline as the built-in SPLASH2x suite.
func ReadProfile(r io.Reader) (Profile, error) {
	var pj profileJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pj); err != nil {
		return Profile{}, fmt.Errorf("workload: parsing profile: %w", err)
	}
	p := Profile{
		Name:             pj.Name,
		DurationMS:       pj.DurationMS,
		IterationMS:      pj.IterationMS,
		BaseCompute:      pj.BaseCompute,
		BaseMemory:       pj.BaseMemory,
		L1Miss:           pj.L1Miss,
		L2Miss:           pj.L2Miss,
		L3Miss:           pj.L3Miss,
		ThreadSkew:       pj.ThreadSkew,
		NoiseSigma:       pj.NoiseSigma,
		NoisePhi:         pj.NoisePhi,
		BurstRatePerMS:   pj.BurstRatePerMS,
		BurstCycles:      pj.BurstCycles,
		BurstAmp:         pj.BurstAmp,
		BurstClusterFrac: pj.BurstClusterFrac,
		BurstStormMS:     pj.BurstStormMS,
		BankSkew:         pj.BankSkew,
	}
	p.Phases = make([]Phase, 0, len(pj.Phases))
	for i, ph := range pj.Phases {
		kind, ok := phaseKindNames[ph.Kind]
		if !ok {
			return Profile{}, fmt.Errorf("workload: phase %d has unknown kind %q", i, ph.Kind)
		}
		p.Phases = append(p.Phases, Phase{
			Kind:         kind,
			Frac:         ph.Frac,
			ComputeScale: ph.ComputeScale,
			MemScale:     ph.MemScale,
		})
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// WriteProfile serialises a profile to indented JSON; the output round
// trips through ReadProfile.
func WriteProfile(w io.Writer, p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	pj := profileJSON{
		Name:             p.Name,
		DurationMS:       p.DurationMS,
		IterationMS:      p.IterationMS,
		BaseCompute:      p.BaseCompute,
		BaseMemory:       p.BaseMemory,
		L1Miss:           p.L1Miss,
		L2Miss:           p.L2Miss,
		L3Miss:           p.L3Miss,
		ThreadSkew:       p.ThreadSkew,
		NoiseSigma:       p.NoiseSigma,
		NoisePhi:         p.NoisePhi,
		BurstRatePerMS:   p.BurstRatePerMS,
		BurstCycles:      p.BurstCycles,
		BurstAmp:         p.BurstAmp,
		BurstClusterFrac: p.BurstClusterFrac,
		BurstStormMS:     p.BurstStormMS,
		BankSkew:         p.BankSkew,
	}
	pj.Phases = make([]phaseJSON, 0, len(p.Phases))
	for _, ph := range p.Phases {
		name := phaseKindName(ph.Kind)
		if name == "" {
			return fmt.Errorf("workload: phase kind %v has no JSON name", ph.Kind)
		}
		pj.Phases = append(pj.Phases, phaseJSON{
			Kind:         name,
			Frac:         ph.Frac,
			ComputeScale: ph.ComputeScale,
			MemScale:     ph.MemScale,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pj)
}
