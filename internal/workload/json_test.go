package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	for _, p := range Suite() {
		var buf bytes.Buffer
		if err := WriteProfile(&buf, p); err != nil {
			t.Fatalf("%s: write: %v", p.Name, err)
		}
		back, err := ReadProfile(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", p.Name, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Errorf("%s: round trip mismatch:\nwant %+v\ngot  %+v", p.Name, p, back)
		}
	}
}

func TestReadProfileValidates(t *testing.T) {
	// Structurally valid JSON, semantically invalid profile.
	const bad = `{"name":"x","duration_ms":0,"iteration_ms":1,
		"phases":[{"kind":"compute","frac":1,"compute_scale":1,"mem_scale":1}],
		"base_compute":0.5,"base_memory":0.5,"noise_phi":0.5}`
	if _, err := ReadProfile(strings.NewReader(bad)); err == nil {
		t.Error("zero-duration profile accepted")
	}
}

func TestReadProfileRejectsUnknownFields(t *testing.T) {
	const extra = `{"name":"x","duration_ms":10,"iteration_ms":1,"surprise":1,
		"phases":[{"kind":"compute","frac":1,"compute_scale":1,"mem_scale":1}]}`
	if _, err := ReadProfile(strings.NewReader(extra)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestReadProfileRejectsUnknownPhaseKind(t *testing.T) {
	const bad = `{"name":"x","duration_ms":10,"iteration_ms":1,
		"phases":[{"kind":"quantum","frac":1,"compute_scale":1,"mem_scale":1}],
		"base_compute":0.5,"base_memory":0.5,"noise_phi":0.5}`
	if _, err := ReadProfile(strings.NewReader(bad)); err == nil {
		t.Error("unknown phase kind accepted")
	}
}

func TestReadProfileRejectsBrokenJSON(t *testing.T) {
	if _, err := ReadProfile(strings.NewReader("{nope")); err == nil {
		t.Error("broken JSON accepted")
	}
}

func TestWriteProfileValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfile(&buf, Profile{Name: "broken"}); err == nil {
		t.Error("invalid profile serialised")
	}
}

func TestPhaseKindNamesComplete(t *testing.T) {
	// Every defined phase kind must have a JSON name so WriteProfile
	// never fails on a valid profile.
	kinds := []PhaseKind{Compute, MemoryBound, Barrier, Serial, Mixed}
	for _, k := range kinds {
		found := false
		for _, v := range phaseKindNames {
			if v == k {
				found = true
			}
		}
		if !found {
			t.Errorf("phase kind %v has no JSON name", k)
		}
	}
}
