// Package analysis is tglint's pass framework: a small, stdlib-only
// counterpart of golang.org/x/tools/go/analysis tailored to this
// repository's domain invariants. Twenty-one passes ride on it:
//
//   - unitcheck:      unit-suffix consistency (tempC vs tempK, W vs mW, ...)
//   - detcheck:       nondeterminism sources in simulation packages
//   - floatcheck:     raw ==/!= on floating-point operands
//   - errsink:        dropped error results from solver / sink APIs
//   - aliascheck:     exported methods leaking receiver-held scratch buffers
//   - goroutinecheck: unsynchronized writes to captured state in go closures
//   - invcheck:       stepping entry points detached from the tgsan hooks
//
// plus three interprocedural passes built on the tgflow engine (cfg.go,
// callgraph.go, dataflow.go, summary.go):
//
//   - unitflow:  unit propagation across call boundaries and struct fields
//   - nanflow:   NaN taint from unchecked sources to persistent state sinks
//   - statecover: checkpoint State()/Restore() field-coverage verification
//
// plus the tgpar family policing the parallel-pipeline and cache
// contracts from docs/PERFORMANCE.md (parutil.go):
//
//   - parwrite:   workers write only chunk-indexed or worker-owned state
//   - redorder:   reductions reachable from phases are serial/deterministic
//   - cacheflush: topology/geometry mutations are followed by their flush
//   - workerpure: workers may bump counters, never the record stream
//
// plus the tgperf family policing the steady-state performance
// contract — zero allocations and zero dynamic dispatch on the
// per-epoch hot path (perfutil.go):
//
//   - allocfree: heap-allocating constructs in the hot set, classified
//     on the StackLocal/ReusedScratch/Escapes lattice
//   - boxcheck:  interface dispatch and reflection sorts in the hot set
//   - capgrow:   loop appends without established capacity
//
// plus the tgsync family policing synchronization lifecycles in the
// supervision layer (syncutil.go):
//
//   - lockorder:  whole-repo lock-acquisition ordering via held-set
//     abstract interpretation and per-function lock summaries; cycle
//     reports name both chains
//   - unlockpath: every Lock/RLock post-dominated by its matching
//     release (or defer) on all paths to return
//   - blockheld:  no channel waits, defaultless selects, sleeps, or
//     (interprocedurally) I/O while a lock is held
//   - golife:     every spawned goroutine, timer, and terminal job
//     transition has a reachable teardown / settle path
//
// Packages are loaded with go/parser and type-checked with go/types
// against the build cache's export data (see load.go), so the framework
// needs no module dependencies and no network. Diagnostics can be
// suppressed per line with
//
//	//lint:ignore <pass>[,<pass>...] <reason>
//
// on the offending line or the line directly above it (see suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// Analyzer is one named pass. Run receives a fully type-checked package
// and reports through Pass.Reportf.
type Analyzer struct {
	Name string // short lower-case name used in diagnostics and ignore directives
	Doc  string // one-line description
	Run  func(*Pass)

	// NeedsProgram marks interprocedural (tgflow) passes: the runner
	// builds one Program over every loaded package and exposes it via
	// Pass.Program. The pass still runs once per package and must report
	// only into that package's files; the program supplies the
	// cross-package call graph and summaries.
	NeedsProgram bool
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
}

// String renders the canonical "file:line:col: [pass] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
}

// Pass is the per-(analyzer, package) invocation context handed to
// Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Config   *Config

	// ImportPath is the package's import path as reported by go list;
	// detcheck and errsink scope themselves with it.
	ImportPath string

	// Program is the whole-repo interprocedural context, set only for
	// analyzers with NeedsProgram.
	Program *Program

	diags []Diagnostic
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Pass:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil when the checker could not
// resolve it. Passes must tolerate nil: type information is best-effort
// when a package has errors.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return typeOf(p.Info, e)
}

// typeOf is TypeOf against a bare types.Info, shared with the tgflow
// machinery, which evaluates expressions in packages other than the one
// a Pass is reporting into.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves the object a call expression's function refers to
// (function, method, or builtin), or nil.
func (p *Pass) ObjectOf(fun ast.Expr) types.Object {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return p.Info.ObjectOf(f)
	case *ast.SelectorExpr:
		return p.Info.ObjectOf(f.Sel)
	}
	return nil
}

// All returns the domain analyzers in their canonical order: the seven
// syntactic passes, the three interprocedural (tgflow) passes, the four
// tgpar concurrency/cache-contract passes, the three tgperf hot-path
// performance passes, then the four tgsync synchronization-lifecycle
// passes.
func All() []*Analyzer {
	return []*Analyzer{
		Unitcheck, Detcheck, Floatcheck, Errsink, Aliascheck, Goroutinecheck, Invcheck,
		Unitflow, Nanflow, Statecover,
		Parwrite, Redorder, Cacheflush, Workerpure,
		Allocfree, Boxcheck, Capgrow,
		Lockorder, Unlockpath, Blockheld, Golife,
	}
}

// ByName resolves a comma-less analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the analyzers to every loaded package, filters suppressed
// diagnostics, and returns the rest sorted by position. Malformed
// suppression directives are themselves reported under the pass name
// "tglint". Packages are analyzed concurrently across GOMAXPROCS
// workers; the final sort keeps the output deterministic regardless of
// scheduling.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	perPkg := runPerPkg(pkgs, analyzers, cfg, nil)
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, perPkg[pkg.ImportPath]...)
	}
	sortDiagnostics(out)
	return out
}

// runPerPkg is Run's core: it analyzes every package not listed in skip
// and returns the diagnostics keyed by import path. Skipped packages
// still participate in Program construction — interprocedural passes see
// the whole program either way — they just don't re-run their passes;
// the incremental driver (incremental.go) substitutes their cached
// findings.
func runPerPkg(pkgs []*Package, analyzers []*Analyzer, cfg *Config, skip map[string]bool) map[string][]Diagnostic {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	var prog *Program
	for _, a := range analyzers {
		if a.NeedsProgram {
			prog = BuildProgram(pkgs)
			prog.Config = cfg
			break
		}
	}

	perPkg := make([][]Diagnostic, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		if skip[pkg.ImportPath] {
			continue
		}
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			idx, bad := buildSuppressions(pkg.Fset, pkg.Files)
			out := bad
			for _, a := range analyzers {
				pass := &Pass{
					Analyzer:   a,
					Fset:       pkg.Fset,
					Files:      pkg.Files,
					Pkg:        pkg.Types,
					Info:       pkg.Info,
					Config:     cfg,
					ImportPath: pkg.ImportPath,
					Program:    prog,
				}
				a.Run(pass)
				for _, d := range pass.diags {
					if !idx.suppressed(a.Name, d.Pos) {
						out = append(out, d)
					}
				}
			}
			perPkg[i] = out
		}(i, pkg)
	}
	wg.Wait()

	out := make(map[string][]Diagnostic, len(pkgs))
	for i, pkg := range pkgs {
		if !skip[pkg.ImportPath] {
			out[pkg.ImportPath] = perPkg[i]
		}
	}
	return out
}

// sortDiagnostics orders diagnostics by file, line, column, then pass —
// the one canonical order every tglint entry point emits, so full and
// incremental runs are byte-comparable.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
}
