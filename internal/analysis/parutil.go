package analysis

// parutil.go — shared machinery for the tgpar pass family (parwrite,
// redorder, workerpure). The three passes police the parallel-pipeline
// contract documented in docs/PERFORMANCE.md: par.Pool.For fans work out
// over disjoint index chunks, every reduction is serial and fixed-order,
// and worker-reachable code never writes the per-epoch record stream.
//
// This file contributes the two ingredients every pass needs:
//
//   - fan-out site discovery: every (*par.Pool).For call with its worker
//     body resolved (inline func literal, local variable initialized with
//     one, or a named function), plus `go` statements in the configured
//     pipeline packages;
//
//   - the //par: annotation grammar for audited exceptions:
//
//       //par:disjoint <reason>   writes are disjoint for a reason the
//                                 analysis cannot see (parwrite)
//       //par:ordered <reason>    ordering is deterministic for a reason
//                                 the analysis cannot see (redorder)
//
//     A directive covers its own line (trailing form) and the line below
//     (standalone form), mirroring //lint:ignore. The reason is
//     mandatory and unknown kinds are reported, so every exception in
//     the tree carries its justification.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// ---------------------------------------------------------------------------
// //par: annotations

const parAnnPrefix = "//par:"

// parAnnIndex maps file → line → annotation kinds covering that line.
type parAnnIndex map[string]map[int]map[string]bool

// covered reports whether an annotation of the given kind covers pos.
func (idx parAnnIndex) covered(kind string, pos token.Position) bool {
	return idx[pos.Filename][pos.Line][kind]
}

var parAnnKinds = map[string]bool{"disjoint": true, "ordered": true}

// buildParAnns scans the files for //par: directives. Malformed ones
// (unknown kind or missing reason) come back as diagnostics attributed
// to the given pass name; parwrite reports them so they surface exactly
// once per package.
func buildParAnns(fset *token.FileSet, files []*ast.File, reportPass string) (parAnnIndex, []Diagnostic) {
	return buildAnnIndex(fset, files, parAnnPrefix, parAnnKinds, "disjoint or ordered", reportPass)
}

// buildAnnIndex is the shared directive scanner behind the //par: and
// //perf: grammars: a directive is "<prefix><kind> <reason...>", the
// reason is mandatory, unknown kinds are findings, and a directive
// covers its own line plus the line below it (mirroring //lint:ignore).
func buildAnnIndex(fset *token.FileSet, files []*ast.File, prefix string, kinds map[string]bool, kindsHint, reportPass string) (parAnnIndex, []Diagnostic) {
	idx := make(parAnnIndex)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, prefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 || !kinds[fields[0]] {
					if reportPass != "" {
						kind := "(none)"
						if len(fields) > 0 {
							kind = fields[0]
						}
						bad = append(bad, Diagnostic{
							Pos:     pos,
							Pass:    reportPass,
							Message: "unknown " + prefix + " annotation kind " + kind + " (want " + kindsHint + ")",
						})
					}
					continue
				}
				if len(fields) < 2 {
					if reportPass != "" {
						bad = append(bad, Diagnostic{
							Pos:     pos,
							Pass:    reportPass,
							Message: "malformed " + prefix + fields[0] + " annotation: a reason is mandatory",
						})
					}
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					kinds := byLine[line]
					if kinds == nil {
						kinds = make(map[string]bool)
						byLine[line] = kinds
					}
					kinds[fields[0]] = true
				}
			}
		}
	}
	return idx, bad
}

// parAnnsOnce lazily builds the program-wide annotation index: a worker
// write in package B may carry its //par:disjoint locally even though
// the finding is reported at the fan-out site in package A.
type parAnnState struct {
	once sync.Once
	idx  parAnnIndex
}

var parAnnCache sync.Map // *Program → *parAnnState

// parAnns returns the annotation index over every package of the
// program (malformed directives are reported separately, per package,
// by parwrite).
func parAnns(prog *Program) parAnnIndex {
	v, _ := parAnnCache.LoadOrStore(prog, &parAnnState{})
	st := v.(*parAnnState)
	st.once.Do(func() {
		st.idx = make(parAnnIndex)
		for _, pkg := range prog.Pkgs {
			idx, _ := buildParAnns(pkg.Fset, pkg.Files, "")
			for file, byLine := range idx {
				st.idx[file] = byLine
			}
		}
	})
	return st.idx
}

// ---------------------------------------------------------------------------
// Fan-out sites

// fanoutSite is one place worker goroutines are spawned: a
// (*par.Pool).For call or a `go` statement.
type fanoutSite struct {
	pos  token.Pos // anchor for diagnostics: the call or the go keyword
	desc string    // "par.Pool.For fan-out" or "go statement"
	encl *ast.FuncDecl

	lits []*ast.FuncLit // resolved worker bodies
	fns  []*FlowFunc    // named worker functions with bodies in the program

	unresolved ast.Expr // worker argument nobody could resolve, or nil
	isFor      bool     // true for For sites: the worker's params are chunk bounds
}

// isPoolFor reports whether the call invokes (*par.Pool).For from the
// par package (matched by canonical key suffix, so fixture packages that
// import the real pool are recognized too).
func isPoolFor(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return false
	}
	key := FuncKey(fn)
	return key == "par.(Pool).For" || strings.HasSuffix(key, "/par.(Pool).For")
}

// findFanouts collects the package's fan-out sites. includeGo adds `go`
// statements (parwrite/workerpure enable it for the configured pipeline
// packages only; a go statement has no chunk bounds, so every captured
// write is shared by construction).
func findFanouts(pkg *Package, prog *Program, includeGo bool) []*fanoutSite {
	var sites []*fanoutSite
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isPoolFor(pkg, n) && len(n.Args) == 2 {
						site := &fanoutSite{pos: n.Pos(), desc: "par.Pool.For fan-out", encl: fd, isFor: true}
						resolveWorker(pkg, prog, fd, n.Args[1], site)
						sites = append(sites, site)
					}
				case *ast.GoStmt:
					if !includeGo {
						return true
					}
					site := &fanoutSite{pos: n.Pos(), desc: "go statement", encl: fd}
					resolveWorker(pkg, prog, fd, n.Call.Fun, site)
					sites = append(sites, site)
				}
				return true
			})
		}
	}
	return sites
}

// resolveWorker resolves a fan-out's worker argument to concrete bodies:
// an inline func literal, a local variable assigned func literals, or a
// declared function/method. Anything else is recorded as unresolved and
// parwrite reports it (an unanalyzable worker body is itself a contract
// violation).
func resolveWorker(pkg *Package, prog *Program, encl *ast.FuncDecl, arg ast.Expr, site *fanoutSite) {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		site.lits = append(site.lits, a)
		return
	case *ast.Ident, *ast.SelectorExpr:
		var obj types.Object
		switch a := a.(type) {
		case *ast.Ident:
			obj = pkg.Info.ObjectOf(a)
		case *ast.SelectorExpr:
			obj = pkg.Info.ObjectOf(a.Sel)
		}
		switch obj := obj.(type) {
		case *types.Func:
			if fn := prog.Funcs[FuncKey(obj)]; fn != nil {
				site.fns = append(site.fns, fn)
				return
			}
		case *types.Var:
			if obj.IsField() {
				// A prebuilt worker hoisted into a struct field (the
				// allocation-free idiom tgperf pushes hot code toward):
				// collect every func literal the field is assigned anywhere
				// in its own package — plain assignments and composite
				// literal values both count.
				if lits := fieldFuncLits(pkg, obj); len(lits) > 0 {
					site.lits = append(site.lits, lits...)
					return
				}
				break
			}
			if encl == nil {
				break
			}
			// A local like `rows := func(lo, hi int) { ... }` later passed
			// as pool.For(n, rows): collect every func literal the variable
			// is ever assigned in the enclosing function.
			var lits []*ast.FuncLit
			ast.Inspect(encl.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || pkg.Info.ObjectOf(id) != obj || i >= len(as.Rhs) {
						continue
					}
					if lit, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
						lits = append(lits, lit)
					}
				}
				return true
			})
			if len(lits) > 0 {
				site.lits = append(site.lits, lits...)
				return
			}
		}
	}
	site.unresolved = arg
}

// fieldFuncLits collects the func literals assigned to a struct field
// in the field's own package. Cross-package field workers stay
// unresolved: the literals would carry a foreign types.Info, and no hot
// path in this repository stores a worker outside its defining package.
func fieldFuncLits(pkg *Package, obj *types.Var) []*ast.FuncLit {
	if obj.Pkg() == nil || obj.Pkg().Path() != pkg.ImportPath {
		return nil
	}
	var lits []*ast.FuncLit
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || pkg.Info.ObjectOf(sel.Sel) != obj || i >= len(n.Rhs) {
						continue
					}
					if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
						lits = append(lits, lit)
					}
				}
			case *ast.KeyValueExpr:
				id, ok := n.Key.(*ast.Ident)
				if !ok || pkg.Info.ObjectOf(id) != obj {
					return true
				}
				if lit, ok := ast.Unparen(n.Value).(*ast.FuncLit); ok {
					lits = append(lits, lit)
				}
			}
			return true
		})
	}
	return lits
}

// pkgByPath finds a loaded package by import path.
func (p *Program) pkgByPath(path string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.ImportPath == path {
			return pkg
		}
	}
	return nil
}

// pkgMatches reports whether an import path matches a configured list of
// base names or full import paths (the convention detcheck/nanflow use).
func pkgMatches(list []string, importPath string) bool {
	base := importPath[strings.LastIndex(importPath, "/")+1:]
	for _, p := range list {
		if p == base || p == importPath {
			return true
		}
	}
	return false
}
