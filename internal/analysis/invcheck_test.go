package analysis

import (
	"strings"
	"testing"
)

func TestInvcheckFixture(t *testing.T) {
	checkFixture(t, Invcheck, "invcheck/pdn")
}

// TestInvcheckScope proves packages with no configured entry points are
// ignored entirely.
func TestInvcheckScope(t *testing.T) {
	pkg := loadFixture(t, "invcheck/pdn")
	cfg := DefaultConfig()
	cfg.Invcheck.Entrypoints = map[string][]string{"somethingelse": {"Run"}}
	if diags := Run([]*Package{pkg}, []*Analyzer{Invcheck}, cfg); len(diags) != 0 {
		t.Errorf("unconfigured package still produced %d diagnostics, e.g. %s", len(diags), diags[0])
	}
}

// TestInvcheckFullPathKey proves a full import path key overrides the base
// name: configuring only an unrelated entry point for the fixture's import
// path silences the SteadyNoise finding.
func TestInvcheckFullPathKey(t *testing.T) {
	pkg := loadFixture(t, "invcheck/pdn")
	cfg := DefaultConfig()
	cfg.Invcheck.Entrypoints[pkg.ImportPath] = []string{"EffectiveResistance"}
	diags := Run([]*Package{pkg}, []*Analyzer{Invcheck}, cfg)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (EffectiveResistance unhooked): %v", len(diags), diags)
	}
	if want := "EffectiveResistance"; !strings.Contains(diags[0].Message, want) {
		t.Errorf("diagnostic %q does not mention %s", diags[0].Message, want)
	}
}
