package analysis

// syncutil.go — shared machinery for the tgsync pass family (lockorder,
// unlockpath, blockheld, golife). The four passes police the
// synchronization-lifecycle contract docs/ROBUSTNESS.md §"Locking"
// documents for the service layer: locks are acquired in one global
// order, every acquisition is released on every path, nothing blocks
// while a lock is held, and every goroutine/timer has a teardown path.
//
// This file contributes four ingredients:
//
//   - lock identity: a Lock/Unlock/RLock/RUnlock call resolved to the
//     *lock class* it operates on. A mutex struct field is keyed by the
//     owning named type ("pkg.(Job).mu"), so every instance of the type
//     shares one node in the lock graph; package-level mutexes are keyed
//     by the variable, locals by enclosing function + name.
//
//   - an abstract interpreter over function bodies that threads a
//     held-lock set through Go's structured control flow (AST-directed
//     rather than CFG-directed, because the CFG decomposes select
//     statements and the blockheld pass needs to see them whole). Loop
//     bodies are iterated to a fixpoint silently and visited once for
//     emission, so a lock carried around a loop back-edge is observed
//     without duplicate reports.
//
//   - SCC-fixpoint summaries on the tgflow call graph: which foreign
//     locks a function acquires (and which caller-held locks it is
//     guaranteed to release first), whether a function may block, and
//     whether a function contains a teardown construct.
//
//   - the //sync: annotation grammar for audited exceptions:
//
//       //sync:ordered <reason>      nested same-class acquisition is
//                                    hierarchical, not cyclic (lockorder)
//       //sync:balanced <reason>     lock ownership crosses the function
//                                    boundary by contract (unlockpath,
//                                    lockorder edge suppression)
//       //sync:nonblocking <reason>  the flagged op cannot block here
//                                    (blockheld)
//       //sync:owned <reason>        lifecycle/teardown is managed
//                                    elsewhere (golife)
//
//     A directive covers its own line and the line below, the reason is
//     mandatory, and malformed directives are findings (reported once
//     per package by lockorder, the family head) — mirroring //par: and
//     //perf:.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// ---------------------------------------------------------------------------
// //sync: annotations

const syncAnnPrefix = "//sync:"

var syncAnnKinds = map[string]bool{
	"ordered":     true,
	"balanced":    true,
	"nonblocking": true,
	"owned":       true,
}

// buildSyncAnns scans the files for //sync: directives. Malformed ones
// come back as diagnostics attributed to the given pass; lockorder
// reports them so they surface exactly once per package.
func buildSyncAnns(fset *token.FileSet, files []*ast.File, reportPass string) (parAnnIndex, []Diagnostic) {
	return buildAnnIndex(fset, files, syncAnnPrefix, syncAnnKinds,
		"ordered, balanced, nonblocking or owned", reportPass)
}

// syncAnnCache lazily builds the program-wide annotation index: an edge
// suppressed with //sync:ordered in package B must stay suppressed when
// the lock graph is assembled for package A's report.
type syncAnnState struct {
	once sync.Once
	idx  parAnnIndex
}

var syncAnnCache sync.Map // *Program → *syncAnnState

// syncAnns returns the //sync: index over every package of the program.
func syncAnns(prog *Program) parAnnIndex {
	v, _ := syncAnnCache.LoadOrStore(prog, &syncAnnState{})
	st := v.(*syncAnnState)
	st.once.Do(func() {
		st.idx = make(parAnnIndex)
		for _, pkg := range prog.Pkgs {
			idx, _ := buildSyncAnns(pkg.Fset, pkg.Files, "")
			for file, byLine := range idx {
				st.idx[file] = byLine
			}
		}
	})
	return st.idx
}

// ---------------------------------------------------------------------------
// Lock identity

type lockOp int

const (
	opLock lockOp = iota
	opUnlock
	opRLock
	opRUnlock
)

// acquires/releases report which side of the pairing an op is on.
func (op lockOp) acquires() bool { return op == opLock || op == opRLock }

// read reports whether the op belongs to the shared (RLock/RUnlock) mode.
func (op lockOp) read() bool { return op == opRLock || op == opRUnlock }

// resolveLockOp recognizes a call to sync.Mutex/sync.RWMutex
// Lock/Unlock/RLock/RUnlock (including promoted embedded forms) and
// returns the lock class it operates on. TryLock/TryRLock are ignored:
// their held-ness is branch-dependent and the repo does not use them.
func resolveLockOp(pkg *Package, encl string, call *ast.CallExpr) (class string, op lockOp, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", 0, false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock":
		op = opLock
	case "Unlock":
		op = opUnlock
	case "RLock":
		op = opRLock
	case "RUnlock":
		op = opRUnlock
	default:
		return "", 0, false
	}
	return lockClassOf(pkg, encl, ast.Unparen(sel.X)), op, true
}

// lockClassOf names the lock a receiver expression denotes. Struct
// fields are keyed by the field's owning named type so every instance
// shares a class; package-level variables by package + name; locals by
// package + enclosing function + name. Anything else falls back to the
// expression's spelling (still a stable per-package key).
func lockClassOf(pkg *Package, encl string, x ast.Expr) string {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		t := typeOf(pkg.Info, x.X)
		if p, isPtr := derefAll(t).(*types.Pointer); isPtr {
			t = p.Elem()
		} else {
			t = derefAll(t)
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj() != nil {
			path := pkg.ImportPath
			if named.Obj().Pkg() != nil {
				path = named.Obj().Pkg().Path()
			}
			return path + ".(" + named.Obj().Name() + ")." + x.Sel.Name
		}
		return pkg.ImportPath + "." + types.ExprString(x)
	case *ast.Ident:
		if v, isVar := pkg.Info.ObjectOf(x).(*types.Var); isVar && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
		return pkg.ImportPath + "." + encl + "." + x.Name
	default:
		return pkg.ImportPath + "." + types.ExprString(x)
	}
}

// derefAll unwraps pointers down to the pointed-to type (one level is
// all Go produces for selector bases, but be safe).
func derefAll(t types.Type) types.Type {
	for t != nil {
		p, isPtr := t.(*types.Pointer)
		if !isPtr {
			return t
		}
		t = p.Elem()
	}
	return t
}

// displayClass trims the import-path directory off a lock class for
// messages: "thermogater/internal/serve.(Job).mu" → "serve.(Job).mu".
func displayClass(class string) string {
	if i := strings.LastIndex(class, "/"); i >= 0 {
		return class[i+1:]
	}
	return class
}

// ---------------------------------------------------------------------------
// Analysis units

// syncUnit is one body the tgsync passes analyze independently: a
// declared function/method, or a function literal (goroutine body,
// deferred closure, stored worker). Literals get a synthesized FuncDecl
// wrapper so BuildCFG and the walker treat both uniformly.
type syncUnit struct {
	name string        // enclosing declaration's name (local lock classes, messages)
	decl *ast.FuncDecl // the declaration, or a wrapper around lit.Body
	lit  *ast.FuncLit  // non-nil for literal units
}

// syncUnits enumerates every analysis unit in the package, outer bodies
// first, literals in source order.
func syncUnits(pkg *Package) []*syncUnit {
	var units []*syncUnit
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				units = append(units, &syncUnit{name: d.Name.Name, decl: d})
				units = append(units, litUnits(d.Body, d.Name.Name)...)
			case *ast.GenDecl:
				// Package-level `var handler = func() {...}` initializers.
				units = append(units, litUnits(d, "init")...)
			}
		}
	}
	return units
}

// litUnits collects every function literal under root (including nested
// ones) as its own unit.
func litUnits(root ast.Node, encl string) []*syncUnit {
	var units []*syncUnit
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, isLit := n.(*ast.FuncLit); isLit {
			units = append(units, &syncUnit{
				name: encl,
				decl: &ast.FuncDecl{Name: ast.NewIdent(encl), Body: lit.Body},
				lit:  lit,
			})
		}
		return true
	})
	return units
}

// ---------------------------------------------------------------------------
// Held-lock abstract interpretation

// heldInfo records one held lock: where it was acquired and in which
// mode.
type heldInfo struct {
	pos token.Pos
	op  lockOp
}

// heldState is the interpreter's lattice value at a program point:
//
//   - held is a MAY set (union at joins, keeping the earliest site):
//     locks that can be held here on some path. Lock-graph edges and
//     blocking-while-locked reports come from it.
//
//   - released is a MUST set (intersection at joins): foreign locks —
//     locks this unit never acquired itself — that an explicit Unlock
//     has released on every path. It models the documented handoff
//     pattern "callee releases the caller's lock before taking another"
//     (serve.classifyFailure), which would otherwise complete a
//     spurious ABBA cycle through the callee summary.
//
//   - dead marks a state below a return: joins ignore it, so a branch
//     that unlocks and returns does not pollute the fallthrough state.
type heldState struct {
	held     map[string]heldInfo
	released map[string]bool
	dead     bool
}

func newHeldState() *heldState {
	return &heldState{held: map[string]heldInfo{}, released: map[string]bool{}}
}

func (st *heldState) clone() *heldState {
	c := &heldState{
		held:     make(map[string]heldInfo, len(st.held)),
		released: make(map[string]bool, len(st.released)),
		dead:     st.dead,
	}
	for k, v := range st.held {
		c.held[k] = v
	}
	for k := range st.released {
		c.released[k] = true
	}
	return c
}

// join merges two branch states in place (a ⊔ b → a).
func (a *heldState) join(b *heldState) {
	if b == nil || b.dead {
		return
	}
	if a.dead {
		a.held, a.released, a.dead = b.held, b.released, false
		return
	}
	for k, v := range b.held {
		if cur, have := a.held[k]; !have || v.pos < cur.pos {
			a.held[k] = v
		}
	}
	for k := range a.released {
		if !b.released[k] {
			delete(a.released, k)
		}
	}
}

func (a *heldState) equal(b *heldState) bool {
	if a.dead != b.dead || len(a.held) != len(b.held) || len(a.released) != len(b.released) {
		return false
	}
	for k, v := range a.held {
		if bv, have := b.held[k]; !have || bv.pos != v.pos {
			return false
		}
	}
	for k := range a.released {
		if !b.released[k] {
			return false
		}
	}
	return true
}

// syncVisitor receives the interpreter's events. Every callback sees the
// state BEFORE the event's own effect is applied. Callbacks are only
// invoked on the emission pass (once per syntactic site), never during
// loop fixpoint probes.
type syncVisitor struct {
	acquire  func(class string, op lockOp, call *ast.CallExpr, st *heldState)
	release  func(class string, op lockOp, call *ast.CallExpr, st *heldState)
	call     func(call *ast.CallExpr, st *heldState)
	send     func(pos token.Pos, st *heldState)
	recv     func(pos token.Pos, st *heldState)
	selectAt func(sel *ast.SelectStmt, hasDefault bool, st *heldState)
}

// heldWalker threads a heldState through one unit's body.
type heldWalker struct {
	pkg  *Package
	encl string
	vis  *syncVisitor

	emit   bool // false during loop fixpoint probes
	inComm bool // suppress send/recv events for a select's comm clauses
}

// walkHeld runs the interpreter over a unit with an empty entry state
// and returns the exit state (the join over all return points is not
// tracked; callers needing per-return facts use the CFG passes).
func walkHeld(pkg *Package, u *syncUnit, vis *syncVisitor) *heldState {
	w := &heldWalker{pkg: pkg, encl: u.name, vis: vis, emit: true}
	st := newHeldState()
	w.stmtList(st, u.decl.Body.List)
	return st
}

func (w *heldWalker) stmtList(st *heldState, list []ast.Stmt) {
	for _, s := range list {
		w.stmt(st, s)
	}
}

func (w *heldWalker) stmt(st *heldState, s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(st, s.X)
	case *ast.SendStmt:
		w.expr(st, s.Chan)
		w.expr(st, s.Value)
		if w.emit && !w.inComm && w.vis.send != nil {
			w.vis.send(s.Arrow, st)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(st, e)
		}
		for _, e := range s.Lhs {
			w.expr(st, e)
		}
	case *ast.DeclStmt:
		if gd, isGen := s.Decl.(*ast.GenDecl); isGen {
			for _, spec := range gd.Specs {
				if vs, isVal := spec.(*ast.ValueSpec); isVal {
					for _, e := range vs.Values {
						w.expr(st, e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(st, e)
		}
		st.dead = true
	case *ast.IncDecStmt:
		w.expr(st, s.X)
	case *ast.GoStmt:
		// The spawned body is a separate unit; argument expressions are
		// evaluated here.
		for _, a := range s.Call.Args {
			w.expr(st, a)
		}
		if _, isLit := ast.Unparen(s.Call.Fun).(*ast.FuncLit); !isLit {
			w.expr(st, s.Call.Fun)
		}
	case *ast.DeferStmt:
		// A deferred matching Unlock leaves the lock held for the rest of
		// the body — exactly what the walker should model — so a deferred
		// lock op has no effect on the state. Other deferred calls run
		// after every tracked region and are ignored.
		for _, a := range s.Call.Args {
			w.expr(st, a)
		}
	case *ast.BlockStmt:
		w.stmtList(st, s.List)
	case *ast.IfStmt:
		w.stmt(st, s.Init)
		w.expr(st, s.Cond)
		then := st.clone()
		w.stmtList(then, s.Body.List)
		els := st.clone()
		w.stmt(els, s.Else)
		*st = *then
		st.join(els)
	case *ast.SwitchStmt:
		w.stmt(st, s.Init)
		w.expr(st, s.Tag)
		w.caseClauses(st, s.Body.List, func(cc *ast.CaseClause, br *heldState) {
			for _, e := range cc.List {
				w.expr(br, e)
			}
		})
	case *ast.TypeSwitchStmt:
		w.stmt(st, s.Init)
		w.stmt(st, s.Assign)
		w.caseClauses(st, s.Body.List, nil)
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cc, isComm := cl.(*ast.CommClause); isComm && cc.Comm == nil {
				hasDefault = true
			}
		}
		if w.emit && w.vis.selectAt != nil {
			w.vis.selectAt(s, hasDefault, st)
		}
		var out *heldState
		for _, cl := range s.Body.List {
			cc, isComm := cl.(*ast.CommClause)
			if !isComm {
				continue
			}
			br := st.clone()
			if cc.Comm != nil {
				w.inComm = true
				w.stmt(br, cc.Comm)
				w.inComm = false
			}
			w.stmtList(br, cc.Body)
			if out == nil {
				out = br
			} else {
				out.join(br)
			}
		}
		if out != nil {
			*st = *out
		}
	case *ast.ForStmt:
		w.stmt(st, s.Init)
		w.loop(st, func(body *heldState) {
			w.expr(body, s.Cond)
			w.stmtList(body, s.Body.List)
			w.stmt(body, s.Post)
		})
	case *ast.RangeStmt:
		w.expr(st, s.X)
		w.loop(st, func(body *heldState) {
			w.stmtList(body, s.Body.List)
		})
	case *ast.LabeledStmt:
		w.stmt(st, s.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto: approximated as fallthrough — the loop
		// fixpoint absorbs their effects into the loop-invariant state.
	default:
		// EmptyStmt etc.
	}
}

// caseClauses joins the branch states of a switch body; a missing
// default contributes the fallthrough state.
func (w *heldWalker) caseClauses(st *heldState, clauses []ast.Stmt, pre func(*ast.CaseClause, *heldState)) {
	hasDefault := false
	var out *heldState
	for _, cl := range clauses {
		cc, isCase := cl.(*ast.CaseClause)
		if !isCase {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		br := st.clone()
		if pre != nil {
			pre(cc, br)
		}
		w.stmtList(br, cc.Body)
		if out == nil {
			out = br
		} else {
			out.join(br)
		}
	}
	if out == nil {
		return
	}
	if !hasDefault {
		out.join(st)
	}
	*st = *out
}

// loop iterates body to a fixpoint with emission off, then runs one
// visible pass from the converged entry state. The loop-invariant entry
// is also the exit approximation (a conditional loop may run zero
// times; a `for {}` only exits through break, whose state the fixpoint
// already folded in).
func (w *heldWalker) loop(st *heldState, body func(*heldState)) {
	entry := st.clone()
	saved := w.emit
	w.emit = false
	for i := 0; i < 8; i++ {
		probe := entry.clone()
		body(probe)
		next := entry.clone()
		next.join(probe)
		if next.equal(entry) {
			break
		}
		entry = next
	}
	w.emit = saved
	if w.emit {
		final := entry.clone()
		body(final)
	}
	*st = *entry
}

// expr walks an expression for lock operations, calls, and channel
// receives. Nested function literals are separate units and skipped.
func (w *heldWalker) expr(st *heldState, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.callExpr(st, n)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && w.emit && !w.inComm && w.vis.recv != nil {
				w.vis.recv(n.OpPos, st)
			}
		}
		return true
	})
}

func (w *heldWalker) callExpr(st *heldState, call *ast.CallExpr) {
	if class, op, isLockOp := resolveLockOp(w.pkg, w.encl, call); isLockOp {
		if op.acquires() {
			if w.emit && w.vis.acquire != nil {
				w.vis.acquire(class, op, call, st)
			}
			st.held[class] = heldInfo{pos: call.Pos(), op: op}
			delete(st.released, class)
		} else {
			if w.emit && w.vis.release != nil {
				w.vis.release(class, op, call, st)
			}
			if _, have := st.held[class]; have {
				delete(st.held, class)
			} else {
				// Releasing a lock this unit never acquired: the caller
				// handed it over. Record the guaranteed release so callee
				// summaries do not conjure a phantom ordering edge.
				st.released[class] = true
			}
		}
		return
	}
	if w.emit && w.vis.call != nil {
		w.vis.call(call, st)
	}
}

// ---------------------------------------------------------------------------
// Lock-acquisition summaries (lockorder)

// lockAcq describes one lock class a function may acquire, directly or
// transitively: where (in the summarized function), through which chain,
// and which caller-held classes are guaranteed released before the
// acquisition on every path.
type lockAcq struct {
	where    string          // formatted site in the summarized function
	via      string          // " via <chain>" suffix for transitive acquisitions
	released map[string]bool // MUST-released foreign classes before this acquisition
}

// lockSummary maps acquired lock class → acquisition record.
type lockSummary map[string]*lockAcq

// LockSummaries computes (once) the per-function lock-acquisition table,
// keyed by FuncKey, bottom-up over the call-graph SCCs.
func (p *Program) LockSummaries() map[string]lockSummary {
	p.lockOnce.Do(func() {
		p.lockSums = make(map[string]lockSummary, len(p.Funcs))
		for key := range p.Funcs {
			p.lockSums[key] = lockSummary{}
		}
		forEachSCCFixpoint(p, func(fn *FlowFunc) bool {
			return updateLockSummary(p, fn)
		})
	})
	return p.lockSums
}

// mergeAcq folds one acquisition fact into a summary. The acquisition
// set only grows and the released sets only shrink, so the SCC fixpoint
// terminates.
func mergeAcq(sum lockSummary, class, where, via string, released map[string]bool) bool {
	cur := sum[class]
	if cur == nil {
		rel := make(map[string]bool, len(released))
		for k := range released {
			rel[k] = true
		}
		sum[class] = &lockAcq{where: where, via: via, released: rel}
		return true
	}
	changed := false
	for k := range cur.released {
		if !released[k] {
			delete(cur.released, k)
			changed = true
		}
	}
	return changed
}

func updateLockSummary(p *Program, fn *FlowFunc) bool {
	sum := p.lockSums[fn.Key]
	changed := false
	u := &syncUnit{name: fn.Decl.Name.Name, decl: fn.Decl}
	walkHeld(fn.Pkg, u, &syncVisitor{
		acquire: func(class string, op lockOp, call *ast.CallExpr, st *heldState) {
			if mergeAcq(sum, class, shortPos(fn.Pkg.Fset.Position(call.Pos())), "", st.released) {
				changed = true
			}
		},
		call: func(call *ast.CallExpr, st *heldState) {
			callee := calleeFunc(fn.Pkg, call)
			if callee == nil {
				return
			}
			cs := p.lockSums[FuncKey(callee)]
			if len(cs) == 0 {
				return
			}
			where := shortPos(fn.Pkg.Fset.Position(call.Pos()))
			for class, acq := range cs {
				rel := make(map[string]bool, len(st.released)+len(acq.released))
				for k := range st.released {
					rel[k] = true
				}
				for k := range acq.released {
					rel[k] = true
				}
				via := " via " + displayClass(FuncKey(callee))
				if acq.via != "" {
					via = acq.via
				}
				if mergeAcq(sum, class, where, via, rel) {
					changed = true
				}
			}
		},
	})
	return changed
}

// ---------------------------------------------------------------------------
// May-block summaries (blockheld)

// blockFact names the first blocking operation found in a function
// (directly or through a callee chain), with a pre-formatted position —
// token.Pos is not portable across packages' file sets.
type blockFact struct {
	what  string
	where string
}

// BlockSummaries computes (once) which functions may block, keyed by
// FuncKey. External callees are classified by the Tgsync.Blocking
// import-path prefixes plus the fixed list in blockingExternal.
func (p *Program) BlockSummaries() map[string]*blockFact {
	p.blockOnce.Do(func() {
		p.blockSums = make(map[string]*blockFact, len(p.Funcs))
		forEachSCCFixpoint(p, func(fn *FlowFunc) bool {
			if p.blockSums[fn.Key] != nil {
				return false // already known to block; facts never retract
			}
			fact := findBlockFact(p, fn)
			if fact == nil {
				return false
			}
			p.blockSums[fn.Key] = fact
			return true
		})
	})
	return p.blockSums
}

// blockingExternal classifies well-known external callees that block
// regardless of import-path configuration.
func blockingExternal(key string) string {
	switch key {
	case "time.Sleep", "sync.(WaitGroup).Wait", "sync.(Cond).Wait", "sync.(Once).Do":
		return "calls " + key
	}
	return ""
}

func findBlockFact(p *Program, fn *FlowFunc) *blockFact {
	var fact *blockFact
	record := func(what string, pos token.Pos) {
		if fact == nil {
			fact = &blockFact{what: what, where: shortPos(fn.Pkg.Fset.Position(pos))}
		}
	}
	u := &syncUnit{name: fn.Decl.Name.Name, decl: fn.Decl}
	walkHeld(fn.Pkg, u, &syncVisitor{
		send: func(pos token.Pos, st *heldState) { record("channel send", pos) },
		recv: func(pos token.Pos, st *heldState) { record("channel receive", pos) },
		selectAt: func(sel *ast.SelectStmt, hasDefault bool, st *heldState) {
			if !hasDefault {
				record("select without default", sel.Pos())
			}
		},
		call: func(call *ast.CallExpr, st *heldState) {
			callee := calleeFunc(fn.Pkg, call)
			if callee == nil {
				return
			}
			key := FuncKey(callee)
			if inner := p.blockSums[key]; inner != nil {
				record("calls "+displayClass(key)+" ("+inner.what+" at "+inner.where+")", call.Pos())
				return
			}
			if what := blockingExternal(key); what != "" {
				record(what, call.Pos())
				return
			}
			if callee.Pkg() != nil && p.Funcs[key] == nil &&
				allowedBy(p.Config.Tgsync.Blocking, callee.Pkg().Path()) {
				record("calls "+key, call.Pos())
			}
		},
	})
	return fact
}

// ---------------------------------------------------------------------------
// Teardown summaries (golife)

// TeardownSummaries computes (once) which functions contain a teardown
// construct — a receive/select on a stop-named channel or ctx.Done(), or
// a range over a channel — directly or through an internal callee. A
// forever-loop goroutine body whose loop reaches one of these has a
// shutdown path.
func (p *Program) TeardownSummaries() map[string]bool {
	p.tearOnce.Do(func() {
		p.tearSums = make(map[string]bool, len(p.Funcs))
		forEachSCCFixpoint(p, func(fn *FlowFunc) bool {
			if p.tearSums[fn.Key] {
				return false
			}
			if hasTeardown(p, fn.Pkg, fn.Decl.Body, p.tearSums) {
				p.tearSums[fn.Key] = true
				return true
			}
			return false
		})
	})
	return p.tearSums
}

// hasTeardown scans one body (nested literals excluded: they run on
// their own goroutines) for a teardown construct. sums may be nil for a
// purely syntactic scan.
func hasTeardown(p *Program, pkg *Package, body ast.Node, sums map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isTeardownChan(p.Config, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if t := typeOf(pkg.Info, n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if sums == nil {
				return true
			}
			if callee := calleeFunc(pkg, n); callee != nil && sums[FuncKey(callee)] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isTeardownChan recognizes stop/shutdown channel expressions: any
// *.Done() call (context.Context, serve.Job), or a channel whose
// terminal name contains a configured stop fragment.
func isTeardownChan(cfg *Config, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, isCall := e.(*ast.CallExpr); isCall {
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Done" {
			return true
		}
		return false
	}
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	name = strings.ToLower(name)
	for _, frag := range cfg.Tgsync.StopNames {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Post-dominance (unlockpath, golife)

// callPostdominates reports whether every path from stmt (a statement of
// cfg) to the exit encounters a statement for which match returns true,
// or a matching call appears later in stmt's own block. It is the
// cacheflush flush-postdominance check generalized to an arbitrary
// statement predicate.
func callPostdominates(cfg *CFG, stmt ast.Stmt, match func(ast.Stmt) bool) bool {
	blockOf, idxOf := -1, -1
	for _, b := range cfg.Blocks {
		for i, s := range b.Stmts {
			if s == stmt {
				blockOf, idxOf = b.Index, i
			}
		}
	}
	if blockOf == -1 {
		return false
	}

	must := make([]bool, len(cfg.Blocks))
	has := make([]bool, len(cfg.Blocks))
	for i, b := range cfg.Blocks {
		must[i] = true
		for _, s := range b.Stmts {
			if match(s) {
				has[i] = true
			}
		}
	}
	must[cfg.Exit().Index] = false
	for changed := true; changed; {
		changed = false
		for i, b := range cfg.Blocks {
			if has[i] || !must[i] {
				continue
			}
			ok := len(b.Succs) > 0 && b.Index != cfg.Exit().Index
			for _, s := range b.Succs {
				if !must[s.Index] {
					ok = false
				}
			}
			if !ok {
				must[i] = false
				changed = true
			}
		}
	}

	b := cfg.Blocks[blockOf]
	for i := idxOf + 1; i < len(b.Stmts); i++ {
		if match(b.Stmts[i]) {
			return true
		}
	}
	if len(b.Succs) == 0 {
		return false
	}
	for _, s := range b.Succs {
		if !must[s.Index] {
			return false
		}
	}
	return true
}

// stmtContains reports whether the statement contains a node for which
// pred holds, not descending into nested function literals.
func stmtContains(s ast.Stmt, pred func(ast.Node) bool) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n != nil && pred(n) {
			found = true
		}
		return !found
	})
	return found
}

// enclosingStmt finds the statement of the CFG that lexically contains
// pos, preferring the innermost (smallest) match.
func enclosingStmt(cfg *CFG, pos token.Pos) ast.Stmt {
	var best ast.Stmt
	for _, b := range cfg.Blocks {
		for _, s := range b.Stmts {
			if s.Pos() <= pos && pos < s.End() {
				if best == nil || (s.Pos() >= best.Pos() && s.End() <= best.End()) {
					best = s
				}
			}
		}
	}
	return best
}

// posKey orders formatted positions lexicographically by (file, line,
// col) for deterministic anchoring; file names compare as strings.
func posKey(p token.Position) string {
	return filepath.Base(p.Filename) + ":" +
		pad(p.Line) + ":" + pad(p.Column)
}

func pad(n int) string {
	s := strconv.Itoa(n)
	for len(s) < 8 {
		s = "0" + s
	}
	return s
}
