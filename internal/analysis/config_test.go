package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadConfigOverlaysDefaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ".tglint.json")
	if err := os.WriteFile(path, []byte(`{
		"detcheck": {"allow": ["example.com/other"]},
		"floatcheck": {"helpers": ["myEq"]}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.floatcheckHelper("myEq") || cfg.floatcheckHelper("approxEqual") {
		t.Errorf("helpers not overridden: %v", cfg.Floatcheck.Helpers)
	}
	if cfg.detcheckApplies("example.com/other/thing") {
		t.Error("overridden allowlist not honoured")
	}
	// Untouched sections keep their defaults.
	if !cfg.detcheckApplies("thermogater/internal/thermal") {
		t.Error("default detcheck package list lost in overlay")
	}
	if !cfg.errsinkMethod("Step") {
		t.Error("default errsink methods lost in overlay")
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ".tglint.json")
	if err := os.WriteFile(path, []byte(`{"typocheck": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(path); err == nil {
		t.Error("unknown top-level key silently accepted")
	}
}

func TestFindConfigWalksUp(t *testing.T) {
	root := t.TempDir()
	nested := filepath.Join(root, "a", "b")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(root, ".tglint.json")
	if err := os.WriteFile(want, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := FindConfig(nested); got != want {
		t.Errorf("FindConfig(%s) = %q, want %q", nested, got, want)
	}
	if got := FindConfig(filepath.Join(os.TempDir(), "definitely-missing-xyz")); got != "" {
		// A stray .tglint.json above the temp dir would break this
		// expectation; tolerate only the empty result or a real file.
		if _, err := os.Stat(got); err != nil {
			t.Errorf("FindConfig returned nonexistent path %q", got)
		}
	}
}

func TestDetcheckScoping(t *testing.T) {
	cfg := DefaultConfig()
	if !cfg.detcheckApplies("thermogater/internal/sim") {
		t.Error("sim should be policed")
	}
	if cfg.detcheckApplies("thermogater/internal/telemetry") {
		t.Error("telemetry is allowlisted")
	}
	if cfg.detcheckApplies("thermogater/internal/report") {
		t.Error("report is not a simulation package")
	}
}
