package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroutinecheck flags unsynchronized writes to captured state inside
// `go func` closures — the data-race shape the sweep worker in
// internal/experiments must guard with its mutex. Inside a goroutine
// closure, a write to a variable declared outside it is flagged when no
// sync Lock call precedes it in the closure body:
//
//   - map writes (m[k] = v): concurrent map access faults at runtime,
//   - appends to a captured slice (s = append(s, ...)): racing appends
//     lose elements and corrupt the header,
//   - plain assignment to a captured variable (firstErr = err): a classic
//     last-write race.
//
// Per-index writes to captured slices (results[i] = ...) are the idiomatic
// fan-out pattern — each goroutine owns its index — and stay silent, as do
// writes after mu.Lock()/RLock() on any sync type (positional, not
// path-sensitive: the pass trusts a Lock anywhere earlier in the closure).
var Goroutinecheck = &Analyzer{
	Name: "goroutinecheck",
	Doc:  "flags unsynchronized writes to captured slices, maps and scalars inside go-routine closures",
	Run:  runGoroutinecheck,
}

func runGoroutinecheck(p *Pass) {
	if !p.Config.goroutinecheckApplies(p.ImportPath) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				checkGoClosure(p, lit)
			}
			return true
		})
	}
}

func checkGoClosure(p *Pass, lit *ast.FuncLit) {
	locks := lockPositions(p, lit)
	lockedAt := func(pos token.Pos) bool {
		for _, lp := range locks {
			if lp < pos {
				return true
			}
		}
		return false
	}
	captured := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End())
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if a.Tok == token.DEFINE {
			return true // := declares inside the closure
		}
		for i, lhs := range a.Lhs {
			lhs = ast.Unparen(lhs)
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				base := p.TypeOf(ix.X)
				if base == nil {
					continue
				}
				if _, isMap := base.Underlying().(*types.Map); !isMap {
					continue // per-index slice writes: each goroutine owns its slot
				}
				root := rootObj(p, ix.X)
				if captured(root) && !lockedAt(a.Pos()) {
					p.Reportf(a.Pos(), "unsynchronized write to captured map %q inside go func: concurrent map writes fault; guard with a mutex", root.Name())
				}
				continue
			}
			root := rootObj(p, lhs)
			if !captured(root) || lockedAt(a.Pos()) {
				continue
			}
			var rhs ast.Expr
			if len(a.Lhs) == len(a.Rhs) {
				rhs = a.Rhs[i]
			}
			if isAppendOf(p, rhs, root) {
				p.Reportf(a.Pos(), "unsynchronized append to captured slice %q inside go func: racing appends lose elements; guard with a mutex or give each goroutine its own index", root.Name())
			} else {
				p.Reportf(a.Pos(), "unsynchronized write to captured variable %q inside go func: a last-write race; guard with a mutex or report through a channel", root.Name())
			}
		}
		return true
	})
}

// lockPositions collects the positions of Lock/RLock calls on sync types
// within the closure body.
func lockPositions(p *Pass, lit *ast.FuncLit) []token.Pos {
	var out []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if fn, ok := p.Info.ObjectOf(sel.Sel).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}
