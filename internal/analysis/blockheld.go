package analysis

// blockheld — nothing blocks while a lock is held (tgsync). Scoped to
// the concurrency-infrastructure packages (Tgsync.Packages: serve, sim,
// par, experiments), where a blocked lock holder stalls every other
// goroutine contending for the same lock — the failure mode the tgserve
// supervisor's "never block under s.mu" discipline exists to prevent.
//
// Blocking operations, in held-lock regions found by the abstract
// interpreter in syncutil.go:
//
//   - channel send/receive outside a select;
//   - select without a default clause;
//   - sync.Cond.Wait on a condition bound to a DIFFERENT lock than the
//     (sole) one held — waiting on one's own lock is the API contract,
//     waiting with an extra lock held deadlocks the wakers;
//   - time.Sleep, WaitGroup.Wait, Once.Do;
//   - calls into packages on the Tgsync.Blocking prefix list (os, net,
//     io, bufio — I/O under a hot lock);
//   - calls to internal functions that may block, interprocedurally via
//     the SCC-fixpoint may-block summaries.
//
// Indirect calls (function values, interface methods) are not edges in
// the call graph and are skipped — the documented tgflow limitation.
// //sync:nonblocking <reason> exempts a site.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var Blockheld = &Analyzer{
	Name:         "blockheld",
	Doc:          "no channel ops, selects, sleeps, or I/O while a lock is held (serve/sim/par/experiments)",
	Run:          runBlockheld,
	NeedsProgram: true,
}

func runBlockheld(pass *Pass) {
	cfg := pass.Config
	if !pkgMatches(cfg.Tgsync.Packages, pass.ImportPath) || allowedBy(cfg.Tgsync.Allow, pass.ImportPath) {
		return
	}
	prog := pass.Program
	pkg := prog.pkgByPath(pass.ImportPath)
	if pkg == nil {
		return
	}
	sums := prog.BlockSummaries()
	anns := syncAnns(prog)

	report := func(pos token.Pos, what string, st *heldState) {
		posn := pass.Fset.Position(pos)
		if anns.covered("nonblocking", posn) {
			return
		}
		pass.Reportf(pos, "%s while holding %s; release first, or annotate //sync:nonblocking with why this cannot block",
			what, heldDesc(pkg, st))
	}

	for _, u := range syncUnits(pkg) {
		u := u
		walkHeld(pkg, u, &syncVisitor{
			send: func(pos token.Pos, st *heldState) {
				if len(st.held) > 0 {
					report(pos, "channel send", st)
				}
			},
			recv: func(pos token.Pos, st *heldState) {
				if len(st.held) > 0 {
					report(pos, "channel receive", st)
				}
			},
			selectAt: func(sel *ast.SelectStmt, hasDefault bool, st *heldState) {
				if !hasDefault && len(st.held) > 0 {
					report(sel.Pos(), "select without default", st)
				}
			},
			call: func(call *ast.CallExpr, st *heldState) {
				if len(st.held) == 0 {
					return
				}
				callee := calleeFunc(pkg, call)
				if callee == nil {
					return
				}
				key := FuncKey(callee)
				if key == "sync.(Cond).Wait" {
					checkCondWait(pass, pkg, anns, u, call, st)
					return
				}
				if inner := sums[key]; inner != nil {
					report(call.Pos(),
						"call to "+displayClass(key)+" which may block ("+inner.what+" at "+inner.where+")", st)
					return
				}
				if what := blockingExternal(key); what != "" {
					report(call.Pos(), what, st)
					return
				}
				if callee.Pkg() != nil && prog.Funcs[key] == nil &&
					allowedBy(cfg.Tgsync.Blocking, callee.Pkg().Path()) {
					report(call.Pos(), "blocking call to "+key, st)
				}
			},
		})
	}
}

// checkCondWait flags cond.Wait when locks other than the condition's
// own are held: Wait only releases its bound lock, so wakers blocked on
// the extras never run. An unresolvable condition binding is treated
// conservatively when any lock is held.
func checkCondWait(pass *Pass, pkg *Package, anns parAnnIndex, u *syncUnit, call *ast.CallExpr, st *heldState) {
	posn := pass.Fset.Position(call.Pos())
	if anns.covered("nonblocking", posn) {
		return
	}
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	condClass := ""
	if sel != nil {
		condClass = condLockClass(pkg, u.name, sel.X)
	}
	extra := make([]string, 0, len(st.held))
	for c := range st.held {
		if c != condClass {
			extra = append(extra, c)
		}
	}
	if len(extra) == 0 {
		return
	}
	if condClass == "" {
		pass.Reportf(call.Pos(),
			"sync.Cond.Wait with %s held and an unresolvable condition binding; Wait only releases the condition's own lock",
			heldDesc(pkg, st))
		return
	}
	sort.Strings(extra)
	for i, c := range extra {
		extra[i] = displayClass(c)
	}
	pass.Reportf(call.Pos(),
		"sync.Cond.Wait releases only %s but %s is also held; the waker can never acquire it",
		displayClass(condClass), strings.Join(extra, ", "))
}

// condLockClass resolves the lock a sync.Cond was constructed over by
// finding the `X = sync.NewCond(&L)` assignment (or composite-literal
// value) that initializes the condition expression's object.
func condLockClass(pkg *Package, encl string, condExpr ast.Expr) string {
	var obj types.Object
	switch e := ast.Unparen(condExpr).(type) {
	case *ast.Ident:
		obj = pkg.Info.ObjectOf(e)
	case *ast.SelectorExpr:
		obj = pkg.Info.ObjectOf(e.Sel)
	}
	if obj == nil {
		return ""
	}
	class := ""
	fromNewCond := func(rhs ast.Expr) string {
		call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
		if !isCall || len(call.Args) != 1 {
			return ""
		}
		if fn := calleeFunc(pkg, call); fn == nil || fn.Pkg() == nil ||
			fn.Pkg().Path() != "sync" || fn.Name() != "NewCond" {
			return ""
		}
		arg := ast.Unparen(call.Args[0])
		if un, isUnary := arg.(*ast.UnaryExpr); isUnary && un.Op == token.AND {
			arg = ast.Unparen(un.X)
		}
		return lockClassOf(pkg, encl, arg)
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if class != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					var lobj types.Object
					switch l := lhs.(type) {
					case *ast.Ident:
						lobj = pkg.Info.ObjectOf(l)
					case *ast.SelectorExpr:
						lobj = pkg.Info.ObjectOf(l.Sel)
					}
					if lobj == obj {
						if c := fromNewCond(n.Rhs[i]); c != "" {
							class = c
						}
					}
				}
			case *ast.KeyValueExpr:
				if id, isIdent := n.Key.(*ast.Ident); isIdent && pkg.Info.ObjectOf(id) == obj {
					if c := fromNewCond(n.Value); c != "" {
						class = c
					}
				}
			}
			return true
		})
	}
	return class
}

// heldDesc renders a held set for messages, earliest acquisition first.
func heldDesc(pkg *Package, st *heldState) string {
	type held struct {
		class string
		posn  token.Position
	}
	hs := make([]held, 0, len(st.held))
	for c, info := range st.held {
		hs = append(hs, held{class: c, posn: pkg.Fset.Position(info.pos)})
	}
	sort.Slice(hs, func(i, j int) bool {
		if pk := posKey(hs[i].posn); pk != posKey(hs[j].posn) {
			return pk < posKey(hs[j].posn)
		}
		return hs[i].class < hs[j].class
	})
	parts := make([]string, len(hs))
	for i, h := range hs {
		parts[i] = displayClass(h.class) + " (held since " + shortPos(h.posn) + ")"
	}
	return strings.Join(parts, ", ")
}
