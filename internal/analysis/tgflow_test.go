package analysis

// Tests for the tgflow engine: golden-file checks of the CFG builder
// and call-graph indexer over testdata/src/tgflow, the bottom-up SCC
// contract, and fixture runs of the three interprocedural passes.
// Regenerate goldens with
//
//	go test ./internal/analysis -run Golden -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", name, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", name, err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch (run with -update after verifying):\n--- want ---\n%s\n--- got ---\n%s",
			name, want, got)
	}
}

func TestCFGGolden(t *testing.T) {
	pkg := loadFixture(t, "tgflow")
	prog := BuildProgram([]*Package{pkg})
	var sb strings.Builder
	for _, fn := range packageFuncs(prog, pkg) {
		sb.WriteString(fn.CFG().String())
		sb.WriteString("\n")
	}
	checkGolden(t, "tgflow_cfg.golden", sb.String())
}

func TestCallGraphGolden(t *testing.T) {
	pkg := loadFixture(t, "tgflow")
	prog := BuildProgram([]*Package{pkg})
	got := strings.Join(prog.EdgeList(), "\n") + "\n"
	checkGolden(t, "tgflow_callgraph.golden", got)
}

// TestSCCBottomUp pins the summary engine's foundational contract:
// every SCC appears after all SCCs it calls into, and the even/odd
// recursion pair lands in one component.
func TestSCCBottomUp(t *testing.T) {
	pkg := loadFixture(t, "tgflow")
	prog := BuildProgram([]*Package{pkg})

	sccIndex := map[string]int{}
	for i, scc := range prog.SCCs() {
		for _, fn := range scc {
			sccIndex[fn.Key] = i
		}
	}
	if len(sccIndex) != len(prog.Funcs) {
		t.Fatalf("SCCs cover %d functions, program has %d", len(sccIndex), len(prog.Funcs))
	}
	for caller, callees := range prog.Callees {
		for _, callee := range callees {
			ci, ok := sccIndex[callee]
			if !ok {
				continue // external callee
			}
			if ci > sccIndex[caller] {
				t.Errorf("SCC order not bottom-up: callee %s (scc %d) after caller %s (scc %d)",
					callee, ci, caller, sccIndex[caller])
			}
		}
	}

	evenIdx, okE := sccIndex["thermogater/internal/analysis/testdata/src/tgflow.even"]
	oddIdx, okO := sccIndex["thermogater/internal/analysis/testdata/src/tgflow.odd"]
	if !okE || !okO {
		t.Fatalf("even/odd not found in SCC index; keys: %v", sccIndex)
	}
	if evenIdx != oddIdx {
		t.Errorf("mutual recursion split across SCCs: even in %d, odd in %d", evenIdx, oddIdx)
	}
	if scc := prog.SCCs()[evenIdx]; len(scc) != 2 {
		t.Errorf("even/odd SCC has %d members, want 2", len(scc))
	}
}

func TestUnitflowFixture(t *testing.T)   { checkFixture(t, Unitflow, "unitflow") }
func TestNanflowFixture(t *testing.T)    { checkFixture(t, Nanflow, "nanflow/sim") }
func TestStatecoverFixture(t *testing.T) { checkFixture(t, Statecover, "statecover/ckpt") }
