package analysis

import "testing"

func TestAliascheckFixture(t *testing.T) {
	checkFixture(t, Aliascheck, "aliascheck/sim")
}

// TestAliascheckScope proves the pass ignores packages outside the
// configured list entirely.
func TestAliascheckScope(t *testing.T) {
	pkg := loadFixture(t, "aliascheck/sim")
	cfg := DefaultConfig()
	cfg.Aliascheck.Packages = []string{"somethingelse"}
	if diags := Run([]*Package{pkg}, []*Analyzer{Aliascheck}, cfg); len(diags) != 0 {
		t.Errorf("out-of-scope package still produced %d diagnostics, e.g. %s", len(diags), diags[0])
	}
}

// TestAliascheckCleanFixture proves the pass is quiet on the shared clean
// fixture (no receivers, no scratch fields).
func TestAliascheckCleanFixture(t *testing.T) {
	pkg := loadFixture(t, "clean")
	if diags := Run([]*Package{pkg}, []*Analyzer{Aliascheck}, DefaultConfig()); len(diags) != 0 {
		t.Errorf("clean fixture produced %d diagnostics, e.g. %s", len(diags), diags[0])
	}
}
