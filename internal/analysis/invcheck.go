package analysis

import (
	"go/ast"
	"go/types"
)

// invariantPath is the sanitizer package every stepping entry point must
// route through.
const invariantPath = "thermogater/internal/invariant"

// Invcheck enforces the sanitizer-coverage contract: every exported
// stepping entry point of the simulation packages (configured per package
// base name — sim.Run, thermal.Step/SteadyState, pdn.SteadyNoise/...,
// vr.NOn/PlossAt) must reach a use of the invariant package somewhere in
// its same-package call graph. Without this pass, a refactor can detach an
// entry point from its hooks and the tgsan build silently degrades to
// checking nothing — the exact failure mode sanitizers exist to prevent.
//
// Reachability is transitive over same-package calls (Run → runMeasured →
// sanitizeSubstep counts) and any reference into the invariant package —
// a Check call, Reportf, or an invariant.Enabled guard — marks a function
// as hooked.
var Invcheck = &Analyzer{
	Name: "invcheck",
	Doc:  "requires exported stepping entry points to route through the invariant sanitizer hooks",
	Run:  runInvcheck,
}

func runInvcheck(p *Pass) {
	entries := p.Config.invcheckEntrypoints(p.ImportPath)
	if len(entries) == 0 {
		return
	}

	// Build the package-local call graph: one node per declared function,
	// edges for direct same-package calls, plus a "touches invariant" bit.
	type node struct {
		decl    *ast.FuncDecl
		touches bool
		callees []types.Object
	}
	nodes := make(map[types.Object]*node)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := p.Info.ObjectOf(fn.Name)
			if obj == nil {
				continue
			}
			nd := &node{decl: fn}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				ref := p.Info.ObjectOf(id)
				if ref == nil || ref.Pkg() == nil {
					return true
				}
				switch {
				case ref.Pkg().Path() == invariantPath:
					nd.touches = true
				case ref.Pkg() == p.Pkg:
					if _, isFunc := ref.(*types.Func); isFunc {
						nd.callees = append(nd.callees, ref)
					}
				}
				return true
			})
			nodes[obj] = nd
		}
	}

	// reaches computes transitive reachability of an invariant touch.
	memo := make(map[types.Object]bool)
	var reaches func(obj types.Object, seen map[types.Object]bool) bool
	reaches = func(obj types.Object, seen map[types.Object]bool) bool {
		if v, ok := memo[obj]; ok {
			return v
		}
		if seen[obj] {
			return false
		}
		seen[obj] = true
		nd := nodes[obj]
		if nd == nil {
			return false
		}
		if nd.touches {
			memo[obj] = true
			return true
		}
		for _, c := range nd.callees {
			if reaches(c, seen) {
				memo[obj] = true
				return true
			}
		}
		memo[obj] = false
		return false
	}

	for obj, nd := range nodes {
		fn := nd.decl
		if !fn.Name.IsExported() || !entries[fn.Name.Name] {
			continue
		}
		if !reaches(obj, make(map[types.Object]bool)) {
			p.Reportf(fn.Name.Pos(), "exported stepping entry point %s does not route through the invariant sanitizer: add invariant hooks (or reach a helper that has them) so -tags tgsan covers this path", fn.Name.Name)
		}
	}
}
