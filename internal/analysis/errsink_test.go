package analysis

import "testing"

func TestErrsinkFixture(t *testing.T) {
	checkFixture(t, Errsink, "errsink")
}

// TestErrsinkScopeConfig proves errsink is scoped by config: with the
// strict-name list and the internal-prefix list both emptied, nothing
// in the fixture is policed.
func TestErrsinkScopeConfig(t *testing.T) {
	pkg := loadFixture(t, "errsink")
	cfg := DefaultConfig()
	cfg.Errsink.Methods = nil
	cfg.Errsink.InternalPrefixes = nil
	if diags := Run([]*Package{pkg}, []*Analyzer{Errsink}, cfg); len(diags) != 0 {
		t.Errorf("descoped errsink still produced %d diagnostics, e.g. %s", len(diags), diags[0])
	}
}
