package analysis

// perfutil.go — shared machinery for the tgperf pass family (allocfree,
// boxcheck, capgrow). The family polices the steady-state performance
// contract from docs/PERFORMANCE.md: the per-epoch hot path allocates
// nothing and dispatches nothing dynamically, so the 160-320 PDN solves
// per epoch never pay GC or itable costs.
//
// This file contributes three ingredients:
//
//   - the hot set: every function reachable — over the tgflow call
//     graph, with statically-dead branches pruned — from the configured
//     hot roots (sim.Runner's per-epoch step, the pdn/thermal solve
//     entry points, par.Pool.For), plus the worker bodies of every
//     par.Pool.For fan-out found along the way, including prebuilt
//     workers stored in struct fields;
//
//   - the escape-lattice scanner scanHot: a statement walker that
//     threads the classification context the lattice needs —
//     StackLocal (value composites: no heap traffic), ReusedScratch
//     (nil-/cap-guarded makes, [:0] reslice-reset appends: amortized
//     to zero), Escapes (everything else: reported) — and exempts
//     cold blocks that end in an error return or panic;
//
//   - the //perf: annotation grammar for audited exceptions:
//
//       //perf:alloc <reason>     an intentional allocation in the hot
//                                 set (allocfree)
//       //perf:dispatch <reason>  an intentional dynamic dispatch in
//                                 the hot set (boxcheck)
//
//     A directive covers its own line and the line below it, the reason
//     is mandatory, and malformed directives are findings (reported by
//     allocfree once per package), mirroring the //par: grammar. A
//     directive whose covered line is a function declaration exempts the
//     whole body — the function-scope form, for functions that allocate
//     by design but run off the steady-state path (telemetry record
//     emission on instrumented runs, checkpoint snapshots).
//
// Incremental soundness: the hot set for a package P is built only from
// roots declared in P or P's transitive dependencies, and findings are
// reported only into P — exactly the closure the per-package
// fingerprints (incremental.go) already hash, so a cached entry can
// never go stale through a root the fingerprint does not cover. No
// tgperf pass consults prog.Callers.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ---------------------------------------------------------------------------
// //perf: annotations

const perfAnnPrefix = "//perf:"

var perfAnnKinds = map[string]bool{"alloc": true, "dispatch": true}

// buildPerfAnns scans the files for //perf: directives. Malformed ones
// are attributed to the given pass name; allocfree reports them so they
// surface exactly once per package. Unlike the //par: index, the
// //perf: index is per-package: a tgperf finding and its annotation
// always share a line, so no cross-package view is needed (which also
// keeps the incremental fingerprints sound).
func buildPerfAnns(fset *token.FileSet, files []*ast.File, reportPass string) (parAnnIndex, []Diagnostic) {
	return buildAnnIndex(fset, files, perfAnnPrefix, perfAnnKinds, "alloc or dispatch", reportPass)
}

// hotEntryExempt reports whether a //perf: directive of the given kind
// covers the entry's declaration line, exempting the entire body — the
// function-scope form of the annotation grammar. The directive goes on
// the last line of the function's doc comment (or directly above a
// detached worker literal). Exemption is per pass kind and does not
// prune the hot-set BFS: callees of an exempt function stay hot and
// need their own triage.
func hotEntryExempt(fset *token.FileSet, anns parAnnIndex, e *hotEntry, kind string) bool {
	var pos token.Pos
	if e.fn != nil {
		pos = e.fn.Decl.Pos()
	} else {
		pos = e.lit.Pos()
	}
	return anns.covered(kind, fset.Position(pos))
}

// ---------------------------------------------------------------------------
// Hot set

// hotEntry is one member of the hot set: a declared function, or a
// worker func literal stored in a struct field and resolved through a
// par.Pool.For fan-out (a literal lexically inside a hot function is
// covered by that function's own scan and never becomes an entry).
type hotEntry struct {
	key  string
	fn   *FlowFunc    // nil for detached worker literals
	lit  *ast.FuncLit // set for detached worker literals
	pkg  *Package
	root string // the root that made this entry hot, for diagnostics
}

// body returns the entry's statement body.
func (e *hotEntry) body() *ast.BlockStmt {
	if e.fn != nil {
		return e.fn.Decl.Body
	}
	return e.lit.Body
}

// tgperfRoots returns the hot roots configured for a package, matched
// by base name or full import path.
func tgperfRoots(cfg *Config, importPath string) []string {
	if n, ok := cfg.Tgperf.Roots[importPath]; ok {
		return n
	}
	base := importPath[strings.LastIndex(importPath, "/")+1:]
	return cfg.Tgperf.Roots[base]
}

// depClosure returns the import paths of target plus its transitive
// dependencies, walked over the type-checker's package graph (export
// data included). The closure can under-approximate go list's Deps for
// packages only reachable through unexported API, which at worst drops
// a root — never a stale cache entry.
func depClosure(target *Package) map[string]bool {
	seen := map[string]bool{target.ImportPath: true}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if p == nil || seen[p.Path()] {
			return
		}
		seen[p.Path()] = true
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	if target.Types != nil {
		for _, imp := range target.Types.Imports() {
			walk(imp)
		}
	}
	return seen
}

// buildHotSet computes the hot set seen while analyzing target: BFS
// from every configured root declared in target's dependency closure,
// expanding through live direct calls (statically-dead branches are
// pruned, so release-build no-ops like `if invariant.Enabled` guards
// contribute nothing) and through par.Pool.For worker bodies. Packages
// on the tgperf allowCallees list are not entered.
func buildHotSet(prog *Program, cfg *Config, target *Package) map[string]*hotEntry {
	closure := depClosure(target)
	entries := make(map[string]*hotEntry)
	var queue []*hotEntry
	add := func(e *hotEntry) {
		if entries[e.key] == nil {
			entries[e.key] = e
			queue = append(queue, e)
		}
	}
	for _, pkg := range prog.Pkgs {
		if !closure[pkg.ImportPath] {
			continue
		}
		for _, name := range tgperfRoots(cfg, pkg.ImportPath) {
			key := pkg.ImportPath + "." + name
			if fn := prog.Funcs[key]; fn != nil {
				add(&hotEntry{key: key, fn: fn, pkg: fn.Pkg, root: key})
			}
		}
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		var encl *ast.FuncDecl
		if e.fn != nil {
			encl = e.fn.Decl
		}
		expandHot(prog, cfg, e, encl, add)
	}
	return entries
}

// expandHot walks one hot entry's live statements and queues its
// callees and resolved fan-out workers.
func expandHot(prog *Program, cfg *Config, e *hotEntry, encl *ast.FuncDecl, add func(*hotEntry)) {
	body := e.body()
	inspectLive(e.pkg.Info, body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPoolFor(e.pkg, call) && len(call.Args) == 2 {
			site := &fanoutSite{encl: encl}
			resolveWorker(e.pkg, prog, encl, call.Args[1], site)
			for _, fn := range site.fns {
				add(&hotEntry{key: fn.Key, fn: fn, pkg: fn.Pkg, root: e.root})
			}
			for _, lit := range site.lits {
				if lit.Pos() >= body.Pos() && lit.End() <= body.End() {
					continue // inline worker: covered by this entry's own scan
				}
				pos := e.pkg.Fset.Position(lit.Pos())
				key := "lit:" + pos.Filename + ":" + pos.String()
				add(&hotEntry{key: key, lit: lit, pkg: e.pkg, root: e.root})
			}
			return true
		}
		callee := calleeFunc(e.pkg, call)
		if callee == nil {
			return true
		}
		fn := prog.Funcs[FuncKey(callee)]
		if fn == nil || allowedBy(cfg.Tgperf.AllowCallees, fn.Pkg.ImportPath) {
			return true
		}
		add(&hotEntry{key: fn.Key, fn: fn, pkg: fn.Pkg, root: e.root})
		return true
	})
}

// sortedHotKeys returns the hot set's keys in deterministic order.
func sortedHotKeys(hot map[string]*hotEntry) []string {
	keys := make([]string, 0, len(hot))
	for k := range hot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---------------------------------------------------------------------------
// Liveness

// constFalse reports whether the type checker folded e to the constant
// false — the release-build shape of `if invariant.Enabled { ... }`
// guards, whose bodies the compiler deletes.
func constFalse(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value)
}

// inspectLive is ast.Inspect with statically-dead if-bodies skipped:
// when an if condition folds to constant false the body is never
// visited (init and else still are), matching compiler dead-code
// elimination.
func inspectLive(info *types.Info, root ast.Node, f func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if !f(n) {
			return false
		}
		if ifs, ok := n.(*ast.IfStmt); ok && constFalse(info, ifs.Cond) {
			if ifs.Init != nil {
				inspectLive(info, ifs.Init, f)
			}
			if ifs.Else != nil {
				inspectLive(info, ifs.Else, f)
			}
			return false
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Hot-body scanner

// hotCtx is the classification context scanHot threads through a hot
// body. cold marks blocks that end in an error return or panic (error
// paths may allocate: they run once, not per epoch). scratch holds the
// ExprString forms of guarded scratch targets in scope — inside
// `if x == nil { ... }` or `if cap(x) < n { ... }` a make assigned to x
// is ReusedScratch, and after `x = x[:0]` appends to x reuse capacity.
// exempt marks nodes an enclosing construct already classified.
type hotCtx struct {
	cold    bool
	scratch map[string]bool
	exempt  map[ast.Node]bool
}

type hotWalker struct {
	info   *types.Info
	cb     func(ast.Node, *hotCtx) bool
	exempt map[ast.Node]bool
}

// scanHot walks a hot body in source order with liveness, cold-path,
// and scratch-guard context. cb returning false prunes the subtree.
func scanHot(info *types.Info, body *ast.BlockStmt, cb func(ast.Node, *hotCtx) bool) {
	w := &hotWalker{info: info, cb: cb, exempt: make(map[ast.Node]bool)}
	w.stmts(body.List, hotCtx{exempt: w.exempt})
}

func (w *hotWalker) stmts(list []ast.Stmt, ctx hotCtx) {
	for _, s := range list {
		ctx = w.stmt(s, ctx)
	}
}

// stmt walks one statement and returns the context for the statements
// after it in the same block (a [:0] reslice extends scratch downward).
func (w *hotWalker) stmt(s ast.Stmt, ctx hotCtx) hotCtx {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List, ctx)
	case *ast.IfStmt:
		if s.Init != nil {
			ctx = w.stmt(s.Init, ctx)
		}
		if constFalse(w.info, s.Cond) {
			if s.Else != nil {
				w.stmt(s.Else, ctx)
			}
			return ctx
		}
		w.expr(s.Cond, ctx)
		bodyCtx := ctx
		if endsCold(w.info, s.Body.List) {
			bodyCtx.cold = true
		}
		if tgt := guardTarget(w.info, s.Cond); tgt != "" {
			bodyCtx.scratch = cloneAdd(bodyCtx.scratch, tgt)
		}
		w.stmts(s.Body.List, bodyCtx)
		if s.Else != nil {
			w.stmt(s.Else, ctx)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ctx = w.stmt(s.Init, ctx)
		}
		w.expr(s.Cond, ctx)
		if s.Post != nil {
			w.stmt(s.Post, ctx)
		}
		w.stmts(s.Body.List, ctx)
	case *ast.RangeStmt:
		w.expr(s.Key, ctx)
		w.expr(s.Value, ctx)
		w.expr(s.X, ctx)
		w.stmts(s.Body.List, ctx)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ctx = w.stmt(s.Init, ctx)
		}
		w.expr(s.Tag, ctx)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e, ctx)
			}
			cctx := ctx
			if endsCold(w.info, cc.Body) {
				cctx.cold = true
			}
			w.stmts(cc.Body, cctx)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ctx = w.stmt(s.Init, ctx)
		}
		w.stmt(s.Assign, ctx)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			cctx := ctx
			if endsCold(w.info, cc.Body) {
				cctx.cold = true
			}
			w.stmts(cc.Body, cctx)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.stmt(cc.Comm, ctx)
			}
			cctx := ctx
			if endsCold(w.info, cc.Body) {
				cctx.cold = true
			}
			w.stmts(cc.Body, cctx)
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, ctx)
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				lhs := types.ExprString(ast.Unparen(s.Lhs[i]))
				rhs := ast.Unparen(s.Rhs[i])
				if ctx.scratch[lhs] && isBuiltinCall(w.info, rhs, "make") {
					w.exempt[rhs] = true // guarded (re)allocation: ReusedScratch
				}
				if isSelfReslice(rhs, lhs) {
					ctx.scratch = cloneAdd(ctx.scratch, lhs)
				}
				if ctx.scratch[lhs] {
					if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinCall(w.info, call, "append") &&
						len(call.Args) > 0 && types.ExprString(ast.Unparen(call.Args[0])) == lhs {
						w.exempt[call] = true // append into reused scratch
					}
				}
			}
		}
		for _, e := range s.Lhs {
			w.expr(e, ctx)
		}
		for _, e := range s.Rhs {
			w.expr(e, ctx)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, ctx)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, ctx)
		}
	case *ast.ExprStmt:
		w.expr(s.X, ctx)
	case *ast.SendStmt:
		w.expr(s.Chan, ctx)
		w.expr(s.Value, ctx)
	case *ast.IncDecStmt:
		w.expr(s.X, ctx)
	case *ast.DeferStmt:
		// A func literal deferred outside a loop is open-coded and
		// stack-allocated; exempting it here keeps recover trampolines
		// (par.runChunk) clean without an annotation.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.exempt[lit] = true
		}
		w.expr(s.Call, ctx)
	case *ast.GoStmt:
		w.expr(s.Call, ctx)
	}
	return ctx
}

// expr walks an expression, diverting func-literal bodies back through
// the statement walker so their context stays threaded.
func (w *hotWalker) expr(e ast.Expr, ctx hotCtx) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			if !w.cb(lit, &ctx) {
				return false
			}
			w.stmts(lit.Body.List, ctx)
			return false
		}
		return w.cb(n, &ctx)
	})
}

// cloneAdd returns a copy of set with key added.
func cloneAdd(set map[string]bool, key string) map[string]bool {
	out := make(map[string]bool, len(set)+1)
	for k, v := range set {
		out[k] = v
	}
	out[key] = true
	return out
}

// endsCold reports whether a statement list ends by returning a non-nil
// error or panicking — the shape of a validation/failure path that runs
// once, not per epoch.
func endsCold(info *types.Info, list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		for _, r := range last.Results {
			if isNilIdent(r) {
				continue
			}
			if t := typeOf(info, r); t != nil && isErrorType(t) {
				return true
			}
		}
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return endsCold(info, last.List)
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// guardTarget recognizes the scratch-guard conditions: `x == nil`,
// `cap(x) < n` (any comparison direction, len accepted too), and the
// disjunction of two guards on the same target. It returns the guarded
// expression in ExprString form, or "".
func guardTarget(info *types.Info, cond ast.Expr) string {
	c, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return ""
	}
	switch c.Op {
	case token.LOR:
		a, b := guardTarget(info, c.X), guardTarget(info, c.Y)
		if a != "" && a == b {
			return a
		}
	case token.EQL:
		if isNilIdent(c.Y) {
			return types.ExprString(ast.Unparen(c.X))
		}
		if isNilIdent(c.X) {
			return types.ExprString(ast.Unparen(c.Y))
		}
	case token.NEQ, token.LSS, token.LEQ:
		if t := capLenArg(info, c.X); t != "" {
			return t
		}
		if c.Op == token.NEQ {
			return capLenArg(info, c.Y)
		}
	case token.GTR, token.GEQ:
		return capLenArg(info, c.Y)
	}
	return ""
}

// capLenArg returns the argument of a cap() or len() builtin call in
// ExprString form, or "".
func capLenArg(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return ""
	}
	if isBuiltinCall(info, call, "cap") || isBuiltinCall(info, call, "len") {
		return types.ExprString(ast.Unparen(call.Args[0]))
	}
	return ""
}

// isBuiltinCall reports whether n is a call to the named builtin.
func isBuiltinCall(info *types.Info, n ast.Node, name string) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.ObjectOf(id).(*types.Builtin)
	return ok
}

// isSelfReslice reports whether rhs is `lhs[:0]` (or `lhs[0:0]`) — the
// reslice-reset that marks lhs as reusable scratch.
func isSelfReslice(rhs ast.Expr, lhs string) bool {
	sl, ok := ast.Unparen(rhs).(*ast.SliceExpr)
	if !ok || sl.Slice3 {
		return false
	}
	if types.ExprString(ast.Unparen(sl.X)) != lhs {
		return false
	}
	return isZeroLit(sl.High) && (sl.Low == nil || isZeroLit(sl.Low))
}

func isZeroLit(e ast.Expr) bool {
	if e == nil {
		return false
	}
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// isZeroReslice reports whether e is a `x[:0]` reslice-reset (used for
// the inline `append(x[:0], ...)` form).
func isZeroReslice(e ast.Expr) bool {
	sl, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || sl.Slice3 {
		return false
	}
	return isZeroLit(sl.High) && (sl.Low == nil || isZeroLit(sl.Low))
}
