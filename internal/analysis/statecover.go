package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Statecover verifies the checkpoint round-trip contract introduced in
// the fault-tolerance PR: every subsystem exposes a snapshot producer
// (State / snapshot, config: statecover.producers) returning a plain
// exported-field struct, and a consumer (Restore, config:
// statecover.consumers) that applies one. The gob encoder persists
// exactly the exported fields, so a field that the producer never
// assigns silently checkpoints as zero, and a field the consumer never
// reads silently loses state on resume — both are one-line mistakes
// that survive every unit test that doesn't crash mid-epoch.
//
// The pass anchors on each consumer declared in the package under
// analysis: the first parameter whose (pointer-stripped) type is a
// named struct S becomes the snapshot schema. It then finds the
// producers for S (same package, configured name, S or *S among the
// results) and walks the call graph — producer side and consumer side
// separately, helpers included — collecting:
//
//   - writes: composite-literal keys ({Seed: r.seed, ...}), full
//     positional literals, and x.F = assignments where x is S-typed;
//   - reads: any selector on an S-typed expression, plus whole-value
//     escapes (an S value stored into a struct field, returned, or
//     passed to a function outside the program) which count as reading
//     every field — r.resume = cp keeps the checkpoint for later, and
//     the pass cannot see further.
//
// Every exported field of S must be both written by each producer and
// read by each consumer. Field identity is matched by
// "pkgpath.Type.Field" strings, not object pointers, because helper
// functions in other packages see S through export data as different
// types.Object values (see callgraph.go).
var Statecover = &Analyzer{
	Name:         "statecover",
	Doc:          "verifies checkpoint State()/Restore() pairs cover every exported field",
	Run:          runStatecover,
	NeedsProgram: true,
}

// typeKey canonically names a (possibly pointered) named type as
// "pkgpath.Name", or "" for everything else.
func typeKey(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// namedStruct returns the named struct behind t (through one pointer),
// or nil.
func namedStruct(t types.Type) (*types.Named, *types.Struct) {
	if t == nil {
		return nil, nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// schemaAnchor ties one snapshot struct to its producers and consumers.
type schemaAnchor struct {
	key       string // "pkgpath.TypeName"
	display   string // "sim.Checkpoint" for diagnostics
	fields    []string
	fieldSet  map[string]bool
	consumers []*FlowFunc
	producers []*FlowFunc
}

// stateWalker accumulates field coverage across a BFS over the call
// graph starting at one anchor function.
type stateWalker struct {
	prog    *Program
	sKey    string
	fields  map[string]bool
	covered map[string]bool
	all     bool // whole-value escape observed
}

func (w *stateWalker) mark(field string) {
	if w.fields[field] {
		w.covered[field] = true
	}
}

func (w *stateWalker) isSchema(info *types.Info, e ast.Expr) bool {
	return typeKey(typeOf(info, e)) == w.sKey
}

// collectWrites records which schema fields a function body assigns.
func (w *stateWalker) collectWrites(fn *FlowFunc) {
	info := fn.Pkg.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if typeKey(typeOf(info, n)) != w.sKey {
				return true
			}
			positional := 0
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						w.mark(id.Name)
					}
				} else {
					positional++
				}
			}
			if positional > 0 && positional == len(w.fields) {
				w.all = true // full positional literal covers everything
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && w.isSchema(info, sel.X) {
					w.mark(sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// collectReads records which schema fields a function body consumes.
func (w *stateWalker) collectReads(fn *FlowFunc) {
	info := fn.Pkg.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if w.isSchema(info, n.X) {
				w.mark(n.Sel.Name)
			}
		case *ast.AssignStmt:
			// An S value stored into a struct field escapes whole — the
			// holder (r.resume = cp) may read any field later.
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && w.isSchema(info, rhs) {
					if sel, ok := ast.Unparen(n.Lhs[i]).(*ast.SelectorExpr); ok && !w.isSchema(info, sel.X) {
						w.all = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if w.isSchema(info, r) {
					w.all = true
				}
			}
		case *ast.CallExpr:
			// S handed to a function with no body in the program (gob
			// encoders, logging, ...) escapes the analysis.
			if w.prog.FuncOf(fn.Pkg, n) != nil {
				return true
			}
			for _, a := range n.Args {
				if w.isSchema(info, a) {
					w.all = true
				}
			}
		}
		return true
	})
}

// walk BFS-visits fn and every internal function reachable from it,
// applying collect to each body.
func (w *stateWalker) walk(fn *FlowFunc, collect func(*FlowFunc)) {
	visited := map[string]bool{fn.Key: true}
	queue := []*FlowFunc{fn}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		collect(cur)
		for _, ck := range w.prog.Callees[cur.Key] {
			if callee, ok := w.prog.Funcs[ck]; ok && !visited[ck] {
				visited[ck] = true
				queue = append(queue, callee)
			}
		}
	}
}

// missing returns the schema fields left uncovered, sorted.
func (w *stateWalker) missing(order []string) []string {
	if w.all {
		return nil
	}
	var out []string
	for _, f := range order {
		if !w.covered[f] {
			out = append(out, f)
		}
	}
	return out
}

// exportedFields lists S's exported field names in declaration order —
// the exact set encoding/gob persists.
func exportedFields(st *types.Struct) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Exported() {
			out = append(out, f.Name())
		}
	}
	return out
}

// consumerSchema extracts the snapshot struct a consumer applies: the
// first parameter whose type is a named struct (through one pointer)
// declared in the consumer's own package.
func consumerSchema(fn *FlowFunc) (*types.Named, *types.Struct) {
	if fn.Sig == nil {
		return nil, nil
	}
	for i := 0; i < fn.Sig.Params().Len(); i++ {
		named, st := namedStruct(fn.Sig.Params().At(i).Type())
		if named == nil || named.Obj().Pkg() == nil {
			continue
		}
		if named.Obj().Pkg().Path() != fn.Pkg.ImportPath {
			continue
		}
		return named, st
	}
	return nil, nil
}

// producesSchema reports whether any of fn's results is S or *S.
func producesSchema(fn *FlowFunc, sKey string) bool {
	if fn.Sig == nil {
		return false
	}
	for i := 0; i < fn.Sig.Results().Len(); i++ {
		if typeKey(fn.Sig.Results().At(i).Type()) == sKey {
			return true
		}
	}
	return false
}

func runStatecover(p *Pass) {
	if p.Program == nil {
		return
	}
	cfg := p.Config

	// Anchor on consumers declared in this package whose schema struct is
	// also local, so every diagnostic lands in this package's files.
	anchors := map[string]*schemaAnchor{}
	for _, fn := range p.Program.Funcs {
		if fn.Pkg.ImportPath != p.ImportPath || !cfg.statecoverConsumer(fn.Decl.Name.Name) {
			continue
		}
		named, st := consumerSchema(fn)
		if named == nil {
			continue
		}
		key := typeKey(named)
		a := anchors[key]
		if a == nil {
			fields := exportedFields(st)
			if len(fields) == 0 {
				continue
			}
			a = &schemaAnchor{
				key:      key,
				display:  fn.Pkg.Types.Name() + "." + named.Obj().Name(),
				fields:   fields,
				fieldSet: map[string]bool{},
			}
			for _, f := range fields {
				a.fieldSet[f] = true
			}
			anchors[key] = a
		}
		a.consumers = append(a.consumers, fn)
	}
	if len(anchors) == 0 {
		return
	}
	for _, fn := range p.Program.Funcs {
		if fn.Pkg.ImportPath != p.ImportPath || !cfg.statecoverProducer(fn.Decl.Name.Name) {
			continue
		}
		for _, a := range anchors {
			if producesSchema(fn, a.key) {
				a.producers = append(a.producers, fn)
			}
		}
	}

	keys := make([]string, 0, len(anchors))
	for k := range anchors {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a := anchors[k]
		sortFuncs(a.consumers)
		sortFuncs(a.producers)

		if len(a.producers) == 0 {
			for _, c := range a.consumers {
				p.Reportf(c.Decl.Name.Pos(),
					"%s has consumer %s but no producer named %s returns it; the checkpoint schema cannot be verified",
					a.display, c.Decl.Name.Name, strings.Join(cfg.Statecover.Producers, "/"))
			}
			continue
		}
		// Each producer must populate the full schema on its own: a
		// producer is the whole snapshot, not a contributor.
		for _, prod := range a.producers {
			w := &stateWalker{prog: p.Program, sKey: a.key, fields: a.fieldSet, covered: map[string]bool{}}
			w.walk(prod, w.collectWrites)
			if miss := w.missing(a.fields); len(miss) != 0 {
				p.Reportf(prod.Decl.Name.Pos(),
					"%s never sets %s of %s; the field checkpoints as its zero value",
					prod.Decl.Name.Name, fieldList(miss), a.display)
			}
		}
		for _, cons := range a.consumers {
			w := &stateWalker{prog: p.Program, sKey: a.key, fields: a.fieldSet, covered: map[string]bool{}}
			w.walk(cons, w.collectReads)
			if miss := w.missing(a.fields); len(miss) != 0 {
				p.Reportf(cons.Decl.Name.Pos(),
					"%s never reads %s of %s; that state is silently dropped on resume",
					cons.Decl.Name.Name, fieldList(miss), a.display)
			}
		}
	}
}

// sortFuncs orders FlowFuncs by source position for deterministic
// diagnostics.
func sortFuncs(fns []*FlowFunc) {
	sort.Slice(fns, func(i, j int) bool { return fns[i].Decl.Pos() < fns[j].Decl.Pos() })
}

// fieldList renders missing fields for a diagnostic.
func fieldList(fields []string) string {
	if len(fields) == 1 {
		return "field " + fields[0]
	}
	return fmt.Sprintf("fields %s", strings.Join(fields, ", "))
}
