package analysis

import "testing"

func TestDetcheckFixture(t *testing.T) {
	checkFixture(t, Detcheck, "detcheck/sim")
}

// TestDetcheckAllowlist proves the config allowlist silences a package
// that would otherwise be policed: the same fixture loaded with its
// import path allowed yields nothing.
func TestDetcheckAllowlist(t *testing.T) {
	pkg := loadFixture(t, "detcheck/sim")
	cfg := DefaultConfig()
	cfg.Detcheck.Allow = append(cfg.Detcheck.Allow, pkg.ImportPath)
	if diags := Run([]*Package{pkg}, []*Analyzer{Detcheck}, cfg); len(diags) != 0 {
		t.Errorf("allowlisted package still produced %d diagnostics, e.g. %s", len(diags), diags[0])
	}
}

// TestDetcheckScope proves detcheck ignores packages outside the
// configured simulation list entirely.
func TestDetcheckScope(t *testing.T) {
	pkg := loadFixture(t, "detcheck/sim")
	cfg := DefaultConfig()
	cfg.Detcheck.Packages = []string{"somethingelse"}
	if diags := Run([]*Package{pkg}, []*Analyzer{Detcheck}, cfg); len(diags) != 0 {
		t.Errorf("out-of-scope package still produced %d diagnostics, e.g. %s", len(diags), diags[0])
	}
}
