package analysis

// parwrite verifies the disjoint-write half of the parallel-pipeline
// determinism contract (docs/PERFORMANCE.md): a worker body handed to
// (*par.Pool).For may write only
//
//   - locations indexed by a value derived from its chunk bounds
//     [lo, hi) — x[i] with i computed from lo/hi by +, - or *, or a
//     sub-slice x[lo:hi];
//   - memory the worker owns: locals, make/new/composite-literal
//     allocations, value-typed copies, and anything reached from them;
//   - nothing else. Writes to captured variables, shared struct fields,
//     shared maps, and calls that hand shared mutable state to callees
//     outside the program are violations.
//
// The check is interprocedural: internal callees are re-analyzed under
// the ownership context of their arguments (a method writing
// r.scratch[d] is fine exactly when d came in as a chunk index), with
// context-sensitive memoization. `go` statements in the configured
// pipeline packages are analyzed the same way with no chunk bounds, so
// every captured write there must carry its own justification.
//
// Audited exceptions use the //par:disjoint annotation (parutil.go) at
// the offending write or at the fan-out site; the reason is mandatory.
//
// Known soundness limits, accepted for a lint: the analysis is
// flow-insensitive per function, treats reads of shared state as stable
// during a fan-out (which is exactly what the pass itself enforces), and
// does not track reference fields smuggled inside copied structs or
// composite literals.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// pwOwn is the ownership lattice parwrite evaluates expressions in.
type pwOwn uint8

const (
	pwShared pwOwn = iota // reachable by other workers — the unsafe default
	pwNil                 // the nil literal
	pwConst               // constants and worker-invariant scalar values
	pwChunk               // an integer derived from the chunk bounds [lo, hi)
	pwFresh               // memory owned by this worker invocation
)

func (o pwOwn) String() string {
	switch o {
	case pwNil:
		return "nil"
	case pwConst:
		return "const"
	case pwChunk:
		return "chunk"
	case pwFresh:
		return "owned"
	}
	return "shared"
}

// pwJoin merges the ownership a variable gets from several assignments.
func pwJoin(a, b pwOwn) pwOwn {
	switch {
	case a == b:
		return a
	case a == pwShared || b == pwShared:
		return pwShared
	case a == pwNil:
		return b
	case b == pwNil:
		return a
	case a == pwConst:
		return b
	case b == pwConst:
		return a
	}
	return pwShared // {chunk, owned} — an index that is sometimes memory
}

// pwViolation is one unproven write, positioned wherever it happened
// (possibly another package) with the call chain that reached it.
type pwViolation struct {
	pos   token.Pos
	msg   string
	chain []string // callee keys from the fan-out site inward
}

// Parwrite is the disjoint-write analyzer.
var Parwrite = &Analyzer{
	Name:         "parwrite",
	Doc:          "parallel workers must write only chunk-indexed or worker-owned state",
	Run:          runParwrite,
	NeedsProgram: true,
}

// pwSummary is the memoized result of analyzing one (function, context)
// pair: the unproven writes plus the ownership of each result value, so
// callers can see that e.g. blockPowerScaled(act, temps, nil) returns
// memory the callee allocated.
type pwSummary struct {
	vios []pwViolation
	rets []pwOwn
}

type pwChecker struct {
	pass *Pass
	prog *Program
	memo map[string]pwSummary
	busy map[string]bool
}

func runParwrite(pass *Pass) {
	// Malformed //par: directives surface here, once per package.
	_, bad := buildParAnns(pass.Fset, pass.Files, "parwrite")
	pass.diags = append(pass.diags, bad...)

	cfg := pass.Config
	if allowedBy(cfg.Parwrite.Allow, pass.ImportPath) {
		return
	}
	pkg := pass.Program.pkgByPath(pass.ImportPath)
	if pkg == nil {
		return
	}
	includeGo := pkgMatches(cfg.Parwrite.GoPackages, pass.ImportPath)
	sites := findFanouts(pkg, pass.Program, includeGo)
	if len(sites) == 0 {
		return
	}

	ck := &pwChecker{pass: pass, prog: pass.Program, memo: map[string]pwSummary{}, busy: map[string]bool{}}
	anns := parAnns(pass.Program)
	own := make(map[string]bool, len(pass.Files))
	for _, f := range pass.Files {
		own[pass.Fset.Position(f.Pos()).Filename] = true
	}
	seen := map[string]bool{}

	for _, site := range sites {
		if site.unresolved != nil {
			pass.Reportf(site.pos, "cannot resolve the worker body of this %s; pass a func literal, a local assigned one, or a declared function", site.desc)
			continue
		}
		var vios []pwViolation
		for _, lit := range site.lits {
			v, _ := ck.scan(pkg, lit, seedLitParams(pkg, lit, site.isFor))
			vios = append(vios, v...)
		}
		for _, fn := range site.fns {
			sum := ck.analyzeFunc(fn, pwFresh, seedFnOwns(fn, site.isFor))
			vios = append(vios, sum.vios...)
		}
		sitePos := pass.Fset.Position(site.pos)
		for _, v := range vios {
			vPos := pass.Fset.Position(v.pos)
			if anns.covered("disjoint", vPos) || anns.covered("disjoint", sitePos) {
				continue
			}
			var d Diagnostic
			if own[vPos.Filename] {
				d = Diagnostic{Pos: vPos, Pass: pass.Analyzer.Name,
					Message: fmt.Sprintf("%s (reached from %s at %s)", v.msg, site.desc, shortPos(sitePos))}
			} else {
				d = Diagnostic{Pos: sitePos, Pass: pass.Analyzer.Name,
					Message: fmt.Sprintf("%s: %s at %s (via %s)", site.desc, v.msg, shortPos(vPos), strings.Join(v.chain, " -> "))}
			}
			key := d.Pos.Filename + "|" + fmt.Sprint(d.Pos.Line) + "|" + d.Message
			if !seen[key] {
				seen[key] = true
				pass.diags = append(pass.diags, d)
			}
		}
	}
}

// shortPos renders a cross-reference position compactly.
func shortPos(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// seedLitParams binds a func literal's parameters: the two chunk bounds
// for For workers; go-statement parameters own their copies (reference
// types stay shared — they alias the spawner's state).
func seedLitParams(pkg *Package, lit *ast.FuncLit, isFor bool) map[types.Object]pwOwn {
	seed := map[types.Object]pwOwn{}
	i := 0
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj == nil {
				i++
				continue
			}
			seed[obj] = paramOwn(obj.Type(), isFor && i < 2)
			i++
		}
	}
	return seed
}

// seedFnOwns builds the ownership context for a named worker function.
func seedFnOwns(fn *FlowFunc, isFor bool) []pwOwn {
	if fn.Sig == nil {
		return nil
	}
	owns := make([]pwOwn, fn.Sig.Params().Len())
	for i := range owns {
		owns[i] = paramOwn(fn.Sig.Params().At(i).Type(), isFor && i < 2)
	}
	return owns
}

// paramOwn classifies what a parameter owns when the caller's argument
// context is unknown: chunk bounds for For workers, shared for anything
// that aliases (pointer-ish), a fresh copy otherwise.
func paramOwn(t types.Type, chunk bool) pwOwn {
	if chunk && isIntType(t) {
		return pwChunk
	}
	if isAliasType(t) {
		return pwShared
	}
	if isIntType(t) {
		return pwConst
	}
	return pwFresh
}

// isAliasType is broader than aliascheck's isRefType: anything a callee
// could reach the caller's memory through.
func isAliasType(t types.Type) bool {
	if t == nil {
		return true
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// analyzeFunc re-analyzes an internal callee under the caller's
// ownership context, memoized per (function, context).
func (ck *pwChecker) analyzeFunc(fn *FlowFunc, recvOwn pwOwn, paramOwns []pwOwn) pwSummary {
	var sb strings.Builder
	sb.WriteString(fn.Key)
	sb.WriteByte('|')
	sb.WriteString(recvOwn.String())
	for _, o := range paramOwns {
		sb.WriteByte(',')
		sb.WriteString(o.String())
	}
	key := sb.String()
	if v, ok := ck.memo[key]; ok {
		return v
	}
	if ck.busy[key] {
		return pwSummary{} // recursion: trust the outer frame's result
	}
	ck.busy[key] = true
	defer delete(ck.busy, key)

	seed := map[types.Object]pwOwn{}
	if fn.Sig != nil {
		if r := fn.Sig.Recv(); r != nil {
			if _, ptr := r.Type().(*types.Pointer); ptr {
				seed[r] = recvOwn
			} else {
				seed[r] = pwFresh // value receiver: the method gets a copy
			}
		}
		for i := 0; i < fn.Sig.Params().Len() && i < len(paramOwns); i++ {
			seed[fn.Sig.Params().At(i)] = paramOwns[i]
		}
	}
	vios, rets := ck.scan(fn.Pkg, fn.Decl, seed)
	out := pwSummary{vios: make([]pwViolation, len(vios)), rets: rets}
	for i, v := range vios {
		out.vios[i] = pwViolation{pos: v.pos, msg: v.msg, chain: append([]string{fn.Key}, v.chain...)}
	}
	ck.memo[key] = out
	return out
}

// pwScan analyzes one function body (declaration or literal) under an
// ownership seeding of its parameters.
type pwScan struct {
	ck     *pwChecker
	pkg    *Package
	node   ast.Node // *ast.FuncDecl or *ast.FuncLit, scanned whole
	locals map[types.Object]bool
	env    map[types.Object]pwOwn
	vios   []pwViolation
}

func (ck *pwChecker) scan(pkg *Package, node ast.Node, seed map[types.Object]pwOwn) ([]pwViolation, []pwOwn) {
	s := &pwScan{ck: ck, pkg: pkg, node: node, locals: map[types.Object]bool{}, env: map[types.Object]pwOwn{}}
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				s.locals[obj] = true
			}
		}
		return true
	})
	for obj, own := range seed {
		s.locals[obj] = true
		s.env[obj] = own
	}
	// Flow-insensitive fixpoint over local bindings: ownership flows
	// through straight assignments until nothing changes.
	for iter := 0; iter < 8; iter++ {
		if !s.propagate() {
			break
		}
	}
	s.check()
	return s.vios, s.resultOwns()
}

// propagate runs one joining pass over every binding form, reporting
// whether any variable's ownership changed.
func (s *pwScan) propagate() bool {
	changed := false
	bind := func(lhs ast.Expr, own pwOwn) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := s.pkg.Info.ObjectOf(id)
		if obj == nil || !s.locals[obj] {
			return
		}
		next := own
		if cur, ok := s.env[obj]; ok {
			next = pwJoin(cur, own)
		}
		if cur, ok := s.env[obj]; !ok || cur != next {
			s.env[obj] = next
			changed = true
		}
	}
	ast.Inspect(s.node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch {
			case len(n.Rhs) == 1 && len(n.Lhs) > 1:
				// v, ok := m[k] / x.(T): the comma-ok forms keep the
				// container's ownership; f() spreads the callee's result
				// summary across the targets.
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					owns := s.callResultOwns(call)
					for i, lhs := range n.Lhs {
						o := pwShared
						if i < len(owns) {
							o = owns[i]
						}
						bind(lhs, o)
					}
					break
				}
				own := pwShared
				switch r := ast.Unparen(n.Rhs[0]).(type) {
				case *ast.IndexExpr:
					own = s.evalOwn(r.X)
				case *ast.TypeAssertExpr:
					own = s.evalOwn(r.X)
				case *ast.UnaryExpr:
					if r.Op == token.ARROW {
						own = pwShared
					}
				}
				for _, lhs := range n.Lhs {
					bind(lhs, own)
				}
			case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) {
						bind(lhs, s.evalOwn(n.Rhs[i]))
					}
				}
			case n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN || n.Tok == token.MUL_ASSIGN:
				// i += 1 keeps i in its class (chunk stays chunk).
			default:
				// /=, %=, &=, ...: a chunk index no longer provably disjoint.
				for _, lhs := range n.Lhs {
					bind(lhs, pwConst)
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					bind(name, s.evalOwn(n.Values[i]))
				}
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				// Range indices enumerate the whole container in every
				// worker — never a chunk index.
				bind(n.Key, pwConst)
			}
			if n.Value != nil {
				xo := s.evalOwn(n.X)
				own := xo
				if !isAliasType(rangeElemType(typeOf(s.pkg.Info, n.X))) {
					own = pwFresh // the binding is a copy
				}
				bind(n.Value, own)
			}
		}
		return true
	})
	return changed
}

// rangeElemType returns the element a range binding copies out of t.
func rangeElemType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Pointer:
		if a, ok := u.Elem().Underlying().(*types.Array); ok {
			return a.Elem()
		}
	case *types.Map:
		return u.Elem()
	case *types.Chan:
		return u.Elem()
	}
	return nil
}

// evalOwn evaluates what an expression's value owns.
func (s *pwScan) evalOwn(e ast.Expr) pwOwn {
	e = ast.Unparen(e)
	if tv, ok := s.pkg.Info.Types[e]; ok {
		if tv.IsNil() {
			return pwNil
		}
		if tv.Value != nil {
			return pwConst
		}
	}
	switch e := e.(type) {
	case *ast.BasicLit:
		return pwConst
	case *ast.Ident:
		obj := s.pkg.Info.ObjectOf(e)
		if obj == nil {
			return pwShared
		}
		if _, ok := obj.(*types.Const); ok {
			return pwConst
		}
		if own, ok := s.env[obj]; ok {
			return own
		}
		if s.locals[obj] {
			return pwFresh // declared here, zero value, never rebound
		}
		return pwShared // captured or package-level
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := s.pkg.Info.ObjectOf(id).(*types.PkgName); isPkg {
				return pwShared // qualified package-level symbol
			}
		}
		return s.evalOwn(e.X)
	case *ast.IndexExpr:
		if t := typeOf(s.pkg.Info, e.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return s.evalOwn(e.X)
			}
		}
		if s.evalOwn(e.Index) == pwChunk {
			return pwFresh // element at a chunk index is this worker's
		}
		return s.evalOwn(e.X)
	case *ast.SliceExpr:
		if (e.Low != nil && s.evalOwn(e.Low) == pwChunk) || (e.High != nil && s.evalOwn(e.High) == pwChunk) {
			return pwFresh // x[lo:hi] carves out the worker's chunk
		}
		return s.evalOwn(e.X)
	case *ast.StarExpr:
		return s.evalOwn(e.X)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			return s.evalOwn(e.X)
		case token.ARROW:
			return pwShared
		}
		if o := s.evalOwn(e.X); o != pwChunk {
			return o
		}
		return pwConst // -i etc. is no longer a chunk index
	case *ast.BinaryExpr:
		a, b := s.evalOwn(e.X), s.evalOwn(e.Y)
		switch e.Op {
		case token.ADD, token.SUB, token.MUL:
			// Chunk indices survive affine offsets: the other operand is
			// worker-invariant because workers only read shared state —
			// the very contract this pass enforces.
			if a == pwChunk || b == pwChunk {
				return pwChunk
			}
		}
		if a == pwShared || b == pwShared {
			return pwShared
		}
		return pwConst
	case *ast.CompositeLit:
		return pwFresh
	case *ast.FuncLit:
		return pwFresh
	case *ast.TypeAssertExpr:
		return s.evalOwn(e.X)
	case *ast.CallExpr:
		return s.evalCallOwn(e)
	}
	return pwShared
}

// evalCallOwn classifies a call used as a single value: the first entry
// of callResultOwns, shared when nothing better is known.
func (s *pwScan) evalCallOwn(call *ast.CallExpr) pwOwn {
	if owns := s.callResultOwns(call); len(owns) > 0 {
		return owns[0]
	}
	return pwShared
}

// callResultOwns evaluates the ownership of each value a call produces.
// Conversions and allocation builtins are handled directly; internal
// callees are analyzed under the call's argument context so their result
// summaries (ck.memo) say whether each result is callee-allocated. nil
// means unknown — every result shared.
func (s *pwScan) callResultOwns(call *ast.CallExpr) []pwOwn {
	if tv, ok := s.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return []pwOwn{s.evalOwn(call.Args[0])} // conversion
	}
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := s.pkg.Info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				return []pwOwn{pwFresh}
			case "append":
				if len(call.Args) > 0 && s.evalOwn(call.Args[0]) == pwShared {
					return []pwOwn{pwShared}
				}
				return []pwOwn{pwFresh}
			}
			return []pwOwn{pwConst} // len, cap, min, max, ...
		}
	}
	callee := calleeFunc(s.pkg, call)
	if callee == nil || callee.Pkg() == nil || allowedBy(s.ck.pass.Config.Parwrite.AllowCallees, callee.Pkg().Path()) {
		return nil
	}
	fn := s.ck.prog.Funcs[FuncKey(callee)]
	if fn == nil || fn.Sig == nil {
		return nil
	}
	recvOwn := pwFresh
	if fn.Sig.Recv() != nil {
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			recvOwn = s.evalOwn(sel.X)
		} else {
			recvOwn = pwShared
		}
	}
	return s.ck.analyzeFunc(fn, recvOwn, s.argOwns(fn.Sig, call)).rets
}

// resultOwns evaluates, after the fixpoint, what each of the scanned
// function's results owns: the join over every return site, with bare
// returns reading the named results out of the environment. Returns
// belonging to nested literals are not this function's.
func (s *pwScan) resultOwns() []pwOwn {
	var ft *ast.FuncType
	switch n := s.node.(type) {
	case *ast.FuncDecl:
		ft = n.Type
	case *ast.FuncLit:
		ft = n.Type
	}
	if ft == nil || ft.Results == nil {
		return nil
	}
	var resObjs []types.Object // named results, nil entries when unnamed
	nres := 0
	for _, f := range ft.Results.List {
		if len(f.Names) == 0 {
			resObjs = append(resObjs, nil)
			nres++
			continue
		}
		for _, name := range f.Names {
			resObjs = append(resObjs, s.pkg.Info.Defs[name])
			nres++
		}
	}
	rets := make([]pwOwn, nres)
	for i := range rets {
		rets[i] = pwNil // join identity; panic-only functions return nothing
	}
	joinAt := func(i int, o pwOwn) {
		if i < nres {
			rets[i] = pwJoin(rets[i], o)
		}
	}
	walkSkippingLits(s.node, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		switch {
		case len(ret.Results) == 0:
			for i, obj := range resObjs {
				switch {
				case obj == nil:
					joinAt(i, pwShared)
				default:
					if own, ok := s.env[obj]; ok {
						joinAt(i, own)
					} else {
						joinAt(i, pwFresh) // never rebound: still its zero value
					}
				}
			}
		case len(ret.Results) == 1 && nres > 1:
			// return f(): spread a multi-value call.
			var owns []pwOwn
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				owns = s.callResultOwns(call)
			}
			for i := 0; i < nres; i++ {
				if i < len(owns) {
					joinAt(i, owns[i])
				} else {
					joinAt(i, pwShared)
				}
			}
		default:
			for i, res := range ret.Results {
				joinAt(i, s.evalOwn(res))
			}
		}
	})
	return rets
}

// walkSkippingLits visits n's tree without descending into nested
// function literals (used to attribute return statements correctly).
func walkSkippingLits(root ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit && !first {
			return false
		}
		first = false
		visit(n)
		return true
	})
}

// check walks the body once reporting unproven writes and unsafe calls.
func (s *pwScan) check() {
	ast.Inspect(s.node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				s.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			s.checkWrite(n.X)
		case *ast.CallExpr:
			s.checkCall(n)
		}
		return true
	})
}

func (s *pwScan) violate(pos token.Pos, format string, args ...any) {
	s.vios = append(s.vios, pwViolation{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// owned reports whether writing through a base with this ownership is
// provably private to the worker.
func owned(o pwOwn) bool { return o == pwFresh || o == pwNil }

func (s *pwScan) checkWrite(lhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := s.pkg.Info.ObjectOf(l)
		if obj == nil || s.locals[obj] {
			return // rebinding a local is private by construction
		}
		s.violate(l.Pos(), "worker assigns captured variable %q", l.Name)
	case *ast.IndexExpr:
		if t := typeOf(s.pkg.Info, l.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if !owned(s.evalOwn(l.X)) {
					s.violate(l.Pos(), "worker writes shared map %s", nodeText(l.X))
				}
				return
			}
		}
		if s.evalOwn(l.Index) == pwChunk || owned(s.evalOwn(l.X)) {
			return
		}
		s.violate(l.Pos(), "worker writes %s at an index not derived from the chunk bounds", nodeText(l.X))
	case *ast.SelectorExpr:
		if !owned(s.evalOwn(l.X)) {
			s.violate(l.Pos(), "worker writes field %s of shared state", nodeText(l))
		}
	case *ast.StarExpr:
		if !owned(s.evalOwn(l.X)) {
			s.violate(l.Pos(), "worker writes through shared pointer %s", nodeText(l.X))
		}
	default:
		s.violate(lhs.Pos(), "worker write to %s cannot be classified", nodeText(lhs))
	}
}

func (s *pwScan) checkCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := s.pkg.Info.Types[fun]; ok && tv.IsType() {
		return // conversion
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := s.pkg.Info.ObjectOf(id).(*types.Builtin); ok {
			s.checkBuiltin(b.Name(), call)
			return
		}
	}
	callee := calleeFunc(s.pkg, call)
	if callee == nil {
		if _, inline := fun.(*ast.FuncLit); inline {
			return // the literal's body is scanned in place
		}
		if id, ok := fun.(*ast.Ident); ok {
			if obj := s.pkg.Info.ObjectOf(id); obj != nil && s.locals[obj] && s.litAssignedInBody(obj) {
				return // local closure defined in this body: already scanned
			}
		}
		s.violate(call.Pos(), "worker calls through function value %s; its writes cannot be verified", nodeText(fun))
		return
	}
	if callee.Pkg() != nil && allowedBy(s.ck.pass.Config.Parwrite.AllowCallees, callee.Pkg().Path()) {
		return
	}
	key := FuncKey(callee)
	if fn := s.ck.prog.Funcs[key]; fn != nil && fn.Sig != nil {
		recvOwn := pwFresh
		if fn.Sig.Recv() != nil {
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				recvOwn = s.evalOwn(sel.X)
			} else {
				recvOwn = pwShared // method value / expression
			}
		}
		sum := s.ck.analyzeFunc(fn, recvOwn, s.argOwns(fn.Sig, call))
		s.vios = append(s.vios, sum.vios...)
		return
	}
	// External callee (no body in the program): handing it shared mutable
	// state is unverifiable.
	if sig, ok := callee.Type().(*types.Signature); ok {
		if r := sig.Recv(); r != nil {
			if _, ptr := r.Type().(*types.Pointer); ptr {
				if sel, ok := fun.(*ast.SelectorExpr); ok && !owned(s.evalOwn(sel.X)) && s.evalOwn(sel.X) != pwConst {
					s.violate(call.Pos(), "worker calls external %s on shared receiver", key)
					return
				}
			}
		}
	}
	for _, arg := range call.Args {
		if t := typeOf(s.pkg.Info, arg); t != nil && isMutableRef(t) && s.evalOwn(arg) == pwShared {
			s.violate(call.Pos(), "worker passes shared %s to external %s", nodeText(arg), key)
			return
		}
	}
}

// isMutableRef limits the external-callee argument check to carriers a
// callee could write through (interfaces and funcs excluded: too noisy
// for error/fmt-style plumbing, and internal callees dominate here).
func isMutableRef(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// litAssignedInBody reports whether obj is bound to a func literal
// somewhere inside the scanned body (its writes were scanned in place).
func (s *pwScan) litAssignedInBody(obj types.Object) bool {
	found := false
	ast.Inspect(s.node, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || s.pkg.Info.ObjectOf(id) != obj || i >= len(as.Rhs) {
				continue
			}
			if _, isLit := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); isLit {
				found = true
			}
		}
		return true
	})
	return found
}

func (s *pwScan) checkBuiltin(name string, call *ast.CallExpr) {
	switch name {
	case "append":
		if len(call.Args) > 0 && s.evalOwn(call.Args[0]) == pwShared {
			s.violate(call.Pos(), "worker appends to shared slice %s", nodeText(call.Args[0]))
		}
	case "copy":
		if len(call.Args) > 0 && !owned(s.evalOwn(call.Args[0])) {
			s.violate(call.Pos(), "worker copies into shared slice %s", nodeText(call.Args[0]))
		}
	case "delete":
		if len(call.Args) > 0 && !owned(s.evalOwn(call.Args[0])) {
			s.violate(call.Pos(), "worker deletes from shared map %s", nodeText(call.Args[0]))
		}
	}
}

// argOwns evaluates the ownership context a call hands its callee.
func (s *pwScan) argOwns(sig *types.Signature, call *ast.CallExpr) []pwOwn {
	n := sig.Params().Len()
	owns := make([]pwOwn, n)
	for i := 0; i < n; i++ {
		pt := sig.Params().At(i).Type()
		if sig.Variadic() && i == n-1 {
			// Join every argument feeding the variadic slot.
			own := pwNil
			for j := i; j < len(call.Args); j++ {
				own = pwJoin(own, s.argOwn(pt, call.Args[j]))
			}
			owns[i] = own
			continue
		}
		if i < len(call.Args) {
			owns[i] = s.argOwn(pt, call.Args[i])
		} else {
			owns[i] = pwShared
		}
	}
	return owns
}

// argOwn translates an argument's ownership into the callee's frame:
// references keep their ownership, integers keep chunkness, everything
// else arrives as a private copy.
func (s *pwScan) argOwn(paramType types.Type, arg ast.Expr) pwOwn {
	o := s.evalOwn(arg)
	if isAliasType(paramType) {
		return o
	}
	if isIntType(paramType) {
		if o == pwChunk {
			return pwChunk
		}
		return pwConst
	}
	return pwFresh
}
