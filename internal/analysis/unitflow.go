package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Unitflow is the interprocedural companion of unitcheck. Where
// unitcheck reads a unit only off an identifier's own suffix, unitflow
// *propagates* units through the program: a function that returns a
// kelvin value (named result `tK`, or a body whose every return path
// yields kelvin) stamps its callers' unsuffixed locals, struct-field
// reads carry the field's suffix through intermediate variables, and
// the facts cross call boundaries via bottom-up function summaries
// (summary.go). On top of the propagated facts it checks:
//
//   - call arguments whose *inferred* unit contradicts the parameter
//     suffix (x := AmbientK(); Reset(x) with Reset(tempC float64));
//   - assignments, compound assignments and keyed struct-literal fields
//     pairing a suffixed destination with a contradicting inferred unit;
//   - return statements contradicting the declared result unit (named
//     result suffix, or the function's own name suffix for single
//     results) — a check unitcheck does not perform at all;
//   - comparisons and additive arithmetic where only the *inferred*
//     units conflict.
//
// Anything unitcheck already reports from raw suffixes is skipped here,
// so the two passes never double-report one mistake. Propagation is a
// forward dataflow (dataflow.go) over each function's CFG, so units
// survive loops and branches; joins of contradictory inferences resolve
// to a conflict sentinel that silences (never invents) diagnostics.
var Unitflow = &Analyzer{
	Name:         "unitflow",
	Doc:          "propagates units across calls, fields and locals; flags cross-call unit contradictions",
	Run:          runUnitflow,
	NeedsProgram: true,
}

// unitEnv maps local objects (unsuffixed variables) to inferred units.
type unitEnv map[types.Object]*unitInfo

func cloneUnitEnv(e unitEnv) unitEnv {
	c := make(unitEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// joinUnitEnv merges src into dst; a variable known on one path only
// keeps its unit (optimistic), contradictions become the conflict
// sentinel.
func joinUnitEnv(dst, src unitEnv) (unitEnv, bool) {
	changed := false
	for k, sv := range src {
		dv, ok := dst[k]
		j := joinUnit(dv, sv)
		if !ok || j != dv {
			dst[k] = j
			changed = true
		}
	}
	return dst, changed
}

// unitFlow evaluates units with the full propagation context. pass and
// syn are nil while computing summaries (no reporting then).
type unitFlow struct {
	pkg  *Package
	prog *Program
	sums map[string]*unitSummary
	pass *Pass
	syn  *unitChecker
}

func (u *unitFlow) isFloat(e ast.Expr) bool {
	return isFloatType(typeOf(u.pkg.Info, e))
}

// isUnitBearing accepts both scalar floats and float vectors: a
// suffixed vector name (tempsC []float64) tags every element, so the
// IndexExpr and range rules need its unit too.
func (u *unitFlow) isUnitBearing(e ast.Expr) bool {
	t := typeOf(u.pkg.Info, e)
	if isFloatType(t) {
		return true
	}
	if t == nil {
		return false
	}
	switch v := t.Underlying().(type) {
	case *types.Slice:
		return isFloatType(v.Elem())
	case *types.Array:
		return isFloatType(v.Elem())
	}
	return false
}

// unitOf infers the unit of an expression using suffixes, the local
// environment, and callee summaries. Returns nil for unknown or
// conflicting inferences.
func (u *unitFlow) unitOf(env unitEnv, e ast.Expr) *unitInfo {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if u.isUnitBearing(e) {
			if s := suffixUnit(e.Name); s != nil {
				return s
			}
		}
		if obj := u.pkg.Info.ObjectOf(e); obj != nil {
			return knownUnit(env[obj])
		}
	case *ast.SelectorExpr:
		if u.isUnitBearing(e) {
			return suffixUnit(e.Sel.Name)
		}
	case *ast.IndexExpr:
		// An element of a suffixed vector carries the vector's unit:
		// m.blockTempC[i] is degrees Celsius.
		if u.isFloat(e) {
			return u.unitOf(env, e.X)
		}
	case *ast.CallExpr:
		units := u.callResultUnits(env, e)
		if len(units) == 1 {
			return knownUnit(units[0])
		}
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return u.unitOf(env, e.X)
		}
	case *ast.BinaryExpr:
		return u.binaryUnit(env, e)
	}
	return nil
}

// binaryUnit mirrors unitcheck's additive-unit logic over inferred
// units, including the ±273.15 Celsius↔Kelvin idiom.
func (u *unitFlow) binaryUnit(env unitEnv, e *ast.BinaryExpr) *unitInfo {
	if e.Op != token.ADD && e.Op != token.SUB {
		return nil
	}
	lu, ru := u.unitOf(env, e.X), u.unitOf(env, e.Y)
	if isKelvinOffset(e.Y) {
		return convertTemp(lu, e.Op)
	}
	if isKelvinOffset(e.X) && e.Op == token.ADD {
		return convertTemp(ru, e.Op)
	}
	switch {
	case lu != nil && ru != nil:
		if canonicalSuffix(lu.Suffix) == canonicalSuffix(ru.Suffix) {
			return lu
		}
		return nil
	case lu != nil:
		return lu
	default:
		return ru
	}
}

// callResultUnits resolves the units of a call's results: explicit
// result-name suffixes win, then the callee's body-inferred summary,
// then (for externals, matching unitcheck's convention) the callee
// name's own suffix on a single float result.
func (u *unitFlow) callResultUnits(env unitEnv, call *ast.CallExpr) []*unitInfo {
	fn := calleeFunc(u.pkg, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	n := sig.Results().Len()
	units := make([]*unitInfo, n)
	sum := u.sums[FuncKey(fn)]
	for i := 0; i < n; i++ {
		res := sig.Results().At(i)
		if !isFloatType(res.Type()) {
			continue
		}
		if s := suffixUnit(res.Name()); s != nil {
			units[i] = s
			continue
		}
		if sum != nil && i < len(sum.results) {
			units[i] = knownUnit(sum.results[i])
		}
		if units[i] == nil && n == 1 {
			units[i] = suffixUnit(fn.Name())
		}
	}
	return units
}

// declaredResultUnits returns the units a function's return statements
// must honour: named-result suffixes, or the function name's suffix for
// a single anonymous float result.
func declaredResultUnits(decl *ast.FuncDecl, sig *types.Signature) []*unitInfo {
	if sig == nil {
		return nil
	}
	n := sig.Results().Len()
	units := make([]*unitInfo, n)
	for i := 0; i < n; i++ {
		res := sig.Results().At(i)
		if !isFloatType(res.Type()) {
			continue
		}
		if s := suffixUnit(res.Name()); s != nil {
			units[i] = s
		} else if n == 1 && res.Name() == "" {
			units[i] = suffixUnit(decl.Name.Name)
		}
	}
	return units
}

// lhsUnit reads the authoritative unit of an assignment destination
// from its suffix (identifier, field selector, or indexed vector).
func (u *unitFlow) lhsUnit(e ast.Expr) *unitInfo {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if u.isUnitBearing(e) {
			return suffixUnit(e.Name)
		}
	case *ast.SelectorExpr:
		if u.isUnitBearing(e) {
			return suffixUnit(e.Sel.Name)
		}
	case *ast.IndexExpr:
		if u.isFloat(e) {
			return u.lhsUnit(e.X)
		}
	}
	return nil
}

// syntacticUnit is unitcheck's own inference; any diagnostic it could
// already derive is skipped by unitflow.
func (u *unitFlow) syntacticUnit(e ast.Expr) *unitInfo {
	if u.syn == nil {
		return nil
	}
	return u.syn.unitOf(e)
}

// reportf funnels diagnostics; nil pass (summary mode) drops them.
func (u *unitFlow) reportf(pos token.Pos, format string, args ...any) {
	if u.pass != nil {
		u.pass.Reportf(pos, format, args...)
	}
}

// checkFlowPair reports an inferred-unit contradiction on an assignment
// pair unless the purely syntactic facts already expose it.
func (u *unitFlow) checkFlowPair(env unitEnv, dst, rhs ast.Expr, verb string, report bool) {
	if !report {
		return
	}
	du := u.lhsUnit(dst)
	if du == nil {
		return
	}
	if u.syntacticUnit(rhs) != nil {
		return // unitcheck territory (it reports iff they mismatch)
	}
	ru := u.unitOf(env, rhs)
	if kind := mismatch(ru, du); kind != "" {
		u.reportf(rhs.Pos(), "%s mismatch: value inferred as %s (%s) %s %q (%s)",
			kind, ru.Name, ru.Suffix, verb, exprName(dst), du.Name)
	}
}

// checkCallArgs verifies each float argument's inferred unit against
// the parameter suffix, skipping anything unitcheck can see on its own.
func (u *unitFlow) checkCallArgs(env unitEnv, call *ast.CallExpr) {
	sig, ok := typeAsSignature(typeOf(u.pkg.Info, call.Fun))
	if !ok {
		return
	}
	np := sig.Params().Len()
	if np == 0 {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if pi >= np {
			if !sig.Variadic() {
				return
			}
			pi = np - 1
		}
		param := sig.Params().At(pi)
		ptype := param.Type()
		if sig.Variadic() && pi == np-1 {
			if sl, ok := ptype.(*types.Slice); ok {
				ptype = sl.Elem()
			}
		}
		if !isFloatType(ptype) {
			continue
		}
		pu := suffixUnit(param.Name())
		if pu == nil {
			continue
		}
		if u.syntacticUnit(arg) != nil {
			continue
		}
		au := u.unitOf(env, arg)
		if kind := mismatch(au, pu); kind != "" {
			u.reportf(arg.Pos(),
				"%s mismatch: argument inferred as %s (%s) passed to parameter %q of %s (%s)",
				kind, au.Name, au.Suffix, param.Name(), calleeName(call), pu.Name)
		}
	}
}

// checkExprTree walks an expression for calls (argument checks), keyed
// struct literals, and mixed-unit comparisons, without descending into
// function literals (their bodies are not this function's flow).
func (u *unitFlow) checkExprTree(env unitEnv, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			u.checkCallArgs(env, n)
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !u.isFloat(kv.Value) {
					continue
				}
				ku := suffixUnit(key.Name)
				if ku == nil || u.syntacticUnit(kv.Value) != nil {
					continue
				}
				vu := u.unitOf(env, kv.Value)
				if kind := mismatch(vu, ku); kind != "" {
					u.reportf(kv.Value.Pos(), "%s mismatch: value inferred as %s (%s) assigned to field %q (%s)",
						kind, vu.Name, vu.Suffix, key.Name, ku.Name)
				}
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				if isKelvinOffset(n.X) || isKelvinOffset(n.Y) {
					return true
				}
				ls, rs := u.syntacticUnit(n.X), u.syntacticUnit(n.Y)
				if ls != nil && rs != nil {
					return true // fully visible to unitcheck
				}
				lu, ru := u.unitOf(env, n.X), u.unitOf(env, n.Y)
				if kind := mismatch(lu, ru); kind != "" {
					u.reportf(n.OpPos, "%s mismatch: inferred %s (%s) %s %s (%s) without conversion",
						kind, lu.Name, lu.Suffix, n.Op, ru.Name, ru.Suffix)
				}
			}
		}
		return true
	})
}

// bindIdent updates the environment for an assignment to an identifier.
// Suffixed names are authoritative (never tracked); unsuffixed float
// locals adopt the right-hand side's inferred unit.
func (u *unitFlow) bindIdent(env unitEnv, id *ast.Ident, unit *unitInfo) {
	obj := u.pkg.Info.ObjectOf(id)
	if obj == nil || id.Name == "_" {
		return
	}
	if suffixUnit(id.Name) != nil && u.isFloat(id) {
		return
	}
	if unit == nil {
		delete(env, obj)
		return
	}
	env[obj] = unit
}

// applyStmt folds one simple statement into the environment, emitting
// diagnostics when report is set.
func (u *unitFlow) applyStmt(env unitEnv, s ast.Stmt, report bool, declared []*unitInfo) {
	if report {
		// Check calls/literals/comparisons inside the statement against
		// the environment as it stands *before* the statement executes.
		switch s := s.(type) {
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				u.checkExprTree(env, r)
			}
			for _, l := range s.Lhs {
				u.checkExprTree(env, l)
			}
		case *ast.ExprStmt:
			u.checkExprTree(env, s.X)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				u.checkExprTree(env, r)
			}
		case *ast.DeferStmt:
			u.checkExprTree(env, s.Call)
		case *ast.GoStmt:
			u.checkExprTree(env, s.Call)
		case *ast.SendStmt:
			u.checkExprTree(env, s.Value)
		case *ast.IfStmt, *ast.ForStmt: // handled via Cond on the block
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							u.checkExprTree(env, v)
						}
					}
				}
			}
		}
	}

	switch s := s.(type) {
	case *ast.AssignStmt:
		u.applyAssign(env, s, report)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Names) != len(vs.Values) {
				continue
			}
			for i, name := range vs.Names {
				ru := u.unitOf(env, vs.Values[i])
				u.checkFlowPair(env, name, vs.Values[i], "initialises", report)
				u.bindIdent(env, name, ru)
			}
		}
	case *ast.ReturnStmt:
		if report && declared != nil && len(s.Results) == len(declared) {
			for i, r := range s.Results {
				du := declared[i]
				if du == nil {
					continue
				}
				ru := u.unitOf(env, r)
				if kind := mismatch(ru, du); kind != "" {
					u.reportf(r.Pos(), "%s mismatch: returning %s (%s) from a function declared to return %s",
						kind, ru.Name, ru.Suffix, du.Name)
				}
			}
		}
	}
}

func (u *unitFlow) applyAssign(env unitEnv, a *ast.AssignStmt, report bool) {
	switch a.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(a.Lhs) == len(a.Rhs) {
			for i := range a.Lhs {
				ru := u.unitOf(env, a.Rhs[i])
				u.checkFlowPair(env, a.Lhs[i], a.Rhs[i], "assigned to", report)
				if id, ok := ast.Unparen(a.Lhs[i]).(*ast.Ident); ok {
					u.bindIdent(env, id, ru)
				}
			}
			return
		}
		// Tuple assignment from one call: distribute the result units.
		if len(a.Rhs) == 1 {
			if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
				units := u.callResultUnits(env, call)
				for i, l := range a.Lhs {
					if i >= len(units) {
						break
					}
					ru := knownUnit(units[i])
					if report {
						if du := u.lhsUnit(l); du != nil {
							if kind := mismatch(ru, du); kind != "" {
								u.reportf(l.Pos(), "%s mismatch: result %d of %s inferred as %s (%s) assigned to %q (%s)",
									kind, i, calleeName(call), ru.Name, ru.Suffix, exprName(l), du.Name)
							}
						}
					}
					if id, ok := ast.Unparen(l).(*ast.Ident); ok {
						u.bindIdent(env, id, ru)
					}
				}
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(a.Lhs) == 1 && len(a.Rhs) == 1 {
			u.checkFlowPair(env, a.Lhs[0], a.Rhs[0], "accumulated into", report)
		}
	}
}

// applyBlock folds a CFG block: statements, then the range binding,
// then checks inside the branch condition.
func (u *unitFlow) applyBlock(env unitEnv, b *Block, report bool, declared []*unitInfo) {
	for _, s := range b.Stmts {
		u.applyStmt(env, s, report, declared)
	}
	if b.Range != nil {
		// for k, v := range m.tempsC — the element carries the vector's unit.
		if report {
			u.checkExprTree(env, b.Range.X)
		}
		eu := u.unitOf(env, b.Range.X)
		if v, ok := b.Range.Value.(*ast.Ident); ok && v != nil {
			u.bindIdent(env, v, eu)
		}
		if k, ok := b.Range.Key.(*ast.Ident); ok && k != nil && b.Range.Value == nil {
			// `for i := range xs` binds an index: no unit.
			u.bindIdent(env, k, nil)
		}
	}
	if b.Cond != nil && report {
		u.checkExprTree(env, b.Cond)
	}
}

// flowFunction runs the engine over one function and returns per-block
// entry environments.
func (u *unitFlow) flowFunction(fn *FlowFunc, declared []*unitInfo) map[*Block]unitEnv {
	eng := &Dataflow[unitEnv]{
		CFG:    fn.CFG(),
		Bottom: func() unitEnv { return unitEnv{} },
		Clone:  cloneUnitEnv,
		Join:   joinUnitEnv,
		Transfer: func(b *Block, env unitEnv) unitEnv {
			u.applyBlock(env, b, false, declared)
			return env
		},
	}
	return eng.Forward()
}

// updateUnitSummary recomputes one function's result units from its
// body, reporting whether the summary changed (the SCC fixpoint bit).
func updateUnitSummary(p *Program, fn *FlowFunc, sums map[string]*unitSummary) bool {
	sum := sums[fn.Key]
	if len(sum.results) == 0 {
		return false
	}
	u := &unitFlow{pkg: fn.Pkg, prog: p, sums: sums}
	in := u.flowFunction(fn, nil)

	next := make([]*unitInfo, len(sum.results))
	// Explicit result-name suffixes are authoritative.
	for i := 0; i < fn.Sig.Results().Len(); i++ {
		res := fn.Sig.Results().At(i)
		if isFloatType(res.Type()) {
			if s := suffixUnit(res.Name()); s != nil {
				next[i] = s
			}
		}
	}
	for _, b := range fn.CFG().Blocks {
		env := cloneUnitEnv(in[b])
		for _, s := range b.Stmts {
			if ret, ok := s.(*ast.ReturnStmt); ok && len(ret.Results) == len(next) {
				for i, r := range ret.Results {
					if next[i] != nil && suffixUnit(fn.Sig.Results().At(i).Name()) != nil {
						continue // name wins
					}
					next[i] = joinUnit(next[i], u.unitOf(env, r))
				}
			}
			u.applyStmt(env, s, false, nil)
		}
	}
	changed := false
	for i := range next {
		j := joinUnit(sum.results[i], next[i])
		if j != sum.results[i] {
			sum.results[i] = j
			changed = true
		}
	}
	return changed
}

func runUnitflow(p *Pass) {
	if p.Program == nil || allowedBy(p.Config.Unitflow.Allow, p.ImportPath) {
		return
	}
	sums := p.Program.UnitSummaries()
	var pkg *Package
	for _, candidate := range p.Program.Pkgs {
		if candidate.ImportPath == p.ImportPath {
			pkg = candidate
			break
		}
	}
	if pkg == nil {
		return
	}
	for _, fn := range packageFuncs(p.Program, pkg) {
		u := &unitFlow{pkg: pkg, prog: p.Program, sums: sums, pass: p, syn: &unitChecker{pass: p}}
		declared := declaredResultUnits(fn.Decl, fn.Sig)
		in := u.flowFunction(fn, declared)
		for _, b := range fn.CFG().Blocks {
			env := cloneUnitEnv(in[b])
			u.applyBlock(env, b, true, declared)
		}
	}
}

// packageFuncs returns the program's functions declared in pkg, in
// source order (deterministic diagnostics).
func packageFuncs(prog *Program, pkg *Package) []*FlowFunc {
	var out []*FlowFunc
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.ObjectOf(fd.Name).(*types.Func)
			if obj == nil {
				continue
			}
			if fn := prog.Funcs[FuncKey(obj)]; fn != nil && fn.Decl == fd {
				out = append(out, fn)
			}
		}
	}
	return out
}
