package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Aliascheck polices the Runner-style scratch-buffer discipline of the
// simulation packages: hot loops reuse the same backing arrays every
// substep (sim.Runner.blockPower, masks, ...), so an exported method that
// returns or stores a reference to such a receiver-held slice or map hands
// its caller an alias that the next step silently rewrites. Flagged forms,
// in exported methods of the configured packages:
//
//   - returning a slice/map field of the receiver directly (return r.buf),
//     or one element deep (return r.masks[d]),
//   - returning a composite literal (or &literal) that carries such a
//     field in one of its elements,
//   - assigning such a field to a package-level variable or through a
//     parameter — the two stores that outlive the call.
//
// Copies are the approved idiom and stay silent: append([]T(nil), s...),
// copy into a caller-provided buffer, or any other derived value.
// Unexported helpers (e.g. Runner.buildMask) may alias freely —
// intra-package callers are expected to know the reuse contract.
var Aliascheck = &Analyzer{
	Name: "aliascheck",
	Doc:  "forbids exported methods from leaking references to receiver-held scratch slices/maps",
	Run:  runAliascheck,
}

func runAliascheck(p *Pass) {
	if !p.Config.aliascheckApplies(p.ImportPath) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || !fn.Name.IsExported() {
				continue
			}
			recv := receiverVar(p, fn)
			if recv == nil {
				continue
			}
			checkAliasFunc(p, fn, recv)
		}
	}
}

// receiverVar resolves the method receiver's object (nil for anonymous
// receivers, which cannot leak fields by name).
func receiverVar(p *Pass, fn *ast.FuncDecl) types.Object {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil
	}
	return p.Info.ObjectOf(fn.Recv.List[0].Names[0])
}

func checkAliasFunc(p *Pass, fn *ast.FuncDecl, recv types.Object) {
	params := make(map[types.Object]bool)
	if fn.Type.Params != nil {
		for _, fld := range fn.Type.Params.List {
			for _, name := range fld.Names {
				params[p.Info.ObjectOf(name)] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures have their own call boundary; returns inside them do
			// not return from the exported method.
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				checkAliasReturn(p, fn, recv, res)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				leak := aliasedField(p, recv, n.Rhs[i])
				if leak == "" {
					continue
				}
				root := rootObj(p, lhs)
				if root == nil || root == recv {
					continue
				}
				if params[root] || isPackageLevel(p, root) {
					p.Reportf(n.Pos(), "%s stores scratch field %s outside the receiver: the alias outlives the call and the next step rewrites it; store a copy (append([]T(nil), s...))",
						fn.Name.Name, leak)
				}
			}
		}
		return true
	})
}

func checkAliasReturn(p *Pass, fn *ast.FuncDecl, recv types.Object, res ast.Expr) {
	if leak := aliasedField(p, recv, res); leak != "" {
		p.Reportf(res.Pos(), "exported method %s returns a reference to scratch field %s: callers alias a reused buffer; return a copy (append([]T(nil), s...))",
			fn.Name.Name, leak)
		return
	}
	// Composite results (Result{Data: r.buf}, &Result{...}) leak just as
	// directly through their elements.
	e := ast.Unparen(res)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return
	}
	for _, el := range cl.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if leak := aliasedField(p, recv, v); leak != "" {
			p.Reportf(v.Pos(), "exported method %s returns a composite carrying scratch field %s: callers alias a reused buffer; store a copy in the result",
				fn.Name.Name, leak)
		}
	}
}

// aliasedField reports the "recv.field" form when e is a direct reference
// to a slice- or map-typed field of the receiver, optionally through one
// index expression (r.masks[d]); "" otherwise. Anything derived — an
// append, a copy, a sub-slice of a fresh allocation — is not a direct
// reference and passes.
func aliasedField(p *Pass, recv types.Object, e ast.Expr) string {
	e = ast.Unparen(e)
	if !isRefType(p.TypeOf(e)) {
		return ""
	}
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || p.Info.ObjectOf(id) == nil || p.Info.ObjectOf(id) != recv {
		return ""
	}
	if _, isField := p.Info.ObjectOf(sel.Sel).(*types.Var); !isField {
		return "" // method value, not a field
	}
	return id.Name + "." + sel.Sel.Name
}

// isRefType reports whether t shares backing storage on assignment.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(p *Pass, obj types.Object) bool {
	return obj.Parent() == p.Pkg.Scope()
}
