package analysis

// lockorder — whole-repo lock-acquisition-order analysis (tgsync).
//
// The pass interprets every function body with the held-lock walker
// (syncutil.go), producing an edge A → B whenever lock class B is
// acquired — directly or through a callee's lock summary — while A is
// held. Edges over the analyzed package's dependency closure form the
// lock-acquisition graph; a strongly connected component with two or
// more classes (or a self-loop) is an ABBA deadlock candidate and is
// reported once, anchored at its lexically smallest edge, with the
// acquisition chain of every direction in the cycle.
//
// This is the pass that would have caught PR 9's requeue inversion:
// every admission path took Supervisor.mu before Job.mu, while requeue
// re-entered Supervisor.mu (through the sequence allocator) with Job.mu
// held. The documented handoff pattern — a callee releasing the
// caller's lock before taking another (classifyFailure) — is modeled by
// the summaries' must-released sets and does not produce edges.
//
// Exemptions: //sync:ordered <reason> on an acquisition or call site
// drops its edges (hierarchical same-class nesting such as sweep
// parent → child). Malformed //sync: directives of any kind are
// reported here, once per package, for the whole family.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

var Lockorder = &Analyzer{
	Name:         "lockorder",
	Doc:          "detect lock-acquisition-order cycles (ABBA deadlocks) across the repo",
	Run:          runLockorder,
	NeedsProgram: true,
}

// lockEdge is one observed ordering: `to` acquired while `from` held.
type lockEdge struct {
	from, to string
	pkgPath  string
	pos      token.Pos      // site in its owning package's file set
	posn     token.Position // the same, resolved
	heldAt   string         // where `from` was acquired (short form)
	via      string         // " via <callee>" for summary-mediated edges
}

func runLockorder(pass *Pass) {
	// Malformed //sync: directives surface here, once per package.
	_, bad := buildSyncAnns(pass.Fset, pass.Files, "lockorder")
	pass.diags = append(pass.diags, bad...)

	cfg := pass.Config
	if allowedBy(cfg.Tgsync.Allow, pass.ImportPath) {
		return
	}
	prog := pass.Program
	pkg := prog.pkgByPath(pass.ImportPath)
	if pkg == nil {
		return
	}

	// The graph is assembled from the package's dependency closure, the
	// exact set an incremental run loads: Go imports are acyclic, so a
	// cross-package cycle is always visible from the package owning the
	// downstream edge, and full and incremental runs see the same graph.
	sums := prog.LockSummaries()
	anns := syncAnns(prog)
	closure := depClosure(pkg)
	var edges []*lockEdge
	for _, dep := range prog.Pkgs {
		if dep != pkg && !closure[dep.ImportPath] {
			continue
		}
		collectLockEdges(prog, dep, sums, anns, &edges)
	}
	if len(edges) == 0 {
		return
	}

	// Keep the lexically smallest edge per direction.
	best := map[[2]string]*lockEdge{}
	for _, e := range edges {
		k := [2]string{e.from, e.to}
		if cur := best[k]; cur == nil || posKey(e.posn) < posKey(cur.posn) {
			best[k] = e
		}
	}

	for _, scc := range lockSCCs(best) {
		reportLockCycle(pass, scc, best)
	}
}

// collectLockEdges walks one package's units and appends every ordering
// edge observed in them.
func collectLockEdges(prog *Program, dep *Package, sums map[string]lockSummary, anns parAnnIndex, edges *[]*lockEdge) {
	for _, u := range syncUnits(dep) {
		walkHeld(dep, u, &syncVisitor{
			acquire: func(class string, op lockOp, call *ast.CallExpr, st *heldState) {
				posn := dep.Fset.Position(call.Pos())
				if anns.covered("ordered", posn) {
					return
				}
				for held, info := range st.held {
					*edges = append(*edges, &lockEdge{
						from: held, to: class, pkgPath: dep.ImportPath,
						pos: call.Pos(), posn: posn,
						heldAt: shortPos(dep.Fset.Position(info.pos)),
					})
				}
			},
			call: func(call *ast.CallExpr, st *heldState) {
				if len(st.held) == 0 {
					return
				}
				callee := calleeFunc(dep, call)
				if callee == nil {
					return
				}
				cs := sums[FuncKey(callee)]
				if len(cs) == 0 {
					return
				}
				posn := dep.Fset.Position(call.Pos())
				if anns.covered("ordered", posn) {
					return
				}
				for class, acq := range cs {
					for held, info := range st.held {
						if acq.released[held] || st.released[held] {
							continue // handoff: the held lock is released first
						}
						*edges = append(*edges, &lockEdge{
							from: held, to: class, pkgPath: dep.ImportPath,
							pos: call.Pos(), posn: posn,
							heldAt: shortPos(dep.Fset.Position(info.pos)),
							via:    " via " + displayClass(FuncKey(callee)),
						})
					}
				}
			},
		})
	}
}

// lockSCCs runs Tarjan over the edge map's lock classes and returns the
// components that contain a cycle (≥2 nodes, or a self-loop), each as a
// sorted class list.
func lockSCCs(best map[[2]string]*lockEdge) [][]string {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for k := range best {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	keys := make([]string, 0, len(nodes))
	for n := range nodes {
		keys = append(keys, n)
	}
	sort.Strings(keys)
	for _, succs := range adj {
		sort.Strings(succs)
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var out [][]string

	var connect func(v string)
	connect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				connect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			if len(scc) > 1 || best[[2]string{v, v}] != nil {
				out = append(out, scc)
			}
		}
	}
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			connect(k)
		}
	}
	return out
}

// reportLockCycle emits one diagnostic for a cyclic component, anchored
// at its lexically smallest internal edge — only when that edge belongs
// to the package under analysis, so a cycle shared by several packages'
// closures is reported exactly once repo-wide.
func reportLockCycle(pass *Pass, scc []string, best map[[2]string]*lockEdge) {
	in := map[string]bool{}
	for _, c := range scc {
		in[c] = true
	}
	var internal []*lockEdge
	for k, e := range best {
		if in[k[0]] && in[k[1]] {
			internal = append(internal, e)
		}
	}
	sort.Slice(internal, func(i, j int) bool {
		a, b := internal[i], internal[j]
		if pk := posKey(a.posn); pk != posKey(b.posn) {
			return pk < posKey(b.posn)
		}
		return a.from+a.to < b.from+b.to
	})
	anchor := internal[0]
	if anchor.pkgPath != pass.ImportPath {
		return
	}

	if len(scc) == 1 {
		c := displayClass(scc[0])
		pass.Reportf(anchor.pos,
			"lock-order cycle: %s is acquired at %s%s while an instance is already held (since %s); nested same-class locking needs a //sync:ordered annotation",
			c, shortPos(anchor.posn), anchor.via, anchor.heldAt)
		return
	}

	var chains []string
	for _, e := range internal {
		chains = append(chains, fmt.Sprintf("%s -> %s (%s held since %s, %s acquired at %s%s)",
			displayClass(e.from), displayClass(e.to),
			displayClass(e.from), e.heldAt,
			displayClass(e.to), shortPos(e.posn), e.via))
	}
	names := make([]string, len(scc))
	for i, c := range scc {
		names[i] = displayClass(c)
	}
	pass.Reportf(anchor.pos, "lock-order cycle between %s: %s",
		strings.Join(names, " and "), strings.Join(chains, "; "))
}
