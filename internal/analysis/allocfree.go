package analysis

// allocfree — the tgperf allocation pass. Every heap-allocating
// construct inside the hot set (see perfutil.go) is classified on the
// escape lattice:
//
//	StackLocal    value composite literals and plain value declarations:
//	              no heap traffic, never reported;
//	ReusedScratch makes guarded by `x == nil` / `cap(x) < n`, appends
//	              into a `x[:0]` reslice-reset, and //perf:alloc-
//	              annotated cache-miss paths: amortized to zero in
//	              steady state, never reported;
//	Escapes       everything else — bare make/new, &composite literals,
//	              slice/map literals, unbounded appends, closure
//	              creation, string concatenation, fmt.* calls, and
//	              interface boxing of scalars — reported.
//
// Blocks that end in an error return or panic are cold (they run once,
// not per epoch) and are exempt, as are statically-dead branches such
// as release-build `if invariant.Enabled` guards. The dynamic
// AllocsPerRun gate in internal/sim/alloc_test.go cross-checks the
// static claim at runtime.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var Allocfree = &Analyzer{
	Name:         "allocfree",
	Doc:          "heap-allocating constructs in the steady-state hot set",
	NeedsProgram: true,
	Run:          runAllocfree,
}

func runAllocfree(pass *Pass) {
	anns, bad := buildPerfAnns(pass.Fset, pass.Files, pass.Analyzer.Name)
	pass.diags = append(pass.diags, bad...)

	target := pass.Program.pkgByPath(pass.ImportPath)
	if target == nil {
		return
	}
	hot := buildHotSet(pass.Program, pass.Config, target)
	seen := make(map[string]bool)
	for _, key := range sortedHotKeys(hot) {
		e := hot[key]
		if e.pkg != target || hotEntryExempt(pass.Fset, anns, e, "alloc") {
			continue
		}
		scanHot(e.pkg.Info, e.body(), func(n ast.Node, ctx *hotCtx) bool {
			allocCheck(pass, anns, e, n, ctx, seen)
			return true
		})
	}
}

// allocCheck classifies one node of a hot body and reports the Escapes
// tier.
func allocCheck(pass *Pass, anns parAnnIndex, e *hotEntry, n ast.Node, ctx *hotCtx, seen map[string]bool) {
	info := e.pkg.Info
	flag := func(pos token.Pos, msg string) {
		if ctx.cold || ctx.exempt[n] {
			return
		}
		p := pass.Fset.Position(pos)
		if anns.covered("alloc", p) {
			return
		}
		key := p.String() + "|" + msg
		if seen[key] {
			return
		}
		seen[key] = true
		pass.Reportf(pos, "hot-path allocation (reachable from %s): %s — hoist into reused scratch or annotate //perf:alloc <reason>", e.root, msg)
	}

	switch n := n.(type) {
	case *ast.CallExpr:
		if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
			ctx.exempt[lit] = true // immediately invoked: no closure object
		}
		switch {
		case isBuiltinCall(info, n, "make"):
			flag(n.Pos(), "make allocates per call")
		case isBuiltinCall(info, n, "new"):
			flag(n.Pos(), "new allocates per call")
		case isBuiltinCall(info, n, "append"):
			if len(n.Args) > 0 && isZeroReslice(n.Args[0]) {
				return // append(x[:0], ...): ReusedScratch
			}
			if len(n.Args) > 0 && ctx.scratch[types.ExprString(ast.Unparen(n.Args[0]))] {
				return
			}
			flag(n.Pos(), "append may grow its backing array")
		default:
			if fn := calleeFunc(e.pkg, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				flag(n.Pos(), "fmt."+fn.Name()+" allocates")
				return
			}
			boxCheckArgs(e, n, flag)
		}
	case *ast.FuncLit:
		flag(n.Pos(), "func literal allocates a closure per evaluation")
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				flag(n.Pos(), "&composite literal escapes to the heap")
			}
		}
	case *ast.CompositeLit:
		if t := typeOf(info, n); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				flag(n.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				flag(n.Pos(), "map literal allocates")
			}
		}
	case *ast.BinaryExpr:
		if n.Op != token.ADD {
			return
		}
		if tv, ok := info.Types[n]; ok && tv.Value == nil && tv.Type != nil {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				flag(n.Pos(), "string concatenation allocates")
			}
		}
	}
}

// boxCheckArgs reports scalar arguments boxed into interface
// parameters at a hot call site.
func boxCheckArgs(e *hotEntry, call *ast.CallExpr, flag func(token.Pos, string)) {
	info := e.pkg.Info
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsType() {
		// Conversion: T(x) boxes when T is an interface and x a scalar.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && isScalar(typeOf(info, call.Args[0])) {
			flag(call.Pos(), "conversion boxes a scalar into an interface")
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos || sig.Params().Len() == 0 {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) && isScalar(typeOf(info, arg)) {
			flag(arg.Pos(), "argument boxes a scalar into an interface parameter")
		}
	}
}

// isScalar reports whether t is a basic (numeric, bool, string) type —
// the values whose interface conversion allocates a box.
func isScalar(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() != types.UntypedNil && b.Kind() != types.Invalid
}
