package analysis

// Fixture harness in the spirit of golang.org/x/tools' analysistest:
// each fixture package under testdata/src/ annotates every expected
// diagnostic with a trailing
//
//	// want "substring"
//
// comment (several per line allowed). A fixture test fails when an
// analyzer misses a want (the seeded violation did not fire), fires on
// a line with no matching want (false positive), or fires through a
// //lint:ignore suppression.

import (
	"strings"
	"testing"
)

// loadFixture loads one fixture package by its path below testdata/src.
func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	pkgs, err := Load(".", []string{"./testdata/src/" + rel})
	if err != nil {
		t.Fatalf("load fixture %s: %v", rel, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", rel, len(pkgs))
	}
	if len(pkgs[0].TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", rel, pkgs[0].TypeErrors)
	}
	return pkgs[0]
}

// wantKey addresses one fixture line.
type wantKey struct {
	file string
	line int
}

// collectWants parses the fixture's "// want" annotations.
func collectWants(pkg *Package) map[wantKey][]string {
	wants := make(map[wantKey][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				parts := strings.Split(text[len("want "):], `"`)
				for i := 1; i < len(parts); i += 2 {
					wants[key] = append(wants[key], parts[i])
				}
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over a fixture and reconciles the
// diagnostics against the want annotations.
func checkFixture(t *testing.T, a *Analyzer, rel string) {
	t.Helper()
	pkg := loadFixture(t, rel)
	wants := collectWants(pkg)
	diags := Run([]*Package{pkg}, []*Analyzer{a}, DefaultConfig())

	matched := make(map[wantKey][]bool)
	for k, w := range wants {
		matched[k] = make([]bool, len(w))
	}
	for _, d := range diags {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		ok := false
		for i, w := range wants[key] {
			if !matched[key][i] && strings.Contains(d.Message, w) {
				matched[key][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, w := range wants {
		for i, m := range matched[key] {
			if !m {
				t.Errorf("%s:%d: analyzer %s never fired; want a diagnostic containing %q",
					key.file, key.line, a.Name, w[i])
			}
		}
	}
}

// checkMalformedDirectives runs one annotation-bearing analyzer over a
// baddir fixture that seeds exactly two broken directives — an unknown
// kind and a reason-less one. The want harness cannot annotate
// comment-only lines, so the two diagnostics get asserted directly:
// unknownMsg for the bad kind, the shared mandatory-reason message for
// the other, and nothing else.
func checkMalformedDirectives(t *testing.T, a *Analyzer, rel, unknownMsg string) {
	t.Helper()
	pkg := loadFixture(t, rel)
	diags := Run([]*Package{pkg}, []*Analyzer{a}, DefaultConfig())
	var unknown, noReason bool
	for _, d := range diags {
		if strings.Contains(d.Message, unknownMsg) {
			unknown = true
		}
		if strings.Contains(d.Message, "a reason is mandatory") {
			noReason = true
		}
	}
	if !unknown || !noReason {
		t.Fatalf("malformed directives not reported (unknown=%v noReason=%v): %v", unknown, noReason, diags)
	}
	if len(diags) != 2 {
		t.Fatalf("want exactly 2 directive diagnostics, got %d: %v", len(diags), diags)
	}
}
