package analysis

// cfg.go — per-function control-flow graphs for the tgflow engine.
//
// A CFG is a list of basic blocks of *simple* statements: compound
// statements never appear in Block.Stmts. Branch points keep their
// interesting sub-parts on the block instead — an if/for/switch
// condition in Block.Cond, a range loop's binding in Block.Range — so a
// dataflow transfer function can walk Stmts, then Cond/Range, without
// ever recursing into a nested body (the bodies are blocks of their
// own, wired up through Succs).
//
// The builder covers the full statement grammar the simulator uses:
// if/else chains, for and range loops (with break/continue, labeled or
// not), expression and type switches with fallthrough, select, goto,
// and labeled statements. Unreachable code after a return or jump
// still gets a block (kind "dead", no predecessors) so passes can
// analyze it rather than silently skip it.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block and Blocks[1] the (always empty) exit block; every return
// statement and the fall-off end of the body link to the exit.
type CFG struct {
	Name   string
	Blocks []*Block
}

// Block is one basic block.
type Block struct {
	Index int
	Kind  string // entry, exit, body, if.then, for.head, case, dead, ...

	// Stmts holds the block's simple statements in execution order.
	Stmts []ast.Stmt
	// Cond is the branch condition terminating the block (if/for/switch
	// tag), or nil. Evaluated after Stmts.
	Cond ast.Expr
	// Range is set on range-loop header blocks: the loop binding
	// (Key/Value := range X) executes here on every iteration.
	Range *ast.RangeStmt

	Succs []*Block
}

// Entry and Exit return the distinguished blocks.
func (c *CFG) Entry() *Block { return c.Blocks[0] }
func (c *CFG) Exit() *Block  { return c.Blocks[1] }

// BuildCFG constructs the CFG of a function declaration. A nil or
// body-less declaration yields a two-block (entry→exit) graph.
func BuildCFG(decl *ast.FuncDecl) *CFG {
	name := "func"
	if decl != nil && decl.Name != nil {
		name = decl.Name.Name
	}
	b := &cfgBuilder{cfg: &CFG{Name: name}, labels: map[string]*cfgLabel{}}
	entry := b.newBlock("entry")
	b.exit = b.newBlock("exit")
	b.cur = entry
	if decl != nil && decl.Body != nil {
		b.stmtList(decl.Body.List)
	}
	if b.cur != nil {
		b.link(b.cur, b.exit)
	}
	return b.cfg
}

// cfgLabel tracks one label's blocks: the goto/entry target, plus the
// break and continue destinations when the labeled statement is a loop
// or switch.
type cfgLabel struct {
	target     *Block
	breakTo    *Block
	continueTo *Block
}

type cfgBuilder struct {
	cfg  *CFG
	cur  *Block // nil after an unconditional jump
	exit *Block

	breaks    []*Block // innermost-last break targets
	continues []*Block // innermost-last continue targets
	labels    map[string]*cfgLabel

	// pendingLabel is the label naming the *next* loop/switch statement,
	// so `outer: for ...` registers outer's break/continue targets.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// block returns the current block, resurrecting a fresh "dead" block
// when the previous one ended in an unconditional jump.
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	return b.cur
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// labelFor returns the goto/entry block for a label, creating it on
// first reference (forward gotos).
func (b *cfgBuilder) labelFor(name string) *cfgLabel {
	l, ok := b.labels[name]
	if !ok {
		l = &cfgLabel{target: b.newBlock("label." + name)}
		b.labels[name] = l
	}
	return l
}

// pushLoop registers break/continue targets, wiring them to the pending
// label when the construct is labeled.
func (b *cfgBuilder) pushLoop(breakTo, continueTo *Block) {
	b.breaks = append(b.breaks, breakTo)
	b.continues = append(b.continues, continueTo)
	if b.pendingLabel != "" {
		l := b.labelFor(b.pendingLabel)
		l.breakTo = breakTo
		l.continueTo = continueTo
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.switchBody(s.Tag, nil, s.Body, "case")

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.switchBody(nil, s.Assign, s.Body, "typecase")

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.LabeledStmt:
		l := b.labelFor(s.Label.Name)
		b.link(b.block(), l.target)
		b.cur = l.target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ReturnStmt:
		blk := b.block()
		blk.Stmts = append(blk.Stmts, s)
		b.link(blk, b.exit)
		b.cur = nil

	default:
		// Simple statements: assignments, declarations, expression and
		// send statements, defer, go, inc/dec, empty.
		b.block().Stmts = append(b.block().Stmts, s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.block()
	head.Cond = s.Cond
	then := b.newBlock("if.then")
	b.link(head, then)
	join := b.newBlock("if.join")

	b.cur = then
	b.stmt(s.Body)
	if b.cur != nil {
		b.link(b.cur, join)
	}

	if s.Else != nil {
		els := b.newBlock("if.else")
		b.link(head, els)
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.link(b.cur, join)
		}
	} else {
		b.link(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.link(b.block(), head)
	head.Cond = s.Cond

	exit := b.newBlock("for.exit")
	if s.Cond != nil {
		b.link(head, exit)
	}

	body := b.newBlock("for.body")
	b.link(head, body)

	// The continue target is the post-statement block when there is one.
	latch := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Stmts = append(post.Stmts, s.Post)
		b.link(post, head)
		latch = post
	}

	b.pushLoop(exit, latch)
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.link(b.cur, latch)
	}
	b.popLoop()
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	head := b.newBlock("range.head")
	b.link(b.block(), head)
	head.Range = s

	exit := b.newBlock("range.exit")
	b.link(head, exit)
	body := b.newBlock("range.body")
	b.link(head, body)

	b.pushLoop(exit, head)
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.link(b.cur, head)
	}
	b.popLoop()
	b.cur = exit
}

// switchBody wires an expression or type switch: the header block
// branches to every case, cases link to the join, and fallthrough
// links a case body to the next case's block.
func (b *cfgBuilder) switchBody(tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, kind string) {
	head := b.block()
	head.Cond = tag
	if assign != nil {
		head.Stmts = append(head.Stmts, assign)
	}
	join := b.newBlock("switch.join")

	// Create all case blocks first so fallthrough can target the next.
	var clauses []*ast.CaseClause
	var blocks []*Block
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clauses = append(clauses, cc)
		blk := b.newBlock(kind)
		b.link(head, blk)
		blocks = append(blocks, blk)
	}
	if !hasDefault {
		b.link(head, join)
	}

	b.pushLoop(join, b.currentContinue())
	for i, cc := range clauses {
		b.cur = blocks[i]
		// fallthrough is only legal as the final statement; detect it so
		// the tail edge goes to the next case instead of the join.
		list := cc.Body
		fallsTo := -1
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				list = list[:n-1]
				fallsTo = i + 1
			}
		}
		b.stmtList(list)
		if b.cur != nil {
			if fallsTo >= 0 && fallsTo < len(blocks) {
				b.link(b.cur, blocks[fallsTo])
			} else {
				b.link(b.cur, join)
			}
		}
	}
	b.popLoop()
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	head := b.block()
	join := b.newBlock("select.join")
	b.pushLoop(join, b.currentContinue())
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("comm")
		b.link(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.link(b.cur, join)
		}
	}
	b.popLoop()
	b.cur = join
}

// currentContinue returns the innermost continue target, or nil outside
// a loop (switch/select push it back unchanged so `continue` inside a
// case still reaches the enclosing loop).
func (b *cfgBuilder) currentContinue() *Block {
	if len(b.continues) == 0 {
		return nil
	}
	return b.continues[len(b.continues)-1]
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	blk := b.block()
	switch s.Tok {
	case token.BREAK:
		to := b.innermostBreak()
		if s.Label != nil {
			if l := b.labels[s.Label.Name]; l != nil && l.breakTo != nil {
				to = l.breakTo
			}
		}
		if to != nil {
			b.link(blk, to)
		}
		b.cur = nil
	case token.CONTINUE:
		to := b.currentContinue()
		if s.Label != nil {
			if l := b.labels[s.Label.Name]; l != nil && l.continueTo != nil {
				to = l.continueTo
			}
		}
		if to != nil {
			b.link(blk, to)
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil {
			b.link(blk, b.labelFor(s.Label.Name).target)
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by switchBody; a stray one (malformed code) is dropped.
	}
}

func (b *cfgBuilder) innermostBreak() *Block {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if b.breaks[i] != nil {
			return b.breaks[i]
		}
	}
	return nil
}

// String renders the CFG in a stable, human-diffable text form used by
// the golden-file tests:
//
//	b0 entry -> b2
//	b2 for.head [cond: i < n] -> b3 b4
//	  stmts...
func (c *CFG) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s\n", c.Name)
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d %s", blk.Index, blk.Kind)
		if blk.Cond != nil {
			fmt.Fprintf(&sb, " [cond: %s]", nodeText(blk.Cond))
		}
		if blk.Range != nil {
			fmt.Fprintf(&sb, " [range: %s]", nodeText(rangeBinding(blk.Range)))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
		for _, s := range blk.Stmts {
			fmt.Fprintf(&sb, "  %s\n", nodeText(s))
		}
	}
	return sb.String()
}

// rangeBinding renders only the binding part of a range statement.
func rangeBinding(r *ast.RangeStmt) ast.Node {
	return &ast.RangeStmt{Key: r.Key, Value: r.Value, Tok: r.Tok, X: r.X,
		Body: &ast.BlockStmt{}}
}

// nodeText prints a node compactly on one line, truncated for goldens.
func nodeText(n ast.Node) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), n)
	text := strings.Join(strings.Fields(buf.String()), " ")
	text = strings.TrimSuffix(text, "{ }")
	text = strings.TrimSpace(text)
	if len(text) > 72 {
		text = text[:69] + "..."
	}
	return text
}
