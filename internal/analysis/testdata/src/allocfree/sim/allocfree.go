// Package sim is a tglint fixture for the allocfree pass. The package
// base name matters: "sim" carries a default tgperf root, so
// (Runner).stepEpoch anchors the hot set here just like the real
// runner's per-epoch step. Each seeded violation sits next to a clean
// twin exercising one tier of the escape lattice: value composites are
// StackLocal, guarded makes and [:0] appends are ReusedScratch, and
// everything reported Escapes.
package sim

import (
	"fmt"

	"thermogater/internal/par"
)

type point struct{ x, y int }

type Runner struct {
	scratch []float64
	buf     []float64
	buf2    []float64
	out     []float64
	hist    []float64
	tmp     []float64
	lut     []float64
	cache   map[uint64][]float64
	worker  func(lo, hi int)
	name    string
	n       int
	bad     bool
}

// debugChecks mirrors invariant.Enabled in a release build: constant
// false, so guarded blocks are statically dead.
const debugChecks = false

// box takes any value; scalar arguments box at the call site.
func box(v any) any { return v }

// NewRunner is cold construction code: its own allocations are not
// findings, and the worker literal it stores in a field is resolved
// through the fan-out below and scanned as hot.
func NewRunner() *Runner {
	r := &Runner{cache: map[uint64][]float64{}}
	r.worker = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r.hist = append(r.hist, float64(i)) // want "append may grow"
		}
	}
	return r
}

// helper is hot only by reachability from stepEpoch.
func (r *Runner) helper() {
	r.tmp = make([]float64, 4) // want "make allocates"
}

// cached mirrors the pdn mask cache: the miss-path allocation is
// intentional and annotated, steady state always hits.
func (r *Runner) cached(k uint64) []float64 {
	if v, ok := r.cache[k]; ok {
		return v
	}
	v := make([]float64, r.n) //perf:alloc cache-miss path; steady state hits
	r.cache[k] = v
	return v
}

// emitRecord mirrors telemetry record emission: it allocates freely but
// only runs on instrumented runs, so the function-scope directive on the
// next line exempts the whole body from allocfree (not boxcheck).
//
//perf:alloc record emission runs only on instrumented runs
func (r *Runner) emitRecord() {
	r.tmp = make([]float64, r.n)
	_ = fmt.Sprintf("%d", r.n)
	_ = box(r.n)
}

func (r *Runner) stepEpoch(p *par.Pool) error {
	xs := make([]float64, 8) // want "make allocates"
	_ = xs
	q := new(point) // want "new allocates"
	_ = q

	// ReusedScratch: nil-guarded and cap-guarded makes, [:0] resets.
	if r.scratch == nil {
		r.scratch = make([]float64, 8)
	}
	if cap(r.buf2) < r.n {
		r.buf2 = make([]float64, 0, r.n)
	}
	r.buf = append(r.buf[:0], 1.0)

	r.out = append(r.out, 1) // want "append may grow"

	v := point{1, 2} // StackLocal: a value composite costs nothing
	_ = v
	pt := &point{1, 2} // want "&composite literal escapes"
	_ = pt
	ids := []int{1, 2} // want "slice literal allocates"
	_ = ids
	byName := map[string]int{"a": 1} // want "map literal allocates"
	_ = byName

	s := fmt.Sprintf("%d", r.n) // want "fmt.Sprintf allocates"
	_ = s
	msg := "domain " + r.name // want "string concatenation"
	_ = msg
	_ = box(r.n) // want "boxes a scalar"

	cb := func() { r.n++ } // want "closure"
	cb()
	func() { r.n-- }() // immediately invoked: no closure object

	p.For(4, r.worker)
	p.For(4, func(lo, hi int) { // want "closure"
		for i := lo; i < hi; i++ {
			r.scratch[i%8] = 0
		}
	})

	r.helper()
	_ = r.cached(3)
	r.emitRecord()

	//perf:alloc warm-up fill; reused every epoch after the first
	r.lut = make([]float64, 64)

	if debugChecks {
		big := make([]float64, 1<<16) // statically dead: never reported
		_ = big
	}

	if r.bad {
		// Cold block: ends by returning a non-nil error.
		return fmt.Errorf("runner %s broken", r.name)
	}
	return nil
}
