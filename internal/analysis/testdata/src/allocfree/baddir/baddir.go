// Package baddir seeds malformed //perf: directives; the dedicated
// test (not the want harness — these diagnostics land on comment-only
// lines) asserts allocfree reports both.
package baddir

//perf:speed this kind does not exist

//perf:alloc

var placeholder = 0
