// Package sim is a tglint fixture for detcheck. The directory is named
// "sim" so the default simulation-package list covers it.
package sim

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// Nondeterministic seeds one violation of every detcheck rule.
func Nondeterministic(weights map[string]float64) (float64, string) {
	t0 := time.Now()              // want "time.Now"
	r := rand.Float64()           // want "math/rand"
	mode := os.Getenv("SIM_MODE") // want "os.Getenv"

	var sum float64
	var last string
	for k, w := range weights {
		sum += w // want "floating-point accumulation"
		last = k // want "last-write-wins"
	}
	_ = t0
	_ = mode
	return sum + r, last
}

// SortedKeys is the approved collect-then-sort idiom: silent.
func SortedKeys(weights map[string]float64) []string {
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// UnsortedKeys drops the sort, leaving the append order-visible.
func UnsortedKeys(weights map[string]float64) []string {
	var keys []string
	for k := range weights {
		keys = append(keys, k) // want "append of map-iteration"
	}
	return keys
}

// Seeded generators and their methods are allowed.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Suppressed demonstrates an annotated wall-clock read.
func Suppressed() time.Time {
	//lint:ignore detcheck fixture demonstrates an annotated wall-clock read
	return time.Now()
}
