// Package pdn is a tglint fixture for invcheck. The directory is named
// "pdn" so the default entry-point table covers it: SteadyNoise,
// TransientWindow and BurstPeakPct must route through the invariant
// sanitizer.
package pdn

import "thermogater/internal/invariant"

// Network mimics the real PDN model.
type Network struct{ vdd float64 }

// SteadyNoise misses the sanitizer entirely.
func (n *Network) SteadyNoise(current []float64) float64 { // want "SteadyNoise does not route through the invariant sanitizer"
	var worst float64
	for _, c := range current {
		if d := 100 * c * 0.001 / n.vdd; d > worst {
			worst = d
		}
	}
	return worst
}

// TransientWindow reaches the sanitizer transitively through a helper.
func (n *Network) TransientWindow(cycles int) []float64 {
	out := make([]float64, cycles)
	n.sanitize(out)
	return out
}

func (n *Network) sanitize(vs []float64) {
	if invariant.Enabled {
		invariant.CheckFinite("pdn fixture", vs)
	}
}

// BurstPeakPct hooks the sanitizer directly.
func (n *Network) BurstPeakPct(steady, surge float64) float64 {
	peak := steady + surge
	invariant.CheckDroopPct("pdn fixture peak", peak)
	return peak
}

// EffectiveResistance is not a configured entry point: silent.
func (n *Network) EffectiveResistance() float64 { return 0.001 }
