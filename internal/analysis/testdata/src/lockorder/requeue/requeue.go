// Package requeue distills the supervisor/job ABBA inversion the retry
// path used to have: submit admits under s.mu then j.mu, while requeue
// re-admits under j.mu and calls back into a Supervisor method that
// takes s.mu. lockorder must report the cycle with BOTH chains — the
// direct nesting and the one routed through nextSeq — and must NOT drag
// the classify handoff into it (classify releases j.mu before taking
// s.mu, so must-release tracking erases that edge).
package requeue

import "sync"

type Supervisor struct {
	mu   sync.Mutex
	seq  int
	jobs map[int]*Job
}

type Job struct {
	mu sync.Mutex
	id int
	st string
}

// submit admits a job: s.mu guards the table, j.mu guards the state
// transition, giving the s.mu -> j.mu edge.
func (s *Supervisor) submit(j *Job) {
	s.mu.Lock()
	j.mu.Lock() // want "lock-order cycle"
	j.st = "queued"
	s.jobs[j.id] = j
	j.mu.Unlock()
	s.mu.Unlock()
}

// nextSeq allocates an ID under s.mu.
func (s *Supervisor) nextSeq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return s.seq
}

// requeue re-admits a failed job while still holding j.mu; the call
// into nextSeq closes the cycle with a j.mu -> s.mu edge.
func (s *Supervisor) requeue(j *Job) {
	j.mu.Lock()
	j.st = "queued"
	j.id = s.nextSeq()
	j.mu.Unlock()
}

// classify receives j.mu from run and releases it before touching s.mu:
// with must-release tracking this contributes NO j.mu -> s.mu edge.
func (s *Supervisor) classify(j *Job) {
	j.st = "failed"
	//sync:balanced run hands j.mu off; released here by contract
	j.mu.Unlock()
	s.mu.Lock()
	delete(s.jobs, j.id)
	s.mu.Unlock()
}

// run acquires j.mu and hands it to classify for release.
func (s *Supervisor) run(j *Job) {
	//sync:balanced classify releases j.mu on every path
	j.mu.Lock()
	j.st = "running"
	s.classify(j)
}
