// Package baddir seeds malformed //sync: directives; the dedicated test
// (not the want harness — these diagnostics land on comment-only lines)
// asserts lockorder reports both.
package baddir

//sync:sequential this kind does not exist

//sync:ordered

var placeholder = 0
