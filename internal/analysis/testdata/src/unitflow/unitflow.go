// Package unitflow is a tglint fixture for the interprocedural unit
// pass. Every violation here is INVISIBLE to plain unitcheck: the
// offending value always travels through at least one unsuffixed local
// or one call boundary, so only flow propagation can connect the unit
// at the source to the contradiction at the use.
package unitflow

// ambientK has a single anonymous float result, so its own name suffix
// declares the unit (matching unitcheck's callee-name convention).
func ambientK() float64 { return 300.0 }

// readTemp carries no suffix anywhere in its signature; its unit is
// inferred bottom-up from the body (every return path yields kelvin).
func readTemp() float64 {
	tempK := 300.0
	return tempK
}

// busW declares watts through its name.
func busW() float64 { return 1.5 }

// readMilli infers milliwatts from the returned local's suffix.
func readMilli() float64 {
	loadMW := 5.0
	return loadMW
}

func setTempC(tempC float64) float64 { return tempC }
func setTempK(tempK float64) float64 { return tempK }

// meter exposes Celsius readings through a suffixed field; elements of
// the vector carry the vector's unit.
type meter struct {
	tempsC []float64
}

// worst is kelvin-free: its result unit is inferred through the
// IndexExpr element rule plus the environment.
func (m *meter) worst() float64 {
	w := m.tempsC[0]
	for _, t := range m.tempsC {
		if t > w {
			w = t
		}
	}
	return w
}

type frame struct {
	powerW float64
}

// Demo seeds the cross-call violations.
func Demo(m *meter) []float64 {
	a := ambientK()
	r1 := setTempC(a) // want "scale mismatch"

	v := readTemp()
	r2 := setTempC(v) // want "scale mismatch"

	r3 := setTempK(m.worst()) // want "scale mismatch"

	limitC := 85.0
	if v > limitC { // want "scale mismatch"
		r3 = 0
	}

	p := readMilli()
	f := frame{powerW: p} // want "scale mismatch"

	//lint:ignore unitflow fixture demonstrates an annotated, intentional mismatch
	r4 := setTempC(ambientK())

	return []float64{r1, r2, r3, f.powerW, r4}
}

// supplyV declares volts via its name but returns a watt value that
// unitcheck cannot see (the unit lives in the environment, not the
// identifier). This is the return-statement check unitcheck lacks.
func supplyV() float64 {
	x := busW()
	return x // want "dimension mismatch"
}
