// Package sim is a tglint fixture for the boxcheck pass: interface
// method calls and reflection sorts inside the hot set are findings,
// while calls through plain func values (the prebuilt-worker idiom)
// and concrete sorts are not.
package sim

import (
	"errors"
	"sort"
)

type stepper interface{ Step() }

type impl struct{ n int }

func (i *impl) Step() { i.n++ }

var errStep = errors.New("step failed")

type Runner struct {
	s    stepper
	f    func()
	vals []float64
	bad  bool
}

// insertionSort is the concrete replacement a hot path should use.
func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// emitRecord mirrors telemetry record emission: dispatch-heavy but off
// the steady-state path, exempted whole by the function-scope directive.
//
//perf:dispatch record emission runs only on instrumented runs
func (r *Runner) emitRecord() {
	r.s.Step()
	sort.Stable(sort.Float64Slice(r.vals))
}

func (r *Runner) stepEpoch() error {
	r.s.Step()                                                                     // want "interface method call"
	r.f()                                                                          // func-value call: a code pointer, not an itable — clean
	sort.SliceStable(r.vals, func(i, j int) bool { return r.vals[i] < r.vals[j] }) // want "sort.SliceStable"
	insertionSort(r.vals)

	r.s.Step() //perf:dispatch audited: one implementation per build
	r.emitRecord()

	if r.bad {
		// Cold block: dispatch on an error path is not a finding.
		err := r.check()
		_ = err.Error()
		return errStep
	}
	return nil
}

func (r *Runner) check() error { return errStep }
