// Package cache is a tglint fixture for the cacheflush pass. The type
// names match the default rules by base name: Network{pathR, conc} and
// Regulator{Pos} must flush with rebuildPaths, Mesh geometry is frozen
// after construction.
package cache

type Network struct {
	pathR []float64
	conc  int
	dirty bool
}

// rebuildPaths is the flush: it may write the guarded fields itself
// (flush-function exemption).
func (n *Network) rebuildPaths() {
	for i := range n.pathR {
		n.pathR[i] = 0
	}
	n.dirty = false
}

// setConcOK: mutation immediately followed by the flush.
func (n *Network) setConcOK(c int) {
	n.conc = c
	n.rebuildPaths()
}

// setConcBad: the cache keyed on conc is now stale.
func (n *Network) setConcBad(c int) {
	n.conc = c // want "not followed by rebuildPaths"
}

// condFlush: the flush must post-dominate the mutation; one unflushed
// path to return is enough to report.
func (n *Network) condFlush(c int) {
	n.pathR[0] = 1.5 // want "not followed by rebuildPaths"
	if c > 0 {
		n.rebuildPaths()
	}
}

// bothBranches: every path from the mutation reaches a flush.
func (n *Network) bothBranches(c int) {
	n.conc = c
	if c > 0 {
		n.rebuildPaths()
	} else {
		n.rebuildPaths()
	}
}

// NewNetwork mutates a fresh local — constructors are exempt.
func NewNetwork(nr int) *Network {
	n := &Network{pathR: make([]float64, nr)}
	n.conc = nr
	return n
}

type Regulator struct {
	Pos int
}

// moveRegOK is the placement-optimiser shape: move, then rebuild.
func (n *Network) moveRegOK(r *Regulator, pos int) {
	r.Pos = pos
	n.rebuildPaths()
}

// moveRegBad strands every cache keyed on the old position.
func moveRegBad(r *Regulator, pos int) {
	r.Pos = pos // want "not followed by rebuildPaths"
}

type Mesh struct {
	nx, ny int
	vrNode []int
}

// NewMesh may initialize geometry: the receiver-to-be is a fresh local.
func NewMesh(nx, ny int) *Mesh {
	m := &Mesh{vrNode: make([]int, nx*ny)}
	m.nx = nx
	m.ny = ny
	return m
}

// resize violates the frozen-after-construction rule.
func (m *Mesh) resize(nx int) {
	m.nx = nx // want "frozen after construction"
}
