// Package ckpt is a tglint fixture for the checkpoint-coverage pass.
// Each State/Restore pair below exercises one coverage rule: a field
// the producer forgets (checkpoints as zero), a field the consumer
// forgets (silently dropped on resume), helper delegation through the
// call graph, and the whole-value escape that ends the analysis.
package ckpt

// Checkpoint is a snapshot schema with a deliberately uncovered field.
type Checkpoint struct {
	Epoch int
	Seed  int64
	Temp  []float64
	Skew  float64
}

// Runner round-trips everything except Skew on the producer side.
type Runner struct {
	epoch int
	seed  int64
	temp  []float64
	skew  float64
}

func (r *Runner) State() Checkpoint { // want "never sets field Skew"
	return Checkpoint{
		Epoch: r.epoch,
		Seed:  r.seed,
		Temp:  r.temp,
	}
}

func (r *Runner) Restore(cp *Checkpoint) {
	r.epoch = cp.Epoch
	r.seed = cp.Seed
	r.temp = cp.Temp
	r.skew = cp.Skew
}

// WMAState checks the consumer direction with value (non-pointer)
// semantics: Restore applies Window but drops Sum.
type WMAState struct {
	Window []float64
	Sum    float64
}

type WMA struct {
	window []float64
	sum    float64
}

func (w *WMA) State() WMAState {
	return WMAState{Window: w.window, Sum: w.sum}
}

func (w *WMA) Restore(s WMAState) { // want "never reads field Sum"
	w.window = s.Window
}

// GovState is fully covered, but only through helpers — the pass has
// to follow the call graph on both sides to prove it.
type GovState struct {
	Level int
	Boost float64
}

type Gov struct {
	level int
	boost float64
}

func (g *Gov) State() GovState {
	var st GovState
	g.fill(&st)
	return st
}

func (g *Gov) fill(st *GovState) {
	st.Level = g.level
	st.Boost = g.boost
}

func (g *Gov) Restore(s GovState) {
	g.level = s.Level
	g.apply(s)
}

func (g *Gov) apply(s GovState) {
	g.boost = s.Boost
}

// TraceState's consumer stashes the whole snapshot for later use; the
// escape counts every field as read.
type TraceState struct {
	Cursor int64
	Path   string
}

type Trace struct {
	resume *TraceState
	cursor int64
}

func (t *Trace) State() *TraceState {
	return &TraceState{Cursor: t.cursor, Path: "trace.bin"}
}

func (t *Trace) Restore(s *TraceState) {
	t.cursor = s.Cursor
	t.resume = s
}

// OrphanState has a consumer but no producer: the schema cannot be
// verified at all, which is itself a finding.
type OrphanState struct {
	X float64
}

type Orphan struct {
	x float64
}

func (o *Orphan) Restore(s OrphanState) { // want "no producer"
	o.x = s.X
}
