// Package sim is a tglint fixture for the workerpure pass: workers may
// bump registry counters (order-independent, monotone) but must never
// touch the per-epoch record stream. The base name "sim" puts `go`
// statements in scope too.
package sim

import (
	"thermogater/internal/par"
	"thermogater/internal/telemetry"
)

// countSafe: counters are the sanctioned worker-side telemetry.
func countSafe(p *par.Pool, c *telemetry.Counter) {
	p.For(4, func(lo, hi int) {
		c.Add(float64(hi - lo))
		c.Inc()
	})
}

// emitDirect writes the record stream straight from the worker body.
func emitDirect(p *par.Pool, reg *telemetry.Registry) {
	p.For(4, func(lo, hi int) {
		rec := telemetry.NewRecord("epoch") // want "record stream"
		_ = reg.Emit(rec)                   // want "record stream"
	})
}

// logEpoch is a serial-looking helper; calling it from a worker drags
// the record stream into the fan-out.
func logEpoch(reg *telemetry.Registry) {
	rec := telemetry.NewRecord("epoch")
	_ = reg.Emit(rec)
}

func emitReachable(p *par.Pool, reg *telemetry.Registry) {
	p.For(4, func(lo, hi int) { // want "NewRecord" "Emit"
		logEpoch(reg)
	})
}

// goEmit: `go` statements are fan-outs too.
func goEmit(reg *telemetry.Registry, done chan struct{}) {
	go func() {
		_ = reg.Emit(telemetry.NewRecord("x")) // want "NewRecord" "Emit"
		done <- struct{}{}
	}()
}

// reduceAfter emits on the serial side — after the fan-out returned —
// which is exactly where records belong.
func reduceAfter(p *par.Pool, reg *telemetry.Registry, c *telemetry.Counter) {
	p.For(4, func(lo, hi int) {
		c.Inc()
	})
	_ = reg.Emit(telemetry.NewRecord("epoch"))
}
