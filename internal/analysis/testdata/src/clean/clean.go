// Package clean is a tglint fixture with no violations: the driver must
// exit 0 on it.
package clean

import "math"

// Warm converts and compares temperatures the approved way.
func Warm(tempK float64) bool {
	tempC := tempK - 273.15
	return math.Abs(tempC-85) < 1e-9
}
