// Package tgflow is the golden-file fixture for the CFG builder and
// call-graph indexer. Each function exercises one slice of the
// statement grammar; the expected CFG shapes live in
// testdata/tgflow_cfg.golden and the call edges in
// testdata/tgflow_callgraph.golden.
package tgflow

// riser: if/else diamond with an early return.
func riser(x float64) float64 {
	if x < 0 {
		return 0
	} else if x > 1 {
		x = 1
	}
	return x
}

// looper: three-clause for loop with continue and break.
func looper(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			continue
		}
		if total > 100 {
			break
		}
		total += i
	}
	return total
}

// ranger: range loop whose body calls another fixture function.
func ranger(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += riser(x)
	}
	return sum
}

// switcher: expression switch with fallthrough and default.
func switcher(mode int) int {
	out := 0
	switch mode {
	case 0:
		out = 1
		fallthrough
	case 1:
		out += 2
	default:
		out = -1
	}
	return out
}

// even and odd: mutual recursion, the smallest nontrivial SCC.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// drive ties the graph together so the SCC order test has callers
// above the even/odd component.
func drive(xs []float64) bool {
	s := ranger(xs)
	c := looper(len(xs)) + switcher(int(s))
	return even(c)
}
