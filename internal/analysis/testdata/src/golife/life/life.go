// Package life seeds goroutine- and timer-lifecycle violations for
// golife: a forever goroutine with no teardown, a ticker that is never
// stopped, a dropped timer result, and a map-registered AfterFunc whose
// callback forgets to delete its own entry — next to the clean twins
// (stop-channel selects, channel ranges, interprocedural teardown,
// defer Stop, escape by return).
package life

import (
	"sync"
	"time"
)

type mgr struct {
	stop chan struct{}
	out  chan int
}

// spinForever loops with no reachable teardown.
func (m *mgr) spinForever() {
	go func() { // want "no reachable teardown"
		for {
			m.out <- 1
		}
	}()
}

// spinStoppable selects on the stop channel: fine.
func (m *mgr) spinStoppable() {
	go func() {
		for {
			select {
			case <-m.stop:
				return
			case m.out <- 1:
			}
		}
	}()
}

// drain ranges over its input channel: fine.
func (m *mgr) drain(in chan int) {
	go func() {
		for v := range in {
			m.out <- v
		}
	}()
}

// step observes the stop channel; pump's loop tears down through it
// interprocedurally: fine.
func (m *mgr) step() bool {
	select {
	case <-m.stop:
		return false
	default:
		return true
	}
}

func (m *mgr) pump() {
	go func() {
		for {
			if !m.step() {
				return
			}
		}
	}()
}

// spinOwned is exempted by annotation.
func (m *mgr) spinOwned() {
	//sync:owned the process exits with this goroutine; there is nothing to tear down
	go func() {
		for {
			m.out <- 1
		}
	}()
}

// tickLeak never stops the ticker.
func (m *mgr) tickLeak(n int) {
	t := time.NewTicker(time.Second) // want "never stopped"
	for i := 0; i < n; i++ {
		<-t.C
		m.out <- i
	}
}

// tickClean stops by defer: fine.
func (m *mgr) tickClean(n int) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for i := 0; i < n; i++ {
		<-t.C
	}
}

// fireAndForget drops the *Timer on the floor.
func (m *mgr) fireAndForget() {
	time.NewTimer(time.Second) // want "dropped"
}

// timedWait stops the timer on both select arms: fine.
func (m *mgr) timedWait(d time.Duration) bool {
	t := time.NewTimer(d)
	select {
	case <-t.C:
		t.Stop()
		return false
	case <-m.stop:
		t.Stop()
		return true
	}
}

// escaped hands ownership to the caller: fine.
func (m *mgr) escaped(d time.Duration) *time.Timer {
	t := time.NewTimer(d)
	return t
}

type retrier struct {
	mu     sync.Mutex
	timers map[*time.Timer]struct{}
}

// arm registers the AfterFunc in a set but the callback never deletes
// its own entry, so the set grows by one per fired retry forever — the
// shape the supervisor's retry path must keep.
func (r *retrier) arm(d time.Duration, f func()) {
	r.mu.Lock()
	var t *time.Timer
	t = time.AfterFunc(d, func() { // want "never removed"
		f()
	})
	r.timers[t] = struct{}{}
	r.mu.Unlock()
}

// armClean deletes the fired entry inside the callback: fine.
func (r *retrier) armClean(d time.Duration, f func()) {
	r.mu.Lock()
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		r.mu.Lock()
		delete(r.timers, t)
		r.mu.Unlock()
		f()
	})
	r.timers[t] = struct{}{}
	r.mu.Unlock()
}
