// Package serve (the directory name puts it in tgsync's checked set)
// seeds settle-rule violations for golife: a terminal finish call with
// no reachable jobSettled/aggregateSweep notification — next to the
// clean, conditional, and annotated twins. The trigger and notify
// functions themselves are exempt by name.
package serve

type job struct {
	state string
	done  chan struct{}
}

// finish is the terminal transition; its name is in the rule's trigger
// list, so the rule does not police its own implementation.
func (j *job) finish(st string) {
	j.state = st
	close(j.done)
}

func (j *job) jobSettled() {}

// cancelOrphan finishes without notifying the sweep parent.
func (j *job) cancelOrphan() {
	j.finish("canceled") // want "never settle"
}

// cancelClean notifies after finishing: fine.
func (j *job) cancelClean() {
	j.finish("canceled")
	j.jobSettled()
}

// cancelMaybe settles conditionally; reachability is existential: fine.
func (j *job) cancelMaybe(notify bool) {
	j.finish("canceled")
	if notify {
		j.jobSettled()
	}
}

// cancelOwned is exempted by annotation.
func (j *job) cancelOwned() {
	//sync:owned this job is detached; no sweep parent aggregates it
	j.finish("canceled")
}
