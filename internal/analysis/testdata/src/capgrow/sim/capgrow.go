// Package sim is a tglint fixture for the capgrow pass: appends inside
// loops must target slices whose capacity was established — by a make,
// a [:0] reslice-reset, or a nil/cap guard — before the loop.
package sim

func collectBad(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "without established capacity"
	}
	return out
}

func collectGood(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

type buf struct{ vals []float64 }

// reset establishes capacity by reslicing to zero length.
func (b *buf) reset(n int) {
	b.vals = b.vals[:0]
	for i := 0; i < n; i++ {
		b.vals = append(b.vals, float64(i))
	}
}

// guarded establishes capacity through the scratch cap-guard idiom.
func (b *buf) guarded(n int) {
	if cap(b.vals) < n {
		b.vals = make([]float64, 0, n)
	}
	for i := 0; i < n; i++ {
		b.vals = append(b.vals, 1)
	}
}

func nested(rows [][]int) []int {
	var flat []int
	for _, r := range rows {
		for _, v := range r {
			flat = append(flat, v) // want "without established capacity"
		}
	}
	return flat
}

// inLoopMake is clean: the inner slice's make sits inside the outer
// loop but still precedes the appends that grow it.
func inLoopMake(n int) [][]int {
	out := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		row := make([]int, 0, n)
		for j := 0; j < n; j++ {
			row = append(row, j)
		}
		out = append(out, row)
	}
	return out
}
