// Package sim is a tglint fixture for the parwrite pass. The package
// base name matters: "sim" is in the default GoPackages list, so `go`
// statements here are analyzed like pool fan-outs. Each seeded
// violation sits next to a guarded twin proving the analysis knows the
// difference between a shared write and a chunk-indexed or owned one.
package sim

import (
	"sort"

	"thermogater/internal/par"
)

type grid struct {
	vals    []float64
	scratch []float64
	total   float64
	byName  map[string]int
	n       int
}

// fill writes only through its parameter: safe whenever the argument is
// worker-owned (a chunk sub-slice or a fresh allocation).
func (g *grid) fill(dst []float64) {
	for i := range dst {
		dst[i] = 1
	}
}

// bump writes vals at its parameter index: safe exactly when the caller
// passes a chunk-derived index.
func (g *grid) bump(i int) {
	g.vals[i] += 1
}

// stamp unconditionally writes a shared field; any worker reaching it is
// a violation, reported at the write.
func (g *grid) stamp() {
	g.total = 0 // want "shared state"
}

// alloc returns memory the callee allocated — the result-ownership
// summary must prove the caller owns it.
func alloc(n int) []float64 {
	return make([]float64, n)
}

// chunkSafe is the guarded twin bundle: chunk-indexed writes, a chunk
// sub-slice handed to a callee, and writes into a fresh allocation.
func chunkSafe(p *par.Pool, g *grid) {
	p.For(len(g.vals), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.vals[i] = float64(i)
		}
		g.fill(g.vals[lo:hi])
		own := make([]float64, 8)
		for i := range own {
			own[i] = 2
		}
	})
}

// offsetSafe: chunk indices survive affine offsets.
func offsetSafe(p *par.Pool, g *grid) {
	p.For(g.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.scratch[g.n+i] = 0
		}
	})
}

// interprocSafe: the callee's write is proven under the caller's
// argument context (i is a chunk index inside bump).
func interprocSafe(p *par.Pool, g *grid) {
	p.For(len(g.vals), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.bump(i)
		}
	})
}

// resultOwned: a callee-allocated buffer belongs to the worker.
func resultOwned(p *par.Pool) {
	p.For(4, func(lo, hi int) {
		buf := alloc(8)
		for i := range buf {
			buf[i] = 1
		}
	})
}

func capturedScalar(p *par.Pool) {
	sum := 0.0
	p.For(4, func(lo, hi int) {
		sum += 1 // want "assigns captured variable"
	})
	_ = sum
}

func nonChunkIndex(p *par.Pool, g *grid) {
	p.For(len(g.vals), func(lo, hi int) {
		g.vals[0] = 1 // want "index not derived from the chunk bounds"
	})
}

func sharedMap(p *par.Pool, g *grid) {
	p.For(4, func(lo, hi int) {
		g.byName["x"] = lo // want "shared map"
	})
}

// interprocViolation reaches stamp's shared-field write (reported up at
// the write line inside stamp — same package).
func interprocViolation(p *par.Pool, g *grid) {
	p.For(len(g.vals), func(lo, hi int) {
		g.stamp()
	})
}

func indirectCall(p *par.Pool, f func()) {
	p.For(4, func(lo, hi int) {
		f() // want "calls through function value"
	})
}

func externalShared(p *par.Pool, g *grid) {
	p.For(4, func(lo, hi int) {
		sort.Float64s(g.vals) // want "passes shared"
	})
}

// annotated is the audited-exception twin: the same shared write as
// nonChunkIndex, justified away.
func annotated(p *par.Pool, g *grid) {
	p.For(4, func(lo, hi int) {
		//par:disjoint audited: each worker rewrites the same sentinel with the same value
		g.vals[0] = 2
	})
}

var table = make([]float64, 64)

// namedWorker is resolved through the identifier passed to For; its
// parameters are seeded as chunk bounds.
func namedWorker(lo, hi int) {
	for i := lo; i < hi; i++ {
		table[i] = float64(i)
	}
	table[0] = 0 // want "index not derived from the chunk bounds"
}

func runNamed(p *par.Pool) {
	p.For(len(table), namedWorker)
}

// runOpaque hands For a worker the analysis cannot see the body of.
func runOpaque(p *par.Pool, w func(lo, hi int)) {
	p.For(8, w) // want "cannot resolve the worker body"
}

// goWrites: `go` statements in pipeline packages carry no chunk bounds,
// so a captured-slice write needs its own justification.
func goWrites(done chan struct{}) {
	x := []int{1}
	go func() {
		x[0] = 2 // want "index not derived from the chunk bounds"
		done <- struct{}{}
	}()
}

// goAnnotated is goWrites with the audited-exception annotation.
func goAnnotated(done chan struct{}) {
	x := []int{1}
	go func() {
		//par:disjoint the spawner never touches x again; ownership moved into the goroutine
		x[0] = 3
		done <- struct{}{}
	}()
}
