// Package baddir seeds malformed //par: directives; the dedicated test
// (not the want harness — these diagnostics land on comment-only lines)
// asserts parwrite reports both.
package baddir

//par:sequential this kind does not exist

//par:disjoint

var placeholder = 0
