// Package paths seeds release-path violations for unlockpath: an early
// return that leaks a lock, a double unlock (defer + explicit), an
// RLock paired with Unlock, and an orphan release without a
// //sync:balanced handoff — next to the clean twins of each shape.
package paths

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// good releases by defer: fine.
func (b *box) good() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// branches releases on every path: fine.
func (b *box) branches(c bool) {
	b.mu.Lock()
	if c {
		b.n++
		b.mu.Unlock()
		return
	}
	b.n--
	b.mu.Unlock()
}

// leak returns early with the lock still held.
func (b *box) leak(c bool) int {
	b.mu.Lock() // want "not released"
	if c {
		return 0
	}
	b.mu.Unlock()
	return b.n
}

// double releases a single acquisition both ways.
func (b *box) double() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
	b.mu.Unlock() // want "both explicitly and by defer"
}

// mismatch read-locks but write-unlocks.
func (b *box) mismatch() int {
	b.rw.RLock() // want "not released"
	n := b.n
	b.rw.Unlock() // want "lock-mode mismatch"
	return n
}

// reader pairs RLock with RUnlock: fine.
func (b *box) reader() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.n
}

// orphan releases a lock this function never acquires, without the
// handoff annotation.
func (b *box) orphan() {
	b.mu.Unlock() // want "never acquires"
}

// handoff is the annotated twin: ownership arrives from the caller.
func (b *box) handoff() {
	//sync:balanced callers hand b.mu off; released here by contract
	b.mu.Unlock()
}

// deferredLit releases through a defer-wrapped literal, which counts as
// the enclosing function's deferred release, not an orphan: fine.
func (b *box) deferredLit() {
	b.mu.Lock()
	defer func() {
		b.n++
		b.mu.Unlock()
	}()
	b.n++
}
