// Package serve (the directory name puts it in tgsync's checked set)
// seeds blocking-while-locked violations: channel ops, defaultless
// selects, time.Sleep, an interprocedural blocking callee, and
// sync.Cond.Wait with a second lock held — next to the clean twins.
package serve

import (
	"sync"
	"time"
)

type svc struct {
	mu   sync.Mutex
	wake sync.Mutex
	cond *sync.Cond
	ch   chan int
	n    int
}

func newSvc() *svc {
	s := &svc{ch: make(chan int, 1)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// sendHeld sends with mu held.
func (s *svc) sendHeld() {
	s.mu.Lock()
	s.ch <- 1 // want "while holding"
	s.mu.Unlock()
}

// sendFree releases first: fine.
func (s *svc) sendFree() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- 1
}

// nudge cannot block — the select has a default: fine.
func (s *svc) nudge() {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
}

// waitSelect parks on a defaultless select with mu held.
func (s *svc) waitSelect() {
	s.mu.Lock()
	select { // want "while holding"
	case v := <-s.ch:
		s.n = v
	}
	s.mu.Unlock()
}

// slowPath sleeps under the lock.
func (s *svc) slowPath() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "while holding"
	s.mu.Unlock()
}

// drainOne blocks on a receive; calling it with mu held blocks too.
func (s *svc) drainOne() int { return <-s.ch }

func (s *svc) drainHeld() {
	s.mu.Lock()
	s.n = s.drainOne() // want "may block"
	s.mu.Unlock()
}

// drainAnnotated is the documented exception.
func (s *svc) drainAnnotated() {
	s.mu.Lock()
	//sync:nonblocking the channel is buffered and drained only by this goroutine
	s.n = s.drainOne()
	s.mu.Unlock()
}

// miswait calls Wait with wake held on top of the condition's own lock;
// Wait releases only mu, so a waker needing wake can never run.
func (s *svc) miswait() {
	s.wake.Lock()
	s.mu.Lock()
	s.cond.Wait() // want "also held"
	s.mu.Unlock()
	s.wake.Unlock()
}

// goodwait holds only the condition's own lock: fine.
func (s *svc) goodwait() {
	s.mu.Lock()
	for s.n == 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}
