// Package errsink is a tglint fixture for the dropped-error pass.
package errsink

import "errors"

// Solver mimics the thermal solver API surface.
type Solver struct{ temp float64 }

// Step advances the solver and can fail.
func (s *Solver) Step(dtS float64) error {
	if dtS <= 0 {
		return errors.New("non-positive step")
	}
	s.temp += dtS
	return nil
}

// SetPower injects power and can fail.
func (s *Solver) SetPower(powerW float64) error {
	if powerW < 0 {
		return errors.New("negative power")
	}
	return nil
}

// Run seeds one violation of every errsink rule.
func Run(s *Solver) float64 {
	s.Step(0.1)       // want "error result of Step is silently discarded"
	_ = s.SetPower(3) // want "error result of SetPower is blanked"
	defer s.Step(0.2) // want "deferred error result of Step"

	//lint:ignore errsink fixture demonstrates an annotated, deliberate drop
	s.Step(0.3)

	// Handled calls are silent.
	if err := s.SetPower(1); err != nil {
		return 0
	}
	return s.temp
}
