// Package pipe is a tglint fixture for the redorder pass. Its base name
// is deliberately NOT in detcheck's package list, so map-iteration
// findings here belong to redorder alone (in the real tree detcheck owns
// them for the simulation packages).
package pipe

import (
	"sync/atomic"

	"thermogater/internal/par"
)

var counts = map[string]float64{}
var legacy uint64
var acc atomic.Uint64

// reduceBad fans out, then folds a map in randomized order.
func reduceBad(p *par.Pool, out []float64) {
	p.For(len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(i)
		}
	})
	for _, v := range counts { // want "map iteration"
		out[0] += v
	}
}

// drain is reachable from a phase; its select is flagged where it is.
func drain(ch, quit chan int) int {
	select { // want "select statement"
	case v := <-ch:
		return v
	case <-quit:
		return 0
	}
}

func reduceSelect(p *par.Pool, ch, quit chan int, out []float64) {
	p.For(len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = 1
		}
	})
	out[0] = float64(drain(ch, quit))
}

// reduceAtomic commits in completion order — inside the worker and in
// the fan-in alike, both package-function and typed-method forms.
func reduceAtomic(p *par.Pool, out []float64) {
	p.For(len(out), func(lo, hi int) {
		atomic.AddUint64(&legacy, 1) // want "atomic read-modify-write"
	})
	acc.Add(2) // want "atomic read-modify-write"
}

// reduceOrdered is the audited twin: the same construct, justified.
func reduceOrdered(p *par.Pool, done chan struct{}, out []float64) {
	p.For(len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = 2
		}
	})
	//par:ordered single non-blocking receive after the barrier; nothing races it
	select {
	case <-done:
	default:
	}
}

// serialOnly never fans out, so its map fold is out of scope.
func serialOnly(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
