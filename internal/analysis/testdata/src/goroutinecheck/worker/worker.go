// Package worker is a tglint fixture for goroutinecheck.
package worker

import "sync"

// Sweep mimics the experiments fan-out with every race variant seeded.
func Sweep(jobs []int) ([]float64, error) {
	results := make([]float64, len(jobs))
	index := make(map[int]float64)
	var collected []float64
	var firstErr error
	var wg sync.WaitGroup

	for i, j := range jobs {
		wg.Add(1)
		go func(i, j int) {
			defer wg.Done()
			v := float64(j) * 2
			results[i] = v                   // per-index slice write: silent
			index[j] = v                     // want "write to captured map"
			collected = append(collected, v) // want "append to captured slice"
			if v < 0 {
				firstErr = errNegative // want "write to captured variable"
			}
		}(i, j)
	}
	wg.Wait()
	_ = collected
	_ = index
	return results, firstErr
}

// SweepGuarded is the approved mutex discipline: silent.
func SweepGuarded(jobs []int) ([]float64, error) {
	results := make([]float64, len(jobs))
	index := make(map[int]float64)
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup

	for i, j := range jobs {
		wg.Add(1)
		go func(i, j int) {
			defer wg.Done()
			v := float64(j) * 2
			results[i] = v
			mu.Lock()
			index[j] = v
			if v < 0 && firstErr == nil {
				firstErr = errNegative
			}
			mu.Unlock()
		}(i, j)
	}
	wg.Wait()
	return results, firstErr
}

// Local state born inside the closure is silent.
func SweepLocal(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make(map[int]float64)
			sum := 0.0
			for i := 0; i < 4; i++ {
				local[i] = float64(i)
				sum += float64(i)
			}
			_ = sum
		}()
	}
	wg.Wait()
}

// Suppressed demonstrates an annotated single-writer pattern.
func Suppressed(done *bool) {
	go func() {
		//lint:ignore goroutinecheck fixture demonstrates an annotated single-writer flag
		*done = true
	}()
}

type sweepError string

func (e sweepError) Error() string { return string(e) }

const errNegative = sweepError("negative value")
