// Package floatcheck is a tglint fixture for the float-equality pass.
package floatcheck

import "math"

// approxEqual is an approved epsilon helper (config: floatcheck.helpers);
// the raw comparison inside it is allowed.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) < 1e-9
}

// Converged compares solver outputs exactly: a latent bug.
func Converged(prev, next float64) bool {
	return prev == next // want "floating-point == comparison"
}

// Different is the same bug with !=.
func Different(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}

// IsNaN uses the x != x idiom, which only NaN satisfies: silent.
func IsNaN(x float64) bool {
	return x != x
}

// SentinelZero demonstrates an annotated intentional sentinel.
func SentinelZero(sum float64) bool {
	//lint:ignore floatcheck fixture demonstrates an annotated sentinel comparison
	return sum == 0
}

// UsesHelper shows the approved path: silent.
func UsesHelper(a, b float64) bool {
	return approxEqual(a, b)
}
