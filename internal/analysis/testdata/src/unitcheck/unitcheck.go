// Package unitcheck is a tglint fixture. Every "// want" line must
// produce a diagnostic containing the quoted substring; the
// //lint:ignore line must stay silent.
package unitcheck

// Config mimics a solver config with unit-suffixed fields.
type Config struct {
	AmbientC float64
	EpochMS  float64
}

// Reset expects degrees Celsius.
func Reset(tempC float64) float64 { return tempC }

// Step expects seconds.
func Step(dtS float64) float64 { return dtS }

// Demo seeds one violation of every unitcheck rule.
func Demo() []float64 {
	tempK := 300.0
	dtMS := 5.0

	a := Reset(tempK) // want "scale mismatch"
	b := Step(dtMS)   // want "scale mismatch"

	tempC := tempK - 273.15 // recognised Kelvin→Celsius conversion: silent
	c := Reset(tempC)

	mix := tempC + dtMS // want "dimension mismatch"
	tempC += dtMS       // want "dimension mismatch"

	var windowMS float64 = tempK // want "dimension mismatch"

	cfg := Config{AmbientC: tempK} // want "scale mismatch"

	//lint:ignore unitcheck fixture demonstrates an annotated, intentional mismatch
	d := Reset(tempK)

	return []float64{a, b, c, mix, windowMS, cfg.EpochMS, d}
}
