// Package sim is a tglint fixture for aliascheck. The directory is named
// "sim" so the default simulation-package list covers it.
package sim

// Runner mimics the real sim.Runner's reused scratch buffers.
type Runner struct {
	blockPower []float64
	masks      [][]bool
	byName     map[string]float64
	chip       *Chip
}

// Chip stands in for a shared, immutable structure: pointers are fine.
type Chip struct{ Name string }

// Snapshot is a result type an exported method might return.
type Snapshot struct {
	Power []float64
	Label string
}

var lastPower []float64

// Power leaks the scratch buffer directly.
func (r *Runner) Power() []float64 {
	return r.blockPower // want "scratch field r.blockPower"
}

// Mask leaks one element of the nested scratch slice.
func (r *Runner) Mask(d int) []bool {
	return r.masks[d] // want "scratch field r.masks"
}

// ByName leaks the scratch map.
func (r *Runner) ByName() map[string]float64 {
	return r.byName // want "scratch field r.byName"
}

// Snapshot leaks through a composite literal element.
func (r *Runner) Snapshot() *Snapshot {
	return &Snapshot{
		Power: r.blockPower, // want "composite carrying scratch field r.blockPower"
		Label: "epoch",
	}
}

// Record stores the scratch buffer into a package-level variable.
func (r *Runner) Record() {
	lastPower = r.blockPower // want "stores scratch field r.blockPower"
}

// Fill stores the scratch buffer through a parameter.
func (r *Runner) Fill(out *Snapshot) {
	out.Power = r.blockPower // want "stores scratch field r.blockPower"
}

// PowerCopy is the approved idiom: silent.
func (r *Runner) PowerCopy() []float64 {
	return append([]float64(nil), r.blockPower...)
}

// PowerInto copies into a caller-provided buffer: silent.
func (r *Runner) PowerInto(dst []float64) []float64 {
	if len(dst) != len(r.blockPower) {
		dst = make([]float64, len(r.blockPower))
	}
	copy(dst, r.blockPower)
	return dst
}

// Chip returns a shared pointer, not a reused buffer: silent.
func (r *Runner) Chip() *Chip { return r.chip }

// Total derives a scalar from the scratch buffer: silent.
func (r *Runner) Total() float64 {
	var s float64
	for _, p := range r.blockPower {
		s += p
	}
	return s
}

// buildMask aliases freely — unexported helpers own the reuse contract.
func (r *Runner) buildMask(d int) []bool {
	return r.masks[d]
}

// Suppressed demonstrates an annotated intentional alias.
func (r *Runner) Suppressed() []float64 {
	//lint:ignore aliascheck fixture demonstrates a documented alias
	return r.blockPower
}
