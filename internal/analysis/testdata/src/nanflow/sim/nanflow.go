// Package sim is a tglint fixture for the NaN-taint pass. Its base
// name makes it a sink package under the default configuration, so
// struct-field writes here are persistent-state sinks. Each "want"
// seeds one source→sink path; the guarded variants below it must stay
// silent.
package sim

import (
	"math"
	"strconv"
)

// Model stands in for a solver whose fields persist across epochs.
type Model struct {
	Temp  float64
	ratio float64
}

// BadLog stores a raw logarithm: Log(x) is NaN for any x < 0.
func (m *Model) BadLog(x float64) {
	m.Temp = math.Log(x) // want "math.Log"
}

// GoodLog is the same computation with an explicit finiteness check.
func (m *Model) GoodLog(x float64) {
	v := math.Log(x)
	if math.IsNaN(v) {
		v = 0
	}
	m.Temp = v
}

// GoodSelfCheck uses the x != x idiom instead of math.IsNaN.
func (m *Model) GoodSelfCheck(x float64) {
	v := math.Log(x)
	//lint:ignore floatcheck the x != x NaN idiom is the point of this fixture
	if v != v {
		v = -1
	}
	m.Temp = v
}

// BadDiv divides by an unvalidated parameter: 0/0 is NaN.
func (m *Model) BadDiv(num, den float64) {
	m.ratio = num / den // want "unchecked division"
}

// GoodDiv validates the divisor first; any comparison counts.
func (m *Model) GoodDiv(num, den float64) {
	if den <= 0 {
		return
	}
	m.ratio = num / den
}

// halfLife never touches a sink itself, but its result can be NaN —
// the fact crosses the call boundary through its summary.
func halfLife(x float64) float64 {
	return math.Sqrt(x)
}

// BadCall stores a tainted callee result.
func (m *Model) BadCall(x float64) {
	m.Temp = halfLife(x) // want "stored into sim.Model.Temp"
}

// store sinks its parameter; the diagnostic belongs at call sites that
// hand it a tainted value, not here.
func (m *Model) store(v float64) {
	m.Temp = v
}

// BadStore passes a NaN-capable value into a summarised sink.
func (m *Model) BadStore(x float64) {
	m.store(math.Sqrt(x)) // want "stores it into sim.Model.Temp"
}

// GoodStore launders the value through a clamp-named helper first.
func (m *Model) GoodStore(x float64) {
	m.store(clampUnit(math.Sqrt(x)))
}

// clampUnit's name marks it as a guard: its results are trusted.
func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// BadParse trusts a parsed float: the string "NaN" parses without
// error, so trace and config readers must validate.
func (m *Model) BadParse(s string) {
	v, _ := strconv.ParseFloat(s, 64)
	m.Temp = v // want "strconv.ParseFloat"
}

// Sentinel shows the annotated escape hatch for intentional NaN use.
func (m *Model) Sentinel() {
	//lint:ignore nanflow NaN is this model's deliberate "unmeasured" sentinel
	m.Temp = math.NaN()
}
