package analysis

// golife — goroutine and timer lifecycle analysis (tgsync). Three
// checks, the three leak classes PR 9's review fixed by hand:
//
//   1. Every `go` statement whose body runs a forever loop (`for` with
//      no condition) must reach a teardown construct from inside the
//      loop: a receive/select on a stop/done channel or ctx.Done(), or
//      a range over a channel — directly, or through an internal callee
//      (SCC-fixpoint teardown summaries, so serve's workers that park
//      in queue.Pop's stop-select are recognized).
//
//   2. Every time.NewTimer/NewTicker/AfterFunc must be owned: the
//      result bound and either stopped by defer, stopped on every path
//      (the cacheflush post-dominance machinery), or handed off (passed
//      to a call, stored in a field/map, returned, sent). A timer
//      registered in a map — the supervisor's crash-retry set — must be
//      deleted from that map inside its own AfterFunc callback, or
//      fired timers accumulate forever (the PR 9 leak).
//
//   3. Settle obligations (Tgsync.Settle, scoped to Tgsync.Packages): a
//      call to a terminal-transition trigger (finish/finishLocked) in a
//      function that is not itself part of the settle machinery must
//      have a parent-notification call (jobSettled/aggregateSweep)
//      reachable in its CFG — the invariant whose violation left sweep
//      parents waiting forever on canceled children.
//
// //sync:owned <reason> exempts a site whose lifecycle is managed
// elsewhere.

import (
	"go/ast"
	"go/types"
	"strings"
)

var Golife = &Analyzer{
	Name:         "golife",
	Doc:          "goroutines and timers are tied to a teardown path; terminal transitions notify their parents",
	Run:          runGolife,
	NeedsProgram: true,
}

func runGolife(pass *Pass) {
	cfg := pass.Config
	if allowedBy(cfg.Tgsync.Allow, pass.ImportPath) {
		return
	}
	prog := pass.Program
	pkg := prog.pkgByPath(pass.ImportPath)
	if pkg == nil {
		return
	}
	anns := syncAnns(prog)
	tear := prog.TeardownSummaries()

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, isGo := n.(*ast.GoStmt); isGo {
				checkGoStmt(pass, prog, pkg, anns, tear, g)
			}
			return true
		})
	}

	for _, u := range syncUnits(pkg) {
		checkTimers(pass, pkg, anns, u)
	}

	if pkgMatches(cfg.Tgsync.Packages, pass.ImportPath) {
		checkSettle(pass, pkg, anns)
	}
}

// ---------------------------------------------------------------------------
// go statements

func checkGoStmt(pass *Pass, prog *Program, pkg *Package, anns parAnnIndex, tear map[string]bool, g *ast.GoStmt) {
	posn := pass.Fset.Position(g.Pos())
	if anns.covered("owned", posn) {
		return
	}
	var body *ast.BlockStmt
	bodyPkg := pkg
	if lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); isLit {
		body = lit.Body
	} else if fn := prog.FuncOf(pkg, g.Call); fn != nil {
		body = fn.Decl.Body
		bodyPkg = fn.Pkg
	} else {
		return // external or indirect worker: nothing to inspect
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		loop, isFor := n.(*ast.ForStmt)
		if !isFor || loop.Cond != nil {
			return true
		}
		if !hasTeardown(prog, bodyPkg, loop.Body, tear) {
			pass.Reportf(g.Pos(),
				"goroutine runs a forever loop with no reachable teardown (no stop/done channel, ctx.Done select, or channel range); annotate //sync:owned if its lifecycle is managed elsewhere")
			return false
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// timers

// timerCtor classifies a call as a timer/ticker constructor.
func timerCtor(pkg *Package, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	switch fn.Name() {
	case "NewTimer", "NewTicker", "AfterFunc":
		return "time." + fn.Name()
	}
	return ""
}

func checkTimers(pass *Pass, pkg *Package, anns parAnnIndex, u *syncUnit) {
	// Find constructor calls that are statements of THIS unit (nested
	// literals are their own units).
	type site struct {
		call *ast.CallExpr
		ctor string
		stmt ast.Stmt // the binding/discarding statement
		obj  types.Object
	}
	var sites []site
	var walk func(root ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			s, isStmt := n.(ast.Stmt)
			if !isStmt {
				return true
			}
			switch s := s.(type) {
			case *ast.ExprStmt:
				if call, isCall := ast.Unparen(s.X).(*ast.CallExpr); isCall {
					if ctor := timerCtor(pkg, call); ctor != "" {
						sites = append(sites, site{call: call, ctor: ctor, stmt: s})
					}
					// Descend anyway: the AfterFunc callback literal is a
					// separate unit; arguments cannot hold another ctor stmt.
				}
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
					if !isCall {
						continue
					}
					ctor := timerCtor(pkg, call)
					if ctor == "" {
						continue
					}
					var obj types.Object
					if i < len(s.Lhs) {
						if id, isIdent := s.Lhs[i].(*ast.Ident); isIdent && id.Name != "_" {
							obj = pkg.Info.ObjectOf(id)
						}
					}
					sites = append(sites, site{call: call, ctor: ctor, stmt: s, obj: obj})
				}
			case *ast.DeclStmt:
				if gd, isGen := s.Decl.(*ast.GenDecl); isGen {
					for _, spec := range gd.Specs {
						vs, isVal := spec.(*ast.ValueSpec)
						if !isVal {
							continue
						}
						for i, v := range vs.Values {
							call, isCall := ast.Unparen(v).(*ast.CallExpr)
							if !isCall {
								continue
							}
							ctor := timerCtor(pkg, call)
							if ctor == "" {
								continue
							}
							var obj types.Object
							if i < len(vs.Names) && vs.Names[i].Name != "_" {
								obj = pkg.Info.ObjectOf(vs.Names[i])
							}
							sites = append(sites, site{call: call, ctor: ctor, stmt: s, obj: obj})
						}
					}
				}
			}
			return true
		})
	}
	walk(u.decl.Body)

	var cfg *CFG
	getCFG := func() *CFG {
		if cfg == nil {
			cfg = BuildCFG(u.decl)
		}
		return cfg
	}

	for _, s := range sites {
		posn := pass.Fset.Position(s.call.Pos())
		if anns.covered("owned", posn) {
			continue
		}
		if s.obj == nil {
			pass.Reportf(s.call.Pos(),
				"%s result is dropped; the timer can never be stopped (bind it, or annotate //sync:owned)", s.ctor)
			continue
		}
		disp := timerDisposition(pkg, u, s.obj)
		if s.ctor == "time.AfterFunc" && disp.registeredIn != nil {
			// The PR 9 retry-set contract: a map-registered AfterFunc must
			// remove its own entry when it fires, or fired timers pile up.
			if !callbackDeletes(pkg, s.call, disp.registeredIn, s.obj) {
				pass.Reportf(s.call.Pos(),
					"fired timer is never removed from %s: the AfterFunc callback must delete its own entry (the set grows forever otherwise)",
					types.ExprString(disp.registeredIn))
			}
			continue
		}
		if disp.escapes || disp.deferStop {
			continue
		}
		match := func(st ast.Stmt) bool { return stmtCallsStop(pkg, st, s.obj) }
		if callPostdominates(getCFG(), s.stmt, match) {
			continue
		}
		pass.Reportf(s.call.Pos(),
			"%s is never stopped on every path to return (add defer %s.Stop(), stop it on all paths, or hand ownership off)",
			s.ctor, s.obj.Name())
	}
}

// timerDispo describes how a bound timer variable is used in its unit.
type timerDispo struct {
	deferStop    bool
	escapes      bool     // passed, returned, stored, sent: ownership moved
	registeredIn ast.Expr // the map expression of a `m[t] = ...` registration
}

func timerDisposition(pkg *Package, u *syncUnit, obj types.Object) timerDispo {
	var d timerDispo
	isObj := func(e ast.Expr) bool {
		id, isIdent := ast.Unparen(e).(*ast.Ident)
		return isIdent && pkg.Info.ObjectOf(id) == obj
	}
	ast.Inspect(u.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if stmtCallsStop(pkg, &ast.ExprStmt{X: n.Call}, obj) {
				d.deferStop = true
			}
			return false
		case *ast.CallExpr:
			for _, a := range n.Args {
				if isObj(a) {
					d.escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isObj(r) {
					d.escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, isKV := e.(*ast.KeyValueExpr); isKV {
					e = kv.Value
				}
				if isObj(e) {
					d.escapes = true
				}
			}
		case *ast.SendStmt:
			if isObj(n.Value) {
				d.escapes = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if idx, isIdx := lhs.(*ast.IndexExpr); isIdx && isObj(idx.Index) {
					d.registeredIn = idx.X
				}
				if i < len(n.Rhs) && isObj(n.Rhs[i]) {
					switch lhs.(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						d.escapes = true
					}
				}
			}
		}
		return true
	})
	return d
}

// callbackDeletes reports whether the AfterFunc callback literal deletes
// the timer's entry from the registration map (matched by spelling —
// both sides name the same field chain in the supervisor idiom).
func callbackDeletes(pkg *Package, ctor *ast.CallExpr, mapExpr ast.Expr, obj types.Object) bool {
	if len(ctor.Args) != 2 {
		return false
	}
	lit, isLit := ast.Unparen(ctor.Args[1]).(*ast.FuncLit)
	if !isLit {
		return false
	}
	want := types.ExprString(mapExpr)
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || found {
			return !found
		}
		id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
		if !isIdent || id.Name != "delete" || len(call.Args) != 2 {
			return true
		}
		if types.ExprString(ast.Unparen(call.Args[0])) != want {
			return true
		}
		if keyID, isKey := ast.Unparen(call.Args[1]).(*ast.Ident); isKey && pkg.Info.ObjectOf(keyID) == obj {
			found = true
		}
		return !found
	})
	return found
}

// stmtCallsStop reports whether the statement calls obj.Stop() outside
// nested literals.
func stmtCallsStop(pkg *Package, s ast.Stmt, obj types.Object) bool {
	return stmtContains(s, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return false
		}
		sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !isSel || sel.Sel.Name != "Stop" {
			return false
		}
		id, isIdent := ast.Unparen(sel.X).(*ast.Ident)
		return isIdent && pkg.Info.ObjectOf(id) == obj
	})
}

// ---------------------------------------------------------------------------
// settle obligations

func checkSettle(pass *Pass, pkg *Package, anns parAnnIndex) {
	rules := pass.Config.Tgsync.Settle
	if len(rules) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			for _, rule := range rules {
				if nameIn(fd.Name.Name, rule.Triggers) || nameIn(fd.Name.Name, rule.Notify) {
					continue // the settle machinery itself is exempt
				}
				checkSettleRule(pass, pkg, anns, fd, rule)
			}
		}
	}
}

func checkSettleRule(pass *Pass, pkg *Package, anns parAnnIndex, fd *ast.FuncDecl, rule SettleRule) {
	var cfg *CFG
	notify := func(s ast.Stmt) bool {
		return stmtContains(s, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			return isCall && nameIn(calleeName(call), rule.Notify)
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall || !nameIn(calleeName(call), rule.Triggers) {
			return true
		}
		posn := pass.Fset.Position(call.Pos())
		if anns.covered("owned", posn) {
			return true
		}
		if cfg == nil {
			cfg = BuildCFG(fd)
		}
		stmt := enclosingStmt(cfg, call.Pos())
		if stmt != nil && (notify(stmt) || callReachable(cfg, stmt, notify)) {
			return true
		}
		pass.Reportf(call.Pos(),
			"terminal transition %s has no reachable %s call: sweep parents waiting on this job never settle (//sync:owned if aggregation is not required)",
			calleeName(call), strings.Join(rule.Notify, "/"))
		return true
	})
}

func nameIn(name string, list []string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

// callReachable reports whether some path forward from stmt reaches a
// statement for which match holds (existential CFG reachability —
// statements after stmt in its own block count).
func callReachable(cfg *CFG, stmt ast.Stmt, match func(ast.Stmt) bool) bool {
	blockOf, idxOf := -1, -1
	for _, b := range cfg.Blocks {
		for i, s := range b.Stmts {
			if s == stmt {
				blockOf, idxOf = b.Index, i
			}
		}
	}
	if blockOf == -1 {
		return false
	}
	b := cfg.Blocks[blockOf]
	for i := idxOf + 1; i < len(b.Stmts); i++ {
		if match(b.Stmts[i]) {
			return true
		}
	}
	seen := make([]bool, len(cfg.Blocks))
	queue := []*Block{}
	for _, s := range b.Succs {
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur.Index] {
			continue
		}
		seen[cur.Index] = true
		for _, s := range cur.Stmts {
			if match(s) {
				return true
			}
		}
		queue = append(queue, cur.Succs...)
	}
	return false
}
