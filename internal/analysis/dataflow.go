package analysis

// dataflow.go — a small generic forward dataflow engine over the CFGs
// of cfg.go. A pass supplies the lattice as four functions; the engine
// owns the worklist and the fixpoint:
//
//	eng := &Dataflow[unitEnv]{
//		CFG:      fn.CFG(),
//		Bottom:   func() unitEnv { return unitEnv{} },
//		Clone:    cloneUnitEnv,
//		Join:     joinUnitEnv,           // in-place merge, reports change
//		Transfer: func(b *Block, s unitEnv) unitEnv { ... },
//	}
//	in := eng.Forward()                  // block -> state at block entry
//
// Forward iterates in block-index order (the builder emits blocks
// roughly in reverse postorder) until no out-state changes, so loops —
// including loop-carried facts through for/range back edges — reach
// their fixpoint. Transfer must not mutate shared structure it did not
// Clone; the engine clones the in-state before every Transfer call.

// Dataflow is one forward analysis instance over a single CFG.
type Dataflow[S any] struct {
	CFG *CFG

	// Bottom produces the empty (entry) state.
	Bottom func() S
	// Clone deep-copies a state.
	Clone func(S) S
	// Join merges src into dst, returning the merged state and whether
	// dst changed (the fixpoint condition).
	Join func(dst, src S) (S, bool)
	// Transfer applies one block's effect to a private copy of its
	// in-state and returns the out-state.
	Transfer func(*Block, S) S
}

// Forward runs to fixpoint and returns each block's in-state. The
// returned map lets a pass replay Transfer once per block afterwards
// with reporting enabled, so diagnostics are emitted exactly once.
func (d *Dataflow[S]) Forward() map[*Block]S {
	in := make(map[*Block]S, len(d.CFG.Blocks))
	out := make(map[*Block]S, len(d.CFG.Blocks))
	haveIn := make(map[*Block]bool, len(d.CFG.Blocks))

	entry := d.CFG.Entry()
	in[entry] = d.Bottom()
	haveIn[entry] = true

	// Seed every block so unreachable ("dead") blocks are analyzed too,
	// starting from the empty state.
	for _, b := range d.CFG.Blocks {
		if !haveIn[b] {
			in[b] = d.Bottom()
			haveIn[b] = true
		}
	}

	work := make([]*Block, len(d.CFG.Blocks))
	copy(work, d.CFG.Blocks)
	queued := make(map[*Block]bool, len(work))
	for _, b := range work {
		queued[b] = true
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		o := d.Transfer(b, d.Clone(in[b]))
		out[b] = o
		for _, s := range b.Succs {
			merged, changed := d.Join(in[s], d.Clone(o))
			in[s] = merged
			if changed && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}
