package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

func TestSuppressionForms(t *testing.T) {
	fset, f := parseSrc(t, `package p

func f() {
	_ = 1 //lint:ignore floatcheck trailing form
	//lint:ignore detcheck,errsink standalone form covers the next line
	_ = 2
	//lint:ignore * wildcard form
	_ = 3
}
`)
	idx, bad := buildSuppressions(fset, []*ast.File{f})
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed diagnostics: %v", bad)
	}
	check := func(pass string, line int, want bool) {
		t.Helper()
		got := idx.suppressed(pass, token.Position{Filename: "fixture.go", Line: line})
		if got != want {
			t.Errorf("suppressed(%s, line %d) = %v, want %v", pass, line, got, want)
		}
	}
	check("floatcheck", 4, true)  // trailing comment, same line
	check("unitcheck", 4, false)  // wrong pass
	check("detcheck", 6, true)    // standalone above
	check("errsink", 6, true)     // second pass in the list
	check("floatcheck", 6, false) // not listed
	check("unitcheck", 8, true)   // wildcard
	check("floatcheck", 10, false)
}

func TestSuppressionMalformed(t *testing.T) {
	fset, f := parseSrc(t, `package p

func f() {
	_ = 1 //lint:ignore floatcheck
	//lint:ignore nosuchpass some reason
	_ = 2
}
`)
	_, bad := buildSuppressions(fset, []*ast.File{f})
	if len(bad) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0].Message, "malformed") {
		t.Errorf("first diagnostic %q should mention malformed", bad[0].Message)
	}
	if !strings.Contains(bad[1].Message, "unknown pass") {
		t.Errorf("second diagnostic %q should mention unknown pass", bad[1].Message)
	}
	for _, d := range bad {
		if d.Pass != "tglint" {
			t.Errorf("malformed-directive diagnostic attributed to %q, want tglint", d.Pass)
		}
	}
}
