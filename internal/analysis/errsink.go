package analysis

import (
	"go/ast"
	"go/types"
)

// Errsink flags dropped error results, stricter than go vet:
//
//   - any call in statement position (including defer and go) that
//     discards an error returned by a module-internal API (config:
//     errsink.internalPrefixes) or by a callee on the strict-name list
//     (Step, SetPower, SteadyState, Emit, Flush, Close, Write, ...);
//   - explicit blank discards (`_ = r.Step(dt)`) of strict-list callees:
//     solver and sink errors carry state-corruption signals, so even a
//     deliberate drop must be annotated with its justification.
var Errsink = &Analyzer{
	Name: "errsink",
	Doc:  "flags dropped error results from solver/sink APIs",
	Run:  runErrsink,
}

func runErrsink(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(p, call, "")
				}
			case *ast.DeferStmt:
				checkDroppedCall(p, n.Call, "deferred ")
			case *ast.GoStmt:
				checkDroppedCall(p, n.Call, "spawned ")
			case *ast.AssignStmt:
				checkBlankDiscard(p, n)
			}
			return true
		})
	}
}

// errorResultIndexes returns the positions of error-typed results.
func errorResultIndexes(sig *types.Signature) []int {
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			idx = append(idx, i)
		}
	}
	return idx
}

// inScope reports whether the callee is one errsink polices: a strict
// method name, or any function from a module-internal package.
func inScope(p *Pass, call *ast.CallExpr) (string, bool) {
	name := calleeName(call)
	if p.Config.errsinkMethod(name) {
		return name, true
	}
	if obj := p.ObjectOf(call.Fun); obj != nil && obj.Pkg() != nil &&
		p.Config.errsinkInternal(obj.Pkg().Path()) {
		return name, true
	}
	return name, false
}

func checkDroppedCall(p *Pass, call *ast.CallExpr, prefix string) {
	sig, ok := typeAsSignature(p.TypeOf(call.Fun))
	if !ok {
		return
	}
	if len(errorResultIndexes(sig)) == 0 {
		return
	}
	name, ok := inScope(p, call)
	if !ok {
		return
	}
	p.Reportf(call.Pos(), "%serror result of %s is silently discarded; handle it or annotate with //lint:ignore errsink <reason>", prefix, name)
}

// checkBlankDiscard flags `_ = f()` / `x, _ := f()` when the blanked
// result is the error of a strict-list callee.
func checkBlankDiscard(p *Pass, a *ast.AssignStmt) {
	if len(a.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name := calleeName(call)
	if !p.Config.errsinkMethod(name) {
		return
	}
	sig, ok := typeAsSignature(p.TypeOf(call.Fun))
	if !ok {
		return
	}
	errIdx := errorResultIndexes(sig)
	for _, i := range errIdx {
		if i >= len(a.Lhs) {
			continue
		}
		if id, ok := a.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			p.Reportf(a.Lhs[i].Pos(), "error result of %s is blanked; solver/sink errors signal corrupted state — handle it or annotate with //lint:ignore errsink <reason>", name)
		}
	}
}
