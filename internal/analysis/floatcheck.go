package analysis

import (
	"go/ast"
	"go/token"
)

// Floatcheck flags == and != whose operands are floating point. The
// thermal and PDN solvers iterate to tolerances; exact equality on their
// outputs is almost always a latent bug (two mathematically equal
// expressions rarely compare equal after rounding). Raw comparison is
// allowed inside the approved epsilon helpers (config: floatcheck.helpers)
// and in the x != x NaN idiom; everything else needs an epsilon
// comparison or a //lint:ignore floatcheck with a reason (sentinel-zero
// checks on values that are set, never computed, qualify). Test files
// are outside the driver's scope entirely.
var Floatcheck = &Analyzer{
	Name: "floatcheck",
	Doc:  "flags raw ==/!= on floating-point operands outside approved epsilon helpers",
	Run:  runFloatcheck,
}

func runFloatcheck(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if p.Config.floatcheckHelper(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloatType(p.TypeOf(be.X)) && !isFloatType(p.TypeOf(be.Y)) {
					return true
				}
				if sameExpr(be.X, be.Y) {
					return true // x != x: the portable NaN test
				}
				p.Reportf(be.OpPos, "floating-point %s comparison: rounding makes exact equality unreliable; use an epsilon helper or annotate an intentional sentinel check", be.Op)
				return true
			})
		}
	}
}

// sameExpr reports whether two expressions are syntactically identical
// simple references (covers the x != x NaN idiom).
func sameExpr(a, b ast.Expr) bool {
	switch a := ast.Unparen(a).(type) {
	case *ast.Ident:
		b, ok := ast.Unparen(b).(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameExpr(a.X, b.X)
	}
	return false
}
