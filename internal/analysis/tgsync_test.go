package analysis

import (
	"strings"
	"testing"
)

func TestLockorderFixture(t *testing.T)    { checkFixture(t, Lockorder, "lockorder/requeue") }
func TestUnlockpathFixture(t *testing.T)   { checkFixture(t, Unlockpath, "unlockpath/paths") }
func TestBlockheldFixture(t *testing.T)    { checkFixture(t, Blockheld, "blockheld/serve") }
func TestGolifeFixture(t *testing.T)       { checkFixture(t, Golife, "golife/life") }
func TestGolifeSettleFixture(t *testing.T) { checkFixture(t, Golife, "golife/serve") }

// TestLockorderMalformedDirectives asserts both seeded broken //sync:
// directives through the shared baddir helper.
func TestLockorderMalformedDirectives(t *testing.T) {
	checkMalformedDirectives(t, Lockorder, "lockorder/baddir", "unknown //sync: annotation kind sequential")
}

// TestLockorderReportsBothChains pins the report shape on the distilled
// requeue inversion: one diagnostic whose message names both lock
// classes and the nextSeq call that closes the loop — and does NOT name
// classify, whose release-before-acquire handoff must-release tracking
// is supposed to erase.
func TestLockorderReportsBothChains(t *testing.T) {
	pkg := loadFixture(t, "lockorder/requeue")
	diags := Run([]*Package{pkg}, []*Analyzer{Lockorder}, DefaultConfig())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 cycle report: %v", len(diags), diags)
	}
	msg := diags[0].Message
	for _, want := range []string{"(Supervisor).mu", "(Job).mu", "nextSeq"} {
		if !strings.Contains(msg, want) {
			t.Errorf("cycle message missing %q: %s", want, msg)
		}
	}
	if strings.Contains(msg, "classify") {
		t.Errorf("classify handoff leaked into the cycle (must-release tracking broken): %s", msg)
	}
}
