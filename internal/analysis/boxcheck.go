package analysis

// boxcheck — the tgperf dispatch pass. Method calls through interface
// values inside the hot set cannot be devirtualized or inlined, and
// sort.Sort/sort.Slice* pay reflection plus a closure per call; both
// are reported. Calls through plain func values are deliberately NOT
// findings: the sanctioned allocation-free idiom stores prebuilt
// worker closures in struct fields and invokes them through par.Pool,
// and a func value dispatches through a code pointer, not an itable.
// Cold blocks (error return / panic) and //perf:dispatch-annotated
// lines are exempt.

import (
	"go/ast"
	"go/types"
)

var Boxcheck = &Analyzer{
	Name:         "boxcheck",
	Doc:          "dynamic dispatch and reflection-based sorts in the steady-state hot set",
	NeedsProgram: true,
	Run:          runBoxcheck,
}

// sortReflect lists the sort-package entry points that go through
// sort.Interface or reflect.Swapper.
var sortReflect = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true, "SliceIsSorted": true,
}

func runBoxcheck(pass *Pass) {
	anns, _ := buildPerfAnns(pass.Fset, pass.Files, "") // allocfree reports malformed directives

	target := pass.Program.pkgByPath(pass.ImportPath)
	if target == nil {
		return
	}
	hot := buildHotSet(pass.Program, pass.Config, target)
	seen := make(map[string]bool)
	for _, key := range sortedHotKeys(hot) {
		e := hot[key]
		if e.pkg != target || hotEntryExempt(pass.Fset, anns, e, "dispatch") {
			continue
		}
		scanHot(e.pkg.Info, e.body(), func(n ast.Node, ctx *hotCtx) bool {
			boxcheckNode(pass, anns, e, n, ctx, seen)
			return true
		})
	}
}

func boxcheckNode(pass *Pass, anns parAnnIndex, e *hotEntry, n ast.Node, ctx *hotCtx, seen map[string]bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok || ctx.cold {
		return
	}
	info := e.pkg.Info
	flag := func(msg string) {
		p := pass.Fset.Position(call.Pos())
		if anns.covered("dispatch", p) {
			return
		}
		key := p.String() + "|" + msg
		if seen[key] {
			return
		}
		seen[key] = true
		pass.Reportf(call.Pos(), "hot-path dynamic dispatch (reachable from %s): %s — devirtualize or annotate //perf:dispatch <reason>", e.root, msg)
	}

	if fn := calleeFunc(e.pkg, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sort" && sortReflect[fn.Name()] {
		flag("sort." + fn.Name() + " sorts through reflection; use a concrete sort")
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	if types.IsInterface(s.Recv()) {
		flag("interface method call " + types.TypeString(s.Recv(), nil) + "." + sel.Sel.Name)
	}
}
