package analysis

// unlockpath — every Lock/RLock must be post-dominated by its matching
// Unlock/RUnlock (or covered by a deferred one) on all paths to return
// (tgsync). The check is purely local: each function or function
// literal is one unit, analyzed over its own CFG with the same
// greatest-fixpoint must-analysis cacheflush uses for flush calls.
//
// Also reported here:
//
//   - double unlock: a lock released both by defer and explicitly on
//     the same single acquisition;
//   - mode mismatch: RLock paired with Unlock (or Lock with RUnlock);
//   - orphan release: an Unlock in a unit that never acquires the lock —
//     the cross-function handoff pattern — unless //sync:balanced
//     documents the ownership transfer. The same annotation exempts an
//     acquisition whose release lives in a callee.
//
// A `defer func() { ...; mu.Unlock() }()` literal counts as a deferred
// unlock of the enclosing function, not as an orphan in the literal.

import (
	"go/ast"
)

var Unlockpath = &Analyzer{
	Name: "unlockpath",
	Doc:  "every Lock/RLock is released by the matching Unlock on all paths to return",
	Run:  runUnlockpath,
}

// lockEvent is one lock-op call observed in a unit.
type lockEvent struct {
	class    string
	op       lockOp
	call     *ast.CallExpr
	deferred bool
}

func runUnlockpath(pass *Pass) {
	cfg := pass.Config
	if allowedBy(cfg.Tgsync.Allow, pass.ImportPath) {
		return
	}
	anns, _ := buildSyncAnns(pass.Fset, pass.Files, "")
	pkg := &Package{
		ImportPath: pass.ImportPath,
		Fset:       pass.Fset,
		Files:      pass.Files,
		Types:      pass.Pkg,
		Info:       pass.Info,
	}

	// Literals spelled `defer func() { ... }()` release on the way out of
	// their ENCLOSING function; collect them so their unlocks attribute
	// correctly.
	deferLits := map[*ast.FuncLit]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if d, isDefer := n.(*ast.DeferStmt); isDefer {
				if lit, isLit := ast.Unparen(d.Call.Fun).(*ast.FuncLit); isLit {
					deferLits[lit] = true
				}
			}
			return true
		})
	}

	for _, u := range syncUnits(pkg) {
		if u.lit != nil && deferLits[u.lit] {
			continue // owned by the enclosing unit's defer set
		}
		checkUnit(pass, pkg, anns, u, deferLits)
	}
}

// collectLockEvents gathers the unit's lock-op calls: direct statements,
// `defer mu.Unlock()` forms, and lock ops inside defer-wrapped literals
// (deferred, from the unit's perspective). Other nested literals are
// separate units and skipped.
func collectLockEvents(pkg *Package, u *syncUnit, deferLits map[*ast.FuncLit]bool) []*lockEvent {
	var events []*lockEvent
	var scan func(n ast.Node, deferred bool)
	scan = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if lit, isLit := ast.Unparen(n.Call.Fun).(*ast.FuncLit); isLit {
					scan(lit.Body, true)
					return false
				}
				if class, op, isOp := resolveLockOp(pkg, u.name, n.Call); isOp {
					events = append(events, &lockEvent{class: class, op: op, call: n.Call, deferred: true})
				}
				return false
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				return false // the spawned body is its own unit
			case *ast.CallExpr:
				if class, op, isOp := resolveLockOp(pkg, u.name, n); isOp {
					events = append(events, &lockEvent{class: class, op: op, call: n, deferred: deferred})
				}
			}
			return true
		})
	}
	scan(u.decl.Body, false)
	return events
}

func checkUnit(pass *Pass, pkg *Package, anns parAnnIndex, u *syncUnit, deferLits map[*ast.FuncLit]bool) {
	events := collectLockEvents(pkg, u, deferLits)
	if len(events) == 0 {
		return
	}

	// Per-class/mode tallies.
	type tally struct{ acquires, deferRel, explRel []*lockEvent }
	acc := map[string]*tally{}
	get := func(class string, read bool) *tally {
		k := class
		if read {
			k += "\x00r"
		}
		t := acc[k]
		if t == nil {
			t = &tally{}
			acc[k] = t
		}
		return t
	}
	hasAcquire := map[string]bool{}     // any mode
	hasAcquireMode := map[string]bool{} // class+mode key
	for _, e := range events {
		if e.op.acquires() {
			get(e.class, e.op.read()).acquires = append(get(e.class, e.op.read()).acquires, e)
			hasAcquire[e.class] = true
			hasAcquireMode[modeKey(e.class, e.op.read())] = true
		} else if e.deferred {
			get(e.class, e.op.read()).deferRel = append(get(e.class, e.op.read()).deferRel, e)
		} else {
			get(e.class, e.op.read()).explRel = append(get(e.class, e.op.read()).explRel, e)
		}
	}

	var cfg *CFG
	getCFG := func() *CFG {
		if cfg == nil {
			cfg = BuildCFG(u.decl)
		}
		return cfg
	}

	for _, e := range events {
		posn := pass.Fset.Position(e.call.Pos())
		t := get(e.class, e.op.read())
		verb, relName := "locked", "Unlock"
		if e.op.read() {
			verb, relName = "read-locked", "RUnlock"
		}
		switch {
		case e.op.acquires():
			if anns.covered("balanced", posn) {
				continue
			}
			if len(t.deferRel) > 0 {
				// Covered by defer; a lone acquisition that is ALSO released
				// explicitly runs the release twice.
				if len(t.acquires) == 1 && len(t.explRel) > 0 {
					pass.Reportf(t.explRel[0].call.Pos(),
						"%s is released both explicitly and by defer for a single %s (double unlock)",
						displayClass(e.class), acquireName(e.op))
				}
				continue
			}
			match := func(s ast.Stmt) bool {
				return stmtContains(s, func(n ast.Node) bool {
					call, isCall := n.(*ast.CallExpr)
					if !isCall {
						return false
					}
					class, op, isOp := resolveLockOp(pkg, u.name, call)
					return isOp && class == e.class && !op.acquires() && op.read() == e.op.read()
				})
			}
			stmt := enclosingStmt(getCFG(), e.call.Pos())
			if stmt == nil || !callPostdominates(getCFG(), stmt, match) {
				pass.Reportf(e.call.Pos(),
					"%s is %s here but not released on every path to return (missing %s or defer; //sync:balanced if a callee releases it)",
					displayClass(e.class), verb, relName)
			}
		case !e.op.acquires():
			if hasAcquireMode[modeKey(e.class, e.op.read())] {
				continue // pairing checked from the acquisition side
			}
			if hasAcquire[e.class] {
				other := "Lock"
				if !e.op.read() {
					other = "RLock"
				}
				pass.Reportf(e.call.Pos(),
					"%s is released with %s but this function acquires it with %s (lock-mode mismatch)",
					displayClass(e.class), relName, other)
				continue
			}
			if anns.covered("balanced", posn) {
				continue
			}
			pass.Reportf(e.call.Pos(),
				"%s is released here but this function never acquires it; annotate //sync:balanced if lock ownership is handed off by contract",
				displayClass(e.class))
		}
	}
}

func modeKey(class string, read bool) string {
	if read {
		return class + "\x00r"
	}
	return class
}

func acquireName(op lockOp) string {
	if op.read() {
		return "RLock"
	}
	return "Lock"
}
