package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Config tunes the passes. The repository ships one as .tglint.json at
// the module root; zero values fall back to the defaults below so a
// partial file only overrides what it mentions.
type Config struct {
	Detcheck struct {
		// Packages lists the simulation packages detcheck polices, as
		// import-path base names (e.g. "thermal") or full import paths.
		Packages []string `json:"packages"`
		// Allow exempts whole packages by import path (prefix match), e.g.
		// internal/telemetry, which legitimately reads wall-clock time.
		Allow []string `json:"allow"`
	} `json:"detcheck"`

	Floatcheck struct {
		// Helpers names functions allowed to contain raw float ==/!= —
		// the approved epsilon-comparison helpers themselves.
		Helpers []string `json:"helpers"`
	} `json:"floatcheck"`

	Errsink struct {
		// Methods are callee names whose error result must never be
		// dropped, even via an explicit blank assignment.
		Methods []string `json:"methods"`
		// InternalPrefixes marks import-path prefixes considered "our"
		// APIs: any discarded error from a callee in these packages is
		// flagged (statement-position drops only).
		InternalPrefixes []string `json:"internalPrefixes"`
	} `json:"errsink"`

	Aliascheck struct {
		// Packages lists the packages whose exported methods aliascheck
		// polices, as import-path base names or full import paths.
		Packages []string `json:"packages"`
	} `json:"aliascheck"`

	Goroutinecheck struct {
		// Allow exempts whole packages by import path (prefix match).
		Allow []string `json:"allow"`
	} `json:"goroutinecheck"`

	Invcheck struct {
		// Entrypoints maps import-path base names to the exported stepping
		// functions/methods that must route through the invariant
		// sanitizer hooks.
		Entrypoints map[string][]string `json:"entrypoints"`
	} `json:"invcheck"`

	Unitflow struct {
		// Allow exempts whole packages by import path (prefix match).
		Allow []string `json:"allow"`
	} `json:"unitflow"`

	Nanflow struct {
		// SinkPackages lists the packages (base names or import paths)
		// whose struct-field writes count as persistent-state sinks.
		SinkPackages []string `json:"sinkPackages"`
		// Guards are lower-case name fragments; a call to any function or
		// method whose name contains one is treated as a NaN guard for its
		// arguments (and receiver), killing taint.
		Guards []string `json:"guards"`
		// Sources adds NaN-introducing functions by canonical key
		// ("path.Name" or "path.(Recv).Name") to the built-in table
		// (math.Log/Sqrt/Pow/..., strconv.ParseFloat, unchecked division).
		Sources []string `json:"sources"`
		// DistrustFields makes division by a struct-field divisor a taint
		// source too; by default fields are trusted as construction-time
		// validated configuration.
		DistrustFields bool `json:"distrustFields"`
		// Allow exempts whole packages by import path (prefix match).
		Allow []string `json:"allow"`
	} `json:"nanflow"`

	Parwrite struct {
		// Allow exempts whole packages by import path (prefix match): their
		// fan-out sites are not analyzed (the pool's own internals).
		Allow []string `json:"allow"`
		// GoPackages lists the pipeline packages (base names or import
		// paths) whose `go` statements are analyzed as zero-chunk workers.
		GoPackages []string `json:"goPackages"`
		// AllowCallees lists import-path prefixes treated as safe to call
		// from workers without descending (audited leaf APIs: the invariant
		// checker, registry counters, the pool itself).
		AllowCallees []string `json:"allowCallees"`
	} `json:"parwrite"`

	Redorder struct {
		// GoPackages lists the pipeline packages whose go-statement
		// functions anchor a reduction scope.
		GoPackages []string `json:"goPackages"`
		// AllowCallees lists import-path prefixes the reachability walk
		// does not enter (the telemetry registry's CAS counters are the
		// sanctioned atomic-accumulate exception).
		AllowCallees []string `json:"allowCallees"`
	} `json:"redorder"`

	Cacheflush struct {
		// Rules lists the watched type/fields/flush triples; see
		// CacheflushRule.
		Rules []CacheflushRule `json:"rules"`
	} `json:"cacheflush"`

	Workerpure struct {
		// GoPackages lists the pipeline packages whose go statements count
		// as fan-out sites.
		GoPackages []string `json:"goPackages"`
		// Forbidden lists canonical function-key prefixes workers must not
		// reach (the record-stream APIs).
		Forbidden []string `json:"forbidden"`
	} `json:"workerpure"`

	Tgperf struct {
		// Roots maps import-path base names (or full import paths) to the
		// hot-loop entry functions ("Name" or "(Recv).Name") whose
		// transitive callees form the tgperf hot set. A package's roots
		// apply while analyzing that package or any package that depends
		// on it — exactly the closure the incremental fingerprints hash.
		Roots map[string][]string `json:"roots"`
		// AllowCallees lists import-path prefixes the hot-set walk does
		// not enter (audited allocation-free leaf APIs: the release-build
		// no-op invariant checker, the telemetry registry's recycled
		// spans and CAS counters).
		AllowCallees []string `json:"allowCallees"`
		// CapgrowPackages lists the packages capgrow polices, as base
		// names or full import paths (broader than the hot set: a growing
		// append in a loop hurts wherever it sits).
		CapgrowPackages []string `json:"capgrowPackages"`
	} `json:"tgperf"`

	Statecover struct {
		// Producers names the snapshot-constructing functions (State,
		// snapshot); every exported field of the snapshot struct must be
		// written by one of them.
		Producers []string `json:"producers"`
		// Consumers names the snapshot-applying functions (Restore); a
		// consumer taking a named struct S anchors the coverage check.
		Consumers []string `json:"consumers"`
	} `json:"statecover"`

	Tgsync struct {
		// Packages lists the concurrency-infrastructure packages (base
		// names or full import paths) blockheld and the golife settle
		// rules police. lockorder/unlockpath and the goroutine/timer
		// checks run everywhere outside Allow.
		Packages []string `json:"packages"`
		// Blocking lists import-path prefixes whose calls count as
		// blocking I/O while a lock is held.
		Blocking []string `json:"blocking"`
		// StopNames are lower-case name fragments that mark a channel as
		// a stop/teardown signal for golife's forever-loop check.
		StopNames []string `json:"stopNames"`
		// Settle declares golife's trigger→notify obligations: a call to
		// a Trigger outside the settle machinery must have a Notify call
		// reachable in its CFG.
		Settle []SettleRule `json:"settle"`
		// Allow exempts packages (import-path prefixes) from the whole
		// tgsync family.
		Allow []string `json:"allow"`
	} `json:"tgsync"`
}

// SettleRule is one golife settle obligation: Triggers are the
// terminal-transition functions, Notify the parent-notification calls
// that must stay reachable from every trigger call site. Functions
// named in either list are themselves exempt (they ARE the machinery).
type SettleRule struct {
	Triggers []string `json:"triggers"`
	Notify   []string `json:"notify"`
}

// CacheflushRule declares one mutation-implies-flush invariant for the
// cacheflush pass: mutating any of Fields on a value of Type must be
// followed by a call to one of the Flush callees on every path to
// return. Type is a named type's base name, or "importpath.Name" to pin
// the package. An empty Flush list declares the fields frozen after
// construction.
type CacheflushRule struct {
	Type   string   `json:"type"`
	Fields []string `json:"fields"`
	Flush  []string `json:"flush"`
}

// DefaultConfig returns the built-in configuration, matching the
// committed .tglint.json.
func DefaultConfig() *Config {
	c := &Config{}
	c.Detcheck.Packages = []string{
		"uarch", "workload", "power", "thermal", "pdn", "vr", "sim", "dvfs", "aging",
	}
	c.Detcheck.Allow = []string{"thermogater/internal/telemetry"}
	c.Floatcheck.Helpers = []string{"approxEqual", "almostEqual", "floatsEqual", "withinTol"}
	c.Errsink.Methods = []string{
		"Step", "SetPower", "SteadyState", "Emit", "Flush", "Close", "Write",
	}
	c.Errsink.InternalPrefixes = []string{"thermogater/"}
	c.Aliascheck.Packages = []string{
		"uarch", "workload", "power", "thermal", "pdn", "vr", "sim", "dvfs", "aging",
	}
	c.Invcheck.Entrypoints = map[string][]string{
		"sim":     {"Run"},
		"thermal": {"Step", "SteadyState"},
		"pdn":     {"SteadyNoise", "TransientWindow", "BurstPeakPct"},
		"vr":      {"NOn", "PlossAt"},
	}
	c.Nanflow.SinkPackages = []string{"thermal", "pdn", "vr", "sim"}
	c.Nanflow.Guards = []string{"validate", "clamp", "sanitize", "finite", "isnan", "isinf"}
	c.Statecover.Producers = []string{"State", "snapshot"}
	c.Statecover.Consumers = []string{"Restore"}
	c.Parwrite.Allow = []string{"thermogater/internal/par"}
	c.Parwrite.GoPackages = []string{"sim"}
	c.Parwrite.AllowCallees = []string{
		"thermogater/internal/invariant",
		"thermogater/internal/telemetry",
		"thermogater/internal/par",
	}
	c.Redorder.GoPackages = []string{"sim"}
	c.Redorder.AllowCallees = []string{
		"thermogater/internal/invariant",
		"thermogater/internal/telemetry",
		"thermogater/internal/par",
	}
	c.Cacheflush.Rules = []CacheflushRule{
		{Type: "Network", Fields: []string{"pathR", "conc"}, Flush: []string{"rebuildPaths"}},
		{Type: "Regulator", Fields: []string{"Pos"}, Flush: []string{"rebuildPaths"}},
		{Type: "Mesh", Fields: []string{"nodeBlock", "blockNodes", "vrNode", "nx", "ny", "x0", "y0"}, Flush: nil},
	}
	c.Tgperf.Roots = map[string][]string{
		"sim":      {"(Runner).stepEpoch", "(Runner).produceEpoch", "(Runner).domainEmergency"},
		"thermal":  {"(Model).Step", "(Watchdog).Step"},
		"pdn":      {"(Network).SteadyNoiseInto", "(Network).BurstPeakPct", "(Network).EffectiveResistance"},
		"core":     {"(Governor).Decide", "(Governor).Observe", "(Governor).ObserveEmergencies"},
		"uarch":    {"(Simulator).StepInto"},
		"vr":       {"(Network).NOn", "(Network).EtaAt", "(Network).PerVRLoss", "(Network).PlossAt"},
		"power":    {"(Model).Dynamic", "(Model).LeakageAt", "(Model).Total", "(Model).DomainDemand"},
		"stats":    {"(WMA).Observe", "(WMA).Predict"},
		"dvfs":     {"(Governor).Observe"},
		"aging":    {"(Tracker).Observe"},
		"workload": {"(Profile).PhaseAt"},
		"par":      {"(Pool).For"},
	}
	c.Tgperf.AllowCallees = []string{
		"thermogater/internal/invariant",
		"thermogater/internal/telemetry",
	}
	c.Tgperf.CapgrowPackages = []string{
		"uarch", "workload", "power", "thermal", "pdn", "vr", "sim", "dvfs", "aging", "core",
	}
	c.Tgsync.Packages = []string{"serve", "sim", "par", "experiments"}
	c.Tgsync.Blocking = []string{"os", "net", "io", "bufio"}
	c.Tgsync.StopNames = []string{
		"stop", "quit", "done", "cancel", "exit", "kill", "term", "shutdown", "abort",
	}
	c.Tgsync.Settle = []SettleRule{
		{Triggers: []string{"finish", "finishLocked"}, Notify: []string{"jobSettled", "aggregateSweep"}},
	}
	c.Workerpure.GoPackages = []string{"sim"}
	c.Workerpure.Forbidden = []string{
		"thermogater/internal/telemetry.(Registry).Emit",
		"thermogater/internal/telemetry.(Registry).StartSpan",
		"thermogater/internal/telemetry.(Registry).AddSink",
		"thermogater/internal/telemetry.(Registry).Close",
		"thermogater/internal/telemetry.(Span).",
		"thermogater/internal/telemetry.(JSONLSink).",
		"thermogater/internal/telemetry.(CSVSink).",
		"thermogater/internal/telemetry.(Record).",
		"thermogater/internal/telemetry.NewRecord",
		"thermogater/internal/telemetry.Write",
	}
	return c
}

// LoadConfig reads a JSON config file and overlays it on the defaults.
func LoadConfig(path string) (*Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(cfg); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return cfg, nil
}

// FindConfig walks from dir toward the filesystem root looking for
// .tglint.json, returning "" when none exists.
func FindConfig(dir string) string {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		p := filepath.Join(dir, ".tglint.json")
		if _, err := os.Stat(p); err == nil {
			return p
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// detcheckApplies reports whether detcheck polices the package.
func (c *Config) detcheckApplies(importPath string) bool {
	for _, allow := range c.Detcheck.Allow {
		if importPath == allow || strings.HasPrefix(importPath, allow+"/") {
			return false
		}
	}
	base := importPath[strings.LastIndex(importPath, "/")+1:]
	for _, p := range c.Detcheck.Packages {
		if p == base || p == importPath {
			return true
		}
	}
	return false
}

// aliascheckApplies reports whether aliascheck polices the package.
func (c *Config) aliascheckApplies(importPath string) bool {
	base := importPath[strings.LastIndex(importPath, "/")+1:]
	for _, p := range c.Aliascheck.Packages {
		if p == base || p == importPath {
			return true
		}
	}
	return false
}

// goroutinecheckApplies reports whether goroutinecheck polices the
// package (it runs everywhere except the allow list).
func (c *Config) goroutinecheckApplies(importPath string) bool {
	for _, allow := range c.Goroutinecheck.Allow {
		if importPath == allow || strings.HasPrefix(importPath, allow+"/") {
			return false
		}
	}
	return true
}

// invcheckEntrypoints returns the entry-point name set configured for the
// package, keyed by import-path base name (or full import path).
func (c *Config) invcheckEntrypoints(importPath string) map[string]bool {
	base := importPath[strings.LastIndex(importPath, "/")+1:]
	var names []string
	if n, ok := c.Invcheck.Entrypoints[importPath]; ok {
		names = n
	} else if n, ok := c.Invcheck.Entrypoints[base]; ok {
		names = n
	}
	if len(names) == 0 {
		return nil
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

// floatcheckHelper reports whether raw float comparison is allowed
// inside a function with this name.
func (c *Config) floatcheckHelper(funcName string) bool {
	for _, h := range c.Floatcheck.Helpers {
		if h == funcName {
			return true
		}
	}
	return false
}

// errsinkMethod reports whether the callee name is on the strict list.
func (c *Config) errsinkMethod(name string) bool {
	for _, m := range c.Errsink.Methods {
		if m == name {
			return true
		}
	}
	return false
}

// errsinkInternal reports whether the callee's package counts as a
// module-internal API.
func (c *Config) errsinkInternal(pkgPath string) bool {
	for _, p := range c.Errsink.InternalPrefixes {
		if strings.HasPrefix(pkgPath, p) {
			return true
		}
	}
	return false
}

// allowedBy reports whether importPath is covered by an allow list of
// import-path prefixes.
func allowedBy(allow []string, importPath string) bool {
	for _, a := range allow {
		if importPath == a || strings.HasPrefix(importPath, a+"/") {
			return true
		}
	}
	return false
}

// nanflowSinkPackage reports whether field writes in the package count
// as persistent-state sinks.
func (c *Config) nanflowSinkPackage(importPath string) bool {
	base := importPath[strings.LastIndex(importPath, "/")+1:]
	for _, p := range c.Nanflow.SinkPackages {
		if p == base || p == importPath {
			return true
		}
	}
	return false
}

// nanflowGuardName reports whether a callee name acts as a NaN guard.
func (c *Config) nanflowGuardName(name string) bool {
	lower := strings.ToLower(name)
	for _, g := range c.Nanflow.Guards {
		if g != "" && strings.Contains(lower, g) {
			return true
		}
	}
	return false
}

// statecoverProducer / statecoverConsumer classify function names.
func (c *Config) statecoverProducer(name string) bool {
	for _, p := range c.Statecover.Producers {
		if p == name {
			return true
		}
	}
	return false
}

func (c *Config) statecoverConsumer(name string) bool {
	for _, p := range c.Statecover.Consumers {
		if p == name {
			return true
		}
	}
	return false
}
