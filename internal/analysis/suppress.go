package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A suppression directive has the form
//
//	//lint:ignore passname[,passname...] reason
//
// and silences matching diagnostics on its own line (trailing comment)
// or on the line directly below (standalone comment). The reason is
// mandatory: an ignore without one is itself reported, so every
// suppression in the tree carries its justification. "*" matches every
// pass.
const ignorePrefix = "//lint:ignore"

type suppression struct {
	passes []string // parsed pass names, or ["*"]
}

func (s suppression) matches(pass string) bool {
	for _, p := range s.passes {
		if p == "*" || p == pass {
			return true
		}
	}
	return false
}

// suppressionIndex maps file → line → directives covering that line.
type suppressionIndex map[string]map[int][]suppression

func (idx suppressionIndex) suppressed(pass string, pos token.Position) bool {
	for _, s := range idx[pos.Filename][pos.Line] {
		if s.matches(pass) {
			return true
		}
	}
	return false
}

// buildSuppressions scans every comment in the files, returning the
// index plus diagnostics for malformed directives (missing pass list or
// missing reason).
func buildSuppressions(fset *token.FileSet, files []*ast.File) (suppressionIndex, []Diagnostic) {
	idx := make(suppressionIndex)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Pass:    "tglint",
						Message: "malformed //lint:ignore directive: want \"//lint:ignore pass reason\"",
					})
					continue
				}
				var passes []string
				for _, p := range strings.Split(fields[0], ",") {
					p = strings.TrimSpace(p)
					if p == "" {
						continue
					}
					if p != "*" && ByName(p) == nil {
						bad = append(bad, Diagnostic{
							Pos:     pos,
							Pass:    "tglint",
							Message: "//lint:ignore names unknown pass \"" + p + "\"",
						})
					}
					passes = append(passes, p)
				}
				if len(passes) == 0 {
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]suppression)
					idx[pos.Filename] = byLine
				}
				s := suppression{passes: passes}
				// Cover the directive's own line (trailing form) and the
				// next line (standalone form above the offending code).
				byLine[pos.Line] = append(byLine[pos.Line], s)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], s)
			}
		}
	}
	return idx, bad
}
