package analysis

import "testing"

func TestUnitcheckFixture(t *testing.T) {
	checkFixture(t, Unitcheck, "unitcheck")
}

func TestSuffixUnit(t *testing.T) {
	cases := []struct {
		name string
		want string // expected suffix, "" for no unit
	}{
		{"tempC", "C"},
		{"MaxTempC", "C"},
		{"tempK", "K"},
		{"dtS", "S"},
		{"dtMS", "MS"},
		{"TotalNS", "NS"},
		{"AvgPlossW", "W"},
		{"FreqGHz", "GHz"},
		{"VddV", "V"},
		{"demandA", "A"},
		{"WidthMM", "MM"},
		{"capJPerK", ""},       // compound unit: J per K
		{"SinkResKPerW", ""},   // compound unit: K per W
		{"BurstRatePerMS", ""}, // rate, not a duration
		{"DVFS", ""},           // initialism, S not a camelCase suffix
		{"CSV", ""},
		{"NOC", ""},
		{"WMA", ""},
		{"K", ""}, // the whole name is the suffix: not a tag
		{"KSiWPerMMK", ""},
		{"PoutPerAreaWmm2", ""},
	}
	for _, tc := range cases {
		got := ""
		if u := suffixUnit(tc.name); u != nil {
			got = u.Suffix
		}
		if got != tc.want {
			t.Errorf("suffixUnit(%q) = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestUnitMismatchKinds(t *testing.T) {
	c := lookupSuffix("C")
	k := lookupSuffix("K")
	s := lookupSuffix("S")
	ms := lookupSuffix("MS")
	mw := lookupSuffix("mW")
	mwUpper := lookupSuffix("MW")
	if got := mismatch(c, k); got != "scale" {
		t.Errorf("C vs K = %q, want scale", got)
	}
	if got := mismatch(c, s); got != "dimension" {
		t.Errorf("C vs S = %q, want dimension", got)
	}
	if got := mismatch(s, ms); got != "scale" {
		t.Errorf("S vs MS = %q, want scale", got)
	}
	if got := mismatch(mw, mwUpper); got != "" {
		t.Errorf("mW vs MW = %q, want compatible", got)
	}
	if got := mismatch(nil, c); got != "" {
		t.Errorf("nil vs C = %q, want compatible", got)
	}
}
