package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeIncrModule lays out a throwaway module with two packages, b
// importing a, each carrying one floatcheck violation.
func writeIncrModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tgincr\n\ngo 1.22\n",
		"a/a.go": `package a

// Eq compares raw floats: a seeded floatcheck violation.
func Eq(x, y float64) bool { return x == y }
`,
		"b/b.go": `package b

import "tgincr/a"

func Same(x, y float64) bool {
	if x != y { // another seeded violation
		return false
	}
	return a.Eq(x, y)
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestIncrementalGolden is the cache contract end to end: a cold run
// analyzes everything, a no-change rerun serves every package from the
// cache without even loading, an edit re-analyzes only the edited
// package and its dependents — and every variant returns identical
// findings.
func TestIncrementalGolden(t *testing.T) {
	dir := writeIncrModule(t)
	cacheDir := filepath.Join(dir, ".tglint-cache")
	analyzers := []*Analyzer{Floatcheck}
	run := func() ([]Diagnostic, *CacheStats) {
		diags, stats, err := RunIncremental(dir, []string{"./..."}, analyzers, DefaultConfig(), cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		return diags, stats
	}

	cold, st := run()
	if st.Targets != 2 || st.Misses != 2 || st.Hits != 0 || st.SkippedLoad {
		t.Fatalf("cold run stats: %+v", st)
	}
	if len(cold) != 2 {
		t.Fatalf("cold run found %d diagnostics, want 2: %v", len(cold), cold)
	}

	warm, st := run()
	if st.Hits != 2 || st.Misses != 0 || !st.SkippedLoad {
		t.Fatalf("no-change rerun stats: %+v (want all hits, load skipped)", st)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("no-change rerun drifted:\ncold: %v\nwarm: %v", cold, warm)
	}

	// Touch the leaf package b with a semantics-preserving edit: only b
	// re-analyzes (a does not import it), findings stay identical.
	bPath := filepath.Join(dir, "b", "b.go")
	src, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, append(src, []byte("\n// trailing comment\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	editB, st := run()
	if st.Hits != 1 || st.Misses != 1 || st.SkippedLoad {
		t.Fatalf("after editing b: %+v (want 1 hit, 1 miss)", st)
	}
	if !reflect.DeepEqual(editB, cold) {
		t.Fatalf("findings drifted after comment-only edit of b:\ncold: %v\ngot:  %v", cold, editB)
	}

	// Editing a must also invalidate its dependent b.
	aPath := filepath.Join(dir, "a", "a.go")
	src, err = os.ReadFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aPath, append(src, []byte("\n// trailing comment\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	editA, st := run()
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("after editing a: %+v (want both re-analyzed: b depends on a)", st)
	}
	if !reflect.DeepEqual(editA, cold) {
		t.Fatalf("findings drifted after comment-only edit of a:\ncold: %v\ngot:  %v", cold, editA)
	}

	// A config change must drop the cache wholesale (engine mismatch).
	cfg := DefaultConfig()
	cfg.Floatcheck.Helpers = append(cfg.Floatcheck.Helpers, "customEq")
	_, st2, err := RunIncremental(dir, []string{"./..."}, analyzers, cfg, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Hits != 0 || st2.Misses != 2 {
		t.Fatalf("after config change: %+v (want full re-analysis)", st2)
	}

	// The tgsync section is part of the engine fingerprint too: warm the
	// cache back up, then mutate only tgsync config and expect another
	// wholesale drop.
	if _, _, err := RunIncremental(dir, []string{"./..."}, analyzers, cfg, cacheDir); err != nil {
		t.Fatal(err)
	}
	cfg.Tgsync.StopNames = append(cfg.Tgsync.StopNames, "halt")
	_, st3, err := RunIncremental(dir, []string{"./..."}, analyzers, cfg, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Hits != 0 || st3.Misses != 2 {
		t.Fatalf("after tgsync config change: %+v (want full re-analysis)", st3)
	}
}
