package analysis

import "testing"

func TestFloatcheckFixture(t *testing.T) {
	checkFixture(t, Floatcheck, "floatcheck")
}

// TestFloatcheckHelperConfig proves the helper exemption is config
// driven: dropping approxEqual from the helper list makes its internal
// comparison fire.
func TestFloatcheckHelperConfig(t *testing.T) {
	pkg := loadFixture(t, "floatcheck")
	cfg := DefaultConfig()
	cfg.Floatcheck.Helpers = nil
	diags := Run([]*Package{pkg}, []*Analyzer{Floatcheck}, cfg)
	base := Run([]*Package{pkg}, []*Analyzer{Floatcheck}, DefaultConfig())
	if len(diags) != len(base)+1 {
		t.Errorf("without helper exemption got %d diagnostics, want %d", len(diags), len(base)+1)
	}
}
