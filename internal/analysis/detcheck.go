package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detcheck forbids nondeterminism sources inside the simulation
// packages (configurable; by default uarch, workload, power, thermal,
// pdn, vr, sim, dvfs, aging — telemetry is allowlisted because it
// legitimately timestamps with wall-clock time):
//
//   - time.Now / time.Since / time.Until — wall-clock reads make runs
//     unreproducible; inject a clock instead,
//   - package-level math/rand (and math/rand/v2) functions — the global
//     generator couples every consumer's stream; use workload.RNG,
//   - os environment reads (Getenv, LookupEnv, Environ, ExpandEnv) —
//     hidden inputs the result file does not record,
//   - map iteration whose body is order-sensitive: last-write-wins
//     assignments derived from the iteration variables, floating-point
//     accumulation, or appends of the iteration variables to a slice
//     that is never sorted afterwards.
var Detcheck = &Analyzer{
	Name: "detcheck",
	Doc:  "forbids wall-clock, global rand, env reads, and order-sensitive map iteration in simulation packages",
	Run:  runDetcheck,
}

// randConstructors are the math/rand functions that merely build
// generators (deterministic given a seed) rather than consuming the
// global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

var envReaders = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
}

func runDetcheck(p *Pass) {
	if !p.Config.detcheckApplies(p.ImportPath) {
		return
	}
	for _, f := range p.Files {
		// Walk top-level declarations so map-range analysis knows its
		// enclosing function (for the sorted-afterwards carve-out).
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkDetFunc(p, fn)
			return true
		})
	}
}

func checkDetFunc(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkForbiddenRef(p, n)
		case *ast.RangeStmt:
			checkMapRange(p, fn, n)
		}
		return true
	})
}

// checkForbiddenRef flags any reference (call or value use) to a
// forbidden stdlib function.
func checkForbiddenRef(p *Pass, sel *ast.SelectorExpr) {
	obj := p.Info.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are seeded and fine
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			p.Reportf(sel.Pos(), "time.%s in simulation package: wall-clock reads break reproducibility; inject a clock or move timing to telemetry", name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			p.Reportf(sel.Pos(), "global math/rand.%s in simulation package: the shared stream makes runs depend on unrelated consumers; use workload.RNG or a locally seeded rand.New", name)
		}
	case "os":
		if envReaders[name] {
			p.Reportf(sel.Pos(), "os.%s in simulation package: environment reads are hidden inputs; thread configuration through Config instead", name)
		}
	}
}

// checkMapRange flags order-sensitive writes inside a range over a map.
func checkMapRange(p *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	keyObj := rangeVarObj(p, rng.Key)
	valObj := rangeVarObj(p, rng.Value)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range a.Lhs {
			root := rootObj(p, lhs)
			if root == nil || !declaredOutside(root, rng) {
				continue
			}
			_, indexed := ast.Unparen(lhs).(*ast.IndexExpr)
			var rhs ast.Expr
			if i < len(a.Rhs) {
				rhs = a.Rhs[i]
			}
			switch {
			case indexed:
				// Per-key writes into another map are deterministic; only
				// positional containers make order visible.
			case isAppendOf(p, rhs, root):
				if usesObj(p, rhs, keyObj) || usesObj(p, rhs, valObj) {
					if !sortedLater(p, fn, rng, root) {
						p.Reportf(a.Pos(), "append of map-iteration values to %q: map order is nondeterministic; sort %q afterwards or iterate sorted keys", root.Name(), root.Name())
					}
				}
			case a.Tok != token.ASSIGN && a.Tok != token.DEFINE:
				// Compound assignment: float accumulation depends on
				// iteration order through rounding.
				if isFloatType(p.TypeOf(lhs)) {
					p.Reportf(a.Pos(), "floating-point accumulation into %q while ranging over a map: summation order is nondeterministic; iterate sorted keys", root.Name())
				}
			default:
				if rhs != nil && (usesObj(p, rhs, keyObj) || usesObj(p, rhs, valObj)) {
					p.Reportf(a.Pos(), "last-write-wins assignment to %q from map-iteration variables: the surviving value depends on map order; iterate sorted keys", root.Name())
				}
			}
		}
		return true
	})
}

func rangeVarObj(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// rootObj unwraps an assignable expression to the object of its base
// identifier (x, x.f, x[i], *x → x).
func rootObj(p *Pass, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return p.Info.ObjectOf(t)
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

func isAppendOf(p *Pass, rhs ast.Expr, slice types.Object) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	return rootObj(p, call.Args[0]) == slice
}

// usesObj reports whether the expression references obj.
func usesObj(p *Pass, e ast.Expr, obj types.Object) bool {
	if e == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortedLater accepts the collect-then-sort idiom: after the range, the
// enclosing function calls into package sort or slices with the
// collected slice.
func sortedLater(p *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, slice types.Object) bool {
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj, ok := p.Info.ObjectOf(sel.Sel).(*types.Func); ok && obj.Pkg() != nil {
			if path := obj.Pkg().Path(); path == "sort" || path == "slices" {
				for _, arg := range call.Args {
					if rootObj(p, arg) == slice {
						sorted = true
					}
				}
			}
		}
		return !sorted
	})
	return sorted
}
