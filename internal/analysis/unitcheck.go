package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Unitcheck enforces the repository's unit-suffix convention. Every
// physical quantity is a bare float64 whose unit lives only in its
// identifier suffix (tempC, dtS, PlossW, FreqGHz, ...). The pass learns
// a unit from each identifier's suffix and flags
//
//   - call arguments whose unit contradicts the parameter's unit
//     (passing tempK into func Reset(tempC float64)),
//   - assignments / var declarations / keyed struct literals pairing
//     mismatched units, and
//   - additive arithmetic or comparisons mixing incompatible units.
//
// The Celsius↔Kelvin conversion idiom (± 273.15) is recognised, so
// `tempK := tempC + 273.15` is accepted. Units are only inferred for
// float-typed expressions, which keeps enum-ish names like core.OracV
// out of scope, and suffixes preceded by "Per" (SinkResKPerW) are
// treated as compound units and skipped.
var Unitcheck = &Analyzer{
	Name: "unitcheck",
	Doc:  "flags identifier unit-suffix contradictions (C/K, W/mW, S/MS, ...)",
	Run:  runUnitcheck,
}

// unitInfo is one entry of the suffix lattice.
type unitInfo struct {
	Suffix string // case-sensitive identifier suffix
	Dim    string // dimension key: two units are convertible iff dims match
	Name   string // human-readable unit name for diagnostics
}

// UnitLattice is the suffix → unit table, longest suffix first so that
// FreqGHz matches GHz rather than Hz. Exported for the docs generator
// and the tests.
var UnitLattice = []unitInfo{
	{"GHz", "frequency", "gigahertz"},
	{"MHz", "frequency", "megahertz"},
	{"KHz", "frequency", "kilohertz"},
	{"Hz", "frequency", "hertz"},
	{"mW", "power", "milliwatts"},
	{"MW", "power", "milliwatts"}, // exported-identifier spelling of mW
	{"mV", "voltage", "millivolts"},
	{"MV", "voltage", "millivolts"},
	{"NS", "time", "nanoseconds"},
	{"Ns", "time", "nanoseconds"},
	{"US", "time", "microseconds"},
	{"MS", "time", "milliseconds"},
	{"MM", "length", "millimetres"},
	{"C", "temperature", "degrees Celsius"},
	{"K", "temperature", "kelvin"},
	{"W", "power", "watts"},
	{"V", "voltage", "volts"},
	{"A", "current", "amperes"},
	{"S", "time", "seconds"},
	{"J", "energy", "joules"},
}

// canonicalSuffix folds spelling variants (MW → mW, Ns → NS) so scale
// comparison treats them as the same unit.
func canonicalSuffix(s string) string {
	switch s {
	case "MW":
		return "mW"
	case "MV":
		return "mV"
	case "Ns":
		return "NS"
	}
	return s
}

// suffixUnit extracts a unit from an identifier name, or nil. The
// character before the suffix must be a lower-case letter or digit (the
// camelCase boundary: MaxTempC yes, DVFS/CSV/NOC no), and "Per"
// immediately before the suffix marks a compound unit (SinkResKPerW,
// capJPerK) that carries no single-unit meaning.
func suffixUnit(name string) *unitInfo {
	for i := range UnitLattice {
		u := &UnitLattice[i]
		if !strings.HasSuffix(name, u.Suffix) {
			continue
		}
		cut := len(name) - len(u.Suffix)
		if cut == 0 {
			continue // the whole name is the suffix: not a unit tag
		}
		prev := name[cut-1]
		if !(prev >= 'a' && prev <= 'z' || prev >= '0' && prev <= '9') {
			continue
		}
		if cut >= 3 && name[cut-3:cut] == "Per" {
			continue
		}
		return u
	}
	return nil
}

// kelvinOffset is the Celsius↔Kelvin conversion constant the pass
// recognises as an explicit unit conversion.
const kelvinOffset = "273.15"

func isKelvinOffset(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.FLOAT && lit.Value == kelvinOffset
}

type unitChecker struct {
	pass *Pass
}

func runUnitcheck(p *Pass) {
	c := &unitChecker{pass: p}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				c.checkCall(n)
			case *ast.AssignStmt:
				c.checkAssign(n)
			case *ast.ValueSpec:
				c.checkValueSpec(n)
			case *ast.CompositeLit:
				c.checkCompositeLit(n)
			case *ast.BinaryExpr:
				c.checkArith(n)
			}
			return true
		})
	}
}

func (c *unitChecker) isFloat(e ast.Expr) bool {
	return isFloatType(c.pass.TypeOf(e))
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// unitOf infers the unit of an expression, best-effort. It never
// reports; checkArith owns diagnostics for mixed operands.
func (c *unitChecker) unitOf(e ast.Expr) *unitInfo {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if c.isFloat(e) {
			return suffixUnit(e.Name)
		}
	case *ast.SelectorExpr:
		if c.isFloat(e) {
			return suffixUnit(e.Sel.Name)
		}
	case *ast.CallExpr:
		if !c.isFloat(e) {
			return nil
		}
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			return suffixUnit(fun.Name)
		case *ast.SelectorExpr:
			return suffixUnit(fun.Sel.Name)
		}
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return c.unitOf(e.X)
		}
	case *ast.BinaryExpr:
		return c.binaryUnit(e)
	}
	return nil
}

// binaryUnit resolves the unit of an additive expression: the ±273.15
// idiom converts between C and K, a unit plus a unitless term keeps the
// unit, and mismatched operands resolve to no unit (checkArith reports
// them separately).
func (c *unitChecker) binaryUnit(e *ast.BinaryExpr) *unitInfo {
	if e.Op != token.ADD && e.Op != token.SUB {
		return nil // products and quotients change dimension: give up
	}
	lu, ru := c.unitOf(e.X), c.unitOf(e.Y)
	if isKelvinOffset(e.Y) {
		return convertTemp(lu, e.Op)
	}
	if isKelvinOffset(e.X) && e.Op == token.ADD {
		return convertTemp(ru, e.Op)
	}
	switch {
	case lu != nil && ru != nil:
		if canonicalSuffix(lu.Suffix) == canonicalSuffix(ru.Suffix) {
			return lu
		}
		return nil
	case lu != nil:
		return lu
	default:
		return ru
	}
}

// convertTemp maps tempC + 273.15 → kelvin and tempK - 273.15 → Celsius;
// any other combination with the offset constant is left unit-less.
func convertTemp(u *unitInfo, op token.Token) *unitInfo {
	if u == nil {
		return nil
	}
	switch {
	case u.Suffix == "C" && op == token.ADD:
		return lookupSuffix("K")
	case u.Suffix == "K" && op == token.SUB:
		return lookupSuffix("C")
	}
	return nil
}

func lookupSuffix(s string) *unitInfo {
	for i := range UnitLattice {
		if UnitLattice[i].Suffix == s {
			return &UnitLattice[i]
		}
	}
	return nil
}

// mismatch classifies a unit pair: "" (compatible), "dimension", or
// "scale".
func mismatch(a, b *unitInfo) string {
	if a == nil || b == nil {
		return ""
	}
	if a.Dim != b.Dim {
		return "dimension"
	}
	if canonicalSuffix(a.Suffix) != canonicalSuffix(b.Suffix) {
		return "scale"
	}
	return ""
}

func (c *unitChecker) checkCall(call *ast.CallExpr) {
	sig, ok := typeAsSignature(c.pass.TypeOf(call.Fun))
	if !ok {
		return
	}
	np := sig.Params().Len()
	if np == 0 {
		return
	}
	funcName := calleeName(call)
	for i, arg := range call.Args {
		pi := i
		if pi >= np {
			if !sig.Variadic() {
				return
			}
			pi = np - 1
		}
		param := sig.Params().At(pi)
		ptype := param.Type()
		if sig.Variadic() && pi == np-1 {
			if sl, ok := ptype.(*types.Slice); ok {
				ptype = sl.Elem()
			}
		}
		if !isFloatType(ptype) {
			continue
		}
		pu := suffixUnit(param.Name())
		if pu == nil {
			continue
		}
		au := c.unitOf(arg)
		if kind := mismatch(au, pu); kind != "" {
			c.pass.Reportf(arg.Pos(),
				"%s mismatch: argument in %s (%s) passed to parameter %q of %s (%s)",
				kind, au.Name, au.Suffix, param.Name(), funcName, pu.Name)
		}
	}
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "function"
}

func (c *unitChecker) checkAssign(a *ast.AssignStmt) {
	switch a.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(a.Lhs) != len(a.Rhs) {
			return // tuple assignment from a call: units come from the callee
		}
		for i := range a.Lhs {
			c.checkPair(a.Rhs[i].Pos(), a.Lhs[i], a.Rhs[i], "assigned to")
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(a.Lhs) == 1 && len(a.Rhs) == 1 {
			c.checkPair(a.Rhs[0].Pos(), a.Lhs[0], a.Rhs[0], "accumulated into")
		}
	}
}

// checkPair flags rhs's unit contradicting the unit of the destination
// expression dst.
func (c *unitChecker) checkPair(pos token.Pos, dst, rhs ast.Expr, verb string) {
	du := c.unitOf(dst)
	if du == nil {
		return
	}
	ru := c.unitOf(rhs)
	if kind := mismatch(ru, du); kind != "" {
		c.pass.Reportf(pos, "%s mismatch: %s (%s) %s %q (%s)",
			kind, ru.Name, ru.Suffix, verb, exprName(dst), du.Name)
	}
}

func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return "expression"
}

func (c *unitChecker) checkValueSpec(vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, name := range vs.Names {
		du := suffixUnit(name.Name)
		if du == nil || !c.isFloat(name) {
			continue
		}
		ru := c.unitOf(vs.Values[i])
		if kind := mismatch(ru, du); kind != "" {
			c.pass.Reportf(vs.Values[i].Pos(), "%s mismatch: %s (%s) initialises %q (%s)",
				kind, ru.Name, ru.Suffix, name.Name, du.Name)
		}
	}
}

func (c *unitChecker) checkCompositeLit(cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if !c.isFloat(kv.Value) {
			continue
		}
		ku := suffixUnit(key.Name)
		if ku == nil {
			continue
		}
		vu := c.unitOf(kv.Value)
		if kind := mismatch(vu, ku); kind != "" {
			c.pass.Reportf(kv.Value.Pos(), "%s mismatch: %s (%s) assigned to field %q (%s)",
				kind, vu.Name, vu.Suffix, key.Name, ku.Name)
		}
	}
}

// checkArith flags additive arithmetic and comparisons over operands
// with contradictory units.
func (c *unitChecker) checkArith(e *ast.BinaryExpr) {
	switch e.Op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	if isKelvinOffset(e.X) || isKelvinOffset(e.Y) {
		return // explicit C↔K conversion
	}
	lu, ru := c.unitOf(e.X), c.unitOf(e.Y)
	if kind := mismatch(lu, ru); kind != "" {
		c.pass.Reportf(e.OpPos, "%s mismatch: %s (%s) %s %s (%s) without conversion",
			kind, lu.Name, lu.Suffix, e.Op, ru.Name, ru.Suffix)
	}
}
