package analysis

import "testing"

func TestGoroutinecheckFixture(t *testing.T) {
	checkFixture(t, Goroutinecheck, "goroutinecheck/worker")
}

// TestGoroutinecheckAllowlist proves the config allowlist silences a
// package wholesale.
func TestGoroutinecheckAllowlist(t *testing.T) {
	pkg := loadFixture(t, "goroutinecheck/worker")
	cfg := DefaultConfig()
	cfg.Goroutinecheck.Allow = append(cfg.Goroutinecheck.Allow, pkg.ImportPath)
	if diags := Run([]*Package{pkg}, []*Analyzer{Goroutinecheck}, cfg); len(diags) != 0 {
		t.Errorf("allowlisted package still produced %d diagnostics, e.g. %s", len(diags), diags[0])
	}
}

// TestGoroutinecheckCleanFixture proves the pass is quiet on goroutine-free
// code.
func TestGoroutinecheckCleanFixture(t *testing.T) {
	pkg := loadFixture(t, "clean")
	if diags := Run([]*Package{pkg}, []*Analyzer{Goroutinecheck}, DefaultConfig()); len(diags) != 0 {
		t.Errorf("clean fixture produced %d diagnostics, e.g. %s", len(diags), diags[0])
	}
}
