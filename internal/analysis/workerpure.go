package analysis

// workerpure enforces the byte-identical-across-resume telemetry rule
// from PR 6 (docs/PERFORMANCE.md): worker-reachable code may bump
// registry counters — they aggregate order-independently into monotone
// snapshots — but must never touch the per-epoch record stream (Record
// construction, Registry.Emit, sink Emit/Flush, span trees), whose
// byte-identity across worker counts and checkpoint resume is a tested
// guarantee. A record emitted from inside a fan-out would interleave
// nondeterministically with the serial stream.
//
// The pass walks everything reachable from each fan-out site (the same
// sites parwrite analyzes: (*par.Pool).For workers plus `go` statements
// in the configured pipeline packages) over the tgflow call graph and
// reports any call whose canonical key matches a configured forbidden
// prefix, naming the call chain that reached it.

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Workerpure is the record-stream purity analyzer.
var Workerpure = &Analyzer{
	Name:         "workerpure",
	Doc:          "worker-reachable code may touch counters but not the record stream",
	Run:          runWorkerpure,
	NeedsProgram: true,
}

func runWorkerpure(pass *Pass) {
	cfg := pass.Config
	if len(cfg.Workerpure.Forbidden) == 0 {
		return
	}
	pkg := pass.Program.pkgByPath(pass.ImportPath)
	if pkg == nil {
		return
	}
	includeGo := pkgMatches(cfg.Workerpure.GoPackages, pass.ImportPath)
	sites := findFanouts(pkg, pass.Program, includeGo)

	forbidden := func(key string) bool {
		for _, p := range cfg.Workerpure.Forbidden {
			if strings.HasPrefix(key, p) {
				return true
			}
		}
		return false
	}

	for _, site := range sites {
		// Direct calls in the worker bodies, then BFS through the program.
		roots := map[string]bool{}
		for _, lit := range site.lits {
			ast.Inspect(lit, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(pkg, call); callee != nil {
					key := FuncKey(callee)
					if forbidden(key) {
						pass.Reportf(call.Pos(), "worker calls %s; workers must not write the record stream", key)
					} else {
						roots[key] = true
					}
				}
				return true
			})
		}
		for _, fn := range site.fns {
			roots[fn.Key] = true
		}

		parent := map[string]string{}
		queue := make([]string, 0, len(roots))
		for k := range roots {
			queue = append(queue, k)
		}
		sort.Strings(queue)
		reported := map[string]bool{}
		for len(queue) > 0 {
			key := queue[0]
			queue = queue[1:]
			if forbidden(key) {
				if !reported[key] {
					reported[key] = true
					pass.Reportf(site.pos, "%s reaches %s (via %s); workers must not write the record stream",
						site.desc, key, chainTo(parent, key))
				}
				continue
			}
			if pass.Program.Funcs[key] == nil {
				continue // external leaf
			}
			for _, ck := range pass.Program.Callees[key] {
				if _, seen := parent[ck]; seen || roots[ck] {
					continue
				}
				parent[ck] = key
				queue = append(queue, ck)
			}
		}
	}
}

// chainTo renders the BFS path from a fan-out root to key.
func chainTo(parent map[string]string, key string) string {
	var chain []string
	for cur := key; cur != ""; cur = parent[cur] {
		chain = append(chain, cur)
		if _, ok := parent[cur]; !ok {
			break
		}
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return fmt.Sprint(strings.Join(chain, " -> "))
}
