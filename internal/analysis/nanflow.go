package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Nanflow tracks NaN taint from its birthplaces to the simulator's
// persistent state. Sources: calls whose result can be NaN with finite
// inputs (math.Log/Sqrt/Pow/Asin/Acos/Mod/..., math.NaN itself,
// strconv.ParseFloat — a trace file containing the literal "NaN" parses
// without error), and unchecked float division (0/0). Sinks: writes to
// struct fields of types declared in the state-bearing packages
// (config: nanflow.sinkPackages — thermal, pdn, vr, sim). A tainted
// value reaching a sink without an intervening guard — math.IsNaN /
// math.IsInf, the x != x idiom, or any call whose name contains a guard
// fragment (validate, clamp, sanitize, finite, ...) — is reported.
//
// Taint crosses call boundaries through summaries (summary.go): each
// function records, per result, whether it can introduce NaN itself and
// which parameters flow into it, plus which parameters it stores into a
// sink unguarded — so the caller of `store(x)` is flagged when x is
// tainted even though the field write is in the callee. Propagation is
// a forward bitmask dataflow over the CFG: bit 0 is "may be NaN", bit
// i+1 "derived from parameter i" (what the summaries read off return
// statements and sink writes).
//
// Deliberate noise control, documented in docs/STATIC_ANALYSIS.md:
// division taints only when the divisor is a parameter or local that is
// never compared or validated in the function (struct-field divisors
// are construction-time-validated configuration unless
// nanflow.distrustFields is set), guards are flow-insensitive (a guard
// anywhere in the function clears the object), and indirect calls
// propagate but never introduce taint.
var Nanflow = &Analyzer{
	Name:         "nanflow",
	Doc:          "tracks NaN taint from unchecked sources into persistent simulator state",
	Run:          runNanflow,
	NeedsProgram: true,
}

// Taint masks: bit 0 = may be NaN; bit i+1 = depends on parameter i.
const taintNaN uint64 = 1

func paramBit(i int) uint64 {
	if i >= 62 {
		return 0
	}
	return 1 << (uint(i) + 1)
}

// externalNaNSources are body-less callees whose result may be NaN with
// clean (finite, non-NaN) arguments.
var externalNaNSources = map[string]string{
	"math.Log":           "math.Log of a non-positive value",
	"math.Log2":          "math.Log2 of a non-positive value",
	"math.Log10":         "math.Log10 of a non-positive value",
	"math.Log1p":         "math.Log1p below -1",
	"math.Sqrt":          "math.Sqrt of a negative value",
	"math.Pow":           "math.Pow outside its real domain",
	"math.Asin":          "math.Asin outside [-1,1]",
	"math.Acos":          "math.Acos outside [-1,1]",
	"math.Mod":           "math.Mod with a zero divisor",
	"math.Remainder":     "math.Remainder with a zero divisor",
	"math.NaN":           "math.NaN",
	"strconv.ParseFloat": `strconv.ParseFloat (the input "NaN" parses without error)`,
}

// externalGuards are body-less callees whose boolean result constitutes
// a finiteness check; their float results (none) are clean and their
// arguments become guarded.
var externalGuards = map[string]bool{
	"math.IsNaN": true,
	"math.IsInf": true,
}

// taintEnv maps objects (locals, params, fields-as-coarse-cells) to
// taint masks.
type taintEnv map[types.Object]uint64

func cloneTaintEnv(e taintEnv) taintEnv {
	c := make(taintEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

func joinTaintEnv(dst, src taintEnv) (taintEnv, bool) {
	changed := false
	for k, sv := range src {
		if dst[k]|sv != dst[k] {
			dst[k] |= sv
			changed = true
		}
	}
	return dst, changed
}

// nanFlow analyzes one function.
type nanFlow struct {
	pkg  *Package
	prog *Program
	cfg  *Config
	sums map[string]*taintSummary
	fn   *FlowFunc

	// guarded objects had a NaN guard applied somewhere in the function;
	// compared objects appear in any comparison (suppresses the
	// unchecked-division source only).
	guarded  map[types.Object]bool
	compared map[types.Object]bool

	// cause remembers, per object, a human-readable description of the
	// first taint source that reached it.
	cause map[types.Object]string

	pass *Pass         // nil in summary mode
	sum  *taintSummary // non-nil in summary mode
}

// rootObj resolves the variable "cell" an expression reads or writes:
// the identifier's object, a selector's field object, or the root of an
// index expression.
func (n *nanFlow) rootObj(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return n.pkg.Info.ObjectOf(e)
	case *ast.SelectorExpr:
		return n.pkg.Info.ObjectOf(e.Sel)
	case *ast.IndexExpr:
		return n.rootObj(e.X)
	case *ast.StarExpr:
		return n.rootObj(e.X)
	}
	return nil
}

// collectGuards scans the whole body once for guard applications and
// comparisons. Guards are flow-insensitive by design: a function that
// checks IsNaN(x) anywhere is treated as owning x's finiteness.
func (n *nanFlow) collectGuards(body ast.Node) {
	n.guarded = map[types.Object]bool{}
	n.compared = map[types.Object]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			name, ext := n.calleeNames(node)
			if externalGuards[ext] || n.cfg.nanflowGuardName(name) {
				for _, a := range node.Args {
					if o := n.rootObj(a); o != nil {
						n.guarded[o] = true
					}
				}
				// A method guard (cfg.Validate()) also guards its receiver.
				if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
					if o := n.rootObj(sel.X); o != nil {
						n.guarded[o] = true
					}
				}
			}
		case *ast.BinaryExpr:
			switch node.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				lo, ro := n.rootObj(node.X), n.rootObj(node.Y)
				if lo != nil {
					n.compared[lo] = true
				}
				if ro != nil {
					n.compared[ro] = true
				}
				// The x != x NaN idiom is a real guard.
				if node.Op == token.NEQ && lo != nil && lo == ro {
					n.guarded[lo] = true
				}
			}
		}
		return true
	})
}

// calleeNames returns the callee's bare name and its canonical key
// ("math.Log") when resolvable.
func (n *nanFlow) calleeNames(call *ast.CallExpr) (bare, key string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		bare = fun.Name
	case *ast.SelectorExpr:
		bare = fun.Sel.Name
	}
	if fn := calleeFunc(n.pkg, call); fn != nil {
		key = FuncKey(fn)
	}
	return bare, key
}

// isExtraSource consults the configured additional source keys.
func (n *nanFlow) isExtraSource(key string) bool {
	for _, s := range n.cfg.Nanflow.Sources {
		if s == key {
			return true
		}
	}
	return false
}

// taintOf computes the taint mask of an expression.
func (n *nanFlow) taintOf(env taintEnv, e ast.Expr) uint64 {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := n.pkg.Info.ObjectOf(e)
		if obj == nil || n.guarded[obj] {
			return 0
		}
		return env[obj]
	case *ast.SelectorExpr:
		obj := n.pkg.Info.ObjectOf(e.Sel)
		if obj == nil || n.guarded[obj] {
			return 0
		}
		return env[obj]
	case *ast.IndexExpr:
		return n.taintOf(env, e.X)
	case *ast.StarExpr:
		return n.taintOf(env, e.X)
	case *ast.CallExpr:
		ts := n.callResultTaints(env, e)
		var t uint64
		for _, rt := range ts {
			t |= rt
		}
		return t
	case *ast.BinaryExpr:
		t := n.taintOf(env, e.X) | n.taintOf(env, e.Y)
		if e.Op == token.QUO && n.uncheckedDivision(e) {
			t |= taintNaN
			n.noteCause(nil, "unchecked division at this expression")
		}
		return t
	case *ast.UnaryExpr:
		return n.taintOf(env, e.X)
	case *ast.CompositeLit:
		var t uint64
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				t |= n.taintOf(env, kv.Value)
			} else {
				t |= n.taintOf(env, elt)
			}
		}
		return t
	}
	return 0
}

// uncheckedDivision reports whether a float division can produce NaN
// under this pass's noise rules: the divisor is not a constant, not a
// trusted struct field, and its root object is never compared, guarded,
// or validated in the function.
func (n *nanFlow) uncheckedDivision(e *ast.BinaryExpr) bool {
	if !isFloatType(typeOf(n.pkg.Info, e)) {
		return false
	}
	y := ast.Unparen(e.Y)
	if tv, ok := n.pkg.Info.Types[y]; ok && tv.Value != nil {
		return false // constant divisor
	}
	if _, ok := y.(*ast.SelectorExpr); ok && !n.cfg.Nanflow.DistrustFields {
		return false
	}
	if ix, ok := y.(*ast.IndexExpr); ok {
		if _, isSel := ast.Unparen(ix.X).(*ast.SelectorExpr); isSel && !n.cfg.Nanflow.DistrustFields {
			return false
		}
	}
	obj := n.rootObj(y)
	if obj == nil {
		return false // complex divisor expressions are out of scope
	}
	if n.guarded[obj] || n.compared[obj] {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	if fieldOwner(obj) != nil && !n.cfg.Nanflow.DistrustFields {
		return false
	}
	return true
}

// fieldOwner returns the struct type a var belongs to as a field, nil
// for plain locals/params/globals.
func fieldOwner(obj types.Object) *types.Var {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// callResultTaints computes per-result taint masks for a call.
func (n *nanFlow) callResultTaints(env taintEnv, call *ast.CallExpr) []uint64 {
	bare, key := n.calleeNames(call)

	var argT uint64
	for _, a := range call.Args {
		argT |= n.taintOf(env, a)
	}
	// A method call propagates its receiver's taint too.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isPkg := n.pkg.Info.ObjectOf(selIdent(sel.X)).(*types.PkgName); !isPkg {
			argT |= n.taintOf(env, sel.X)
		}
	}

	nres := 1
	if sig, ok := typeAsSignature(typeOf(n.pkg.Info, call.Fun)); ok {
		nres = sig.Results().Len()
	}
	out := make([]uint64, nres)

	if externalGuards[key] || n.cfg.nanflowGuardName(bare) {
		return out // a guard's results are clean by definition
	}
	if desc, isSource := externalNaNSources[key]; isSource || n.isExtraSource(key) {
		if desc == "" {
			desc = key
		}
		for i := range out {
			out[i] = argT | taintNaN
		}
		return out
	}
	if sum := n.sums[key]; sum != nil {
		for i := range out {
			if i < len(sum.resultMayNaN) && sum.resultMayNaN[i] {
				out[i] |= taintNaN
			}
			if i < len(sum.resultFromParam) {
				for j, flows := range sum.resultFromParam[i] {
					if flows && j < len(call.Args) {
						out[i] |= n.taintOf(env, call.Args[j])
					}
				}
			}
		}
		return out
	}
	// Unknown external or indirect callee: propagate, never introduce.
	for i := range out {
		out[i] = argT
	}
	return out
}

func selIdent(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	if id == nil {
		return &ast.Ident{Name: ""}
	}
	return id
}

// noteCause records a source description for later diagnostics.
func (n *nanFlow) noteCause(obj types.Object, desc string) {
	if obj == nil || desc == "" {
		return
	}
	if _, ok := n.cause[obj]; !ok {
		n.cause[obj] = desc
	}
}

// causeOf derives a source description for an expression's taint.
func (n *nanFlow) causeOf(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(node ast.Node) bool {
		if found != "" {
			return false
		}
		switch node := node.(type) {
		case *ast.CallExpr:
			_, key := n.calleeNames(node)
			if desc, ok := externalNaNSources[key]; ok {
				found = desc
			} else if n.isExtraSource(key) {
				found = key
			}
		case *ast.BinaryExpr:
			if node.Op == token.QUO && n.uncheckedDivision(node) {
				found = fmt.Sprintf("unchecked division by %s", nodeText(node.Y))
			}
		case *ast.Ident:
			if obj := n.pkg.Info.ObjectOf(node); obj != nil {
				if c, ok := n.cause[obj]; ok {
					found = c
				}
			}
		}
		return true
	})
	if found == "" {
		found = "an upstream NaN-capable computation"
	}
	return found
}

// sinkField returns the written field and its owning type name when the
// assignment target is a persistent-state sink.
func (n *nanFlow) sinkField(lhs ast.Expr) (field *types.Var, owner string) {
	sel := baseSelector(lhs)
	if sel == nil {
		return nil, ""
	}
	obj, ok := n.pkg.Info.ObjectOf(sel.Sel).(*types.Var)
	if !ok || !obj.IsField() || obj.Pkg() == nil {
		return nil, ""
	}
	if !n.cfg.nanflowSinkPackage(obj.Pkg().Path()) {
		return nil, ""
	}
	owner = obj.Pkg().Name()
	if t := typeOf(n.pkg.Info, sel.X); t != nil {
		u := t
		if p, ok := u.(*types.Pointer); ok {
			u = p.Elem()
		}
		if named, ok := u.(*types.Named); ok {
			owner = obj.Pkg().Name() + "." + named.Obj().Name()
		}
	}
	return obj, owner
}

// baseSelector digs the selector out of nested index/star expressions:
// m.temp[i] → m.temp.
func baseSelector(e ast.Expr) *ast.SelectorExpr {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return e
	case *ast.IndexExpr:
		return baseSelector(e.X)
	case *ast.StarExpr:
		return baseSelector(e.X)
	}
	return nil
}

// reportSink emits the in-function sink diagnostic (bit 0 only; param
// bits surface at call sites via summaries).
func (n *nanFlow) reportSink(pos token.Pos, t uint64, rhs ast.Expr, field *types.Var, owner string) {
	if n.pass != nil && t&taintNaN != 0 {
		n.pass.Reportf(pos,
			"possible NaN (from %s) stored into %s.%s without an IsNaN/Validate/clamp guard",
			n.causeOf(rhs), owner, field.Name())
	}
	if n.sum != nil {
		for j := range n.sum.paramSink {
			if t&paramBit(j) != 0 && n.sum.paramSink[j] == "" {
				n.sum.paramSink[j] = owner + "." + field.Name()
			}
		}
	}
}

// checkCallSinks reports tainted arguments handed to callees that store
// them into persistent state unguarded (per their summary).
func (n *nanFlow) checkCallSinks(env taintEnv, call *ast.CallExpr) {
	if n.pass == nil {
		return
	}
	_, key := n.calleeNames(call)
	sum := n.sums[key]
	if sum == nil {
		return
	}
	for j, a := range call.Args {
		if j >= len(sum.paramSink) || sum.paramSink[j] == "" {
			continue
		}
		if n.taintOf(env, a)&taintNaN != 0 {
			n.pass.Reportf(a.Pos(),
				"possible NaN (from %s) passed to %s, which stores it into %s without a guard",
				n.causeOf(a), calleeName(call), sum.paramSink[j])
		}
	}
}

// assignTo folds taint into an assignment target and fires sink checks.
func (n *nanFlow) assignTo(env taintEnv, lhs, rhs ast.Expr, t uint64, accumulate bool) {
	if field, owner := n.sinkField(lhs); field != nil {
		n.reportSink(rhs.Pos(), t, rhs, field, owner)
	}
	obj := n.rootObj(lhs)
	if obj == nil {
		return
	}
	if n.guarded[obj] {
		delete(env, obj)
		return
	}
	if t != 0 {
		if t&taintNaN != 0 {
			n.noteCause(obj, n.causeOf(rhs))
		}
		if accumulate {
			env[obj] |= t
		} else {
			env[obj] = t
		}
	} else if !accumulate {
		delete(env, obj)
	}
}

// applyStmt folds one simple statement into the environment.
func (n *nanFlow) applyStmt(env taintEnv, s ast.Stmt) {
	// Call-site sink checks see the pre-statement environment.
	ast.Inspect(s, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			n.checkCallSinks(env, node)
		}
		return true
	})

	switch s := s.(type) {
	case *ast.AssignStmt:
		switch s.Tok {
		case token.QUO_ASSIGN:
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				div := &ast.BinaryExpr{X: s.Lhs[0], Op: token.QUO, Y: s.Rhs[0], OpPos: s.TokPos}
				t := n.taintOf(env, s.Lhs[0]) | n.taintOf(env, s.Rhs[0])
				if n.uncheckedDivision(div) {
					t |= taintNaN
				}
				n.assignTo(env, s.Lhs[0], s.Rhs[0], t, true)
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				n.assignTo(env, s.Lhs[0], s.Rhs[0], n.taintOf(env, s.Rhs[0]), true)
			}
		case token.ASSIGN, token.DEFINE:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					n.assignTo(env, s.Lhs[i], s.Rhs[i], n.taintOf(env, s.Rhs[i]), false)
				}
			} else if len(s.Rhs) == 1 {
				if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
					ts := n.callResultTaints(env, call)
					for i, l := range s.Lhs {
						var t uint64
						if i < len(ts) {
							t = ts[i]
						}
						n.assignTo(env, l, s.Rhs[0], t, false)
					}
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i, name := range vs.Names {
						n.assignTo(env, name, vs.Values[i], n.taintOf(env, vs.Values[i]), false)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		if n.sum != nil {
			n.recordReturn(env, s)
		}
	}
}

// recordReturn folds a return statement into the summary.
func (n *nanFlow) recordReturn(env taintEnv, ret *ast.ReturnStmt) {
	results := ret.Results
	if len(results) == 0 {
		// Naked return: named results carry their environment taint.
		if n.fn.Sig == nil {
			return
		}
		for i := 0; i < n.fn.Sig.Results().Len(); i++ {
			res := n.fn.Sig.Results().At(i)
			n.foldResult(i, env[resObj(n.fn, res)])
		}
		return
	}
	if len(results) != len(n.sum.resultMayNaN) {
		return // `return f()` tuple forwarding: conservative skip
	}
	for i, r := range results {
		n.foldResult(i, n.taintOf(env, r))
	}
}

// resObj maps a signature result var back to the object the body binds.
func resObj(fn *FlowFunc, res *types.Var) types.Object { return res }

func (n *nanFlow) foldResult(i int, t uint64) {
	if i >= len(n.sum.resultMayNaN) {
		return
	}
	if t&taintNaN != 0 {
		n.sum.resultMayNaN[i] = true
	}
	for j := range n.sum.resultFromParam[i] {
		if t&paramBit(j) != 0 {
			n.sum.resultFromParam[i][j] = true
		}
	}
}

// applyBlock folds one CFG block.
func (n *nanFlow) applyBlock(env taintEnv, b *Block) {
	for _, s := range b.Stmts {
		n.applyStmt(env, s)
	}
	if b.Range != nil {
		t := n.taintOf(env, b.Range.X)
		if v, ok := b.Range.Value.(*ast.Ident); ok && v != nil {
			n.assignTo(env, v, b.Range.X, t, false)
		}
	}
}

// seedParams taints each parameter with its own bit (summary mode).
func (n *nanFlow) seedParams(env taintEnv) {
	if n.fn.Sig == nil {
		return
	}
	for i := 0; i < n.fn.Sig.Params().Len(); i++ {
		p := n.fn.Sig.Params().At(i)
		if !isFloatType(p.Type()) && !isFloatSlice(p.Type()) {
			continue
		}
		if obj := lookupParamObj(n.fn, p); obj != nil && !n.guarded[obj] {
			env[obj] = paramBit(i)
		}
	}
}

func isFloatSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	return ok && isFloatType(sl.Elem())
}

// lookupParamObj maps a signature parameter to the body's object. The
// source-checked package uses the same *types.Var for both, so this is
// the identity; kept as a seam for clarity.
func lookupParamObj(fn *FlowFunc, p *types.Var) types.Object { return p }

// analyze runs the taint engine over one function.
func (n *nanFlow) analyze(summaryMode bool) {
	n.cause = map[types.Object]string{}
	n.collectGuards(n.fn.Decl.Body)
	bottom := func() taintEnv {
		env := taintEnv{}
		if summaryMode {
			n.seedParams(env)
		}
		return env
	}
	eng := &Dataflow[taintEnv]{
		CFG:    n.fn.CFG(),
		Bottom: bottom,
		Clone:  cloneTaintEnv,
		Join:   joinTaintEnv,
		Transfer: func(b *Block, env taintEnv) taintEnv {
			if summaryMode {
				n.applyBlock(env, b)
			} else {
				// Reporting happens in the replay below, not here.
				saved := n.pass
				n.pass = nil
				n.applyBlock(env, b)
				n.pass = saved
			}
			return env
		},
	}
	in := eng.Forward()
	if !summaryMode {
		for _, b := range n.fn.CFG().Blocks {
			env := cloneTaintEnv(in[b])
			n.applyBlock(env, b)
		}
	}
}

// updateTaintSummary recomputes one function's taint summary.
func updateTaintSummary(p *Program, fn *FlowFunc, sums map[string]*taintSummary) bool {
	sum := sums[fn.Key]
	before := snapshotTaintSummary(sum)
	n := &nanFlow{pkg: fn.Pkg, prog: p, cfg: p.Config, sums: sums, fn: fn, sum: sum}
	n.analyze(true)
	return snapshotTaintSummary(sum) != before
}

// snapshotTaintSummary serialises a summary for change detection.
func snapshotTaintSummary(s *taintSummary) string {
	var sb strings.Builder
	for _, b := range s.resultMayNaN {
		fmt.Fprintf(&sb, "%t,", b)
	}
	sb.WriteByte('|')
	for _, row := range s.resultFromParam {
		for _, b := range row {
			fmt.Fprintf(&sb, "%t,", b)
		}
		sb.WriteByte(';')
	}
	sb.WriteByte('|')
	for _, p := range s.paramSink {
		sb.WriteString(p)
		sb.WriteByte(',')
	}
	return sb.String()
}

func runNanflow(p *Pass) {
	if p.Program == nil || allowedBy(p.Config.Nanflow.Allow, p.ImportPath) {
		return
	}
	sums := p.Program.TaintSummaries()
	var pkg *Package
	for _, candidate := range p.Program.Pkgs {
		if candidate.ImportPath == p.ImportPath {
			pkg = candidate
			break
		}
	}
	if pkg == nil {
		return
	}
	for _, fn := range packageFuncs(p.Program, pkg) {
		n := &nanFlow{pkg: pkg, prog: p.Program, cfg: p.Config, sums: sums, fn: fn, pass: p}
		n.analyze(false)
	}
}
