package analysis

// summary.go — the summary engine tgflow's interprocedural passes sit
// on. A pass derives one summary per function (what the function's
// results and side effects look like as a function of its inputs) and
// consults callee summaries while analyzing each caller, so facts cross
// call boundaries without inlining.
//
// Summaries are computed bottom-up over the call graph's strongly
// connected components (Program.SCCs): when a function is analyzed,
// everything it calls — outside its own SCC — already has a final
// summary. Within an SCC (direct or mutual recursion) the driver
// re-runs the members until none of their summaries changes; both
// summary lattices here are finite and monotone (units only move
// unknown → known → conflict, taint bits only switch on), so the
// fixpoint terminates.

// forEachSCCFixpoint drives one summary computation: visit grows the
// summary for a single function and reports whether it changed.
func forEachSCCFixpoint(p *Program, visit func(fn *FlowFunc) bool) {
	for _, scc := range p.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, fn := range scc {
				if visit(fn) {
					changed = true
				}
			}
		}
	}
}

// ---- unitflow summaries ----

// unitSummary describes a function for the unitflow pass.
type unitSummary struct {
	// results[i] is the inferred unit of result i: nil while unknown,
	// unitConflict when return paths disagree.
	results []*unitInfo
}

// unitConflict marks "multiple contradictory units": it joins to itself
// and is treated as unknown by every check (no diagnostics are built on
// a conflicting inference).
var unitConflict = &unitInfo{Suffix: "!conflict", Dim: "!conflict", Name: "conflicting units"}

// joinUnit is the unit lattice join: unknown ⊔ u = u, u ⊔ u = u,
// u ⊔ v = conflict.
func joinUnit(a, b *unitInfo) *unitInfo {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case canonicalSuffix(a.Suffix) == canonicalSuffix(b.Suffix):
		return a
	default:
		return unitConflict
	}
}

// knownUnit filters the conflict sentinel out of checking logic.
func knownUnit(u *unitInfo) *unitInfo {
	if u == unitConflict {
		return nil
	}
	return u
}

// UnitSummaries computes (once) and returns the unit summary table,
// keyed by FuncKey.
func (p *Program) UnitSummaries() map[string]*unitSummary {
	p.unitOnce.Do(func() {
		p.unitSums = make(map[string]*unitSummary, len(p.Funcs))
		for key, fn := range p.Funcs {
			nres := 0
			if fn.Sig != nil {
				nres = fn.Sig.Results().Len()
			}
			p.unitSums[key] = &unitSummary{results: make([]*unitInfo, nres)}
		}
		forEachSCCFixpoint(p, func(fn *FlowFunc) bool {
			return updateUnitSummary(p, fn, p.unitSums)
		})
	})
	return p.unitSums
}

// ---- nanflow summaries ----

// taintSummary describes a function for the nanflow pass. Taint is a
// bitmask (see nanflow.go): bit 0 is "may actually be NaN here", bit
// i+1 is "depends on parameter i".
type taintSummary struct {
	// resultMayNaN[i]: result i can be NaN even with NaN-free arguments
	// (the function itself contains an unguarded source).
	resultMayNaN []bool
	// resultFromParam[i][j]: parameter j flows into result i, so a
	// NaN-tainted argument taints the result.
	resultFromParam [][]bool
	// paramSink[j] is a non-empty description when parameter j reaches a
	// persistent-state sink inside the callee without a guard; callers
	// passing a tainted argument report at the call site.
	paramSink []string
}

// TaintSummaries computes (once) and returns the NaN-taint summary
// table, keyed by FuncKey.
func (p *Program) TaintSummaries() map[string]*taintSummary {
	p.taintOnce.Do(func() {
		p.taintSums = make(map[string]*taintSummary, len(p.Funcs))
		for key, fn := range p.Funcs {
			nres, npar := 0, 0
			if fn.Sig != nil {
				nres = fn.Sig.Results().Len()
				npar = fn.Sig.Params().Len()
			}
			s := &taintSummary{
				resultMayNaN:    make([]bool, nres),
				resultFromParam: make([][]bool, nres),
				paramSink:       make([]string, npar),
			}
			for i := range s.resultFromParam {
				s.resultFromParam[i] = make([]bool, npar)
			}
			p.taintSums[key] = s
		}
		forEachSCCFixpoint(p, func(fn *FlowFunc) bool {
			return updateTaintSummary(p, fn, p.taintSums)
		})
	})
	return p.taintSums
}
