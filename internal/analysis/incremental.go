package analysis

// Incremental analysis: fingerprint every target package, persist the
// previous run's findings under a cache directory (.tglint-cache/), and
// re-run passes only where the fingerprint changed.
//
// A package's fingerprint covers everything that can influence the
// diagnostics tglint reports into it:
//
//   - the content of its own non-test Go files (which also covers
//     //lint:ignore and //par: annotations — they live in those files);
//   - the content of every transitive in-module dependency's files. All
//     interprocedural passes propagate facts in the callee direction
//     only (calleeFunc resolves direct calls, which always land in an
//     imported package), so a finding in P can depend on P's deps but
//     never on P's importers;
//   - an engine stamp: the Go toolchain version, the analyzer set, the
//     full effective configuration, and a cache-format epoch. Any
//     mismatch drops the whole cache.
//
// The clean-tree fast path matters most: RunIncremental first runs
// `go list` WITHOUT -export (no compile), fingerprints from file
// contents alone, and when every target hits the cache it never parses
// or type-checks anything. A dirty tree falls back to a full load —
// interprocedural passes need the whole program in memory — but only
// dirty packages re-run their passes; clean ones reuse cached findings.
// Either way the merged output goes through sortDiagnostics, so the
// rendered findings are byte-identical to a full run's.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// cacheEpoch versions the cache format itself; bump it when the entry
// schema or fingerprint recipe changes.
const cacheEpoch = 1

// CacheStats reports what the incremental driver did, for the stderr
// summary and the -cache-stats JSON artifact.
type CacheStats struct {
	Targets     int  `json:"targets"`      // packages requested
	Hits        int  `json:"hits"`         // served from the cache
	Misses      int  `json:"misses"`       // re-analyzed this run
	SkippedLoad bool `json:"skipped_load"` // clean tree: parse/type-check skipped entirely
}

// cacheEntry is one package's persisted result.
type cacheEntry struct {
	Fingerprint string       `json:"fingerprint"`
	Findings    []Diagnostic `json:"findings,omitempty"`
}

// cacheFile is the on-disk schema of <cacheDir>/cache.json.
type cacheFile struct {
	Version  int                   `json:"version"`
	Engine   string                `json:"engine"`
	Packages map[string]cacheEntry `json:"packages"`
}

// engineID stamps everything that changes findings without changing
// source: toolchain, pass set, configuration, cache epoch.
func engineID(analyzers []*Analyzer, cfg *Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "epoch=%d\n", cacheEpoch)
	fmt.Fprintf(h, "go=%s\n", runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintf(h, "pass=%s\n", a.Name)
	}
	// encoding/json marshals maps with sorted keys, so this is a stable
	// rendering of the effective config.
	if b, err := json.Marshal(cfg); err == nil {
		//lint:ignore errsink hash.Hash.Write never returns an error
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fingerprints hashes each target package: its own files plus every
// transitive non-stdlib dependency's files. byPath indexes the full
// goList output (deps included) so Deps entries resolve to file lists.
func fingerprints(targets []listPackage, byPath map[string]listPackage) (map[string]string, error) {
	fileHash := make(map[string]string, len(byPath))
	hashPkg := func(p listPackage) (string, error) {
		if h, ok := fileHash[p.ImportPath]; ok {
			return h, nil
		}
		h := sha256.New()
		names := append([]string(nil), p.GoFiles...)
		sort.Strings(names)
		for _, name := range names {
			b, err := os.ReadFile(filepath.Join(p.Dir, name))
			if err != nil {
				return "", fmt.Errorf("fingerprint %s: %v", p.ImportPath, err)
			}
			fmt.Fprintf(h, "file=%s len=%d\n", name, len(b))
			//lint:ignore errsink hash.Hash.Write never returns an error
			h.Write(b)
		}
		sum := hex.EncodeToString(h.Sum(nil))
		fileHash[p.ImportPath] = sum
		return sum, nil
	}

	out := make(map[string]string, len(targets))
	for _, t := range targets {
		h := sha256.New()
		self, err := hashPkg(t)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(h, "self=%s\n", self)
		deps := append([]string(nil), t.Deps...)
		sort.Strings(deps) // go list sorts already; don't depend on it
		for _, d := range deps {
			dp, ok := byPath[d]
			if !ok || dp.Standard {
				continue // stdlib: covered by the toolchain version stamp
			}
			dh, err := hashPkg(dp)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(h, "dep=%s %s\n", d, dh)
		}
		out[t.ImportPath] = hex.EncodeToString(h.Sum(nil))
	}
	return out, nil
}

// RunIncremental is Run with a persistent cache under cacheDir. It
// loads, fingerprints, and analyzes the packages matched by patterns
// relative to dir, reusing cached findings for every package whose
// transitive inputs are unchanged, and rewrites the cache afterwards.
// The returned diagnostics are identical to Load+Run's.
func RunIncremental(dir string, patterns []string, analyzers []*Analyzer, cfg *Config, cacheDir string) ([]Diagnostic, *CacheStats, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	engine := engineID(analyzers, cfg)
	cache := readCache(filepath.Join(cacheDir, "cache.json"), engine)
	stats := &CacheStats{}

	// Pass 1: file lists only — no -export, no compile.
	all, err := goList(dir, patterns, false)
	if err != nil {
		return nil, nil, err
	}
	byPath := make(map[string]listPackage, len(all))
	for _, p := range all {
		byPath[p.ImportPath] = p
	}
	targets := listTargets(all)
	if len(targets) == 0 {
		return nil, nil, fmt.Errorf("no packages matched %v", patterns)
	}
	stats.Targets = len(targets)
	fps, err := fingerprints(targets, byPath)
	if err != nil {
		return nil, nil, err
	}

	skip := make(map[string]bool)
	for _, t := range targets {
		if e, ok := cache.Packages[t.ImportPath]; ok && e.Fingerprint == fps[t.ImportPath] {
			skip[t.ImportPath] = true
		}
	}
	stats.Hits = len(skip)
	stats.Misses = stats.Targets - stats.Hits

	var perPkg map[string][]Diagnostic
	if stats.Misses == 0 {
		// Clean tree: every finding comes from the cache; skip parsing and
		// type-checking entirely.
		stats.SkippedLoad = true
		perPkg = map[string][]Diagnostic{}
	} else {
		// Dirty tree: load everything (interprocedural passes need the
		// whole program), re-run passes only on the dirty packages.
		withExport, err := goList(dir, patterns, true)
		if err != nil {
			return nil, nil, err
		}
		pkgs, err := loadTargets(withExport, patterns)
		if err != nil {
			return nil, nil, err
		}
		perPkg = runPerPkg(pkgs, analyzers, cfg, skip)
	}

	next := cacheFile{Version: cacheEpoch, Engine: engine, Packages: make(map[string]cacheEntry, len(targets))}
	var out []Diagnostic
	for _, t := range targets {
		var diags []Diagnostic
		if skip[t.ImportPath] {
			diags = cache.Packages[t.ImportPath].Findings
		} else {
			diags = perPkg[t.ImportPath]
		}
		out = append(out, diags...)
		next.Packages[t.ImportPath] = cacheEntry{Fingerprint: fps[t.ImportPath], Findings: diags}
	}
	sortDiagnostics(out)

	if err := writeCache(filepath.Join(cacheDir, "cache.json"), next); err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}

// readCache loads the cache file, discarding it wholesale on any read
// error, schema mismatch, or engine mismatch — a cold cache is always
// correct.
func readCache(path, engine string) cacheFile {
	empty := cacheFile{Packages: map[string]cacheEntry{}}
	b, err := os.ReadFile(path)
	if err != nil {
		return empty
	}
	var c cacheFile
	if json.Unmarshal(b, &c) != nil || c.Version != cacheEpoch || c.Engine != engine || c.Packages == nil {
		return empty
	}
	return c
}

// writeCache persists the cache atomically (write temp + rename), so a
// crashed run can never leave a half-written cache behind.
func writeCache(path string, c cacheFile) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("tglint cache: %v", err)
	}
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("tglint cache: %v", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cache-*.json")
	if err != nil {
		return fmt.Errorf("tglint cache: %v", err)
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tglint cache: write %s: %v%v", path, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tglint cache: %v", err)
	}
	return nil
}

// Summary renders the one-line stderr report.
func (s *CacheStats) Summary() string {
	mode := "incremental"
	if s.SkippedLoad {
		mode = "incremental, load skipped"
	}
	return fmt.Sprintf("%d/%d packages from cache, %d re-analyzed (%s)",
		s.Hits, s.Targets, s.Misses, mode)
}

// String implements fmt.Stringer for log lines.
func (s *CacheStats) String() string { return s.Summary() }
