package analysis

import (
	"strings"
	"testing"
)

func TestAllocfreeFixture(t *testing.T) { checkFixture(t, Allocfree, "allocfree/sim") }
func TestBoxcheckFixture(t *testing.T)  { checkFixture(t, Boxcheck, "boxcheck/sim") }
func TestCapgrowFixture(t *testing.T)   { checkFixture(t, Capgrow, "capgrow/sim") }

// TestAllocfreeMalformedDirectives: the want harness cannot annotate
// comment-only lines, so the malformed //perf: directives get asserted
// directly.
func TestAllocfreeMalformedDirectives(t *testing.T) {
	pkg := loadFixture(t, "allocfree/baddir")
	diags := Run([]*Package{pkg}, []*Analyzer{Allocfree}, DefaultConfig())
	var unknown, noReason bool
	for _, d := range diags {
		if strings.Contains(d.Message, "unknown //perf: annotation kind speed") {
			unknown = true
		}
		if strings.Contains(d.Message, "a reason is mandatory") {
			noReason = true
		}
	}
	if !unknown || !noReason {
		t.Fatalf("malformed directives not reported (unknown=%v noReason=%v): %v", unknown, noReason, diags)
	}
	if len(diags) != 2 {
		t.Fatalf("want exactly 2 directive diagnostics, got %d: %v", len(diags), diags)
	}
}
