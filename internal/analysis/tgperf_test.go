package analysis

import "testing"

func TestAllocfreeFixture(t *testing.T) { checkFixture(t, Allocfree, "allocfree/sim") }
func TestBoxcheckFixture(t *testing.T)  { checkFixture(t, Boxcheck, "boxcheck/sim") }
func TestCapgrowFixture(t *testing.T)   { checkFixture(t, Capgrow, "capgrow/sim") }

// TestAllocfreeMalformedDirectives asserts both seeded broken directives
// through the shared baddir helper.
func TestAllocfreeMalformedDirectives(t *testing.T) {
	checkMalformedDirectives(t, Allocfree, "allocfree/baddir", "unknown //perf: annotation kind speed")
}
