package analysis

// redorder verifies the serial-reduction half of the parallel-pipeline
// determinism contract (docs/PERFORMANCE.md): every fan-in site
// reachable from a pipeline phase must be serial and deterministic, or
// DeepEqual-identical results and byte-identical telemetry stop holding
// across worker counts. Concretely, inside the reduction scope —
// functions containing a (*par.Pool).For fan-out or (in the configured
// pipeline packages) a `go` statement, plus everything they transitively
// call — the pass flags:
//
//   - map iteration (Go randomizes range order, so any order-sensitive
//     fold diverges between runs); packages detcheck already polices for
//     map order are skipped to avoid duplicate findings;
//   - select statements (arrival order is scheduler-dependent);
//   - atomic read-modify-write calls (sync/atomic Add/Swap/
//     CompareAndSwap, including the method forms) — the
//     atomic-accumulate-of-floats idiom commits values in completion
//     order, which is exactly the race the serial-reduction rule exists
//     to prevent.
//
// Audited exceptions use //par:ordered <reason> at the construct (the
// telemetry registry's CAS counters are exempted wholesale through
// redorder.allowCallees: counters feed monotone snapshots, never the
// record stream). Constructs in other packages reached from a phase are
// reported at the phase function, naming the remote location.

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Redorder is the serial-reduction analyzer.
var Redorder = &Analyzer{
	Name:         "redorder",
	Doc:          "reductions reachable from pipeline phases must be serial and deterministic",
	Run:          runRedorder,
	NeedsProgram: true,
}

func runRedorder(pass *Pass) {
	cfg := pass.Config
	pkg := pass.Program.pkgByPath(pass.ImportPath)
	if pkg == nil {
		return
	}

	// Roots: this package's functions that fan work out.
	includeGo := pkgMatches(cfg.Redorder.GoPackages, pass.ImportPath)
	roots := map[string]*FlowFunc{}
	for key, fn := range pass.Program.Funcs {
		if fn.Pkg != pkg {
			continue
		}
		hasFanout := false
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPoolFor(pkg, n) {
					hasFanout = true
				}
			case *ast.GoStmt:
				if includeGo {
					hasFanout = true
				}
			}
			return !hasFanout
		})
		if hasFanout {
			roots[key] = fn
		}
	}
	if len(roots) == 0 {
		return
	}

	// Reachable scope: BFS over the call graph, remembering one root per
	// function for attribution, skipping the allow-listed packages.
	type entry struct {
		fn   *FlowFunc
		root *FlowFunc
	}
	scope := map[string]entry{}
	rootKeys := make([]string, 0, len(roots))
	for k := range roots {
		rootKeys = append(rootKeys, k)
	}
	sort.Strings(rootKeys)
	queue := make([]string, 0, len(rootKeys))
	for _, k := range rootKeys {
		scope[k] = entry{fn: roots[k], root: roots[k]}
		queue = append(queue, k)
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		cur := scope[key]
		for _, ck := range pass.Program.Callees[key] {
			if _, seen := scope[ck]; seen {
				continue
			}
			fn := pass.Program.Funcs[ck]
			if fn == nil || allowedBy(cfg.Redorder.AllowCallees, fn.Pkg.ImportPath) {
				continue
			}
			scope[ck] = entry{fn: fn, root: cur.root}
			queue = append(queue, ck)
		}
	}

	anns := parAnns(pass.Program)
	seen := map[string]bool{}
	report := func(pos ast.Node, e entry, what string) {
		p := e.fn.Pkg.Fset.Position(pos.Pos())
		if anns.covered("ordered", p) {
			return
		}
		var d Diagnostic
		if e.fn.Pkg == pkg {
			d = Diagnostic{Pos: p, Pass: pass.Analyzer.Name,
				Message: fmt.Sprintf("%s in the reduction scope of pipeline phase %s", what, e.root.Key)}
		} else {
			d = Diagnostic{Pos: pass.Fset.Position(e.root.Decl.Name.Pos()), Pass: pass.Analyzer.Name,
				Message: fmt.Sprintf("pipeline phase %s reaches %s in %s at %s", e.root.Key, what, e.fn.Key, shortPos(p))}
		}
		key := d.Pos.Filename + "|" + fmt.Sprint(d.Pos.Line) + "|" + d.Message
		if !seen[key] {
			seen[key] = true
			pass.diags = append(pass.diags, d)
		}
	}

	keys := make([]string, 0, len(scope))
	for k := range scope {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := scope[k]
		ast.Inspect(e.fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if cfg.detcheckApplies(e.fn.Pkg.ImportPath) {
					return true // detcheck owns map-order findings there
				}
				if t := typeOf(e.fn.Pkg.Info, n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						report(n, e, "map iteration (randomized order)")
					}
				}
			case *ast.SelectStmt:
				report(n, e, "select statement (scheduler-dependent arrival order)")
			case *ast.CallExpr:
				if callee := calleeFunc(e.fn.Pkg, n); callee != nil {
					if key := FuncKey(callee); isAtomicRMW(key) {
						report(n, e, "atomic read-modify-write "+key+" (commits in completion order)")
					}
				}
			}
			return true
		})
	}
}

// isAtomicRMW matches sync/atomic's accumulate primitives, both the
// package functions (atomic.AddUint64, atomic.CompareAndSwapUint64) and
// the typed method forms (atomic.Int64.Add, atomic.Uint64.CompareAndSwap).
func isAtomicRMW(key string) bool {
	if !strings.HasPrefix(key, "sync/atomic.") {
		return false
	}
	name := key[strings.LastIndex(key, ".")+1:]
	return strings.HasPrefix(name, "Add") || strings.HasPrefix(name, "Swap") ||
		strings.HasPrefix(name, "CompareAndSwap")
}
