package analysis

// cacheflush generalizes PR 6's rebuildPaths invariant: derived caches
// (the PDN's per-mask effective-resistance vectors, the mesh's Cholesky
// factors) are flushed only when the topology or geometry they were
// computed from changes, so any mutation of a watched field that is not
// followed by the corresponding flush call on every path to return
// serves stale physics. Rules come from .tglint.json (cacheflush.rules):
// each names a type (base name or full "importpath.Name"), the fields
// whose mutation invalidates the cache, and the flush callees that
// rebuild it. An empty flush list declares the fields frozen after
// construction (the Mesh geometry case: its factor cache never
// invalidates because nothing may mutate the geometry).
//
// Exemptions: mutations inside a function named in the flush list (the
// flush routine rebuilds the fields it owns), and mutations through a
// local the function itself allocated (&T{...}, T{...}, new, make) —
// the constructor idiom, where no stale cache can exist yet.
//
// The "every path" check runs on the tgflow CFG (cfg.go): a mutation is
// clean when a flush call appears later in its own basic block, or when
// every block reachable from it encounters a flush before the exit
// block (greatest-fixpoint must-analysis, so loops and early returns
// are handled exactly).

import (
	"go/ast"
	"go/types"
	"strings"
)

// Cacheflush is the mutation-implies-flush analyzer.
var Cacheflush = &Analyzer{
	Name: "cacheflush",
	Doc:  "cache-invalidating mutations must be followed by the matching flush on every path",
	Run:  runCacheflush,
}

func runCacheflush(pass *Pass) {
	rules := pass.Config.Cacheflush.Rules
	if len(rules) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCacheflushFunc(pass, fd, rules)
		}
	}
}

func checkCacheflushFunc(pass *Pass, fd *ast.FuncDecl, rules []CacheflushRule) {
	var cfg *CFG // built on first watched mutation only
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var lhs ast.Expr
		var stmt ast.Stmt
		switch n := n.(type) {
		case *ast.AssignStmt:
			stmt = n
			for _, l := range n.Lhs {
				checkCacheflushWrite(pass, fd, &cfg, stmt, l, rules)
			}
			return true
		case *ast.IncDecStmt:
			stmt, lhs = n, n.X
			checkCacheflushWrite(pass, fd, &cfg, stmt, lhs, rules)
		}
		return true
	})
}

func checkCacheflushWrite(pass *Pass, fd *ast.FuncDecl, cfg **CFG, stmt ast.Stmt, lhs ast.Expr, rules []CacheflushRule) {
	// Walk the write chain (x.f, x.f[i], *x.f …) checking every selector
	// against the rules.
	for e := ast.Unparen(lhs); ; {
		switch t := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(t.X)
		case *ast.StarExpr:
			e = ast.Unparen(t.X)
		case *ast.SelectorExpr:
			for i := range rules {
				r := &rules[i]
				if fieldMatches(pass, t, r) {
					reportUnflushed(pass, fd, cfg, stmt, t, r)
				}
			}
			e = ast.Unparen(t.X)
		default:
			return
		}
	}
}

// fieldMatches reports whether the selector writes a watched field of a
// watched type.
func fieldMatches(pass *Pass, sel *ast.SelectorExpr, r *CacheflushRule) bool {
	found := false
	for _, f := range r.Fields {
		if f == sel.Sel.Name {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if strings.Contains(r.Type, ".") {
		full := named.Obj().Name()
		if named.Obj().Pkg() != nil {
			full = named.Obj().Pkg().Path() + "." + full
		}
		return r.Type == full
	}
	return r.Type == named.Obj().Name()
}

func reportUnflushed(pass *Pass, fd *ast.FuncDecl, cfg **CFG, stmt ast.Stmt, sel *ast.SelectorExpr, r *CacheflushRule) {
	// The flush routine itself owns these fields.
	for _, name := range r.Flush {
		if fd.Name.Name == name {
			return
		}
	}
	if freshLocalRoot(pass, fd, sel) {
		return // constructor idiom: no cache exists yet
	}
	field := r.Type + "." + sel.Sel.Name
	if len(r.Flush) == 0 {
		pass.Reportf(sel.Pos(), "%s is frozen after construction (its caches never invalidate); mutation outside a constructor", field)
		return
	}
	if *cfg == nil {
		*cfg = BuildCFG(fd)
	}
	if !flushPostdominates(*cfg, stmt, r.Flush) {
		pass.Reportf(sel.Pos(), "mutation of %s is not followed by %s on every path to return",
			field, strings.Join(r.Flush, "/"))
	}
}

// freshLocalRoot reports whether the write chain is rooted in a local
// the function allocated itself.
func freshLocalRoot(pass *Pass, fd *ast.FuncDecl, sel *ast.SelectorExpr) bool {
	e := ast.Unparen(sel.X)
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(t.X)
		case *ast.StarExpr:
			e = ast.Unparen(t.X)
		case *ast.SelectorExpr:
			e = ast.Unparen(t.X)
		default:
			id, ok := e.(*ast.Ident)
			if !ok {
				return false
			}
			obj := pass.Info.ObjectOf(id)
			if obj == nil {
				return false
			}
			return allocatedBy(pass, fd, obj)
		}
	}
}

// allocatedBy reports whether obj is bound, anywhere in fd, to memory
// the function created: &T{...}, T{...}, new(T), or make(...).
func allocatedBy(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	fresh := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			_, lit := ast.Unparen(e.X).(*ast.CompositeLit)
			return e.Op.String() == "&" && lit
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.ObjectOf(id).(*types.Builtin); ok {
					return b.Name() == "new" || b.Name() == "make"
				}
			}
		}
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if ok && pass.Info.ObjectOf(id) == obj && i < len(n.Rhs) && fresh(n.Rhs[i]) {
					found = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.Info.ObjectOf(name) == obj && i < len(n.Values) && fresh(n.Values[i]) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// flushPostdominates reports whether every execution continuing from
// stmt reaches one of the flush callees before the function exits.
func flushPostdominates(cfg *CFG, stmt ast.Stmt, flush []string) bool {
	callsFlush := func(n ast.Node) bool {
		has := false
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			var name string
			switch f := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				name = f.Name
			case *ast.SelectorExpr:
				name = f.Sel.Name
			}
			for _, want := range flush {
				if name == want {
					has = true
				}
			}
			return !has
		})
		return has
	}

	// Locate the mutation's block and statement index. A mutation inside
	// a nested func literal is not a statement of this CFG; treat it
	// conservatively as unflushed.
	blockOf, idxOf := -1, -1
	for _, b := range cfg.Blocks {
		for i, s := range b.Stmts {
			if s == stmt {
				blockOf, idxOf = b.Index, i
			}
		}
	}
	if blockOf == -1 {
		return false
	}

	// Greatest-fixpoint must-analysis: mustFlush[b] ⇔ every path from
	// b's entry to the exit encounters a flush call.
	mustFlush := make([]bool, len(cfg.Blocks))
	hasFlush := make([]bool, len(cfg.Blocks))
	for i, b := range cfg.Blocks {
		mustFlush[i] = true
		for _, s := range b.Stmts {
			if callsFlush(s) {
				hasFlush[i] = true
			}
		}
	}
	mustFlush[cfg.Exit().Index] = false
	for changed := true; changed; {
		changed = false
		for i, b := range cfg.Blocks {
			if hasFlush[i] || !mustFlush[i] {
				continue
			}
			ok := len(b.Succs) > 0
			for _, s := range b.Succs {
				if !mustFlush[s.Index] {
					ok = false
				}
			}
			if b.Index == cfg.Exit().Index {
				ok = false
			}
			if !ok {
				mustFlush[i] = false
				changed = true
			}
		}
	}

	// Flush later in the mutation's own block?
	b := cfg.Blocks[blockOf]
	for i := idxOf + 1; i < len(b.Stmts); i++ {
		if callsFlush(b.Stmts[i]) {
			return true
		}
	}
	if len(b.Succs) == 0 {
		return false
	}
	for _, s := range b.Succs {
		if !mustFlush[s.Index] {
			return false
		}
	}
	return true
}
