package analysis

import (
	"strings"
	"testing"
)

func TestParwriteFixture(t *testing.T)   { checkFixture(t, Parwrite, "parwrite/sim") }
func TestRedorderFixture(t *testing.T)   { checkFixture(t, Redorder, "redorder/pipe") }
func TestCacheflushFixture(t *testing.T) { checkFixture(t, Cacheflush, "cacheflush/cache") }
func TestWorkerpureFixture(t *testing.T) { checkFixture(t, Workerpure, "workerpure/sim") }

// TestParwriteMalformedDirectives: the want harness cannot annotate
// comment-only lines, so the malformed //par: directives get asserted
// directly.
func TestParwriteMalformedDirectives(t *testing.T) {
	pkg := loadFixture(t, "parwrite/baddir")
	diags := Run([]*Package{pkg}, []*Analyzer{Parwrite}, DefaultConfig())
	var unknown, noReason bool
	for _, d := range diags {
		if strings.Contains(d.Message, "unknown //par: annotation kind sequential") {
			unknown = true
		}
		if strings.Contains(d.Message, "a reason is mandatory") {
			noReason = true
		}
	}
	if !unknown || !noReason {
		t.Fatalf("malformed directives not reported (unknown=%v noReason=%v): %v", unknown, noReason, diags)
	}
	if len(diags) != 2 {
		t.Fatalf("want exactly 2 directive diagnostics, got %d: %v", len(diags), diags)
	}
}
