package analysis

import "testing"

func TestParwriteFixture(t *testing.T)   { checkFixture(t, Parwrite, "parwrite/sim") }
func TestRedorderFixture(t *testing.T)   { checkFixture(t, Redorder, "redorder/pipe") }
func TestCacheflushFixture(t *testing.T) { checkFixture(t, Cacheflush, "cacheflush/cache") }
func TestWorkerpureFixture(t *testing.T) { checkFixture(t, Workerpure, "workerpure/sim") }

// TestParwriteMalformedDirectives asserts both seeded broken directives
// through the shared baddir helper.
func TestParwriteMalformedDirectives(t *testing.T) {
	checkMalformedDirectives(t, Parwrite, "parwrite/baddir", "unknown //par: annotation kind sequential")
}
