package analysis

// callgraph.go — the whole-repo view the interprocedural (tgflow)
// passes run on. A Program owns every loaded package, one FlowFunc per
// declared function/method body, the direct call graph between them,
// and the bottom-up SCC order the summary engine (summary.go) consumes.
//
// Cross-package identity: each package is type-checked independently
// against export data, so a callee in package B resolves — from A's
// type info — to a *types.Func belonging to the *imported* image of B,
// a different object than B's own source-checked one. Functions are
// therefore keyed by a canonical string (FuncKey) built from the import
// path, receiver type name, and function name, which is identical on
// both sides.
//
// Limitations (documented in docs/STATIC_ANALYSIS.md): calls through
// function values, interface methods, and goroutine/defer thunks are
// not edges; the flow passes treat their results conservatively.

import (
	"go/ast"
	"go/types"
	"sort"
	"sync"
)

// FlowFunc is one function or method with a body somewhere in the
// loaded program.
type FlowFunc struct {
	Key  string
	Decl *ast.FuncDecl
	Pkg  *Package
	Obj  *types.Func
	Sig  *types.Signature

	cfgOnce sync.Once
	cfg     *CFG
}

// CFG returns the function's control-flow graph, built on first use.
func (f *FlowFunc) CFG() *CFG {
	f.cfgOnce.Do(func() { f.cfg = BuildCFG(f.Decl) })
	return f.cfg
}

// Program is the interprocedural context shared by the tgflow passes.
type Program struct {
	Pkgs  []*Package
	Funcs map[string]*FlowFunc

	// Config is the active tglint configuration; the summary engines
	// need it (sink packages, guard names) before any Pass exists.
	Config *Config

	// Callees maps a function key to the sorted keys it calls directly —
	// including external (body-less) callees such as math.Log, which the
	// taint tables match by key.
	Callees map[string][]string
	// Callers is the reverse adjacency, internal keys only.
	Callers map[string][]string

	// sccs lists the call graph's strongly connected components in
	// bottom-up order: every SCC appears after all SCCs it calls into.
	sccs [][]*FlowFunc

	unitOnce  sync.Once
	unitSums  map[string]*unitSummary
	taintOnce sync.Once
	taintSums map[string]*taintSummary
	lockOnce  sync.Once
	lockSums  map[string]lockSummary
	blockOnce sync.Once
	blockSums map[string]*blockFact
	tearOnce  sync.Once
	tearSums  map[string]bool
}

// FuncKey canonically names a function object across packages:
// "path.Name" for package functions, "path.(Recv).Name" for methods
// (pointer and value receivers share the key; Go forbids both spellings
// of the same method name on one type).
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name() // builtins (error.Error, ...)
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
		// Interface receiver or unnamed type: fall back to the name
		// (never an internal edge — no body exists under this key).
		return fn.Pkg().Path() + ".(?)." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// BuildProgram indexes the packages' function bodies and the direct
// call edges between them.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:    pkgs,
		Funcs:   make(map[string]*FlowFunc),
		Callees: make(map[string][]string),
		Callers: make(map[string][]string),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.ObjectOf(fd.Name).(*types.Func)
				if obj == nil {
					continue
				}
				sig, _ := obj.Type().(*types.Signature)
				key := FuncKey(obj)
				p.Funcs[key] = &FlowFunc{Key: key, Decl: fd, Pkg: pkg, Obj: obj, Sig: sig}
			}
		}
	}
	for key, fn := range p.Funcs {
		seen := map[string]bool{}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(fn.Pkg, call)
			if callee == nil {
				return true
			}
			ck := FuncKey(callee)
			if !seen[ck] {
				seen[ck] = true
				p.Callees[key] = append(p.Callees[key], ck)
			}
			return true
		})
		sort.Strings(p.Callees[key])
	}
	for key, callees := range p.Callees {
		for _, ck := range callees {
			if _, internal := p.Funcs[ck]; internal {
				p.Callers[ck] = append(p.Callers[ck], key)
			}
		}
	}
	for _, callers := range p.Callers {
		sort.Strings(callers)
	}
	p.buildSCCs()
	return p
}

// calleeFunc resolves a call expression to the function object it
// invokes, or nil for indirect calls, conversions, and builtins.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = pkg.Info.ObjectOf(fun.Sel)
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// FuncOf returns the FlowFunc a package's call expression resolves to,
// or nil when the callee has no body in the program.
func (p *Program) FuncOf(pkg *Package, call *ast.CallExpr) *FlowFunc {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return nil
	}
	return p.Funcs[FuncKey(fn)]
}

// buildSCCs runs Tarjan's algorithm over the internal call edges.
// Tarjan emits each SCC only after every SCC reachable from it, so the
// natural emission order is already bottom-up (callees first).
func (p *Program) buildSCCs() {
	keys := make([]string, 0, len(p.Funcs))
	for k := range p.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic traversal order

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range p.Callees[v] {
			if _, internal := p.Funcs[w]; !internal {
				continue
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*FlowFunc
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, p.Funcs[w])
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i].Key < scc[j].Key })
			p.sccs = append(p.sccs, scc)
		}
	}
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			strongconnect(k)
		}
	}
}

// SCCs returns the call graph's strongly connected components in
// bottom-up order (callees before callers).
func (p *Program) SCCs() [][]*FlowFunc { return p.sccs }

// EdgeList renders the internal call graph as sorted "caller -> callee"
// lines (external callees included), for the golden-file tests.
func (p *Program) EdgeList() []string {
	var out []string
	for key, callees := range p.Callees {
		for _, ck := range callees {
			out = append(out, key+" -> "+ck)
		}
	}
	sort.Strings(out)
	return out
}
