package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
)

// Package is one loaded, parsed, and (best-effort) type-checked target.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// TypeErrors collects soft type-check failures. Passes still run with
	// whatever information survived; the driver surfaces these only in
	// verbose mode so a half-broken tree can still be linted.
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Deps       []string // transitive import paths, sorted by go list
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList expands the patterns relative to dir with `go list -e -deps`,
// returning every emitted entry (targets and dependencies alike). With
// export set it also asks the toolchain for compiler export data, which
// forces a (cached) compile of every dependency; the incremental driver
// calls it without export first, because fingerprinting a clean tree
// needs only file lists.
func goList(dir string, patterns []string, export bool) ([]listPackage, error) {
	args := []string{"list", "-e", "-deps"}
	if export {
		args = append(args, "-export")
	}
	args = append(args, "-json=ImportPath,Dir,GoFiles,Deps,Export,Standard,DepOnly,Error", "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var all []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		all = append(all, p)
	}
	return all, nil
}

// listTargets filters a goList result down to the matched (non-dep,
// non-stdlib) target packages.
func listTargets(all []listPackage) []listPackage {
	var targets []listPackage
	for _, p := range all {
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	return targets
}

// Load expands the go list patterns (e.g. "./...") relative to dir,
// parses every non-test Go file of each matched package, and type-checks
// it. Imports — stdlib and module-internal alike — are resolved from the
// compiler export data `go list -export` places in the build cache, so
// loading works offline and never re-type-checks dependencies from
// source. Targets are parsed and checked concurrently across GOMAXPROCS
// workers with deterministic result order. Test files are not loaded:
// tglint's passes lint production code only.
func Load(dir string, patterns []string) ([]*Package, error) {
	all, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}
	return loadTargets(all, patterns)
}

// loadTargets parses and type-checks the target packages of a goList
// run that was made with export data.
func loadTargets(all []listPackage, patterns []string) ([]*Package, error) {
	exports := make(map[string]string)
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	targets := listTargets(all)
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}

	// Parse and type-check targets in parallel. The FileSet's methods are
	// internally synchronized, so one fset serves every worker; the gc
	// export-data importer's package cache is NOT documented thread-safe,
	// so each worker owns a private importer (it still amortizes export
	// reads across that worker's share of the targets). Results land in a
	// position-indexed slice, keeping output order — and thus diagnostic
	// order — identical to the sequential loader's.
	pkgs := make([]*Package, len(targets))
	errs := make([]error, len(targets))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(targets) {
		workers = len(targets)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			imp := importer.ForCompiler(fset, "gc", lookup)
			for i := range next {
				pkgs[i], errs[i] = checkTarget(fset, imp, targets[i])
			}
		}()
	}
	for i := range targets {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// checkTarget parses and type-checks one go list target. imp must not be
// shared across goroutines.
func checkTarget(fset *token.FileSet, imp types.Importer, t listPackage) (*Package, error) {
	if t.Error != nil && len(t.GoFiles) == 0 {
		return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
	}
	pkg := &Package{ImportPath: t.ImportPath, Dir: t.Dir, Fset: fset}
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never fails hard: the Error hook swallows problems so the
	// passes can run on partial information.
	pkg.Types, _ = conf.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
	return pkg, nil
}
