package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and (best-effort) type-checked target.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// TypeErrors collects soft type-check failures. Passes still run with
	// whatever information survived; the driver surfaces these only in
	// verbose mode so a half-broken tree can still be linted.
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load expands the go list patterns (e.g. "./...") relative to dir,
// parses every non-test Go file of each matched package, and type-checks
// it. Imports — stdlib and module-internal alike — are resolved from the
// compiler export data `go list -export` places in the build cache, so
// loading works offline and never re-type-checks dependencies from
// source. Test files are not loaded: tglint's passes lint production
// code only.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil && len(t.GoFiles) == 0 {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		pkg := &Package{ImportPath: t.ImportPath, Dir: t.Dir, Fset: fset}
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", name, err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		// Check never fails hard: the Error hook swallows problems so the
		// passes can run on partial information.
		pkg.Types, _ = conf.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
