package analysis

// capgrow — the tgperf capacity pass. A loop that appends to a slice
// whose capacity was not established before the loop reallocates
// O(log n) times and copies O(n) elements; in the configured
// simulation packages that shape is reported. Capacity counts as
// established by a make (any arity), by a [:0] reslice-reset of the
// same slice, or by a nil-/cap-guard somewhere earlier in the
// function; suppress intentional cases with //lint:ignore capgrow.
// Unlike allocfree/boxcheck this pass is syntactic and package-local —
// it polices whole packages, not just the hot set, because a growing
// append hurts wherever it sits in a loop.

import (
	"go/ast"
	"go/types"
)

var Capgrow = &Analyzer{
	Name: "capgrow",
	Doc:  "loop appends to slices without established capacity",
	Run:  runCapgrow,
}

func runCapgrow(pass *Pass) {
	if !pkgMatches(pass.Config.Tgperf.CapgrowPackages, pass.ImportPath) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &capgrowWalker{pass: pass, est: make(map[string]bool)}
			w.stmts(fd.Body.List, 0)
		}
	}
}

// capgrowWalker walks one function in source order, tracking which
// slices have established capacity. The est set is flow-insensitive on
// branches (an establishment inside an if counts afterwards — that is
// exactly the nil-guard scratch idiom), which keeps the pass cheap and
// its findings easy to act on.
type capgrowWalker struct {
	pass *Pass
	est  map[string]bool
}

func (w *capgrowWalker) stmts(list []ast.Stmt, loopDepth int) {
	for _, s := range list {
		w.stmt(s, loopDepth)
	}
}

func (w *capgrowWalker) stmt(s ast.Stmt, loopDepth int) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List, loopDepth)
	case *ast.IfStmt:
		w.stmt(s.Init, loopDepth)
		if guard := guardTarget(w.pass.Info, s.Cond); guard != "" {
			w.est[guard] = true
		}
		w.stmts(s.Body.List, loopDepth)
		w.stmt(s.Else, loopDepth)
	case *ast.ForStmt:
		w.stmt(s.Init, loopDepth)
		w.stmt(s.Post, loopDepth+1)
		w.stmts(s.Body.List, loopDepth+1)
	case *ast.RangeStmt:
		w.stmts(s.Body.List, loopDepth+1)
	case *ast.SwitchStmt:
		w.stmt(s.Init, loopDepth)
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, loopDepth)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, loopDepth)
		w.stmt(s.Assign, loopDepth)
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, loopDepth)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.stmt(cc.Comm, loopDepth)
			w.stmts(cc.Body, loopDepth)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, loopDepth)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, v := range vs.Values {
				if isBuiltinCall(w.pass.Info, ast.Unparen(v), "make") && i < len(vs.Names) {
					w.est[vs.Names[i].Name] = true
				}
				w.exprLits(v, loopDepth)
			}
		}
	case *ast.AssignStmt:
		for i := range s.Lhs {
			if i >= len(s.Rhs) {
				break
			}
			lhs := types.ExprString(ast.Unparen(s.Lhs[i]))
			rhs := ast.Unparen(s.Rhs[i])
			switch {
			case isBuiltinCall(w.pass.Info, rhs, "make"):
				w.est[lhs] = true
			case isSelfReslice(rhs, lhs):
				w.est[lhs] = true
			default:
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinCall(w.pass.Info, call, "append") &&
					len(call.Args) > 0 {
					arg0 := types.ExprString(ast.Unparen(call.Args[0]))
					if arg0 == lhs {
						if loopDepth > 0 && !w.est[lhs] && !isZeroReslice(call.Args[0]) {
							w.pass.Reportf(call.Pos(),
								"append grows %s inside a loop without established capacity — preallocate with make or reset with %s = %s[:0] before the loop",
								lhs, lhs, lhs)
							w.est[lhs] = true // one finding per slice per function
						}
						continue
					}
				}
				delete(w.est, lhs)
			}
			w.exprLits(s.Rhs[i], loopDepth)
		}
	case *ast.ExprStmt:
		w.exprLits(s.X, loopDepth)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.exprLits(r, loopDepth)
		}
	case *ast.DeferStmt:
		w.exprLits(s.Call, loopDepth)
	case *ast.GoStmt:
		w.exprLits(s.Call, loopDepth)
	}
}

// exprLits chases func literals inside expressions; their bodies are
// walked with the surrounding loop depth (a literal built inside a
// loop runs inside that loop).
func (w *capgrowWalker) exprLits(e ast.Expr, loopDepth int) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, loopDepth)
			return false
		}
		return true
	})
}
