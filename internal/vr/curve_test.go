package vr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitLossModelPeak(t *testing.T) {
	m, err := FitLossModel(1.03, 1.5, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	c := Curve{Vout: 1.03, Loss: m}
	eta, ip := c.PeakEta()
	if math.Abs(eta-0.90) > 1e-9 {
		t.Errorf("peak eta = %v, want 0.90", eta)
	}
	if math.Abs(ip-1.5) > 1e-9 {
		t.Errorf("peak current = %v, want 1.5", ip)
	}
}

func TestFitLossModelRejectsBadInputs(t *testing.T) {
	cases := []struct{ vout, ipk, eta float64 }{
		{1.0, 1.0, 0},
		{1.0, 1.0, 1},
		{1.0, 1.0, 1.2},
		{1.0, 0, 0.9},
		{1.0, -1, 0.9},
		{0, 1, 0.9},
	}
	for _, tc := range cases {
		if _, err := FitLossModel(tc.vout, tc.ipk, tc.eta); err == nil {
			t.Errorf("FitLossModel(%v,%v,%v) accepted invalid input", tc.vout, tc.ipk, tc.eta)
		}
	}
}

func TestCurveShape(t *testing.T) {
	m, _ := FitLossModel(1.0, 1.0, 0.9)
	c := Curve{Vout: 1.0, Loss: m}
	// Rises up to the peak, falls past it.
	if !(c.Eta(0.1) < c.Eta(0.5) && c.Eta(0.5) < c.Eta(1.0)) {
		t.Error("efficiency not monotonically rising below the peak")
	}
	if !(c.Eta(1.0) > c.Eta(2.0) && c.Eta(2.0) > c.Eta(5.0)) {
		t.Error("efficiency not degrading past the peak")
	}
	if c.Eta(0) != 0 || c.Eta(-1) != 0 {
		t.Error("non-positive current must yield zero efficiency")
	}
}

func TestCurveEtaBounds(t *testing.T) {
	m, _ := FitLossModel(1.03, 1.5, 0.9)
	c := Curve{Vout: 1.03, Loss: m}
	f := func(raw float64) bool {
		i := math.Mod(math.Abs(raw), 100)
		eta := c.Eta(i)
		return eta >= 0 && eta <= 0.9+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlossEquationConsistency(t *testing.T) {
	// Eqn. 1: Ploss = Vout·Iout·(1/η − 1) must equal the internal loss model.
	m, _ := FitLossModel(1.03, 1.5, 0.9)
	c := Curve{Vout: 1.03, Loss: m}
	for _, i := range []float64{0.1, 0.5, 1.0, 1.5, 3.0, 10.0} {
		eta := c.Eta(i)
		fromEta := PlossFromEta(c.Vout*i, eta)
		direct := c.Ploss(i)
		if math.Abs(fromEta-direct) > 1e-9*math.Max(1, direct) {
			t.Errorf("i=%v: Eqn1 loss %v != model loss %v", i, fromEta, direct)
		}
	}
}

func TestPlossAtZeroLoadIsFixed(t *testing.T) {
	m, _ := FitLossModel(1.0, 2.0, 0.85)
	c := Curve{Vout: 1.0, Loss: m}
	if got := c.Ploss(0); math.Abs(got-m.Fixed) > 1e-12 {
		t.Errorf("zero-load loss = %v, want fixed loss %v", got, m.Fixed)
	}
	if got := c.Ploss(-3); got != m.Fixed {
		t.Errorf("negative current loss = %v, want %v", got, m.Fixed)
	}
}

func TestPlossFromEtaEdgeCases(t *testing.T) {
	if PlossFromEta(10, 0) != 0 {
		t.Error("zero efficiency must not divide by zero")
	}
	if PlossFromEta(0, 0.9) != 0 {
		t.Error("zero output power must dissipate nothing")
	}
	if got := PlossFromEta(9, 0.9); math.Abs(got-1) > 1e-12 {
		t.Errorf("PlossFromEta(9, 0.9) = %v, want 1", got)
	}
}

func TestSampleLogSpacing(t *testing.T) {
	m, _ := FitLossModel(1.0, 1.0, 0.9)
	c := Curve{Vout: 1.0, Loss: m}
	is, etas := c.Sample(0.01, 10, 31)
	if len(is) != 31 || len(etas) != 31 {
		t.Fatalf("Sample returned %d/%d points", len(is), len(etas))
	}
	if math.Abs(is[0]-0.01) > 1e-12 || math.Abs(is[30]-10) > 1e-9 {
		t.Errorf("sample endpoints = %v, %v", is[0], is[30])
	}
	// Log spacing: constant ratio between consecutive points.
	r := is[1] / is[0]
	for k := 2; k < len(is); k++ {
		if math.Abs(is[k]/is[k-1]-r) > 1e-9 {
			t.Fatalf("non-constant ratio at %d", k)
		}
	}
	if is, _ := c.Sample(0, 10, 5); is != nil {
		t.Error("Sample accepted iMin = 0")
	}
	if is, _ := c.Sample(1, 1, 5); is != nil {
		t.Error("Sample accepted empty range")
	}
	if is, _ := c.Sample(1, 2, 1); is != nil {
		t.Error("Sample accepted n < 2")
	}
}

func TestSampleLinear(t *testing.T) {
	m, _ := FitLossModel(1.0, 1.0, 0.9)
	c := Curve{Vout: 1.0, Loss: m}
	is, etas := c.SampleLinear(0, 15, 16)
	if len(is) != 16 {
		t.Fatalf("SampleLinear returned %d points", len(is))
	}
	if is[0] != 0 || is[15] != 15 {
		t.Errorf("endpoints %v, %v", is[0], is[15])
	}
	if etas[0] != 0 {
		t.Error("eta at zero current must be zero")
	}
	for k := 1; k < 16; k++ {
		if math.Abs(is[k]-is[k-1]-1) > 1e-9 {
			t.Fatalf("non-uniform spacing at %d", k)
		}
	}
}

func TestPeakEtaDegenerate(t *testing.T) {
	c := Curve{Vout: 1, Loss: LossModel{Fixed: 0.1, Linear: 0.01}}
	eta, ip := c.PeakEta()
	if !math.IsInf(ip, 1) {
		t.Errorf("degenerate peak current = %v, want +Inf", ip)
	}
	if eta < 0 || eta > 1 {
		t.Errorf("degenerate peak eta = %v", eta)
	}
}
