package vr

import (
	"math"
	"testing"
	"testing/quick"
)

// smallLDO is a light-load-efficient component for mixed networks.
func smallLDO() Design {
	return Design{
		Name: "small-ldo", Topology: LDO, Vin: 1.15, Vout: NominalVdd,
		EtaPeak: 0.90, IPeak: 0.4, IMax: 0.6,
	}
}

func mixedNetwork(t *testing.T) *HeteroNetwork {
	t.Helper()
	designs := []Design{FIVR(), FIVR(), FIVR(), smallLDO(), smallLDO()}
	h, err := NewHeteroNetwork(designs)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHeteroNetworkValidation(t *testing.T) {
	if _, err := NewHeteroNetwork(nil); err == nil {
		t.Error("empty network accepted")
	}
	bad := FIVR()
	bad.IMax = 0.1
	if _, err := NewHeteroNetwork([]Design{bad}); err == nil {
		t.Error("IMax < IPeak accepted")
	}
	bad = FIVR()
	bad.EtaPeak = 2
	if _, err := NewHeteroNetwork([]Design{bad}); err == nil {
		t.Error("invalid efficiency accepted")
	}
	many := make([]Design, 17)
	for i := range many {
		many[i] = FIVR()
	}
	if _, err := NewHeteroNetwork(many); err == nil {
		t.Error("17-component network accepted")
	}
}

func TestHeteroReducesToHomogeneous(t *testing.T) {
	// With identical components the optimal allocation is equal sharing
	// with NOn active — exactly the homogeneous network's behaviour.
	designs := make([]Design, 9)
	for i := range designs {
		designs[i] = FIVR()
	}
	h, err := NewHeteroNetwork(designs)
	if err != nil {
		t.Fatal(err)
	}
	if !h.HomogeneousEquivalent() {
		t.Fatal("identical components not flagged homogeneous")
	}
	nw, err := NewNetwork(FIVR(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, iout := range []float64{0.5, 1.5, 3.0, 4.5, 7.5, 12.0} {
		a, err := h.Allocate(iout)
		if err != nil {
			t.Fatalf("iout=%v: %v", iout, err)
		}
		activeCount := 0
		for _, on := range a.Active {
			if on {
				activeCount++
			}
		}
		wantCount := nw.NOn(iout)
		if activeCount != wantCount {
			t.Errorf("iout=%v: hetero activates %d, homogeneous NOn = %d", iout, activeCount, wantCount)
		}
		wantLoss := nw.PlossAt(iout, wantCount)
		if math.Abs(a.PlossW-wantLoss) > 1e-6*math.Max(1, wantLoss) {
			t.Errorf("iout=%v: hetero loss %v, homogeneous %v", iout, a.PlossW, wantLoss)
		}
		// Active shares are equal.
		var ref float64
		for i, on := range a.Active {
			if on {
				ref = a.ShareA[i]
				break
			}
		}
		for i, on := range a.Active {
			if on && math.Abs(a.ShareA[i]-ref) > 1e-9 {
				t.Errorf("iout=%v: unequal shares among identical components", iout)
			}
		}
	}
}

func TestHeteroPrefersSmallAtLightLoad(t *testing.T) {
	h := mixedNetwork(t)
	a, err := h.Allocate(0.3)
	if err != nil {
		t.Fatal(err)
	}
	// At 0.3A the small LDO (low fixed loss) should carry the load alone.
	activeBig, activeSmall := 0, 0
	for i, on := range a.Active {
		if !on {
			continue
		}
		if h.designs[i].Name == "small-ldo" {
			activeSmall++
		} else {
			activeBig++
		}
	}
	if activeSmall == 0 || activeBig > 0 {
		t.Errorf("light load served by %d big and %d small regulators", activeBig, activeSmall)
	}
}

func TestHeteroUsesBigAtHeavyLoad(t *testing.T) {
	h := mixedNetwork(t)
	a, err := h.Allocate(5.0)
	if err != nil {
		t.Fatal(err)
	}
	big := 0
	for i, on := range a.Active {
		if on && h.designs[i].Name == "FIVR" {
			big++
		}
	}
	if big < 3 {
		t.Errorf("5A load served by only %d big phases", big)
	}
}

func TestHeteroAllocationConservation(t *testing.T) {
	h := mixedNetwork(t)
	for _, iout := range []float64{0.2, 1.0, 2.5, 4.0, 6.0} {
		a, err := h.Allocate(iout)
		if err != nil {
			t.Fatalf("iout=%v: %v", iout, err)
		}
		var sum float64
		for i, x := range a.ShareA {
			if x < -1e-12 {
				t.Fatalf("iout=%v: negative share on %d", iout, i)
			}
			if x > h.designs[i].IMax+1e-9 {
				t.Fatalf("iout=%v: share %v exceeds limit on %d", iout, x, i)
			}
			if !a.Active[i] && x != 0 {
				t.Fatalf("iout=%v: gated regulator %d carries %v", iout, i, x)
			}
			sum += x
		}
		if math.Abs(sum-iout) > 1e-9 {
			t.Fatalf("iout=%v: shares sum to %v", iout, sum)
		}
	}
}

func TestHeteroEfficiencyNearPeak(t *testing.T) {
	h := mixedNetwork(t)
	for iout := 0.5; iout <= 5.0; iout += 0.25 {
		eta, err := h.EffectiveEta(iout)
		if err != nil {
			t.Fatalf("iout=%v: %v", iout, err)
		}
		if eta < 0.85 {
			t.Errorf("iout=%v: effective eta %v below 0.85", iout, eta)
		}
	}
}

func TestHeteroOverloadRejected(t *testing.T) {
	h := mixedNetwork(t)
	if _, err := h.Allocate(h.MaxCurrent() + 1); err == nil {
		t.Error("overload accepted")
	}
	if _, err := h.Allocate(-1); err == nil {
		t.Error("negative demand accepted")
	}
	// Exactly at capacity is feasible.
	if _, err := h.Allocate(h.MaxCurrent()); err != nil {
		t.Errorf("full capacity rejected: %v", err)
	}
}

func TestHeteroPreferredOrder(t *testing.T) {
	h := mixedNetwork(t)
	order := h.PreferredOrder()
	if len(order) != 5 {
		t.Fatalf("order of %d", len(order))
	}
	// The small LDOs (lowest fixed loss) come first.
	if h.designs[order[0]].Name != "small-ldo" || h.designs[order[1]].Name != "small-ldo" {
		t.Errorf("preferred order starts with %s, %s",
			h.designs[order[0]].Name, h.designs[order[1]].Name)
	}
	if h.HomogeneousEquivalent() {
		t.Error("mixed network flagged homogeneous")
	}
}

// Property: the optimal allocation never loses to naive equal sharing
// across all components.
func TestHeteroBeatsEqualSharing(t *testing.T) {
	h := mixedNetwork(t)
	equalShareLoss := func(iout float64) (float64, bool) {
		n := len(h.designs)
		share := iout / float64(n)
		var loss float64
		for i := range h.designs {
			if share > h.designs[i].IMax {
				return 0, false
			}
			loss += h.curves[i].Loss.LossAt(share)
		}
		return loss, true
	}
	f := func(raw float64) bool {
		iout := math.Mod(math.Abs(raw), 2.8) + 0.1
		a, err := h.Allocate(iout)
		if err != nil {
			return false
		}
		naive, ok := equalShareLoss(iout)
		if !ok {
			return true
		}
		return a.PlossW <= naive+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
