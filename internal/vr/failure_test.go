package vr

import (
	"errors"
	"math"
	"testing"
)

// TestNOnAvailable pins the degraded re-solve: with survivors the count
// stays within the surviving subset and demand spills to them; with none,
// the network reports zero capacity.
func TestNOnAvailable(t *testing.T) {
	nw, err := NewNetwork(FIVR(), 9)
	if err != nil {
		t.Fatal(err)
	}
	d := nw.Design()

	// Healthy network: NOnAvailable(n) must agree with NOn exactly.
	for _, iout := range []float64{0, 0.5, 2, 5, 8, 12} {
		count, over := nw.NOnAvailable(iout, nw.Size())
		if count != nw.NOn(iout) {
			t.Errorf("NOnAvailable(%v, all) = %d, NOn = %d", iout, count, nw.NOn(iout))
		}
		if over != !nw.Legal(iout, count) {
			t.Errorf("NOnAvailable(%v, all) overload flag %v inconsistent with Legal", iout, over)
		}
	}

	// Demand that needs 4 healthy regulators, solved over 2 survivors:
	// the count is capped at the survivors and the overload flag trips
	// exactly when their combined IMax cannot carry the load.
	iout := 3.5 * d.IPeak
	count, over := nw.NOnAvailable(iout, 2)
	if count < 1 || count > 2 {
		t.Fatalf("count %d outside surviving [1, 2]", count)
	}
	if wantOver := 2*d.IMax < iout; over != wantOver {
		t.Errorf("overload = %v, want %v (2·IMax=%v vs iout=%v)", over, wantOver, 2*d.IMax, iout)
	}

	// No survivors.
	if count, over := nw.NOnAvailable(1.0, 0); count != 0 || !over {
		t.Errorf("no survivors: count=%d over=%v, want 0, true", count, over)
	}
	if count, over := nw.NOnAvailable(0, 0); count != 0 || over {
		t.Errorf("no survivors, no demand: count=%d over=%v, want 0, false", count, over)
	}

	// available beyond the network size clamps.
	if count, _ := nw.NOnAvailable(2, 99); count != nw.NOn(2) {
		t.Error("oversized available not clamped to network size")
	}
}

// TestAllocateExcluding pins the heterogeneous re-solve around failures.
func TestAllocateExcluding(t *testing.T) {
	designs := []Design{FIVR(), FIVR(), POWER8LDO()}
	h, err := NewHeteroNetwork(designs)
	if err != nil {
		t.Fatal(err)
	}

	// nil failure set must reproduce Allocate bit-for-bit.
	iout := 0.8 * h.MaxCurrent()
	base, err := h.Allocate(iout)
	if err != nil {
		t.Fatal(err)
	}
	same, err := h.AllocateExcluding(iout, nil)
	if err != nil {
		t.Fatal(err)
	}
	if same.PlossW != base.PlossW || same.Eta != base.Eta {
		t.Errorf("AllocateExcluding(nil) diverges from Allocate: %v vs %v", same.PlossW, base.PlossW)
	}

	// Failing one component spills its share to the survivors and never
	// activates it.
	failed := []bool{true, false, false}
	survivingCap := designs[1].IMax + designs[2].IMax
	a, err := h.AllocateExcluding(0.9*survivingCap, failed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Active[0] || a.ShareA[0] != 0 {
		t.Errorf("failed component activated: active=%v share=%v", a.Active[0], a.ShareA[0])
	}
	var sum float64
	for _, s := range a.ShareA {
		sum += s
	}
	if math.Abs(sum-0.9*survivingCap) > 1e-9 {
		t.Errorf("shares sum %v, want %v", sum, 0.9*survivingCap)
	}

	// Demand beyond the surviving capacity is a typed brown-out error.
	_, err = h.AllocateExcluding(survivingCap*1.5, failed)
	if !errors.Is(err, ErrCapacity) {
		t.Errorf("over-capacity error = %v, want ErrCapacity", err)
	}
	// The same demand fits the healthy network.
	if survivingCap*1.5 < h.MaxCurrent() {
		if _, err := h.Allocate(survivingCap * 1.5); err != nil {
			t.Errorf("healthy network rejected feasible demand: %v", err)
		}
	}

	// Everything failed: any positive demand is infeasible.
	if _, err := h.AllocateExcluding(0.1, []bool{true, true, true}); err == nil {
		t.Error("all-failed network accepted demand")
	}

	// Mis-sized failure slice is rejected.
	if _, err := h.AllocateExcluding(1, []bool{true}); err == nil {
		t.Error("short failure slice accepted")
	}
}
