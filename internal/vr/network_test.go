package vr

import (
	"math"
	"testing"
	"testing/quick"
)

func newTestNetwork(t *testing.T) *Network {
	t.Helper()
	nw, err := NewNetwork(FIVR(), 9)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewNetworkRejectsBadInputs(t *testing.T) {
	if _, err := NewNetwork(FIVR(), 0); err == nil {
		t.Error("accepted zero-size network")
	}
	d := FIVR()
	d.IMax = 0.5 // below IPeak
	if _, err := NewNetwork(d, 4); err == nil {
		t.Error("accepted IMax < IPeak")
	}
	d = FIVR()
	d.EtaPeak = 1.5
	if _, err := NewNetwork(d, 4); err == nil {
		t.Error("accepted invalid peak efficiency")
	}
}

func TestNOnTracksDemand(t *testing.T) {
	nw := newTestNetwork(t)
	ipk := nw.Design().IPeak
	// At exactly k·IPeak the optimum is k active regulators.
	for k := 1; k <= 9; k++ {
		if got := nw.NOn(float64(k) * ipk); got != k {
			t.Errorf("NOn(%d×IPeak) = %d, want %d", k, got, k)
		}
	}
	if got := nw.NOn(0); got != 1 {
		t.Errorf("NOn(0) = %d, want 1 (load must stay supplied)", got)
	}
	if got := nw.NOn(-3); got != 1 {
		t.Errorf("NOn(-3) = %d, want 1", got)
	}
	// Saturates at N under overload.
	if got := nw.NOn(1000); got != 9 {
		t.Errorf("NOn(overload) = %d, want 9", got)
	}
}

func TestNOnIsLossOptimal(t *testing.T) {
	nw := newTestNetwork(t)
	// Exhaustively verify NOn returns the legal active count with the
	// lowest conversion loss across the feasible current range.
	for i := 0.05; i <= nw.MaxCurrent(); i += 0.05 {
		got := nw.NOn(i)
		best, bestLoss := -1, math.Inf(1)
		for n := 1; n <= nw.Size(); n++ {
			if !nw.Legal(i, n) {
				continue
			}
			if l := nw.PlossAt(i, n); l < bestLoss {
				best, bestLoss = n, l
			}
		}
		if best != got {
			t.Fatalf("NOn(%.2f) = %d, but exhaustive optimum is %d", i, got, best)
		}
	}
}

func TestLegal(t *testing.T) {
	nw := newTestNetwork(t)
	imax := nw.Design().IMax
	if !nw.Legal(imax*3, 3) {
		t.Error("3 VRs at exactly 3×IMax must be legal")
	}
	if nw.Legal(imax*3+0.01, 3) {
		t.Error("exceeding the per-phase limit must be illegal")
	}
	if nw.Legal(1, 0) || nw.Legal(1, 10) {
		t.Error("active counts outside [1,N] must be illegal")
	}
}

func TestEffectiveEtaStaysNearPeak(t *testing.T) {
	// Fig. 5: the effective (gated) curve stays close to ηpeak over a wide
	// current window (the paper quotes sustained operation within 1% of the
	// peak). Check from one phase-peak up to the network maximum.
	nw := newTestNetwork(t)
	etaPeak := nw.Design().EtaPeak
	for i := nw.Design().IPeak; i <= float64(nw.Size())*nw.Design().IPeak; i += 0.1 {
		eta := nw.EffectiveEta(i)
		if eta < etaPeak-0.01 {
			t.Errorf("effective eta at %.2fA = %.4f, more than 1%% below peak %.3f", i, eta, etaPeak)
		}
		if eta > etaPeak+1e-9 {
			t.Errorf("effective eta at %.2fA = %.4f exceeds the peak", i, eta)
		}
	}
}

func TestCurveForPhaseScaling(t *testing.T) {
	nw := newTestNetwork(t)
	// Fig. 2 property: the n-phase curve peaks at n×(single-phase peak).
	single := nw.PhaseCurve()
	_, ip1 := single.PeakEta()
	for n := 1; n <= 9; n++ {
		c, err := nw.CurveFor(n)
		if err != nil {
			t.Fatal(err)
		}
		etaN, ipN := c.PeakEta()
		if math.Abs(ipN-float64(n)*ip1) > 1e-9 {
			t.Errorf("%d-phase peak at %vA, want %vA", n, ipN, float64(n)*ip1)
		}
		if math.Abs(etaN-nw.Design().EtaPeak) > 1e-9 {
			t.Errorf("%d-phase peak eta = %v, want %v", n, etaN, nw.Design().EtaPeak)
		}
	}
	if _, err := nw.CurveFor(0); err == nil {
		t.Error("CurveFor(0) must fail")
	}
	if _, err := nw.CurveFor(10); err == nil {
		t.Error("CurveFor(N+1) must fail")
	}
}

func TestPerVRLossAndTotalAgree(t *testing.T) {
	nw := newTestNetwork(t)
	for _, iout := range []float64{0, 0.5, 1.5, 4.5, 9.0, 13.5} {
		for n := 1; n <= 9; n++ {
			total := nw.PlossAt(iout, n)
			per := nw.PerVRLoss(iout, n)
			if math.Abs(per*float64(n)-total) > 1e-9*math.Max(1, total) {
				t.Errorf("iout=%v n=%d: per-VR loss ×n = %v, total = %v",
					iout, n, per*float64(n), total)
			}
		}
	}
	if nw.PerVRLoss(1, 0) != 0 {
		t.Error("PerVRLoss with zero active must be zero")
	}
}

func TestGatingSavesPloss(t *testing.T) {
	// Section 6.1: keeping all 9 regulators on at light load dissipates more
	// than gating down to n_on.
	nw := newTestNetwork(t)
	light := 1.0 // amps, well below 9×IPeak
	allOn := nw.PlossAt(light, 9)
	gated := nw.PlossAt(light, nw.NOn(light))
	if gated >= allOn {
		t.Errorf("gated loss %v not below all-on loss %v at light load", gated, allOn)
	}
	// At full load gating converges to all-on.
	full := 9 * nw.Design().IPeak
	if nw.NOn(full) != 9 {
		t.Errorf("NOn(full load) = %d, want 9", nw.NOn(full))
	}
}

func TestEtaAtIllegalConfigs(t *testing.T) {
	nw := newTestNetwork(t)
	if nw.EtaAt(1, 0) != 0 || nw.EtaAt(1, 100) != 0 {
		t.Error("illegal active counts must yield zero efficiency")
	}
	if nw.PlossAt(1, 0) != 0 {
		t.Error("illegal active count must yield zero loss")
	}
}

func TestMaxCurrent(t *testing.T) {
	nw := newTestNetwork(t)
	want := 9 * nw.Design().IMax
	if got := nw.MaxCurrent(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxCurrent = %v, want %v", got, want)
	}
}

// Property: for any demand within network capacity, NOn yields a legal
// configuration whose efficiency is within the peak.
func TestNOnProperties(t *testing.T) {
	nw := newTestNetwork(t)
	f := func(raw float64) bool {
		i := math.Mod(math.Abs(raw), nw.MaxCurrent())
		n := nw.NOn(i)
		if n < 1 || n > nw.Size() {
			return false
		}
		if i > 0 && !nw.Legal(i, n) {
			return false
		}
		return nw.EtaAt(i, n) <= nw.Design().EtaPeak+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestISSCC2015SurveyCurves(t *testing.T) {
	entries := ISSCC2015Survey()
	if len(entries) != 8 {
		t.Fatalf("survey has %d entries, want 8", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.Ref] {
			t.Errorf("duplicate survey ref %s", e.Ref)
		}
		seen[e.Ref] = true
		c, err := e.Design.Curve()
		if err != nil {
			t.Fatalf("%s: %v", e.Ref, err)
		}
		eta, ip := c.PeakEta()
		if math.Abs(eta-e.Design.EtaPeak) > 1e-9 {
			t.Errorf("%s: peak eta %v, want %v", e.Ref, eta, e.Design.EtaPeak)
		}
		if math.Abs(ip-e.Design.IPeak) > 1e-9 {
			t.Errorf("%s: peak current %v, want %v", e.Ref, ip, e.Design.IPeak)
		}
		if e.IMinA <= 0 || e.IMaxA <= e.IMinA {
			t.Errorf("%s: bad plot range [%v, %v]", e.Ref, e.IMinA, e.IMaxA)
		}
	}
}

func TestLDOEta(t *testing.T) {
	// The LDO ceiling is Vout/Vin.
	ceiling := 1.03 / 1.15
	if eta := LDOEta(1.15, 1.03, 0.001, 10); math.Abs(eta-ceiling) > 0.001 {
		t.Errorf("high-load LDO eta = %v, want ≈%v", eta, ceiling)
	}
	if eta := LDOEta(1.15, 1.03, 0.001, 0.0001); eta >= ceiling/2 {
		t.Errorf("light-load LDO eta = %v, should degrade well below the ceiling", eta)
	}
	if LDOEta(1.0, 1.2, 0.001, 1) != 0 {
		t.Error("Vout > Vin must be rejected")
	}
	if LDOEta(1.2, 1.0, 0.001, 0) != 0 {
		t.Error("zero load must yield zero efficiency")
	}
}

func TestDesignAccessors(t *testing.T) {
	f := FIVR()
	if f.EtaPeak != 0.90 || f.IPeak != 1.5 || f.PoutPerAreaWmm2 != 33.6 {
		t.Errorf("FIVR design point wrong: %+v", f)
	}
	l := POWER8LDO()
	if l.EtaPeak != 0.905 || l.PoutPerAreaWmm2 != 34.5 {
		t.Errorf("POWER8 LDO design point wrong: %+v", l)
	}
	if l.ResponseTimeNS >= f.ResponseTimeNS {
		t.Error("LDO must respond faster than the buck (Section 6.4)")
	}
	d, phases := IntelMultiPhase16()
	if len(phases) != 5 || phases[len(phases)-1] != 16 {
		t.Errorf("Intel multi-phase counts = %v", phases)
	}
	if d.EtaPeak != 0.90 {
		t.Errorf("Intel multi-phase eta peak = %v", d.EtaPeak)
	}
	if Buck.String() != "buck" || SwitchedCapacitor.String() != "switched-capacitor" || LDO.String() != "ldo" {
		t.Error("Topology strings wrong")
	}
}

func TestMotivatingCaseStudy(t *testing.T) {
	// Section 2's case study: Haswell Pout/area = 33.6 W/mm² at ηpeak = 90%
	// implies Ploss/area ≈ 3.7 W/mm², above the 1.5 W/mm² air-cooling limit.
	f := FIVR()
	plossPerArea := PlossFromEta(f.PoutPerAreaWmm2, f.EtaPeak)
	if math.Abs(plossPerArea-3.7333) > 0.01 {
		t.Errorf("Ploss/area = %v W/mm², paper reports ≈3.7", plossPerArea)
	}
	const airCoolingLimit = 1.5 // W/mm²
	if plossPerArea <= airCoolingLimit {
		t.Error("case study must exceed the air cooling limit")
	}
}
