package vr

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrCapacity marks demand beyond the (surviving) network's total IMax —
// callers report it as a brown-out rather than a programming error.
var ErrCapacity = errors.New("vr: demand exceeds capacity")

// HeteroNetwork models a distributed power delivery network whose component
// regulators are *heterogeneous* in topology and electrical characteristics
// (Section 3.1, after Vaisband & Friedman): e.g. a few large buck phases
// carrying the bulk load plus small LDOs for light-load efficiency. Unlike
// the homogeneous Network, equal current sharing is no longer optimal —
// each active regulator gets the share that equalises marginal loss, and
// subset selection searches the configuration space.
type HeteroNetwork struct {
	designs []Design
	curves  []Curve
}

// NewHeteroNetwork builds a network from per-component designs.
func NewHeteroNetwork(designs []Design) (*HeteroNetwork, error) {
	if len(designs) == 0 {
		return nil, errors.New("vr: heterogeneous network needs at least one regulator")
	}
	if len(designs) > 16 {
		// Subset selection enumerates 2^n configurations.
		return nil, fmt.Errorf("vr: heterogeneous network of %d exceeds the 16-component limit", len(designs))
	}
	h := &HeteroNetwork{designs: append([]Design(nil), designs...)}
	h.curves = make([]Curve, 0, len(designs))
	for i, d := range designs {
		if d.IMax < d.IPeak {
			return nil, fmt.Errorf("vr: component %d has IMax %v below IPeak %v", i, d.IMax, d.IPeak)
		}
		c, err := d.Curve()
		if err != nil {
			return nil, fmt.Errorf("vr: component %d: %w", i, err)
		}
		h.curves = append(h.curves, c)
	}
	return h, nil
}

// Size returns the component count.
func (h *HeteroNetwork) Size() int { return len(h.designs) }

// Designs returns the component design points.
func (h *HeteroNetwork) Designs() []Design {
	return append([]Design(nil), h.designs...)
}

// Allocation is one operating configuration of the network.
type Allocation struct {
	// Active marks the regulators that are on.
	Active []bool
	// ShareA is the per-regulator current (zero for gated ones).
	ShareA []float64
	// PlossW is the total conversion loss.
	PlossW float64
	// Eta is the resulting conversion efficiency.
	Eta float64
}

// Allocate finds the loss-minimal configuration supplying iout: for every
// subset that can legally carry the load, the continuous share split that
// equalises marginal loss (water-filling over the quadratic loss curves,
// clamped at the per-component current limits), keeping the best. An error
// is returned when even the full network cannot carry iout.
func (h *HeteroNetwork) Allocate(iout float64) (*Allocation, error) {
	return h.AllocateExcluding(iout, nil)
}

// AllocateExcluding is Allocate over the surviving subset of the network:
// components with failed[i] set are removed from both the capacity budget
// and the subset search, spilling their share to the survivors. The error
// distinguishes demand beyond the surviving capacity (a reportable
// brown-out, wrapped around ErrCapacity) from an internally infeasible
// split. A nil failed slice means every component is in service.
func (h *HeteroNetwork) AllocateExcluding(iout float64, failed []bool) (*Allocation, error) {
	if iout < 0 {
		return nil, fmt.Errorf("vr: negative demand %v", iout)
	}
	n := len(h.designs)
	if failed != nil && len(failed) != n {
		return nil, fmt.Errorf("vr: %d failure flags for %d components", len(failed), n)
	}
	isFailed := func(i int) bool { return failed != nil && failed[i] }
	var capacity float64
	for i, d := range h.designs {
		if !isFailed(i) {
			capacity += d.IMax
		}
	}
	if iout > capacity+1e-12 {
		return nil, fmt.Errorf("%w: demand %vA exceeds surviving capacity %vA", ErrCapacity, iout, capacity)
	}

	best := (*Allocation)(nil)
	for mask := 1; mask < 1<<n; mask++ {
		excluded := false
		var capSum float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				if isFailed(i) {
					excluded = true
					break
				}
				capSum += h.designs[i].IMax
			}
		}
		if excluded {
			continue
		}
		if capSum+1e-12 < iout {
			continue
		}
		shares, loss, ok := h.waterfill(mask, iout)
		if !ok {
			continue
		}
		if best == nil || loss < best.PlossW {
			active := make([]bool, n)
			for i := 0; i < n; i++ {
				active[i] = mask&(1<<i) != 0
			}
			pout := iout * h.curves[0].Vout
			eta := 0.0
			if pout > 0 {
				eta = pout / (pout + loss)
			}
			best = &Allocation{Active: active, ShareA: shares, PlossW: loss, Eta: eta}
		}
	}
	if best == nil {
		return nil, errors.New("vr: no feasible configuration")
	}
	return best, nil
}

// waterfill splits iout across the subset so that marginal losses are
// equal: for loss Lᵢ(x) = aᵢ + bᵢx + cᵢx², dLᵢ/dx = bᵢ + 2cᵢx, so the
// unconstrained optimum sets xᵢ = (λ − bᵢ)/(2cᵢ). Components clamped at
// their current limit are removed and λ re-solved.
func (h *HeteroNetwork) waterfill(mask int, iout float64) (shares []float64, loss float64, ok bool) {
	n := len(h.designs)
	shares = make([]float64, n)
	remaining := iout
	free := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if mask&(1<<i) != 0 {
			free = append(free, i)
		}
	}
	if len(free) == 0 {
		return nil, 0, false
	}
	// Iteratively solve for λ, clamping saturated components.
	for len(free) > 0 && remaining > 1e-12 {
		var sumInvC, sumBinvC float64
		for _, i := range free {
			c := h.curves[i].Loss.Quadratic
			if c <= 0 {
				return nil, 0, false
			}
			sumInvC += 1 / (2 * c)
			sumBinvC += h.curves[i].Loss.Linear / (2 * c)
		}
		lambda := (remaining + sumBinvC) / sumInvC
		clamped := false
		next := free[:0]
		for _, i := range free {
			x := (lambda - h.curves[i].Loss.Linear) / (2 * h.curves[i].Loss.Quadratic)
			if x >= h.designs[i].IMax {
				shares[i] = h.designs[i].IMax
				remaining -= h.designs[i].IMax
				clamped = true
				continue
			}
			next = append(next, i) //lint:ignore capgrow in-place filter over free[:0]; never exceeds len(free)
		}
		free = next
		if !clamped {
			// Assign the unconstrained optimum.
			for _, i := range free {
				x := (lambda - h.curves[i].Loss.Linear) / (2 * h.curves[i].Loss.Quadratic)
				if x < 0 {
					x = 0
				}
				shares[i] = x
			}
			remaining = 0
			free = nil
		}
	}
	if remaining > 1e-9 {
		return nil, 0, false
	}
	for i := 0; i < n; i++ {
		if mask&(1<<i) != 0 {
			loss += h.curves[i].Loss.LossAt(shares[i])
			//lint:ignore floatcheck masked-off shares are assigned exactly zero, never computed
		} else if shares[i] != 0 {
			return nil, 0, false
		}
	}
	return shares, loss, true
}

// EffectiveEta returns the efficiency the optimally gated heterogeneous
// network sustains at iout.
func (h *HeteroNetwork) EffectiveEta(iout float64) (float64, error) {
	a, err := h.Allocate(iout)
	if err != nil {
		return 0, err
	}
	return a.Eta, nil
}

// PreferredOrder returns component indices sorted by light-load merit
// (lowest fixed loss first) — the order in which regulators activate as
// demand grows in a heterogeneous network.
func (h *HeteroNetwork) PreferredOrder() []int {
	idx := make([]int, len(h.designs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return h.curves[idx[a]].Loss.Fixed < h.curves[idx[b]].Loss.Fixed
	})
	return idx
}

// MaxCurrent returns the network's total current capacity.
func (h *HeteroNetwork) MaxCurrent() float64 {
	var sum float64
	for _, d := range h.designs {
		sum += d.IMax
	}
	return sum
}

// HomogeneousEquivalent reports whether the network's components are all
// electrically identical (in which case Allocate reduces to the
// homogeneous NOn behaviour, which the tests verify).
func (h *HeteroNetwork) HomogeneousEquivalent() bool {
	for _, d := range h.designs[1:] {
		if math.Abs(d.EtaPeak-h.designs[0].EtaPeak) > 1e-12 ||
			math.Abs(d.IPeak-h.designs[0].IPeak) > 1e-12 ||
			math.Abs(d.IMax-h.designs[0].IMax) > 1e-12 ||
			math.Abs(d.Vout-h.designs[0].Vout) > 1e-12 {
			return false
		}
	}
	return true
}
