// Package vr models integrated (on-chip) voltage regulators: their power
// conversion efficiency as a function of output load current, the loss they
// dissipate as heat (Eqn. 1 of the ThermoGater paper), and the behaviour of
// a parallel network of many small component regulators under gating
// (Sections 2, 3 and Figs. 1, 2, 5).
package vr

import (
	"fmt"
	"math"
)

// LossModel captures the internal power loss of one component regulator as
// a quadratic function of its output current:
//
//	Ploss_internal(I) = Fixed + Linear·I + Quadratic·I²
//
// Fixed models controller/clocking/switching overhead that is paid whenever
// the regulator is on; the quadratic term models conduction (I²R) loss.
// Conversion efficiency follows as
//
//	η(I) = Vout·I / (Vout·I + Ploss_internal(I))
//
// which rises from zero at no load, peaks where fixed loss equals conduction
// loss, and degrades past the peak — the canonical regulator shape of Fig. 1.
type LossModel struct {
	Fixed     float64 // W
	Linear    float64 // W/A
	Quadratic float64 // W/A²
}

// LossAt returns the internal loss in watts at output current i (amps).
func (m LossModel) LossAt(i float64) float64 {
	return m.Fixed + m.Linear*i + m.Quadratic*i*i
}

// FitLossModel calibrates a quadratic loss model so that efficiency peaks at
// exactly (iPeak, etaPeak) for the given output voltage: the well-known
// optimum condition Fixed = Quadratic·iPeak² combined with the peak
// efficiency constraint. etaPeak must lie in (0, 1) and iPeak must be
// positive.
func FitLossModel(vout, iPeak, etaPeak float64) (LossModel, error) {
	if !(etaPeak > 0 && etaPeak < 1) {
		return LossModel{}, fmt.Errorf("vr: etaPeak %v outside (0,1)", etaPeak)
	}
	if iPeak <= 0 {
		return LossModel{}, fmt.Errorf("vr: iPeak %v must be positive", iPeak)
	}
	if vout <= 0 {
		return LossModel{}, fmt.Errorf("vr: vout %v must be positive", vout)
	}
	// At the peak: Fixed + Quadratic·iPeak² = vout·iPeak·(1/etaPeak − 1)
	// and dη/dI = 0 ⇒ Fixed = Quadratic·iPeak².
	total := vout * iPeak * (1/etaPeak - 1)
	q := total / (2 * iPeak * iPeak)
	return LossModel{Fixed: q * iPeak * iPeak, Quadratic: q}, nil
}

// Curve is the efficiency-vs-load characteristic of one regulator
// configuration at a fixed output voltage.
type Curve struct {
	Vout float64
	Loss LossModel
}

// Eta returns the conversion efficiency η ∈ [0, 1) at output current i.
// Zero or negative current yields zero efficiency (the regulator still burns
// its fixed loss).
func (c Curve) Eta(i float64) float64 {
	if i <= 0 {
		return 0
	}
	pout := c.Vout * i
	return pout / (pout + c.Loss.LossAt(i))
}

// PeakEta returns the peak efficiency and the current at which it occurs.
// For a quadratic loss model the peak is at sqrt(Fixed/Quadratic).
func (c Curve) PeakEta() (eta, iPeak float64) {
	if c.Loss.Quadratic <= 0 {
		// Degenerate: efficiency monotonically approaches an asymptote.
		return c.Eta(math.Inf(1)), math.Inf(1)
	}
	iPeak = math.Sqrt(c.Loss.Fixed / c.Loss.Quadratic)
	return c.Eta(iPeak), iPeak
}

// Ploss returns the conversion loss dissipated as heat, per Eqn. 1:
//
//	Ploss = Pout × (1/η − 1) = Vout × Iout × (1/η − 1)
//
// which for this model equals the internal loss at i, including the fixed
// loss burned at zero load.
func (c Curve) Ploss(i float64) float64 {
	if i < 0 {
		i = 0
	}
	return c.Loss.LossAt(i)
}

// PlossFromEta computes Eqn. 1 directly from an output power and an
// efficiency; exposed so that callers holding only (Pout, η) pairs — for
// example from a datasheet — can recover the heat dissipated.
func PlossFromEta(pout, eta float64) float64 {
	if eta <= 0 || pout <= 0 {
		return 0
	}
	return pout * (1/eta - 1)
}

// Sample evaluates the curve at n log-spaced currents in [iMin, iMax] and
// returns parallel slices of current and efficiency, ready for plotting:
// this is how the Fig. 1 and Fig. 2 series are produced.
func (c Curve) Sample(iMin, iMax float64, n int) (currents, etas []float64) {
	if n < 2 || iMin <= 0 || iMax <= iMin {
		return nil, nil
	}
	currents = make([]float64, n)
	etas = make([]float64, n)
	ratio := math.Pow(iMax/iMin, 1/float64(n-1))
	i := iMin
	for k := 0; k < n; k++ {
		currents[k] = i
		etas[k] = c.Eta(i)
		i *= ratio
	}
	return currents, etas
}

// SampleLinear evaluates the curve at n evenly spaced currents in
// [iMin, iMax]; Figs. 2 and 5 use a linear current axis.
func (c Curve) SampleLinear(iMin, iMax float64, n int) (currents, etas []float64) {
	if n < 2 || iMax <= iMin {
		return nil, nil
	}
	currents = make([]float64, n)
	etas = make([]float64, n)
	step := (iMax - iMin) / float64(n-1)
	for k := 0; k < n; k++ {
		cu := iMin + float64(k)*step
		currents[k] = cu
		etas[k] = c.Eta(cu)
	}
	return currents, etas
}
