package vr

import (
	"fmt"

	"thermogater/internal/invariant"
)

// Network models a parallel network of N electrically identical component
// regulators dispersed across one Vdd-domain (Section 3.1). Active
// regulators current-share equally; gating modulates how many are active so
// that the network sustains operation at the per-phase peak efficiency over
// a wide load range (Fig. 2 and Fig. 5).
type Network struct {
	design Design
	n      int
	phase  Curve
}

// NewNetwork builds a network of n component regulators of the given design.
func NewNetwork(d Design, n int) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("vr: network needs at least one regulator, got %d", n)
	}
	if d.IMax < d.IPeak {
		return nil, fmt.Errorf("vr: design %s has IMax %v below IPeak %v", d.Name, d.IMax, d.IPeak)
	}
	c, err := d.Curve()
	if err != nil {
		return nil, err
	}
	return &Network{design: d, n: n, phase: c}, nil
}

// Design returns the component regulator design point.
func (nw *Network) Design() Design { return nw.design }

// Size returns the total component regulator count N.
func (nw *Network) Size() int { return nw.n }

// PhaseCurve returns the single-phase efficiency characteristic.
func (nw *Network) PhaseCurve() Curve { return nw.phase }

// CurveFor returns the composite efficiency characteristic when exactly
// `active` regulators share the load equally: fixed losses add up across
// active phases while conduction loss divides by the phase count, which is
// why each phase-count curve in Fig. 2 peaks at a different current.
func (nw *Network) CurveFor(active int) (Curve, error) {
	if active < 1 || active > nw.n {
		return Curve{}, fmt.Errorf("vr: active count %d outside [1, %d]", active, nw.n)
	}
	m := nw.phase.Loss
	return Curve{
		Vout: nw.phase.Vout,
		Loss: LossModel{
			Fixed:     m.Fixed * float64(active),
			Linear:    m.Linear,
			Quadratic: m.Quadratic / float64(active),
		},
	}, nil
}

// Legal reports whether `active` regulators can supply iout at all, i.e.
// whether the per-phase current stays within the design's current limit.
// This is factor (I) of Section 4: the instantaneous Iout demand restricts
// how aggressively gating may shut regulators down.
func (nw *Network) Legal(iout float64, active int) bool {
	if active < 1 || active > nw.n {
		return false
	}
	return float64(active)*nw.design.IMax >= iout
}

// NOn returns the number of active regulators required to supply iout at
// the peak conversion efficiency (Section 6.1): the integer count whose
// equal current share lands closest to the per-phase peak, subject to the
// per-phase current limit. The result is always in [1, N]; when even all N
// regulators cannot legally carry iout, N is returned (the network is
// overloaded and the caller may flag a demand violation via Legal).
func (nw *Network) NOn(iout float64) int {
	count := nw.nOn(iout, nw.n)
	if invariant.Enabled {
		invariant.CheckCount("vr.NOn active phases", count, 1, nw.n)
	}
	return count
}

// NOnAvailable is NOn restricted to a surviving subset of the network:
// with only `available` regulators in service (the rest failed off), it
// returns the peak-efficiency count within [1, available] and whether even
// all survivors cannot legally carry iout (demand spilled past the
// surviving IMax — the caller's demand-violation signal). With no
// survivors at all it returns (0, iout > 0).
func (nw *Network) NOnAvailable(iout float64, available int) (count int, overloaded bool) {
	if available <= 0 {
		return 0, iout > 0
	}
	if available > nw.n {
		available = nw.n
	}
	count = nw.nOn(iout, available)
	overloaded = !nw.Legal(iout, count)
	if invariant.Enabled {
		invariant.CheckCount("vr.NOnAvailable active phases", count, 1, available)
	}
	return count, overloaded
}

// nOn picks the peak-efficiency active count within [1, maxActive].
func (nw *Network) nOn(iout float64, maxActive int) int {
	if iout <= 0 {
		return 1
	}
	ideal := iout / nw.design.IPeak
	lo := int(ideal)
	best, bestLoss := 0, 0.0
	// The two candidates are lo and lo+1; iterating by offset avoids
	// materializing a slice on this hot path.
	for delta := 0; delta <= 1; delta++ {
		cand := lo + delta
		if cand < 1 {
			cand = 1
		}
		if cand > maxActive {
			cand = maxActive
		}
		if !nw.Legal(iout, cand) {
			continue
		}
		loss := nw.PlossAt(iout, cand)
		if best == 0 || loss < bestLoss {
			best, bestLoss = cand, loss
		}
	}
	if best == 0 {
		// Overloaded: turn everything on. Minimum count that is legal would
		// not exist, so maxActive is the best the network can do.
		for cand := lo; cand <= maxActive; cand++ {
			if cand >= 1 && nw.Legal(iout, cand) {
				return cand
			}
		}
		return maxActive
	}
	return best
}

// EtaAt returns the conversion efficiency when `active` regulators share
// iout equally. Illegal configurations yield zero.
func (nw *Network) EtaAt(iout float64, active int) float64 {
	c, err := nw.CurveFor(active)
	if err != nil {
		return 0
	}
	return c.Eta(iout)
}

// PlossAt returns the total conversion loss (W, dissipated as heat) when
// `active` regulators share iout equally. Active regulators burn their
// fixed loss even at zero load; gated regulators dissipate nothing.
func (nw *Network) PlossAt(iout float64, active int) float64 {
	c, err := nw.CurveFor(active)
	if err != nil {
		return 0
	}
	loss := c.Ploss(iout)
	if invariant.Enabled {
		invariant.CheckScalarFinite("vr.PlossAt loss", loss)
		if loss < 0 {
			invariant.Reportf("non-negative", -1, "vr.PlossAt(%v, %d) = %v < 0", iout, active, loss)
		}
	}
	return loss
}

// PerVRLoss returns the heat dissipated by each *active* regulator when
// `active` of them share iout equally.
func (nw *Network) PerVRLoss(iout float64, active int) float64 {
	if active < 1 {
		return 0
	}
	share := iout / float64(active)
	if share < 0 {
		share = 0
	}
	return nw.phase.Loss.LossAt(share)
}

// EffectiveEta returns the efficiency the gated network sustains at iout —
// the dotted "effective" trend line of Figs. 2 and 5, which stays close to
// the per-phase peak over the whole current range.
func (nw *Network) EffectiveEta(iout float64) float64 {
	return nw.EtaAt(iout, nw.NOn(iout))
}

// MaxCurrent returns the largest load the fully active network can supply.
func (nw *Network) MaxCurrent() float64 {
	return float64(nw.n) * nw.design.IMax
}
