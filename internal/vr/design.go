package vr

import "fmt"

// Topology enumerates the three integrated regulator families modern
// processors deploy (Section 3.1).
type Topology int

const (
	// Buck is an inductive switching converter (e.g. Intel FIVR).
	Buck Topology = iota
	// SwitchedCapacitor is a capacitive switching converter.
	SwitchedCapacitor
	// LDO is a linear low-dropout regulator (e.g. IBM POWER8
	// microregulators); its efficiency is bounded by Vout/Vin.
	LDO
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case Buck:
		return "buck"
	case SwitchedCapacitor:
		return "switched-capacitor"
	case LDO:
		return "ldo"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Design describes one component regulator design point.
type Design struct {
	// Name identifies the design, e.g. "FIVR" or "POWER8-LDO".
	Name string
	// Topology is the circuit family.
	Topology Topology
	// Vin and Vout are the input and output voltages.
	Vin, Vout float64
	// EtaPeak is the peak conversion efficiency (0..1).
	EtaPeak float64
	// IPeak is the per-phase output current at peak efficiency (A).
	IPeak float64
	// IMax is the per-phase current limit (A); supplying more than IMax
	// per active phase is not legal, which is what constrains gating
	// (Section 4, factor I).
	IMax float64
	// PoutPerAreaWmm2 is the reported output power density (W/mm²).
	PoutPerAreaWmm2 float64
	// ResponseTimeNS is the small-signal response time in nanoseconds;
	// LDOs respond faster than bucks, which Section 6.4 credits for their
	// slightly lower voltage noise.
	ResponseTimeNS float64
}

// Curve returns the single-phase efficiency characteristic of the design,
// calibrated so that η peaks at (IPeak, EtaPeak).
func (d Design) Curve() (Curve, error) {
	m, err := FitLossModel(d.Vout, d.IPeak, d.EtaPeak)
	if err != nil {
		return Curve{}, fmt.Errorf("design %s: %w", d.Name, err)
	}
	return Curve{Vout: d.Vout, Loss: m}, nil
}

// NominalVdd is the supply voltage of the modelled chip (Table 1).
const NominalVdd = 1.03

// FIVR returns the Intel Haswell-like fully integrated voltage regulator
// design point used to calibrate the evaluation (Section 5, Fig. 5): each
// component VR ("phase") supplies about 1.5A at ηpeak = 90%, with a reported
// output power density of 33.6W/mm².
func FIVR() Design {
	return Design{
		Name:            "FIVR",
		Topology:        Buck,
		Vin:             1.8,
		Vout:            NominalVdd,
		EtaPeak:         0.90,
		IPeak:           1.5,
		IMax:            2.0,
		PoutPerAreaWmm2: 33.6,
		ResponseTimeNS:  10,
	}
}

// POWER8LDO returns the IBM POWER8-like digital LDO microregulator design
// point (Section 6.4): ηpeak = 90.5%, 34.5W/mm², and a much faster response
// than the buck. For the paper's apples-to-apples comparison the LDO is
// calibrated to follow the same η-vs-Iout curves as the FIVR.
func POWER8LDO() Design {
	return Design{
		Name:            "POWER8-LDO",
		Topology:        LDO,
		Vin:             1.15,
		Vout:            NominalVdd,
		EtaPeak:         0.905,
		IPeak:           1.5,
		IMax:            2.0,
		PoutPerAreaWmm2: 34.5,
		ResponseTimeNS:  1,
	}
}

// LDOEta returns the idealised efficiency of a linear regulator at the
// given load: the Vout/Vin ceiling degraded by the quiescent current Iq.
// This is the native LDO characteristic (as opposed to the calibrated curve
// used for the apples-to-apples study).
func LDOEta(vin, vout, iq, i float64) float64 {
	if i <= 0 || vin <= 0 || vout <= 0 || vout > vin {
		return 0
	}
	return (vout / vin) * (i / (i + iq))
}

// SurveyEntry is one regulator from the ISSCC 2015 survey reproduced in
// Fig. 1. The citation indices match the paper's bibliography.
type SurveyEntry struct {
	Ref    string // bibliography tag, e.g. "[15]"
	Author string
	Design Design
	IMinA  float64 // plotted current range, amps
	IMaxA  float64
}

// ISSCC2015Survey returns the eight highly optimized regulator designs whose
// η-vs-Iout curves Fig. 1 plots. The (ηpeak, Ipeak) operating points are
// representative values taken from the cited ISSCC 2015 papers; the load
// ranges span 0.01mA to 10A as in the figure.
func ISSCC2015Survey() []SurveyEntry {
	mk := func(name string, top Topology, vout, etaPeak, iPeak float64) Design {
		return Design{
			Name: name, Topology: top, Vin: 1.8, Vout: vout,
			EtaPeak: etaPeak, IPeak: iPeak, IMax: 2 * iPeak,
		}
	}
	return []SurveyEntry{
		{Ref: "[15]", Author: "Kim",
			Design: mk("4-phase time-based buck", Buck, 1.8, 0.87, 0.3),
			IMinA:  0.003, IMaxA: 1.2},
		{Ref: "[29]", Author: "Park",
			Design: mk("analog-digital hybrid PWM buck", Buck, 1.0, 0.82, 0.001),
			IMinA:  0.000045, IMaxA: 0.004},
		{Ref: "[37]", Author: "Su",
			Design: mk("single-inductor multiple-output buck", Buck, 1.2, 0.90, 0.6),
			IMinA:  0.01, IMaxA: 2.4},
		{Ref: "[36]", Author: "Song",
			Design: mk("four-phase GaN converter", Buck, 1.0, 0.92, 2.1),
			IMinA:  0.05, IMaxA: 8.4},
		{Ref: "[31]", Author: "Schaef",
			Design: mk("3-phase resonant SC", SwitchedCapacitor, 1.0, 0.85, 0.8),
			IMinA:  0.01, IMaxA: 3.2},
		{Ref: "[1]", Author: "Andersen",
			Design: mk("feedforward SC, 10W", SwitchedCapacitor, 1.0, 0.86, 8),
			IMinA:  0.1, IMaxA: 10},
		{Ref: "[26]", Author: "Lu",
			Design: mk("123-phase converter-ring", SwitchedCapacitor, 1.0, 0.83, 0.5),
			IMinA:  0.005, IMaxA: 2},
		{Ref: "[14]", Author: "Jiang",
			Design: mk("2-3-phase SC", SwitchedCapacitor, 0.9, 0.80, 0.01),
			IMinA:  0.0001, IMaxA: 0.04},
	}
}

// IntelMultiPhase16 returns the 16-phase Intel buck regulator of Fig. 2,
// whose phase counts {2, 4, 8, 12, 16} give efficiency curves peaking at
// different load currents; the per-phase design point keeps the effective
// (gated) curve at ≈90% over 0-16A.
func IntelMultiPhase16() (Design, []int) {
	d := Design{
		Name:            "Intel 16-phase buck",
		Topology:        Buck,
		Vin:             1.8,
		Vout:            NominalVdd,
		EtaPeak:         0.90,
		IPeak:           1.0,
		IMax:            1.4,
		PoutPerAreaWmm2: 33.6,
		ResponseTimeNS:  10,
	}
	return d, []int{2, 4, 8, 12, 16}
}
