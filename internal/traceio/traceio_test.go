package traceio

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"thermogater/internal/sim"
)

func TestWriteEpochCSV(t *testing.T) {
	trace := []sim.EpochStats{
		{TimeMS: 0, TotalPowerW: 60.5, ActiveVRs: 42, MaxTempC: 70.1, GradientC: 12.3, MaxNoisePct: 8.8, PlossW: 7.7},
		{TimeMS: 1, TotalPowerW: 61.5, ActiveVRs: 44, MaxTempC: 70.2, GradientC: 12.4, MaxNoisePct: 8.9, PlossW: 7.8},
	}
	var buf bytes.Buffer
	if err := WriteEpochCSV(&buf, trace); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records, want header + 2", len(recs))
	}
	if recs[0][0] != "time_ms" || len(recs[0]) != 7 {
		t.Errorf("header %v", recs[0])
	}
	if recs[1][2] != "42" {
		t.Errorf("active VRs cell %q", recs[1][2])
	}
	if err := WriteEpochCSV(&buf, nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestWriteVRTraceCSV(t *testing.T) {
	trace := []sim.VRSample{
		{TimeMS: 0.1, TempC: 65.5, On: true},
		{TimeMS: 0.2, TempC: 64.9, On: false},
	}
	var buf bytes.Buffer
	if err := WriteVRTraceCSV(&buf, trace); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if recs[1][2] != "1" || recs[2][2] != "0" {
		t.Errorf("on/off cells %q %q", recs[1][2], recs[2][2])
	}
	if err := WriteVRTraceCSV(&buf, nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestWriteHeatMapCSV(t *testing.T) {
	grid := [][]float64{{60, 61}, {62, 63}}
	var buf bytes.Buffer
	if err := WriteHeatMapCSV(&buf, grid); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][1] != "63" {
		t.Errorf("records %v", recs)
	}
	if err := WriteHeatMapCSV(&buf, nil); err == nil {
		t.Error("empty grid accepted")
	}
	if err := WriteHeatMapCSV(&buf, [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged grid accepted")
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	res := &sim.Result{
		Policy:       "oracT",
		Benchmark:    "fft",
		MaxTempC:     71.25,
		MaxGradientC: 13.5,
		MaxNoisePct:  17.1,
		NoiseModeled: true,
		AvgEta:       0.8953,
		VROnFrac:     []float64{0.5, 1.0},
		Epochs:       123,
	}
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"Policy\": \"oracT\"") {
		t.Errorf("JSON missing policy: %s", buf.String()[:120])
	}
	back, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Policy != res.Policy || back.Epochs != res.Epochs ||
		math.Abs(back.MaxTempC-res.MaxTempC) > 1e-12 ||
		len(back.VROnFrac) != 2 {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if err := WriteResultJSON(&buf, nil); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := ReadResultJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
}
