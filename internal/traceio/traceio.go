// Package traceio serialises simulation results and traces to CSV and
// JSON so that runs can be analysed or plotted outside the harness (the
// figures in the paper are exactly such plots of epoch traces, regulator
// traces and heat maps).
package traceio

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"thermogater/internal/sim"
)

// WriteEpochCSV writes the per-epoch trace (Fig. 6 data) as CSV.
func WriteEpochCSV(w io.Writer, trace []sim.EpochStats) error {
	if len(trace) == 0 {
		return errors.New("traceio: empty epoch trace")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"time_ms", "total_power_w", "active_vrs", "max_temp_c",
		"gradient_c", "max_noise_pct", "ploss_w",
	}); err != nil {
		return err
	}
	for _, e := range trace {
		rec := []string{
			f(e.TimeMS), f(e.TotalPowerW), strconv.Itoa(e.ActiveVRs),
			f(e.MaxTempC), f(e.GradientC), f(e.MaxNoisePct), f(e.PlossW),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteVRTraceCSV writes the tracked regulator's trace (Fig. 8 data).
func WriteVRTraceCSV(w io.Writer, trace []sim.VRSample) error {
	if len(trace) == 0 {
		return errors.New("traceio: empty regulator trace")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_ms", "temp_c", "on"}); err != nil {
		return err
	}
	for _, s := range trace {
		on := "0"
		if s.On {
			on = "1"
		}
		if err := cw.Write([]string{f(s.TimeMS), f(s.TempC), on}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHeatMapCSV writes a temperature grid (Fig. 12 data) row by row.
func WriteHeatMapCSV(w io.Writer, grid [][]float64) error {
	if len(grid) == 0 {
		return errors.New("traceio: empty heat map")
	}
	cw := csv.NewWriter(w)
	width := len(grid[0])
	for y, row := range grid {
		if len(row) != width {
			return fmt.Errorf("traceio: ragged heat map at row %d", y)
		}
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = f(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteResultJSON writes the aggregated result as indented JSON. Large
// per-substep traces are included only when present in the result.
func WriteResultJSON(w io.Writer, res *sim.Result) error {
	if res == nil {
		return errors.New("traceio: nil result")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// ReadResultJSON parses a result previously written with WriteResultJSON.
func ReadResultJSON(r io.Reader) (*sim.Result, error) {
	var res sim.Result
	dec := json.NewDecoder(r)
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	return &res, nil
}

func f(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}
