package pdn

import (
	"math"
	"testing"

	"thermogater/internal/floorplan"
)

func TestMaskKey(t *testing.T) {
	cases := []struct {
		mask []bool
		want uint64
	}{
		{nil, 0},
		{[]bool{false, false}, 0},
		{[]bool{true}, 1},
		{[]bool{false, true, false, true}, 0b1010},
		{[]bool{true, true, true, true, true, true, true, true, true}, 0x1ff},
	}
	for _, c := range cases {
		if got := MaskKey(c.mask); got != c.want {
			t.Errorf("MaskKey(%v) = %#x, want %#x", c.mask, got, c.want)
		}
	}
}

func TestMaskLRUHitMissEviction(t *testing.T) {
	c := newMaskLRU[int](2)
	if _, ok := c.get(1); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put(1, 10)
	c.put(2, 20)
	if v, ok := c.get(1); !ok || v != 10 {
		t.Fatalf("get(1) = %v, %v", v, ok)
	}
	// 1 is now MRU; inserting 3 must evict 2.
	c.put(3, 30)
	if _, ok := c.get(2); ok {
		t.Fatal("LRU entry 2 not evicted")
	}
	if v, ok := c.get(3); !ok || v != 30 {
		t.Fatalf("get(3) = %v, %v", v, ok)
	}
	if v, ok := c.get(1); !ok || v != 10 {
		t.Fatalf("get(1) after eviction = %v, %v", v, ok)
	}
	s := c.stats
	if s.Hits != 3 || s.Misses != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 3 hits, 2 misses, 1 eviction", s)
	}
	c.flush()
	if c.size() != 0 {
		t.Fatalf("flush left %d entries", c.size())
	}
	if c.stats != s {
		t.Fatalf("flush reset the cumulative stats: %+v", c.stats)
	}
}

// TestMaskLRUEvictIfFullRecycles: the pre-eviction hook must hand back
// the LRU entry's value exactly when the cache is at capacity, count it
// as an eviction, and leave room so the follow-up put evicts nothing —
// the contract effFor relies on to recycle slice backings in steady
// state instead of allocating per miss.
func TestMaskLRUEvictIfFullRecycles(t *testing.T) {
	c := newMaskLRU[[]float64](2)
	if v, ok := c.evictIfFull(); ok || v != nil {
		t.Fatalf("evictIfFull on a non-full cache = %v, %v", v, ok)
	}
	a, b := []float64{1}, []float64{2}
	c.put(1, a)
	c.put(2, b)
	got, ok := c.evictIfFull()
	if !ok || &got[0] != &a[0] {
		t.Fatalf("evictIfFull did not return the LRU value's backing (ok=%v)", ok)
	}
	if c.size() != 1 {
		t.Fatalf("size after evictIfFull = %d, want 1", c.size())
	}
	evBefore := c.stats.Evictions
	c.put(3, got)
	if c.stats.Evictions != evBefore {
		t.Fatal("put after evictIfFull evicted again")
	}
	if v, ok := c.get(2); !ok || &v[0] != &b[0] {
		t.Fatal("surviving entry 2 disturbed by the recycle cycle")
	}
	if v, ok := c.get(3); !ok || &v[0] != &a[0] {
		t.Fatal("recycled backing not installed for the new key")
	}
	var nilCache *maskLRU[[]float64]
	if _, ok := nilCache.evictIfFull(); ok {
		t.Fatal("nil cache reported an eviction")
	}
}

// TestEffCacheHitsAreBitIdentical: cached noise profiles must match the
// uncached first computation exactly, bit for bit.
func TestEffCacheHitsAreBitIdentical(t *testing.T) {
	chip := floorplan.MustPOWER8()
	n, err := NewNetwork(chip, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur := loadedCurrents(chip)
	mask := n.AllOnMask(0)
	mask[2] = false

	first, err := n.SteadyNoise(0, cur, mask)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		again, err := n.SteadyNoise(0, cur, mask)
		if err != nil {
			t.Fatal(err)
		}
		if again.MaxPct != first.MaxPct || again.MaxBlock != first.MaxBlock {
			t.Fatalf("cached max %v@%d differs from fresh %v@%d",
				again.MaxPct, again.MaxBlock, first.MaxPct, first.MaxBlock)
		}
		for bi := range first.PerBlockPct {
			if again.PerBlockPct[bi] != first.PerBlockPct[bi] {
				t.Fatalf("block %d: cached %v differs from fresh %v",
					bi, again.PerBlockPct[bi], first.PerBlockPct[bi])
			}
		}
	}
	s := n.CacheStats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1 (one mask)", s.Misses)
	}
	if s.Hits != 3 {
		t.Errorf("hits = %d, want 3", s.Hits)
	}
}

// TestEffCacheEviction drives more masks through one domain than the
// cache holds and checks the counters notice.
func TestEffCacheEviction(t *testing.T) {
	chip := floorplan.MustPOWER8()
	cfg := DefaultConfig()
	cfg.MaskCacheSize = 2
	n, err := NewNetwork(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cur := loadedCurrents(chip)
	nVR := len(chip.Domains[0].Regulators)
	for off := 0; off < 4; off++ {
		mask := make([]bool, nVR)
		for i := range mask {
			mask[i] = i != off
		}
		if _, err := n.SteadyNoise(0, cur, mask); err != nil {
			t.Fatal(err)
		}
	}
	s := n.CacheStats()
	if s.Misses != 4 {
		t.Errorf("misses = %d, want 4 (all distinct masks)", s.Misses)
	}
	if s.Evictions != 2 {
		t.Errorf("evictions = %d, want 2 (capacity 2, 4 masks)", s.Evictions)
	}
}

// TestRebuildPathsFlushesCache: moving regulators must invalidate every
// cached resistance — a stale entry would silently misprice the noise.
func TestRebuildPathsFlushesCache(t *testing.T) {
	chip := floorplan.MustPOWER8()
	n, err := NewNetwork(chip, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur := loadedCurrents(chip)
	mask := n.AllOnMask(0)
	if _, err := n.SteadyNoise(0, cur, mask); err != nil {
		t.Fatal(err)
	}
	before := n.CacheStats()
	n.rebuildPaths()
	if _, err := n.SteadyNoise(0, cur, mask); err != nil {
		t.Fatal(err)
	}
	after := n.CacheStats()
	if after.Misses != before.Misses+1 {
		t.Errorf("same mask hit after rebuildPaths (misses %d -> %d); stale resistances survived",
			before.Misses, after.Misses)
	}
}

// TestSteadyNoiseIntoReusesBuffer: the Into variant must not allocate a
// fresh profile when handed one with capacity, and must equal SteadyNoise.
func TestSteadyNoiseIntoReusesBuffer(t *testing.T) {
	chip := floorplan.MustPOWER8()
	n, err := NewNetwork(chip, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur := loadedCurrents(chip)
	mask := n.AllOnMask(0)
	want, err := n.SteadyNoise(0, cur, mask)
	if err != nil {
		t.Fatal(err)
	}
	var out DomainNoise
	if err := n.SteadyNoiseInto(0, cur, mask, &out); err != nil {
		t.Fatal(err)
	}
	buf := &out.PerBlockPct[0]
	if err := n.SteadyNoiseInto(0, cur, mask, &out); err != nil {
		t.Fatal(err)
	}
	if &out.PerBlockPct[0] != buf {
		t.Error("second SteadyNoiseInto reallocated the per-block buffer")
	}
	if out.MaxPct != want.MaxPct || out.MaxBlock != want.MaxBlock {
		t.Errorf("Into gave %v@%d, SteadyNoise gave %v@%d",
			out.MaxPct, out.MaxBlock, want.MaxPct, want.MaxBlock)
	}
	for bi := range want.PerBlockPct {
		if out.PerBlockPct[bi] != want.PerBlockPct[bi] {
			t.Fatalf("block %d: Into %v vs SteadyNoise %v", bi, out.PerBlockPct[bi], want.PerBlockPct[bi])
		}
	}
}

// TestMeshDirectMatchesSOR: the cached Cholesky solve must agree with
// the iterative reference on every node, within the SOR tolerance.
func TestMeshDirectMatchesSOR(t *testing.T) {
	chip := floorplan.MustPOWER8()
	cur := loadedCurrents(chip)
	for _, domain := range []int{0, chip.L3Domains()[0]} {
		m, err := NewMesh(chip, domain, DefaultMeshConfig())
		if err != nil {
			t.Fatal(err)
		}
		nVR := len(chip.Domains[domain].Regulators)
		masks := [][]bool{make([]bool, nVR), make([]bool, nVR)}
		for i := range masks[0] {
			masks[0][i] = true
		}
		masks[1][0] = true
		for _, mask := range masks {
			direct, err := m.Solve(cur, mask)
			if err != nil {
				t.Fatal(err)
			}
			sor, err := m.SolveSOR(cur, mask)
			if err != nil {
				t.Fatal(err)
			}
			for i := range direct.DropV {
				// SOR stops when its per-sweep update falls below Tol;
				// the remaining distance to the true (direct) solution is
				// that delta amplified by the spectral radius — observed
				// around 3e-5 V on the core domain. A wrong matrix or a
				// broken substitution is off by whole millivolts.
				if d := math.Abs(direct.DropV[i] - sor.DropV[i]); d > 5e-4 {
					t.Fatalf("domain %d node %d: direct %v vs SOR %v (|Δ|=%v)",
						domain, i, direct.DropV[i], sor.DropV[i], d)
				}
			}
			if math.Abs(direct.SupplyA-sor.SupplyA) > 5e-3*math.Abs(sor.SupplyA)+1e-9 {
				t.Errorf("domain %d: supply %vA direct vs %vA SOR", domain, direct.SupplyA, sor.SupplyA)
			}
		}
	}
}

// TestMeshFactorCache: repeated solves with one mask factor once.
func TestMeshFactorCache(t *testing.T) {
	chip := floorplan.MustPOWER8()
	cfg := DefaultMeshConfig()
	cfg.FactorCacheSize = 1
	m, err := NewMesh(chip, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cur := loadedCurrents(chip)
	nVR := len(chip.Domains[0].Regulators)
	all := make([]bool, nVR)
	for i := range all {
		all[i] = true
	}
	one := make([]bool, nVR)
	one[0] = true

	for rep := 0; rep < 3; rep++ {
		if _, err := m.Solve(cur, all); err != nil {
			t.Fatal(err)
		}
	}
	s := m.CacheStats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Errorf("stats after 3 same-mask solves = %+v, want 1 miss, 2 hits", s)
	}
	// A second mask evicts the first (capacity 1); returning to the
	// first mask must refactor.
	if _, err := m.Solve(cur, one); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(cur, all); err != nil {
		t.Fatal(err)
	}
	s = m.CacheStats()
	if s.Misses != 3 || s.Evictions != 2 {
		t.Errorf("stats after mask churn = %+v, want 3 misses, 2 evictions", s)
	}
}

// TestCacheDisabled: with MaskCacheSize/FactorCacheSize = CacheDisabled
// every solve recomputes, the counters stay at zero, and the results are
// bit-identical to the cached path — the property the paired benchmark
// control depends on.
func TestCacheDisabled(t *testing.T) {
	chip := floorplan.MustPOWER8()
	cur := loadedCurrents(chip)

	cached, err := NewNetwork(chip, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaskCacheSize = CacheDisabled
	bare, err := NewNetwork(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mask := bare.AllOnMask(0)
	mask[1] = false
	want, err := cached.SteadyNoise(0, cur, mask)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		got, err := bare.SteadyNoise(0, cur, mask)
		if err != nil {
			t.Fatal(err)
		}
		if got.MaxPct != want.MaxPct || got.MaxBlock != want.MaxBlock {
			t.Fatalf("uncached max %v@%d differs from cached %v@%d",
				got.MaxPct, got.MaxBlock, want.MaxPct, want.MaxBlock)
		}
		for bi := range want.PerBlockPct {
			if got.PerBlockPct[bi] != want.PerBlockPct[bi] {
				t.Fatalf("block %d: uncached %v vs cached %v", bi, got.PerBlockPct[bi], want.PerBlockPct[bi])
			}
		}
	}
	if s := bare.CacheStats(); s != (CacheStats{}) {
		t.Errorf("disabled network cache counted %+v", s)
	}

	mcfg := DefaultMeshConfig()
	mcfg.FactorCacheSize = CacheDisabled
	m, err := NewMesh(chip, 0, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewMesh(chip, 0, DefaultMeshConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantSol, err := ref.Solve(cur, mask)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		sol, err := m.Solve(cur, mask)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantSol.DropV {
			if sol.DropV[i] != wantSol.DropV[i] {
				t.Fatalf("node %d: uncached drop %v vs cached %v", i, sol.DropV[i], wantSol.DropV[i])
			}
		}
	}
	if s := m.CacheStats(); s != (CacheStats{}) {
		t.Errorf("disabled mesh cache counted %+v", s)
	}
}
