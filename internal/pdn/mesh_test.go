package pdn

import (
	"math"
	"testing"

	"thermogater/internal/floorplan"
)

func newMesh(t *testing.T, domain int) (*Mesh, *floorplan.Chip) {
	t.Helper()
	chip := floorplan.MustPOWER8()
	m, err := NewMesh(chip, domain, DefaultMeshConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, chip
}

func TestNewMeshValidation(t *testing.T) {
	chip := floorplan.MustPOWER8()
	if _, err := NewMesh(nil, 0, DefaultMeshConfig()); err == nil {
		t.Error("nil chip accepted")
	}
	if _, err := NewMesh(chip, -1, DefaultMeshConfig()); err == nil {
		t.Error("negative domain accepted")
	}
	if _, err := NewMesh(chip, 99, DefaultMeshConfig()); err == nil {
		t.Error("out-of-range domain accepted")
	}
	bad := DefaultMeshConfig()
	bad.PitchMM = 0
	if _, err := NewMesh(chip, 0, bad); err == nil {
		t.Error("zero pitch accepted")
	}
	bad = DefaultMeshConfig()
	bad.Omega = 2
	if _, err := NewMesh(chip, 0, bad); err == nil {
		t.Error("omega=2 accepted")
	}
	bad = DefaultMeshConfig()
	bad.Tol = 0
	if _, err := NewMesh(chip, 0, bad); err == nil {
		t.Error("zero tolerance accepted")
	}
}

func TestMeshGridCoversDomain(t *testing.T) {
	m, chip := newMesh(t, 0)
	nx, ny := m.Size()
	d := chip.Domains[0]
	wantNx := int(math.Ceil(d.Bounds.W/DefaultMeshConfig().PitchMM)) + 1
	if nx != wantNx {
		t.Errorf("nx = %d, want %d", nx, wantNx)
	}
	if ny < 2 || nx < 2 {
		t.Errorf("degenerate grid %dx%d", nx, ny)
	}
}

func TestMeshSolveCurrentConservation(t *testing.T) {
	m, chip := newMesh(t, 0)
	cur := loadedCurrents(chip)
	d := chip.Domains[0]
	active := make([]bool, len(d.Regulators))
	for i := range active {
		active[i] = true
	}
	sol, err := m.Solve(cur, active)
	if err != nil {
		t.Fatal(err)
	}
	var totalLoad float64
	for _, bid := range d.Blocks {
		totalLoad += cur[bid]
	}
	if math.Abs(sol.SupplyA-totalLoad) > 0.01*totalLoad {
		t.Errorf("supplied %vA for %vA load (Kirchhoff violated)", sol.SupplyA, totalLoad)
	}
}

func TestMeshGatingRaisesDrop(t *testing.T) {
	m, chip := newMesh(t, 0)
	cur := loadedCurrents(chip)
	nVR := len(chip.Domains[0].Regulators)
	all := make([]bool, nVR)
	for i := range all {
		all[i] = true
	}
	allOn, err := m.Solve(cur, all)
	if err != nil {
		t.Fatal(err)
	}
	// Gate regulators one by one: max drop must be non-decreasing.
	prev := allOn.MaxPct
	mask := append([]bool(nil), all...)
	for i := 0; i < nVR-1; i++ {
		mask[i] = false
		sol, err := m.Solve(cur, mask)
		if err != nil {
			t.Fatal(err)
		}
		if sol.MaxPct < prev-1e-9 {
			t.Fatalf("gating regulator %d reduced max drop: %v -> %v", i, prev, sol.MaxPct)
		}
		prev = sol.MaxPct
	}
}

func TestMeshDropScalesLinearly(t *testing.T) {
	m, chip := newMesh(t, 0)
	cur := loadedCurrents(chip)
	half := make([]float64, len(cur))
	for i := range cur {
		half[i] = cur[i] / 2
	}
	active := make([]bool, len(chip.Domains[0].Regulators))
	for i := range active {
		active[i] = true
	}
	full, err := m.Solve(cur, active)
	if err != nil {
		t.Fatal(err)
	}
	halfSol, err := m.Solve(half, active)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.MaxPct-2*halfSol.MaxPct) > 0.02*full.MaxPct {
		t.Errorf("drop not linear in current: %v vs 2×%v", full.MaxPct, halfSol.MaxPct)
	}
}

func TestMeshSolveValidation(t *testing.T) {
	m, chip := newMesh(t, 0)
	cur := loadedCurrents(chip)
	nVR := len(chip.Domains[0].Regulators)
	if _, err := m.Solve(cur[:3], make([]bool, nVR)); err == nil {
		t.Error("short current vector accepted")
	}
	if _, err := m.Solve(cur, make([]bool, 2)); err == nil {
		t.Error("wrong mask size accepted")
	}
	if _, err := m.Solve(cur, make([]bool, nVR)); err == nil {
		t.Error("all-off mask accepted")
	}
}

// TestMeshValidatesPathModel is the SPICE-validation analogue: the fast
// path-resistance model used in the control loop must agree with the full
// nodal solve on (a) which gating configuration is noisier and (b) the
// rough magnitude of the worst drop.
func TestMeshValidatesPathModel(t *testing.T) {
	chip := floorplan.MustPOWER8()
	grid, err := NewNetwork(chip, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMesh(chip, 0, DefaultMeshConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur := loadedCurrents(chip)
	nVR := len(chip.Domains[0].Regulators)

	type config struct {
		name string
		mask []bool
	}
	all := make([]bool, nVR)
	for i := range all {
		all[i] = true
	}
	memOnly := make([]bool, nVR)
	logic, memory, err := chip.LogicSideRegulators(0)
	if err != nil {
		t.Fatal(err)
	}
	idxOf := func(rid int) int {
		for i, r := range chip.Domains[0].Regulators {
			if r == rid {
				return i
			}
		}
		return -1
	}
	for _, rid := range memory {
		memOnly[idxOf(rid)] = true
	}
	logicOnly := make([]bool, nVR)
	for i, rid := range logic {
		if i >= 3 {
			break
		}
		logicOnly[idxOf(rid)] = true
	}
	configs := []config{{"all-on", all}, {"memory-side", memOnly}, {"logic-side", logicOnly}}

	var pathPct, meshPct []float64
	for _, c := range configs {
		dn, err := grid.SteadyNoise(0, cur, c.mask)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := m.Solve(cur, c.mask)
		if err != nil {
			t.Fatal(err)
		}
		pathPct = append(pathPct, dn.MaxPct)
		meshPct = append(meshPct, sol.MaxPct)
	}
	// (a) Same ordering across configurations.
	for i := 0; i < len(configs); i++ {
		for j := i + 1; j < len(configs); j++ {
			if (pathPct[i] < pathPct[j]) != (meshPct[i] < meshPct[j]) {
				t.Errorf("models disagree on ordering %s vs %s: path %v/%v mesh %v/%v",
					configs[i].name, configs[j].name, pathPct[i], pathPct[j], meshPct[i], meshPct[j])
			}
		}
	}
	// (b) Same magnitude within a factor of two (the path model lumps the
	// shared-grid term differently).
	for i := range configs {
		ratio := pathPct[i] / meshPct[i]
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: path %v%% vs mesh %v%% (ratio %v)", configs[i].name, pathPct[i], meshPct[i], ratio)
		}
	}
}

func TestMeshL3Domain(t *testing.T) {
	// L3 domains (3 regulators, wide flat banks) must solve too.
	chip := floorplan.MustPOWER8()
	domID := chip.L3Domains()[0]
	m, err := NewMesh(chip, domID, DefaultMeshConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur := loadedCurrents(chip)
	active := []bool{true, false, false}
	sol, err := m.Solve(cur, active)
	if err != nil {
		t.Fatal(err)
	}
	if sol.MaxPct <= 0 {
		t.Error("no drop under load")
	}
	if sol.Iterations != 0 {
		t.Errorf("direct solver reported %d SOR iterations, want 0", sol.Iterations)
	}
	sor, err := m.SolveSOR(cur, active)
	if err != nil {
		t.Fatal(err)
	}
	if sor.Iterations < 2 {
		t.Error("suspiciously fast SOR convergence")
	}
}

// TestMeshPerBlockRankCorrelation: both PDN models must agree on which
// blocks are the noisy ones, not just on the maximum.
func TestMeshPerBlockRankCorrelation(t *testing.T) {
	chip := floorplan.MustPOWER8()
	grid, err := NewNetwork(chip, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMesh(chip, 0, DefaultMeshConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur := loadedCurrents(chip)
	nVR := len(chip.Domains[0].Regulators)
	mask := make([]bool, nVR)
	mask[0], mask[4], mask[8] = true, true, true

	dn, err := grid.SteadyNoise(0, cur, mask)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(cur, mask)
	if err != nil {
		t.Fatal(err)
	}
	n := len(dn.PerBlockPct)
	agree := 0
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs++
			if (dn.PerBlockPct[i] < dn.PerBlockPct[j]) == (sol.PerBlockPct[i] < sol.PerBlockPct[j]) {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(pairs); frac < 0.7 {
		t.Errorf("models agree on only %.0f%% of block orderings", frac*100)
	}
}
