// Package pdn models the on-chip power delivery network and the voltage
// noise that regulator gating induces, standing in for the extended
// VoltSpot simulator of the paper's toolchain. Each Vdd-domain is a
// resistive grid fed by its active component regulators: the steady-state
// IR drop seen by a block grows with its current and with the distance to
// the nearest *active* regulators (the effective impedance rises when
// thermally-aware gating turns off the closest regulator — Section 4's
// voltage-noise hazard). Cycle-level transients add di/dt burst excursions
// whose magnitude depends on the regulator's response time, which is what
// separates the LDO from the buck design in Fig. 15.
package pdn

import (
	"errors"
	"math"
)

// EmergencyThresholdPct is the voltage emergency threshold: maximum noise
// exceeding 10% of nominal Vdd (Section 6.2.4, the horizontal line in
// Fig. 11).
const EmergencyThresholdPct = 10.0

// Config collects the electrical constants of the grid model.
type Config struct {
	// R0Ohm is the per-regulator local path resistance (regulator output
	// impedance plus its via stack into the local grid).
	R0Ohm float64
	// RhoOhmPerMM is the local power grid's effective sheet resistance
	// seen along the path from a regulator to a load, per mm of distance.
	RhoOhmPerMM float64
	// RSharedOhm is the shared domain-level input impedance: the portion
	// of the drop proportional to the whole domain's current.
	RSharedOhm float64
	// ZTransientOhm scales the additional impedance a di/dt burst sees
	// before the regulators respond.
	ZTransientOhm float64
	// ResponseTimeNS is the regulator small-signal response time; a faster
	// regulator (LDO ≈ 1ns vs buck ≈ 10ns) cancels more of the transient.
	ResponseTimeNS float64
	// VddV is the nominal supply voltage noise is reported against.
	VddV float64
	// ServiceAreaMM2 is the die area one regulator's local grid serves. A
	// block larger than this draws its current through proportionally many
	// parallel grid regions, so only the fraction ServiceArea/blockArea of
	// its current stresses any single path; without this, a 26mm² L3 bank
	// would see the IR drop of its whole current concentrated at a point.
	ServiceAreaMM2 float64
	// RippleSigma is the per-cycle AR(1) relative current ripple used in
	// transient windows.
	RippleSigma float64
	// RipplePhi is the AR(1) coefficient of the cycle-level ripple.
	RipplePhi float64
	// BurstRiseCycles and BurstDecayCycles shape a burst's current
	// envelope inside transient windows.
	BurstRiseCycles, BurstDecayCycles int
	// MaskCacheSize bounds the per-domain LRU of per-mask effective
	// resistances (see cache.go). Zero selects the default; a domain
	// with R regulators has at most 2^R masks, so the default covers
	// most of the masks a governor ever revisits. CacheDisabled turns
	// the cache off entirely — every solve recomputes the effective
	// resistances, which benchmarks use as the paired uncached control.
	MaskCacheSize int
}

// CacheDisabled as a cache-size knob disables that cache: solves
// recompute from the topology every time. Results are bit-identical to
// the cached path (both sum regulators in ascending index order); only
// the work repeats.
const CacheDisabled = -1

// defaultMaskCacheSize is the per-domain cache capacity used when
// Config.MaskCacheSize is zero.
const defaultMaskCacheSize = 32

// maskCacheSize resolves the configured capacity, applying the default.
func (c Config) maskCacheSize() int {
	if c.MaskCacheSize == 0 {
		return defaultMaskCacheSize
	}
	return c.MaskCacheSize
}

// DefaultConfig returns the grid calibrated against the paper's all-on
// noise profile (worst-case maximum ≈13% of nominal Vdd, Fig. 11) for the
// FIVR-like design.
func DefaultConfig() Config {
	return Config{
		R0Ohm:            0.028,
		RhoOhmPerMM:      0.024,
		RSharedOhm:       0.0016,
		ZTransientOhm:    0.008,
		ResponseTimeNS:   10,
		VddV:             1.03,
		ServiceAreaMM2:   4.0,
		RippleSigma:      0.04,
		RipplePhi:        0.7,
		BurstRiseCycles:  8,
		BurstDecayCycles: 24,
	}
}

// LDOConfig returns the grid configured for the POWER8-like digital LDO
// microregulators of Section 6.4: identical grid, faster response.
func LDOConfig() Config {
	c := DefaultConfig()
	c.ResponseTimeNS = 1
	return c
}

// Validate rejects non-physical configurations. Bounds are phrased as
// !(inside) so NaN — for which every comparison is false — is rejected
// rather than propagated into every downstream voltage figure.
func (c Config) Validate() error {
	if !(c.R0Ohm > 0) || !(c.RhoOhmPerMM > 0) || !(c.RSharedOhm >= 0) ||
		math.IsInf(c.R0Ohm, 1) || math.IsInf(c.RhoOhmPerMM, 1) || math.IsInf(c.RSharedOhm, 1) {
		return errors.New("pdn: resistances must be positive and finite")
	}
	if !(c.ZTransientOhm >= 0) || !(c.ResponseTimeNS >= 0) ||
		math.IsInf(c.ZTransientOhm, 1) || math.IsInf(c.ResponseTimeNS, 1) {
		return errors.New("pdn: transient parameters must be non-negative and finite")
	}
	if !(c.ServiceAreaMM2 > 0) || math.IsInf(c.ServiceAreaMM2, 1) {
		return errors.New("pdn: service area must be positive and finite")
	}
	if !(c.VddV > 0) || math.IsInf(c.VddV, 1) {
		return errors.New("pdn: Vdd must be positive and finite")
	}
	if !(c.RippleSigma >= 0) || !(c.RipplePhi >= 0 && c.RipplePhi < 1) || math.IsInf(c.RippleSigma, 1) {
		return errors.New("pdn: ripple parameters out of range")
	}
	if c.BurstRiseCycles <= 0 || c.BurstDecayCycles <= 0 {
		return errors.New("pdn: burst envelope cycles must be positive")
	}
	if c.MaskCacheSize < CacheDisabled {
		return errors.New("pdn: mask cache size must be non-negative (or CacheDisabled)")
	}
	return nil
}

// TransientFactor returns the fraction of the transient impedance a burst
// of the given duration actually sees: a regulator with response time τ
// cancels the excursion once it reacts, so slower regulators (larger τ
// relative to the burst) let more of the surge through.
func (c Config) TransientFactor(burstCycles int, clockGHz float64) float64 {
	if burstCycles <= 0 || clockGHz <= 0 {
		return 0
	}
	burstNS := float64(burstCycles) / clockGHz
	return c.ResponseTimeNS / (c.ResponseTimeNS + burstNS)
}
