package pdn

import (
	"math"
	"testing"

	"thermogater/internal/floorplan"
	"thermogater/internal/workload"
)

// FuzzPDNTransient exercises the steady-state IR-drop profile, the di/dt
// burst peak and the cycle-level transient window under randomized current
// maps, masks and burst shapes inside the physical envelope (per-block
// current at most 1A — the per-domain share of the 150W TDP at Vdd — so
// the closed-loop droop bound genuinely applies to SteadyNoise and
// BurstPeakPct). Run it with -tags tgsan so the sanitizer acts as the
// oracle; the default build still asserts finiteness explicitly.
func FuzzPDNTransient(f *testing.F) {
	f.Add(uint64(1), 0.8, 0.8, 100, 12, 600, 2.5)
	f.Add(uint64(9), 1.0, 1.5, 0, 1, 50, 4.0)
	f.Add(uint64(33), 0.1, 0.0, 900, 200, 1000, 0.5)
	f.Fuzz(func(t *testing.T, seed uint64, baseA, amp float64, startCycle, burstCycles, cycles int, clockGHz float64) {
		if math.IsNaN(baseA) || baseA <= 0 || baseA > 1 {
			t.Skip("per-block current outside (0, 1A] envelope")
		}
		if math.IsNaN(amp) || amp < 0 || amp > 1.5 {
			t.Skip("surge fraction outside [0, 1.5] envelope")
		}
		if cycles <= 0 || cycles > 2000 || burstCycles <= 0 || burstCycles > 200 {
			t.Skip("window or burst length outside envelope")
		}
		if startCycle < 0 || startCycle >= cycles {
			t.Skip("burst onset outside the window")
		}
		if math.IsNaN(clockGHz) || clockGHz <= 0 || clockGHz > 5 {
			t.Skip("clock outside (0, 5GHz] envelope")
		}

		chip := floorplan.MustPOWER8()
		n, err := NewNetwork(chip, DefaultConfig())
		if err != nil {
			t.Fatalf("NewNetwork: %v", err)
		}

		rng := workload.NewRNG(seed)
		domain := rng.Intn(len(chip.Domains))
		d := &chip.Domains[domain]
		blockCurrent := make([]float64, len(chip.Blocks))
		for _, bid := range d.Blocks {
			blockCurrent[bid] = rng.Float64() * baseA
		}
		active := make([]bool, len(d.Regulators))
		for i := range active {
			active[i] = rng.Float64() < 0.5
		}
		active[rng.Intn(len(active))] = true
		bi := rng.Intn(len(d.Blocks))

		dn, err := n.SteadyNoise(domain, blockCurrent, active)
		if err != nil {
			t.Fatalf("SteadyNoise: %v", err)
		}
		if math.IsNaN(dn.MaxPct) || dn.MaxPct < 0 {
			t.Fatalf("SteadyNoise MaxPct = %v", dn.MaxPct)
		}

		surge := amp * blockCurrent[d.Blocks[bi]]
		peak := n.BurstPeakPct(domain, bi, dn.PerBlockPct[bi], surge, active, burstCycles, clockGHz)
		if math.IsNaN(peak) || peak < dn.PerBlockPct[bi] {
			t.Fatalf("BurstPeakPct = %v below steady %v", peak, dn.PerBlockPct[bi])
		}

		bursts := []Burst{{StartCycle: startCycle, Cycles: burstCycles, Amp: amp}}
		out, err := n.TransientWindow(domain, bi, blockCurrent, active, bursts, cycles, clockGHz, seed)
		if err != nil {
			t.Fatalf("TransientWindow: %v", err)
		}
		for c, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("TransientWindow cycle %d = %v", c, v)
			}
		}
	})
}
