package pdn

// This file holds the per-mask caching layer shared by the two PDN
// solvers. Both the fast path-resistance model (Network) and the nodal
// mesh validator (Mesh) do work whose expensive part depends only on the
// active-regulator mask, not on the per-block currents: the effective
// resistance each block sees, and the Cholesky factorization of the
// nodal matrix. The governor changes a domain's mask only on decision
// epochs, while SteadyNoise runs 160-320 times per epoch, so keying that
// work by mask and caching a handful of entries turns almost every solve
// into a lookup plus a cheap linear pass.
//
// Invalidation rule: a cached entry is valid as long as the underlying
// topology — path resistances for Network, grid geometry and R0 for
// Mesh — is unchanged. The only mutation point is Network.rebuildPaths
// (the placement optimiser); it flushes every domain cache. Mesh
// geometry is immutable after NewMesh, so its cache never invalidates.
//
// Concurrency rule: caches are per-domain and unsynchronized. Parallel
// callers must partition work by domain (as the simulator's pdn fan-out
// does), never by (step, domain) pairs.

// MaskKey packs an active-regulator mask into a bitset key: bit ri is
// set when active[ri] is true. Domains carry at most 9 regulators, so
// any realistic mask fits a uint64; masks longer than 64 entries fold
// onto the low bits, which only costs cache precision, not correctness.
func MaskKey(active []bool) uint64 {
	var key uint64
	for ri, a := range active {
		if a {
			key |= 1 << (uint(ri) % 64)
		}
	}
	return key
}

// CacheStats counts lookups against a per-mask cache. Counters are
// cumulative: flushing a cache's entries does not reset them, so the
// telemetry layer can emit monotone deltas.
//
// Registry interaction (audited): CacheStats itself holds plain uint64
// fields and registers nothing — the telemetry counters fed from it
// ("pdn_mask_cache_total") are registered by the simulator's
// instruments, and telemetry.Registry.Counter is get-or-create keyed by
// name+labels, so any number of domains, meshes, or whole runners
// sharing one registry re-resolve the same counter rather than
// colliding; there is no duplicate-name panic path. Per-domain stats
// summed by Network.CacheStats therefore aggregate cleanly into one
// shared counter (see sim's TestSharedRegistryCacheCounters).
type CacheStats struct {
	Hits, Misses, Evictions uint64
}

// add accumulates s into the receiver.
func (c *CacheStats) add(s CacheStats) {
	c.Hits += s.Hits
	c.Misses += s.Misses
	c.Evictions += s.Evictions
}

// maskLRU is a tiny LRU map from mask key to a cached value. Capacities
// are single-digit to low-double-digit — a governor cycles through a
// handful of masks per domain — so the MRU order lives in a slice and
// lookups are linear scans; that keeps eviction order fully
// deterministic (no map iteration anywhere).
//
// A nil *maskLRU is the disabled cache (CacheDisabled): get always
// misses without counting, put and flush are no-ops. Benchmarks use it
// to measure the uncached cost on otherwise identical code paths.
type maskLRU[V any] struct {
	limit int
	keys  []uint64 // keys[0] is most recently used
	vals  []V
	stats CacheStats
}

func newMaskLRU[V any](limit int) *maskLRU[V] {
	if limit < 1 {
		limit = 1
	}
	return &maskLRU[V]{
		limit: limit,
		keys:  make([]uint64, 0, limit),
		vals:  make([]V, 0, limit),
	}
}

// get returns the cached value and moves it to the MRU position.
func (c *maskLRU[V]) get(key uint64) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	for i, k := range c.keys {
		if k == key {
			c.stats.Hits++
			v := c.vals[i]
			if i > 0 {
				copy(c.keys[1:i+1], c.keys[:i])
				copy(c.vals[1:i+1], c.vals[:i])
				c.keys[0], c.vals[0] = key, v
			}
			return v, true
		}
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// evictIfFull removes and returns the LRU entry's value when the cache
// is at capacity, so a caller about to insert can recycle the evicted
// value's backing storage instead of allocating. After it returns true
// the follow-up put is guaranteed not to evict.
func (c *maskLRU[V]) evictIfFull() (V, bool) {
	var zero V
	if c == nil || len(c.keys) < c.limit {
		return zero, false
	}
	last := len(c.keys) - 1
	v := c.vals[last]
	c.vals[last] = zero
	c.keys = c.keys[:last]
	c.vals = c.vals[:last]
	c.stats.Evictions++
	return v, true
}

// put inserts a value at the MRU position, evicting the LRU entry when
// the cache is full. The caller has already observed a miss via get.
func (c *maskLRU[V]) put(key uint64, v V) {
	if c == nil {
		return
	}
	if len(c.keys) == c.limit {
		c.keys = c.keys[:c.limit-1]
		c.vals = c.vals[:c.limit-1]
		c.stats.Evictions++
	}
	var zero V
	c.keys = append(c.keys, 0)    //perf:alloc capacity preallocated to limit in newMaskLRU; len never exceeds it
	c.vals = append(c.vals, zero) //perf:alloc same bounded-capacity invariant as keys
	copy(c.keys[1:], c.keys[:len(c.keys)-1])
	copy(c.vals[1:], c.vals[:len(c.vals)-1])
	c.keys[0], c.vals[0] = key, v
}

// flush drops every entry but keeps the cumulative counters.
func (c *maskLRU[V]) flush() {
	if c == nil {
		return
	}
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
}

// len reports the current entry count (for tests).
func (c *maskLRU[V]) size() int {
	if c == nil {
		return 0
	}
	return len(c.keys)
}
