package pdn

import (
	"errors"
	"fmt"
	"math"

	"thermogater/internal/floorplan"
)

// MeshConfig parameterises the high-fidelity nodal grid solver. The fast
// path-resistance model used inside the control loop approximates each
// block↔regulator path with a lumped resistance; the mesh solver instead
// builds the domain's local power grid as a true resistive mesh and solves
// the nodal equations, the way the extended VoltSpot of the paper does.
// It exists to validate the fast model (see the mesh-vs-path tests and the
// ablation benchmark) and for detailed one-off analyses.
type MeshConfig struct {
	// PitchMM is the grid node spacing.
	PitchMM float64
	// SheetOhm is the grid sheet resistance per square: the resistance of
	// one pitch-length segment of the mesh.
	SheetOhm float64
	// R0Ohm is the regulator output/via resistance tying an active
	// regulator's node to the ideal supply.
	R0Ohm float64
	// VddV is the nominal supply.
	VddV float64
	// Tol is the SOR convergence tolerance in volts.
	Tol float64
	// MaxIter bounds the SOR iterations.
	MaxIter int
	// Omega is the SOR over-relaxation factor in (0, 2).
	Omega float64
	// FactorCacheSize bounds the LRU of per-mask Cholesky factorizations
	// Solve keeps (see cache.go). Zero selects the default; CacheDisabled
	// refactorizes on every Solve (the benchmarks' uncached control).
	FactorCacheSize int
}

// defaultFactorCacheSize is the factorization cache capacity used when
// MeshConfig.FactorCacheSize is zero. A governor cycles through few
// masks per domain, so a handful of factors covers the working set.
const defaultFactorCacheSize = 8

// factorCacheSize resolves the configured capacity, applying the default.
func (c MeshConfig) factorCacheSize() int {
	if c.FactorCacheSize == 0 {
		return defaultFactorCacheSize
	}
	return c.FactorCacheSize
}

// DefaultMeshConfig matches the calibrated path model: with the default
// pitch, the effective mesh resistance between a load and a regulator
// reproduces R0 + ρ·distance within the accuracy the validation tests
// assert.
func DefaultMeshConfig() MeshConfig {
	return MeshConfig{
		PitchMM:  0.25,
		SheetOhm: 0.008,
		R0Ohm:    0.028,
		VddV:     1.03,
		Tol:      1e-7,
		MaxIter:  20000,
		Omega:    1.8,
	}
}

// Validate rejects non-physical mesh configurations.
func (c MeshConfig) Validate() error {
	if c.PitchMM <= 0 || c.SheetOhm <= 0 || c.R0Ohm <= 0 || c.VddV <= 0 {
		return errors.New("pdn: mesh dimensions and resistances must be positive")
	}
	if c.Tol <= 0 || c.MaxIter <= 0 {
		return errors.New("pdn: mesh solver needs positive tolerance and iteration budget")
	}
	if c.Omega <= 0 || c.Omega >= 2 {
		return errors.New("pdn: SOR omega outside (0, 2)")
	}
	if c.FactorCacheSize < CacheDisabled {
		return errors.New("pdn: factor cache size must be non-negative (or CacheDisabled)")
	}
	return nil
}

// Mesh is the nodal grid model of one Vdd-domain's local power grid.
type Mesh struct {
	chip   *floorplan.Chip
	domain int
	cfg    MeshConfig

	nx, ny int
	x0, y0 float64

	// nodeBlock[i] is the domain-block index under node i (-1 if none);
	// blockNodes[bi] lists the node indices covering block bi.
	nodeBlock  []int
	blockNodes [][]int
	// vrNode[ri] is the node index nearest the ri-th regulator.
	vrNode []int
	// factors caches the banded Cholesky factorization per active-VR
	// mask. The mesh geometry is immutable after NewMesh, so entries
	// never invalidate; they only rotate out of the LRU.
	factors *maskLRU[*meshFactor]
}

// NewMesh builds the grid for one domain.
func NewMesh(chip *floorplan.Chip, domain int, cfg MeshConfig) (*Mesh, error) {
	if chip == nil {
		return nil, errors.New("pdn: nil chip")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if domain < 0 || domain >= len(chip.Domains) {
		return nil, fmt.Errorf("pdn: domain %d out of range", domain)
	}
	d := &chip.Domains[domain]
	m := &Mesh{chip: chip, domain: domain, cfg: cfg}
	m.x0, m.y0 = d.Bounds.X, d.Bounds.Y
	m.nx = int(math.Ceil(d.Bounds.W/cfg.PitchMM)) + 1
	m.ny = int(math.Ceil(d.Bounds.H/cfg.PitchMM)) + 1
	if m.nx < 2 || m.ny < 2 {
		return nil, fmt.Errorf("pdn: domain %s too small for pitch %v", d.Name, cfg.PitchMM)
	}

	n := m.nx * m.ny
	m.nodeBlock = make([]int, n)
	m.blockNodes = make([][]int, len(d.Blocks))
	for i := range m.nodeBlock {
		m.nodeBlock[i] = -1
	}
	for idx := 0; idx < n; idx++ {
		p := m.nodePos(idx)
		for bi, bid := range d.Blocks {
			if chip.Blocks[bid].R.Contains(p) {
				m.nodeBlock[idx] = bi
				m.blockNodes[bi] = append(m.blockNodes[bi], idx) //lint:ignore capgrow one-time mesh build; per-block node counts are unknown until this sweep
				break
			}
		}
	}
	for bi, nodes := range m.blockNodes {
		if len(nodes) == 0 {
			// Tiny blocks might fall between grid nodes; anchor them to
			// the nearest node.
			bid := d.Blocks[bi]
			c := chip.Blocks[bid].R.Center()
			m.blockNodes[bi] = []int{m.nearestNode(c)}
		}
	}
	m.vrNode = make([]int, len(d.Regulators))
	for ri, rid := range d.Regulators {
		m.vrNode[ri] = m.nearestNode(chip.Regulators[rid].Pos)
	}
	if cfg.FactorCacheSize != CacheDisabled {
		m.factors = newMaskLRU[*meshFactor](cfg.factorCacheSize())
	}
	return m, nil
}

// Size returns the grid dimensions.
func (m *Mesh) Size() (nx, ny int) { return m.nx, m.ny }

func (m *Mesh) nodePos(idx int) floorplan.Point {
	ix := idx % m.nx
	iy := idx / m.nx
	return floorplan.Point{
		X: m.x0 + float64(ix)*m.cfg.PitchMM,
		Y: m.y0 + float64(iy)*m.cfg.PitchMM,
	}
}

func (m *Mesh) nearestNode(p floorplan.Point) int {
	ix := int(math.Round((p.X - m.x0) / m.cfg.PitchMM))
	iy := int(math.Round((p.Y - m.y0) / m.cfg.PitchMM))
	if ix < 0 {
		ix = 0
	}
	if ix >= m.nx {
		ix = m.nx - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= m.ny {
		iy = m.ny - 1
	}
	return iy*m.nx + ix
}

// MeshSolution is the solved voltage-drop field of one domain.
type MeshSolution struct {
	// DropV is the per-node voltage drop below nominal.
	DropV []float64
	// MaxPct is the worst per-load-node drop in percent of nominal Vdd.
	MaxPct float64
	// PerBlockPct is the worst drop under each domain block (indexed like
	// Domain.Blocks).
	PerBlockPct []float64
	// Iterations is the SOR iteration count used; the direct solver
	// (Solve) reports 0.
	Iterations int
	// SupplyA is the total current delivered by the active regulators
	// (equals the total load current at convergence — Kirchhoff).
	SupplyA float64
}

// prepare validates the inputs and assembles the per-node load vector
// and per-node source conductances both solvers share.
func (m *Mesh) prepare(blockCurrent []float64, active []bool) (load, srcG []float64, err error) {
	d := &m.chip.Domains[m.domain]
	if len(blockCurrent) != len(m.chip.Blocks) {
		return nil, nil, fmt.Errorf("pdn: %d block currents, chip has %d blocks",
			len(blockCurrent), len(m.chip.Blocks))
	}
	if len(active) != len(d.Regulators) {
		return nil, nil, fmt.Errorf("pdn: mask size %d, domain has %d regulators",
			len(active), len(d.Regulators))
	}
	anyActive := false
	for _, a := range active {
		anyActive = anyActive || a
	}
	if !anyActive {
		return nil, nil, fmt.Errorf("pdn: domain %s has no active regulator", d.Name)
	}

	n := m.nx * m.ny
	// Load current per node (positive = drawn from the grid).
	load = make([]float64, n)
	for bi, bid := range d.Blocks {
		i := blockCurrent[bid]
		if i <= 0 {
			continue
		}
		share := i / float64(len(m.blockNodes[bi]))
		for _, idx := range m.blockNodes[bi] {
			load[idx] += share
		}
	}
	// Source conductance per node (active regulators).
	srcG = make([]float64, n)
	g0 := 1 / m.cfg.R0Ohm
	for ri, a := range active {
		if a {
			srcG[m.vrNode[ri]] += g0
		}
	}
	return load, srcG, nil
}

// finish derives the per-block profile and supply current from the
// solved drop field v, which the solution takes ownership of.
func (m *Mesh) finish(sol *MeshSolution, v []float64, active []bool) {
	d := &m.chip.Domains[m.domain]
	g0 := 1 / m.cfg.R0Ohm
	sol.DropV = v
	sol.PerBlockPct = make([]float64, len(d.Blocks))
	for bi := range d.Blocks {
		var worst float64
		for _, idx := range m.blockNodes[bi] {
			if v[idx] > worst {
				worst = v[idx]
			}
		}
		sol.PerBlockPct[bi] = 100 * worst / m.cfg.VddV
		if sol.PerBlockPct[bi] > sol.MaxPct {
			sol.MaxPct = sol.PerBlockPct[bi]
		}
	}
	for ri, a := range active {
		if a {
			sol.SupplyA += v[m.vrNode[ri]] * g0
		}
	}
}

// Solve computes the steady IR-drop field for the given per-block currents
// (amps, by global block ID) and the domain's active-regulator mask. Each
// block's current is drawn uniformly by the grid nodes under the block;
// each active regulator injects through its R0 at its grid node.
//
// Solve is direct: the nodal matrix depends only on the mask, so its
// banded Cholesky factorization is looked up in a per-mask LRU (factored
// on miss) and the load vector is re-solved by substitution. SolveSOR
// retains the iterative solver for cross-validation.
func (m *Mesh) Solve(blockCurrent []float64, active []bool) (*MeshSolution, error) {
	load, srcG, err := m.prepare(blockCurrent, active)
	if err != nil {
		return nil, err
	}
	key := MaskKey(active)
	f, ok := m.factors.get(key)
	if !ok {
		f, err = m.factorize(srcG, 1/m.cfg.SheetOhm)
		if err != nil {
			return nil, err
		}
		m.factors.put(key, f)
	}
	// The substitution solves A·v = load in place: load becomes the drop
	// field.
	f.solve(load, m.nx)
	sol := &MeshSolution{}
	m.finish(sol, load, active)
	return sol, nil
}

// CacheStats returns the cumulative factorization cache counters.
func (m *Mesh) CacheStats() CacheStats {
	if m.factors == nil {
		return CacheStats{}
	}
	return m.factors.stats
}

// SolveSOR solves the same nodal system iteratively with successive
// over-relaxation. It is the validation reference for the direct solver
// (they must agree within the SOR tolerance) and the fallback for
// configurations a direct factorization cannot represent.
func (m *Mesh) SolveSOR(blockCurrent []float64, active []bool) (*MeshSolution, error) {
	load, srcG, err := m.prepare(blockCurrent, active)
	if err != nil {
		return nil, err
	}
	d := &m.chip.Domains[m.domain]
	n := m.nx * m.ny

	// SOR over the nodal equations: for drop v (volts below nominal),
	//   Σ_adj g·(v_i − v_j) + srcG_i·v_i = −load_i + 0
	// i.e. current drawn lowers the node, sources pull it toward zero drop.
	g := 1 / m.cfg.SheetOhm
	v := make([]float64, n)
	sol := &MeshSolution{}
	for it := 1; it <= m.cfg.MaxIter; it++ {
		var maxDelta float64
		for idx := 0; idx < n; idx++ {
			ix := idx % m.nx
			iy := idx / m.nx
			var gsum, isum float64
			if ix > 0 {
				gsum += g
				isum += g * v[idx-1]
			}
			if ix < m.nx-1 {
				gsum += g
				isum += g * v[idx+1]
			}
			if iy > 0 {
				gsum += g
				isum += g * v[idx-m.nx]
			}
			if iy < m.ny-1 {
				gsum += g
				isum += g * v[idx+m.nx]
			}
			gsum += srcG[idx] // source node pulled toward zero drop
			if !(gsum > 0) {
				// A 1×1 mesh with no active regulator has no conductance
				// anywhere; dividing would seed the solution with NaN.
				return nil, fmt.Errorf("pdn: mesh node %d in %s is isolated (no neighbors, no source)", idx, d.Name)
			}
			vNew := (isum + load[idx]) / gsum
			vNew = v[idx] + m.cfg.Omega*(vNew-v[idx])
			if dlt := math.Abs(vNew - v[idx]); dlt > maxDelta {
				maxDelta = dlt
			}
			v[idx] = vNew
		}
		sol.Iterations = it
		if maxDelta < m.cfg.Tol {
			break
		}
		if it == m.cfg.MaxIter {
			return nil, fmt.Errorf("pdn: mesh solve for %s did not converge in %d iterations", d.Name, it)
		}
	}

	m.finish(sol, v, active)
	return sol, nil
}
