package pdn

import (
	"errors"
	"fmt"
	"math"

	"thermogater/internal/floorplan"
	"thermogater/internal/invariant"
)

// Network is the power delivery model for one chip: per Vdd-domain, the
// precomputed path resistances from every load block to every component
// regulator.
type Network struct {
	chip *floorplan.Chip
	cfg  Config

	// pathR[d][bi][ri] is the path resistance from domain d's bi-th block
	// to its ri-th regulator: R0 + ρ·distance.
	pathR [][][]float64
	// conc[d][bi] is the concentration factor min(1, ServiceArea/area):
	// the fraction of a block's current that stresses a single grid path.
	conc [][]float64
	// eff[d] caches, per active-VR mask, the per-block effective
	// resistances of domain d. Unsynchronized: parallel callers must
	// partition by domain (see cache.go). All nil when the cache is
	// disabled; effFor then fills effScratch[d] instead.
	eff        []*maskLRU[[]float64]
	effScratch [][]float64
	// effFree[d] is the preallocated slice pool the fill phase of eff[d]
	// draws from: limit slices carved up front so effFor never allocates
	// — below capacity a miss pops here, at capacity it recycles the
	// evicted entry's backing. Flushed entries' slices are lost to the
	// pool, so the first misses after a rebuild fall back to make (cold,
	// annotated).
	effFree [][][]float64
}

// NewNetwork precomputes the grid model for the chip.
func NewNetwork(chip *floorplan.Chip, cfg Config) (*Network, error) {
	if chip == nil {
		return nil, errors.New("pdn: nil chip")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{chip: chip, cfg: cfg}
	n.pathR = make([][][]float64, len(chip.Domains))
	n.eff = make([]*maskLRU[[]float64], len(chip.Domains))
	n.effScratch = make([][]float64, len(chip.Domains))
	n.effFree = make([][][]float64, len(chip.Domains))
	for di := range n.eff {
		if cfg.MaskCacheSize != CacheDisabled {
			limit := cfg.maskCacheSize()
			n.eff[di] = newMaskLRU[[]float64](limit)
			nb := len(chip.Domains[di].Blocks)
			backing := make([]float64, limit*nb)
			free := make([][]float64, limit)
			for s := range free {
				free[s] = backing[s*nb : (s+1)*nb : (s+1)*nb]
			}
			n.effFree[di] = free
		}
		n.effScratch[di] = make([]float64, len(chip.Domains[di].Blocks))
	}
	n.rebuildPaths()
	return n, nil
}

// rebuildPaths recomputes all block→regulator path resistances; the
// placement optimiser calls it after moving regulators. Moving a
// regulator changes every effective resistance derived from the paths,
// so this is the cache invalidation point: every per-mask cache entry
// is flushed here (the cumulative hit/miss counters survive).
func (n *Network) rebuildPaths() {
	for _, c := range n.eff {
		c.flush()
	}
	n.conc = make([][]float64, len(n.chip.Domains))
	for di := range n.chip.Domains {
		d := &n.chip.Domains[di]
		n.pathR[di] = make([][]float64, len(d.Blocks))
		n.conc[di] = make([]float64, len(d.Blocks))
		for bi, bid := range d.Blocks {
			b := &n.chip.Blocks[bid]
			n.conc[di][bi] = 1.0
			if a := b.R.Area(); a > n.cfg.ServiceAreaMM2 {
				n.conc[di][bi] = n.cfg.ServiceAreaMM2 / a
			}
			rs := make([]float64, len(d.Regulators))
			for ri, rid := range d.Regulators {
				// Distance from the regulator to the block footprint:
				// loads spread across the block, so the relevant length is
				// the average of centre and edge distances.
				reg := &n.chip.Regulators[rid]
				dc := b.R.Center().DistanceTo(reg.Pos)
				de := b.R.DistanceToPoint(reg.Pos)
				dist := 0.5 * (dc + de)
				rs[ri] = n.cfg.R0Ohm + n.cfg.RhoOhmPerMM*dist
			}
			n.pathR[di][bi] = rs
		}
	}
}

// Chip returns the floorplan this network models.
func (n *Network) Chip() *floorplan.Chip { return n.chip }

// Config returns the electrical configuration.
func (n *Network) Config() Config { return n.cfg }

// PathResistance returns the precomputed path resistance from the domain's
// bi-th block to its ri-th regulator (indices into Domain.Blocks and
// Domain.Regulators).
func (n *Network) PathResistance(domain, bi, ri int) float64 {
	return n.pathR[domain][bi][ri]
}

// EffectiveResistance returns the impedance the domain's bi-th block sees
// given the active mask over the domain's regulators (indexed like
// Domain.Regulators). It is the parallel combination of the per-regulator
// paths; with no active regulator it returns +Inf.
func (n *Network) EffectiveResistance(domain, bi int, active []bool) float64 {
	nActive := 0
	var gsum float64
	for ri, a := range active {
		if a {
			nActive++
			gsum += 1 / n.pathR[domain][bi][ri]
		}
	}
	if nActive == 0 || !(gsum > 0) {
		// No active regulator, or every active path has infinite
		// resistance: the block sees an open circuit either way.
		return math.Inf(1)
	}
	return 1 / gsum
}

// effFor returns the per-block effective resistances of the domain for
// the given active mask, cached by mask key. A miss computes each block
// with EffectiveResistance — regulators summed in ascending index order
// — so cached and freshly-computed values are bit-identical. The
// returned slice is owned by the cache and valid only until the next
// effFor call for the same domain: a later miss may recycle its backing
// array for the evicted entry's replacement.
func (n *Network) effFor(domain int, active []bool) []float64 {
	d := &n.chip.Domains[domain]
	if n.eff[domain] == nil { // cache disabled: recompute into scratch
		effR := n.effScratch[domain]
		for bi := range d.Blocks {
			effR[bi] = n.EffectiveResistance(domain, bi, active)
		}
		return effR
	}
	key := MaskKey(active)
	if effR, ok := n.eff[domain].get(key); ok {
		return effR
	}
	effR, _ := n.eff[domain].evictIfFull()
	if effR == nil {
		if fl := n.effFree[domain]; len(fl) > 0 {
			effR = fl[len(fl)-1]
			n.effFree[domain] = fl[:len(fl)-1]
		} else {
			effR = make([]float64, len(d.Blocks)) //perf:alloc refill after a rebuild flush dropped the pooled slices; steady state never reaches this
		}
	}
	for bi := range d.Blocks {
		effR[bi] = n.EffectiveResistance(domain, bi, active)
	}
	n.eff[domain].put(key, effR)
	return effR
}

// CacheStats returns the cumulative per-mask cache counters summed over
// all domains.
func (n *Network) CacheStats() CacheStats {
	var total CacheStats
	for _, c := range n.eff {
		if c != nil {
			total.add(c.stats)
		}
	}
	return total
}

// DomainNoise is the steady-state voltage noise profile of one domain.
type DomainNoise struct {
	// MaxPct is the worst per-block noise in percent of nominal Vdd.
	MaxPct float64
	// MaxBlock is the global block ID where the maximum occurs (-1 when
	// the domain draws no current).
	MaxBlock int
	// PerBlockPct is indexed like Domain.Blocks.
	PerBlockPct []float64
}

// Emergency reports whether the profile exceeds the 10% threshold.
func (dn DomainNoise) Emergency() bool {
	return dn.MaxPct > EmergencyThresholdPct
}

// SteadyNoise computes the IR-drop noise profile of a domain given the
// per-block currents (amps, indexed by global block ID) and the active
// mask over the domain's regulators. At least one regulator must be
// active.
func (n *Network) SteadyNoise(domain int, blockCurrent []float64, active []bool) (DomainNoise, error) {
	var out DomainNoise
	if err := n.SteadyNoiseInto(domain, blockCurrent, active, &out); err != nil {
		return DomainNoise{}, err
	}
	return out, nil
}

// SteadyNoiseInto is SteadyNoise writing into a caller-owned profile,
// reusing out.PerBlockPct when it has capacity. The simulator's pdn
// fan-out calls this once per substep per domain; with the per-mask
// resistance cache warm it allocates nothing.
func (n *Network) SteadyNoiseInto(domain int, blockCurrent []float64, active []bool, out *DomainNoise) error {
	d := &n.chip.Domains[domain]
	if len(blockCurrent) != len(n.chip.Blocks) {
		return fmt.Errorf("pdn: %d block currents, chip has %d blocks",
			len(blockCurrent), len(n.chip.Blocks))
	}
	if len(active) != len(d.Regulators) {
		return fmt.Errorf("pdn: %d active flags, domain %s has %d regulators",
			len(active), d.Name, len(d.Regulators))
	}
	anyActive := false
	for _, a := range active {
		anyActive = anyActive || a
	}
	if !anyActive {
		return fmt.Errorf("pdn: domain %s has no active regulator", d.Name)
	}

	var domCurrent float64
	for _, bid := range d.Blocks {
		if c := blockCurrent[bid]; c > 0 {
			domCurrent += c
		}
	}
	effR := n.effFor(domain, active)
	out.MaxPct, out.MaxBlock = 0, -1
	if cap(out.PerBlockPct) < len(d.Blocks) {
		out.PerBlockPct = make([]float64, len(d.Blocks))
	} else {
		out.PerBlockPct = out.PerBlockPct[:len(d.Blocks)]
	}
	shared := domCurrent * n.cfg.RSharedOhm
	for bi, bid := range d.Blocks {
		i := blockCurrent[bid]
		if i < 0 {
			i = 0
		}
		i *= n.conc[domain][bi]
		// An idle block only sees the shared-rail drop; skipping the
		// product also avoids 0·Inf = NaN when no regulator is active.
		drop := shared
		if i > 0 {
			drop += i * effR[bi]
		}
		pct := 100 * drop / n.cfg.VddV
		out.PerBlockPct[bi] = pct
		if pct > out.MaxPct {
			out.MaxPct = pct
			out.MaxBlock = bid
		}
	}
	if invariant.Enabled {
		invariant.CheckFinite("pdn.SteadyNoise pct", out.PerBlockPct)
		invariant.CheckDroopPct("pdn.SteadyNoise max", out.MaxPct)
	}
	return nil
}

// BurstPeakPct returns the peak noise reached when a di/dt burst surges
// the given block's current by surgeAmps for burstCycles: the steady drop
// plus the surge through both the grid and the transient impedance the
// lagging regulators present.
func (n *Network) BurstPeakPct(domain, bi int, steadyPct, surgeAmps float64, active []bool, burstCycles int, clockGHz float64) float64 {
	if surgeAmps <= 0 {
		return steadyPct
	}
	reff := n.effFor(domain, active)[bi]
	if math.IsInf(reff, 1) {
		return math.Inf(1)
	}
	z := reff + n.cfg.ZTransientOhm*n.cfg.TransientFactor(burstCycles, clockGHz)
	peak := steadyPct + 100*surgeAmps*z/n.cfg.VddV
	if invariant.Enabled {
		invariant.CheckDroopPct("pdn.BurstPeakPct", peak)
	}
	return peak
}

// VRCriticality scores each of a domain's regulators by how much voltage
// noise relief it provides to the domain's present current map: the
// current-weighted conductance of its paths to every load block. OracV
// keeps the non highest-scoring (i.e. closest-to-the-noise) regulators on.
func (n *Network) VRCriticality(domain int, blockCurrent []float64) ([]float64, error) {
	crit := make([]float64, len(n.chip.Domains[domain].Regulators))
	if err := n.VRCriticalityInto(domain, blockCurrent, crit); err != nil {
		return nil, err
	}
	return crit, nil
}

// VRCriticalityInto is VRCriticality writing into dst, which must be
// sized to the domain's regulator count. Per-epoch callers (the OracV
// governor) hold a reusable buffer so the scoring allocates nothing.
func (n *Network) VRCriticalityInto(domain int, blockCurrent, dst []float64) error {
	d := &n.chip.Domains[domain]
	if len(blockCurrent) != len(n.chip.Blocks) {
		return fmt.Errorf("pdn: %d block currents, chip has %d blocks",
			len(blockCurrent), len(n.chip.Blocks))
	}
	if len(dst) != len(d.Regulators) {
		return fmt.Errorf("pdn: criticality buffer sized %d, domain has %d regulators",
			len(dst), len(d.Regulators))
	}
	for ri := range dst {
		dst[ri] = 0
	}
	for bi, bid := range d.Blocks {
		i := blockCurrent[bid] * n.conc[domain][bi]
		if i <= 0 {
			continue
		}
		for ri := range d.Regulators {
			dst[ri] += i / n.pathR[domain][bi][ri]
		}
	}
	return nil
}

// AllOnMask returns a fully-active regulator mask for the domain.
func (n *Network) AllOnMask(domain int) []bool {
	mask := make([]bool, len(n.chip.Domains[domain].Regulators))
	for i := range mask {
		mask[i] = true
	}
	return mask
}
