package pdn

import (
	"errors"
	"fmt"
	"math"

	"thermogater/internal/floorplan"
)

// PlacementResult summarises one run of the placement optimiser.
type PlacementResult struct {
	// InitialMaxPct and FinalMaxPct are the chip-wide worst-case all-on
	// noise before and after optimisation.
	InitialMaxPct, FinalMaxPct float64
	// Moves is the number of accepted regulator moves.
	Moves int
	// Iterations is the number of full passes performed.
	Iterations int
}

// OptimizePlacement mimics the "Deep Optimization" C4-pad placement
// algorithm of Wang et al. that Section 5 adapts to on-chip regulators:
// starting with the regulators in the immediate vicinity of the voltage
// noise peak, it attempts to move regulators step by step, accepting a
// move only if it decreases the chip-wide maximum (all-on) voltage noise,
// and stops when a full pass accepts no move. The chip's regulator
// positions are updated in place and the network's path resistances are
// rebuilt.
//
// blockCurrent supplies the representative per-block load (amps) the noise
// is evaluated against. stepMM is the move granularity.
func OptimizePlacement(n *Network, blockCurrent []float64, stepMM float64, maxPasses int) (PlacementResult, error) {
	if stepMM <= 0 {
		return PlacementResult{}, errors.New("pdn: non-positive step")
	}
	if maxPasses <= 0 {
		maxPasses = 50
	}
	if len(blockCurrent) != len(n.chip.Blocks) {
		return PlacementResult{}, fmt.Errorf("pdn: %d block currents, chip has %d blocks",
			len(blockCurrent), len(n.chip.Blocks))
	}

	eval := func() (float64, error) {
		worst := 0.0
		for di := range n.chip.Domains {
			dn, err := n.SteadyNoise(di, blockCurrent, n.AllOnMask(di))
			if err != nil {
				return 0, err
			}
			if dn.MaxPct > worst {
				worst = dn.MaxPct
			}
		}
		return worst, nil
	}

	res := PlacementResult{}
	cur, err := eval()
	if err != nil {
		return res, err
	}
	res.InitialMaxPct = cur

	offsets := [4][2]float64{{stepMM, 0}, {-stepMM, 0}, {0, stepMM}, {0, -stepMM}}
	for pass := 0; pass < maxPasses; pass++ {
		res.Iterations++
		accepted := 0
		// Visit regulators nearest the current noise peak first.
		order := n.regulatorsByPeakProximity(blockCurrent)
		for _, rid := range order {
			reg := &n.chip.Regulators[rid]
			dom := &n.chip.Domains[reg.Domain]
			orig := reg.Pos
			bestPos, bestNoise := orig, cur
			for _, off := range offsets {
				cand := orig.Add(off[0], off[1])
				if !dom.Bounds.Contains(cand) {
					continue
				}
				reg.Pos = cand
				n.rebuildPaths()
				noise, err := eval()
				if err != nil {
					return res, err
				}
				if noise < bestNoise-1e-12 {
					bestNoise, bestPos = noise, cand
				}
			}
			reg.Pos = bestPos
			n.rebuildPaths()
			if bestPos != orig {
				accepted++
				cur = bestNoise
			}
		}
		res.Moves += accepted
		if accepted == 0 {
			break
		}
	}
	n.chip.RelinkRegulators()
	n.rebuildPaths()
	res.FinalMaxPct = cur
	return res, nil
}

// regulatorsByPeakProximity orders all regulator IDs by distance to the
// block with the highest all-on noise, nearest first.
func (n *Network) regulatorsByPeakProximity(blockCurrent []float64) []int {
	// Locate the noise peak.
	peakBlock := -1
	worst := math.Inf(-1)
	for di := range n.chip.Domains {
		dn, err := n.SteadyNoise(di, blockCurrent, n.AllOnMask(di))
		if err != nil {
			continue
		}
		if dn.MaxPct > worst && dn.MaxBlock >= 0 {
			worst, peakBlock = dn.MaxPct, dn.MaxBlock
		}
	}
	ids := make([]int, len(n.chip.Regulators))
	for i := range ids {
		ids[i] = i
	}
	if peakBlock < 0 {
		return ids
	}
	peak := n.chip.Blocks[peakBlock].R.Center()
	// Insertion sort by distance: 96 elements, called rarely.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			di := n.chip.Regulators[ids[j]].Pos.DistanceTo(peak)
			dj := n.chip.Regulators[ids[j-1]].Pos.DistanceTo(peak)
			if di < dj {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			} else {
				break
			}
		}
	}
	return ids
}

// UniformPlacementNoise evaluates the chip-wide worst all-on noise for the
// given load, a convenience for comparing the uniform layout against the
// optimised one (Section 5 reports the two within 0.4%).
func UniformPlacementNoise(chip *floorplan.Chip, cfg Config, blockCurrent []float64) (float64, error) {
	n, err := NewNetwork(chip, cfg)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for di := range chip.Domains {
		dn, err := n.SteadyNoise(di, blockCurrent, n.AllOnMask(di))
		if err != nil {
			return 0, err
		}
		if dn.MaxPct > worst {
			worst = dn.MaxPct
		}
	}
	return worst, nil
}
