package pdn

import (
	"testing"

	"thermogater/internal/floorplan"
)

func TestOptimizePlacementImproves(t *testing.T) {
	chip := floorplan.MustPOWER8()
	n, err := NewNetwork(chip, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur := loadedCurrents(chip)
	uniform, err := UniformPlacementNoise(floorplan.MustPOWER8(), DefaultConfig(), cur)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizePlacement(n, cur, 0.25, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMaxPct > res.InitialMaxPct+1e-12 {
		t.Errorf("optimisation worsened noise: %v -> %v", res.InitialMaxPct, res.FinalMaxPct)
	}
	if res.InitialMaxPct != uniform {
		t.Errorf("initial noise %v differs from uniform baseline %v", res.InitialMaxPct, uniform)
	}
	// Section 5: the uniform placement is within 0.4% (relative) of the
	// optimal one — i.e. optimisation buys very little.
	if rel := (uniform - res.FinalMaxPct) / uniform; rel > 0.05 {
		t.Errorf("optimisation improved noise by %.1f%%; the uniform layout should already be near-optimal", 100*rel)
	}
	if res.Iterations < 1 {
		t.Error("no passes recorded")
	}
}

func TestOptimizePlacementKeepsRegulatorsInDomains(t *testing.T) {
	chip := floorplan.MustPOWER8()
	n, err := NewNetwork(chip, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur := loadedCurrents(chip)
	if _, err := OptimizePlacement(n, cur, 0.5, 3); err != nil {
		t.Fatal(err)
	}
	for _, r := range chip.Regulators {
		if !chip.Domains[r.Domain].Bounds.Contains(r.Pos) {
			t.Errorf("regulator %d escaped its domain", r.ID)
		}
	}
	if err := chip.Validate(); err != nil {
		t.Errorf("chip invalid after optimisation: %v", err)
	}
}

func TestOptimizePlacementValidation(t *testing.T) {
	chip := floorplan.MustPOWER8()
	n, _ := NewNetwork(chip, DefaultConfig())
	cur := loadedCurrents(chip)
	if _, err := OptimizePlacement(n, cur, 0, 3); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := OptimizePlacement(n, cur[:4], 0.5, 3); err == nil {
		t.Error("short current vector accepted")
	}
}
