package pdn

import (
	"math"
	"testing"

	"thermogater/internal/floorplan"
	"thermogater/internal/power"
)

func newNet(t *testing.T) (*Network, *floorplan.Chip) {
	t.Helper()
	chip := floorplan.MustPOWER8()
	n, err := NewNetwork(chip, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n, chip
}

// loadedCurrents builds a representative current map: logic blocks drawing
// heavily, memory lightly.
func loadedCurrents(chip *floorplan.Chip) []float64 {
	cur := make([]float64, len(chip.Blocks))
	for _, b := range chip.Blocks {
		switch b.Kind {
		case floorplan.Logic:
			cur[b.ID] = power.WattsToAmps(3.0)
		case floorplan.Memory:
			cur[b.ID] = power.WattsToAmps(1.0)
		default:
			cur[b.ID] = power.WattsToAmps(1.5)
		}
	}
	return cur
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, DefaultConfig()); err == nil {
		t.Error("nil chip accepted")
	}
	bad := DefaultConfig()
	bad.R0Ohm = 0
	if _, err := NewNetwork(floorplan.MustPOWER8(), bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.R0Ohm = -1 },
		func(c *Config) { c.RhoOhmPerMM = 0 },
		func(c *Config) { c.RSharedOhm = -0.1 },
		func(c *Config) { c.ZTransientOhm = -1 },
		func(c *Config) { c.ResponseTimeNS = -1 },
		func(c *Config) { c.VddV = 0 },
		func(c *Config) { c.RippleSigma = -1 },
		func(c *Config) { c.RipplePhi = 1 },
		func(c *Config) { c.BurstRiseCycles = 0 },
		func(c *Config) { c.BurstDecayCycles = 0 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPathResistanceGrowsWithDistance(t *testing.T) {
	n, chip := newNet(t)
	// Within core0's domain, the EXU's nearest regulator path must be
	// cheaper than the farthest one.
	dom := 0
	d := chip.Domains[dom]
	exuIdx := -1
	for bi, bid := range d.Blocks {
		if chip.Blocks[bid].Class == floorplan.UnitEXU {
			exuIdx = bi
		}
	}
	if exuIdx < 0 {
		t.Fatal("no EXU in domain 0")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for ri := range d.Regulators {
		r := n.PathResistance(dom, exuIdx, ri)
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	if !(lo < hi) {
		t.Errorf("path resistances not spread: lo %v hi %v", lo, hi)
	}
	if lo < n.Config().R0Ohm {
		t.Errorf("path resistance %v below the R0 floor %v", lo, n.Config().R0Ohm)
	}
}

func TestEffectiveResistanceParallel(t *testing.T) {
	n, chip := newNet(t)
	dom := 0
	nVR := len(chip.Domains[dom].Regulators)
	all := n.AllOnMask(dom)
	one := make([]bool, nVR)
	one[0] = true
	rAll := n.EffectiveResistance(dom, 0, all)
	rOne := n.EffectiveResistance(dom, 0, one)
	if rAll >= rOne {
		t.Errorf("all-on resistance %v not below single-regulator %v", rAll, rOne)
	}
	none := make([]bool, nVR)
	if !math.IsInf(n.EffectiveResistance(dom, 0, none), 1) {
		t.Error("no active regulator must yield infinite resistance")
	}
}

func TestSteadyNoiseAllOnIsBestCase(t *testing.T) {
	// Section 6.2.3: all-on is the best case for voltage noise because
	// every block is fed by its closest regulator. Any gated subset of the
	// same size or smaller must be at least as noisy.
	n, chip := newNet(t)
	cur := loadedCurrents(chip)
	for dom := range chip.Domains {
		all, err := n.SteadyNoise(dom, cur, n.AllOnMask(dom))
		if err != nil {
			t.Fatal(err)
		}
		// Gate the first regulator.
		mask := n.AllOnMask(dom)
		mask[0] = false
		gated, err := n.SteadyNoise(dom, cur, mask)
		if err != nil {
			t.Fatal(err)
		}
		if gated.MaxPct < all.MaxPct-1e-12 {
			t.Errorf("domain %d: gating reduced noise (%v < %v)", dom, gated.MaxPct, all.MaxPct)
		}
	}
}

func TestSteadyNoiseScalesWithCurrent(t *testing.T) {
	n, chip := newNet(t)
	cur := loadedCurrents(chip)
	half := make([]float64, len(cur))
	for i := range cur {
		half[i] = cur[i] / 2
	}
	full, _ := n.SteadyNoise(0, cur, n.AllOnMask(0))
	halfN, _ := n.SteadyNoise(0, half, n.AllOnMask(0))
	if math.Abs(full.MaxPct-2*halfN.MaxPct) > 1e-9 {
		t.Errorf("noise not linear in current: %v vs %v", full.MaxPct, halfN.MaxPct)
	}
}

func TestSteadyNoiseValidation(t *testing.T) {
	n, chip := newNet(t)
	cur := loadedCurrents(chip)
	if _, err := n.SteadyNoise(0, cur[:5], n.AllOnMask(0)); err == nil {
		t.Error("short current vector accepted")
	}
	if _, err := n.SteadyNoise(0, cur, make([]bool, 3)); err == nil {
		t.Error("wrong mask size accepted")
	}
	if _, err := n.SteadyNoise(0, cur, make([]bool, 9)); err == nil {
		t.Error("all-off mask accepted")
	}
}

func TestSteadyNoiseZeroCurrent(t *testing.T) {
	n, chip := newNet(t)
	cur := make([]float64, len(chip.Blocks))
	dn, err := n.SteadyNoise(0, cur, n.AllOnMask(0))
	if err != nil {
		t.Fatal(err)
	}
	if dn.MaxPct != 0 || dn.MaxBlock != -1 {
		t.Errorf("zero current noise = %+v", dn)
	}
	if dn.Emergency() {
		t.Error("zero current reported an emergency")
	}
}

func TestEmergencyThreshold(t *testing.T) {
	dn := DomainNoise{MaxPct: 10.01}
	if !dn.Emergency() {
		t.Error("10.01% must be an emergency")
	}
	dn.MaxPct = 9.99
	if dn.Emergency() {
		t.Error("9.99% must not be an emergency")
	}
}

func TestGatingLogicSideRaisesLogicNoise(t *testing.T) {
	// The central OracT hazard: turning off the regulators over the logic
	// units raises the noise exactly where the current is drawn.
	n, chip := newNet(t)
	cur := loadedCurrents(chip)
	dom := 0
	logic, memory, err := chip.LogicSideRegulators(dom)
	if err != nil {
		t.Fatal(err)
	}
	d := chip.Domains[dom]
	idxOf := func(rid int) int {
		for i, r := range d.Regulators {
			if r == rid {
				return i
			}
		}
		return -1
	}
	// Keep only memory-side regulators on (the OracT pattern).
	memMask := make([]bool, len(d.Regulators))
	for _, rid := range memory {
		memMask[idxOf(rid)] = true
	}
	// Keep only the same *number* of logic-side regulators on (OracV-ish).
	logicMask := make([]bool, len(d.Regulators))
	for i, rid := range logic {
		if i >= len(memory) {
			break
		}
		logicMask[idxOf(rid)] = true
	}
	memNoise, err := n.SteadyNoise(dom, cur, memMask)
	if err != nil {
		t.Fatal(err)
	}
	logicNoise, err := n.SteadyNoise(dom, cur, logicMask)
	if err != nil {
		t.Fatal(err)
	}
	if memNoise.MaxPct <= logicNoise.MaxPct {
		t.Errorf("memory-side gating noise %v not above logic-side %v",
			memNoise.MaxPct, logicNoise.MaxPct)
	}
}

func TestAllOnNoiseCalibration(t *testing.T) {
	// Fig. 11: the all-on maximum noise across the suite peaks around 13%
	// of nominal Vdd. With a representative heavy load the steady all-on
	// noise must land in single digits (bursts add the rest).
	n, chip := newNet(t)
	cur := loadedCurrents(chip)
	worst := 0.0
	for dom := range chip.Domains {
		dn, err := n.SteadyNoise(dom, cur, n.AllOnMask(dom))
		if err != nil {
			t.Fatal(err)
		}
		if dn.MaxPct > worst {
			worst = dn.MaxPct
		}
	}
	if worst < 3 || worst > 11 {
		t.Errorf("steady all-on worst noise = %v%%, want mid single digits", worst)
	}
}

func TestVRCriticalityPrefersLogicSide(t *testing.T) {
	n, chip := newNet(t)
	cur := loadedCurrents(chip)
	dom := 0
	crit, err := n.VRCriticality(dom, cur)
	if err != nil {
		t.Fatal(err)
	}
	logic, memory, _ := chip.LogicSideRegulators(dom)
	d := chip.Domains[dom]
	idxOf := func(rid int) int {
		for i, r := range d.Regulators {
			if r == rid {
				return i
			}
		}
		return -1
	}
	var logicAvg, memAvg float64
	for _, rid := range logic {
		logicAvg += crit[idxOf(rid)]
	}
	logicAvg /= float64(len(logic))
	for _, rid := range memory {
		memAvg += crit[idxOf(rid)]
	}
	memAvg /= float64(len(memory))
	if logicAvg <= memAvg {
		t.Errorf("logic-side criticality %v not above memory-side %v", logicAvg, memAvg)
	}
	if _, err := n.VRCriticality(dom, cur[:2]); err == nil {
		t.Error("short current vector accepted")
	}
}

func TestBurstPeakBehaviour(t *testing.T) {
	n, chip := newNet(t)
	_ = chip
	active := n.AllOnMask(0)
	steady := 5.0
	peak := n.BurstPeakPct(0, 0, steady, 2.0, active, 60, 4.0)
	if peak <= steady {
		t.Error("burst did not raise the noise")
	}
	if got := n.BurstPeakPct(0, 0, steady, 0, active, 60, 4.0); got != steady {
		t.Error("zero surge must not change the noise")
	}
	// A faster regulator (smaller response time) lets less of the
	// transient through.
	fast, err := NewNetwork(floorplan.MustPOWER8(), LDOConfig())
	if err != nil {
		t.Fatal(err)
	}
	peakFast := fast.BurstPeakPct(0, 0, steady, 2.0, active, 60, 4.0)
	if peakFast >= peak {
		t.Errorf("LDO burst peak %v not below buck %v (Fig. 15)", peakFast, peak)
	}
	none := make([]bool, len(active))
	if !math.IsInf(n.BurstPeakPct(0, 0, steady, 1, none, 60, 4.0), 1) {
		t.Error("burst with no active regulator must be infinite")
	}
}

func TestTransientFactor(t *testing.T) {
	c := DefaultConfig()
	if f := c.TransientFactor(0, 4); f != 0 {
		t.Errorf("zero burst factor = %v", f)
	}
	if f := c.TransientFactor(60, 0); f != 0 {
		t.Errorf("zero clock factor = %v", f)
	}
	short := c.TransientFactor(10, 4)
	long := c.TransientFactor(1000, 4)
	if short <= long {
		t.Errorf("short bursts must see more transient impedance: %v vs %v", short, long)
	}
	if short <= 0 || short >= 1 {
		t.Errorf("factor %v outside (0,1)", short)
	}
}
